#include "rule/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "mine/fsm.h"
#include "rule/diversity.h"

namespace gpar {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : g1_(MakePaperG1()), m_(g1_.graph) {
    stats_ = ComputeQStats(m_, g1_.q);
  }
  PaperG1 g1_;
  VF2Matcher m_;
  QStats stats_;
};

TEST_F(MetricsTest, PcaConfMatchesPaperDefinition) {
  // PCAconf(R, G) = supp(R, G) / supp(Q~q, G) per the paper's Exp-2.
  GparEval e1 = EvaluateGpar(m_, g1_.r1, stats_);
  EXPECT_DOUBLE_EQ(e1.pca_conf, 3.0 / 1.0);
  GparEval e8 = EvaluateGpar(m_, g1_.r8, stats_);
  EXPECT_DOUBLE_EQ(e8.pca_conf, 1.0 / 1.0);
}

TEST_F(MetricsTest, ConventionalConfRequiresAntecedentImages) {
  GparEval with = EvaluateGpar(m_, g1_.r1, stats_,
                               {.compute_antecedent_images = true});
  EXPECT_DOUBLE_EQ(with.conventional_conf, 3.0 / 4.0);
  GparEval without = EvaluateGpar(m_, g1_.r1, stats_,
                                  {.compute_antecedent_images = false});
  EXPECT_EQ(without.supp_q_ant, 0u);
  EXPECT_DOUBLE_EQ(without.conventional_conf, 0.0);
  // But the BF confidence is unaffected by the flag.
  EXPECT_DOUBLE_EQ(with.conf, without.conf);
}

TEST_F(MetricsTest, MinImageSupportOnKnownPattern) {
  // friend(x, x') over the two triangles: each node image set is all six
  // customers; min image = 6.
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId z = p.AddNode(labels.Lookup("cust"));
  p.AddEdge(x, labels.Lookup("friend"), z);
  p.set_x(x);
  EXPECT_EQ(MinImageSupport(m_, p), 6u);

  // live_in(cust, city): images are 6 custs and 2 cities -> min image 2.
  Pattern q;
  PNodeId qx = q.AddNode(labels.Lookup("cust"));
  PNodeId qc = q.AddNode(labels.Lookup("city"));
  q.AddEdge(qx, labels.Lookup("live_in"), qc);
  q.set_x(qx);
  EXPECT_EQ(MinImageSupport(m_, q), 2u);
}

TEST_F(MetricsTest, MinImageSupportRespectsCap) {
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId z = p.AddNode(labels.Lookup("cust"));
  p.AddEdge(x, labels.Lookup("friend"), z);
  p.set_x(x);
  // With a tiny cap the measure can only shrink, never grow.
  EXPECT_LE(MinImageSupport(m_, p, 3), 6u);
}

TEST_F(MetricsTest, ImageBasedConfFinite) {
  GparEval e1 = EvaluateGpar(m_, g1_.r1, stats_);
  double iconf = ImageBasedConf(m_, g1_.r1, stats_, e1.supp_qqbar);
  EXPECT_TRUE(std::isfinite(iconf));
  EXPECT_GT(iconf, 0.0);
}

TEST_F(MetricsTest, EmptyQbarMakesRulesLogicRules) {
  // A predicate with positives but no negatives: like(cust, city)? No —
  // build one where every edge-holder matches: visit(cust, Asian) has
  // cust5 as only visitor -> supp_q=1, qbar = custs visiting non-Asian =
  // cust1..4,6.
  Predicate q{g1_.graph.labels().Lookup("cust"),
              g1_.graph.labels().Lookup("visit"),
              g1_.graph.labels().Lookup("Asian_restaurant")};
  QStats s = ComputeQStats(m_, q);
  EXPECT_EQ(s.supp_q, 1u);       // cust5
  EXPECT_EQ(s.supp_qbar, 5u);    // the French-restaurant visitors
}

TEST(JaccardTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {3, 4, 5}), 0.8);  // 1 - 1/5
}

TEST(FPrimeTest, DegenerateParameters) {
  EXPECT_DOUBLE_EQ(FPrime(1, 1, 1, 0.5, 10, 1), 0.0);  // k = 1
  // N = 0 (supp_q or supp_~q is 0): the confidence term is dropped but the
  // diversity term still ranks pairs — 2λ/(k-1)·diff = 2·0.5/1·1.
  EXPECT_DOUBLE_EQ(FPrime(1, 1, 1, 0.5, 0, 2), 1.0);
  // Infinite confidence (trivial logic rule) must not poison F' with
  // NaN/inf; λ = 1 is the 0·inf = NaN corner.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(FPrime(inf, 1, 0.5, 1.0, 10, 2), 1.0);
  EXPECT_TRUE(std::isfinite(FPrime(inf, 1, 0.5, 0.5, 10, 2)));
}

TEST(ObjectiveFTest, DegenerateNormalizerAndInfiniteConf) {
  std::vector<NodeId> a{1, 2, 3};
  std::vector<NodeId> b{4, 5, 6};
  std::vector<double> confs{1.0, 2.0};
  std::vector<const std::vector<NodeId>*> sets{&a, &b};
  // N = 0: confidence term dropped, diversity term kept (diff = 1).
  EXPECT_DOUBLE_EQ(ObjectiveF(confs, sets, 0.5, 0, 2), 1.0);
  // An infinite confidence in the pool must not make F NaN.
  std::vector<double> inf_confs{std::numeric_limits<double>::infinity(), 2.0};
  EXPECT_TRUE(std::isfinite(ObjectiveF(inf_confs, sets, 0.5, 10, 2)));
  EXPECT_TRUE(std::isfinite(ObjectiveF(inf_confs, sets, 1.0, 10, 2)));
}

TEST(ObjectiveFTest, LambdaExtremes) {
  std::vector<NodeId> a{1, 2, 3};
  std::vector<NodeId> b{4, 5, 6};
  std::vector<double> confs{1.0, 2.0};
  std::vector<const std::vector<NodeId>*> sets{&a, &b};
  // lambda = 0: pure confidence.
  EXPECT_DOUBLE_EQ(ObjectiveF(confs, sets, 0.0, 10, 2), 3.0 / 10);
  // lambda = 1: pure diversity (diff = 1).
  EXPECT_DOUBLE_EQ(ObjectiveF(confs, sets, 1.0, 10, 2), 2.0);
}

}  // namespace
}  // namespace gpar
