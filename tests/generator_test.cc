#include "graph/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/stats.h"
#include "pattern/pattern_generator.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

TEST(GeneratorTest, SyntheticRespectsParameters) {
  Graph g = MakeSynthetic(1000, 3000, 100, 42);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Deduplication may remove a few collisions, but most edges survive.
  EXPECT_GT(g.num_edges(), 2800u);
  EXPECT_LE(g.num_edges(), 3000u);
}

TEST(GeneratorTest, SyntheticIsDeterministic) {
  Graph a = MakeSynthetic(500, 1500, 50, 7);
  Graph b = MakeSynthetic(500, 1500, 50, 7);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node_label(v), b.node_label(v));
  }
  Graph c = MakeSynthetic(500, 1500, 50, 8);
  bool any_diff = c.num_edges() != a.num_edges();
  for (NodeId v = 0; !any_diff && v < a.num_nodes(); ++v) {
    any_diff = a.node_label(v) != c.node_label(v);
  }
  EXPECT_TRUE(any_diff) << "different seeds should differ";
}

TEST(GeneratorTest, PokecLikeSchemaCardinalities) {
  Graph g = MakePokecLike(1);
  // 269 node labels (user + 268 item kinds), 11 edge labels.
  std::set<LabelId> node_labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_labels.insert(g.node_label(v));
  EXPECT_EQ(node_labels.size(), 269u);

  std::set<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.out_edges(v)) edge_labels.insert(e.label);
  }
  EXPECT_EQ(edge_labels.size(), 11u);
}

TEST(GeneratorTest, GPlusLikeSchemaCardinalities) {
  Graph g = MakeGPlusLike(1);
  // 5 schema *types* (person + 4 item domains) realized as per-entity value
  // labels: person + 30 employers + 40 schools + 25 majors + 30 cities.
  std::set<LabelId> node_labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) node_labels.insert(g.node_label(v));
  EXPECT_EQ(node_labels.size(), 1u + 30u + 40u + 25u + 30u);
  // 5 edge types exactly: follow + 4 domain edges.
  std::set<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.out_edges(v)) edge_labels.insert(e.label);
  }
  EXPECT_EQ(edge_labels.size(), 5u);
  // The schema prefixes are present.
  EXPECT_NE(g.labels().Lookup("employer0"), kNoLabel);
  EXPECT_NE(g.labels().Lookup("major0"), kNoLabel);
}

TEST(GeneratorTest, ScaleGrowsTheGraph) {
  Graph s1 = MakePokecLike(1);
  Graph s2 = MakePokecLike(2);
  EXPECT_GT(s2.num_nodes(), s1.num_nodes());
  EXPECT_GT(s2.num_edges(), s1.num_edges());
}

TEST(GeneratorTest, PlantedCorrelationsAreMineable) {
  // The generator's whole point: some like_music predicate must have both
  // positives and LCWA negatives so confidence is well-defined and finite.
  Graph g = MakePokecLike(1);
  LabelId user = g.labels().Lookup("user");
  LabelId like_music = g.labels().Lookup("like_music");
  ASSERT_NE(user, kNoLabel);
  ASSERT_NE(like_music, kNoLabel);

  // Find the most frequent like_music target kind.
  auto freq = FrequentEdgePatterns(g);
  LabelId target = kNoLabel;
  for (const EdgePatternStat& s : freq) {
    if (s.edge_label == like_music) {
      target = s.dst_label;
      break;
    }
  }
  ASSERT_NE(target, kNoLabel);

  VF2Matcher m(g);
  QStats stats = ComputeQStats(m, {user, like_music, target});
  EXPECT_GT(stats.supp_q, 10u);
  EXPECT_GT(stats.supp_qbar, 10u);
}

TEST(GparWorkloadTest, GeneratedRulesAreValidAndSupported) {
  Graph g = MakePokecLike(1);
  LabelId user = g.labels().Lookup("user");
  LabelId like_music = g.labels().Lookup("like_music");
  auto freq = FrequentEdgePatterns(g);
  LabelId target = kNoLabel;
  for (const EdgePatternStat& s : freq) {
    if (s.edge_label == like_music) {
      target = s.dst_label;
      break;
    }
  }
  ASSERT_NE(target, kNoLabel);
  Predicate q{user, like_music, target};

  GparGenOptions opt;
  opt.num_nodes = 4;
  opt.num_edges = 5;
  opt.max_radius = 2;
  std::vector<Gpar> rules = GenerateGparWorkload(g, q, 8, opt);
  ASSERT_GE(rules.size(), 4u);

  VF2Matcher m(g);
  for (const Gpar& r : rules) {
    EXPECT_TRUE(r.predicate() == q);
    EXPECT_LE(r.radius_at_x(), opt.max_radius);
    EXPECT_GE(r.antecedent().num_edges(), 1u);
    // Lifted from real embeddings => support at least 1.
    bool supported = false;
    for (NodeId v : g.nodes_with_label(user)) {
      if (m.ExistsAt(r.pr(), v)) {
        supported = true;
        break;
      }
    }
    EXPECT_TRUE(supported);
  }
}

}  // namespace
}  // namespace gpar
