#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include "common/interner.h"
#include "pattern/automorphism.h"
#include "pattern/bisimulation.h"
#include "pattern/codec.h"
#include "pattern/pattern_ops.h"

namespace gpar {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  Interner labels_;
  LabelId cust_ = labels_.Intern("cust");
  LabelId city_ = labels_.Intern("city");
  LabelId fr_ = labels_.Intern("fr");
  LabelId friend_ = labels_.Intern("friend");
  LabelId live_in_ = labels_.Intern("live_in");
  LabelId like_ = labels_.Intern("like");
};

TEST_F(PatternTest, BuildAndAdjacency) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId y = p.AddNode(cust_);
  PNodeId c = p.AddNode(city_);
  p.AddEdge(x, friend_, y);
  p.AddEdge(x, live_in_, c);
  p.set_x(x);

  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_edges(), 2u);
  EXPECT_EQ(p.adj(x).size(), 2u);
  EXPECT_EQ(p.adj(y).size(), 1u);
  EXPECT_FALSE(p.adj(y)[0].out);
  EXPECT_EQ(p.adj(y)[0].other, x);
}

TEST_F(PatternTest, ExpandMultiplicities) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId f = p.AddNode(fr_, 3);
  p.AddEdge(x, like_, f);
  p.set_x(x);

  EXPECT_TRUE(p.has_multiplicities());
  std::vector<PNodeId> first_copy;
  Pattern e = p.ExpandMultiplicities(&first_copy);
  EXPECT_EQ(e.num_nodes(), 4u);   // x + 3 copies
  EXPECT_EQ(e.num_edges(), 3u);   // one like per copy
  EXPECT_FALSE(e.has_multiplicities());
  EXPECT_EQ(e.x(), first_copy[x]);
  // Identity mapping when nothing to expand.
  Pattern none;
  none.AddNode(cust_);
  std::vector<PNodeId> id_map;
  none.ExpandMultiplicities(&id_map);
  EXPECT_EQ(id_map, std::vector<PNodeId>{0});
}

TEST_F(PatternTest, RadiusAndConnectivity) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId a = p.AddNode(cust_);
  PNodeId b = p.AddNode(city_);
  p.AddEdge(x, friend_, a);
  p.AddEdge(a, live_in_, b);
  p.set_x(x);
  EXPECT_EQ(Radius(p, x), 2u);
  EXPECT_EQ(Radius(p, a), 1u);
  EXPECT_TRUE(IsConnected(p));

  PNodeId isolated = p.AddNode(fr_);
  (void)isolated;
  EXPECT_FALSE(IsConnected(p));
  EXPECT_EQ(Radius(p, x), kUnreachable);
}

TEST_F(PatternTest, SubsumptionAnchored) {
  // sub: x --friend--> z ; super: x --friend--> z, x --live_in--> c.
  Pattern sub;
  PNodeId sx = sub.AddNode(cust_);
  PNodeId sz = sub.AddNode(cust_);
  sub.AddEdge(sx, friend_, sz);
  sub.set_x(sx);

  Pattern super;
  PNodeId px = super.AddNode(cust_);
  PNodeId pz = super.AddNode(cust_);
  PNodeId pc = super.AddNode(city_);
  super.AddEdge(px, friend_, pz);
  super.AddEdge(px, live_in_, pc);
  super.set_x(px);

  EXPECT_TRUE(IsSubsumedBy(sub, super, /*anchor_designated=*/true));
  EXPECT_FALSE(IsSubsumedBy(super, sub, true));

  // Anchoring matters: reversed friend edge is not subsumed at x.
  Pattern rev;
  PNodeId rx = rev.AddNode(cust_);
  PNodeId rz = rev.AddNode(cust_);
  rev.AddEdge(rz, friend_, rx);
  rev.set_x(rx);
  EXPECT_FALSE(IsSubsumedBy(rev, super, true));
  EXPECT_TRUE(IsSubsumedBy(rev, super, /*anchor_designated=*/false));
}

TEST_F(PatternTest, SubsumptionRespectsMultiplicity) {
  Pattern one;
  PNodeId ox = one.AddNode(cust_);
  PNodeId of = one.AddNode(fr_, 2);
  one.AddEdge(ox, like_, of);
  one.set_x(ox);

  Pattern three;
  PNodeId tx = three.AddNode(cust_);
  PNodeId tf = three.AddNode(fr_, 3);
  three.AddEdge(tx, like_, tf);
  three.set_x(tx);

  EXPECT_TRUE(IsSubsumedBy(one, three, true));   // 2 <= 3 copies
  EXPECT_FALSE(IsSubsumedBy(three, one, true));  // 3 > 2
}

TEST_F(PatternTest, ApplyExtensionForwardAndBackward) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId a = p.AddNode(cust_);
  p.AddEdge(x, friend_, a);
  p.set_x(x);

  Pattern fwd = ApplyExtension(p, {a, true, live_in_, city_, kNoPatternNode});
  EXPECT_EQ(fwd.num_nodes(), 3u);
  EXPECT_EQ(fwd.num_edges(), 2u);

  Pattern back = ApplyExtension(p, {a, true, friend_, kNoLabel, x});
  EXPECT_EQ(back.num_nodes(), 2u);
  EXPECT_EQ(back.num_edges(), 2u);
}

TEST_F(PatternTest, IsomorphismDetectsRenamings) {
  Pattern p1;
  {
    PNodeId x = p1.AddNode(cust_);
    PNodeId a = p1.AddNode(cust_);
    PNodeId c = p1.AddNode(city_);
    p1.AddEdge(x, friend_, a);
    p1.AddEdge(a, live_in_, c);
    p1.set_x(x);
  }
  Pattern p2;  // same shape, nodes declared in another order
  {
    PNodeId c = p2.AddNode(city_);
    PNodeId x = p2.AddNode(cust_);
    PNodeId a = p2.AddNode(cust_);
    p2.AddEdge(x, friend_, a);
    p2.AddEdge(a, live_in_, c);
    p2.set_x(x);
  }
  EXPECT_TRUE(AreIsomorphic(p1, p2, /*preserve_designated=*/true));

  // Designation breaks it: x on the other endpoint.
  Pattern p3 = p2;
  p3.set_x(2);  // the friend target
  EXPECT_FALSE(AreIsomorphic(p1, p3, true));
  EXPECT_TRUE(AreIsomorphic(p1, p3, /*preserve_designated=*/false));
}

TEST_F(PatternTest, IsomorphismBucketKeyIsInvariant) {
  Pattern p1;
  {
    PNodeId x = p1.AddNode(cust_);
    PNodeId a = p1.AddNode(cust_);
    p1.AddEdge(x, friend_, a);
    p1.set_x(x);
  }
  Pattern p2;
  {
    PNodeId a = p2.AddNode(cust_);
    PNodeId x = p2.AddNode(cust_);
    p2.AddEdge(x, friend_, a);
    p2.set_x(x);
  }
  EXPECT_EQ(IsomorphismBucketKey(p1), IsomorphismBucketKey(p2));
}

TEST_F(PatternTest, BisimulationNecessaryForIsomorphism) {
  // Lemma 4 direction: isomorphic => bisimilar.
  Pattern p1;
  {
    PNodeId x = p1.AddNode(cust_);
    PNodeId a = p1.AddNode(cust_);
    PNodeId c = p1.AddNode(city_);
    p1.AddEdge(x, friend_, a);
    p1.AddEdge(x, live_in_, c);
    p1.AddEdge(a, live_in_, c);
    p1.set_x(x);
  }
  Pattern p2 = p1;
  EXPECT_TRUE(AreBisimilar(p1, p2));
  EXPECT_TRUE(AreBisimilarDesignated(p1, p2));

  // Different out-behaviour: drop one live_in.
  Pattern p3;
  {
    PNodeId x = p3.AddNode(cust_);
    PNodeId a = p3.AddNode(cust_);
    PNodeId c = p3.AddNode(city_);
    p3.AddEdge(x, friend_, a);
    p3.AddEdge(x, live_in_, c);
    p3.set_x(x);
  }
  EXPECT_FALSE(AreBisimilar(p1, p3));
  EXPECT_FALSE(AreIsomorphic(p1, p3, false));  // consistent with Lemma 4
}

TEST_F(PatternTest, BisimilarButNotIsomorphic) {
  // A 2-cycle and a 3-cycle of the same label/edge are bisimilar yet not
  // isomorphic — exactly why bisimulation is only a prefilter.
  Pattern two;
  {
    PNodeId a = two.AddNode(cust_);
    PNodeId b = two.AddNode(cust_);
    two.AddEdge(a, friend_, b);
    two.AddEdge(b, friend_, a);
  }
  Pattern three;
  {
    PNodeId a = three.AddNode(cust_);
    PNodeId b = three.AddNode(cust_);
    PNodeId c = three.AddNode(cust_);
    three.AddEdge(a, friend_, b);
    three.AddEdge(b, friend_, c);
    three.AddEdge(c, friend_, a);
  }
  EXPECT_TRUE(AreBisimilar(two, three));
  EXPECT_FALSE(AreIsomorphic(two, three, false));
}

TEST_F(PatternTest, BisimulationColors) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId a = p.AddNode(cust_);
  PNodeId b = p.AddNode(cust_);
  PNodeId c = p.AddNode(city_);
  p.AddEdge(a, live_in_, c);
  p.AddEdge(b, live_in_, c);
  p.set_x(x);
  auto colors = BisimulationColors(p);
  EXPECT_EQ(colors[a], colors[b]);  // same behaviour
  EXPECT_NE(colors[x], colors[a]);  // x has no out-edges
  EXPECT_NE(colors[c], colors[a]);  // different label
}

TEST_F(PatternTest, CodecRoundTrip) {
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId f = p.AddNode(fr_, 3);
  PNodeId y = p.AddNode(fr_);
  p.AddEdge(x, like_, f);
  p.AddEdge(x, like_, y);
  p.set_x(x);
  p.set_y(y);

  std::string text = SerializePattern(p, labels_);
  auto r = ParsePattern(text, &labels_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(p == r.value());
}

TEST_F(PatternTest, CodecRejectsBadInput) {
  Interner in;
  EXPECT_FALSE(ParsePattern("", &in).ok());
  EXPECT_FALSE(ParsePattern("n 5 label\n", &in).ok());
  EXPECT_FALSE(ParsePattern("n 0 a\ne 0 9 l\n", &in).ok());
  EXPECT_FALSE(ParsePattern("q nonsense\n", &in).ok());
  EXPECT_FALSE(ParsePattern("n 0 a badattr\n", &in).ok());
}

TEST_F(PatternTest, EqualityOperator) {
  Pattern a;
  PNodeId x = a.AddNode(cust_);
  PNodeId y = a.AddNode(fr_);
  a.AddEdge(x, like_, y);
  a.set_x(x);
  Pattern b = a;
  EXPECT_TRUE(a == b);
  b.set_y(y);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace gpar
