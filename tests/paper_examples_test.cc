// Validates every worked number in the paper's running examples against
// this library's implementation of support, LCWA confidence, diversity, and
// the diversified objective (Examples 3, 5, 6/7, 8, 9, 10 over Figures 1-3).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "rule/diversity.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

class PaperG1Test : public ::testing::Test {
 protected:
  PaperG1Test() : g1_(MakePaperG1()), m_(g1_.graph) {
    stats_ = ComputeQStats(m_, g1_.q);
  }
  PaperG1 g1_;
  VF2Matcher m_;
  QStats stats_;
};

TEST_F(PaperG1Test, Example8_QStatsOfVisitFrenchRestaurant) {
  // supp(q, G1) = 5 (cust1-cust4, cust6); supp(~q, G1) = 1 (cust5).
  EXPECT_EQ(stats_.supp_q, 5u);
  EXPECT_EQ(stats_.supp_qbar, 1u);
  EXPECT_EQ(stats_.qbar_nodes, std::vector<NodeId>{g1_.cust5});
  std::vector<NodeId> expected_q{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust4,
                                 g1_.cust6};
  EXPECT_EQ(stats_.q_matches, expected_q);
}

TEST_F(PaperG1Test, Example5_SupportOfQ1AndR1) {
  GparEval eval = EvaluateGpar(m_, g1_.r1, stats_);
  EXPECT_EQ(eval.supp_q_ant, 4u);  // supp(Q1, G1) = 4
  EXPECT_EQ(eval.supp_r, 3u);      // supp(R1, G1) = 3
  std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3};
  EXPECT_EQ(eval.pr_matches, expected);
}

TEST_F(PaperG1Test, Example10_ConfidenceOfR1) {
  GparEval eval = EvaluateGpar(m_, g1_.r1, stats_);
  EXPECT_EQ(eval.supp_qqbar, 1u);  // cust5
  EXPECT_DOUBLE_EQ(eval.conf, 0.6);  // 3*1 / (1*5)
}

TEST_F(PaperG1Test, Example9_ConfidencesOfR5AndR6) {
  GparEval e5 = EvaluateGpar(m_, g1_.r5, stats_);
  EXPECT_EQ(e5.supp_r, 4u);  // cust1-cust4
  EXPECT_DOUBLE_EQ(e5.conf, 0.8);

  GparEval e6 = EvaluateGpar(m_, g1_.r6, stats_);
  EXPECT_EQ(e6.supp_r, 2u);  // cust4, cust6
  EXPECT_DOUBLE_EQ(e6.conf, 0.4);

  // diff(R5, R6) = 0.8 (Example 9).
  EXPECT_DOUBLE_EQ(JaccardDistance(e5.pr_matches, e6.pr_matches), 0.8);

  // F'(R5, R6) = 0.5 * 1.2/5 + 1 * 0.8 = 0.92 at lambda=0.5, k=2, N=5.
  double n_norm = static_cast<double>(stats_.supp_q * stats_.supp_qbar);
  EXPECT_DOUBLE_EQ(FPrime(e5.conf, e6.conf, 0.8, 0.5, n_norm, 2), 0.92);
}

TEST_F(PaperG1Test, Example8_ConfidencesAndDiversityOfR7R8) {
  GparEval e1 = EvaluateGpar(m_, g1_.r1, stats_);
  GparEval e7 = EvaluateGpar(m_, g1_.r7, stats_);
  GparEval e8 = EvaluateGpar(m_, g1_.r8, stats_);

  // R1(x,G1) = R7(x,G1) = {cust1, cust2, cust3}; R8(x,G1) = {cust6}.
  EXPECT_EQ(e7.pr_matches,
            (std::vector<NodeId>{g1_.cust1, g1_.cust2, g1_.cust3}));
  EXPECT_EQ(e8.pr_matches, std::vector<NodeId>{g1_.cust6});

  EXPECT_DOUBLE_EQ(e7.conf, 0.6);
  EXPECT_DOUBLE_EQ(e8.conf, 0.2);

  EXPECT_DOUBLE_EQ(JaccardDistance(e1.pr_matches, e7.pr_matches), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(e1.pr_matches, e8.pr_matches), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(e7.pr_matches, e8.pr_matches), 1.0);

  // F({R7, R8}) = 0.5*0.8/5 + 1*1 = 1.08 at lambda = 0.5, k = 2.
  double n_norm = static_cast<double>(stats_.supp_q * stats_.supp_qbar);
  double f = ObjectiveF({e7.conf, e8.conf}, {&e7.pr_matches, &e8.pr_matches},
                        0.5, n_norm, 2);
  EXPECT_NEAR(f, 1.08, 1e-12);

  // ... and it beats {R5, R6}'s 0.92 (the round-2 replacement in Example 9).
  GparEval e5 = EvaluateGpar(m_, g1_.r5, stats_);
  GparEval e6 = EvaluateGpar(m_, g1_.r6, stats_);
  double f56 = ObjectiveF({e5.conf, e6.conf}, {&e5.pr_matches, &e6.pr_matches},
                          0.5, n_norm, 2);
  EXPECT_NEAR(f56, 0.92, 1e-12);
  EXPECT_GT(f, f56);
}

TEST_F(PaperG1Test, LcwaClassification) {
  EXPECT_EQ(ClassifyLcwa(g1_.graph, g1_.q, g1_.cust1, stats_),
            LcwaCase::kPositive);
  EXPECT_EQ(ClassifyLcwa(g1_.graph, g1_.q, g1_.cust5, stats_),
            LcwaCase::kNegative);
  // A cust with no visit edge at all would be unknown; none exists in G1,
  // so check via the Ecuador graph below instead.
}

TEST(PaperG2Test, Example5_SupportOfR4) {
  PaperG2 g2 = MakePaperG2();
  VF2Matcher m(g2.graph);
  QStats stats = ComputeQStats(m, g2.q);
  EXPECT_EQ(stats.supp_q, 3u);  // acct1-acct3 are confirmed fake

  GparEval eval = EvaluateGpar(m, g2.r4, stats);
  // supp(R4, G2) = supp(Q4, G2) = 3, matches acct1-acct3 (k = 2).
  EXPECT_EQ(eval.supp_r, 3u);
  EXPECT_EQ(eval.supp_q_ant, 3u);
  std::vector<NodeId> expected{g2.acct1, g2.acct2, g2.acct3};
  EXPECT_EQ(eval.pr_matches, expected);
  EXPECT_EQ(eval.antecedent_matches, expected);
}

TEST(PaperEcuadorTest, Examples6And7_LcwaAndBayesFactor) {
  PaperEcuador e = MakePaperEcuador();
  VF2Matcher m(e.graph);
  QStats stats = ComputeQStats(m, e.q);

  // v1 positive, v2 negative (likes only MJ), v3 unknown (no like edges).
  EXPECT_EQ(ClassifyLcwa(e.graph, e.q, e.v1, stats), LcwaCase::kPositive);
  EXPECT_EQ(ClassifyLcwa(e.graph, e.q, e.v2, stats), LcwaCase::kNegative);
  EXPECT_EQ(ClassifyLcwa(e.graph, e.q, e.v3, stats), LcwaCase::kUnknown);

  GparEval eval = EvaluateGpar(m, e.r2, stats);
  // BF confidence is 1: the LCWA removes the impact of the unknown case v3.
  EXPECT_DOUBLE_EQ(eval.conf, 1.0);
  // Conventional confidence punishes v3 as a false negative (< 1).
  EXPECT_LT(eval.conventional_conf, 1.0);
  EXPECT_GT(eval.conventional_conf, 0.0);
}

TEST(BayesFactorTest, TrivialCasesAreInfinite) {
  EXPECT_TRUE(std::isinf(BayesFactorConf(3, 1, 0, 5)));  // logic rule
  EXPECT_TRUE(std::isinf(BayesFactorConf(3, 1, 1, 0)));  // q names no one
  EXPECT_DOUBLE_EQ(BayesFactorConf(0, 1, 1, 5), 0.0);    // incompatibility
}

TEST(BayesFactorTest, MonotoneInSuppR) {
  // "increases monotonically with supp(R, G)" when the rest is fixed.
  double prev = -1;
  for (uint64_t supp_r = 0; supp_r <= 10; ++supp_r) {
    double c = BayesFactorConf(supp_r, 2, 3, 7);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(PaperG1Test2, MinImageSupportAntiMonotonic) {
  // Image-based support of Q1 >= that of R1 (Q1 ⊑ R1's pattern P_R).
  PaperG1 g1 = MakePaperG1();
  VF2Matcher m(g1.graph);
  uint64_t s_q1 = MinImageSupport(m, g1.r1.antecedent());
  uint64_t s_r1 = MinImageSupport(m, g1.r1.pr());
  EXPECT_GE(s_q1, s_r1);
  EXPECT_GT(s_q1, 0u);
}

TEST(PaperG1Test2, SupportAntiMonotonicOverSubsumption) {
  // R5 ⊑ R7 (anchored), so supp(R5) >= supp(R7): 4 >= 3. The measure
  // ||Q(x, G)|| is anti-monotonic — the fix over match-counting (Sec. 3).
  PaperG1 g1 = MakePaperG1();
  VF2Matcher m(g1.graph);
  QStats stats = ComputeQStats(m, g1.q);
  GparEval e5 = EvaluateGpar(m, g1.r5, stats);
  GparEval e7 = EvaluateGpar(m, g1.r7, stats);
  EXPECT_GE(e5.supp_r, e7.supp_r);
}

}  // namespace
}  // namespace gpar
