#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gpar {
namespace {

Result<FlagMap> Parse(std::vector<const char*> argv, int first = 0) {
  return ParseFlagArgs(static_cast<int>(argv.size()), argv.data(), first);
}

TEST(FlagsTest, ParsesPairs) {
  auto r = Parse({"--graph", "g.txt", "--workers", "4"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_EQ(r->at("graph"), "g.txt");
  EXPECT_EQ(r->at("workers"), "4");
}

TEST(FlagsTest, EmptyIsOk) {
  auto r = Parse({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(FlagsTest, SkipsLeadingPositionals) {
  auto r = Parse({"gpar_tool", "mine", "--k", "10"}, /*first=*/2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->at("k"), "10");
}

TEST(FlagsTest, TrailingFlagWithoutValueIsAnError) {
  // Previously dropped silently by the `i + 1 < argc` loop bound.
  auto r = Parse({"--graph", "g.txt", "--rules-out"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("rules-out"), std::string::npos);
}

TEST(FlagsTest, SoleTrailingFlagIsAnError) {
  auto r = Parse({"--out"});
  EXPECT_FALSE(r.ok());
}

TEST(FlagsTest, NonFlagTokenIsAnError) {
  EXPECT_FALSE(Parse({"graph", "g.txt"}).ok());
  EXPECT_FALSE(Parse({"-graph", "g.txt"}).ok());
  EXPECT_FALSE(Parse({"--", "g.txt"}).ok());
}

TEST(FlagsTest, ValuesMayLookLikeFlags) {
  // The value slot is taken verbatim (e.g. negative numbers).
  auto r = Parse({"--offset", "--3"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at("offset"), "--3");
}

TEST(FlagsTest, RepeatedFlagIsAnError) {
  auto r = Parse({"--k", "1", "--k", "2"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("twice"), std::string::npos);
}

}  // namespace
}  // namespace gpar
