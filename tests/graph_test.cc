#include "graph/graph.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/neighborhood.h"
#include "graph/stats.h"

namespace gpar {
namespace {

Graph SmallGraph() {
  GraphBuilder b;
  NodeId a = b.AddNode("person");   // 0
  NodeId c = b.AddNode("person");   // 1
  NodeId s = b.AddNode("store");    // 2
  NodeId t = b.AddNode("city");     // 3
  EXPECT_TRUE(b.AddEdge(a, "knows", c).ok());
  EXPECT_TRUE(b.AddEdge(c, "knows", a).ok());
  EXPECT_TRUE(b.AddEdge(a, "shops_at", s).ok());
  EXPECT_TRUE(b.AddEdge(c, "shops_at", s).ok());
  EXPECT_TRUE(b.AddEdge(s, "in", t).ok());
  EXPECT_TRUE(b.AddEdge(a, "lives_in", t).ok());
  return std::move(b).Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.size(), 10u);  // |G| = |V| + |E|
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddNode("x");
  Status s = b.AddEdge(0, "e", 7);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode("n");
  NodeId c = b.AddNode("n");
  ASSERT_TRUE(b.AddEdge(a, "e", c).ok());
  ASSERT_TRUE(b.AddEdge(a, "e", c).ok());
  ASSERT_TRUE(b.AddEdge(a, "f", c).ok());  // different label survives
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphTest, AdjacencyIsLabelSorted) {
  Graph g = SmallGraph();
  auto edges = g.out_edges(0);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1].label, edges[i].label);
  }
}

TEST(GraphTest, HasEdgeAndLabeledSlices) {
  Graph g = SmallGraph();
  LabelId knows = g.labels().Lookup("knows");
  LabelId shops = g.labels().Lookup("shops_at");
  ASSERT_NE(knows, kNoLabel);
  EXPECT_TRUE(g.HasEdge(0, knows, 1));
  EXPECT_TRUE(g.HasEdge(1, knows, 0));
  EXPECT_FALSE(g.HasEdge(0, knows, 2));
  EXPECT_FALSE(g.HasEdge(0, shops, 1));

  auto slice = g.out_edges_labeled(0, shops);
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0].other, 2u);

  auto empty = g.out_edges_labeled(2, knows);
  EXPECT_TRUE(empty.empty());
}

TEST(GraphTest, InEdgesMirrorOutEdges) {
  Graph g = SmallGraph();
  LabelId shops = g.labels().Lookup("shops_at");
  auto in = g.in_edges_labeled(2, shops);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0].other, 0u);
  EXPECT_EQ(in[1].other, 1u);
}

TEST(GraphTest, LabelIndex) {
  Graph g = SmallGraph();
  LabelId person = g.labels().Lookup("person");
  auto people = g.nodes_with_label(person);
  ASSERT_EQ(people.size(), 2u);
  EXPECT_EQ(people[0], 0u);
  EXPECT_EQ(people[1], 1u);
  EXPECT_EQ(g.label_count(person), 2u);
  EXPECT_TRUE(g.nodes_with_label(kWildcardLabel).empty());
}

TEST(GraphTest, HasOutLabel) {
  Graph g = SmallGraph();
  EXPECT_TRUE(g.HasOutLabel(0, g.labels().Lookup("lives_in")));
  EXPECT_FALSE(g.HasOutLabel(1, g.labels().Lookup("lives_in")));
}

TEST(GraphIoTest, RoundTrip) {
  Graph g = SmallGraph();
  std::ostringstream os;
  ASSERT_TRUE(WriteGraphText(g, os).ok());
  std::istringstream is(os.str());
  auto r = ReadGraphText(is);
  ASSERT_TRUE(r.ok()) << r.status();
  const Graph& h = r.value();
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.labels().Name(h.node_label(v)),
              g.labels().Name(g.node_label(v)));
  }
}

TEST(GraphIoTest, RejectsCorruptInput) {
  std::istringstream bad1("v 0 a\ne 0 5 edge\n");
  EXPECT_FALSE(ReadGraphText(bad1).ok());
  std::istringstream bad2("z nonsense\n");
  EXPECT_FALSE(ReadGraphText(bad2).ok());
  std::istringstream bad3("v 3 skipped_id\n");
  EXPECT_FALSE(ReadGraphText(bad3).ok());
}

TEST(GraphIoTest, RejectsDuplicateVertexId) {
  std::istringstream dup("v 0 a\nv 0 b\n");
  auto r = ReadGraphText(dup);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, RejectsEdgeToUndeclaredVertex) {
  // Both endpoints must be declared before the edge record.
  std::istringstream fwd("v 0 a\ne 0 1 edge\nv 1 b\n");
  EXPECT_FALSE(ReadGraphText(fwd).ok());
  std::istringstream src("v 0 a\nv 1 b\ne 7 1 edge\n");
  EXPECT_FALSE(ReadGraphText(src).ok());
}

TEST(GraphIoTest, RejectsMalformedRecords) {
  std::istringstream v_short("v 0\n");
  EXPECT_FALSE(ReadGraphText(v_short).ok());
  std::istringstream v_nonint("v zero a\n");
  EXPECT_FALSE(ReadGraphText(v_nonint).ok());
  std::istringstream e_short("v 0 a\nv 1 b\ne 0 1\n");
  EXPECT_FALSE(ReadGraphText(e_short).ok());
  std::istringstream e_nonint("v 0 a\nv 1 b\ne 0 one edge\n");
  auto r = ReadGraphText(e_nonint);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream ok("# header\n\nv 0 a\n# mid\nv 1 b\ne 0 1 edge\n\n");
  auto r = ReadGraphText(ok);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_nodes(), 2u);
  EXPECT_EQ(r->num_edges(), 1u);
}

TEST(GraphIoTest, EscapedLabelsRoundTrip) {
  // Spaces are escaped with '_' by convention; underscores must survive
  // both directions verbatim.
  GraphBuilder b;
  NodeId v0 = b.AddNode("French_restaurant");
  NodeId v1 = b.AddNode("fine_dining_lover");
  ASSERT_TRUE(b.AddEdge(v1, "dined_at", v0).ok());
  Graph g = std::move(b).Build();

  std::ostringstream os;
  ASSERT_TRUE(WriteGraphText(g, os).ok());
  std::istringstream is(os.str());
  auto r = ReadGraphText(is);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->labels().Name(r->node_label(v0)), "French_restaurant");
  EXPECT_EQ(r->labels().Name(r->node_label(v1)), "fine_dining_lover");
  auto edges = r->out_edges(v1);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(r->labels().Name(edges[0].label), "dined_at");

  // Second round trip is textually identical.
  std::ostringstream os2;
  ASSERT_TRUE(WriteGraphText(*r, os2).ok());
  EXPECT_EQ(os2.str(), os.str());
}

TEST(NeighborhoodTest, RadiusBfs) {
  Graph g = SmallGraph();
  // From node 3 (city): hop 1 = {s, a}, hop 2 = {c}.
  std::vector<uint32_t> dist;
  auto n1 = NodesWithinRadius(g, 3, 1, &dist);
  EXPECT_EQ(n1.size(), 3u);
  auto n2 = NodesWithinRadius(g, 3, 2, &dist);
  EXPECT_EQ(n2.size(), 4u);
  uint32_t max_d = 0;
  for (uint32_t d : dist) max_d = std::max(max_d, d);
  EXPECT_EQ(max_d, 2u);
}

TEST(NeighborhoodTest, InducedSubgraphKeepsInternalEdgesOnly) {
  Graph g = SmallGraph();
  InducedSubgraph sub = BuildInducedSubgraph(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  // knows x2 + lives_in survive; shops_at edges dropped (store excluded).
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  // Label dictionary is shared.
  EXPECT_EQ(sub.graph.labels().Lookup("knows"), g.labels().Lookup("knows"));
}

TEST(NeighborhoodTest, DNeighborhoodCentersItself) {
  Graph g = SmallGraph();
  DNeighborhood dn = ExtractDNeighborhood(g, 0, 1);
  EXPECT_EQ(dn.sub.to_global[dn.center_local], 0u);
  // 1 hop of node 0: {0, 1, 2, 3}.
  EXPECT_EQ(dn.sub.graph.num_nodes(), 4u);
}

TEST(NeighborhoodTest, Descendants) {
  Graph g = SmallGraph();
  EXPECT_TRUE(IsDescendant(g, 0, 3));   // a -> t directly
  EXPECT_TRUE(IsDescendant(g, 1, 3));   // c -> s -> t
  EXPECT_FALSE(IsDescendant(g, 3, 0));  // t has no out-edges
  EXPECT_FALSE(IsDescendant(g, 0, 0));  // not its own descendant
}

TEST(StatsTest, FrequentEdgePatterns) {
  Graph g = SmallGraph();
  auto stats = FrequentEdgePatterns(g);
  ASSERT_FALSE(stats.empty());
  // (person, knows, person) and (person, shops_at, store) both occur twice.
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[1].count, 2u);
  auto limited = FrequentEdgePatterns(g, 2);
  EXPECT_EQ(limited.size(), 2u);
}

TEST(StatsTest, DegreeStats) {
  Graph g = SmallGraph();
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(s.avg_degree, 3.0);  // 2*6/4
  EXPECT_EQ(s.max_out_degree, 3u);      // node 0
  EXPECT_EQ(s.max_in_degree, 2u);       // store and city
}

}  // namespace
}  // namespace gpar
