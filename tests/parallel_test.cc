#include "parallel/bsp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"

namespace gpar {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, CoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(17);
  ParallelFor(pool, 17, [&](uint32_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BspTest, RoundsAndMakespan) {
  BspRuntime bsp(4);
  std::atomic<int> work{0};
  bsp.RunRound([&](uint32_t) {
    // A small busy loop so CPU time is measurable but tiny.
    volatile int64_t x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
    work.fetch_add(1);
  });
  bsp.RunCoordinator([&] { work.fetch_add(1); });
  bsp.RunRound([&](uint32_t) { work.fetch_add(1); });

  ParallelTimes t = bsp.FinishTiming();
  EXPECT_EQ(work.load(), 9);  // 4 + 1 + 4
  EXPECT_EQ(t.rounds, 2u);
  EXPECT_EQ(t.worker_total_seconds.size(), 4u);
  EXPECT_GE(t.makespan_seconds, 0.0);
  EXPECT_GE(t.wall_seconds, 0.0);
  // Makespan (max per round) is never more than the sum of worker times.
  double total_worker = 0;
  for (double s : t.worker_total_seconds) total_worker += s;
  EXPECT_LE(t.makespan_seconds, total_worker + 1e-9);
  EXPECT_DOUBLE_EQ(t.SimulatedParallelSeconds(),
                   t.makespan_seconds + t.coordinator_seconds);
}

TEST(BspTest, GatherRoundReturnsPerWorkerPayloads) {
  // The gather overload returns each worker's payload in its own slot —
  // worker-id-indexed, independent of scheduling — and is timed like a
  // normal round (counts as a round, contributes to the makespan).
  BspRuntime bsp(4);
  std::vector<std::vector<uint32_t>> payloads =
      bsp.RunRound([](uint32_t i) {
        std::vector<uint32_t> mine;
        for (uint32_t k = 0; k <= i; ++k) mine.push_back(i * 10 + k);
        return mine;
      });
  ASSERT_EQ(payloads.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(payloads[i].size(), i + 1) << "worker " << i;
    for (uint32_t k = 0; k <= i; ++k) EXPECT_EQ(payloads[i][k], i * 10 + k);
  }

  // A void lambda still resolves to the non-gather overload.
  std::atomic<int> hits{0};
  bsp.RunRound([&](uint32_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);

  ParallelTimes t = bsp.FinishTiming();
  EXPECT_EQ(t.rounds, 2u);
}

TEST(BspTest, GatherRoundIsDeterministicAcrossRuns) {
  // Scheduling invariance: repeated gathers produce identical payload
  // vectors (each worker owns exactly its slot).
  auto run = [] {
    BspRuntime bsp(8);
    return bsp.RunRound([](uint32_t i) { return i * i + 1; });
  };
  std::vector<uint32_t> a = run();
  for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(run(), a);
}

TEST(BspTest, MakespanShrinksWithMoreWorkers) {
  // Fixed total work divided over n workers: makespan must not grow with n
  // (the essence of the parallel-scalability measurements).
  auto run = [](uint32_t n) {
    BspRuntime bsp(n);
    const int total_items = 64;
    bsp.RunRound([&](uint32_t w) {
      // Worker w handles its slice of items.
      volatile double acc = 0;
      for (int item = w; item < total_items; item += n) {
        for (int i = 0; i < 400000; ++i) acc = acc + i * 0.5;
      }
    });
    return bsp.FinishTiming().makespan_seconds;
  };
  double t1 = run(1);
  double t8 = run(8);
  // CPU-time accounting makes this robust even on a single-core host.
  EXPECT_LT(t8, t1 * 0.6);
}

TEST(ThreadCpuTest, MonotonicallyIncreases) {
  double a = ThreadCpuSeconds();
  volatile int64_t x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + i;
  double b = ThreadCpuSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace gpar
