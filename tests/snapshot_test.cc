#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>

#include "common/binary_io.h"
#include "graph/generator.h"
#include "rule/match_delta.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"
#include "graph/graph_io.h"
#include "graph/graph_snapshot.h"
#include "graph/paper_graphs.h"
#include "rule/rule_snapshot.h"

namespace gpar {
namespace {

std::string GraphBytes(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteGraphSnapshot(g, os).ok());
  return os.str();
}

std::string RuleBytes(const std::vector<RuleRecord>& rules,
                      const Interner& labels) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteRuleSetSnapshot(rules, labels, os).ok());
  return os.str();
}

/// The acceptance property: write -> read -> write is byte-identical, and
/// the reloaded graph answers like the original.
void CheckGraphRoundTrip(const Graph& g) {
  std::string bytes = GraphBytes(g);
  std::istringstream is(bytes);
  auto reloaded = ReadGraphSnapshot(is);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(GraphBytes(*reloaded), bytes);

  ASSERT_EQ(reloaded->num_nodes(), g.num_nodes());
  ASSERT_EQ(reloaded->num_edges(), g.num_edges());
  EXPECT_EQ(reloaded->labels().size(), g.labels().size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(reloaded->node_label(v), g.node_label(v));
    auto a = g.out_edges(v), b = reloaded->out_edges(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    auto ai = g.in_edges(v), bi = reloaded->in_edges(v);
    ASSERT_EQ(ai.size(), bi.size());
    for (size_t i = 0; i < ai.size(); ++i) EXPECT_EQ(ai[i], bi[i]);
  }
  // Also equivalent to the text format's view of the graph.
  std::ostringstream ta, tb;
  ASSERT_TRUE(WriteGraphText(g, ta).ok());
  ASSERT_TRUE(WriteGraphText(*reloaded, tb).ok());
  EXPECT_EQ(ta.str(), tb.str());
}

TEST(GraphSnapshotTest, RoundTripSmall) {
  GraphBuilder b;
  NodeId alice = b.AddNode("cust");
  NodeId bob = b.AddNode("cust");
  NodeId shop = b.AddNode("French_restaurant");
  ASSERT_TRUE(b.AddEdge(alice, "visit", shop).ok());
  ASSERT_TRUE(b.AddEdge(bob, "visit", shop).ok());
  ASSERT_TRUE(b.AddEdge(alice, "follow", bob).ok());
  CheckGraphRoundTrip(std::move(b).Build());
}

TEST(GraphSnapshotTest, RoundTripEmptyAndIsolated) {
  CheckGraphRoundTrip(GraphBuilder().Build());

  GraphBuilder b;
  b.AddNode("lonely");
  b.AddNode("also_lonely");
  CheckGraphRoundTrip(std::move(b).Build());
}

TEST(GraphSnapshotTest, RoundTripInternerWithUnusedLabels) {
  // Labels interned but never used by a node/edge (e.g. during mining)
  // must survive, or label ids in rule evaluations would shift.
  GraphBuilder b;
  NodeId v = b.AddNode("user");
  b.AddNode("user");
  ASSERT_TRUE(b.AddEdge(v, "follows", v + 1).ok());
  Graph g = std::move(b).Build();
  g.mutable_labels()->Intern("never_used_anywhere");
  CheckGraphRoundTrip(g);
}

TEST(GraphSnapshotTest, RoundTripGenerated) {
  CheckGraphRoundTrip(MakePokecLike(1, 7));
  CheckGraphRoundTrip(MakeSynthetic(500, 1500, 20, 11));
}

TEST(GraphSnapshotTest, RejectsCorruption) {
  Graph g = MakeSynthetic(50, 120, 8, 3);
  std::string bytes = GraphBytes(g);

  {  // bad magic
    std::string bad = bytes;
    bad[0] ^= 0x5a;
    std::istringstream is(bad);
    auto r = ReadGraphSnapshot(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  {  // bad version
    std::string bad = bytes;
    bad[8] = 99;
    std::istringstream is(bad);
    EXPECT_FALSE(ReadGraphSnapshot(is).ok());
  }
  {  // truncated payload
    std::string bad = bytes.substr(0, bytes.size() - 7);
    std::istringstream is(bad);
    EXPECT_FALSE(ReadGraphSnapshot(is).ok());
  }
  {  // flipped payload byte -> checksum mismatch
    std::string bad = bytes;
    bad[bytes.size() / 2] ^= 0x01;
    std::istringstream is(bad);
    auto r = ReadGraphSnapshot(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  {  // empty stream
    std::istringstream is("");
    EXPECT_FALSE(ReadGraphSnapshot(is).ok());
  }
  {  // huge declared payload size: clean Corruption, no giant allocation
    std::string bad = bytes.substr(0, 12);
    for (int i = 0; i < 8; ++i) bad.push_back(static_cast<char>(0x3f));
    bad.append(bytes.substr(20));
    std::istringstream is(bad);
    auto r = ReadGraphSnapshot(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  {  // huge declared node count inside a checksummed payload
    GraphBuilder b;
    b.AddNode("a");
    std::string small = GraphBytes(std::move(b).Build());
    // Payload layout here: u32 label_count=1, (u32 len=1, 'a'),
    // u32 num_nodes at offset 28 + 9.
    std::string bad = small;
    for (int i = 0; i < 4; ++i) bad[28 + 9 + i] = static_cast<char>(0xff);
    // Re-stamp the checksum so only the count check can reject.
    std::string payload = bad.substr(28);
    uint64_t sum = Fnv1a64(payload);
    std::string sum_bytes;
    PutU64(&sum_bytes, sum);
    for (int i = 0; i < 8; ++i) bad[20 + i] = sum_bytes[i];
    std::istringstream is(bad);
    auto r = ReadGraphSnapshot(is);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(RuleSnapshotTest, RoundTripWithMetadata) {
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{
      {g1.r1, 42, 0.75},
      {g1.r5, 7, 1.25},
      {g1.r6, 0, 0.0},
  };
  const Interner& labels = g1.graph.labels();
  std::string bytes = RuleBytes(records, labels);

  std::istringstream is(bytes);
  auto reloaded = ReadRuleSetSnapshot(is, g1.graph.mutable_labels());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*reloaded)[i].rule, records[i].rule) << "rule " << i;
    EXPECT_EQ((*reloaded)[i].supp, records[i].supp);
    EXPECT_EQ((*reloaded)[i].conf, records[i].conf);
  }
  // Byte-identical re-serialization.
  EXPECT_EQ(RuleBytes(*reloaded, labels), bytes);
}

TEST(RuleSnapshotTest, LoadsIntoFreshInterner) {
  // Rule snapshots are self-describing (label names): loading against an
  // empty dictionary works and the patterns keep their structure.
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{{g1.r1, 1, 0.5}};
  std::string bytes = RuleBytes(records, g1.graph.labels());

  Interner fresh;
  std::istringstream is(bytes);
  auto reloaded = ReadRuleSetSnapshot(is, &fresh);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ(reloaded->size(), 1u);
  const Gpar& r = (*reloaded)[0].rule;
  EXPECT_EQ(r.antecedent().num_nodes(), g1.r1.antecedent().num_nodes());
  EXPECT_EQ(r.antecedent().num_edges(), g1.r1.antecedent().num_edges());
  EXPECT_EQ(fresh.Name(r.q_label()),
            g1.graph.labels().Name(g1.r1.q_label()));
}

TEST(RuleSnapshotTest, RejectsCorruption) {
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{{g1.r1, 1, 0.5}};
  std::string bytes = RuleBytes(records, g1.graph.labels());
  Interner fresh;
  {
    std::string bad = bytes;
    bad[0] ^= 0xff;
    std::istringstream is(bad);
    EXPECT_FALSE(ReadRuleSetSnapshot(is, &fresh).ok());
  }
  {
    std::string bad = bytes;
    bad.back() ^= 0x10;  // payload flip -> checksum
    std::istringstream is(bad);
    EXPECT_FALSE(ReadRuleSetSnapshot(is, &fresh).ok());
  }
  {
    std::string bad = bytes.substr(0, bytes.size() / 2);
    std::istringstream is(bad);
    EXPECT_FALSE(ReadRuleSetSnapshot(is, &fresh).ok());
  }
}

TEST(GraphDeltaTest, PatchedEqualsRebuilt) {
  Graph g = MakeSynthetic(200, 500, 12, 5);
  std::vector<EdgeInsert> inserts;
  LabelId like = g.mutable_labels()->Intern("delta_like");
  // A mix: brand-new label, existing labels, duplicates, repeats.
  inserts.push_back({3, like, 9});
  inserts.push_back({3, like, 9});  // repeated in the batch
  inserts.push_back({17, g.node_label(0), 4});
  {
    auto existing = g.out_edges(1);
    if (!existing.empty()) {
      inserts.push_back({1, existing[0].label, existing[0].other});  // dup
    }
  }
  inserts.push_back({199, like, 0});

  auto patch = PatchGraphWithInserts(g, inserts);
  ASSERT_TRUE(patch.ok()) << patch.status();

  // Reference: rebuild from scratch with the original edges + inserts.
  GraphBuilder b(g.labels_ptr());
  for (NodeId v = 0; v < g.num_nodes(); ++v) b.AddNode(g.node_label(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      ASSERT_TRUE(b.AddEdge(v, e.label, e.other).ok());
    }
  }
  for (const EdgeInsert& e : inserts) {
    ASSERT_TRUE(b.AddEdge(e.src, e.label, e.dst).ok());
  }
  Graph rebuilt = std::move(b).Build();

  // Bit-identical CSR: snapshot bytes are a complete fingerprint.
  EXPECT_EQ(GraphBytes(patch->graph), GraphBytes(rebuilt));
  EXPECT_GE(patch->edges_inserted, 3u);
  EXPECT_GE(patch->duplicates, 1u);
  EXPECT_EQ(patch->applied.size(), patch->edges_inserted);
}

/// From-scratch reference for the patch bit-identity checks: rebuild on
/// the same interner from the final edge list (old edges \ deletes) ∪
/// inserts, through the ordinary builder path.
Graph RebuildWith(const Graph& g, const std::vector<EdgeDelete>& deletes,
                  const std::vector<EdgeInsert>& inserts) {
  GraphBuilder b(g.labels_ptr());
  for (NodeId v = 0; v < g.num_nodes(); ++v) b.AddNode(g.node_label(v));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(deletes.begin(), deletes.end(),
                    EdgeDelete{v, e.label, e.other}) != deletes.end()) {
        continue;
      }
      EXPECT_TRUE(b.AddEdge(v, e.label, e.other).ok());
    }
  }
  for (const EdgeInsert& e : inserts) {
    EXPECT_TRUE(b.AddEdge(e.src, e.label, e.dst).ok());
  }
  return std::move(b).Build();
}

TEST(GraphDeltaTest, PureDeletePatchEqualsRebuilt) {
  Graph g = MakeSynthetic(200, 500, 12, 5);
  ASSERT_GT(g.out_edges(1).size(), 0u);
  ASSERT_GT(g.out_edges(2).size(), 0u);
  const AdjEntry e1 = g.out_edges(1)[0];
  const AdjEntry e2 = g.out_edges(2).back();
  std::vector<EdgeDelete> deletes{
      {1, e1.label, e1.other},
      {1, e1.label, e1.other},  // duplicate delete: counted, not fatal
      {2, e2.label, e2.other},
      {3, e1.label, 199},   // (almost surely) absent edge
      {999, e1.label, 0},   // endpoint out of range
      {0, static_cast<LabelId>(g.labels().size() + 3), 1},  // bogus label
  };
  const bool absent_really_absent = !g.HasEdge(3, e1.label, 199);

  auto patch = PatchGraphWithDeletes(g, deletes);
  ASSERT_TRUE(patch.ok()) << patch.status();
  EXPECT_EQ(GraphBytes(patch->graph),
            GraphBytes(RebuildWith(g, deletes, {})));
  EXPECT_EQ(patch->edges_deleted, absent_really_absent ? 2u : 3u);
  EXPECT_EQ(patch->missing, deletes.size() - patch->edges_deleted);
  EXPECT_EQ(patch->applied_deletes.size(), patch->edges_deleted);
  EXPECT_EQ(patch->edges_inserted, 0u);
  EXPECT_EQ(patch->graph.num_edges(), g.num_edges() - patch->edges_deleted);
}

TEST(GraphDeltaTest, MixedPatchEqualsRebuilt) {
  Graph g = MakeSynthetic(200, 500, 12, 7);
  LabelId like = g.mutable_labels()->Intern("churn_like");
  // Two distinct nodes that actually have out-edges (the synthetic
  // generator leaves some nodes bare).
  NodeId a = 0;
  while (g.out_edges(a).empty()) ++a;
  NodeId b = a + 1;
  while (g.out_edges(b).empty()) ++b;
  const AdjEntry gone = g.out_edges(a)[0];
  const AdjEntry back = g.out_edges(b)[0];

  GraphDelta delta;
  delta.deletes = {
      {a, gone.label, gone.other},
      {b, back.label, back.other},  // delete-then-reinsert within the batch
      {6, like, 7},                 // `like` is new: nothing to delete
  };
  delta.inserts = {
      {b, back.label, back.other},  // the reinsert
      {9, like, 12},
      {9, like, 12},  // repeated in the batch
  };

  auto patch = PatchGraph(g, delta);
  ASSERT_TRUE(patch.ok()) << patch.status();
  EXPECT_EQ(GraphBytes(patch->graph),
            GraphBytes(RebuildWith(g, delta.deletes, delta.inserts)));
  // The reinserted edge is present again and counted on both sides.
  EXPECT_TRUE(patch->graph.HasEdge(b, back.label, back.other));
  EXPECT_FALSE(patch->graph.HasEdge(a, gone.label, gone.other));
  EXPECT_EQ(patch->edges_deleted, 2u);
  EXPECT_EQ(patch->missing, 1u);
  EXPECT_EQ(patch->edges_inserted, 2u);
  EXPECT_EQ(patch->duplicates, 1u);

  // The three entry points agree where their domains overlap.
  GraphDelta insert_only;
  insert_only.inserts = delta.inserts;
  auto via_typed = PatchGraphWithInserts(g, insert_only);
  auto via_span =
      PatchGraphWithInserts(g, std::span<const EdgeInsert>(delta.inserts));
  ASSERT_TRUE(via_typed.ok());
  ASSERT_TRUE(via_span.ok());
  EXPECT_EQ(GraphBytes(via_typed->graph), GraphBytes(via_span->graph));
}

TEST(GraphDeltaTest, ValidatesInserts) {
  Graph g = MakeSynthetic(10, 20, 3, 1);
  LabelId l = g.node_label(0);
  {
    auto r = PatchGraphWithInserts(g, std::vector<EdgeInsert>{{99, l, 0}});
    EXPECT_FALSE(r.ok());
  }
  {
    LabelId bogus = static_cast<LabelId>(g.labels().size() + 5);
    auto r = PatchGraphWithInserts(g, std::vector<EdgeInsert>{{0, bogus, 1}});
    EXPECT_FALSE(r.ok());
  }
  {  // all-duplicate batch: graph unchanged
    auto e = g.out_edges(0);
    if (!e.empty()) {
      auto r = PatchGraphWithInserts(
          g, std::vector<EdgeInsert>{{0, e[0].label, e[0].other}});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->edges_inserted, 0u);
      EXPECT_EQ(r->duplicates, 1u);
      EXPECT_EQ(GraphBytes(r->graph), GraphBytes(g));
    }
  }
}

TEST(GraphDeltaTest, WireRoundTrip) {
  GraphDelta delta;
  delta.sequence = 42;
  delta.inserts = {{3, 1, 9}, {17, 0, 4}, {199, 2, 0}};
  std::string bytes = delta.Serialize();

  auto back = GraphDelta::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, delta);

  // An empty batch is a legal wire unit too (a heartbeat).
  GraphDelta empty;
  auto back2 = GraphDelta::Deserialize(empty.Serialize());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, empty);
}

TEST(GraphDeltaTest, WireRoundTripV2) {
  GraphDelta delta;
  delta.sequence = 99;
  delta.inserts = {{3, 1, 9}, {17, 0, 4}};
  delta.deletes = {{8, 2, 5}, {1, 1, 1}, {0, 0, 0}};
  const std::string bytes = delta.Serialize();
  // Version field (after the 8-byte magic) says 2 once deletes ride along.
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 2u);

  auto back = GraphDelta::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, delta);

  // Delete-only batches are legal wire units too.
  GraphDelta wipe;
  wipe.deletes = {{4, 4, 4}};
  auto back2 = GraphDelta::Deserialize(wipe.Serialize());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, wipe);
}

TEST(GraphDeltaTest, WireRoundTripV3LabelDefs) {
  GraphDelta delta;
  delta.sequence = 7;
  delta.inserts = {{3, 1, 9}, {17, 5, 4}};
  delta.label_defs = {{1, "knows"}, {5, "follows"}};
  const std::string bytes = delta.Serialize();
  // Any label defs promote the frame to v3, even without deletes.
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 3u);

  auto back = GraphDelta::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, delta);

  // Defs + deletes ride in one v3 frame.
  delta.deletes = {{8, 1, 5}};
  auto back2 = GraphDelta::Deserialize(delta.Serialize());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, delta);
}

TEST(GraphDeltaTest, LabelDefsCollectAndReintern) {
  Interner live;
  const LabelId a = live.Intern("a");
  const LabelId b = live.Intern("b");
  const LabelId minted = live.Intern("minted_live");

  GraphDelta delta;
  delta.inserts = {{0, minted, 1}, {2, a, 3}, {4, minted, 5}};
  delta.deletes = {{6, b, 7}};
  CollectLabelDefs(live, &delta);
  ASSERT_EQ(delta.label_defs.size(), 3u);  // distinct ids, sorted
  EXPECT_EQ(delta.label_defs[0], (LabelDef{a, "a"}));
  EXPECT_EQ(delta.label_defs[1], (LabelDef{b, "b"}));
  EXPECT_EQ(delta.label_defs[2], (LabelDef{minted, "minted_live"}));

  // A dictionary from an older snapshot (no "minted_live") learns it.
  Interner older;
  older.Intern("a");
  older.Intern("b");
  ASSERT_TRUE(ApplyLabelDefs(delta, &older).ok());
  EXPECT_EQ(older.Lookup("minted_live"), minted);
  // Idempotent: everything now verifies as a no-op.
  ASSERT_TRUE(ApplyLabelDefs(delta, &older).ok());
  EXPECT_EQ(older.size(), live.size());

  // A name clash on an existing id is data corruption, not interning.
  Interner clash;
  clash.Intern("a");
  clash.Intern("NOT_b");
  EXPECT_FALSE(ApplyLabelDefs(delta, &clash).ok());

  // In-order defs may extend the dictionary by more than one id (a frame
  // that minted several labels) — but a def that SKIPS ids cannot come
  // from in-order replay.
  Interner fresh;
  ASSERT_TRUE(ApplyLabelDefs(delta, &fresh).ok());
  EXPECT_EQ(fresh.size(), 3u);
  GraphDelta skipper;
  skipper.label_defs = {{2, "minted_live"}};
  Interner gap;
  gap.Intern("a");
  EXPECT_FALSE(ApplyLabelDefs(skipper, &gap).ok());

  // A name already interned under a different id is corruption too.
  GraphDelta dup;
  dup.label_defs = {{2, "a"}};
  Interner two;
  two.Intern("a");
  two.Intern("b");
  EXPECT_FALSE(ApplyLabelDefs(dup, &two).ok());
}

TEST(GraphDeltaTest, WireV1BackCompat) {
  // Pure-insert batches keep the v1 framing byte for byte — archived PR 5/6
  // frames and pre-deletion consumers interoperate in both directions.
  GraphDelta delta;
  delta.sequence = 13;
  delta.inserts = {{1, 0, 2}, {2, 1, 3}};
  const std::string bytes = delta.Serialize();
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 1u);

  // A v1 buffer assembled by hand (the PR 6 layout, independent of
  // Serialize) still deserializes, with empty deletes.
  std::string payload;
  PutU64(&payload, delta.sequence);
  PutU32(&payload, 2);
  for (const EdgeInsert& e : delta.inserts) {
    PutU32(&payload, e.src);
    PutU32(&payload, e.label);
    PutU32(&payload, e.dst);
  }
  std::string v1;
  PutU64(&v1, 0x41544C4452415047ull);  // "GPARDLTA"
  PutU32(&v1, 1);
  PutU64(&v1, payload.size());
  PutU64(&v1, Fnv1a64(payload));
  v1 += payload;
  EXPECT_EQ(v1, bytes);

  auto back = GraphDelta::Deserialize(v1);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, delta);
  EXPECT_TRUE(back->deletes.empty());
}

TEST(GraphDeltaTest, WireRejectsCorruption) {
  GraphDelta delta;
  delta.sequence = 7;
  delta.inserts = {{1, 0, 2}, {2, 1, 3}};
  const std::string bytes = delta.Serialize();

  auto expect_corrupt = [](const std::string& bad, const char* what) {
    auto r = GraphDelta::Deserialize(bad);
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << what;
  };

  expect_corrupt(bytes.substr(0, 10), "truncated header");
  expect_corrupt(bytes.substr(0, bytes.size() - 3), "truncated payload");
  expect_corrupt(bytes + "xx", "trailing bytes");
  {
    std::string bad = bytes;
    bad[0] ^= 0xFF;  // magic
    expect_corrupt(bad, "bad magic");
  }
  {
    std::string bad = bytes;
    bad[8] ^= 0xFF;  // version field follows the 8-byte magic
    expect_corrupt(bad, "unsupported version");
  }
  {
    std::string bad = bytes;
    bad[bytes.size() - 1] ^= 0x5A;  // payload bit-flip breaks the checksum
    expect_corrupt(bad, "checksum mismatch");
  }
}

TEST(GraphDeltaTest, WireV2RejectsCorruption) {
  GraphDelta delta;
  delta.sequence = 7;
  delta.inserts = {{1, 0, 2}, {2, 1, 3}};
  delta.deletes = {{5, 0, 6}};
  const std::string bytes = delta.Serialize();

  auto expect_corrupt = [](const std::string& bad, const std::string& what) {
    auto r = GraphDelta::Deserialize(bad);
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption) << what;
  };

  // Truncation at EVERY byte boundary — which covers every field boundary
  // (header fields, sequence, both counts, every triple) — must fail
  // cleanly: either a short header or a payload-size mismatch.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    expect_corrupt(bytes.substr(0, cut),
                   "truncated at byte " + std::to_string(cut));
  }
  expect_corrupt(bytes + "x", "trailing byte");
  {
    std::string bad = bytes;
    bad[0] ^= 0xFF;
    expect_corrupt(bad, "bad magic");
  }
  {
    std::string bad = bytes;
    bad[8] = 3;  // a version this codec does not speak
    expect_corrupt(bad, "unsupported version");
  }
  {
    std::string bad = bytes;
    bad.back() ^= 0x11;
    expect_corrupt(bad, "checksum mismatch");
  }

  // Oversized counts inside a correctly checksummed payload must be
  // bounded by the bytes present (no giant allocation), then rejected.
  auto restamp = [](std::string frame) {
    std::string sum;
    PutU64(&sum, Fnv1a64(frame.substr(28)));
    for (int i = 0; i < 8; ++i) frame[20 + i] = sum[i];
    return frame;
  };
  {
    std::string bad = bytes;
    for (int i = 0; i < 4; ++i) bad[28 + 8 + i] = static_cast<char>(0xff);
    expect_corrupt(restamp(bad), "oversized insert count");
  }
  {
    // Delete count sits after sequence + insert count + 2 triples.
    const size_t off = 28 + 8 + 4 + 2 * 12;
    std::string bad = bytes;
    for (int i = 0; i < 4; ++i) bad[off + i] = static_cast<char>(0xff);
    expect_corrupt(restamp(bad), "oversized delete count");
  }
}

TEST(GraphDeltaTest, TypedPatchMatchesSpanPatch) {
  Graph g = MakeSynthetic(50, 120, 6, 3);
  GraphDelta delta;
  delta.inserts = {{0, g.node_label(1), 5}, {7, g.node_label(0), 3}};
  auto a = PatchGraphWithInserts(g, delta);
  auto b = PatchGraphWithInserts(
      g, std::span<const EdgeInsert>(delta.inserts));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(GraphBytes(a->graph), GraphBytes(b->graph));
  EXPECT_EQ(a->edges_inserted, b->edges_inserted);
}

TEST(GraphDeltaTest, RadiusBfsFindsLocalNodes) {
  // Path 0-1-2-3-4 (undirected reach through directed edges).
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode("n");
  for (NodeId i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(b.AddEdge(i, "e", i + 1).ok());
  }
  Graph g = std::move(b).Build();
  std::vector<NodeId> sources{2};
  auto within = NodesWithinRadiusOfAny(g, sources, 1);
  ASSERT_EQ(within.size(), 3u);
  EXPECT_EQ(within[0], (std::pair<NodeId, uint32_t>{2, 0}));
  // Radius 2 reaches everything.
  EXPECT_EQ(NodesWithinRadiusOfAny(g, sources, 2).size(), 5u);
  // Two sources dedup.
  std::vector<NodeId> both{0, 1};
  auto r = NodesWithinRadiusOfAny(g, both, 0);
  EXPECT_EQ(r.size(), 2u);
}

// ---------------------------------------------------------------------------
// Match-set-delta codec: evidence sets as positions into the parent list.
// ---------------------------------------------------------------------------

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& child,
                                const std::vector<uint32_t>& parent) {
  MatchSetDelta d = EncodeMatchSet(child, parent);
  auto back = DecodeMatchSet(d, parent);
  EXPECT_TRUE(back.ok()) << back.status();
  return back.ok() ? *back : std::vector<uint32_t>{};
}

TEST(MatchDeltaTest, PicksTheSmallerPositionList) {
  std::vector<uint32_t> parent{2, 5, 9, 11, 40, 41, 80};
  // Child kept almost everything: removed-positions is the cheap side.
  std::vector<uint32_t> dense{2, 5, 9, 11, 41, 80};
  MatchSetDelta d = EncodeMatchSet(dense, parent);
  EXPECT_EQ(d.mode, MatchDeltaMode::kRemoved);
  EXPECT_EQ(d.payload, (std::vector<uint32_t>{4}));  // parent[4] == 40
  EXPECT_EQ(RoundTrip(dense, parent), dense);

  // Child kept almost nothing: kept-positions wins.
  std::vector<uint32_t> sparse{9};
  d = EncodeMatchSet(sparse, parent);
  EXPECT_EQ(d.mode, MatchDeltaMode::kKept);
  EXPECT_EQ(d.payload, (std::vector<uint32_t>{2}));
  EXPECT_EQ(RoundTrip(sparse, parent), sparse);

  EXPECT_EQ(RoundTrip({}, parent), (std::vector<uint32_t>{}));
  EXPECT_EQ(RoundTrip(parent, parent), parent);
}

TEST(MatchDeltaTest, NonSubsetFallsBackToFull) {
  std::vector<uint32_t> parent{2, 5, 9};
  std::vector<uint32_t> child{2, 7};  // 7 not in parent
  MatchSetDelta d = EncodeMatchSet(child, parent);
  EXPECT_EQ(d.mode, MatchDeltaMode::kFull);
  EXPECT_EQ(RoundTrip(child, parent), child);
}

TEST(MatchDeltaTest, WireRoundTripAndSizeAccounting) {
  std::vector<uint32_t> parent(100);
  for (uint32_t i = 0; i < 100; ++i) parent[i] = i * 3;
  // A dense child (9 of 10 kept): removed-positions collapse to a few
  // words, which is where the delta encoding beats the raw center list.
  std::vector<uint32_t> child;
  for (uint32_t i = 0; i < 100; ++i) {
    if (i % 10 != 7) child.push_back(i * 3);
  }

  MatchSetDelta d = EncodeMatchSet(child, parent);
  std::string buf;
  PutMatchSetDelta(&buf, d);
  EXPECT_EQ(buf.size(), DeltaEncodedBytes(child.size(), parent.size()));
  EXPECT_LT(buf.size(), FullEncodedBytes(child.size()));

  ByteReader r(buf);
  MatchSetDelta back;
  ASSERT_TRUE(ReadMatchSetDelta(&r, &back));
  EXPECT_EQ(back, d);
  auto values = DecodeMatchSet(back, parent);
  ASSERT_TRUE(values.ok()) << values.status();
  EXPECT_EQ(*values, child);
}

TEST(MatchDeltaTest, DecodeRejectsCorruptPositions) {
  std::vector<uint32_t> parent{2, 5, 9};
  {
    MatchSetDelta bad{MatchDeltaMode::kKept, {3}};  // out of range
    EXPECT_EQ(DecodeMatchSet(bad, parent).status().code(),
              StatusCode::kCorruption);
  }
  {
    MatchSetDelta bad{MatchDeltaMode::kKept, {1, 1}};  // not ascending
    EXPECT_EQ(DecodeMatchSet(bad, parent).status().code(),
              StatusCode::kCorruption);
  }
  {
    MatchSetDelta bad{MatchDeltaMode::kRemoved, {2, 0}};
    EXPECT_EQ(DecodeMatchSet(bad, parent).status().code(),
              StatusCode::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// Rule snapshot v2: records + the checksummed evidence section.
// ---------------------------------------------------------------------------

RuleSetEvidence TinyEvidence(const PaperG1& g1) {
  RuleSetEvidence ev;
  ev.setup.x_label = g1.graph.labels().Name(g1.q.x_label);
  ev.setup.edge_label = g1.graph.labels().Name(g1.q.edge_label);
  ev.setup.y_label = g1.graph.labels().Name(g1.q.y_label);
  ev.setup.k = 2;
  ev.setup.sigma = 1;
  ev.q_pool = {1, 3, 5, 7};
  ev.qbar_pool = {2, 4};
  EvidenceEntry root;
  root.rule = g1.r1;
  root.parent = kEvidenceRoot;
  root.ant_probed = true;
  root.pr_matches = {1, 5, 7};  // subset of q_pool
  root.ant_matches = {4};       // subset of qbar_pool
  ev.entries.push_back(root);
  EvidenceEntry child;
  child.rule = g1.r5;
  child.parent = 0;
  child.ant_probed = true;
  child.pr_matches = {5};  // subset of the root's pr_matches
  child.ant_matches = {};
  ev.entries.push_back(child);
  return ev;
}

std::string RuleV2Bytes(const std::vector<RuleRecord>& rules,
                        const RuleSetEvidence& ev, const Interner& labels) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteRuleSetSnapshotV2(rules, ev, labels, os).ok());
  return os.str();
}

TEST(RuleSnapshotV2Test, RoundTripWithEvidence) {
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{{g1.r1, 3, 0.75}, {g1.r5, 1, 1.0}};
  RuleSetEvidence ev = TinyEvidence(g1);
  std::string bytes = RuleV2Bytes(records, ev, g1.graph.labels());

  Interner fresh;
  std::istringstream is(bytes);
  auto snap = ReadRuleSetSnapshotAny(is, &fresh);
  ASSERT_TRUE(snap.ok()) << snap.status();
  ASSERT_TRUE(snap->has_evidence);
  EXPECT_EQ(snap->rules.size(), records.size());
  EXPECT_EQ(snap->evidence.setup, ev.setup);
  EXPECT_EQ(snap->evidence.q_pool, ev.q_pool);
  EXPECT_EQ(snap->evidence.qbar_pool, ev.qbar_pool);
  ASSERT_EQ(snap->evidence.entries.size(), ev.entries.size());
  for (size_t i = 0; i < ev.entries.size(); ++i) {
    EXPECT_EQ(snap->evidence.entries[i].parent, ev.entries[i].parent);
    EXPECT_EQ(snap->evidence.entries[i].ant_probed, ev.entries[i].ant_probed);
    EXPECT_EQ(snap->evidence.entries[i].pr_matches, ev.entries[i].pr_matches);
    EXPECT_EQ(snap->evidence.entries[i].ant_matches,
              ev.entries[i].ant_matches);
  }
  // Write -> read -> write is byte-identical, v2 included.
  Interner relabels = fresh;
  EXPECT_EQ(RuleV2Bytes(snap->rules, snap->evidence, relabels), bytes);
}

TEST(RuleSnapshotV2Test, V1ReadersAcceptV2AndViceVersa) {
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{{g1.r1, 3, 0.75}};
  RuleSetEvidence ev = TinyEvidence(g1);
  ev.entries.resize(1);
  std::string v2 = RuleV2Bytes(records, ev, g1.graph.labels());
  std::string v1 = RuleBytes(records, g1.graph.labels());

  // Records-only reader on a v2 file: evidence validated, then dropped.
  Interner fresh;
  std::istringstream is2(v2);
  auto records_only = ReadRuleSetSnapshot(is2, &fresh);
  ASSERT_TRUE(records_only.ok()) << records_only.status();
  EXPECT_EQ(records_only->size(), records.size());

  // Any-version reader on a v1 file: no evidence section.
  Interner fresh2;
  std::istringstream is1(v1);
  auto snap = ReadRuleSetSnapshotAny(is1, &fresh2);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_FALSE(snap->has_evidence);
}

TEST(RuleSnapshotV2Test, RejectsCorruptEvidence) {
  PaperG1 g1 = MakePaperG1();
  std::vector<RuleRecord> records{{g1.r1, 3, 0.75}, {g1.r5, 1, 1.0}};
  RuleSetEvidence ev = TinyEvidence(g1);
  std::string bytes = RuleV2Bytes(records, ev, g1.graph.labels());
  {
    std::string bad = bytes;
    bad.back() ^= 0x01;  // evidence payload flip -> checksum mismatch
    Interner fresh;
    std::istringstream is(bad);
    EXPECT_FALSE(ReadRuleSetSnapshotAny(is, &fresh).ok());
  }
  {
    std::string bad = bytes.substr(0, bytes.size() - 7);  // torn evidence
    Interner fresh;
    std::istringstream is(bad);
    EXPECT_FALSE(ReadRuleSetSnapshotAny(is, &fresh).ok());
  }
  {
    // A child whose parent index points forward breaks evaluation order.
    RuleSetEvidence fwd = TinyEvidence(g1);
    fwd.entries[1].parent = 1;
    std::ostringstream os(std::ios::binary);
    Status st = WriteRuleSetSnapshotV2(records, fwd, g1.graph.labels(), os);
    if (st.ok()) {
      Interner fresh;
      std::istringstream is(os.str());
      EXPECT_FALSE(ReadRuleSetSnapshotAny(is, &fresh).ok());
    }
  }
}

}  // namespace
}  // namespace gpar
