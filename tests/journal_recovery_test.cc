#include "serve/delta_journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "pattern/pattern_generator.h"
#include "rule/rule_snapshot.h"
#include "serve/rule_server.h"

namespace gpar {
namespace {

struct Workload {
  Graph graph;
  std::vector<Gpar> sigma;
  std::vector<RuleRecord> records;
};

/// Same seeded workloads as the ServeEquivalence batteries.
Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.graph = (seed % 3 == 0) ? MakePokecLike(1, seed)
                            : MakeSynthetic(600, 1800, 20, seed);
  auto freq = FrequentEdgePatterns(w.graph);
  EXPECT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  gopt.seed = seed * 31 + 1;
  w.sigma = GenerateGparWorkload(w.graph, q, 5, gopt);
  EXPECT_GE(w.sigma.size(), 2u);
  for (const Gpar& r : w.sigma) w.records.push_back({r, 0, 0.0});
  return w;
}

void ExpectSameAnswer(const EipResult& got, const EipResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.entities, want.entities) << what;
  EXPECT_EQ(got.supp_q, want.supp_q) << what;
  EXPECT_EQ(got.supp_qbar, want.supp_qbar) << what;
  ASSERT_EQ(got.rule_evals.size(), want.rule_evals.size()) << what;
  for (size_t i = 0; i < want.rule_evals.size(); ++i) {
    EXPECT_EQ(got.rule_evals[i].supp_r, want.rule_evals[i].supp_r)
        << what << " rule " << i;
    EXPECT_EQ(got.rule_evals[i].supp_qqbar, want.rule_evals[i].supp_qqbar)
        << what << " rule " << i;
    EXPECT_DOUBLE_EQ(got.rule_evals[i].conf, want.rule_evals[i].conf)
        << what << " rule " << i;
  }
}

/// Snapshot bytes as a complete graph fingerprint (the snapshot writer is
/// deterministic, so byte equality means CSR equality).
std::string GraphBytes(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteGraphSnapshot(g, os).ok());
  return os.str();
}

NodeId PickSourceNode(const Graph& g, std::mt19937_64& rng) {
  NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
  while (g.out_edges(v).empty()) v = (v + 1) % g.num_nodes();
  return v;
}

/// A mutation batch mixing inserts and deletes, as in the
/// DeltaStreamEquivalence battery.
GraphDelta MakeMutationDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  GraphDelta d;
  std::vector<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes() && edge_labels.size() < 8; ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(edge_labels.begin(), edge_labels.end(), e.label) ==
          edge_labels.end()) {
        edge_labels.push_back(e.label);
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
    d.inserts.push_back({src, edge_labels[rng() % edge_labels.size()], dst});
  }
  for (size_t i = 0; i < k; ++i) {
    NodeId v = PickSourceNode(g, rng);
    const auto edges = g.out_edges(v);
    const AdjEntry& e = edges[rng() % edges.size()];
    d.deletes.push_back({v, e.label, e.other});
  }
  return d;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

GraphDelta SmallDelta(uint64_t sequence) {
  GraphDelta d;
  d.sequence = sequence;
  d.inserts.push_back({1, 0, 2});
  d.inserts.push_back({2, 1, 3});
  d.deletes.push_back({4, 0, 5});
  return d;
}

/// Journal tests must leave the process-wide failpoint registry clean.
class DeltaJournalTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::string Path(const std::string& name) {
    std::string p =
        ::testing::TempDir() + "/" + name + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".wal";
    std::remove(p.c_str());  // journals append — reruns must start fresh
    return p;
  }
};

TEST_F(DeltaJournalTest, AppendReadRoundTrip) {
  const std::string path = Path("journal");
  WriteFile(path, "");  // start from an empty file
  auto journal = DeltaJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status();
  DeltaJournal& j = **journal;

  // Zero sequences are stamped monotonically.
  std::vector<GraphDelta> frames{SmallDelta(0), SmallDelta(0), SmallDelta(0)};
  for (const GraphDelta& d : frames) ASSERT_TRUE(j.Append(d).ok());
  EXPECT_EQ(j.last_sequence(), 3u);
  EXPECT_EQ(j.frames_appended(), 3u);
  EXPECT_GT(j.size_bytes(), 0u);

  JournalReplayStats stats;
  auto read = DeltaJournal::ReadAll(path, &stats);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    GraphDelta want = frames[i];
    want.sequence = i + 1;
    EXPECT_EQ((*read)[i], want) << "frame " << i;
  }
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.last_sequence, 3u);
  EXPECT_EQ(stats.valid_bytes, j.size_bytes());
  EXPECT_FALSE(stats.tail_truncated);

  // A missing file is an empty journal, not an error.
  auto empty = DeltaJournal::ReadAll(Path("missing"));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(DeltaJournalTest, ExplicitSequencesMustBeMonotone) {
  const std::string path = Path("journal");
  auto journal = DeltaJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  DeltaJournal& j = **journal;
  ASSERT_TRUE(j.Append(SmallDelta(5)).ok());
  EXPECT_FALSE(j.Append(SmallDelta(5)).ok());  // equal
  EXPECT_FALSE(j.Append(SmallDelta(4)).ok());  // backwards
  ASSERT_TRUE(j.Append(SmallDelta(7)).ok());   // gaps are fine
  EXPECT_EQ(j.last_sequence(), 7u);
  // A rejected append wrote nothing.
  auto read = DeltaJournal::ReadAll(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
}

TEST_F(DeltaJournalTest, NonMonotoneFrameIsCorruptionNotTornTail) {
  // Two checksum-valid frames with the sequence running backwards: that is
  // foreign/reordered data, not a crash artifact — the scan must refuse to
  // truncate away valid history.
  std::string bytes = SmallDelta(2).Serialize() + SmallDelta(1).Serialize();
  std::vector<GraphDelta> frames;
  JournalReplayStats stats;
  Status st = DeltaJournal::ScanBuffer(bytes, &frames, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st;
  EXPECT_NE(st.message().find("non-monotone"), std::string::npos) << st;

  // And Open refuses the file for the same reason.
  const std::string path = Path("journal");
  WriteFile(path, bytes);
  EXPECT_FALSE(DeltaJournal::Open(path).ok());
}

TEST_F(DeltaJournalTest, CompactKeepsSequenceFloorAcrossReopen) {
  const std::string path = Path("journal");
  {
    auto journal = DeltaJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    DeltaJournal& j = **journal;
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(j.Append(SmallDelta(0)).ok());
    ASSERT_TRUE(j.Compact().ok());
    EXPECT_EQ(j.last_sequence(), 3u);
    EXPECT_EQ(j.frames_appended(), 1u);  // just the floor marker

    // The marker is an empty frame carrying the floor sequence.
    auto read = DeltaJournal::ReadAll(path);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(read->size(), 1u);
    EXPECT_EQ((*read)[0].sequence, 3u);
    EXPECT_TRUE((*read)[0].inserts.empty());
    EXPECT_TRUE((*read)[0].deletes.empty());

    // Appends keep counting past the floor.
    ASSERT_TRUE(j.Append(SmallDelta(0)).ok());
    EXPECT_EQ(j.last_sequence(), 4u);
  }
  // ... even across a close/reopen of the compacted journal.
  auto reopened = DeltaJournal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->last_sequence(), 4u);
  ASSERT_TRUE((*reopened)->Append(SmallDelta(0)).ok());
  EXPECT_EQ((*reopened)->last_sequence(), 5u);
}

TEST_F(DeltaJournalTest, OpenTruncatesTornTailInPlace) {
  const std::string path = Path("journal");
  const std::string good =
      SmallDelta(1).Serialize() + SmallDelta(2).Serialize();
  // A torn third frame: only half its bytes reached the disk.
  const std::string torn = SmallDelta(3).Serialize();
  WriteFile(path, good + torn.substr(0, torn.size() / 2));

  JournalReplayStats scan;
  auto journal = DeltaJournal::Open(path, {}, &scan);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.frames, 2u);
  EXPECT_EQ(scan.valid_bytes, good.size());
  EXPECT_EQ(scan.dropped_bytes, torn.size() - torn.size() / 2);
  EXPECT_EQ((*journal)->last_sequence(), 2u);

  // The file itself was cut back to the valid prefix, and appending after
  // recovery extends that prefix cleanly.
  EXPECT_EQ(SlurpFile(path), good);
  ASSERT_TRUE((*journal)->Append(SmallDelta(0)).ok());
  auto read = DeltaJournal::ReadAll(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ((*read)[2].sequence, 3u);
}

TEST_F(DeltaJournalTest, InjectedTornWriteFailsStopUntilReopen) {
  const std::string path = Path("journal");
  auto journal = DeltaJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(SmallDelta(0)).ok());
  const uint64_t good_bytes = (*journal)->size_bytes();

  FailpointSpec spec;
  spec.torn_bytes = 7;
  FailpointRegistry::Instance().Arm("journal.append_torn", spec);
  Status torn = (*journal)->Append(SmallDelta(0));
  EXPECT_EQ(torn.code(), StatusCode::kIoError) << torn;
  FailpointRegistry::Instance().DisarmAll();

  // Fail-stop: every later append reports the failed state ...
  Status after = (*journal)->Append(SmallDelta(0));
  EXPECT_EQ(after.code(), StatusCode::kIoError) << after;
  EXPECT_NE(after.message().find("torn write"), std::string::npos) << after;

  // ... and reopening the path recovers the valid prefix (frame 1 only).
  journal->reset();
  JournalReplayStats scan;
  auto reopened = DeltaJournal::Open(path, {}, &scan);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.frames, 1u);
  EXPECT_EQ(scan.valid_bytes, good_bytes);
  ASSERT_TRUE((*reopened)->Append(SmallDelta(0)).ok());
  EXPECT_EQ((*reopened)->last_sequence(), 2u);
}

TEST_F(DeltaJournalTest, FsyncOnAppendOptionHolds) {
  DeltaJournalOptions opt;
  opt.fsync_on_append = true;
  auto journal = DeltaJournal::Open(Path("journal"), opt);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->Append(SmallDelta(0)).ok());
  EXPECT_EQ((*journal)->last_sequence(), 1u);
}

/// Crash-recovery battery fixture: snapshots + journal in TempDir, unique
/// per test and seed.
class JournalRecovery : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::string Path(const std::string& name, uint64_t seed,
                   const char* ext = "") {
    std::string p =
        ::testing::TempDir() + "/" + name + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
        std::to_string(seed) + ext;
    std::remove(p.c_str());  // journals append — reruns must start fresh
    return p;
  }
};

/// Truncate-at-every-byte: a journal written by a live server is sliced at
/// EVERY byte offset; each slice must scan to exactly the frames whose
/// last byte fits, flag everything else as a torn tail, and replay
/// (snapshot + PatchGraph chain) to the reference graph for that frame
/// count. Full server recovery is then checked at every frame boundary.
TEST_F(JournalRecovery, TruncateAtEveryByteOffsetReplaysValidPrefix) {
  constexpr int kBatches = 3;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);
    const std::string gpath = Path("graph", seed, ".snap");
    const std::string rpath = Path("rules", seed, ".snap");
    const std::string jpath = Path("journal", seed, ".wal");
    ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
    ASSERT_TRUE(
        WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());

    // A live server journals a short mutation stream.
    RuleServerOptions opt;
    opt.num_workers = 2;
    auto live = RuleServer::Create(w.graph, w.records, opt);
    ASSERT_TRUE(live.ok()) << live.status();
    ASSERT_TRUE((*live)->AttachJournal(jpath).ok());
    EXPECT_TRUE((*live)->journal_attached());
    for (int b = 0; b < kBatches; ++b) {
      GraphDelta d = MakeMutationDelta((*live)->graph(), seed * 613 + b, 5);
      auto ds = (*live)->ApplyDelta(d);
      ASSERT_TRUE(ds.ok()) << ds.status();
      EXPECT_EQ(ds->sequence, static_cast<uint64_t>(b) + 1);
      EXPECT_GT(ds->journal_bytes, 0u);
    }
    EXPECT_EQ((*live)->journal_sequence(), static_cast<uint64_t>(kBatches));

    // Reference: the journaled frames and the graph after each of them.
    const std::string bytes = SlurpFile(jpath);
    auto ref = DeltaJournal::ReadAll(jpath);
    ASSERT_TRUE(ref.ok()) << ref.status();
    ASSERT_EQ(ref->size(), static_cast<size_t>(kBatches));
    std::vector<size_t> boundaries{0};
    std::vector<std::string> graph_at{GraphBytes(w.graph)};
    {
      Graph cur = w.graph;
      size_t pos = 0;
      for (const GraphDelta& frame : *ref) {
        auto fs = GraphDelta::FrameSize(
            std::string_view(bytes).substr(pos));
        ASSERT_TRUE(fs.ok());
        pos += *fs;
        boundaries.push_back(pos);
        auto p = PatchGraph(cur, frame);
        ASSERT_TRUE(p.ok());
        cur = std::move(p->graph);
        graph_at.push_back(GraphBytes(cur));
      }
      ASSERT_EQ(pos, bytes.size());
    }
    EXPECT_EQ(GraphBytes((*live)->graph()), graph_at.back());

    // Every byte offset: scan + replay the slice.
    size_t frames_before = 0;
    for (size_t cut = 0; cut <= bytes.size(); ++cut) {
      while (frames_before + 1 < boundaries.size() &&
             boundaries[frames_before + 1] <= cut) {
        ++frames_before;
      }
      std::vector<GraphDelta> frames;
      JournalReplayStats stats;
      Status st = DeltaJournal::ScanBuffer(
          std::string_view(bytes).substr(0, cut), &frames, &stats);
      ASSERT_TRUE(st.ok()) << "cut " << cut << ": " << st;
      ASSERT_EQ(frames.size(), frames_before) << "cut " << cut;
      EXPECT_EQ(stats.valid_bytes, boundaries[frames_before])
          << "cut " << cut;
      EXPECT_EQ(stats.tail_truncated, cut != boundaries[frames_before])
          << "cut " << cut;
      EXPECT_EQ(stats.dropped_bytes, cut - boundaries[frames_before])
          << "cut " << cut;
      for (size_t i = 0; i < frames.size(); ++i) {
        ASSERT_EQ(frames[i], (*ref)[i]) << "cut " << cut << " frame " << i;
      }
    }

    // Every frame boundary: full RuleServer::Recover on the sliced file is
    // byte-equivalent to the reference trajectory; and at one mid-frame
    // cut, recovery truncates the torn tail and lands on the prior
    // boundary.
    for (size_t f = 0; f < boundaries.size(); ++f) {
      WriteFile(jpath, std::string_view(bytes).substr(0, boundaries[f]));
      JournalReplayStats replay;
      auto recovered =
          RuleServer::Recover(gpath, rpath, jpath, opt, {}, &replay);
      ASSERT_TRUE(recovered.ok()) << "boundary " << f << ": "
                                  << recovered.status();
      EXPECT_EQ(replay.frames, f);
      EXPECT_FALSE(replay.tail_truncated);
      EXPECT_EQ(GraphBytes((*recovered)->graph()), graph_at[f])
          << "boundary " << f;
      EXPECT_EQ((*recovered)->journal_sequence(), static_cast<uint64_t>(f));
    }
    const size_t mid = (boundaries[1] + boundaries[2]) / 2;
    WriteFile(jpath, std::string_view(bytes).substr(0, mid));
    JournalReplayStats replay;
    auto recovered =
        RuleServer::Recover(gpath, rpath, jpath, opt, {}, &replay);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE(replay.tail_truncated);
    EXPECT_EQ(replay.frames, 1u);
    EXPECT_EQ(GraphBytes((*recovered)->graph()), graph_at[1]);

    // The recovered server answers exactly like the live one (restore the
    // full journal first).
    WriteFile(jpath, bytes);
    auto full = RuleServer::Recover(gpath, rpath, jpath, opt);
    ASSERT_TRUE(full.ok()) << full.status();
    auto a = (*full)->IdentifyAll(0.5);
    auto b = (*live)->IdentifyAll(0.5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameAnswer(*a, *b, "recovered vs live");
  }
}

/// Kill-at-every-failpoint: crash the ApplyDelta pipeline at each injection
/// site in turn; the recovered server must be byte-equivalent to snapshot +
/// replay — the delta is either wholly in (crash after append) or wholly
/// out (crash before/during append), never half-applied.
TEST_F(JournalRecovery, KillAtEveryAppendAndPublishSite) {
  struct Crash {
    const char* site;
    int64_t torn_bytes;  ///< < 0: plain error injection
    bool delta_survives;  ///< frame reached the journal before the crash
  };
  const Crash kCrashes[] = {
      {"journal.append", -1, false},
      {"journal.append_torn", 11, false},
      {"serve.publish", -1, true},
  };
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);
    const std::string gpath = Path("graph", seed, ".snap");
    const std::string rpath = Path("rules", seed, ".snap");
    ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
    ASSERT_TRUE(
        WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());
    const GraphDelta d1 = MakeMutationDelta(w.graph, seed * 31 + 1, 4);
    auto p1 = PatchGraph(w.graph, d1);
    ASSERT_TRUE(p1.ok());
    const GraphDelta d2 = MakeMutationDelta(p1->graph, seed * 31 + 2, 4);
    auto p2 = PatchGraph(p1->graph, d2);
    ASSERT_TRUE(p2.ok());

    RuleServerOptions opt;
    opt.num_workers = 2;
    for (const Crash& crash : kCrashes) {
      SCOPED_TRACE(crash.site);
      const std::string jpath =
          Path(std::string("journal_") + crash.site, seed) + ".wal";
      WriteFile(jpath, "");
      auto live = RuleServer::Recover(gpath, rpath, jpath, opt);
      ASSERT_TRUE(live.ok()) << live.status();
      ASSERT_TRUE((*live)->ApplyDelta(d1).ok());
      const std::string before = GraphBytes((*live)->graph());

      FailpointSpec spec;
      spec.code = StatusCode::kIoError;
      spec.torn_bytes = crash.torn_bytes;
      FailpointRegistry::Instance().Arm(crash.site, spec);
      auto failed = (*live)->ApplyDelta(d2);
      ASSERT_FALSE(failed.ok()) << crash.site;
      FailpointRegistry::Instance().DisarmAll();
      // The crash never leaks into the served state: published answers
      // still come from the pre-crash graph.
      EXPECT_EQ(GraphBytes((*live)->graph()), before);

      // "Crash" = drop the process state; recover from snapshot + journal.
      live->reset();
      auto recovered = RuleServer::Recover(gpath, rpath, jpath, opt);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      const Graph& want = crash.delta_survives ? p2->graph : p1->graph;
      EXPECT_EQ(GraphBytes((*recovered)->graph()), GraphBytes(want));

      auto got = (*recovered)->IdentifyAll(0.5);
      ASSERT_TRUE(got.ok());
      auto fresh = RuleServer::Create(want, w.records, opt);
      ASSERT_TRUE(fresh.ok());
      auto want_ans = (*fresh)->IdentifyAll(0.5);
      ASSERT_TRUE(want_ans.ok());
      ExpectSameAnswer(*got, *want_ans, std::string("recovered after ") +
                                            crash.site);
    }
  }
}

TEST_F(JournalRecovery, LoadAndReplayFailpointsFailRecoveryCleanly) {
  Workload w = MakeWorkload(1);
  const std::string gpath = Path("graph", 1, ".snap");
  const std::string rpath = Path("rules", 1, ".snap");
  const std::string jpath = Path("journal", 1, ".wal");
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());
  {
    auto live = RuleServer::Create(w.graph, w.records);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE((*live)->AttachJournal(jpath).ok());
    ASSERT_TRUE(
        (*live)->ApplyDelta(MakeMutationDelta(w.graph, 77, 3)).ok());
  }
  // A failing snapshot read aborts recovery with the injected error ...
  FailpointSpec spec;
  spec.code = StatusCode::kIoError;
  FailpointRegistry::Instance().Arm("snapshot.load", spec);
  EXPECT_FALSE(RuleServer::Recover(gpath, rpath, jpath).ok());
  // ... as does a failing journal replay scan.
  FailpointRegistry::Instance().Arm("journal.replay", spec);
  EXPECT_FALSE(RuleServer::Recover(gpath, rpath, jpath).ok());
  FailpointRegistry::Instance().DisarmAll();
  auto ok = RuleServer::Recover(gpath, rpath, jpath);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ((*ok)->journal_sequence(), 1u);
}

/// Checkpoint: snapshot + compact, after which recovery starts from the
/// fresh snapshot, replays only post-checkpoint frames, and keeps the
/// sequence counter monotone across the compaction.
TEST_F(JournalRecovery, CheckpointCompactsJournalAndRecovers) {
  Workload w = MakeWorkload(2);
  const std::string gpath = Path("graph", 2, ".snap");
  const std::string rpath = Path("rules", 2, ".snap");
  const std::string jpath = Path("journal", 2, ".wal");
  const std::string ckpt = Path("ckpt", 2, ".snap");
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());

  auto live = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(live.ok());
  RuleServer& s = **live;
  // Checkpoint requires an attached journal.
  EXPECT_FALSE(s.Checkpoint(ckpt).ok());
  ASSERT_TRUE(s.AttachJournal(jpath).ok());
  // Double-attach is rejected.
  EXPECT_FALSE(s.AttachJournal(jpath).ok());

  GraphDelta d1 = MakeMutationDelta(s.graph(), 21, 4);
  ASSERT_TRUE(s.ApplyDelta(d1).ok());
  GraphDelta d2 = MakeMutationDelta(s.graph(), 22, 4);
  ASSERT_TRUE(s.ApplyDelta(d2).ok());

  ASSERT_TRUE(s.Checkpoint(ckpt).ok());
  // Compacted: one floor marker carrying sequence 2.
  auto frames = DeltaJournal::ReadAll(jpath);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 1u);
  EXPECT_EQ((*frames)[0].sequence, 2u);
  EXPECT_TRUE((*frames)[0].inserts.empty());

  // Recovery from checkpoint + compacted journal reproduces the live graph.
  auto rec1 = RuleServer::Recover(ckpt, rpath, jpath);
  ASSERT_TRUE(rec1.ok()) << rec1.status();
  EXPECT_EQ(GraphBytes((*rec1)->graph()), GraphBytes(s.graph()));
  EXPECT_EQ((*rec1)->journal_sequence(), 2u);

  // Post-checkpoint deltas continue the sequence past the floor.
  GraphDelta d3 = MakeMutationDelta(s.graph(), 23, 4);
  auto ds3 = s.ApplyDelta(d3);
  ASSERT_TRUE(ds3.ok());
  EXPECT_EQ(ds3->sequence, 3u);
  auto rec2 = RuleServer::Recover(ckpt, rpath, jpath);
  ASSERT_TRUE(rec2.ok()) << rec2.status();
  EXPECT_EQ(GraphBytes((*rec2)->graph()), GraphBytes(s.graph()));

  auto a = (*rec2)->IdentifyAll(0.5);
  auto b = s.IdentifyAll(0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameAnswer(*a, *b, "post-checkpoint recovery");
}

/// Labels minted live (`ServeSession::InternLabel`, e.g. the gpar_tool
/// `delta` command naming a label the graph has never seen) must survive
/// recovery: journal frames carry their own label definitions (v3 wire),
/// so replay against the pre-mint snapshot re-interns them. Without the
/// defs this failed with "edge insert label not interned".
TEST_F(JournalRecovery, ReplaysLabelsMintedAfterTheSnapshot) {
  Workload w = MakeWorkload(1);
  const std::string gpath = Path("graph", 1, ".snap");
  const std::string rpath = Path("rules", 1, ".snap");
  const std::string jpath = Path("journal", 1, ".wal");
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());

  auto live = RuleServer::Load(gpath, rpath);
  ASSERT_TRUE(live.ok()) << live.status();
  RuleServer& s = **live;
  ASSERT_TRUE(s.AttachJournal(jpath).ok());

  // Mint a label the on-disk snapshot has never heard of, mutate with it,
  // then reference it again in a second frame (and delete through it).
  const LabelId minted = s.InternLabel("minted_after_snapshot");
  GraphDelta d1;
  d1.inserts = {{1, minted, 2}, {3, minted, 4}};
  auto ds1 = s.ApplyDelta(d1);
  ASSERT_TRUE(ds1.ok()) << ds1.status();
  EXPECT_EQ(ds1->edges_inserted, 2u);
  GraphDelta d2;
  d2.inserts = {{5, minted, 6}};
  d2.deletes = {{1, minted, 2}};
  ASSERT_TRUE(s.ApplyDelta(d2).ok());

  auto rec = RuleServer::Recover(gpath, rpath, jpath);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(GraphBytes((*rec)->graph()), GraphBytes(s.graph()));
  EXPECT_EQ((*rec)->graph().labels().Lookup("minted_after_snapshot"),
            minted);
  auto a = (*rec)->IdentifyAll(0.5);
  auto b = s.IdentifyAll(0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameAnswer(*a, *b, "minted-label recovery");
}

TEST_F(JournalRecovery, ShardServersDoNotJournal) {
  Workload w = MakeWorkload(1);
  // Journaling happens at the router (or a standalone server) — a shard
  // must reject AttachJournal outright.
  auto shard = RuleServer::CreateShard(
      std::make_shared<const Graph>(w.graph), /*members=*/{},
      /*owned_centers=*/{}, w.records);
  // Shard creation with empty ownership may or may not be valid; only the
  // journal rejection matters here.
  if (shard.ok()) {
    EXPECT_FALSE(
        (*shard)->AttachJournal(Path("journal", 1, ".wal")).ok());
  }
}

}  // namespace
}  // namespace gpar
