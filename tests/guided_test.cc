#include "match/guided.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "graph/sketch.h"

namespace gpar {
namespace {

TEST(GuidedTest, SketchGateSkipsTinyCandidateLists) {
  // On G1, every candidate list is pivot-derived and small (< gate), so a
  // guided matcher never materializes node sketches.
  PaperG1 g1 = MakePaperG1();
  GuidedMatcher m(g1.graph, 2);
  for (NodeId v : {g1.cust1, g1.cust4, g1.cust6}) {
    (void)m.ExistsAt(g1.r1.pr(), v);
  }
  EXPECT_EQ(m.sketches_built(), 0u);
}

TEST(GuidedTest, SketchesMaterializeOnLargeLists) {
  // A hub-heavy synthetic graph forces large candidate lists; sketches are
  // then built lazily and memoized.
  Graph g = MakeSynthetic(2000, 8000, 10, 3);
  GuidedMatcher m(g, 1);
  // Pattern with an unanchored component root: candidates come from the
  // label index (large), engaging the sketch machinery.
  LabelId l0 = g.labels().Lookup("l0");
  LabelId e0 = g.labels().Lookup("e0");
  Pattern p;
  PNodeId a = p.AddNode(l0);
  PNodeId b = p.AddNode(l0);
  p.AddEdge(a, e0, b);
  p.set_x(a);
  (void)m.Exists(p);
  size_t after_first = m.sketches_built();
  EXPECT_GT(after_first, 0u);
  // Re-running the same query reuses the cache.
  (void)m.Exists(p);
  EXPECT_EQ(m.sketches_built(), after_first);
}

TEST(GuidedTest, AccumulatedComparisonsMatchPlainOnes) {
  Graph g = MakeSynthetic(300, 900, 8, 5);
  for (NodeId v = 0; v < 40; ++v) {
    KHopSketch raw = ComputeSketch(g, v, 2);
    KHopSketch acc = AccumulateSketch(raw);
    for (NodeId w = 0; w < 40; ++w) {
      KHopSketch other_raw = ComputeSketch(g, w, 2);
      KHopSketch other_acc = AccumulateSketch(other_raw);
      EXPECT_EQ(SketchCovers(raw, other_raw),
                SketchCoversAccumulated(acc, other_acc))
          << "covers mismatch at " << v << "," << w;
      EXPECT_EQ(SketchScore(raw, other_raw),
                SketchScoreAccumulated(acc, other_acc))
          << "score mismatch at " << v << "," << w;
    }
  }
}

TEST(GuidedTest, SketchScoreSemantics) {
  // A node must cover itself (score 0 slack against its own sketch).
  Graph g = MakeSynthetic(100, 300, 5, 9);
  KHopSketch sk = AccumulateSketch(ComputeSketch(g, 0, 2));
  EXPECT_TRUE(SketchCoversAccumulated(sk, sk));
  EXPECT_EQ(SketchScoreAccumulated(sk, sk), 0);
  // Against an empty requirement, everything is slack.
  KHopSketch empty;
  empty.hops.resize(2);
  EXPECT_TRUE(SketchCoversAccumulated(sk, AccumulateSketch(empty)));
}

}  // namespace
}  // namespace gpar
