#include "serve/sharded_rule_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "graph/paper_graphs.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "pattern/pattern_generator.h"
#include "rule/metrics.h"
#include "rule/rule_snapshot.h"
#include "serve/delta_journal.h"
#include "serve/rule_server.h"
#include "serve/serve_session.h"

namespace gpar {
namespace {

/// Every failpoint site the serving tier registers. The gpar_lint
/// [failpoint-site] rule requires each name to appear in a test battery —
/// this array (and the loops below) is that coverage.
constexpr const char* kAllSites[] = {
    "journal.append", "journal.append_torn", "journal.replay",
    "snapshot.load",  "serve.publish",       "shard.apply_delta",
    "shard.query",
};

struct Workload {
  Graph graph;
  std::vector<Gpar> sigma;
  std::vector<RuleRecord> records;
};

/// Same seeded workloads as the ServeEquivalence batteries.
Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.graph = (seed % 3 == 0) ? MakePokecLike(1, seed)
                            : MakeSynthetic(600, 1800, 20, seed);
  auto freq = FrequentEdgePatterns(w.graph);
  EXPECT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  gopt.seed = seed * 31 + 1;
  w.sigma = GenerateGparWorkload(w.graph, q, 5, gopt);
  EXPECT_GE(w.sigma.size(), 2u);
  for (const Gpar& r : w.sigma) w.records.push_back({r, 0, 0.0});
  return w;
}

SessionRequest AllRequest(double eta = 0.5) {
  SessionRequest req;
  req.all_centers = true;
  req.eta = eta;
  return req;
}

/// A delta of brand-new edges between existing nodes (no duplicates), so
/// the applied set equals the input and reference graphs are easy to
/// compute.
GraphDelta FreshEdgesDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  std::vector<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes() && edge_labels.size() < 8; ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(edge_labels.begin(), edge_labels.end(), e.label) ==
          edge_labels.end()) {
        edge_labels.push_back(e.label);
      }
    }
  }
  GraphDelta d;
  while (d.inserts.size() < k) {
    NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
    LabelId l = edge_labels[rng() % edge_labels.size()];
    bool present = false;
    for (const AdjEntry& e : g.out_edges(src)) {
      if (e.label == l && e.other == dst) present = true;
    }
    for (const EdgeInsert& e : d.inserts) {
      if (e.src == src && e.label == l && e.dst == dst) present = true;
    }
    if (!present) d.inserts.push_back({src, l, dst});
  }
  return d;
}

std::string GraphBytes(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteGraphSnapshot(g, os).ok());
  return os.str();
}

class FaultRouterTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::string Path(const std::string& name, const char* ext) {
    std::string p =
        ::testing::TempDir() + "/" + name + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ext;
    std::remove(p.c_str());  // journals append — reruns must start fresh
    return p;
  }
};

/// 1-of-k shard loss: with retries off and a single injected query
/// failure, exactly one shard drops out of an all-centers request. The
/// degraded reply must be a correct subset — surviving shards' owned
/// centers keep their exact matched rows, the supports are the exact sums
/// over the survivors, and the confidences are recomputed from those
/// degraded sums.
TEST_F(FaultRouterTest, DegradedAllCentersReplyIsCorrectSubset) {
  Workload w = MakeWorkload(1);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 4;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;  // a single failure must degrade, not retry
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;
  const uint32_t k = s.num_shards();

  // Reference: the healthy reply, and each shard's own partial sums.
  auto full = s.Query(AllRequest());
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_FALSE(full->degraded);
  std::vector<SessionReply> per_shard(k);
  for (uint32_t i = 0; i < k; ++i) {
    auto r = const_cast<RuleServer&>(s.shard(i)).Query(AllRequest());
    ASSERT_TRUE(r.ok()) << r.status();
    per_shard[i] = std::move(r).value();
  }

  FailpointSpec spec;  // kUnavailable, fires once
  FailpointRegistry::Instance().Arm("shard.query", spec);
  auto degraded = s.Query(AllRequest());
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_TRUE(degraded->degraded);
  ASSERT_EQ(degraded->failed_shards.size(), 1u);
  EXPECT_EQ(degraded->stats.shards_failed, 1u);
  EXPECT_EQ(degraded->stats.retries, 0u);
  const uint32_t failed = degraded->failed_shards[0];

  // Matched rows: empty for the failed shard's centers, exact elsewhere.
  const std::vector<NodeId>& cands = s.candidates();
  ASSERT_EQ(degraded->matched.size(), cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    if (s.OwnerOf(cands[i]) == failed) {
      EXPECT_TRUE(degraded->matched[i].empty()) << "center " << cands[i];
    } else {
      EXPECT_EQ(degraded->matched[i], full->matched[i])
          << "center " << cands[i];
    }
  }

  // Supports: exact sums over the survivors; confidence from those sums.
  uint64_t supp_q = 0, supp_qbar = 0;
  std::vector<uint64_t> supp_r(w.records.size(), 0);
  std::vector<uint64_t> supp_qqbar(w.records.size(), 0);
  for (uint32_t i = 0; i < k; ++i) {
    if (i == failed) continue;
    supp_q += per_shard[i].supp_q;
    supp_qbar += per_shard[i].supp_qbar;
    for (size_t ri = 0; ri < w.records.size(); ++ri) {
      supp_r[ri] += per_shard[i].rule_evals[ri].supp_r;
      supp_qqbar[ri] += per_shard[i].rule_evals[ri].supp_qqbar;
    }
  }
  EXPECT_EQ(degraded->supp_q, supp_q);
  EXPECT_EQ(degraded->supp_qbar, supp_qbar);
  for (size_t ri = 0; ri < w.records.size(); ++ri) {
    EXPECT_EQ(degraded->rule_evals[ri].supp_r, supp_r[ri]) << "rule " << ri;
    EXPECT_EQ(degraded->rule_evals[ri].supp_qqbar, supp_qqbar[ri])
        << "rule " << ri;
    EXPECT_DOUBLE_EQ(
        degraded->rule_evals[ri].conf,
        BayesFactorConf(supp_r[ri], supp_qbar, supp_qqbar[ri], supp_q))
        << "rule " << ri;
  }

  // And the site heals: the next request is whole again.
  auto healed = s.Query(AllRequest());
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded);
  EXPECT_EQ(healed->matched, full->matched);
}

TEST_F(FaultRouterTest, DegradedPointReplyKeepsSurvivorRowsExact) {
  Workload w = MakeWorkload(2);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 4;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  // One owned center per shard, so every shard is involved.
  SessionRequest point;
  for (uint32_t i = 0; i < s.num_shards(); ++i) {
    ASSERT_FALSE(s.shard(i).candidates().empty());
    point.centers.push_back(s.shard(i).candidates()[0]);
  }
  auto full = s.Query(point);
  ASSERT_TRUE(full.ok()) << full.status();

  FailpointSpec spec;
  FailpointRegistry::Instance().Arm("shard.query", spec);
  auto degraded = s.Query(point);
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_TRUE(degraded->degraded);
  ASSERT_EQ(degraded->failed_shards.size(), 1u);
  const uint32_t failed = degraded->failed_shards[0];
  for (size_t i = 0; i < point.centers.size(); ++i) {
    if (s.OwnerOf(point.centers[i]) == failed) {
      EXPECT_TRUE(degraded->matched[i].empty());
    } else {
      EXPECT_EQ(degraded->matched[i], full->matched[i])
          << "center " << point.centers[i];
    }
  }
  // Entities are derived from the surviving rows only.
  for (NodeId e : degraded->entities) {
    EXPECT_NE(s.OwnerOf(e), failed);
  }
}

/// A transient failure is retried and masked: the reply is whole, only the
/// retry counter betrays that anything happened.
TEST_F(FaultRouterTest, TransientQueryFailureIsRetriedAndMasked) {
  Workload w = MakeWorkload(1);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.retry_backoff_micros = 50;  // keep the test fast
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;
  auto full = s.Query(AllRequest());
  ASSERT_TRUE(full.ok());

  FailpointSpec spec;  // kUnavailable, fires once — the retry succeeds
  FailpointRegistry::Instance().Arm("shard.query", spec);
  auto reply = s.Query(AllRequest());
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->degraded);
  EXPECT_TRUE(reply->failed_shards.empty());
  EXPECT_GE(reply->stats.retries, 1u);
  EXPECT_EQ(reply->matched, full->matched);
  EXPECT_EQ(reply->supp_q, full->supp_q);
  EXPECT_GE(s.lifetime_stats().retries, 1u);
}

/// Retries on the delta-ship path never double-apply: a shard that failed
/// mid-ship is retried with the same frame, and a frame the shard already
/// acknowledged is recognized by sequence and becomes a no-op.
TEST_F(FaultRouterTest, ShipRetriesNeverDoubleApplyADelta) {
  Workload w = MakeWorkload(4);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.retry_backoff_micros = 50;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  GraphDelta delta = FreshEdgesDelta(w.graph, 77, 5);
  auto want = PatchGraph(w.graph, delta);
  ASSERT_TRUE(want.ok());

  FailpointSpec spec;  // one injected ship failure, then the retry lands
  FailpointRegistry::Instance().Arm("shard.apply_delta", spec);
  auto ds = s.ApplyDelta(delta);
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->shards_lagging, 0u);
  EXPECT_EQ(s.lagging_shards(), 0u);
  EXPECT_GE(s.lifetime_stats().retries, 1u);
  EXPECT_EQ(GraphBytes(*s.graph_snapshot()), GraphBytes(want->graph));

  // Every shard applied the batch exactly once: answers match a fresh
  // deployment on the patched graph.
  auto fresh = ShardedRuleServer::Create(want->graph, w.records, sopt);
  ASSERT_TRUE(fresh.ok());
  auto a = s.Query(AllRequest());
  auto b = (*fresh)->Query(AllRequest());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matched, b->matched);
  EXPECT_EQ(a->supp_q, b->supp_q);
  EXPECT_EQ(a->supp_qbar, b->supp_qbar);

  // Re-shipping an already-acknowledged frame directly is a sequence-level
  // no-op on the shard: nothing is re-applied, answers do not move.
  GraphDelta wire;
  wire.sequence = s.delta_sequence();
  wire.inserts = delta.inserts;
  auto& shard = const_cast<RuleServer&>(s.shard(0));
  const uint64_t seq_before = shard.shard_sequence();
  auto redo = shard.ApplyShardDelta(s.graph_snapshot(), wire.Serialize());
  ASSERT_TRUE(redo.ok()) << redo.status();
  EXPECT_EQ(redo->edges_inserted, 0u);
  EXPECT_EQ(redo->memberships_invalidated, 0u);
  EXPECT_EQ(shard.shard_sequence(), seq_before);
  auto c = s.Query(AllRequest());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->matched, b->matched);
}

/// A shard that misses a delta is left lagging — excluded from queries,
/// the router degrades around it — and a resync (explicit or via the next
/// ApplyDelta) replays the missed frames and heals it.
TEST_F(FaultRouterTest, LaggingShardIsExcludedUntilResyncHeals) {
  Workload w = MakeWorkload(2);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;
  sopt.retry_backoff_micros = 50;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  GraphDelta d1 = FreshEdgesDelta(w.graph, 11, 4);
  auto p1 = PatchGraph(w.graph, d1);
  ASSERT_TRUE(p1.ok());

  // Every ship attempt fails: both shards miss the batch. The delta still
  // lands on the parent graph — ApplyDelta degrades, it does not fail.
  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("shard.apply_delta", spec);
  auto ds = s.ApplyDelta(d1);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->shards_lagging, 2u);
  EXPECT_EQ(s.lagging_shards(), 2u);
  EXPECT_EQ(s.delta_sequence(), 1u);
  EXPECT_EQ(GraphBytes(*s.graph_snapshot()), GraphBytes(p1->graph));

  // Every shard is behind: the degraded reply has no surviving centers.
  auto dark = s.Query(AllRequest());
  ASSERT_TRUE(dark.ok()) << dark.status();
  EXPECT_TRUE(dark->degraded);
  EXPECT_EQ(dark->failed_shards.size(), 2u);
  EXPECT_TRUE(dark->entities.empty());
  EXPECT_EQ(dark->supp_q, 0u);

  // While the site is still armed, resync fails and the shards stay dark.
  EXPECT_FALSE(s.ResyncLaggingShards().ok());
  EXPECT_EQ(s.lagging_shards(), 2u);

  // Disarm and heal: the pending tail replays the missed frame.
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(s.ResyncLaggingShards().ok());
  EXPECT_EQ(s.lagging_shards(), 0u);
  auto fresh = ShardedRuleServer::Create(p1->graph, w.records, sopt);
  ASSERT_TRUE(fresh.ok());
  auto a = s.Query(AllRequest());
  auto b = (*fresh)->Query(AllRequest());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->degraded);
  EXPECT_EQ(a->matched, b->matched);
  EXPECT_EQ(a->supp_q, b->supp_q);

  // Round two: one shard misses one frame, and the NEXT ApplyDelta heals
  // it before shipping, so no shard ever applies over a gap.
  FailpointSpec once;
  FailpointRegistry::Instance().Arm("shard.apply_delta", once);
  GraphDelta d2 = FreshEdgesDelta(p1->graph, 12, 4);
  auto p2 = PatchGraph(p1->graph, d2);
  ASSERT_TRUE(p2.ok());
  auto ds2 = s.ApplyDelta(d2);
  ASSERT_TRUE(ds2.ok()) << ds2.status();
  EXPECT_EQ(ds2->shards_lagging, 1u);
  FailpointRegistry::Instance().DisarmAll();

  GraphDelta d3 = FreshEdgesDelta(p2->graph, 13, 4);
  auto p3 = PatchGraph(p2->graph, d3);
  ASSERT_TRUE(p3.ok());
  auto ds3 = s.ApplyDelta(d3);
  ASSERT_TRUE(ds3.ok()) << ds3.status();
  EXPECT_EQ(ds3->shards_lagging, 0u);
  EXPECT_EQ(s.lagging_shards(), 0u);
  auto fresh3 = ShardedRuleServer::Create(p3->graph, w.records, sopt);
  ASSERT_TRUE(fresh3.ok());
  auto a3 = s.Query(AllRequest());
  auto b3 = (*fresh3)->Query(AllRequest());
  ASSERT_TRUE(a3.ok());
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(a3->matched, b3->matched);
  EXPECT_EQ(a3->supp_q, b3->supp_q);
}

/// Journal-based resync: after a checkpoint compacted the journal, the
/// missed frames come from the in-memory pending tail; before it, from the
/// journal itself. Either way the healed shard answers exactly.
TEST_F(FaultRouterTest, ResyncReplaysFromJournalAndPendingTail) {
  Workload w = MakeWorkload(4);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;
  ASSERT_TRUE(s.AttachJournal(Path("resync", ".wal")).ok());
  EXPECT_TRUE(s.journal_attached());

  // Miss two consecutive frames on every shard.
  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("shard.apply_delta", spec);
  GraphDelta d1 = FreshEdgesDelta(w.graph, 21, 3);
  auto p1 = PatchGraph(w.graph, d1);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(s.ApplyDelta(d1).ok());
  GraphDelta d2 = FreshEdgesDelta(p1->graph, 22, 3);
  auto p2 = PatchGraph(p1->graph, d2);
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(s.ApplyDelta(d2).ok());
  EXPECT_EQ(s.lagging_shards(), 2u);
  FailpointRegistry::Instance().DisarmAll();

  // Journal-based resync merges frames (acked, cur] into one catch-up.
  ASSERT_TRUE(s.ResyncLaggingShards().ok());
  EXPECT_EQ(s.lagging_shards(), 0u);
  auto fresh = ShardedRuleServer::Create(p2->graph, w.records, sopt);
  ASSERT_TRUE(fresh.ok());
  auto a = s.Query(AllRequest());
  auto b = (*fresh)->Query(AllRequest());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matched, b->matched);
  EXPECT_EQ(a->supp_q, b->supp_q);

  // Lag the shards again, THEN checkpoint: compaction reduces the journal
  // to its floor marker, so the missed frame is only in the pending tail —
  // resync must fall back to it.
  FailpointRegistry::Instance().Arm("shard.apply_delta", spec);
  GraphDelta d3 = FreshEdgesDelta(p2->graph, 23, 3);
  auto p3 = PatchGraph(p2->graph, d3);
  ASSERT_TRUE(p3.ok());
  ASSERT_TRUE(s.ApplyDelta(d3).ok());
  EXPECT_EQ(s.lagging_shards(), 2u);
  FailpointRegistry::Instance().DisarmAll();
  ASSERT_TRUE(s.Checkpoint(Path("ckpt", ".snap")).ok());
  ASSERT_TRUE(s.ResyncLaggingShards().ok());
  EXPECT_EQ(s.lagging_shards(), 0u);
  auto fresh3 = ShardedRuleServer::Create(p3->graph, w.records, sopt);
  ASSERT_TRUE(fresh3.ok());
  auto a3 = s.Query(AllRequest());
  auto b3 = (*fresh3)->Query(AllRequest());
  ASSERT_TRUE(a3.ok());
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(a3->matched, b3->matched);
  EXPECT_EQ(a3->supp_q, b3->supp_q);
}

TEST_F(FaultRouterTest, DeadlineBoundsTheRetryBudget) {
  Workload w = MakeWorkload(1);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 5;
  sopt.retry_backoff_micros = 200000;  // 0.2s — larger than the deadline
  sopt.degrade_on_shard_failure = false;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  SessionRequest bad = AllRequest();
  bad.deadline_seconds = -1;
  EXPECT_EQ(s.Query(bad).status().code(), StatusCode::kInvalidArgument);

  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("shard.query", spec);
  SessionRequest req = AllRequest();
  req.deadline_seconds = 0.05;
  auto r = s.Query(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_TRUE(s.Query(AllRequest()).ok());
}

TEST_F(FaultRouterTest, StrictModePropagatesShardFailures) {
  Workload w = MakeWorkload(2);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;
  sopt.degrade_on_shard_failure = false;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("shard.query", spec);
  EXPECT_EQ(s.Query(AllRequest()).status().code(), StatusCode::kUnavailable);
  FailpointRegistry::Instance().DisarmAll();

  // Strict delta shipping: the failed ship propagates and nothing is
  // published — sequence and answers stay at the pre-delta state.
  auto before = s.Query(AllRequest());
  ASSERT_TRUE(before.ok());
  FailpointRegistry::Instance().Arm("shard.apply_delta", spec);
  GraphDelta d = FreshEdgesDelta(w.graph, 31, 3);
  EXPECT_FALSE(s.ApplyDelta(d).ok());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(s.delta_sequence(), 0u);
  auto after = s.Query(AllRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->matched, before->matched);
}

/// Sweep EVERY registered failpoint site through the sharded deployment:
/// each injection either degrades (replies stay correct subsets), fails
/// the operation cleanly (nothing half-published), or fails recovery with
/// the injected error — and after disarming, the deployment (or a fresh
/// recovery) is whole again.
TEST_F(FaultRouterTest, EverySiteFailsCleanlyThroughTheRouter) {
  Workload w = MakeWorkload(1);
  const std::string gpath = Path("graph", ".snap");
  const std::string rpath = Path("rules", ".snap");
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  sopt.max_shard_retries = 0;

  for (const char* site : kAllSites) {
    SCOPED_TRACE(site);
    const std::string site_name = site;
    const std::string jpath = Path(std::string("wal_") + site, ".wal");
    auto server =
        ShardedRuleServer::Recover(gpath, rpath, jpath, sopt);
    ASSERT_TRUE(server.ok()) << server.status();
    ShardedRuleServer& s = **server;
    auto reference = s.Query(AllRequest());
    ASSERT_TRUE(reference.ok());

    FailpointSpec spec;
    spec.code = StatusCode::kIoError;
    spec.fires = 0;
    if (site_name == "journal.append_torn") spec.torn_bytes = 9;
    FailpointRegistry::Instance().Arm(site, spec);

    GraphDelta d = FreshEdgesDelta(w.graph, 41, 3);
    if (site_name == "snapshot.load" || site_name == "journal.replay") {
      // Recovery-path sites: a fresh Recover fails with the injection and
      // succeeds after disarm.
      EXPECT_FALSE(ShardedRuleServer::Recover(gpath, rpath, jpath, sopt).ok());
      FailpointRegistry::Instance().DisarmAll();
      EXPECT_TRUE(ShardedRuleServer::Recover(gpath, rpath, jpath, sopt).ok());
      continue;
    }
    if (site_name == "shard.query") {
      auto r = s.Query(AllRequest());
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_TRUE(r->degraded);  // every shard fails — fully degraded
      EXPECT_EQ(r->failed_shards.size(), 2u);
    } else if (site_name == "shard.apply_delta") {
      auto ds = s.ApplyDelta(d);
      ASSERT_TRUE(ds.ok()) << ds.status();  // degrade, not fail
      EXPECT_EQ(ds->shards_lagging, 2u);
    } else {
      // journal.append / journal.append_torn / serve.publish: the write
      // pipeline fails before anything is shipped or published.
      EXPECT_FALSE(s.ApplyDelta(d).ok());
      EXPECT_EQ(s.delta_sequence(), 0u);
      EXPECT_EQ(s.lagging_shards(), 0u);
      FailpointRegistry::Instance().DisarmAll();
      auto after = s.Query(AllRequest());
      ASSERT_TRUE(after.ok());
      EXPECT_FALSE(after->degraded);
      EXPECT_EQ(after->matched, reference->matched);
      continue;
    }
    FailpointRegistry::Instance().DisarmAll();
  }
}

/// Sharded crash recovery: a journaled delta stream survives the loss of
/// the whole deployment — Recover replays it through the normal ship path
/// and every shard comes back healthy and exact.
TEST_F(FaultRouterTest, ShardedRecoverMatchesLiveDeployment) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);
    const std::string gpath = Path("graph" + std::to_string(seed), ".snap");
    const std::string rpath = Path("rules" + std::to_string(seed), ".snap");
    const std::string jpath = Path("wal" + std::to_string(seed), ".wal");
    ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
    ASSERT_TRUE(
        WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());
    ShardedRuleServerOptions sopt;
    sopt.num_shards = 2;
    sopt.shard_options.num_workers = 2;

    auto live = ShardedRuleServer::Create(w.graph, w.records, sopt);
    ASSERT_TRUE(live.ok()) << live.status();
    ASSERT_TRUE((*live)->AttachJournal(jpath).ok());
    Graph cur = w.graph;
    for (int b = 0; b < 3; ++b) {
      GraphDelta d = FreshEdgesDelta(cur, seed * 97 + b, 4);
      auto p = PatchGraph(cur, d);
      ASSERT_TRUE(p.ok());
      cur = std::move(p->graph);
      auto ds = (*live)->ApplyDelta(d);
      ASSERT_TRUE(ds.ok()) << ds.status();
      EXPECT_EQ(ds->sequence, static_cast<uint64_t>(b) + 1);
    }
    auto live_all = (*live)->Query(AllRequest());
    ASSERT_TRUE(live_all.ok());

    // "Crash" and recover: same graph, same sequence, no lagging shards.
    live->reset();
    JournalReplayStats replay;
    auto rec =
        ShardedRuleServer::Recover(gpath, rpath, jpath, sopt, {}, &replay);
    ASSERT_TRUE(rec.ok()) << rec.status();
    EXPECT_EQ(replay.frames, 3u);
    EXPECT_EQ((*rec)->delta_sequence(), 3u);
    EXPECT_EQ((*rec)->lagging_shards(), 0u);
    EXPECT_EQ(GraphBytes(*(*rec)->graph_snapshot()), GraphBytes(cur));
    auto rec_all = (*rec)->Query(AllRequest());
    ASSERT_TRUE(rec_all.ok());
    EXPECT_EQ(rec_all->matched, live_all->matched);
    EXPECT_EQ(rec_all->supp_q, live_all->supp_q);
    EXPECT_EQ(rec_all->supp_qbar, live_all->supp_qbar);

    // Checkpoint + recover from the fresh snapshot: the journal floor
    // keeps sequences monotone, the answers keep matching.
    const std::string ckpt = Path("ckpt" + std::to_string(seed), ".snap");
    ASSERT_TRUE((*rec)->Checkpoint(ckpt).ok());
    GraphDelta d4 = FreshEdgesDelta(cur, seed * 97 + 9, 4);
    auto p4 = PatchGraph(cur, d4);
    ASSERT_TRUE(p4.ok());
    auto ds4 = (*rec)->ApplyDelta(d4);
    ASSERT_TRUE(ds4.ok());
    EXPECT_EQ(ds4->sequence, 4u);
    auto rec2 = ShardedRuleServer::Recover(ckpt, rpath, jpath, sopt);
    ASSERT_TRUE(rec2.ok()) << rec2.status();
    EXPECT_EQ(GraphBytes(*(*rec2)->graph_snapshot()), GraphBytes(p4->graph));
    EXPECT_EQ((*rec2)->lagging_shards(), 0u);
    auto a = (*rec2)->Query(AllRequest());
    auto b = (*rec)->Query(AllRequest());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->matched, b->matched);
    EXPECT_EQ(a->supp_q, b->supp_q);
  }
}

/// Sharded twin of JournalRecovery.ReplaysLabelsMintedAfterTheSnapshot:
/// a label minted live through the router (`InternLabel`) rides the v3
/// wire into the journal AND the shard ship path, so both replay and
/// live shards resolve it — recovery against the pre-mint snapshot is
/// exact.
TEST_F(FaultRouterTest, RecoverReinternsLabelsMintedLive) {
  Workload w = MakeWorkload(1);
  const std::string gpath = Path("graph", ".snap");
  const std::string rpath = Path("rules", ".snap");
  const std::string jpath = Path("wal", ".wal");
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;

  auto live = ShardedRuleServer::Load(gpath, rpath, sopt);
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_TRUE((*live)->AttachJournal(jpath).ok());
  const LabelId minted = (*live)->InternLabel("minted_after_snapshot");
  GraphDelta d;
  d.inserts = {{1, minted, 2}, {3, minted, 4}};
  auto ds = (*live)->ApplyDelta(d);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ((*live)->lagging_shards(), 0u);
  auto live_all = (*live)->Query(AllRequest());
  ASSERT_TRUE(live_all.ok());
  const std::string live_bytes = GraphBytes(*(*live)->graph_snapshot());

  live->reset();
  auto rec = ShardedRuleServer::Recover(gpath, rpath, jpath, sopt);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ((*rec)->lagging_shards(), 0u);
  EXPECT_EQ(GraphBytes(*(*rec)->graph_snapshot()), live_bytes);
  EXPECT_EQ(
      (*rec)->graph_snapshot()->labels().Lookup("minted_after_snapshot"),
      minted);
  auto rec_all = (*rec)->Query(AllRequest());
  ASSERT_TRUE(rec_all.ok());
  EXPECT_EQ(rec_all->matched, live_all->matched);
  EXPECT_EQ(rec_all->supp_q, live_all->supp_q);
}

}  // namespace
}  // namespace gpar
