#include "maintain/rule_maintainer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/stats.h"
#include "mine/dmine.h"
#include "rule/rule_snapshot.h"
#include "serve/delta_journal.h"
#include "serve/rule_server.h"
#include "serve/sharded_rule_server.h"

namespace gpar {
namespace {

MaintainOptions SmallMaintain() {
  MaintainOptions opt;
  opt.mine.num_workers = 2;
  opt.mine.k = 3;
  opt.mine.d = 2;
  opt.mine.sigma = 2;
  opt.mine.lambda = 0.5;
  opt.mine.max_pattern_edges = 3;
  opt.mine.seed_edge_limit = 8;
  opt.mine.max_candidates_per_round = 200;
  return opt;
}

Predicate PickQ(const Graph& g) {
  auto freq = FrequentEdgePatterns(g);
  EXPECT_FALSE(freq.empty());
  return {freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
}

std::vector<RuleRecord> DmineRecords(const Graph& g, const Predicate& q,
                                     const DmineOptions& opt) {
  auto result = Dmine(g, q, opt);
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<RuleRecord> records;
  if (result.ok()) {
    for (const auto& r : result->topk) {
      records.push_back({r->rule, r->supp, r->conf});
    }
  }
  return records;
}

/// The maintained invariant, asserted byte-for-byte: every record the
/// maintainer serves — pattern, supp, conf — equals what a from-scratch
/// Dmine on the same graph returns, in the same order.
void ExpectMatchesDmine(const RuleMaintainer& m, const std::string& what) {
  std::vector<RuleRecord> want =
      DmineRecords(*m.graph(), m.predicate(), m.options().mine);
  std::vector<RuleRecord> got = m.TopKRecords();
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].supp, want[i].supp) << what << " rule " << i;
    EXPECT_EQ(got[i].conf, want[i].conf) << what << " rule " << i;
    EXPECT_EQ(got[i].rule.pr().num_edges(), want[i].rule.pr().num_edges())
        << what << " rule " << i;
  }
  EXPECT_EQ(got, want) << what;
}

/// One churn batch: delete `k` existing edges (biased toward the q label —
/// that is what moves supports across sigma) and insert `k` edges between
/// random endpoints reusing the graph's own labels.
GraphDelta MakeChurn(const Graph& g, LabelId q_label, uint64_t seed,
                     size_t k) {
  std::mt19937_64 rng(seed);
  GraphDelta d;
  size_t q_deleted = 0;
  for (size_t i = 0; i < k; ++i) {
    NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
    while (g.out_edges(v).empty()) v = (v + 1) % g.num_nodes();
    const auto edges = g.out_edges(v);
    // Prefer a q-labeled edge at this source when one exists: deleting the
    // consequent edge is what retires matches (downward crossings).
    const AdjEntry* pick = nullptr;
    if (q_deleted < k / 2) {
      for (const AdjEntry& e : edges) {
        if (e.label == q_label) {
          pick = &e;
          ++q_deleted;
          break;
        }
      }
    }
    if (pick == nullptr) pick = &edges[rng() % edges.size()];
    d.deletes.push_back({v, pick->label, pick->other});
  }
  std::vector<LabelId> labels;
  for (NodeId v = 0; v < g.num_nodes() && labels.size() < 6; ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(labels.begin(), labels.end(), e.label) == labels.end()) {
        labels.push_back(e.label);
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
    d.inserts.push_back(
        {src, i % 2 == 0 ? q_label : labels[rng() % labels.size()], dst});
  }
  return d;
}

TEST(MaintainTest, SeedMatchesDmine) {
  auto g = std::make_shared<const Graph>(MakeSynthetic(300, 900, 10, 11));
  Predicate q = PickQ(*g);
  auto m = RuleMaintainer::Seed(g, q, SmallMaintain());
  ASSERT_TRUE(m.ok()) << m.status();
  ExpectMatchesDmine(**m, "seed pass");
  EXPECT_GT((*m)->TopKRecords().size(), 0u);
  EXPECT_GT((*m)->objective(), 0.0);
  EXPECT_EQ((*m)->last_sequence(), 0u);
}

TEST(MaintainTest, RejectsPruneAwareUsupp) {
  auto g = std::make_shared<const Graph>(MakeSynthetic(200, 600, 10, 3));
  Predicate q = PickQ(*g);
  MaintainOptions opt = SmallMaintain();
  opt.mine.enable_prune_aware_usupp = true;
  auto m = RuleMaintainer::Seed(g, q, opt);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

// The headline battery: six seeded workloads, each driven through an
// interleaved insert+delete stream with a mid-stream checkpoint and an
// end-of-stream checkpoint, where the maintained supports/confidences must
// be byte-identical to a from-scratch Dmine on the current graph. Sigma
// crossings must occur in BOTH directions somewhere across the battery —
// otherwise the stream never exercised re-expansion/retirement and the
// equivalence proved nothing about them.
TEST(MaintainEquivalenceTest, InterleavedStreamsMatchDmineAtCheckpoints) {
  const size_t kBatches = 4;
  const size_t kChurn = 30;
  uint64_t crossed_up = 0, crossed_down = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto g = std::make_shared<const Graph>(
        MakeSynthetic(300, 900, 10, seed * 17));
    Predicate q = PickQ(*g);
    auto m = RuleMaintainer::Seed(g, q, SmallMaintain());
    ASSERT_TRUE(m.ok()) << m.status();
    for (size_t b = 0; b < kBatches; ++b) {
      GraphDelta d = MakeChurn(*(*m)->graph(), q.edge_label,
                               seed * 1000 + b, kChurn);
      d.sequence = b + 1;
      auto ps = (*m)->ApplyDelta(d);
      ASSERT_TRUE(ps.ok()) << ps.status();
      crossed_up += ps->sigma_crossed_up;
      crossed_down += ps->sigma_crossed_down;
      if (b == kBatches / 2 - 1 || b == kBatches - 1) {
        ExpectMatchesDmine(
            **m, "seed " + std::to_string(seed) + " checkpoint after batch " +
                     std::to_string(b));
      }
    }
    EXPECT_EQ((*m)->last_sequence(), kBatches);
  }
  EXPECT_GT(crossed_up, 0u) << "no rule ever re-entered sigma";
  EXPECT_GT(crossed_down, 0u) << "no rule ever fell out of sigma";
}

// The subsystem's own ablation: enable_incremental_maintenance off means
// every pass re-probes every pool center (a sequential re-mine). Both
// settings must produce identical rule sets on an identical stream.
TEST(MaintainEquivalenceTest, IncrementalAblationIsResultIdentical) {
  auto g = std::make_shared<const Graph>(MakeSynthetic(300, 900, 10, 77));
  Predicate q = PickQ(*g);
  MaintainOptions on = SmallMaintain();
  on.enable_incremental_maintenance = true;
  MaintainOptions off = SmallMaintain();
  off.enable_incremental_maintenance = false;
  auto a = RuleMaintainer::Seed(g, q, on);
  auto b = RuleMaintainer::Seed(g, q, off);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  for (size_t batch = 0; batch < 3; ++batch) {
    GraphDelta d = MakeChurn(*(*a)->graph(), q.edge_label, 500 + batch, 25);
    d.sequence = batch + 1;
    auto pa = (*a)->ApplyDelta(d);
    auto pb = (*b)->ApplyDelta(d);
    ASSERT_TRUE(pa.ok()) << pa.status();
    ASSERT_TRUE(pb.ok()) << pb.status();
    EXPECT_EQ((*a)->TopKRecords(), (*b)->TopKRecords()) << "batch " << batch;
    EXPECT_EQ((*a)->objective(), (*b)->objective()) << "batch " << batch;
    // The ablation is the whole point of the incremental path: the on
    // maintainer must carry memberships the off maintainer re-probes.
    EXPECT_GT(pa->centers_carried, 0u);
    EXPECT_EQ(pb->centers_carried, 0u);
  }
}

// Mid-stream checkpoint through the at-rest format: export the evidence as
// a v2 snapshot, restore with FromEvidence, and drive both maintainers to
// the end of the stream — the restored one must stay byte-identical.
TEST(MaintainEquivalenceTest, SnapshotV2CheckpointRestoresMidStream) {
  const std::string path = "/tmp/gpar_maintain_ckpt.rules";
  auto g = std::make_shared<const Graph>(MakeSynthetic(300, 900, 10, 21));
  Predicate q = PickQ(*g);
  auto m = RuleMaintainer::Seed(g, q, SmallMaintain());
  ASSERT_TRUE(m.ok()) << m.status();
  for (size_t b = 0; b < 2; ++b) {
    GraphDelta d = MakeChurn(*(*m)->graph(), q.edge_label, 900 + b, 20);
    d.sequence = b + 1;
    ASSERT_TRUE((*m)->ApplyDelta(d).ok());
  }

  ASSERT_TRUE(WriteRuleSetSnapshotV2File((*m)->TopKRecords(),
                                         (*m)->ExportEvidence(),
                                         (*m)->graph()->labels(), path)
                  .ok());
  Interner labels = (*m)->graph()->labels();
  auto snap = ReadRuleSetSnapshotAnyFile(path, &labels);
  ASSERT_TRUE(snap.ok()) << snap.status();
  ASSERT_TRUE(snap->has_evidence);
  EXPECT_EQ(snap->rules, (*m)->TopKRecords());

  auto restored =
      RuleMaintainer::FromEvidence((*m)->graph(), snap->evidence,
                                   SmallMaintain());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->TopKRecords(), (*m)->TopKRecords());
  EXPECT_EQ((*restored)->objective(), (*m)->objective());

  for (size_t b = 2; b < 4; ++b) {
    GraphDelta d = MakeChurn(*(*m)->graph(), q.edge_label, 900 + b, 20);
    d.sequence = b + 1;
    ASSERT_TRUE((*m)->ApplyDelta(d).ok());
    ASSERT_TRUE((*restored)->ApplyDelta(d).ok());
    EXPECT_EQ((*restored)->TopKRecords(), (*m)->TopKRecords());
  }
  ExpectMatchesDmine(**restored, "restored maintainer at end of stream");
  std::remove(path.c_str());
}

TEST(MaintainEquivalenceTest, FromEvidenceRejectsForeignSetup) {
  auto g = std::make_shared<const Graph>(MakeSynthetic(200, 600, 10, 5));
  Predicate q = PickQ(*g);
  auto m = RuleMaintainer::Seed(g, q, SmallMaintain());
  ASSERT_TRUE(m.ok()) << m.status();
  MaintainOptions other = SmallMaintain();
  other.mine.sigma = SmallMaintain().mine.sigma + 1;
  auto restored = RuleMaintainer::FromEvidence(g, (*m)->ExportEvidence(),
                                               other);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Journal replay: the maintainer's snapshot + journal convergence.
// ---------------------------------------------------------------------------

TEST(MaintainJournalTest, ReplayJournalConvergesWithDirectDeltas) {
  const std::string wal = "/tmp/gpar_maintain_replay.wal";
  std::remove(wal.c_str());
  auto g = std::make_shared<const Graph>(MakeSynthetic(300, 900, 10, 31));
  Predicate q = PickQ(*g);

  auto direct = RuleMaintainer::Seed(g, q, SmallMaintain());
  auto replayed = RuleMaintainer::Seed(g, q, SmallMaintain());
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  auto journal = DeltaJournal::Open(wal);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (size_t b = 0; b < 3; ++b) {
    GraphDelta d = MakeChurn(*(*direct)->graph(), q.edge_label, 40 + b, 20);
    d.sequence = b + 1;
    ASSERT_TRUE((*journal)->Append(d).ok());
    ASSERT_TRUE((*direct)->ApplyDelta(d).ok());
  }

  auto stats = (*replayed)->ReplayJournal(wal);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->passes, 3u);
  EXPECT_EQ((*replayed)->last_sequence(), 3u);
  EXPECT_EQ((*replayed)->TopKRecords(), (*direct)->TopKRecords());

  // Replay is idempotent: every frame is already behind last_sequence().
  auto again = (*replayed)->ReplayJournal(wal);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->passes, 0u);
  EXPECT_EQ((*replayed)->TopKRecords(), (*direct)->TopKRecords());
  std::remove(wal.c_str());
}

// ---------------------------------------------------------------------------
// DeltaJournalCursor: the read-only frame iterator ReplayJournal rides.
// ---------------------------------------------------------------------------

GraphDelta TinyDelta(uint64_t sequence, NodeId src, NodeId dst) {
  GraphDelta d;
  d.sequence = sequence;
  d.inserts.push_back({src, 0, dst});
  return d;
}

TEST(DeltaJournalCursorTest, IteratesFramesInOrder) {
  const std::string wal = "/tmp/gpar_cursor_order.wal";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    for (uint64_t s = 1; s <= 3; ++s) {
      ASSERT_TRUE((*j)->Append(TinyDelta(s, 1, 2)).ok());
    }
  }
  auto cur = DeltaJournalCursor::Open(wal);
  ASSERT_TRUE(cur.ok()) << cur.status();
  EXPECT_EQ(cur->frames(), 3u);
  EXPECT_EQ(cur->last_sequence(), 3u);
  GraphDelta d;
  for (uint64_t s = 1; s <= 3; ++s) {
    EXPECT_EQ(cur->remaining(), 3u - (s - 1));
    ASSERT_TRUE(cur->Next(&d));
    EXPECT_EQ(d.sequence, s);
  }
  EXPECT_FALSE(cur->Next(&d));
  EXPECT_EQ(cur->remaining(), 0u);
  std::remove(wal.c_str());
}

TEST(DeltaJournalCursorTest, MissingFileIsAnEmptyJournal) {
  auto cur = DeltaJournalCursor::Open("/tmp/gpar_cursor_nope.wal");
  ASSERT_TRUE(cur.ok()) << cur.status();
  EXPECT_EQ(cur->frames(), 0u);
  GraphDelta d;
  EXPECT_FALSE(cur->Next(&d));
}

TEST(DeltaJournalCursorTest, TornTailIsCutBehindTheValidPrefix) {
  const std::string wal = "/tmp/gpar_cursor_torn.wal";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    ASSERT_TRUE((*j)->Append(TinyDelta(1, 1, 2)).ok());
    ASSERT_TRUE((*j)->Append(TinyDelta(2, 3, 4)).ok());
  }
  {
    // A torn third frame: half a real frame's bytes appended raw.
    std::string frame = TinyDelta(3, 5, 6).Serialize();
    std::ofstream os(wal, std::ios::binary | std::ios::app);
    os.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }
  JournalReplayStats scan;
  auto cur = DeltaJournalCursor::Open(wal, &scan);
  ASSERT_TRUE(cur.ok()) << cur.status();
  EXPECT_EQ(cur->frames(), 2u);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_GT(scan.dropped_bytes, 0u);
  GraphDelta d;
  ASSERT_TRUE(cur->Next(&d));
  EXPECT_EQ(d.sequence, 1u);
  ASSERT_TRUE(cur->Next(&d));
  EXPECT_EQ(d.sequence, 2u);
  EXPECT_FALSE(cur->Next(&d));
  std::remove(wal.c_str());
}

TEST(DeltaJournalCursorTest, SeekPastSequenceHonorsTheCheckpointFloor) {
  const std::string wal = "/tmp/gpar_cursor_seek.wal";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    for (uint64_t s = 1; s <= 4; ++s) {
      ASSERT_TRUE((*j)->Append(TinyDelta(s, 1, 2)).ok());
    }
  }
  auto cur = DeltaJournalCursor::Open(wal);
  ASSERT_TRUE(cur.ok()) << cur.status();
  cur->SeekPastSequence(2);
  GraphDelta d;
  ASSERT_TRUE(cur->Next(&d));
  EXPECT_EQ(d.sequence, 3u);
  // Only forward seeks: a floor behind the cursor does not rewind it.
  cur->SeekPastSequence(1);
  ASSERT_TRUE(cur->Next(&d));
  EXPECT_EQ(d.sequence, 4u);
  EXPECT_FALSE(cur->Next(&d));

  // A compacted journal holds just the floor marker; seeking past the
  // floor steps over it and a fresh consumer sees no frames to replay.
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    ASSERT_TRUE((*j)->Compact().ok());
  }
  auto after = DeltaJournalCursor::Open(wal);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->last_sequence(), 4u);
  after->SeekPastSequence(4);
  EXPECT_FALSE(after->Next(&d));
  std::remove(wal.c_str());
}

TEST(DeltaJournalCursorTest, ReplayRangeFiltersAndStopsOnError) {
  const std::string wal = "/tmp/gpar_cursor_range.wal";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    for (uint64_t s = 1; s <= 4; ++s) {
      ASSERT_TRUE((*j)->Append(TinyDelta(s, 1, 2)).ok());
    }
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(ReplayRange(wal, 2,
                          [&](const GraphDelta& d) {
                            seen.push_back(d.sequence);
                            return Status::OK();
                          })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 4}));

  seen.clear();
  Status st = ReplayRange(wal, 0, [&](const GraphDelta& d) {
    seen.push_back(d.sequence);
    return d.sequence == 2 ? Status::Internal("stop") : Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
  std::remove(wal.c_str());
}

// ---------------------------------------------------------------------------
// Serve integration: maintain-on-ApplyDelta on both server tiers.
// ---------------------------------------------------------------------------

TEST(MaintainServeTest, RuleServerMaintainsOnApplyDelta) {
  Graph g = MakeSynthetic(300, 900, 10, 51);
  Predicate q = PickQ(g);
  MaintainOptions mopt = SmallMaintain();
  std::vector<RuleRecord> records = DmineRecords(g, q, mopt.mine);
  ASSERT_FALSE(records.empty());

  RuleServerOptions sopt;
  sopt.num_workers = 2;
  auto server = RuleServer::Create(g, records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->EnableMaintenance(mopt).ok());
  EXPECT_TRUE((*server)->maintenance_enabled());
  // Seeding on the same graph under the same options reproduces the same
  // top-k — enabling maintenance must not change the served rules.
  EXPECT_EQ((*server)->rules(), records);

  auto st = (*server)->EnableMaintenance(mopt);
  ASSERT_FALSE(st.ok());  // double-enable is an error

  Graph reference = g;
  for (size_t b = 0; b < 3; ++b) {
    GraphDelta d = MakeChurn(reference, q.edge_label, 70 + b, 25);
    d.sequence = b + 1;
    auto ref = PatchGraph(reference, d);
    ASSERT_TRUE(ref.ok());
    reference = std::move(ref)->graph;
    auto ds = (*server)->ApplyDelta(d);
    ASSERT_TRUE(ds.ok()) << ds.status();
    std::vector<RuleRecord> want = DmineRecords(reference, q, mopt.mine);
    EXPECT_EQ((*server)->rules(), want) << "batch " << b;
  }
  // The maintained server must still answer queries on the final rule set.
  auto answer = (*server)->IdentifyAll(1.0);
  ASSERT_TRUE(answer.ok()) << answer.status();
}

TEST(MaintainServeTest, UpdateRulesRejectsAForeignPredicate) {
  Graph g = MakeSynthetic(300, 900, 10, 51);
  Predicate q = PickQ(g);
  std::vector<RuleRecord> records = DmineRecords(g, q, SmallMaintain().mine);
  ASSERT_FALSE(records.empty());
  RuleServerOptions sopt;
  sopt.num_workers = 2;
  auto server = RuleServer::Create(g, records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();

  // A rule set over a different predicate: re-mine against another q.
  auto freq = FrequentEdgePatterns(g);
  ASSERT_GE(freq.size(), 2u);
  Predicate other{freq[1].src_label, freq[1].edge_label, freq[1].dst_label};
  ASSERT_FALSE(other == q);
  std::vector<RuleRecord> foreign =
      DmineRecords(g, other, SmallMaintain().mine);
  ASSERT_FALSE(foreign.empty());
  Status st = (*server)->UpdateRules(foreign);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("predicate"), std::string::npos) << st;

  // The empty set is the one exception (pool death under deletes): the
  // server keeps serving with zero rules rather than failing the refresh.
  EXPECT_TRUE((*server)->UpdateRules({}).ok());
  EXPECT_TRUE((*server)->rules().empty());
  auto answer = (*server)->IdentifyAll(1.0);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->rule_evals.empty());
}

TEST(MaintainServeTest, ShardedServerMaintainsOnApplyDelta) {
  Graph g = MakeSynthetic(300, 900, 10, 51);
  Predicate q = PickQ(g);
  MaintainOptions mopt = SmallMaintain();
  std::vector<RuleRecord> records = DmineRecords(g, q, mopt.mine);
  ASSERT_FALSE(records.empty());

  ShardedRuleServerOptions shopt;
  shopt.num_shards = 2;
  shopt.shard_options.num_workers = 2;
  auto sharded = ShardedRuleServer::Create(g, records, shopt);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ShardedRuleServer& sh = **sharded;

  // The partition was cut for the mined radius, so enabling at that radius
  // succeeds; asking for a deeper maintained radius must be refused — the
  // fragment views do not cover it.
  MaintainOptions deep = mopt;
  deep.mine.d = mopt.mine.d + 3;
  Status st = sh.EnableMaintenance(deep);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("partition radius"), std::string::npos) << st;

  ASSERT_TRUE(sh.EnableMaintenance(mopt).ok());
  EXPECT_TRUE(sh.maintenance_enabled());
  EXPECT_EQ(sh.rules(), records);

  Graph reference = g;
  for (size_t b = 0; b < 2; ++b) {
    GraphDelta d = MakeChurn(reference, q.edge_label, 80 + b, 20);
    d.sequence = b + 1;
    auto ref = PatchGraph(reference, d);
    ASSERT_TRUE(ref.ok());
    reference = std::move(ref)->graph;
    auto ds = sh.ApplyDelta(d);
    ASSERT_TRUE(ds.ok()) << ds.status();
    std::vector<RuleRecord> want = DmineRecords(reference, q, mopt.mine);
    EXPECT_EQ(sh.rules(), want) << "batch " << b;

    // The refreshed set must actually be served: a sharded all-centers
    // answer sizes its evals off the refreshed records.
    SessionRequest all;
    all.all_centers = true;
    all.eta = 1.0;
    auto reply = sh.Query(all);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->rule_evals.size(), want.size());
  }
}

// Concurrent maintain + query: deltas (and their rule refreshes) race
// all-centers queries on both server tiers. Run under TSan by the widened
// CI regex; the assertion here is freedom from data races and torn rule
// sets, not specific answers.
TEST(MaintainServeTest, ConcurrentMaintainAndQuery) {
  Graph g = MakeSynthetic(300, 900, 10, 51);
  Predicate q = PickQ(g);
  MaintainOptions mopt = SmallMaintain();
  std::vector<RuleRecord> records = DmineRecords(g, q, mopt.mine);
  ASSERT_FALSE(records.empty());
  RuleServerOptions sopt;
  sopt.num_workers = 2;
  auto server = RuleServer::Create(g, records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE((*server)->EnableMaintenance(mopt).ok());
  RuleServer& s = **server;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    Graph current = g;
    for (size_t b = 0; b < 3; ++b) {
      GraphDelta d = MakeChurn(current, q.edge_label, 90 + b, 15);
      d.sequence = b + 1;
      auto ref = PatchGraph(current, d);
      if (!ref.ok()) {
        ++failures;
        break;
      }
      current = std::move(ref)->graph;
      if (!s.ApplyDelta(d).ok()) ++failures;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      SessionRequest all;
      all.all_centers = true;
      all.eta = 1.0;
      while (!stop.load(std::memory_order_acquire)) {
        auto r = s.Query(all);
        if (!r.ok()) {
          ++failures;
          break;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(s.rules(), DmineRecords(s.graph(), q, mopt.mine));
}

}  // namespace
}  // namespace gpar
