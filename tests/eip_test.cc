#include "identify/eip.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "graph/stats.h"
#include "pattern/pattern_generator.h"

namespace gpar {
namespace {

class EipTest : public ::testing::Test {
 protected:
  EipTest() : g1_(MakePaperG1()) {
    sigma_ = {g1_.r1, g1_.r5, g1_.r6, g1_.r7, g1_.r8};
  }
  PaperG1 g1_;
  std::vector<Gpar> sigma_;
};

TEST_F(EipTest, SequentialReferenceOnG1) {
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kSequential;
  opt.eta = 0.5;
  auto r = IdentifyEntities(g1_.graph, sigma_, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->supp_q, 5u);
  EXPECT_EQ(r->supp_qbar, 1u);
  ASSERT_EQ(r->rule_evals.size(), 5u);
  EXPECT_DOUBLE_EQ(r->rule_evals[0].conf, 0.6);  // R1
  EXPECT_DOUBLE_EQ(r->rule_evals[1].conf, 0.8);  // R5
  EXPECT_DOUBLE_EQ(r->rule_evals[2].conf, 0.4);  // R6
  EXPECT_DOUBLE_EQ(r->rule_evals[3].conf, 0.6);  // R7
  EXPECT_DOUBLE_EQ(r->rule_evals[4].conf, 0.2);  // R8

  // At eta = 0.5: R1, R5, R7 qualify. Output = union of their Q(x, G):
  // Q1 = {c1,c2,c3,c5}, Q5 = {c1..c5}, Q7 = {c1,c2,c3,c5}.
  std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust4,
                               g1_.cust5};
  EXPECT_EQ(r->entities, expected);
}

TEST_F(EipTest, AllAlgorithmsAgree) {
  for (double eta : {0.3, 0.5, 0.7}) {
    EipOptions seq;
    seq.algorithm = EipAlgorithm::kSequential;
    seq.eta = eta;
    auto ref = IdentifyEntities(g1_.graph, sigma_, seq);
    ASSERT_TRUE(ref.ok());

    for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                              EipAlgorithm::kDisVf2}) {
      EipOptions opt;
      opt.algorithm = algo;
      opt.eta = eta;
      opt.num_workers = 2;
      auto got = IdentifyEntities(g1_.graph, sigma_, opt);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got->entities, ref->entities)
          << "algo " << static_cast<int>(algo) << " eta " << eta;
      ASSERT_EQ(got->rule_evals.size(), ref->rule_evals.size());
      for (size_t i = 0; i < ref->rule_evals.size(); ++i) {
        EXPECT_EQ(got->rule_evals[i].supp_r, ref->rule_evals[i].supp_r);
        EXPECT_EQ(got->rule_evals[i].supp_qqbar,
                  ref->rule_evals[i].supp_qqbar);
        EXPECT_DOUBLE_EQ(got->rule_evals[i].conf, ref->rule_evals[i].conf);
      }
    }
  }
}

TEST_F(EipTest, ResultIndependentOfWorkerCount) {
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.eta = 0.5;
  opt.num_workers = 1;
  auto ref = IdentifyEntities(g1_.graph, sigma_, opt);
  ASSERT_TRUE(ref.ok());
  for (uint32_t n : {2u, 3u, 5u, 8u}) {
    opt.num_workers = n;
    auto got = IdentifyEntities(g1_.graph, sigma_, opt);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->entities, ref->entities) << "n=" << n;
  }
}

TEST_F(EipTest, RequireConsequentNarrowsOutput) {
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.eta = 0.5;
  opt.require_consequent = true;
  auto r = IdentifyEntities(g1_.graph, sigma_, opt);
  ASSERT_TRUE(r.ok());
  // P_R matches of R1/R5/R7: {c1,c2,c3} ∪ {c1..c4} = {c1,c2,c3,c4};
  // cust5 (an antecedent-only match) is excluded under this semantics.
  std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust4};
  EXPECT_EQ(r->entities, expected);

  // Same under the sequential reference.
  opt.algorithm = EipAlgorithm::kSequential;
  auto r2 = IdentifyEntities(g1_.graph, sigma_, opt);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->entities, expected);
}

TEST_F(EipTest, HighEtaYieldsEmpty) {
  EipOptions opt;
  opt.eta = 1.5;  // max conf on G1 is 0.8
  auto r = IdentifyEntities(g1_.graph, sigma_, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->entities.empty());
}

TEST_F(EipTest, WorkCountersOrderAsExpected) {
  // disVF2 does two checks at every candidate and enumerates; Match issues
  // the fewest queries thanks to sharing and minimal policies.
  EipOptions match_opt;
  match_opt.algorithm = EipAlgorithm::kMatch;
  match_opt.eta = 0.5;
  auto match_r = IdentifyEntities(g1_.graph, sigma_, match_opt);
  ASSERT_TRUE(match_r.ok());

  EipOptions dis_opt;
  dis_opt.algorithm = EipAlgorithm::kDisVf2;
  dis_opt.eta = 0.5;
  auto dis_r = IdentifyEntities(g1_.graph, sigma_, dis_opt);
  ASSERT_TRUE(dis_r.ok());

  EXPECT_GT(dis_r->exists_queries, match_r->exists_queries);
  EXPECT_GT(dis_r->embeddings_enumerated, 0u);
}

TEST_F(EipTest, AblationVariantsAgree) {
  // Every combination of the Match optimizations must give identical
  // results — the toggles change cost, never answers.
  EipOptions base;
  base.algorithm = EipAlgorithm::kMatch;
  base.eta = 0.5;
  base.num_workers = 2;
  auto ref = IdentifyEntities(g1_.graph, sigma_, base);
  ASSERT_TRUE(ref.ok());
  for (bool guided : {false, true}) {
    for (bool share : {false, true}) {
      EipOptions opt = base;
      opt.use_guided_search = guided;
      opt.share_multi_patterns = share;
      auto got = IdentifyEntities(g1_.graph, sigma_, opt);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->entities, ref->entities)
          << "guided=" << guided << " share=" << share;
      for (size_t i = 0; i < ref->rule_evals.size(); ++i) {
        EXPECT_DOUBLE_EQ(got->rule_evals[i].conf, ref->rule_evals[i].conf);
      }
    }
  }
}

TEST_F(EipTest, ViewAndCopiedFragmentsAgree) {
  // Zero-copy fragment views vs materialized induced subgraphs: identical
  // entities, supports, and confidences under every parallel algorithm.
  for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                            EipAlgorithm::kDisVf2}) {
    EipOptions opt;
    opt.algorithm = algo;
    opt.eta = 0.5;
    opt.num_workers = 3;
    opt.use_fragment_copies = false;
    auto viewed = IdentifyEntities(g1_.graph, sigma_, opt);
    opt.use_fragment_copies = true;
    auto copied = IdentifyEntities(g1_.graph, sigma_, opt);
    ASSERT_TRUE(viewed.ok()) << viewed.status();
    ASSERT_TRUE(copied.ok()) << copied.status();
    EXPECT_EQ(viewed->entities, copied->entities)
        << "algo " << static_cast<int>(algo);
    EXPECT_EQ(viewed->supp_q, copied->supp_q);
    EXPECT_EQ(viewed->supp_qbar, copied->supp_qbar);
    ASSERT_EQ(viewed->rule_evals.size(), copied->rule_evals.size());
    for (size_t i = 0; i < viewed->rule_evals.size(); ++i) {
      EXPECT_EQ(viewed->rule_evals[i].supp_r, copied->rule_evals[i].supp_r);
      EXPECT_EQ(viewed->rule_evals[i].supp_qqbar,
                copied->rule_evals[i].supp_qqbar);
      EXPECT_DOUBLE_EQ(viewed->rule_evals[i].conf,
                       copied->rule_evals[i].conf);
    }
  }
}

TEST_F(EipTest, InputValidation) {
  EXPECT_FALSE(IdentifyEntities(g1_.graph, {}, {}).ok());

  // Mixed predicates rejected.
  PaperG2 g2 = MakePaperG2();
  std::vector<Gpar> mixed{g1_.r1, g2.r4};
  EXPECT_FALSE(IdentifyEntities(g1_.graph, mixed, {}).ok());

  EipOptions bad_eta;
  bad_eta.eta = 0;
  EXPECT_FALSE(IdentifyEntities(g1_.graph, sigma_, bad_eta).ok());
}

TEST(EipSyntheticTest, AgreementOnGeneratedWorkload) {
  // End-to-end: generated graph + generated GPAR workload; all algorithms
  // and worker counts agree with the sequential oracle.
  Graph g = MakePokecLike(1, 99);
  LabelId user = g.labels().Lookup("user");
  LabelId like_music = g.labels().Lookup("like_music");
  auto freq = FrequentEdgePatterns(g);
  LabelId target = kNoLabel;
  for (const EdgePatternStat& s : freq) {
    if (s.edge_label == like_music) {
      target = s.dst_label;
      break;
    }
  }
  ASSERT_NE(target, kNoLabel);
  Predicate q{user, like_music, target};

  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  std::vector<Gpar> sigma = GenerateGparWorkload(g, q, 6, gopt);
  ASSERT_GE(sigma.size(), 3u);

  EipOptions seq;
  seq.algorithm = EipAlgorithm::kSequential;
  seq.eta = 0.8;
  auto ref = IdentifyEntities(g, sigma, seq);
  ASSERT_TRUE(ref.ok());

  for (EipAlgorithm algo :
       {EipAlgorithm::kMatch, EipAlgorithm::kMatchc}) {
    EipOptions opt;
    opt.algorithm = algo;
    opt.eta = 0.8;
    opt.num_workers = 3;
    auto got = IdentifyEntities(g, sigma, opt);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->entities, ref->entities);
    for (size_t i = 0; i < ref->rule_evals.size(); ++i) {
      EXPECT_DOUBLE_EQ(got->rule_evals[i].conf, ref->rule_evals[i].conf);
    }
  }
}

}  // namespace
}  // namespace gpar
