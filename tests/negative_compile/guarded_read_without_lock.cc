// Expected-to-fail TU: reading a GPAR_GUARDED_BY member without holding
// its mutex must trip -Werror=thread-safety. Registered (clang only) as a
// WILL_FAIL build test by tests/CMakeLists.txt; never linked or run.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  gpar::Mutex mu;
  int value GPAR_GUARDED_BY(mu) = 0;
};

int ReadUnlocked(Counter& c) {
  return c.value;  // violation: no lock held
}

}  // namespace

int main() {
  Counter c;
  return ReadUnlocked(c);
}
