// Expected-to-fail TU: calling a GPAR_REQUIRES(mu) function without the
// lock must trip -Werror=thread-safety. CondVar::Wait is the wrapper with
// that contract. Registered (clang only) as a WILL_FAIL build test by
// tests/CMakeLists.txt; never linked or run.

#include "common/mutex.h"

int main() {
  gpar::Mutex mu;
  gpar::CondVar cv;
  cv.Wait(mu);  // violation: Wait requires mu held
  return 0;
}
