// Expected-to-fail TU: calling a GPAR_EXCLUDES(mu) function while holding
// mu must trip -Werror=thread-safety. This is the self-deadlock shape the
// annotations on ThreadPool::Submit/Wait exist to prevent (a task body
// calling back into the pool's own locked API). Registered (clang only)
// as a WILL_FAIL build test by tests/CMakeLists.txt; never linked or run.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Widget {
 public:
  void Refresh() GPAR_EXCLUDES(mu_) {
    gpar::MutexLock lock(mu_);
    ++generation_;
  }

  void RefreshLocked() {
    gpar::MutexLock lock(mu_);
    Refresh();  // violation: Refresh excludes mu_, which is held here
  }

 private:
  gpar::Mutex mu_;
  int generation_ GPAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.RefreshLocked();
  return 0;
}
