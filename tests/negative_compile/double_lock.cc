// Expected-to-fail TU: acquiring a Mutex that is already held must trip
// -Werror=thread-safety (it would deadlock at runtime; the analysis
// catches it statically). Registered (clang only) as a WILL_FAIL build
// test by tests/CMakeLists.txt; never linked or run.

#include "common/mutex.h"

int main() {
  gpar::Mutex mu;
  gpar::MutexLock outer(mu);
  gpar::MutexLock inner(mu);  // violation: mu already held
  return 0;
}
