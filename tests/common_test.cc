#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>

#include "common/interner.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace gpar {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad k");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad k");

  std::ostringstream os;
  os << err;
  EXPECT_EQ(os.str(), "InvalidArgument: bad k");
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    GPAR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

// GCC 12 under -O2 reports a -Wmaybe-uninitialized false positive inside
// std::variant's destructor when a Result<int> holding a Status dies here
// (the string member's inlined dtor; GCC PR 105142 family). Scoped pragma so
// the rest of the TU keeps the warning.
#pragma GCC diagnostic push
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, ValueAndError) {
  Result<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);

  Result<int> e(Status::OutOfRange("n"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfRange);
}
#pragma GCC diagnostic pop

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool good) -> Result<int> {
    if (good) return 7;
    return Status::Internal("boom");
  };
  auto consume = [&](bool good) -> Result<int> {
    GPAR_ASSIGN_OR_RETURN(int x, produce(good));
    return x * 2;
  };
  EXPECT_EQ(*consume(true), 14);
  EXPECT_FALSE(consume(false).ok());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool identical = true, differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    identical = identical && (va == b.Next());
    differs = differs || (va != c.Next());
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t r = rng.UniformRange(3, 9);
    EXPECT_GE(r, 3u);
    EXPECT_LE(r, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(7);
  size_t low = 0, high = 0;
  for (int i = 0; i < 4000; ++i) {
    uint64_t z = rng.Zipf(100, 1.0);
    EXPECT_LT(z, 100u);
    if (z < 10) ++low;
    if (z >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(InternerTest, RoundTripAndStability) {
  Interner in;
  LabelId a = in.Intern("cust");
  LabelId b = in.Intern("city");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("cust"), a);  // stable
  EXPECT_EQ(in.Lookup("cust"), a);
  EXPECT_EQ(in.Lookup("nope"), kNoLabel);
  EXPECT_EQ(in.Name(a), "cust");
  EXPECT_EQ(in.Name(kNoLabel), "<none>");
  EXPECT_EQ(in.Name(kWildcardLabel), "*");
  EXPECT_EQ(in.size(), 2u);
}

TEST(TimerTest, BusyClockAccumulates) {
  BusyClock clock;
  clock.Start();
  volatile int64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  clock.Stop();
  double first = clock.TotalSeconds();
  EXPECT_GE(first, 0.0);
  clock.Start();
  for (int i = 0; i < 100000; ++i) x = x + i;
  clock.Stop();
  EXPECT_GE(clock.TotalSeconds(), first);
  clock.Reset();
  EXPECT_EQ(clock.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace gpar
