#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace gpar {
namespace {

/// Every test leaves the process-wide registry clean — a leaked armed site
/// would leak injected failures into unrelated tests in this binary.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

/// Stand-in for an instrumented function: one failpoint site, then OK.
Status GuardedOp() {
  GPAR_FAILPOINT("test.site");
  return Status::OK();
}

/// Stand-in for an instrumented write: reports how many of `size` bytes
/// the torn-write budget let through.
size_t GuardedWrite(size_t size) {
  return GPAR_FAILPOINT_TORN("test.torn", size);
}

TEST_F(FailpointTest, UnarmedSitesPassAndCostNothing) {
  EXPECT_FALSE(FailpointsActive());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(GuardedWrite(100), 100u);
  // The pass was never counted: the registry was not even consulted.
  EXPECT_EQ(FailpointRegistry::Instance().Passes("test.site"), 0u);
}

TEST_F(FailpointTest, ArmedSiteInjectsConfiguredStatus) {
  FailpointSpec spec;
  spec.code = StatusCode::kIoError;
  spec.message = "disk on fire";
  FailpointRegistry::Instance().Arm("test.site", spec);
  EXPECT_TRUE(FailpointsActive());

  Status st = GuardedOp();
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("test.site"), std::string::npos) << st;
  EXPECT_NE(st.message().find("disk on fire"), std::string::npos) << st;

  // Default fires = 1: the site is quiet again.
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(FailpointRegistry::Instance().Fires("test.site"), 1u);
  EXPECT_EQ(FailpointRegistry::Instance().Passes("test.site"), 2u);

  FailpointRegistry::Instance().Disarm("test.site");
  EXPECT_FALSE(FailpointsActive());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FailpointTest, SkipAndFiresWindowTheInjection) {
  FailpointSpec spec;
  spec.skip = 2;
  spec.fires = 3;
  FailpointRegistry::Instance().Arm("test.site", spec);
  std::vector<bool> ok;
  for (int i = 0; i < 8; ++i) ok.push_back(GuardedOp().ok());
  EXPECT_EQ(ok, (std::vector<bool>{true, true, false, false, false, true,
                                   true, true}));
  EXPECT_EQ(FailpointRegistry::Instance().Fires("test.site"), 3u);
  EXPECT_EQ(FailpointRegistry::Instance().Passes("test.site"), 8u);
}

TEST_F(FailpointTest, ZeroFiresMeansPermanentFailure) {
  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("test.site", spec);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(GuardedOp().ok());
}

TEST_F(FailpointTest, RearmResetsCounters) {
  FailpointSpec spec;
  FailpointRegistry::Instance().Arm("test.site", spec);
  EXPECT_FALSE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());  // exhausted
  FailpointRegistry::Instance().Arm("test.site", spec);
  EXPECT_FALSE(GuardedOp().ok());  // fires again from a fresh counter
  EXPECT_EQ(FailpointRegistry::Instance().Passes("test.site"), 1u);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  auto run = [](uint64_t seed) {
    FailpointSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    spec.fires = 0;  // every elected pass fires
    FailpointRegistry::Instance().Arm("test.site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedOp().ok());
    FailpointRegistry::Instance().Disarm("test.site");
    return fired;
  };
  std::vector<bool> a = run(7);
  std::vector<bool> b = run(7);
  EXPECT_EQ(a, b);  // same seed, same fire pattern — replays exactly

  // A fair coin over 64 passes virtually surely fires at least once and
  // passes at least once.
  size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);

  std::vector<bool> c = run(8);
  EXPECT_NE(a, c);  // (with overwhelming probability for these seeds)
}

TEST_F(FailpointTest, OkCodeInjectsLatencyWithoutFailing) {
  FailpointSpec spec;
  spec.code = StatusCode::kOk;
  spec.latency_micros = 20000;
  FailpointRegistry::Instance().Arm("test.site", spec);
  Timer t;
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_GE(t.Micros(), 15000);  // sleep granularity slack
  EXPECT_EQ(FailpointRegistry::Instance().Fires("test.site"), 1u);
}

TEST_F(FailpointTest, TornWriteBudgetIsAlwaysGenuinelyTorn) {
  FailpointSpec spec;
  spec.torn_bytes = 10;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("test.torn", spec);
  EXPECT_EQ(GuardedWrite(100), 10u);
  // Clamped below the full size even when the budget would cover it.
  EXPECT_EQ(GuardedWrite(5), 4u);
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(GuardedWrite(100), 100u);
}

TEST_F(FailpointTest, NonTornSpecDoesNotTearWrites) {
  // A plain error spec on a torn site leaves the byte budget whole — the
  // torn macro only tears when torn_bytes >= 0.
  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("test.torn", spec);
  EXPECT_EQ(GuardedWrite(100), 100u);
}

TEST_F(FailpointTest, DisarmAllQuiescesEverySite) {
  FailpointSpec spec;
  spec.fires = 0;
  FailpointRegistry::Instance().Arm("test.site", spec);
  FailpointRegistry::Instance().Arm("test.other", spec);
  EXPECT_TRUE(FailpointsActive());
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_FALSE(FailpointsActive());
  EXPECT_TRUE(GuardedOp().ok());
}

}  // namespace
}  // namespace gpar
