#include "serve/rule_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "graph/paper_graphs.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "match/matcher.h"
#include "pattern/pattern_generator.h"
#include "rule/rule_snapshot.h"

namespace gpar {
namespace {

struct Workload {
  Graph graph;
  std::vector<Gpar> sigma;
  std::vector<RuleRecord> records;
};

/// A seeded (graph, Σ) pair: small synthetic or Pokec-like graph with a
/// lifted GPAR workload on its most frequent predicate.
Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.graph = (seed % 3 == 0) ? MakePokecLike(1, seed)
                            : MakeSynthetic(600, 1800, 20, seed);
  auto freq = FrequentEdgePatterns(w.graph);
  EXPECT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  gopt.seed = seed * 31 + 1;
  w.sigma = GenerateGparWorkload(w.graph, q, 5, gopt);
  EXPECT_GE(w.sigma.size(), 2u);
  for (const Gpar& r : w.sigma) w.records.push_back({r, 0, 0.0});
  return w;
}

void ExpectSameAnswer(const EipResult& got, const EipResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.entities, want.entities) << what;
  EXPECT_EQ(got.supp_q, want.supp_q) << what;
  EXPECT_EQ(got.supp_qbar, want.supp_qbar) << what;
  ASSERT_EQ(got.rule_evals.size(), want.rule_evals.size()) << what;
  for (size_t i = 0; i < want.rule_evals.size(); ++i) {
    EXPECT_EQ(got.rule_evals[i].supp_r, want.rule_evals[i].supp_r)
        << what << " rule " << i;
    EXPECT_EQ(got.rule_evals[i].supp_qqbar, want.rule_evals[i].supp_qqbar)
        << what << " rule " << i;
    EXPECT_DOUBLE_EQ(got.rule_evals[i].conf, want.rule_evals[i].conf)
        << what << " rule " << i;
  }
}

EipResult BatchIdentify(const Graph& g, const std::vector<Gpar>& sigma,
                        double eta, bool require_consequent) {
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.num_workers = 3;
  opt.eta = eta;
  opt.require_consequent = require_consequent;
  auto r = IdentifyEntities(g, sigma, opt);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

/// Direct per-(rule, center) oracle for point queries: fresh whole-graph
/// matching, no caches.
std::vector<uint32_t> OracleMatched(const Graph& g,
                                    const std::vector<Gpar>& sigma,
                                    NodeId center, bool require_consequent) {
  VF2Matcher m(g);
  std::vector<char> other_ok = OtherComponentsOk(g, sigma);
  std::vector<uint32_t> out;
  for (uint32_t ri = 0; ri < sigma.size(); ++ri) {
    bool hit;
    if (require_consequent) {
      hit = m.ExistsAt(sigma[ri].pr(), center);
    } else {
      hit = m.ExistsAt(sigma[ri].x_component(), center) && other_ok[ri] != 0;
    }
    if (hit) out.push_back(ri);
  }
  return out;
}

std::vector<EdgeInsert> MakeDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  std::vector<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes() && edge_labels.size() < 8; ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(edge_labels.begin(), edge_labels.end(), e.label) ==
          edge_labels.end()) {
        edge_labels.push_back(e.label);
      }
    }
  }
  std::vector<EdgeInsert> inserts;
  for (size_t i = 0; i < k; ++i) {
    NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
    LabelId l = edge_labels[rng() % edge_labels.size()];
    inserts.push_back({src, l, dst});
  }
  return inserts;
}

/// Snapshot bytes as a complete graph fingerprint (the snapshot writer is
/// deterministic, so byte equality means CSR equality).
std::string GraphBytes(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteGraphSnapshot(g, os).ok());
  return os.str();
}

/// Picks a node with at least one out-edge, scanning forward from a random
/// start (the synthetic generators leave some nodes bare).
NodeId PickSourceNode(const Graph& g, std::mt19937_64& rng) {
  NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
  while (g.out_edges(v).empty()) v = (v + 1) % g.num_nodes();
  return v;
}

/// A mutation batch mixing both directions: `k` random inserts over the
/// graph's discovered edge labels, `k` deletes of real out-edges, one
/// delete of a (almost surely) absent edge — tolerated, counted missing —
/// and, on even seeds, a delete-then-reinsert of one edge within the same
/// batch, which must leave the edge present.
GraphDelta MakeMutationDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  GraphDelta d;
  d.inserts = MakeDelta(g, seed * 5 + 1, k);
  for (size_t i = 0; i < k; ++i) {
    NodeId v = PickSourceNode(g, rng);
    const auto edges = g.out_edges(v);
    const AdjEntry& e = edges[rng() % edges.size()];
    d.deletes.push_back({v, e.label, e.other});
  }
  d.deletes.push_back({static_cast<NodeId>(rng() % g.num_nodes()),
                       static_cast<LabelId>(g.labels().size() - 1),
                       static_cast<NodeId>(rng() % g.num_nodes())});
  if (seed % 2 == 0) {
    NodeId v = PickSourceNode(g, rng);
    const AdjEntry& e = g.out_edges(v)[0];
    d.deletes.push_back({v, e.label, e.other});
    d.inserts.push_back({v, e.label, e.other});
  }
  return d;
}

std::vector<NodeId> SampleCenters(const RuleServer& server, uint64_t seed,
                                  size_t k) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> centers;
  const auto& cands = server.candidates();
  for (size_t i = 0; i < k && !cands.empty(); ++i) {
    centers.push_back(cands[rng() % cands.size()]);
  }
  // A couple of non-candidates (legal; they match nothing).
  centers.push_back(static_cast<NodeId>(rng() % server.graph().num_nodes()));
  return centers;
}

/// The acceptance battery: RuleServer answers — cold, warm-cache, and after
/// ApplyDelta — identical to a fresh batch IdentifyEntities run on the
/// equivalent graph, across seeds and worker counts.
TEST(ServeEquivalence, ColdWarmAndDeltaMatchBatch) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);

    EipResult batch_lo = BatchIdentify(w.graph, w.sigma, 0.5, false);
    EipResult batch_hi = BatchIdentify(w.graph, w.sigma, 1.2, false);
    EipResult batch_pr = BatchIdentify(w.graph, w.sigma, 0.5, true);

    std::vector<EdgeInsert> delta = MakeDelta(w.graph, seed * 977 + 5, 6);
    auto patchref = PatchGraphWithInserts(w.graph, delta);
    ASSERT_TRUE(patchref.ok());
    EipResult batch_patched =
        BatchIdentify(patchref->graph, w.sigma, 0.5, false);

    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("n=" + std::to_string(n));
      RuleServerOptions opt;
      opt.num_workers = n;
      auto server = RuleServer::Create(w.graph, w.records, opt);
      ASSERT_TRUE(server.ok()) << server.status();
      RuleServer& s = **server;

      // Cold.
      ServeStats cold_stats;
      auto cold = s.IdentifyAll(0.5, false, &cold_stats);
      ASSERT_TRUE(cold.ok()) << cold.status();
      ExpectSameAnswer(*cold, batch_lo, "cold");
      EXPECT_GT(cold_stats.cache_probes, 0u);

      // Warm: different eta, P_R semantics — all from cache.
      ServeStats warm_stats;
      auto warm = s.IdentifyAll(1.2, false, &warm_stats);
      ASSERT_TRUE(warm.ok());
      ExpectSameAnswer(*warm, batch_hi, "warm");
      EXPECT_EQ(warm_stats.cache_probes, 0u);
      EXPECT_GT(warm_stats.cache_hits, 0u);
      auto warm_pr = s.IdentifyAll(0.5, true);
      ASSERT_TRUE(warm_pr.ok());
      ExpectSameAnswer(*warm_pr, batch_pr, "warm require_consequent");

      // Point queries against the fresh-match oracle.
      ServeRequest req;
      req.centers = SampleCenters(s, seed + n, 6);
      auto reply = s.Serve(req);
      ASSERT_TRUE(reply.ok()) << reply.status();
      ASSERT_EQ(reply->matched.size(), req.centers.size());
      for (size_t i = 0; i < req.centers.size(); ++i) {
        EXPECT_EQ(reply->matched[i],
                  OracleMatched(w.graph, w.sigma, req.centers[i], false))
            << "center " << req.centers[i];
      }

      // Delta-then-query == rebuild-then-query.
      auto ds = s.ApplyDelta(delta);
      ASSERT_TRUE(ds.ok()) << ds.status();
      ServeStats delta_stats;
      auto after = s.IdentifyAll(0.5, false, &delta_stats);
      ASSERT_TRUE(after.ok());
      ExpectSameAnswer(*after, batch_patched, "after delta");
      // Locality: a 6-edge delta must not flush the whole cache.
      EXPECT_LE(delta_stats.cache_probes, cold_stats.cache_probes);

      // Point queries on the patched graph (exercises the partial per-rule
      // probe path on half-invalidated centers).
      auto reply2 = s.Serve(req);
      ASSERT_TRUE(reply2.ok());
      for (size_t i = 0; i < req.centers.size(); ++i) {
        EXPECT_EQ(reply2->matched[i],
                  OracleMatched(patchref->graph, w.sigma, req.centers[i],
                                false))
            << "patched center " << req.centers[i];
      }
    }
  }
}

TEST(ServeEquivalence, GuidedAndPlainAgree) {
  Workload w = MakeWorkload(1);
  EipResult batch = BatchIdentify(w.graph, w.sigma, 0.8, false);
  for (bool guided : {false, true}) {
    for (bool share : {false, true}) {
      for (bool precompute : {false, true}) {
        RuleServerOptions opt;
        opt.use_guided_search = guided;
        opt.share_multi_patterns = share;
        opt.precompute_sketches = precompute;
        auto server = RuleServer::Create(w.graph, w.records, opt);
        ASSERT_TRUE(server.ok()) << server.status();
        auto got = (*server)->IdentifyAll(0.8);
        ASSERT_TRUE(got.ok());
        ExpectSameAnswer(*got, batch,
                         "guided=" + std::to_string(guided) +
                             " share=" + std::to_string(share) +
                             " precompute=" + std::to_string(precompute));
      }
    }
  }
}

TEST(ServeEquivalence, TinyCacheStillCorrect) {
  // Capacity far below the candidate count: the LRU thrashes, answers must
  // not change (the transient request rows, not the cache, carry results).
  Workload w = MakeWorkload(2);
  EipResult batch = BatchIdentify(w.graph, w.sigma, 0.5, false);
  RuleServerOptions opt;
  opt.cache_capacity = 8;  // (rule, center) pairs — a handful of centers
  auto server = RuleServer::Create(w.graph, w.records, opt);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;
  for (int round = 0; round < 2; ++round) {
    auto got = s.IdentifyAll(0.5);
    ASSERT_TRUE(got.ok());
    ExpectSameAnswer(*got, batch, "tiny cache round " + std::to_string(round));
  }
  EXPECT_LE(s.cached_centers(), 8u);

  ServeRequest req;
  req.centers = SampleCenters(s, 9, 5);
  auto reply = s.Serve(req);
  ASSERT_TRUE(reply.ok());
  for (size_t i = 0; i < req.centers.size(); ++i) {
    EXPECT_EQ(reply->matched[i],
              OracleMatched(w.graph, w.sigma, req.centers[i], false));
  }
}

TEST(ServeEquivalence, SnapshotLoadRoundTrip) {
  // mine -> write snapshot pair -> Load: same answers as in-memory Create.
  Workload w = MakeWorkload(4);
  std::string dir = ::testing::TempDir();
  std::string gpath = dir + "/serve_test_graph.snap";
  std::string rpath = dir + "/serve_test_rules.snap";
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());

  auto loaded = RuleServer::Load(gpath, rpath);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto in_memory = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(in_memory.ok());

  auto a = (*loaded)->IdentifyAll(0.7);
  auto b = (*in_memory)->IdentifyAll(0.7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameAnswer(*a, *b, "loaded vs in-memory");
  EXPECT_EQ((*loaded)->rules().size(), w.records.size());
}

TEST(ServeEquivalence, DeltaEquivalentToFreshServer) {
  Workload w = MakeWorkload(5);
  std::vector<EdgeInsert> delta = MakeDelta(w.graph, 123, 10);
  auto patchref = PatchGraphWithInserts(w.graph, delta);
  ASSERT_TRUE(patchref.ok());

  auto live = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->IdentifyAll(0.5).ok());  // warm up pre-delta
  auto ds = (*live)->ApplyDelta(delta);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->edges_inserted, patchref->edges_inserted);

  auto fresh = RuleServer::Create(patchref->graph, w.records);
  ASSERT_TRUE(fresh.ok());

  auto a = (*live)->IdentifyAll(0.5);
  auto b = (*fresh)->IdentifyAll(0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameAnswer(*a, *b, "delta-maintained vs fresh");
}

/// The insert+delete acceptance battery: a randomized interleaved mutation
/// stream, checked against fresh batch mining at cold, warm, mid-stream,
/// and final checkpoints, and against a from-scratch server on the final
/// edge list.
TEST(DeltaStreamEquivalence, InterleavedStreamMatchesBatchAndFresh) {
  constexpr int kBatches = 4;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);

    // The reference trajectory: the graph after each batch, rebuilt by
    // PatchGraph outside any server.
    std::vector<GraphDelta> stream;
    std::vector<Graph> after;
    after.reserve(kBatches);
    for (int b = 0; b < kBatches; ++b) {
      const Graph& cur = (b == 0) ? w.graph : after.back();
      GraphDelta d = MakeMutationDelta(cur, seed * 613 + b, 5);
      d.sequence = static_cast<uint64_t>(b) + 1;
      auto p = PatchGraph(cur, d);
      ASSERT_TRUE(p.ok()) << p.status();
      after.push_back(std::move(p->graph));
      stream.push_back(std::move(d));
    }
    const Graph& mid_graph = after[kBatches / 2 - 1];
    const Graph& final_graph = after.back();

    EipResult batch_cold = BatchIdentify(w.graph, w.sigma, 0.5, false);
    EipResult batch_mid = BatchIdentify(mid_graph, w.sigma, 0.5, false);
    EipResult batch_final = BatchIdentify(final_graph, w.sigma, 0.5, false);

    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("n=" + std::to_string(n));
      RuleServerOptions opt;
      opt.num_workers = n;
      auto server = RuleServer::Create(w.graph, w.records, opt);
      ASSERT_TRUE(server.ok()) << server.status();
      RuleServer& s = **server;

      // Cold, then warm (all from cache).
      auto cold = s.IdentifyAll(0.5);
      ASSERT_TRUE(cold.ok()) << cold.status();
      ExpectSameAnswer(*cold, batch_cold, "cold");
      ServeStats warm_stats;
      auto warm = s.IdentifyAll(0.5, false, &warm_stats);
      ASSERT_TRUE(warm.ok());
      ExpectSameAnswer(*warm, batch_cold, "warm");
      EXPECT_EQ(warm_stats.cache_probes, 0u);

      // Mid-stream checkpoint.
      for (int b = 0; b < kBatches / 2; ++b) {
        auto ds = s.ApplyDelta(stream[b]);
        ASSERT_TRUE(ds.ok()) << ds.status();
      }
      auto mid = s.IdentifyAll(0.5);
      ASSERT_TRUE(mid.ok());
      ExpectSameAnswer(*mid, batch_mid, "mid-stream");

      // Final checkpoint, against batch AND a fresh server on the final
      // edge list.
      for (int b = kBatches / 2; b < kBatches; ++b) {
        auto ds = s.ApplyDelta(stream[b]);
        ASSERT_TRUE(ds.ok()) << ds.status();
      }
      EXPECT_EQ(GraphBytes(s.graph()), GraphBytes(final_graph));
      auto fin = s.IdentifyAll(0.5);
      ASSERT_TRUE(fin.ok());
      ExpectSameAnswer(*fin, batch_final, "final vs batch");

      auto fresh = RuleServer::Create(final_graph, w.records, opt);
      ASSERT_TRUE(fresh.ok());
      auto fresh_ans = (*fresh)->IdentifyAll(0.5);
      ASSERT_TRUE(fresh_ans.ok());
      ExpectSameAnswer(*fin, *fresh_ans, "final vs fresh server");

      // Point queries against the fresh-match oracle on the final graph.
      ServeRequest req;
      req.centers = SampleCenters(s, seed * 7 + n, 5);
      auto reply = s.Serve(req);
      ASSERT_TRUE(reply.ok()) << reply.status();
      for (size_t i = 0; i < req.centers.size(); ++i) {
        EXPECT_EQ(reply->matched[i],
                  OracleMatched(final_graph, w.sigma, req.centers[i], false))
            << "center " << req.centers[i];
      }
    }
  }
}

/// Deleting every q-edge out of every candidate drives supp(q) to zero —
/// the non-monotone direction a pure-insert pipeline never exercises.
TEST(DeltaStreamEquivalence, DeletesCollapseSupportBelowSigma) {
  Workload w = MakeWorkload(1);
  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;
  auto before = s.IdentifyAll(0.5);
  ASSERT_TRUE(before.ok());
  EXPECT_GT(before->supp_q, 0u);

  const Predicate& q = s.predicate();
  GraphDelta wipe;
  wipe.sequence = 1;
  for (NodeId c : s.candidates()) {
    for (const AdjEntry& e : w.graph.out_edges(c)) {
      if (e.label == q.edge_label &&
          w.graph.node_label(e.other) == q.y_label) {
        wipe.deletes.push_back({c, e.label, e.other});
      }
    }
  }
  ASSERT_FALSE(wipe.deletes.empty());
  auto ds = s.ApplyDelta(wipe);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->edges_deleted, wipe.deletes.size());
  EXPECT_EQ(ds->deletes_missing, 0u);

  auto p = PatchGraph(w.graph, wipe);
  ASSERT_TRUE(p.ok());
  auto shrunk = s.IdentifyAll(0.5);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(shrunk->supp_q, 0u);
  ExpectSameAnswer(*shrunk, BatchIdentify(p->graph, w.sigma, 0.5, false),
                   "support wiped vs batch");
  auto fresh = RuleServer::Create(p->graph, w.records);
  ASSERT_TRUE(fresh.ok());
  auto f = (*fresh)->IdentifyAll(0.5);
  ASSERT_TRUE(f.ok());
  ExpectSameAnswer(*shrunk, *f, "support wiped vs fresh server");
}

/// Drop a handful of real edges, then reinsert them in a later batch: the
/// maintained graph must come back byte-identical and every answer with
/// it. The sampled batch may delete the same edge twice — tolerated.
TEST(DeltaStreamEquivalence, DeleteThenReinsertRestoresAnswers) {
  Workload w = MakeWorkload(2);
  EipResult batch = BatchIdentify(w.graph, w.sigma, 0.5, false);
  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;
  ASSERT_TRUE(s.IdentifyAll(0.5).ok());  // warm up pre-delete

  std::mt19937_64 rng(99);
  GraphDelta drop;
  drop.sequence = 1;
  for (int i = 0; i < 8; ++i) {
    NodeId v = PickSourceNode(w.graph, rng);
    const auto edges = w.graph.out_edges(v);
    const AdjEntry& e = edges[rng() % edges.size()];
    drop.deletes.push_back({v, e.label, e.other});
  }
  auto ds1 = s.ApplyDelta(drop);
  ASSERT_TRUE(ds1.ok()) << ds1.status();
  auto p = PatchGraph(w.graph, drop);
  ASSERT_TRUE(p.ok());
  auto shrunk = s.IdentifyAll(0.5);
  ASSERT_TRUE(shrunk.ok());
  ExpectSameAnswer(*shrunk, BatchIdentify(p->graph, w.sigma, 0.5, false),
                   "after drop");

  GraphDelta put;
  put.sequence = 2;
  for (const EdgeDelete& e : drop.deletes) {
    put.inserts.push_back({e.src, e.label, e.dst});
  }
  auto ds2 = s.ApplyDelta(put);
  ASSERT_TRUE(ds2.ok()) << ds2.status();
  EXPECT_EQ(GraphBytes(s.graph()), GraphBytes(w.graph));
  auto back = s.IdentifyAll(0.5);
  ASSERT_TRUE(back.ok());
  ExpectSameAnswer(*back, batch, "after reinsert");
}

TEST(RuleServerTest, DuplicateDeltaIsNoOp) {
  Workload w = MakeWorkload(3);
  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;
  ASSERT_TRUE(s.IdentifyAll(0.5).ok());

  // Re-insert an existing edge: nothing invalidated, cache stays warm.
  NodeId v = 0;
  while (s.graph().out_edges(v).empty()) ++v;
  AdjEntry e = s.graph().out_edges(v)[0];
  auto ds = s.ApplyDelta(std::vector<EdgeInsert>{{v, e.label, e.other}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->edges_inserted, 0u);
  EXPECT_EQ(ds->duplicates_ignored, 1u);
  EXPECT_EQ(ds->memberships_invalidated, 0u);

  ServeStats stats;
  ASSERT_TRUE(s.IdentifyAll(0.5, false, &stats).ok());
  EXPECT_EQ(stats.cache_probes, 0u);
}

TEST(RuleServerTest, InputValidation) {
  Workload w = MakeWorkload(1);

  // Empty rule set.
  EXPECT_FALSE(RuleServer::Create(w.graph, {}).ok());

  // Mixed predicates.
  PaperG1 g1 = MakePaperG1();
  PaperG2 g2 = MakePaperG2();
  std::vector<RuleRecord> mixed{{g1.r1, 0, 0}, {g2.r4, 0, 0}};
  EXPECT_FALSE(RuleServer::Create(g1.graph, mixed).ok());

  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;

  // Center out of range.
  ServeRequest bad_center;
  bad_center.centers = {s.graph().num_nodes() + 7};
  EXPECT_FALSE(s.Serve(bad_center).ok());

  // Rule index out of range.
  ServeRequest bad_rule;
  bad_rule.centers = {0};
  bad_rule.rules = {static_cast<uint32_t>(w.sigma.size())};
  EXPECT_FALSE(s.Serve(bad_rule).ok());

  // Non-positive eta.
  EXPECT_FALSE(s.IdentifyAll(0).ok());

  // Delta referencing unknown node.
  LabelId l = s.graph().node_label(0);
  EXPECT_FALSE(
      s.ApplyDelta(std::vector<EdgeInsert>{{s.graph().num_nodes(), l, 0}})
          .ok());
}

TEST(RuleServerTest, RuleSubsetRequestsProbeOnlySelected) {
  Workload w = MakeWorkload(0);
  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;

  ServeRequest req;
  req.centers = SampleCenters(s, 17, 4);
  req.rules = {0};
  auto reply = s.Serve(req);
  ASSERT_TRUE(reply.ok());
  for (size_t i = 0; i < req.centers.size(); ++i) {
    auto oracle = OracleMatched(w.graph, w.sigma, req.centers[i], false);
    std::vector<uint32_t> want;
    if (std::find(oracle.begin(), oracle.end(), 0u) != oracle.end()) {
      want.push_back(0);
    }
    EXPECT_EQ(reply->matched[i], want);
  }
  // Only rule 0 was probed at each fresh center.
  EXPECT_LE(reply->stats.cache_probes, req.centers.size());

  // The same centers for all rules: rule 0 comes from cache.
  ServeRequest all;
  all.centers = req.centers;
  auto reply2 = s.Serve(all);
  ASSERT_TRUE(reply2.ok());
  EXPECT_GT(reply2->stats.cache_hits, 0u);
  for (size_t i = 0; i < all.centers.size(); ++i) {
    EXPECT_EQ(reply2->matched[i],
              OracleMatched(w.graph, w.sigma, all.centers[i], false));
  }
}

TEST(RuleServerTest, RequireConsequentSemantics) {
  Workload w = MakeWorkload(2);
  auto server = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok());
  RuleServer& s = **server;
  ServeRequest req;
  req.centers = SampleCenters(s, 3, 6);
  req.require_consequent = true;
  auto reply = s.Serve(req);
  ASSERT_TRUE(reply.ok());
  for (size_t i = 0; i < req.centers.size(); ++i) {
    EXPECT_EQ(reply->matched[i],
              OracleMatched(w.graph, w.sigma, req.centers[i], true));
  }
}

}  // namespace
}  // namespace gpar
