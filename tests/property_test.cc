// Property-based suites: each TEST_P sweeps randomized instances (seeded,
// deterministic) and checks an invariant the paper's formal development
// relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/generator.h"
#include "graph/graph_io.h"
#include "graph/neighborhood.h"
#include "graph/partition.h"
#include "graph/stats.h"
#include "match/guided.h"
#include "match/matcher.h"
#include "match/simulation.h"
#include "mine/dmine.h"
#include "pattern/automorphism.h"
#include "pattern/bisimulation.h"
#include "pattern/pattern_generator.h"
#include "pattern/pattern_ops.h"
#include "test_util.h"
#include "rule/diversity.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

/// Shared randomized scenario: a synthetic graph plus a workload of GPARs
/// lifted from it.
struct Scenario {
  Graph graph;
  Predicate q;
  std::vector<Gpar> rules;
};

Scenario MakeScenario(uint64_t seed) {
  Scenario s;
  s.graph = MakeSynthetic(600, 1800, 25, seed);
  auto freq = FrequentEdgePatterns(s.graph, 1);
  s.q = {freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions opt;
  opt.num_nodes = 4;
  opt.num_edges = 4;
  opt.max_radius = 2;
  opt.seed = seed * 31 + 7;
  s.rules = GenerateGparWorkload(s.graph, s.q, 5, opt);
  return s;
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(SeededProperty, SupportAntiMonotonicUnderExtension) {
  // Section 3: supp(Q', G) >= supp(Q, G) whenever Q' ⊑ Q. Extensions add
  // one edge, so every extension's support is bounded by its parent's.
  Scenario s = MakeScenario(GetParam());
  VF2Matcher m(s.graph);
  auto seeds = FrequentEdgePatterns(s.graph, 6);
  for (const Gpar& r : s.rules) {
    uint64_t parent_supp = 0;
    for (NodeId v : s.graph.nodes_with_label(s.q.x_label)) {
      if (m.ExistsAt(r.pr(), v)) ++parent_supp;
    }
    auto extensions =
        GenerateExtensions(r.antecedent(), s.q.edge_label, 2, 6, seeds);
    // Probe a few extensions (they are numerous).
    size_t probed = 0;
    for (const Gpar& ext : extensions) {
      if (++probed > 4) break;
      uint64_t ext_supp = 0;
      for (NodeId v : s.graph.nodes_with_label(s.q.x_label)) {
        if (m.ExistsAt(ext.pr(), v)) ++ext_supp;
      }
      EXPECT_LE(ext_supp, parent_supp)
          << "anti-monotonicity violated at seed " << GetParam();
    }
  }
}

TEST_P(SeededProperty, ParentPruneEquivalence) {
  // Parent-match pruning (anti-monotone worker-loop restriction) is an
  // optimization, not an approximation: pruned and unpruned DMine must
  // produce identical accepted pools, top-k rules, supports, confidences,
  // and objective on every instance.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.num_workers = 3;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  auto pruned = Dmine(s.graph, s.q, opt);
  opt.enable_parent_prune = false;
  auto unpruned = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  ASSERT_TRUE(unpruned.ok()) << unpruned.status();

  EXPECT_EQ(pruned->stats.accepted, unpruned->stats.accepted)
      << "pool diverged at seed " << GetParam();
  EXPECT_EQ(pruned->stats.trivial_discarded,
            unpruned->stats.trivial_discarded);
  EXPECT_NEAR(pruned->objective, unpruned->objective, 1e-12);
  ASSERT_EQ(pruned->topk.size(), unpruned->topk.size());
  for (size_t i = 0; i < pruned->topk.size(); ++i) {
    const auto& a = pruned->topk[i];
    const auto& b = unpruned->topk[i];
    EXPECT_EQ(IsomorphismBucketKey(a->rule.pr()),
              IsomorphismBucketKey(b->rule.pr()))
        << "top-k rule " << i << " diverged at seed " << GetParam();
    EXPECT_EQ(a->supp, b->supp);
    EXPECT_EQ(a->supp_qqbar, b->supp_qqbar);
    EXPECT_DOUBLE_EQ(a->conf, b->conf);
    EXPECT_EQ(a->matches, b->matches);
  }
  // The pruned run never probes more than the unpruned one.
  EXPECT_LE(pruned->stats.exists_calls, unpruned->stats.exists_calls);
}

TEST_P(SeededProperty, IncrementalDivEquivalence) {
  // Incremental diversification (incDiv, Section 4.2) maintains the
  // diversified top-k round-over-round as a 2-approximation, so its
  // SELECTION may legitimately differ from recomputing greedily from
  // scratch every round (the DMineno ablation's diversification half).
  // What the ablation flag must never change is the mining itself: with
  // reductions disabled on both sides (they are only wired through the
  // incremental path), the candidate pool, supports, and probe counts are
  // bit-identical, both top-ks draw only sigma-qualified nontrivial rules,
  // the objectives stay within the paper's approximation factor of each
  // other, and the incremental path is deterministic run-over-run.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.num_workers = 3;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;
  opt.enable_reduction_rules = false;

  opt.enable_incremental_div = true;
  auto incremental = Dmine(s.graph, s.q, opt);
  opt.enable_incremental_div = false;
  auto scratch = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(incremental.ok()) << incremental.status();
  ASSERT_TRUE(scratch.ok()) << scratch.status();

  // Diversification never feeds back into candidate generation, so the
  // mined pool is identical either way.
  EXPECT_EQ(incremental->stats.accepted, scratch->stats.accepted)
      << "pool diverged at seed " << GetParam();
  EXPECT_EQ(incremental->stats.trivial_discarded,
            scratch->stats.trivial_discarded);
  EXPECT_EQ(incremental->stats.candidates_verified,
            scratch->stats.candidates_verified);
  EXPECT_EQ(incremental->stats.exists_calls, scratch->stats.exists_calls);

  // Same k drawn from the same pool, every entry sigma-qualified and
  // nontrivial, and the two objectives within the 2-approximation band.
  ASSERT_EQ(incremental->topk.size(), scratch->topk.size());
  for (const auto& r : incremental->topk) {
    EXPECT_GE(r->supp, opt.sigma);
    EXPECT_GT(r->supp_qqbar, 0u);
  }
  EXPECT_GT(incremental->objective, 0.0);
  EXPECT_LE(scratch->objective, 2 * incremental->objective + 1e-9)
      << "incDiv lost more than the paper's approximation factor at seed "
      << GetParam();
  EXPECT_LE(incremental->objective, 2 * scratch->objective + 1e-9);

  // The maintained top-k is deterministic across repeat runs.
  opt.enable_incremental_div = true;
  auto repeat = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  EXPECT_NEAR(incremental->objective, repeat->objective, 1e-12);
  ASSERT_EQ(incremental->topk.size(), repeat->topk.size());
  for (size_t i = 0; i < incremental->topk.size(); ++i) {
    EXPECT_EQ(IsomorphismBucketKey(incremental->topk[i]->rule.pr()),
              IsomorphismBucketKey(repeat->topk[i]->rule.pr()))
        << "incremental top-k not deterministic at seed " << GetParam();
    EXPECT_EQ(incremental->topk[i]->matches, repeat->topk[i]->matches);
  }
}

TEST_P(SeededProperty, MatcherScratchReuseMatchesFreshMatcher) {
  // The matcher reuses scratch state (injectivity bitmap, candidate
  // buffers, plan cache) across searches; a long-lived matcher must answer
  // exactly like a throwaway matcher constructed per probe.
  Scenario s = MakeScenario(GetParam());
  VF2Matcher reused(s.graph);
  GuidedMatcher reused_guided(s.graph, 2);
  auto centers = s.graph.nodes_with_label(s.q.x_label);
  for (const Gpar& r : s.rules) {
    size_t probes = 0;
    for (NodeId v : centers) {
      if (++probes > 25) break;
      VF2Matcher fresh(s.graph);
      EXPECT_EQ(reused.ExistsAt(r.pr(), v), fresh.ExistsAt(r.pr(), v))
          << "P_R divergence at seed " << GetParam() << " node " << v;
      EXPECT_EQ(reused.ExistsAt(r.antecedent(), v),
                fresh.ExistsAt(r.antecedent(), v))
          << "antecedent divergence at seed " << GetParam() << " node " << v;
      EXPECT_EQ(reused_guided.ExistsAt(r.pr(), v), fresh.ExistsAt(r.pr(), v));
    }
  }
  // The reused matcher planned each distinct (pattern, anchor) once.
  EXPECT_GT(reused.plans_cached(), 0u);
  EXPECT_LE(reused.plans_cached(), 2 * s.rules.size());
}

TEST_P(SeededProperty, GuidedMatcherAgreesWithVF2) {
  Scenario s = MakeScenario(GetParam());
  VF2Matcher vf2(s.graph);
  GuidedMatcher guided(s.graph, 2);
  for (const Gpar& r : s.rules) {
    auto a = vf2.Images(r.pr(), r.pr().x());
    auto b = guided.Images(r.pr(), r.pr().x());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "guided/vf2 divergence at seed " << GetParam();
  }
}

TEST_P(SeededProperty, MatchingIsLocalWithinEvalRadius) {
  // Data locality (Section 4.2): v ∈ P_R(x, G) iff v ∈ P_R(x, G_d(v)) for
  // d = eval_radius — the foundation of both parallel algorithms.
  Scenario s = MakeScenario(GetParam());
  VF2Matcher global(s.graph);
  auto centers = s.graph.nodes_with_label(s.q.x_label);
  size_t probes = 0;
  for (const Gpar& r : s.rules) {
    for (NodeId v : centers) {
      if (++probes > 60) break;
      DNeighborhood dn = ExtractDNeighborhood(s.graph, v, r.eval_radius());
      VF2Matcher local(dn.sub.graph);
      EXPECT_EQ(global.ExistsAt(r.pr(), v),
                local.ExistsAt(r.pr(), dn.center_local))
          << "locality violated at seed " << GetParam() << " node " << v;
    }
  }
}

TEST_P(SeededProperty, SimulationContainsIsomorphismImages) {
  Scenario s = MakeScenario(GetParam());
  VF2Matcher m(s.graph);
  for (const Gpar& r : s.rules) {
    auto iso = m.Images(r.pr(), r.pr().x());
    auto sim = SimulationImages(r.pr(), s.graph, r.pr().x());
    for (NodeId v : iso) {
      EXPECT_TRUE(std::binary_search(sim.begin(), sim.end(), v));
    }
  }
}

TEST_P(SeededProperty, IsomorphicPatternsAreBisimilarAndShareBuckets) {
  // Lemma 4 direction, on randomized patterns: build an isomorphic copy by
  // reversing node declaration order; both tests must accept it.
  Scenario s = MakeScenario(GetParam());
  for (const Gpar& r : s.rules) {
    const Pattern& p = r.pr();
    Pattern copy = test::ReversedIsomorphicCopy(p);

    EXPECT_TRUE(AreIsomorphic(p, copy, /*preserve_designated=*/true));
    EXPECT_TRUE(AreBisimilarDesignated(p, copy));
    EXPECT_EQ(IsomorphismBucketKey(p), IsomorphismBucketKey(copy));
    EXPECT_EQ(IsomorphismBucketHash(p), IsomorphismBucketHash(copy));
  }
}

TEST_P(SeededProperty, PartitionInvariants) {
  Scenario s = MakeScenario(GetParam());
  std::vector<NodeId> centers;
  {
    auto span = s.graph.nodes_with_label(s.q.x_label);
    centers.assign(span.begin(), span.end());
  }
  for (uint32_t n : {2u, 5u}) {
    PartitionOptions opt;
    opt.num_fragments = n;
    opt.d = 2;
    auto parts = PartitionGraph(s.graph, centers, opt);
    ASSERT_TRUE(parts.ok());
    size_t owned = 0;
    for (const Fragment& f : parts->fragments) owned += f.centers.size();
    EXPECT_EQ(owned, centers.size());
    // Locality spot-check on the view membership.
    for (const Fragment& f : parts->fragments) {
      for (NodeId global : f.centers) {
        for (NodeId w : NodesWithinRadius(s.graph, global, opt.d)) {
          EXPECT_TRUE(f.ContainsGlobal(w));
        }
        break;  // one center per fragment suffices
      }
    }
  }
}

TEST_P(SeededProperty, GraphIoRoundTrip) {
  Graph g = MakeSynthetic(200, 600, 15, GetParam());
  std::ostringstream os;
  ASSERT_TRUE(WriteGraphText(g, os).ok());
  std::istringstream is(os.str());
  auto r = ReadGraphText(is);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_nodes(), g.num_nodes());
  EXPECT_EQ(r->num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(r->labels().Name(r->node_label(v)),
              g.labels().Name(g.node_label(v)));
    EXPECT_EQ(r->out_degree(v), g.out_degree(v));
  }
}

TEST_P(SeededProperty, JaccardIsAMetricOnMatchSets) {
  Scenario s = MakeScenario(GetParam());
  VF2Matcher m(s.graph);
  std::vector<std::vector<NodeId>> sets;
  for (const Gpar& r : s.rules) {
    auto images = m.Images(r.pr(), r.pr().x());
    std::sort(images.begin(), images.end());
    sets.push_back(std::move(images));
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_DOUBLE_EQ(JaccardDistance(sets[i], sets[i]), 0.0);
    for (size_t j = 0; j < sets.size(); ++j) {
      double dij = JaccardDistance(sets[i], sets[j]);
      EXPECT_GE(dij, 0.0);
      EXPECT_LE(dij, 1.0);
      EXPECT_DOUBLE_EQ(dij, JaccardDistance(sets[j], sets[i]));
      // Triangle inequality (Jaccard distance is a true metric).
      for (size_t k = 0; k < sets.size(); ++k) {
        EXPECT_LE(dij, JaccardDistance(sets[i], sets[k]) +
                           JaccardDistance(sets[k], sets[j]) + 1e-12);
      }
    }
  }
}

/// Full-result fingerprint: every stat a result-identity claim covers, plus
/// the top-k *in order* with per-rule structure (StructuralHash), supports,
/// confidence, and match sets. Two runs with equal fingerprints are
/// indistinguishable to a caller.
std::string ResultFingerprint(const DmineResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << "gen=" << r.stats.candidates_generated
     << ";ver=" << r.stats.candidates_verified
     << ";acc=" << r.stats.accepted
     << ";auto=" << r.stats.automorphic_merged
     << ";triv=" << r.stats.trivial_discarded
     << ";obj=" << r.objective << ";topk=[";
  for (const auto& rule : r.topk) {
    os << "{h=" << StructuralHash(rule->rule.pr()) << ";s=" << rule->supp
       << ";n=" << rule->supp_qqbar << ";c=" << rule->conf << ";m=";
    for (NodeId v : rule->matches) os << v << ',';
    os << '}';
  }
  os << ']';
  return os.str();
}

TEST_P(SeededProperty, WorkerGenEquivalence) {
  // Decentralized candidate generation is a relocation of work, not an
  // approximation: across worker counts, the worker-proposed path and the
  // centralized path must produce identical candidate pools (by structural
  // hash), supports, confidences, and diversified top-k — the mirror of
  // ParentPruneEquivalence for PR 2's lineage pruning.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    opt.num_workers = n;
    opt.enable_worker_gen = true;
    auto decentralized = Dmine(s.graph, s.q, opt);
    opt.enable_worker_gen = false;
    auto centralized = Dmine(s.graph, s.q, opt);
    ASSERT_TRUE(decentralized.ok()) << decentralized.status();
    ASSERT_TRUE(centralized.ok()) << centralized.status();

    EXPECT_EQ(ResultFingerprint(*decentralized),
              ResultFingerprint(*centralized))
        << "worker-gen result diverged at seed " << GetParam() << " n=" << n;
    // The evaluation half is untouched by where generation runs: the two
    // paths issue the exact same worker probes.
    EXPECT_EQ(decentralized->stats.exists_calls,
              centralized->stats.exists_calls);
    EXPECT_EQ(decentralized->stats.centers_skipped_by_parent,
              centralized->stats.centers_skipped_by_parent);
    // Proposal bookkeeping balances: raw = unique + merged duplicates.
    uint64_t raw = 0;
    for (uint64_t p : decentralized->stats.proposals_per_worker) raw += p;
    EXPECT_EQ(raw, decentralized->stats.candidates_generated +
                       decentralized->stats.cross_fragment_merged);
  }
}

TEST_P(SeededProperty, WorkerGenEquivalenceComposesWithParentPruneOff) {
  // The two ablation axes are independent: without parent lineage the
  // ownership predicate degrades from "fragments where the parent
  // survives" to "fragments with a non-empty q-pool" (still one
  // deterministic owner per parent) — results still match the centralized
  // no-prune run.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.num_workers = 4;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;
  opt.enable_parent_prune = false;

  opt.enable_worker_gen = true;
  auto decentralized = Dmine(s.graph, s.q, opt);
  opt.enable_worker_gen = false;
  auto centralized = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(decentralized.ok());
  ASSERT_TRUE(centralized.ok());
  EXPECT_EQ(ResultFingerprint(*decentralized), ResultFingerprint(*centralized))
      << "no-prune worker-gen diverged at seed " << GetParam();
}

TEST_P(SeededProperty, ViewCopyEquivalence) {
  // Zero-copy fragment views are a representation change, not a semantic
  // one: view-backed and copy-backed DMine must produce byte-identical
  // results — candidate pools, supports, confidences, match sets, and the
  // diversified top-k — at every worker count, and the evaluation halves
  // must issue the exact same probes.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    opt.num_workers = n;
    opt.use_fragment_copies = false;
    auto viewed = Dmine(s.graph, s.q, opt);
    opt.use_fragment_copies = true;
    auto copied = Dmine(s.graph, s.q, opt);
    ASSERT_TRUE(viewed.ok()) << viewed.status();
    ASSERT_TRUE(copied.ok()) << copied.status();

    EXPECT_EQ(ResultFingerprint(*viewed), ResultFingerprint(*copied))
        << "view/copy result diverged at seed " << GetParam() << " n=" << n;
    EXPECT_EQ(viewed->stats.exists_calls, copied->stats.exists_calls);
    EXPECT_EQ(viewed->stats.centers_skipped_by_parent,
              copied->stats.centers_skipped_by_parent);
  }
}

TEST_P(SeededProperty, SharedPlanStoreEquivalence) {
  // The shared plan store relocates planning work, never results: store-on
  // and store-off runs must be fingerprint-identical, and on a multi-worker
  // run the store must actually serve worker probes.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.num_workers = 4;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  opt.enable_shared_plans = true;
  auto shared = Dmine(s.graph, s.q, opt);
  opt.enable_shared_plans = false;
  auto private_plans = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(shared.ok()) << shared.status();
  ASSERT_TRUE(private_plans.ok()) << private_plans.status();

  EXPECT_EQ(ResultFingerprint(*shared), ResultFingerprint(*private_plans))
      << "plan-store result diverged at seed " << GetParam();
  EXPECT_GT(shared->stats.plans_shared_hits, 0u);
  EXPECT_GT(shared->stats.plans_prepared, 0u);
  EXPECT_EQ(private_plans->stats.plans_shared_hits, 0u);
  EXPECT_EQ(private_plans->stats.plans_prepared, 0u);
}

TEST_P(SeededProperty, PruneAwareUsuppEquivalence) {
  // The flagged Lemma-3 tightening (Usupp counts only matched centers with
  // hops available) must never change the reduced output: identical top-k,
  // supports, confidences, and objective with the flag on and off.
  Scenario s = MakeScenario(GetParam());
  DmineOptions opt;
  opt.num_workers = 3;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  opt.enable_prune_aware_usupp = false;
  auto loose = Dmine(s.graph, s.q, opt);
  opt.enable_prune_aware_usupp = true;
  auto tight = Dmine(s.graph, s.q, opt);
  ASSERT_TRUE(loose.ok()) << loose.status();
  ASSERT_TRUE(tight.ok()) << tight.status();

  EXPECT_NEAR(loose->objective, tight->objective, 1e-12);
  ASSERT_EQ(loose->topk.size(), tight->topk.size());
  for (size_t i = 0; i < loose->topk.size(); ++i) {
    const auto& a = loose->topk[i];
    const auto& b = tight->topk[i];
    EXPECT_EQ(StructuralHash(a->rule.pr()), StructuralHash(b->rule.pr()))
        << "top-k rule " << i << " diverged at seed " << GetParam();
    EXPECT_EQ(a->supp, b->supp);
    EXPECT_EQ(a->supp_qqbar, b->supp_qqbar);
    EXPECT_DOUBLE_EQ(a->conf, b->conf);
    EXPECT_EQ(a->matches, b->matches);
    // The tightened per-rule bound never exceeds the loose one.
    EXPECT_LE(b->usupp, a->usupp);
  }
}

class WorkerCountProperty : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Workers, WorkerCountProperty,
                         ::testing::Values(1, 2, 3, 5));

TEST_P(WorkerCountProperty, DmineAcceptedPoolInvariant) {
  // The number of accepted rules (and objective) must not depend on n:
  // compare every n against the single-worker run.
  Graph g = MakeSynthetic(400, 1200, 20, 9);
  auto freq = FrequentEdgePatterns(g, 1);
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;
  opt.enable_reduction_rules = false;

  opt.num_workers = 1;
  auto reference = Dmine(g, q, opt);
  ASSERT_TRUE(reference.ok());

  opt.num_workers = GetParam();
  auto result = Dmine(g, q, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.accepted, reference->stats.accepted);
  EXPECT_NEAR(result->objective, reference->objective, 1e-9);
}

TEST(WorkerGenDeterminism, ResultsInvariantToWorkersSchedulingAndPath) {
  // Full determinism, top-k order included: DMine's result must not depend
  // on the worker count, on thread scheduling (repeat runs race workers
  // differently), or on which side generates candidates. Run under ASan as
  // part of the sanitizer suite, the repeat-run check doubles as a data-race
  // stability probe on the proposal gather.
  Graph g = MakeSynthetic(600, 1800, 25, 11);
  auto freq = FrequentEdgePatterns(g, 1);
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = 2;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 6;

  std::string reference;
  for (bool worker_gen : {true, false}) {
    opt.enable_worker_gen = worker_gen;
    for (uint32_t n : {1u, 2u, 4u, 8u}) {
      opt.num_workers = n;
      auto result = Dmine(g, q, opt);
      ASSERT_TRUE(result.ok()) << result.status();
      std::string fp = ResultFingerprint(*result);
      if (reference.empty()) {
        reference = fp;
        EXPECT_FALSE(result->topk.empty());
      } else {
        EXPECT_EQ(fp, reference)
            << "divergence at n=" << n << " worker_gen=" << worker_gen;
      }
    }
    // Repeat-run stability at the widest fan-out: same fingerprint when the
    // same configuration races its workers a second and third time.
    opt.num_workers = 8;
    for (int rep = 0; rep < 2; ++rep) {
      auto result = Dmine(g, q, opt);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(ResultFingerprint(*result), reference)
          << "repeat-run divergence, worker_gen=" << worker_gen;
    }
  }
}

}  // namespace
}  // namespace gpar
