#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generator.h"
#include "graph/neighborhood.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"

namespace gpar {
namespace {

TEST(PartitionTest, RejectsZeroFragments) {
  Graph g = MakeSynthetic(100, 300, 10, 1);
  std::vector<NodeId> centers{0, 1, 2};
  PartitionOptions opt;
  opt.num_fragments = 0;
  EXPECT_FALSE(PartitionGraph(g, centers, opt).ok());
}

TEST(PartitionTest, CentersOwnedExactlyOnce) {
  Graph g = MakeSynthetic(500, 1500, 20, 7);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 100; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 4;
  opt.d = 2;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());

  // Every center owned by exactly one fragment; owner map consistent.
  std::multiset<NodeId> owned;
  for (const Fragment& f : parts->fragments) {
    for (NodeId local : f.centers) {
      owned.insert(f.sub.to_global[local]);
    }
  }
  EXPECT_EQ(owned.size(), centers.size());
  for (NodeId c : centers) EXPECT_EQ(owned.count(c), 1u);
  EXPECT_EQ(parts->owner_of_center.size(), centers.size());
}

TEST(PartitionTest, DLocalityInvariant) {
  // The defining invariant: G_d(v_x) of every owned center is contained in
  // its fragment (same nodes, same induced edges).
  Graph g = MakeSynthetic(300, 900, 15, 3);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 60; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 3;
  opt.d = 2;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());

  for (const Fragment& f : parts->fragments) {
    for (NodeId local : f.centers) {
      NodeId global = f.sub.to_global[local];
      // All of N_d(global) must be present in the fragment...
      for (NodeId w : NodesWithinRadius(g, global, opt.d)) {
        EXPECT_TRUE(f.sub.to_local.count(w) > 0)
            << "missing node " << w << " from N_d(" << global << ")";
      }
      // ...with all their mutual edges.
      for (NodeId w : NodesWithinRadius(g, global, opt.d)) {
        auto it = f.sub.to_local.find(w);
        if (it == f.sub.to_local.end()) continue;
        for (const AdjEntry& e : g.out_edges(w)) {
          auto jt = f.sub.to_local.find(e.other);
          if (jt == f.sub.to_local.end()) continue;
          EXPECT_TRUE(
              f.sub.graph.HasEdge(it->second, e.label, jt->second))
              << "missing induced edge";
        }
      }
    }
  }
}

TEST(PartitionTest, LocalMatchingEqualsGlobalMatching) {
  // Data locality of subgraph isomorphism (Section 4.2): v_x ∈ P_R(x, G)
  // iff v_x ∈ P_R(x, G_d(v_x)) — matching inside the fragment is exact.
  PaperG1 g1 = MakePaperG1();
  std::vector<NodeId> centers{g1.cust1, g1.cust2, g1.cust3,
                              g1.cust4, g1.cust5, g1.cust6};
  PartitionOptions opt;
  opt.num_fragments = 2;
  opt.d = 2;
  auto parts = PartitionGraph(g1.graph, centers, opt);
  ASSERT_TRUE(parts.ok());

  VF2Matcher global(g1.graph);
  for (const Fragment& f : parts->fragments) {
    VF2Matcher local(f.sub.graph);
    for (NodeId local_id : f.centers) {
      NodeId global_id = f.sub.to_global[local_id];
      for (const Gpar* r : {&g1.r1, &g1.r5, &g1.r6, &g1.r7, &g1.r8}) {
        EXPECT_EQ(local.ExistsAt(r->pr(), local_id),
                  global.ExistsAt(r->pr(), global_id))
            << "locality violated at center " << global_id;
      }
    }
  }
}

TEST(PartitionTest, FragmentsRoughlyEven) {
  Graph g = MakeSynthetic(2000, 6000, 30, 11);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 400; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 5;
  opt.d = 1;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());
  // The paper reports <= 14.4% skew on Pokec; greedy LPT should stay well
  // under 50% on uniform synthetic graphs.
  EXPECT_LT(FragmentSkew(*parts), 0.5);
}

TEST(PartitionTest, MoreFragmentsThanCenters) {
  Graph g = MakeSynthetic(50, 100, 5, 2);
  std::vector<NodeId> centers{0, 1};
  PartitionOptions opt;
  opt.num_fragments = 8;
  opt.d = 1;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->fragments.size(), 8u);
  size_t total_centers = 0;
  for (const Fragment& f : parts->fragments) total_centers += f.centers.size();
  EXPECT_EQ(total_centers, 2u);
}

}  // namespace
}  // namespace gpar
