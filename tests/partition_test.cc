#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/neighborhood.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"

namespace gpar {
namespace {

TEST(PartitionTest, RejectsZeroFragments) {
  Graph g = MakeSynthetic(100, 300, 10, 1);
  std::vector<NodeId> centers{0, 1, 2};
  PartitionOptions opt;
  opt.num_fragments = 0;
  EXPECT_FALSE(PartitionGraph(g, centers, opt).ok());
}

TEST(PartitionTest, CentersOwnedExactlyOnce) {
  Graph g = MakeSynthetic(500, 1500, 20, 7);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 100; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 4;
  opt.d = 2;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());

  // Every center owned by exactly one fragment; owner map consistent.
  std::multiset<NodeId> owned;
  for (const Fragment& f : parts->fragments) {
    for (NodeId c : f.centers) owned.insert(c);
  }
  EXPECT_EQ(owned.size(), centers.size());
  for (NodeId c : centers) EXPECT_EQ(owned.count(c), 1u);
  EXPECT_EQ(parts->owner_of_center.size(), centers.size());
}

TEST(PartitionTest, DLocalityInvariant) {
  // The defining invariant: G_d(v_x) of every owned center is contained in
  // its fragment (same nodes, same induced edges) — checked for both
  // representations. A view carries membership only (parent edges between
  // members are in the induced subgraph by definition), so its edge half
  // is the node set; the copied CSR must additionally have materialized
  // every member-member edge.
  Graph g = MakeSynthetic(300, 900, 15, 3);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 60; ++v) centers.push_back(v);
  for (bool use_copies : {false, true}) {
    PartitionOptions opt;
    opt.num_fragments = 3;
    opt.d = 2;
    opt.use_fragment_copies = use_copies;
    auto parts = PartitionGraph(g, centers, opt);
    ASSERT_TRUE(parts.ok());

    for (const Fragment& f : parts->fragments) {
      ASSERT_EQ(f.uses_copy(), use_copies);
      for (NodeId global : f.centers) {
        // All of N_d(global) must be present in the fragment...
        for (NodeId w : NodesWithinRadius(g, global, opt.d)) {
          EXPECT_TRUE(f.ContainsGlobal(w))
              << "missing node " << w << " from N_d(" << global << ")";
        }
        if (!use_copies) continue;
        // ...and the copy must carry all their mutual edges.
        for (NodeId w : NodesWithinRadius(g, global, opt.d)) {
          auto it = f.copy->to_local.find(w);
          if (it == f.copy->to_local.end()) continue;
          for (const AdjEntry& e : g.out_edges(w)) {
            auto jt = f.copy->to_local.find(e.other);
            if (jt == f.copy->to_local.end()) continue;
            EXPECT_TRUE(
                f.copy->graph.HasEdge(it->second, e.label, jt->second))
                << "missing induced edge";
          }
        }
      }
    }
  }
}

TEST(PartitionTest, CopiedFragmentsMatchViewMembership) {
  // The use_fragment_copies ablation changes the representation only: same
  // assignment, same member sets, same induced |V|+|E|, same centers.
  Graph g = MakeSynthetic(400, 1200, 20, 11);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 80; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 4;
  opt.d = 2;
  auto views = PartitionGraph(g, centers, opt);
  opt.use_fragment_copies = true;
  auto copies = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(views.ok());
  ASSERT_TRUE(copies.ok());

  EXPECT_EQ(views->owner_of_center, copies->owner_of_center);
  ASSERT_EQ(views->fragments.size(), copies->fragments.size());
  for (size_t i = 0; i < views->fragments.size(); ++i) {
    const Fragment& fv = views->fragments[i];
    const Fragment& fc = copies->fragments[i];
    ASSERT_FALSE(fv.uses_copy());
    ASSERT_TRUE(fc.uses_copy());
    EXPECT_EQ(fv.centers, fc.centers);
    EXPECT_EQ(fv.center_hops_available, fc.center_hops_available);
    // Same member set (the copy's to_global list is sorted by build order,
    // which matches the view's ascending member list).
    EXPECT_EQ(fv.view.nodes(), fc.copy->to_global);
    EXPECT_EQ(fv.SizeVE(), fc.SizeVE());
    EXPECT_EQ(fv.view.num_edges(), fc.copy->graph.num_edges());
    // The representation claim itself: views are much smaller.
    EXPECT_LT(fv.MemoryBytes(), fc.MemoryBytes());
  }
  EXPECT_DOUBLE_EQ(FragmentSkew(*views), FragmentSkew(*copies));
}

TEST(PartitionTest, LocalMatchingEqualsGlobalMatching) {
  // Data locality of subgraph isomorphism (Section 4.2): v_x ∈ P_R(x, G)
  // iff v_x ∈ P_R(x, G_d(v_x)) — matching inside the fragment is exact,
  // for view-backed and copy-backed fragments alike.
  PaperG1 g1 = MakePaperG1();
  std::vector<NodeId> centers{g1.cust1, g1.cust2, g1.cust3,
                              g1.cust4, g1.cust5, g1.cust6};
  for (bool use_copies : {false, true}) {
    PartitionOptions opt;
    opt.num_fragments = 2;
    opt.d = 2;
    opt.use_fragment_copies = use_copies;
    auto parts = PartitionGraph(g1.graph, centers, opt);
    ASSERT_TRUE(parts.ok());

    VF2Matcher global(g1.graph);
    for (const Fragment& f : parts->fragments) {
      VF2Matcher local = f.uses_copy() ? VF2Matcher(f.copy->graph)
                                       : VF2Matcher(f.view);
      for (NodeId global_id : f.centers) {
        for (const Gpar* r : {&g1.r1, &g1.r5, &g1.r6, &g1.r7, &g1.r8}) {
          EXPECT_EQ(local.ExistsAt(r->pr(), f.MatchId(global_id)),
                    global.ExistsAt(r->pr(), global_id))
              << "locality violated at center " << global_id
              << " use_copies=" << use_copies;
        }
      }
    }
  }
}

TEST(PartitionTest, FragmentsRoughlyEven) {
  Graph g = MakeSynthetic(2000, 6000, 30, 11);
  std::vector<NodeId> centers;
  for (NodeId v = 0; v < 400; ++v) centers.push_back(v);
  PartitionOptions opt;
  opt.num_fragments = 5;
  opt.d = 1;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());
  // The paper reports <= 14.4% skew on Pokec; greedy LPT should stay well
  // under 50% on uniform synthetic graphs.
  EXPECT_LT(FragmentSkew(*parts), 0.5);
}

TEST(PartitionTest, MoreFragmentsThanCenters) {
  Graph g = MakeSynthetic(50, 100, 5, 2);
  std::vector<NodeId> centers{0, 1};
  PartitionOptions opt;
  opt.num_fragments = 8;
  opt.d = 1;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->fragments.size(), 8u);
  size_t total_centers = 0;
  for (const Fragment& f : parts->fragments) total_centers += f.centers.size();
  EXPECT_EQ(total_centers, 2u);
}

TEST(PartitionTest, SaturatedNeighborhoodCenterIsNotExtendable) {
  // Regression for the center_hops_available fix: the old implementation
  // recorded the max observed BFS depth, so a center whose entire reachable
  // component fits inside N_d still reported hops "available". The real
  // signal is whether the hop-d frontier has incident edges leaving N_d.
  GraphBuilder b;
  // Component A: path a0 - a1 - a2 (length exactly d = 2). N_2(a0) is the
  // whole component; max BFS depth is 2, but nothing lies beyond it.
  NodeId a0 = b.AddNode("cust");
  NodeId a1 = b.AddNode("person");
  NodeId a2 = b.AddNode("person");
  ASSERT_TRUE(b.AddEdge(a0, "knows", a1).ok());
  ASSERT_TRUE(b.AddEdge(a1, "knows", a2).ok());
  // Component B: path b0 - b1 - b2 - b3 - b4; N_2(b0) = {b0, b1, b2} and
  // b2 (at hop 2) has an edge to b3 outside N_2 — extendable.
  NodeId b0 = b.AddNode("cust");
  NodeId b1 = b.AddNode("person");
  NodeId b2 = b.AddNode("person");
  NodeId b3 = b.AddNode("person");
  NodeId b4 = b.AddNode("person");
  ASSERT_TRUE(b.AddEdge(b0, "knows", b1).ok());
  ASSERT_TRUE(b.AddEdge(b1, "knows", b2).ok());
  ASSERT_TRUE(b.AddEdge(b2, "knows", b3).ok());
  ASSERT_TRUE(b.AddEdge(b3, "knows", b4).ok());
  // Component C: a single edge c0 -> c1; BFS from c0 saturates at depth 1,
  // well before d.
  NodeId c0 = b.AddNode("cust");
  NodeId c1 = b.AddNode("person");
  ASSERT_TRUE(b.AddEdge(c0, "knows", c1).ok());
  Graph g = std::move(b).Build();

  std::vector<NodeId> centers{a0, b0, c0};
  PartitionOptions opt;
  opt.num_fragments = 1;
  opt.d = 2;
  auto parts = PartitionGraph(g, centers, opt);
  ASSERT_TRUE(parts.ok());
  const Fragment& f = parts->fragments[0];
  ASSERT_EQ(f.centers.size(), 3u);
  for (size_t i = 0; i < f.centers.size(); ++i) {
    const uint32_t avail = f.center_hops_available[i];
    if (f.centers[i] == b0) {
      EXPECT_GT(avail, 0u) << "b0 can grow past hop d";
    } else {
      EXPECT_EQ(avail, 0u)
          << "saturated center " << f.centers[i] << " reported hops";
    }
  }
}

}  // namespace
}  // namespace gpar
