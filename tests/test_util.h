#ifndef GPAR_TESTS_TEST_UTIL_H_
#define GPAR_TESTS_TEST_UTIL_H_

#include <vector>

#include "pattern/pattern.h"

namespace gpar::test {

/// A designated-preserving isomorphic copy of `p`, built by reversing the
/// node declaration order: a structurally distinct object (different node
/// ids, hence a different StructuralHash in general) denoting the same
/// pattern. Exercises the automorphism/bisimulation merge paths.
inline Pattern ReversedIsomorphicCopy(const Pattern& p) {
  Pattern copy;
  std::vector<PNodeId> remap(p.num_nodes());
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    PNodeId orig = static_cast<PNodeId>(p.num_nodes() - 1 - u);
    remap[orig] = copy.AddNode(p.node(orig).label, p.node(orig).multiplicity);
  }
  for (const PatternEdge& e : p.edges()) {
    copy.AddEdge(remap[e.src], e.label, remap[e.dst]);
  }
  copy.set_x(remap[p.x()]);
  if (p.has_y()) copy.set_y(remap[p.y()]);
  return copy;
}

}  // namespace gpar::test

#endif  // GPAR_TESTS_TEST_UTIL_H_
