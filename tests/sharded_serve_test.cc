#include "serve/sharded_rule_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "graph/paper_graphs.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "pattern/pattern_generator.h"
#include "rule/rule_snapshot.h"
#include "serve/rule_server.h"
#include "serve/serve_session.h"

namespace gpar {
namespace {

struct Workload {
  Graph graph;
  std::vector<Gpar> sigma;
  std::vector<RuleRecord> records;
};

/// Same seeded workloads as the single-server ServeEquivalence battery.
Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.graph = (seed % 3 == 0) ? MakePokecLike(1, seed)
                            : MakeSynthetic(600, 1800, 20, seed);
  auto freq = FrequentEdgePatterns(w.graph);
  EXPECT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  gopt.seed = seed * 31 + 1;
  w.sigma = GenerateGparWorkload(w.graph, q, 5, gopt);
  EXPECT_GE(w.sigma.size(), 2u);
  for (const Gpar& r : w.sigma) w.records.push_back({r, 0, 0.0});
  return w;
}

EipResult BatchIdentify(const Graph& g, const std::vector<Gpar>& sigma,
                        double eta, bool require_consequent) {
  EipOptions opt;
  opt.algorithm = EipAlgorithm::kMatch;
  opt.num_workers = 3;
  opt.eta = eta;
  opt.require_consequent = require_consequent;
  auto r = IdentifyEntities(g, sigma, opt);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

SessionRequest AllRequest(double eta, bool require_consequent = false) {
  SessionRequest req;
  req.all_centers = true;
  req.eta = eta;
  req.require_consequent = require_consequent;
  return req;
}

/// The sharded reply must equal the batch EipResult field for field:
/// entities, the global q / qbar supports, and every rule's supports and
/// confidence (assembled at the router from per-shard partial sums).
void ExpectSameAsBatch(const SessionReply& got, const EipResult& want,
                       const std::string& what) {
  EXPECT_EQ(got.entities, want.entities) << what;
  EXPECT_EQ(got.supp_q, want.supp_q) << what;
  EXPECT_EQ(got.supp_qbar, want.supp_qbar) << what;
  ASSERT_EQ(got.rule_evals.size(), want.rule_evals.size()) << what;
  for (size_t i = 0; i < want.rule_evals.size(); ++i) {
    EXPECT_EQ(got.rule_evals[i].supp_r, want.rule_evals[i].supp_r)
        << what << " rule " << i;
    EXPECT_EQ(got.rule_evals[i].supp_qqbar, want.rule_evals[i].supp_qqbar)
        << what << " rule " << i;
    EXPECT_DOUBLE_EQ(got.rule_evals[i].conf, want.rule_evals[i].conf)
        << what << " rule " << i;
  }
}

std::vector<EdgeInsert> MakeDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  std::vector<LabelId> edge_labels;
  for (NodeId v = 0; v < g.num_nodes() && edge_labels.size() < 8; ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      if (std::find(edge_labels.begin(), edge_labels.end(), e.label) ==
          edge_labels.end()) {
        edge_labels.push_back(e.label);
      }
    }
  }
  std::vector<EdgeInsert> inserts;
  for (size_t i = 0; i < k; ++i) {
    NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
    LabelId l = edge_labels[rng() % edge_labels.size()];
    inserts.push_back({src, l, dst});
  }
  return inserts;
}

/// Snapshot bytes as a complete graph fingerprint.
std::string GraphBytes(const Graph& g) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteGraphSnapshot(g, os).ok());
  return os.str();
}

NodeId PickSourceNode(const Graph& g, std::mt19937_64& rng) {
  NodeId v = static_cast<NodeId>(rng() % g.num_nodes());
  while (g.out_edges(v).empty()) v = (v + 1) % g.num_nodes();
  return v;
}

/// A mutation batch mixing both directions, mirroring the single-server
/// DeltaStreamEquivalence battery: `k` random inserts, `k` deletes of real
/// edges, one (almost surely) missing delete, plus a delete-then-reinsert
/// pair on even seeds.
GraphDelta MakeMutationDelta(const Graph& g, uint64_t seed, size_t k) {
  std::mt19937_64 rng(seed);
  GraphDelta d;
  d.inserts = MakeDelta(g, seed * 5 + 1, k);
  for (size_t i = 0; i < k; ++i) {
    NodeId v = PickSourceNode(g, rng);
    const auto edges = g.out_edges(v);
    const AdjEntry& e = edges[rng() % edges.size()];
    d.deletes.push_back({v, e.label, e.other});
  }
  d.deletes.push_back({static_cast<NodeId>(rng() % g.num_nodes()),
                       static_cast<LabelId>(g.labels().size() - 1),
                       static_cast<NodeId>(rng() % g.num_nodes())});
  if (seed % 2 == 0) {
    NodeId v = PickSourceNode(g, rng);
    const AdjEntry& e = g.out_edges(v)[0];
    d.deletes.push_back({v, e.label, e.other});
    d.inserts.push_back({v, e.label, e.other});
  }
  return d;
}

std::vector<NodeId> SampleCenters(const ServeSession& session, uint64_t seed,
                                  size_t k) {
  std::mt19937_64 rng(seed);
  std::vector<NodeId> centers;
  const auto& cands = session.candidates();
  for (size_t i = 0; i < k && !cands.empty(); ++i) {
    centers.push_back(cands[rng() % cands.size()]);
  }
  centers.push_back(
      static_cast<NodeId>(rng() % session.graph_snapshot()->num_nodes()));
  return centers;
}

/// The acceptance battery: a k-shard deployment answers — cold, warm, and
/// after a shipped delta — identical to a single `RuleServer` and to a
/// fresh batch `IdentifyEntities` run, through the one `ServeSession`
/// interface, across seeds and shard counts.
TEST(ShardedServeEquivalence, ColdWarmAndDeltaMatchSingleAndBatch) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);

    EipResult batch_lo = BatchIdentify(w.graph, w.sigma, 0.5, false);
    EipResult batch_hi = BatchIdentify(w.graph, w.sigma, 1.2, false);
    EipResult batch_pr = BatchIdentify(w.graph, w.sigma, 0.5, true);

    GraphDelta delta{.sequence = 0,
                     .inserts = MakeDelta(w.graph, seed * 977 + 5, 6),
                     .deletes = {},
                     .label_defs = {}};
    auto patchref = PatchGraphWithInserts(w.graph, delta);
    ASSERT_TRUE(patchref.ok());
    EipResult batch_patched =
        BatchIdentify(patchref->graph, w.sigma, 0.5, false);

    // The single-server reference, driven through the same session API.
    auto singleref = RuleServer::Create(w.graph, w.records);
    ASSERT_TRUE(singleref.ok()) << singleref.status();
    ServeSession& single = **singleref;
    SessionRequest point;
    point.centers = SampleCenters(single, seed + 41, 6);
    auto single_point = single.Query(point);
    ASSERT_TRUE(single_point.ok()) << single_point.status();
    auto singlepatch = RuleServer::Create(patchref->graph, w.records);
    ASSERT_TRUE(singlepatch.ok());
    auto single_point_patched = (*singlepatch)->Query(point);
    ASSERT_TRUE(single_point_patched.ok());

    for (uint32_t k : {1u, 2u, 4u}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      ShardedRuleServerOptions sopt;
      sopt.num_shards = k;
      sopt.shard_options.num_workers = 2;
      auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
      ASSERT_TRUE(server.ok()) << server.status();
      ShardedRuleServer& s = **server;
      ASSERT_EQ(s.num_shards(), k);
      EXPECT_EQ(s.candidates(), single.candidates());

      // Cold.
      auto cold = s.Query(AllRequest(0.5));
      ASSERT_TRUE(cold.ok()) << cold.status();
      ExpectSameAsBatch(*cold, batch_lo, "cold");
      EXPECT_GT(cold->stats.cache_probes, 0u);

      // Warm: different eta and P_R semantics, all from the shard caches.
      auto warm = s.Query(AllRequest(1.2));
      ASSERT_TRUE(warm.ok());
      ExpectSameAsBatch(*warm, batch_hi, "warm");
      EXPECT_EQ(warm->stats.cache_probes, 0u);
      EXPECT_GT(warm->stats.cache_hits, 0u);
      auto warm_pr = s.Query(AllRequest(0.5, true));
      ASSERT_TRUE(warm_pr.ok());
      ExpectSameAsBatch(*warm_pr, batch_pr, "warm require_consequent");

      // Point queries routed by ownership == the single server's answers.
      auto reply = s.Query(point);
      ASSERT_TRUE(reply.ok()) << reply.status();
      EXPECT_EQ(reply->matched, single_point->matched);
      EXPECT_EQ(reply->entities, single_point->entities);

      // Shipped delta == rebuild: the router patches the parent once and
      // the shards extend their views and invalidate from the wire bytes.
      auto ds = s.ApplyDelta(delta);
      ASSERT_TRUE(ds.ok()) << ds.status();
      EXPECT_EQ(ds->edges_inserted, patchref->edges_inserted);
      EXPECT_EQ(ds->wire_bytes > 0, k >= 1);
      EXPECT_EQ(s.delta_sequence(), 1u);
      auto after = s.Query(AllRequest(0.5));
      ASSERT_TRUE(after.ok());
      ExpectSameAsBatch(*after, batch_patched, "after delta");

      auto reply2 = s.Query(point);
      ASSERT_TRUE(reply2.ok());
      EXPECT_EQ(reply2->matched, single_point_patched->matched);
      EXPECT_EQ(reply2->entities, single_point_patched->entities);
    }
  }
}

/// The sharded insert+delete battery: a randomized interleaved mutation
/// stream shipped through the router must keep every shard deployment
/// equal to a delta-maintained single server, to fresh batch mining, and
/// to a from-scratch server on the final edge list — even when deletions
/// shrink neighborhoods across shard seams.
TEST(ShardedDeltaStreamEquivalence, InterleavedStreamMatchesSingleAndBatch) {
  constexpr int kBatches = 4;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Workload w = MakeWorkload(seed);

    // Reference trajectory, patched outside any server.
    std::vector<GraphDelta> stream;
    std::vector<Graph> after;
    after.reserve(kBatches);
    for (int b = 0; b < kBatches; ++b) {
      const Graph& cur = (b == 0) ? w.graph : after.back();
      GraphDelta d = MakeMutationDelta(cur, seed * 739 + b, 5);
      d.sequence = static_cast<uint64_t>(b);
      auto p = PatchGraph(cur, d);
      ASSERT_TRUE(p.ok()) << p.status();
      after.push_back(std::move(p->graph));
      stream.push_back(std::move(d));
    }
    const Graph& mid_graph = after[kBatches / 2 - 1];
    const Graph& final_graph = after.back();

    EipResult batch_cold = BatchIdentify(w.graph, w.sigma, 0.5, false);
    EipResult batch_mid = BatchIdentify(mid_graph, w.sigma, 0.5, false);
    EipResult batch_final = BatchIdentify(final_graph, w.sigma, 0.5, false);

    // A delta-maintained single server as the point-query reference.
    auto singleref = RuleServer::Create(w.graph, w.records);
    ASSERT_TRUE(singleref.ok()) << singleref.status();
    ServeSession& single = **singleref;
    SessionRequest point;
    point.centers = SampleCenters(single, seed + 67, 6);
    for (const GraphDelta& d : stream) {
      ASSERT_TRUE(single.ApplyDelta(d).ok());
    }
    auto single_final = single.Query(point);
    ASSERT_TRUE(single_final.ok());

    for (uint32_t k : {1u, 2u, 4u}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      ShardedRuleServerOptions sopt;
      sopt.num_shards = k;
      sopt.shard_options.num_workers = 2;
      auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
      ASSERT_TRUE(server.ok()) << server.status();
      ShardedRuleServer& s = **server;

      // Cold, then warm from the shard caches.
      auto cold = s.Query(AllRequest(0.5));
      ASSERT_TRUE(cold.ok()) << cold.status();
      ExpectSameAsBatch(*cold, batch_cold, "cold");
      auto warm = s.Query(AllRequest(0.5));
      ASSERT_TRUE(warm.ok());
      ExpectSameAsBatch(*warm, batch_cold, "warm");
      EXPECT_EQ(warm->stats.cache_probes, 0u);

      // Mid-stream checkpoint.
      for (int b = 0; b < kBatches / 2; ++b) {
        auto ds = s.ApplyDelta(stream[b]);
        ASSERT_TRUE(ds.ok()) << ds.status();
      }
      auto mid = s.Query(AllRequest(0.5));
      ASSERT_TRUE(mid.ok());
      ExpectSameAsBatch(*mid, batch_mid, "mid-stream");

      // Final checkpoint: batch, fresh sharded server, and the maintained
      // single server all agree; the router's parent CSR is byte-identical
      // to the from-scratch rebuild.
      for (int b = kBatches / 2; b < kBatches; ++b) {
        auto ds = s.ApplyDelta(stream[b]);
        ASSERT_TRUE(ds.ok()) << ds.status();
      }
      EXPECT_EQ(GraphBytes(*s.graph_snapshot()), GraphBytes(final_graph));
      auto fin = s.Query(AllRequest(0.5));
      ASSERT_TRUE(fin.ok());
      ExpectSameAsBatch(*fin, batch_final, "final vs batch");

      auto fresh = ShardedRuleServer::Create(final_graph, w.records, sopt);
      ASSERT_TRUE(fresh.ok());
      auto fresh_ans = (*fresh)->Query(AllRequest(0.5));
      ASSERT_TRUE(fresh_ans.ok());
      EXPECT_EQ(fin->entities, fresh_ans->entities);
      EXPECT_EQ(fin->supp_q, fresh_ans->supp_q);
      EXPECT_EQ(fin->supp_qbar, fresh_ans->supp_qbar);

      auto reply = s.Query(point);
      ASSERT_TRUE(reply.ok()) << reply.status();
      EXPECT_EQ(reply->matched, single_final->matched);
      EXPECT_EQ(reply->entities, single_final->entities);
    }
  }
}

TEST(ShardedServeEquivalence, OwnershipPartitionsCandidates) {
  Workload w = MakeWorkload(1);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 3;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  // Every candidate is owned by exactly one shard, and the per-shard owned
  // sets reassemble the global candidate list.
  size_t total_owned = 0;
  for (uint32_t i = 0; i < s.num_shards(); ++i) {
    const RuleServer& sh = s.shard(i);
    EXPECT_TRUE(sh.is_shard());
    EXPECT_GE(sh.view_members(), sh.candidates().size());
    total_owned += sh.candidates().size();
    for (NodeId c : sh.candidates()) EXPECT_EQ(s.OwnerOf(c), i);
  }
  EXPECT_EQ(total_owned, s.candidates().size());

  // Non-candidates have no owner.
  const Graph& g = *s.graph_snapshot();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!std::binary_search(s.candidates().begin(), s.candidates().end(), v)) {
      EXPECT_EQ(s.OwnerOf(v), s.num_shards());
      break;
    }
  }
}

TEST(ShardedServeEquivalence, SnapshotLoadRoundTrip) {
  Workload w = MakeWorkload(4);
  std::string dir = ::testing::TempDir();
  std::string gpath = dir + "/sharded_serve_test_graph.snap";
  std::string rpath = dir + "/sharded_serve_test_rules.snap";
  ASSERT_TRUE(WriteGraphSnapshotFile(w.graph, gpath).ok());
  ASSERT_TRUE(
      WriteRuleSetSnapshotFile(w.records, w.graph.labels(), rpath).ok());

  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  auto loaded = ShardedRuleServer::Load(gpath, rpath, sopt);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto in_memory = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(in_memory.ok());

  auto a = (*loaded)->Query(AllRequest(0.7));
  auto b = (*in_memory)->Query(AllRequest(0.7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->entities, b->entities);
  EXPECT_EQ(a->supp_q, b->supp_q);
  EXPECT_EQ((*loaded)->rules().size(), w.records.size());
}

TEST(ShardedServeEquivalence, InputValidation) {
  Workload w = MakeWorkload(1);

  ShardedRuleServerOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(ShardedRuleServer::Create(w.graph, w.records, zero).ok());
  EXPECT_FALSE(ShardedRuleServer::Create(w.graph, {}).ok());

  auto server = ShardedRuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(server.ok()) << server.status();
  ShardedRuleServer& s = **server;

  SessionRequest bad_center;
  bad_center.centers = {s.graph_snapshot()->num_nodes() + 7};
  EXPECT_FALSE(s.Query(bad_center).ok());

  SessionRequest bad_rule;
  bad_rule.centers = {0};
  bad_rule.rules = {static_cast<uint32_t>(w.records.size())};
  EXPECT_FALSE(s.Query(bad_rule).ok());

  SessionRequest bad_eta = AllRequest(0);
  EXPECT_FALSE(s.Query(bad_eta).ok());

  GraphDelta bad_delta;
  bad_delta.inserts.push_back(
      {s.graph_snapshot()->num_nodes(), s.graph_snapshot()->node_label(0), 0});
  EXPECT_FALSE(s.ApplyDelta(bad_delta).ok());
}

TEST(ShardedServeEquivalence, ShardSeamRejectsWrongDeltaEntryPoint) {
  Workload w = MakeWorkload(2);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok());

  // A shard refuses direct ApplyDelta: deltas come from the router.
  auto& shard = const_cast<RuleServer&>((*server)->shard(0));
  GraphDelta delta{.sequence = 1,
                   .inserts = MakeDelta(w.graph, 7, 2),
                   .deletes = {},
                   .label_defs = {}};
  EXPECT_FALSE(shard.ApplyDelta(delta).ok());

  // A non-shard server refuses the shard-side entry point.
  auto single = RuleServer::Create(w.graph, w.records);
  ASSERT_TRUE(single.ok());
  EXPECT_FALSE(
      (*single)
          ->ApplyShardDelta((*single)->graph_snapshot(), delta.Serialize())
          .ok());

  // Corrupt wire bytes are rejected by the shard-side decoder.
  std::string bytes = delta.Serialize();
  bytes[bytes.size() / 2] ^= 0x5A;
  EXPECT_FALSE(shard.ApplyShardDelta((*server)->graph_snapshot(), bytes).ok());
}

/// Concurrency battery: n threads fire a mixed point / all-centers stream
/// at one session; every answer must equal the single-threaded reference.
/// Runs over both implementations of the session interface.
void StressQueries(ServeSession& session, uint32_t num_threads,
                   uint32_t rounds) {
  SessionRequest all = AllRequest(0.5);
  auto want_all = session.Query(all);
  ASSERT_TRUE(want_all.ok()) << want_all.status();

  std::vector<SessionRequest> points(num_threads);
  std::vector<SessionReply> want_point(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    points[t].centers = SampleCenters(session, 100 + t, 5);
    auto r = session.Query(points[t]);
    ASSERT_TRUE(r.ok());
    want_point[t] = std::move(r).value();
  }

  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t i = 0; i < rounds; ++i) {
        if ((i + t) % 3 == 0) {
          auto r = session.Query(all);
          if (!r.ok() || r->entities != want_all->entities ||
              r->supp_q != want_all->supp_q) {
            ++failures;
          }
        } else {
          auto r = session.Query(points[t]);
          if (!r.ok() || r->matched != want_point[t].matched) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ShardedServeEquivalence, ConcurrentQueriesSingleServer) {
  Workload w = MakeWorkload(1);
  RuleServerOptions opt;
  opt.num_workers = 2;
  opt.cache_shards = 4;
  auto server = RuleServer::Create(w.graph, w.records, opt);
  ASSERT_TRUE(server.ok()) << server.status();
  StressQueries(**server, 8, 12);
}

TEST(ShardedServeEquivalence, ConcurrentQueriesSharded) {
  Workload w = MakeWorkload(2);
  for (uint32_t k : {1u, 2u, 4u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    ShardedRuleServerOptions sopt;
    sopt.num_shards = k;
    sopt.shard_options.num_workers = 2;
    auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
    ASSERT_TRUE(server.ok()) << server.status();
    StressQueries(**server, 6, 8);
  }
}

/// Deltas never block or corrupt in-flight queries: readers hammer the
/// session while a writer applies a stream of mixed insert+delete batches.
/// During the race replies just have to be well-formed; after the writer
/// finishes, the session must answer exactly like a fresh server on the
/// final graph.
void StressQueriesUnderDeltas(ServeSession& session, const Workload& w,
                              uint32_t num_readers, uint32_t num_batches) {
  std::vector<SessionRequest> points(num_readers);
  for (uint32_t t = 0; t < num_readers; ++t) {
    points[t].centers = SampleCenters(session, 500 + t, 4);
  }
  SessionRequest all = AllRequest(0.5);

  std::atomic<bool> stop{false};
  std::atomic<uint32_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (uint32_t t = 0; t < num_readers; ++t) {
    readers.emplace_back([&, t] {
      uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = session.Query((i + t) % 4 == 0 ? all : points[t]);
        if (!r.ok()) ++failures;
        ++i;
      }
    });
  }

  Graph current = w.graph;
  for (uint32_t b = 0; b < num_batches; ++b) {
    GraphDelta delta = MakeMutationDelta(current, 900 + b * 13, 3);
    delta.sequence = b;
    auto want = PatchGraph(current, delta);
    ASSERT_TRUE(want.ok());
    current = std::move(want)->graph;
    auto ds = session.ApplyDelta(delta);
    if (!ds.ok()) ++failures;
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0u);

  auto fresh = RuleServer::Create(current, w.records);
  ASSERT_TRUE(fresh.ok());
  auto want_final = (*fresh)->Query(all);
  auto got_final = session.Query(all);
  ASSERT_TRUE(want_final.ok());
  ASSERT_TRUE(got_final.ok());
  EXPECT_EQ(got_final->entities, want_final->entities);
  EXPECT_EQ(got_final->supp_q, want_final->supp_q);
  EXPECT_EQ(got_final->supp_qbar, want_final->supp_qbar);
}

TEST(ShardedServeEquivalence, ConcurrentDeltasSingleServer) {
  Workload w = MakeWorkload(4);
  RuleServerOptions opt;
  opt.num_workers = 2;
  auto server = RuleServer::Create(w.graph, w.records, opt);
  ASSERT_TRUE(server.ok()) << server.status();
  StressQueriesUnderDeltas(**server, w, 4, 6);
}

TEST(ShardedServeEquivalence, ConcurrentDeltasSharded) {
  Workload w = MakeWorkload(5);
  ShardedRuleServerOptions sopt;
  sopt.num_shards = 2;
  sopt.shard_options.num_workers = 2;
  auto server = ShardedRuleServer::Create(w.graph, w.records, sopt);
  ASSERT_TRUE(server.ok()) << server.status();
  StressQueriesUnderDeltas(**server, w, 4, 6);
}

}  // namespace
}  // namespace gpar
