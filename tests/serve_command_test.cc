#include "serve/serve_command.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gpar {
namespace {

ServeCommand MustParse(std::string_view line) {
  auto r = ParseServeCommand(line);
  EXPECT_TRUE(r.ok()) << "'" << line << "': " << r.status();
  return r.ok() ? std::move(r).value() : ServeCommand{};
}

/// Expects InvalidArgument whose message contains `needle` (the offending
/// command / token) — the serve loop surfaces these verbatim.
void ExpectMalformed(std::string_view line, std::string_view needle) {
  auto r = ParseServeCommand(line);
  ASSERT_FALSE(r.ok()) << "'" << line << "' parsed unexpectedly";
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();
  EXPECT_NE(r.status().message().find(needle), std::string::npos)
      << "message '" << r.status().message() << "' lacks '" << needle << "'";
}

TEST(ServeCommandTest, MetaCommands) {
  EXPECT_EQ(MustParse("").kind, ServeCommand::Kind::kHelp);
  EXPECT_EQ(MustParse("help").kind, ServeCommand::Kind::kHelp);
  EXPECT_EQ(MustParse("quit").kind, ServeCommand::Kind::kQuit);
  EXPECT_EQ(MustParse("exit").kind, ServeCommand::Kind::kQuit);
  EXPECT_EQ(MustParse("stats").kind, ServeCommand::Kind::kStats);
  EXPECT_NE(std::string(ServeCommandHelp()).find("delta"), std::string::npos);
}

TEST(ServeCommandTest, IdCommand) {
  ServeCommand c = MustParse("id 3 17 4");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kQuery);
  EXPECT_FALSE(c.request.all_centers);
  EXPECT_EQ(c.request.centers, (std::vector<NodeId>{3, 17, 4}));
  EXPECT_TRUE(c.request.rules.empty());
  EXPECT_FALSE(c.request.require_consequent);

  c = MustParse("id rules=2,0,5 pr=1 9");
  EXPECT_EQ(c.request.centers, (std::vector<NodeId>{9}));
  EXPECT_EQ(c.request.rules, (std::vector<uint32_t>{2, 0, 5}));
  EXPECT_TRUE(c.request.require_consequent);

  // Options may appear anywhere among the centers.
  c = MustParse("id 1 pr=0 2 rules=0");
  EXPECT_EQ(c.request.centers, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(c.request.rules, (std::vector<uint32_t>{0}));
}

TEST(ServeCommandTest, AllCommand) {
  ServeCommand c = MustParse("all");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kQuery);
  EXPECT_TRUE(c.request.all_centers);
  EXPECT_DOUBLE_EQ(c.request.eta, 1.0);

  c = MustParse("all 0.75 rules=1,3");
  EXPECT_DOUBLE_EQ(c.request.eta, 0.75);
  EXPECT_EQ(c.request.rules, (std::vector<uint32_t>{1, 3}));

  c = MustParse("all pr=1 2.5");
  EXPECT_TRUE(c.request.require_consequent);
  EXPECT_DOUBLE_EQ(c.request.eta, 2.5);
}

TEST(ServeCommandTest, DeltaCommand) {
  ServeCommand c = MustParse("delta 1 follows 2 7 likes 9");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kDelta);
  ASSERT_EQ(c.inserts.size(), 2u);
  EXPECT_EQ(c.inserts[0], (TextEdgeInsert{1, "follows", 2}));
  EXPECT_EQ(c.inserts[1], (TextEdgeInsert{7, "likes", 9}));
  EXPECT_TRUE(c.deletes.empty());
}

TEST(ServeCommandTest, DeltaDeleteSyntax) {
  // A bare `-` switches to delete mode; the line starts in insert mode.
  ServeCommand c = MustParse("delta 1 follows 2 - 3 follows 4");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kDelta);
  ASSERT_EQ(c.inserts.size(), 1u);
  EXPECT_EQ(c.inserts[0], (TextEdgeInsert{1, "follows", 2}));
  ASSERT_EQ(c.deletes.size(), 1u);
  EXPECT_EQ(c.deletes[0], (TextEdgeDelete{3, "follows", 4}));

  // A pure-delete line.
  c = MustParse("delta - 1 knows 2 5 likes 6");
  EXPECT_TRUE(c.inserts.empty());
  ASSERT_EQ(c.deletes.size(), 2u);
  EXPECT_EQ(c.deletes[0], (TextEdgeDelete{1, "knows", 2}));
  EXPECT_EQ(c.deletes[1], (TextEdgeDelete{5, "likes", 6}));

  // `+` switches back, so one line can interleave freely; repeated mode
  // tokens are harmless.
  c = MustParse("delta - 1 knows 2 + + 3 knows 4 - 5 knows 6");
  ASSERT_EQ(c.inserts.size(), 1u);
  EXPECT_EQ(c.inserts[0], (TextEdgeInsert{3, "knows", 4}));
  ASSERT_EQ(c.deletes.size(), 2u);
  EXPECT_EQ(c.deletes[1], (TextEdgeDelete{5, "knows", 6}));
}

TEST(ServeCommandTest, CheckpointCommand) {
  // Bare checkpoint: path left empty — the serve loop substitutes the
  // loaded snapshot path.
  ServeCommand c = MustParse("checkpoint");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kCheckpoint);
  EXPECT_TRUE(c.path.empty());

  c = MustParse("checkpoint /tmp/fresh.snap");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kCheckpoint);
  EXPECT_EQ(c.path, "/tmp/fresh.snap");
  EXPECT_NE(std::string(ServeCommandHelp()).find("checkpoint"),
            std::string::npos);
}

TEST(ServeCommandTest, RecoverCommand) {
  ServeCommand c = MustParse("recover");
  EXPECT_EQ(c.kind, ServeCommand::Kind::kRecover);
  EXPECT_NE(std::string(ServeCommandHelp()).find("recover"),
            std::string::npos);
}

TEST(ServeCommandTest, MalformedInputsNameTheOffendingToken) {
  ExpectMalformed("id", "at least one center");
  ExpectMalformed("id x7", "center must be a node id, got 'x7'");
  ExpectMalformed("id -3", "center must be a node id, got '-3'");
  ExpectMalformed("id rules= 0", "comma-separated rule list");
  ExpectMalformed("id rules=a 0", "rule indices, got 'a'");
  ExpectMalformed("id rules=1, 0", "trailing comma");
  ExpectMalformed("id pr=yes 0", "pr= expects 0 or 1, got 'yes'");
  ExpectMalformed("all 0", "eta must be positive");
  ExpectMalformed("all -0.5", "eta must be positive");
  ExpectMalformed("all 0.5 0.7", "unexpected token '0.7'");
  ExpectMalformed("all bogus", "unexpected token 'bogus'");
  ExpectMalformed("delta", "at least one (src, elabel, dst) triple");
  ExpectMalformed("delta x follows 2", "src must be a node id, got 'x'");
  ExpectMalformed("delta 1", "missing edge label after src 1");
  ExpectMalformed("delta 1 follows", "(src, elabel, dst) triples");
  ExpectMalformed("delta 1 follows z", "(src, elabel, dst) triples");
  // Malformed delete sections: mode tokens alone are not triples, and a
  // broken triple after `-` reports the same diagnostics as inserts.
  ExpectMalformed("delta -", "at least one (src, elabel, dst) triple");
  ExpectMalformed("delta + -", "at least one (src, elabel, dst) triple");
  ExpectMalformed("delta - x follows 2", "src must be a node id, got 'x'");
  ExpectMalformed("delta - 1", "missing edge label after src 1");
  ExpectMalformed("delta 1 follows 2 - 3 follows",
                  "(src, elabel, dst) triples");
  ExpectMalformed("delta - 1 follows z", "(src, elabel, dst) triples");
  ExpectMalformed("stats now", "takes no arguments, got 'now'");
  ExpectMalformed("checkpoint a b", "takes at most one path, got 'b'");
  ExpectMalformed("recover now", "takes no arguments, got 'now'");
  ExpectMalformed("frobnicate", "unknown command 'frobnicate'");
}

}  // namespace
}  // namespace gpar
