#include "mine/fsm.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "pattern/pattern_ops.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

TEST(FsmTest, SingleEdgePatternsOnG1) {
  PaperG1 g1 = MakePaperG1();
  FsmOptions opt;
  opt.min_support = 2;
  opt.max_edges = 1;
  opt.seed_edge_limit = 20;
  auto patterns = MineFrequentSubgraphs(g1.graph, opt);
  ASSERT_FALSE(patterns.empty());
  // All results meet the threshold and are sorted by support.
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i].support, opt.min_support);
    if (i > 0) {
      EXPECT_LE(patterns[i].support, patterns[i - 1].support);
    }
    EXPECT_EQ(patterns[i].pattern.num_edges(), 1u);
  }
}

TEST(FsmTest, SupportsAreMniExact) {
  PaperG1 g1 = MakePaperG1();
  VF2Matcher m(g1.graph);
  FsmOptions opt;
  opt.min_support = 2;
  opt.max_edges = 2;
  auto patterns = MineFrequentSubgraphs(g1.graph, opt);
  for (const FrequentPattern& fp : patterns) {
    EXPECT_EQ(fp.support, MinImageSupport(m, fp.pattern))
        << fp.pattern.ToString(g1.graph.labels());
  }
}

TEST(FsmTest, AntiMonotonePruning) {
  // Growing a pattern can never raise its MNI support: every reported
  // 2-edge pattern's support is <= the max 1-edge support.
  PaperG1 g1 = MakePaperG1();
  FsmOptions opt1;
  opt1.min_support = 1;
  opt1.max_edges = 1;
  auto level1 = MineFrequentSubgraphs(g1.graph, opt1);
  uint64_t best1 = level1.empty() ? 0 : level1.front().support;

  FsmOptions opt2 = opt1;
  opt2.max_edges = 2;
  auto level2 = MineFrequentSubgraphs(g1.graph, opt2);
  for (const FrequentPattern& fp : level2) {
    EXPECT_LE(fp.support, best1);
  }
}

TEST(FsmTest, FindsPlantedFrequentStructure) {
  // The Pokec-like generator plants abundant (user)-[follow]->(user) and
  // (user)-[like_*]->(item) edges; the miner must surface them.
  Graph g = MakePokecLike(1);
  FsmOptions opt;
  opt.min_support = 50;
  opt.max_edges = 2;
  opt.seed_edge_limit = 6;
  opt.max_patterns = 10;
  opt.embedding_cap = 20000;
  auto patterns = MineFrequentSubgraphs(g, opt);
  ASSERT_FALSE(patterns.empty());
  EXPECT_GE(patterns.front().support, 50u);
}

TEST(FsmTest, MaxPatternsCap) {
  PaperG1 g1 = MakePaperG1();
  FsmOptions opt;
  opt.min_support = 1;
  opt.max_edges = 2;
  opt.max_patterns = 3;
  auto patterns = MineFrequentSubgraphs(g1.graph, opt);
  EXPECT_LE(patterns.size(), 3u);
}

}  // namespace
}  // namespace gpar
