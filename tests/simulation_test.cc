#include "match/simulation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"

namespace gpar {
namespace {

TEST(SimulationTest, CycleMatchesUnderSimulationButNotIsomorphism) {
  // The classic separator: a 3-cycle pattern simulates into a 2-cycle
  // graph (every node has the required successor/predecessor), but no
  // injective match exists.
  GraphBuilder b;
  NodeId u = b.AddNode("a");
  NodeId v = b.AddNode("a");
  (void)b.AddEdge(u, "e", v);
  (void)b.AddEdge(v, "e", u);
  Graph g = std::move(b).Build();
  LabelId a = g.labels().Lookup("a");
  LabelId e = g.labels().Lookup("e");

  Pattern cycle3;
  PNodeId p0 = cycle3.AddNode(a);
  PNodeId p1 = cycle3.AddNode(a);
  PNodeId p2 = cycle3.AddNode(a);
  cycle3.AddEdge(p0, e, p1);
  cycle3.AddEdge(p1, e, p2);
  cycle3.AddEdge(p2, e, p0);
  cycle3.set_x(p0);

  auto sim = DualSimulation(cycle3, g);
  EXPECT_EQ(sim[p0].size(), 2u);  // both graph nodes simulate
  VF2Matcher m(g);
  EXPECT_TRUE(m.Images(cycle3, p0).empty());  // no injective match
}

TEST(SimulationTest, RespectsEdgeLabels) {
  GraphBuilder b;
  NodeId u = b.AddNode("a");
  NodeId v = b.AddNode("b");
  (void)b.AddEdge(u, "likes", v);
  Graph g = std::move(b).Build();

  Pattern p;
  PNodeId x = p.AddNode(g.labels().Lookup("a"));
  PNodeId y = p.AddNode(g.labels().Lookup("b"));
  p.AddEdge(x, g.labels().Lookup("likes"), y);
  p.set_x(x);
  auto sim_ok = DualSimulation(p, g);
  EXPECT_EQ(sim_ok[x].size(), 1u);

  Pattern wrong;
  PNodeId wx = wrong.AddNode(g.labels().Lookup("a"));
  PNodeId wy = wrong.AddNode(g.labels().Lookup("b"));
  Interner* labels = const_cast<Graph&>(g).mutable_labels();
  wrong.AddEdge(wx, labels->Intern("hates"), wy);
  wrong.set_x(wx);
  auto sim_bad = DualSimulation(wrong, g);
  EXPECT_TRUE(sim_bad[wx].empty());
}

TEST(SimulationTest, DualConstraintUsesInEdges) {
  // Pattern: a -> b. A graph "b" node with no incoming "e" edge must not
  // simulate pattern node b (dual simulation checks in-edges too).
  GraphBuilder bld;
  NodeId a1 = bld.AddNode("a");
  NodeId b1 = bld.AddNode("b");
  NodeId b2 = bld.AddNode("b");  // orphan: no in-edge
  (void)bld.AddEdge(a1, "e", b1);
  Graph g = std::move(bld).Build();
  (void)b2;

  Pattern p;
  PNodeId x = p.AddNode(g.labels().Lookup("a"));
  PNodeId y = p.AddNode(g.labels().Lookup("b"));
  p.AddEdge(x, g.labels().Lookup("e"), y);
  p.set_x(x);
  auto sim = DualSimulation(p, g);
  ASSERT_EQ(sim[y].size(), 1u);
  EXPECT_EQ(sim[y][0], b1);
}

TEST(SimulationTest, MultiplicityExpansionApplies) {
  PaperG1 g1 = MakePaperG1();
  // like(x, FR^3): simulation is looser than isomorphism but still needs
  // the like edge; custs with no FR likes are excluded.
  const Interner& labels = g1.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId f = p.AddNode(labels.Lookup("French_restaurant"), 3);
  p.AddEdge(x, labels.Lookup("like"), f);
  p.set_x(x);
  auto images = SimulationImages(p, g1.graph, x);
  EXPECT_TRUE(std::binary_search(images.begin(), images.end(), g1.cust1));
  EXPECT_FALSE(std::binary_search(images.begin(), images.end(), g1.cust6));
}

TEST(SimulationTest, EmptyWhenNoLabel) {
  PaperG1 g1 = MakePaperG1();
  Pattern p;
  PNodeId x = p.AddNode(kWildcardLabel);  // not present in the graph
  p.set_x(x);
  auto sim = DualSimulation(p, g1.graph);
  EXPECT_TRUE(sim[x].empty());
}

}  // namespace
}  // namespace gpar
