// The annotated Mutex/MutexLock/CondVar wrappers (common/mutex.h) must
// behave exactly like the raw std primitives they wrap — same mutual
// exclusion, same wakeup semantics, same TryLock contract — while adding
// the clang thread-safety capability types. The compile-time half of the
// proof lives in tests/negative_compile/ (expected-to-fail TUs registered
// by tests/CMakeLists.txt under clang); this battery is the runtime half.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "parallel/thread_pool.h"

namespace gpar {
namespace {

constexpr int kThreads = 8;
constexpr int kIncrementsPerThread = 5000;

// A counter protocol shared by the wrapper/raw comparison: N threads, M
// increments each, all under the lock. Any lost update means the lock
// failed to exclude.
template <typename LockFn>
uint64_t HammerCounter(LockFn&& locked_increment) {
  uint64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        locked_increment(counter);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return counter;
}

TEST(ThreadAnnotationsTest, MutexExcludesLikeStdMutex) {
  Mutex mu;
  const uint64_t wrapped = HammerCounter([&](uint64_t& c) {
    MutexLock lock(mu);
    ++c;
  });

  std::mutex raw;
  const uint64_t baseline = HammerCounter([&](uint64_t& c) {
    std::lock_guard<std::mutex> lock(raw);
    ++c;
  });

  EXPECT_EQ(wrapped, uint64_t{kThreads} * kIncrementsPerThread);
  EXPECT_EQ(wrapped, baseline);
}

TEST(ThreadAnnotationsTest, ExplicitLockUnlockAlsoExcludes) {
  Mutex mu;
  const uint64_t n = HammerCounter([&](uint64_t& c) {
    mu.Lock();
    ++c;
    mu.Unlock();
  });
  EXPECT_EQ(n, uint64_t{kThreads} * kIncrementsPerThread);
}

TEST(ThreadAnnotationsTest, TryLockContractMatchesStdMutex) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Held: a second claim from another thread must fail (same-thread
  // re-try-lock is UB for std::mutex, so probe from a helper thread).
  bool second = true;
  std::thread probe([&] { second = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.Unlock();
  // Released: claimable again.
  std::thread reprobe([&] {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  reprobe.join();
}

TEST(ThreadAnnotationsTest, CondVarHandshake) {
  // Producer/consumer through Wait/NotifyOne with the REQUIRES-style
  // explicit loop the wrappers mandate. Consumer must see every value.
  Mutex mu;
  CondVar ready;
  CondVar consumed;
  int slot GPAR_GUARDED_BY(mu) = 0;       // 0 = empty
  bool done GPAR_GUARDED_BY(mu) = false;
  constexpr int kItems = 200;

  int sum = 0;
  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(mu);
      while (slot == 0 && !done) ready.Wait(mu);
      if (slot == 0) return;  // done and drained
      sum += slot;
      slot = 0;
      consumed.NotifyOne();
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    MutexLock lock(mu);
    while (slot != 0) consumed.Wait(mu);
    slot = i;
    ready.NotifyOne();
  }
  {
    MutexLock lock(mu);
    while (slot != 0) consumed.Wait(mu);
    done = true;
    ready.NotifyAll();
  }
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(ThreadAnnotationsTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go GPAR_GUARDED_BY(mu) = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      // Relaxed: join() below is the synchronization point for the check.
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  // Relaxed: joined threads happen-before this load.
  EXPECT_EQ(woke.load(std::memory_order_relaxed), kThreads);
}

TEST(ThreadAnnotationsTest, ThreadPoolOnWrappersStillDrains) {
  // The pool (rebuilt on the annotated primitives) keeps its contract:
  // Wait() returns only after all submitted tasks ran, and an idle Wait()
  // returns immediately.
  ThreadPool pool(4);
  pool.Wait();  // idle: must not block
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    // Relaxed: Wait() below synchronizes before the assertion reads.
    pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  // Relaxed: Wait() ordered every task before this load.
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 64);
}

}  // namespace
}  // namespace gpar
