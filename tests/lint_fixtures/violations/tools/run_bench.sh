#!/usr/bin/env bash
# Fixture runner: intentionally registers no BENCH_*.json artifacts.
exit 0
