#ifndef FIXTURE_DMINE_H_
#define FIXTURE_DMINE_H_

namespace fixture {

struct DmineOptions {
  bool enable_tested_flag = true;
  bool enable_untested_flag = false;
};

}  // namespace fixture

#endif  // FIXTURE_DMINE_H_
