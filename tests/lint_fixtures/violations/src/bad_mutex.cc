#include <mutex>

namespace fixture {

std::mutex naked_mu;

void Touch() {
  std::lock_guard<std::mutex> lock(naked_mu);
}

}  // namespace fixture
