#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int DefaultedOrder() {
  return counter.load();
}

void UncommentedStore(int v) {

  counter.store(v, std::memory_order_relaxed);
}

}  // namespace fixture
