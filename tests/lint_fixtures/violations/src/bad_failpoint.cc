// Seeded [failpoint-site] violation: a registered failpoint site whose
// name appears in no test under tests/ — an uninjectable failure path.
#include "common/failpoint.h"

namespace gpar {

Status UntestedGuardedOp() {
  GPAR_FAILPOINT("fixture.untested_site");
  return Status::OK();
}

}  // namespace gpar
