// Fixture bench emitter: names a BENCH_*.json artifact that the fixture's
// tools/run_bench.sh does not register — a seeded [bench-json] violation.

namespace fixture {

const char* kOut = "BENCH_unregistered.json";

}  // namespace fixture
