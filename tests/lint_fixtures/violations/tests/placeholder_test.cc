// Fixture test file: mentions enable_tested_flag so exactly one of the two
// DmineOptions fields in ../src/mine/dmine.h counts as covered; the other
// field is a seeded [ablation-flag] violation and must NOT be named here.

namespace fixture {

void Exercise() {
  // enable_tested_flag
}

}  // namespace fixture
