#include "mine/dmine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "mine/naive_miner.h"
#include "pattern/automorphism.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

DmineOptions SmallOptions() {
  DmineOptions opt;
  opt.num_workers = 2;
  opt.k = 2;
  opt.d = 2;
  opt.sigma = 1;
  opt.lambda = 0.5;
  opt.max_pattern_edges = 4;
  opt.seed_edge_limit = 8;
  opt.max_candidates_per_round = 200;
  return opt;
}

/// Canonical fingerprint of a mined pool: per rule, (bucket key, supp,
/// supp_qqbar) sorted — two runs with equal fingerprints found the same
/// rules with the same statistics.
std::vector<std::string> PoolFingerprint(
    const std::vector<std::shared_ptr<MinedRule>>& pool) {
  std::vector<std::string> out;
  for (const auto& r : pool) {
    out.push_back(IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                  std::to_string(r->supp) + "|n=" +
                  std::to_string(r->supp_qqbar));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DmineTest, DiscoversRulesOnG1) {
  PaperG1 g1 = MakePaperG1();
  auto result = Dmine(g1.graph, g1.q, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.supp_q, 5u);
  EXPECT_EQ(result->stats.supp_qbar, 1u);
  EXPECT_GT(result->stats.accepted, 0u);
  ASSERT_EQ(result->topk.size(), 2u);
  EXPECT_GT(result->objective, 0.9);  // at least Example 9's round-1 value

  // Every reported rule's statistics must agree with a from-scratch
  // sequential evaluation (cross-validation of the parallel assembly).
  VF2Matcher m(g1.graph);
  QStats stats = ComputeQStats(m, g1.q);
  for (const auto& r : result->topk) {
    GparEval eval = EvaluateGpar(m, r->rule, stats,
                                 {.compute_antecedent_images = false});
    EXPECT_EQ(r->supp, eval.supp_r);
    EXPECT_EQ(r->supp_qqbar, eval.supp_qqbar);
    EXPECT_DOUBLE_EQ(r->conf, eval.conf);
    EXPECT_EQ(r->matches, eval.pr_matches);
    EXPECT_LE(r->rule.radius_at_x(), SmallOptions().d);
    EXPECT_GE(r->supp, SmallOptions().sigma);
  }
}

TEST(DmineTest, PoolIndependentOfWorkerCount) {
  // Parallel correctness: the accepted rule pool (with exact supports) must
  // not depend on n. Reduction rules are disabled so pruning order cannot
  // mask differences.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  std::vector<std::string> reference;
  for (uint32_t n : {1u, 2u, 4u}) {
    opt.num_workers = n;
    auto result = Dmine(g1.graph, g1.q, opt);
    ASSERT_TRUE(result.ok());
    // Recover the pool from stats: compare via accepted counts + topk only
    // is weak; rerun and compare pool fingerprints via NaiveMine below.
    if (reference.empty()) {
      reference.push_back(std::to_string(result->stats.accepted));
    } else {
      EXPECT_EQ(reference[0], std::to_string(result->stats.accepted))
          << "accepted pool size differs at n=" << n;
    }
    EXPECT_GT(result->objective, 0.0);
  }
}

TEST(DmineTest, MatchesNaiveMinerOracle) {
  // DMine without reduction pruning must discover exactly the same rules
  // with the same supports as the sequential exhaustive miner.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  auto naive = NaiveMine(g1.graph, g1.q, opt);
  ASSERT_TRUE(naive.ok());
  ASSERT_GT(naive->all_rules.size(), 0u);

  opt.num_workers = 3;
  auto parallel = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->stats.accepted, naive->all_rules.size());

  // Compare via sequential re-evaluation of DMine's top-k against the
  // naive pool fingerprints.
  auto naive_fp = PoolFingerprint(naive->all_rules);
  for (const auto& r : parallel->topk) {
    std::string fp = IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                     std::to_string(r->supp) + "|n=" +
                     std::to_string(r->supp_qqbar);
    EXPECT_TRUE(std::binary_search(naive_fp.begin(), naive_fp.end(), fp))
        << "DMine produced a rule the oracle does not know: " << fp;
  }
}

TEST(DmineTest, DmineNoFindsSameQualityTopK) {
  // DMineno (no optimizations) is slower but must reach a top-k of the
  // same objective quality (both are 2-approximations; the greedy choices
  // coincide on this small instance).
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  auto fast = Dmine(g1.graph, g1.q, opt);
  auto slow = Dmine(g1.graph, g1.q, DmineNoOptions(opt));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(fast->objective, slow->objective, 1e-9);
}

TEST(DmineTest, SupportThresholdFilters) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.sigma = 4;  // only rules with supp >= 4 survive
  auto result = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->topk) {
    EXPECT_GE(r->supp, 4u);
  }
}

TEST(DmineTest, TrivialPredicateYieldsEmptyResult) {
  PaperG1 g1 = MakePaperG1();
  Predicate q = g1.q;
  q.edge_label = g1.graph.labels().Lookup("live_in");
  q.y_label = g1.graph.labels().Lookup("Asian_restaurant");  // nobody
  auto result = Dmine(g1.graph, q, SmallOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.supp_q, 0u);
  EXPECT_TRUE(result->topk.empty());
}

TEST(DmineTest, InvalidOptionsRejected) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.num_workers = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.k = 1;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.d = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
}

TEST(DmineTest, BisimPrefilterDoesNotChangeDedup) {
  // Lemma 4 guarantees the prefilter never merges non-automorphic rules:
  // candidate counts with and without it must be identical.
  PaperG1 g1 = MakePaperG1();
  DmineOptions with = SmallOptions();
  DmineOptions without = SmallOptions();
  without.enable_bisim_prefilter = false;
  auto a = Dmine(g1.graph, g1.q, with);
  auto b = Dmine(g1.graph, g1.q, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.candidates_verified, b->stats.candidates_verified);
  EXPECT_EQ(a->stats.automorphic_merged, b->stats.automorphic_merged);
  EXPECT_GT(a->stats.bisim_tests, 0u);
  EXPECT_EQ(b->stats.bisim_tests, 0u);
  // The prefilter skips exact iso tests for non-bisimilar pairs.
  EXPECT_LE(a->stats.iso_tests, b->stats.iso_tests);
}

TEST(DmineTest, GenerateExtensionsRadiusDiscipline) {
  // One-edge extensions of the bare predicate, and of those, stay within
  // the radius bound d — measured on P_R *and* on the antecedent's
  // x-component (eval_radius).
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  PNodeId x = base.AddNode(labels.Lookup("cust"));
  PNodeId y = base.AddNode(labels.Lookup("French_restaurant"));
  base.set_x(x);
  base.set_y(y);

  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  const uint32_t d = 2;
  auto level1 = GenerateExtensions(base, labels.Lookup("visit"), d, 4, seeds);
  ASSERT_GT(level1.size(), 0u);
  for (const Gpar& r : level1) {
    EXPECT_LE(r.eval_radius(), d);
    EXPECT_EQ(r.antecedent().num_edges(), 1u);
  }

  for (const Gpar& r : level1) {
    auto level2 = GenerateExtensions(r.antecedent(), labels.Lookup("visit"),
                                     d, 4, seeds);
    for (const Gpar& r2 : level2) {
      EXPECT_LE(r2.eval_radius(), d);
      EXPECT_EQ(r2.antecedent().num_edges(), 2u);
    }
  }

  // Edge cap: no extensions beyond max_edges.
  auto capped = GenerateExtensions(level1[0].antecedent(),
                                   labels.Lookup("visit"), d, 1, seeds);
  EXPECT_TRUE(capped.empty());
}

TEST(DmineTest, WorksOnSyntheticGraph) {
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.sigma = 2;
  auto result = Dmine(g, q, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.candidates_verified, 0u);
}

}  // namespace
}  // namespace gpar
