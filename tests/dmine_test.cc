#include "mine/dmine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "mine/naive_miner.h"
#include "pattern/automorphism.h"
#include "pattern/pattern_ops.h"
#include "rule/metrics.h"
#include "test_util.h"

namespace gpar {
namespace {

DmineOptions SmallOptions() {
  DmineOptions opt;
  opt.num_workers = 2;
  opt.k = 2;
  opt.d = 2;
  opt.sigma = 1;
  opt.lambda = 0.5;
  opt.max_pattern_edges = 4;
  opt.seed_edge_limit = 8;
  opt.max_candidates_per_round = 200;
  return opt;
}

/// Canonical fingerprint of a mined pool: per rule, (bucket key, supp,
/// supp_qqbar) sorted — two runs with equal fingerprints found the same
/// rules with the same statistics.
std::vector<std::string> PoolFingerprint(
    const std::vector<std::shared_ptr<MinedRule>>& pool) {
  std::vector<std::string> out;
  for (const auto& r : pool) {
    out.push_back(IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                  std::to_string(r->supp) + "|n=" +
                  std::to_string(r->supp_qqbar));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DmineTest, DiscoversRulesOnG1) {
  PaperG1 g1 = MakePaperG1();
  auto result = Dmine(g1.graph, g1.q, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.supp_q, 5u);
  EXPECT_EQ(result->stats.supp_qbar, 1u);
  EXPECT_GT(result->stats.accepted, 0u);
  ASSERT_EQ(result->topk.size(), 2u);
  EXPECT_GT(result->objective, 0.9);  // at least Example 9's round-1 value

  // Every reported rule's statistics must agree with a from-scratch
  // sequential evaluation (cross-validation of the parallel assembly).
  VF2Matcher m(g1.graph);
  QStats stats = ComputeQStats(m, g1.q);
  for (const auto& r : result->topk) {
    GparEval eval = EvaluateGpar(m, r->rule, stats,
                                 {.compute_antecedent_images = false});
    EXPECT_EQ(r->supp, eval.supp_r);
    EXPECT_EQ(r->supp_qqbar, eval.supp_qqbar);
    EXPECT_DOUBLE_EQ(r->conf, eval.conf);
    EXPECT_EQ(r->matches, eval.pr_matches);
    EXPECT_LE(r->rule.radius_at_x(), SmallOptions().d);
    EXPECT_GE(r->supp, SmallOptions().sigma);
  }
}

TEST(DmineTest, PoolIndependentOfWorkerCount) {
  // Parallel correctness: the accepted rule pool (with exact supports) must
  // not depend on n. Reduction rules are disabled so pruning order cannot
  // mask differences.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  std::vector<std::string> reference;
  for (uint32_t n : {1u, 2u, 4u}) {
    opt.num_workers = n;
    auto result = Dmine(g1.graph, g1.q, opt);
    ASSERT_TRUE(result.ok());
    // Recover the pool from stats: compare via accepted counts + topk only
    // is weak; rerun and compare pool fingerprints via NaiveMine below.
    if (reference.empty()) {
      reference.push_back(std::to_string(result->stats.accepted));
    } else {
      EXPECT_EQ(reference[0], std::to_string(result->stats.accepted))
          << "accepted pool size differs at n=" << n;
    }
    EXPECT_GT(result->objective, 0.0);
  }
}

TEST(DmineTest, MatchesNaiveMinerOracle) {
  // DMine without reduction pruning must discover exactly the same rules
  // with the same supports as the sequential exhaustive miner.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  auto naive = NaiveMine(g1.graph, g1.q, opt);
  ASSERT_TRUE(naive.ok());
  ASSERT_GT(naive->all_rules.size(), 0u);

  opt.num_workers = 3;
  auto parallel = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->stats.accepted, naive->all_rules.size());

  // Compare via sequential re-evaluation of DMine's top-k against the
  // naive pool fingerprints.
  auto naive_fp = PoolFingerprint(naive->all_rules);
  for (const auto& r : parallel->topk) {
    std::string fp = IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                     std::to_string(r->supp) + "|n=" +
                     std::to_string(r->supp_qqbar);
    EXPECT_TRUE(std::binary_search(naive_fp.begin(), naive_fp.end(), fp))
        << "DMine produced a rule the oracle does not know: " << fp;
  }
}

TEST(DmineTest, DmineNoFindsSameQualityTopK) {
  // DMineno (no optimizations) is slower but must reach a top-k of the
  // same objective quality (both are 2-approximations; the greedy choices
  // coincide on this small instance).
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  auto fast = Dmine(g1.graph, g1.q, opt);
  auto slow = Dmine(g1.graph, g1.q, DmineNoOptions(opt));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(fast->objective, slow->objective, 1e-9);
}

TEST(DmineTest, SupportThresholdFilters) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.sigma = 4;  // only rules with supp >= 4 survive
  auto result = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->topk) {
    EXPECT_GE(r->supp, 4u);
  }
}

TEST(DmineTest, TrivialPredicateYieldsEmptyResult) {
  PaperG1 g1 = MakePaperG1();
  Predicate q = g1.q;
  q.edge_label = g1.graph.labels().Lookup("live_in");
  q.y_label = g1.graph.labels().Lookup("Asian_restaurant");  // nobody
  auto result = Dmine(g1.graph, q, SmallOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.supp_q, 0u);
  EXPECT_TRUE(result->topk.empty());
}

TEST(DmineTest, InvalidOptionsRejected) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.num_workers = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.k = 1;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.d = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
}

TEST(DmineTest, BisimPrefilterDoesNotChangeDedup) {
  // Lemma 4 guarantees the prefilter never merges non-automorphic rules:
  // candidate counts with and without it must be identical.
  PaperG1 g1 = MakePaperG1();
  DmineOptions with = SmallOptions();
  DmineOptions without = SmallOptions();
  without.enable_bisim_prefilter = false;
  auto a = Dmine(g1.graph, g1.q, with);
  auto b = Dmine(g1.graph, g1.q, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.candidates_verified, b->stats.candidates_verified);
  EXPECT_EQ(a->stats.automorphic_merged, b->stats.automorphic_merged);
  EXPECT_GT(a->stats.bisim_tests, 0u);
  EXPECT_EQ(b->stats.bisim_tests, 0u);
  // The prefilter skips exact iso tests for non-bisimilar pairs.
  EXPECT_LE(a->stats.iso_tests, b->stats.iso_tests);
}

TEST(DmineTest, GenerateExtensionsRadiusDiscipline) {
  // One-edge extensions of the bare predicate, and of those, stay within
  // the radius bound d — measured on P_R *and* on the antecedent's
  // x-component (eval_radius).
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  PNodeId x = base.AddNode(labels.Lookup("cust"));
  PNodeId y = base.AddNode(labels.Lookup("French_restaurant"));
  base.set_x(x);
  base.set_y(y);

  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  const uint32_t d = 2;
  auto level1 = GenerateExtensions(base, labels.Lookup("visit"), d, 4, seeds);
  ASSERT_GT(level1.size(), 0u);
  for (const Gpar& r : level1) {
    EXPECT_LE(r.eval_radius(), d);
    EXPECT_EQ(r.antecedent().num_edges(), 1u);
  }

  for (const Gpar& r : level1) {
    auto level2 = GenerateExtensions(r.antecedent(), labels.Lookup("visit"),
                                     d, 4, seeds);
    for (const Gpar& r2 : level2) {
      EXPECT_LE(r2.eval_radius(), d);
      EXPECT_EQ(r2.antecedent().num_edges(), 2u);
    }
  }

  // Edge cap: no extensions beyond max_edges.
  auto capped = GenerateExtensions(level1[0].antecedent(),
                                   labels.Lookup("visit"), d, 1, seeds);
  EXPECT_TRUE(capped.empty());
}

TEST(DmineTest, CandidateCapDoesNotPoisonDedupState) {
  // Regression: the cap used to be applied AFTER every fresh pattern was
  // registered in seen_buckets, so a candidate dropped by the cap could
  // never re-enter in a later round (silently merged as "seen").
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  PNodeId x = base.AddNode(labels.Lookup("cust"));
  PNodeId y = base.AddNode(labels.Lookup("French_restaurant"));
  base.set_x(x);
  base.set_y(y);
  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  auto fresh = GenerateExtensions(base, labels.Lookup("visit"), 2, 4, seeds);

  // Two non-equivalent candidates, found via an uncapped side dedup.
  std::unordered_map<uint64_t, std::vector<Pattern>> probe;
  DmineStats probe_stats;
  auto distinct = DedupCandidates(fresh, fresh.size(), &probe, false,
                                  &probe_stats);
  ASSERT_GE(distinct.size(), 2u);
  std::vector<Gpar> round_a{fresh[distinct[0]], fresh[distinct[1]]};

  // Round A with cap 1: only the first candidate is kept and registered.
  std::unordered_map<uint64_t, std::vector<Pattern>> seen;
  DmineStats stats;
  auto kept = DedupCandidates(round_a, 1, &seen, false, &stats);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0u);
  EXPECT_EQ(stats.automorphic_merged, 0u);

  // Round B re-proposes the dropped candidate: it must re-enter, not be
  // deduped against a pattern that was never actually verified.
  std::vector<Gpar> round_b{fresh[distinct[1]]};
  auto kept_b = DedupCandidates(round_b, 10, &seen, false, &stats);
  ASSERT_EQ(kept_b.size(), 1u);
  EXPECT_EQ(stats.automorphic_merged, 0u);

  // The candidate that WAS kept in round A is seen and stays deduped.
  std::vector<Gpar> round_c{fresh[distinct[0]]};
  EXPECT_TRUE(DedupCandidates(round_c, 10, &seen, false, &stats).empty());
  EXPECT_EQ(stats.automorphic_merged, 1u);
}

TEST(DmineTest, DegenerateNoNegativePoolStaysFinite) {
  // Every cust's q-edge lands on a French restaurant: supp(~q) = 0, so
  // N = supp_q * supp_qbar = 0 and every rule would be a trivial logic
  // rule. Mining must return an empty, finite result — no NaN/inf from the
  // normalizer's division paths.
  GraphBuilder b;
  NodeId c1 = b.AddNode("cust");
  NodeId c2 = b.AddNode("cust");
  NodeId c3 = b.AddNode("cust");
  NodeId fr = b.AddNode("French_restaurant");
  ASSERT_TRUE(b.AddEdge(c1, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c2, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c3, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c1, "friend", c2).ok());
  ASSERT_TRUE(b.AddEdge(c2, "friend", c3).ok());
  Graph g = std::move(b).Build();
  Predicate q{g.labels().Lookup("cust"), g.labels().Lookup("visit"),
              g.labels().Lookup("French_restaurant")};

  auto result = Dmine(g, q, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.supp_q, 3u);
  EXPECT_EQ(result->stats.supp_qbar, 0u);
  EXPECT_TRUE(result->topk.empty());
  EXPECT_TRUE(std::isfinite(result->objective));
  EXPECT_EQ(result->objective, 0.0);
}

TEST(DmineTest, ParentPruneSkipsCentersAndPreservesResults) {
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.sigma = 2;

  auto pruned = Dmine(g, q, opt);
  DmineOptions no_prune = opt;
  no_prune.enable_parent_prune = false;
  auto unpruned = Dmine(g, q, no_prune);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());

  // The prune must actually engage on a multi-round workload...
  EXPECT_GT(pruned->stats.centers_skipped_by_parent, 0u);
  EXPECT_EQ(unpruned->stats.centers_skipped_by_parent, 0u);
  EXPECT_LT(pruned->stats.exists_calls, unpruned->stats.exists_calls);

  // ...without changing any result: same pool, same top-k, same stats.
  EXPECT_EQ(pruned->stats.accepted, unpruned->stats.accepted);
  EXPECT_EQ(pruned->stats.trivial_discarded, unpruned->stats.trivial_discarded);
  EXPECT_NEAR(pruned->objective, unpruned->objective, 1e-12);
  ASSERT_EQ(pruned->topk.size(), unpruned->topk.size());
  for (size_t i = 0; i < pruned->topk.size(); ++i) {
    const auto& a = pruned->topk[i];
    const auto& b2 = unpruned->topk[i];
    EXPECT_EQ(IsomorphismBucketKey(a->rule.pr()),
              IsomorphismBucketKey(b2->rule.pr()));
    EXPECT_EQ(a->supp, b2->supp);
    EXPECT_EQ(a->supp_qqbar, b2->supp_qqbar);
    EXPECT_DOUBLE_EQ(a->conf, b2->conf);
    EXPECT_EQ(a->matches, b2->matches);
  }
}

/// Builds a designated-preserving isomorphic copy of `r` by reversing the
/// antecedent's node declaration order — a distinct Gpar object that DMine's
/// automorphism dedup must collapse with the original.
Gpar IsomorphicCopy(const Gpar& r) {
  auto result = Gpar::Create(test::ReversedIsomorphicCopy(r.antecedent()),
                             r.q_label());
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

CandidateProposal MakeProposal(size_t parent, uint32_t ordinal,
                               uint32_t evidence, Gpar rule) {
  CandidateProposal p;
  p.parent = parent;
  p.ext_ordinal = ordinal;
  p.structural_hash = StructuralHash(rule.pr());
  p.local_evidence = evidence;
  p.rule = std::move(rule);
  return p;
}

TEST(DmineTest, MergeProposalsCollapsesCrossFragmentDuplicates) {
  // Two fragments where the same parent survives propose its extension set
  // independently; the coordinator must keep one copy per (parent, ordinal),
  // sum the support evidence, and emit the stream in centralized order
  // (parent ascending, then generation ordinal) regardless of which worker
  // proposed what.
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  base.set_x(base.AddNode(labels.Lookup("cust")));
  base.set_y(base.AddNode(labels.Lookup("French_restaurant")));
  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  auto fresh = GenerateExtensions(base, labels.Lookup("visit"), 2, 4, seeds);
  ASSERT_GE(fresh.size(), 2u);

  std::vector<std::vector<CandidateProposal>> per_worker(3);
  // Worker 0: parent 1's extension 0.
  per_worker[0].push_back(MakeProposal(1, 0, 3, fresh[0]));
  // Worker 1: parent 0's extensions 1 then 0 (proposal order within a worker
  // does not matter), plus the duplicate of parent 1's extension 0.
  per_worker[1].push_back(MakeProposal(0, 1, 2, fresh[1]));
  per_worker[1].push_back(MakeProposal(0, 0, 2, fresh[0]));
  per_worker[1].push_back(MakeProposal(1, 0, 4, fresh[0]));
  // Worker 2: another duplicate of parent 0's extension 1, plus a
  // *checksum-mismatched* proposal under parent 1's key 0 (a different
  // grown pattern claiming an already-used ordinal — an ownership bug the
  // merge must not paper over by dropping a rule).
  ASSERT_NE(StructuralHash(fresh[0].pr()), StructuralHash(fresh[1].pr()));
  per_worker[2].push_back(MakeProposal(0, 1, 5, fresh[1]));
  per_worker[2].push_back(MakeProposal(1, 0, 9, fresh[1]));

  DmineStats stats;
  auto merged = MergeProposals(std::move(per_worker), &stats);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(stats.cross_fragment_merged, 2u);
  EXPECT_EQ(merged[0].parent, 0u);
  EXPECT_EQ(merged[0].ext_ordinal, 0u);
  EXPECT_EQ(merged[0].local_evidence, 2u);
  EXPECT_EQ(merged[1].parent, 0u);
  EXPECT_EQ(merged[1].ext_ordinal, 1u);
  EXPECT_EQ(merged[1].local_evidence, 7u);  // 2 + 5, summed across proposers
  // The (1, 0) pair: the two checksum-agreeing proposals merged (3 + 4),
  // the mismatched one survived as its own candidate for the exact
  // automorphism tests downstream. Their relative order follows the
  // checksum tiebreaker, so identify them by payload.
  ASSERT_EQ(merged[2].parent, 1u);
  ASSERT_EQ(merged[2].ext_ordinal, 0u);
  ASSERT_EQ(merged[3].parent, 1u);
  ASSERT_EQ(merged[3].ext_ordinal, 0u);
  const CandidateProposal& dup =
      merged[2].local_evidence == 7u ? merged[2] : merged[3];
  const CandidateProposal& odd =
      merged[2].local_evidence == 7u ? merged[3] : merged[2];
  EXPECT_EQ(dup.local_evidence, 7u);
  EXPECT_EQ(dup.structural_hash, StructuralHash(fresh[0].pr()));
  EXPECT_EQ(odd.local_evidence, 9u);
  EXPECT_EQ(odd.structural_hash, StructuralHash(fresh[1].pr()));
}

TEST(DmineTest, CrossFragmentAutomorphicProposalsMergeWithoutPoisoning) {
  // Extends PR 2's cap regression to the decentralized path: two workers
  // proposing *automorphic* (not byte-equal) extensions of the same parent
  // under different ordinals survive the (parent, ordinal) merge, must then
  // be collapsed by the automorphism dedup with `automorphic_merged`
  // incremented — and a candidate dropped by the per-round cap must not be
  // poisoned as "seen" by its automorphic twin's rejection.
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  base.set_x(base.AddNode(labels.Lookup("cust")));
  base.set_y(base.AddNode(labels.Lookup("French_restaurant")));
  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  auto fresh = GenerateExtensions(base, labels.Lookup("visit"), 2, 4, seeds);

  std::unordered_map<uint64_t, std::vector<Pattern>> probe;
  DmineStats probe_stats;
  auto distinct =
      DedupCandidates(fresh, fresh.size(), &probe, false, &probe_stats);
  ASSERT_GE(distinct.size(), 3u);
  const Gpar& a = fresh[distinct[0]];
  const Gpar& b = fresh[distinct[1]];
  const Gpar& c = fresh[distinct[2]];
  Gpar a_twin = IsomorphicCopy(a);
  ASSERT_TRUE(AreIsomorphic(a.pr(), a_twin.pr(), /*preserve_designated=*/true));

  // Workers 0 and 1 propose automorphic copies of the same parent's
  // extension under different ordinals; worker 1 also proposes b and c.
  std::vector<std::vector<CandidateProposal>> per_worker(2);
  per_worker[0].push_back(MakeProposal(0, 0, 1, a));
  per_worker[1].push_back(MakeProposal(0, 1, 1, a_twin));
  per_worker[1].push_back(MakeProposal(0, 2, 1, b));
  per_worker[1].push_back(MakeProposal(0, 3, 1, c));

  DmineStats stats;
  auto merged = MergeProposals(std::move(per_worker), &stats);
  ASSERT_EQ(merged.size(), 4u);  // different ordinals: not ordinal-duplicates
  EXPECT_EQ(stats.cross_fragment_merged, 0u);

  std::vector<Gpar> stream;
  for (auto& p : merged) stream.push_back(std::move(p.rule));

  // Cap 2: `a` is kept; its automorphic twin is merged (a merge does not
  // consume cap budget — `b` still enters); `c` is dropped by the cap and
  // must NOT be registered as seen.
  std::unordered_map<uint64_t, std::vector<Pattern>> seen;
  auto kept = DedupCandidates(stream, 2, &seen, false, &stats);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 0u);  // a
  EXPECT_EQ(kept[1], 2u);  // b — the twin at index 1 was merged away
  EXPECT_EQ(stats.automorphic_merged, 1u);

  // A later round re-proposes c: it must re-enter...
  std::vector<Gpar> round_b{c};
  EXPECT_EQ(DedupCandidates(round_b, 10, &seen, false, &stats).size(), 1u);
  EXPECT_EQ(stats.automorphic_merged, 1u);
  // ...while re-proposals of a (or its twin) stay merged.
  std::vector<Gpar> round_c{IsomorphicCopy(a)};
  EXPECT_TRUE(DedupCandidates(round_c, 10, &seen, false, &stats).empty());
  EXPECT_EQ(stats.automorphic_merged, 2u);
}

TEST(DmineTest, WorkerGenProposalStatsAreConsistent) {
  // End-to-end bookkeeping on a multi-fragment run: every worker reports
  // its proposal volume, single-owner assignment spreads generation across
  // several workers without ever double-proposing a (parent, extension)
  // key, and raw volume = unique candidates + cross-fragment duplicates.
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.num_workers = 4;
  opt.sigma = 2;

  auto result = Dmine(g, q, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->stats.proposals_per_worker.size(), 4u);
  uint64_t raw = 0;
  uint32_t proposing_workers = 0;
  for (uint64_t p : result->stats.proposals_per_worker) {
    raw += p;
    if (p > 0) ++proposing_workers;
  }
  EXPECT_GT(raw, 0u);
  // Ownership round-robins over surviving fragments: generation work lands
  // on more than one worker...
  EXPECT_GT(proposing_workers, 1u);
  // ...and never duplicates a proposal across fragments.
  EXPECT_EQ(result->stats.cross_fragment_merged, 0u);
  EXPECT_EQ(raw, result->stats.candidates_generated +
                     result->stats.cross_fragment_merged);

  // The centralized path generates the identical unique stream and reports
  // no proposal traffic.
  DmineOptions central = opt;
  central.enable_worker_gen = false;
  auto central_run = Dmine(g, q, central);
  ASSERT_TRUE(central_run.ok());
  EXPECT_TRUE(central_run->stats.proposals_per_worker.empty());
  EXPECT_EQ(central_run->stats.cross_fragment_merged, 0u);
  EXPECT_EQ(central_run->stats.candidates_generated,
            result->stats.candidates_generated);
  EXPECT_EQ(central_run->stats.candidates_verified,
            result->stats.candidates_verified);
  EXPECT_EQ(central_run->stats.automorphic_merged,
            result->stats.automorphic_merged);
}

TEST(DmineTest, WorksOnSyntheticGraph) {
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.sigma = 2;
  auto result = Dmine(g, q, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.candidates_verified, 0u);
  // The shared plan store (on by default) plans each round's patterns once
  // and serves every worker probe from the same read-only entries.
  EXPECT_GT(result->stats.plans_prepared, 0u);
  // Every worker-loop probe (round-0 P_q plus each candidate's P_R and
  // x-component, all anchored at x) is served by the store.
  EXPECT_EQ(result->stats.plans_shared_hits, result->stats.exists_calls);
}

}  // namespace
}  // namespace gpar
