#include "mine/dmine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "mine/naive_miner.h"
#include "pattern/automorphism.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

DmineOptions SmallOptions() {
  DmineOptions opt;
  opt.num_workers = 2;
  opt.k = 2;
  opt.d = 2;
  opt.sigma = 1;
  opt.lambda = 0.5;
  opt.max_pattern_edges = 4;
  opt.seed_edge_limit = 8;
  opt.max_candidates_per_round = 200;
  return opt;
}

/// Canonical fingerprint of a mined pool: per rule, (bucket key, supp,
/// supp_qqbar) sorted — two runs with equal fingerprints found the same
/// rules with the same statistics.
std::vector<std::string> PoolFingerprint(
    const std::vector<std::shared_ptr<MinedRule>>& pool) {
  std::vector<std::string> out;
  for (const auto& r : pool) {
    out.push_back(IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                  std::to_string(r->supp) + "|n=" +
                  std::to_string(r->supp_qqbar));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DmineTest, DiscoversRulesOnG1) {
  PaperG1 g1 = MakePaperG1();
  auto result = Dmine(g1.graph, g1.q, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.supp_q, 5u);
  EXPECT_EQ(result->stats.supp_qbar, 1u);
  EXPECT_GT(result->stats.accepted, 0u);
  ASSERT_EQ(result->topk.size(), 2u);
  EXPECT_GT(result->objective, 0.9);  // at least Example 9's round-1 value

  // Every reported rule's statistics must agree with a from-scratch
  // sequential evaluation (cross-validation of the parallel assembly).
  VF2Matcher m(g1.graph);
  QStats stats = ComputeQStats(m, g1.q);
  for (const auto& r : result->topk) {
    GparEval eval = EvaluateGpar(m, r->rule, stats,
                                 {.compute_antecedent_images = false});
    EXPECT_EQ(r->supp, eval.supp_r);
    EXPECT_EQ(r->supp_qqbar, eval.supp_qqbar);
    EXPECT_DOUBLE_EQ(r->conf, eval.conf);
    EXPECT_EQ(r->matches, eval.pr_matches);
    EXPECT_LE(r->rule.radius_at_x(), SmallOptions().d);
    EXPECT_GE(r->supp, SmallOptions().sigma);
  }
}

TEST(DmineTest, PoolIndependentOfWorkerCount) {
  // Parallel correctness: the accepted rule pool (with exact supports) must
  // not depend on n. Reduction rules are disabled so pruning order cannot
  // mask differences.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  std::vector<std::string> reference;
  for (uint32_t n : {1u, 2u, 4u}) {
    opt.num_workers = n;
    auto result = Dmine(g1.graph, g1.q, opt);
    ASSERT_TRUE(result.ok());
    // Recover the pool from stats: compare via accepted counts + topk only
    // is weak; rerun and compare pool fingerprints via NaiveMine below.
    if (reference.empty()) {
      reference.push_back(std::to_string(result->stats.accepted));
    } else {
      EXPECT_EQ(reference[0], std::to_string(result->stats.accepted))
          << "accepted pool size differs at n=" << n;
    }
    EXPECT_GT(result->objective, 0.0);
  }
}

TEST(DmineTest, MatchesNaiveMinerOracle) {
  // DMine without reduction pruning must discover exactly the same rules
  // with the same supports as the sequential exhaustive miner.
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.enable_reduction_rules = false;

  auto naive = NaiveMine(g1.graph, g1.q, opt);
  ASSERT_TRUE(naive.ok());
  ASSERT_GT(naive->all_rules.size(), 0u);

  opt.num_workers = 3;
  auto parallel = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->stats.accepted, naive->all_rules.size());

  // Compare via sequential re-evaluation of DMine's top-k against the
  // naive pool fingerprints.
  auto naive_fp = PoolFingerprint(naive->all_rules);
  for (const auto& r : parallel->topk) {
    std::string fp = IsomorphismBucketKey(r->rule.pr()) + "|s=" +
                     std::to_string(r->supp) + "|n=" +
                     std::to_string(r->supp_qqbar);
    EXPECT_TRUE(std::binary_search(naive_fp.begin(), naive_fp.end(), fp))
        << "DMine produced a rule the oracle does not know: " << fp;
  }
}

TEST(DmineTest, DmineNoFindsSameQualityTopK) {
  // DMineno (no optimizations) is slower but must reach a top-k of the
  // same objective quality (both are 2-approximations; the greedy choices
  // coincide on this small instance).
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  auto fast = Dmine(g1.graph, g1.q, opt);
  auto slow = Dmine(g1.graph, g1.q, DmineNoOptions(opt));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(fast->objective, slow->objective, 1e-9);
}

TEST(DmineTest, SupportThresholdFilters) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.sigma = 4;  // only rules with supp >= 4 survive
  auto result = Dmine(g1.graph, g1.q, opt);
  ASSERT_TRUE(result.ok());
  for (const auto& r : result->topk) {
    EXPECT_GE(r->supp, 4u);
  }
}

TEST(DmineTest, TrivialPredicateYieldsEmptyResult) {
  PaperG1 g1 = MakePaperG1();
  Predicate q = g1.q;
  q.edge_label = g1.graph.labels().Lookup("live_in");
  q.y_label = g1.graph.labels().Lookup("Asian_restaurant");  // nobody
  auto result = Dmine(g1.graph, q, SmallOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.supp_q, 0u);
  EXPECT_TRUE(result->topk.empty());
}

TEST(DmineTest, InvalidOptionsRejected) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt = SmallOptions();
  opt.num_workers = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.k = 1;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
  opt = SmallOptions();
  opt.d = 0;
  EXPECT_FALSE(Dmine(g1.graph, g1.q, opt).ok());
}

TEST(DmineTest, BisimPrefilterDoesNotChangeDedup) {
  // Lemma 4 guarantees the prefilter never merges non-automorphic rules:
  // candidate counts with and without it must be identical.
  PaperG1 g1 = MakePaperG1();
  DmineOptions with = SmallOptions();
  DmineOptions without = SmallOptions();
  without.enable_bisim_prefilter = false;
  auto a = Dmine(g1.graph, g1.q, with);
  auto b = Dmine(g1.graph, g1.q, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.candidates_verified, b->stats.candidates_verified);
  EXPECT_EQ(a->stats.automorphic_merged, b->stats.automorphic_merged);
  EXPECT_GT(a->stats.bisim_tests, 0u);
  EXPECT_EQ(b->stats.bisim_tests, 0u);
  // The prefilter skips exact iso tests for non-bisimilar pairs.
  EXPECT_LE(a->stats.iso_tests, b->stats.iso_tests);
}

TEST(DmineTest, GenerateExtensionsRadiusDiscipline) {
  // One-edge extensions of the bare predicate, and of those, stay within
  // the radius bound d — measured on P_R *and* on the antecedent's
  // x-component (eval_radius).
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  PNodeId x = base.AddNode(labels.Lookup("cust"));
  PNodeId y = base.AddNode(labels.Lookup("French_restaurant"));
  base.set_x(x);
  base.set_y(y);

  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  const uint32_t d = 2;
  auto level1 = GenerateExtensions(base, labels.Lookup("visit"), d, 4, seeds);
  ASSERT_GT(level1.size(), 0u);
  for (const Gpar& r : level1) {
    EXPECT_LE(r.eval_radius(), d);
    EXPECT_EQ(r.antecedent().num_edges(), 1u);
  }

  for (const Gpar& r : level1) {
    auto level2 = GenerateExtensions(r.antecedent(), labels.Lookup("visit"),
                                     d, 4, seeds);
    for (const Gpar& r2 : level2) {
      EXPECT_LE(r2.eval_radius(), d);
      EXPECT_EQ(r2.antecedent().num_edges(), 2u);
    }
  }

  // Edge cap: no extensions beyond max_edges.
  auto capped = GenerateExtensions(level1[0].antecedent(),
                                   labels.Lookup("visit"), d, 1, seeds);
  EXPECT_TRUE(capped.empty());
}

TEST(DmineTest, CandidateCapDoesNotPoisonDedupState) {
  // Regression: the cap used to be applied AFTER every fresh pattern was
  // registered in seen_buckets, so a candidate dropped by the cap could
  // never re-enter in a later round (silently merged as "seen").
  PaperG1 g1 = MakePaperG1();
  const Interner& labels = g1.graph.labels();
  Pattern base;
  PNodeId x = base.AddNode(labels.Lookup("cust"));
  PNodeId y = base.AddNode(labels.Lookup("French_restaurant"));
  base.set_x(x);
  base.set_y(y);
  auto seeds = FrequentEdgePatterns(g1.graph, 8);
  auto fresh = GenerateExtensions(base, labels.Lookup("visit"), 2, 4, seeds);

  // Two non-equivalent candidates, found via an uncapped side dedup.
  std::map<std::string, std::vector<Pattern>> probe;
  DmineStats probe_stats;
  auto distinct = DedupCandidates(fresh, fresh.size(), &probe, false,
                                  &probe_stats);
  ASSERT_GE(distinct.size(), 2u);
  std::vector<Gpar> round_a{fresh[distinct[0]], fresh[distinct[1]]};

  // Round A with cap 1: only the first candidate is kept and registered.
  std::map<std::string, std::vector<Pattern>> seen;
  DmineStats stats;
  auto kept = DedupCandidates(round_a, 1, &seen, false, &stats);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0u);
  EXPECT_EQ(stats.automorphic_merged, 0u);

  // Round B re-proposes the dropped candidate: it must re-enter, not be
  // deduped against a pattern that was never actually verified.
  std::vector<Gpar> round_b{fresh[distinct[1]]};
  auto kept_b = DedupCandidates(round_b, 10, &seen, false, &stats);
  ASSERT_EQ(kept_b.size(), 1u);
  EXPECT_EQ(stats.automorphic_merged, 0u);

  // The candidate that WAS kept in round A is seen and stays deduped.
  std::vector<Gpar> round_c{fresh[distinct[0]]};
  EXPECT_TRUE(DedupCandidates(round_c, 10, &seen, false, &stats).empty());
  EXPECT_EQ(stats.automorphic_merged, 1u);
}

TEST(DmineTest, DegenerateNoNegativePoolStaysFinite) {
  // Every cust's q-edge lands on a French restaurant: supp(~q) = 0, so
  // N = supp_q * supp_qbar = 0 and every rule would be a trivial logic
  // rule. Mining must return an empty, finite result — no NaN/inf from the
  // normalizer's division paths.
  GraphBuilder b;
  NodeId c1 = b.AddNode("cust");
  NodeId c2 = b.AddNode("cust");
  NodeId c3 = b.AddNode("cust");
  NodeId fr = b.AddNode("French_restaurant");
  ASSERT_TRUE(b.AddEdge(c1, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c2, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c3, "visit", fr).ok());
  ASSERT_TRUE(b.AddEdge(c1, "friend", c2).ok());
  ASSERT_TRUE(b.AddEdge(c2, "friend", c3).ok());
  Graph g = std::move(b).Build();
  Predicate q{g.labels().Lookup("cust"), g.labels().Lookup("visit"),
              g.labels().Lookup("French_restaurant")};

  auto result = Dmine(g, q, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.supp_q, 3u);
  EXPECT_EQ(result->stats.supp_qbar, 0u);
  EXPECT_TRUE(result->topk.empty());
  EXPECT_TRUE(std::isfinite(result->objective));
  EXPECT_EQ(result->objective, 0.0);
}

TEST(DmineTest, ParentPruneSkipsCentersAndPreservesResults) {
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.sigma = 2;

  auto pruned = Dmine(g, q, opt);
  DmineOptions no_prune = opt;
  no_prune.enable_parent_prune = false;
  auto unpruned = Dmine(g, q, no_prune);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());

  // The prune must actually engage on a multi-round workload...
  EXPECT_GT(pruned->stats.centers_skipped_by_parent, 0u);
  EXPECT_EQ(unpruned->stats.centers_skipped_by_parent, 0u);
  EXPECT_LT(pruned->stats.exists_calls, unpruned->stats.exists_calls);

  // ...without changing any result: same pool, same top-k, same stats.
  EXPECT_EQ(pruned->stats.accepted, unpruned->stats.accepted);
  EXPECT_EQ(pruned->stats.trivial_discarded, unpruned->stats.trivial_discarded);
  EXPECT_NEAR(pruned->objective, unpruned->objective, 1e-12);
  ASSERT_EQ(pruned->topk.size(), unpruned->topk.size());
  for (size_t i = 0; i < pruned->topk.size(); ++i) {
    const auto& a = pruned->topk[i];
    const auto& b2 = unpruned->topk[i];
    EXPECT_EQ(IsomorphismBucketKey(a->rule.pr()),
              IsomorphismBucketKey(b2->rule.pr()));
    EXPECT_EQ(a->supp, b2->supp);
    EXPECT_EQ(a->supp_qqbar, b2->supp_qqbar);
    EXPECT_DOUBLE_EQ(a->conf, b2->conf);
    EXPECT_EQ(a->matches, b2->matches);
  }
}

TEST(DmineTest, WorksOnSyntheticGraph) {
  Graph g = MakeSynthetic(400, 1200, 20, 5);
  auto freq = FrequentEdgePatterns(g, 1);
  ASSERT_FALSE(freq.empty());
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  DmineOptions opt = SmallOptions();
  opt.sigma = 2;
  auto result = Dmine(g, q, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->stats.candidates_verified, 0u);
}

}  // namespace
}  // namespace gpar
