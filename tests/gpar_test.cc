#include "rule/gpar.h"

#include <gtest/gtest.h>

#include "graph/paper_graphs.h"
#include "mine/multi_dmine.h"
#include "pattern/pattern_ops.h"

namespace gpar {
namespace {

class GparTest : public ::testing::Test {
 protected:
  Interner labels_;
  LabelId cust_ = labels_.Intern("cust");
  LabelId fr_ = labels_.Intern("fr");
  LabelId friend_ = labels_.Intern("friend");
  LabelId visit_ = labels_.Intern("visit");
  LabelId like_ = labels_.Intern("like");

  Pattern SimpleAntecedent() {
    Pattern p;
    PNodeId x = p.AddNode(cust_);
    PNodeId xp = p.AddNode(cust_);
    PNodeId y = p.AddNode(fr_);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_, xp);
    p.AddEdge(xp, visit_, y);
    return p;
  }
};

TEST_F(GparTest, CreateValidations) {
  // Missing y.
  {
    Pattern p;
    PNodeId x = p.AddNode(cust_);
    PNodeId xp = p.AddNode(cust_);
    p.AddEdge(x, friend_, xp);
    p.set_x(x);
    EXPECT_FALSE(Gpar::Create(std::move(p), visit_).ok());
  }
  // Empty antecedent.
  {
    Pattern p;
    PNodeId x = p.AddNode(cust_);
    PNodeId y = p.AddNode(fr_);
    p.set_x(x);
    p.set_y(y);
    EXPECT_FALSE(Gpar::Create(std::move(p), visit_).ok());
  }
  // q(x, y) already in Q.
  {
    Pattern p = SimpleAntecedent();
    p.AddEdge(p.x(), visit_, p.y());
    EXPECT_FALSE(Gpar::Create(std::move(p), visit_).ok());
  }
  // x == y.
  {
    Pattern p;
    PNodeId x = p.AddNode(cust_);
    PNodeId z = p.AddNode(cust_);
    p.AddEdge(x, friend_, z);
    p.set_x(x);
    p.set_y(x);
    EXPECT_FALSE(Gpar::Create(std::move(p), visit_).ok());
  }
  // Valid.
  EXPECT_TRUE(Gpar::Create(SimpleAntecedent(), visit_).ok());
}

TEST_F(GparTest, PrAddsExactlyTheConsequent) {
  Gpar r = Gpar::Create(SimpleAntecedent(), visit_).value();
  EXPECT_EQ(r.pr().num_edges(), r.antecedent().num_edges() + 1);
  const PatternEdge& last = r.pr().edge(r.pr().num_edges() - 1);
  EXPECT_EQ(last.src, r.pr().x());
  EXPECT_EQ(last.dst, r.pr().y());
  EXPECT_EQ(last.label, visit_);
  Predicate q = r.predicate();
  EXPECT_EQ(q.x_label, cust_);
  EXPECT_EQ(q.edge_label, visit_);
  EXPECT_EQ(q.y_label, fr_);
}

TEST_F(GparTest, ComponentDecompositionConnected) {
  Gpar r = Gpar::Create(SimpleAntecedent(), visit_).value();
  // Q is connected: x-component is the whole antecedent, no others.
  EXPECT_EQ(r.x_component().num_nodes(), 3u);
  EXPECT_TRUE(r.other_components().empty());
  // eval radius: in Q, y sits two hops from x (via x'); P_R has it at 1.
  EXPECT_EQ(r.radius_at_x(), 1u);
  EXPECT_EQ(r.eval_radius(), 2u);
}

TEST_F(GparTest, ComponentDecompositionIsolatedY) {
  // Q = like(x, f) with isolated y: the x-component is {x, f}; {y} is a
  // residual component checked globally.
  Pattern p;
  PNodeId x = p.AddNode(cust_);
  PNodeId f = p.AddNode(fr_);
  PNodeId y = p.AddNode(fr_);
  p.set_x(x);
  p.set_y(y);
  p.AddEdge(x, like_, f);
  Gpar r = Gpar::Create(std::move(p), visit_).value();
  EXPECT_EQ(r.x_component().num_nodes(), 2u);
  ASSERT_EQ(r.other_components().size(), 1u);
  EXPECT_EQ(r.other_components()[0].num_nodes(), 1u);
  EXPECT_EQ(r.other_components()[0].node(0).label, fr_);
}

TEST_F(GparTest, SerializeParseRoundTrip) {
  PaperG1 g1 = MakePaperG1();
  Interner* labels = g1.graph.mutable_labels();
  for (const Gpar* r : {&g1.r1, &g1.r5, &g1.r6, &g1.r7, &g1.r8}) {
    std::string text = r->Serialize(*labels);
    auto parsed = Gpar::Parse(text, labels);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    EXPECT_TRUE(*parsed == *r);
  }
}

TEST_F(GparTest, SerializeSetRoundTrip) {
  PaperG1 g1 = MakePaperG1();
  Interner* labels = g1.graph.mutable_labels();
  std::vector<Gpar> rules{g1.r1, g1.r5, g1.r8};
  std::string text = Gpar::SerializeSet(rules, *labels);
  auto parsed = Gpar::ParseSet(text, labels);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_TRUE((*parsed)[i] == rules[i]);
  }
}

TEST_F(GparTest, ParseRejectsGarbage) {
  Interner in;
  EXPECT_FALSE(Gpar::Parse("", &in).ok());
  EXPECT_FALSE(Gpar::Parse("n 0 cust x\n", &in).ok());       // no q line
  EXPECT_FALSE(Gpar::Parse("q visit\n", &in).ok());          // no pattern
  EXPECT_FALSE(Gpar::ParseSet("nonsense\n---\n", &in).ok());
}

TEST(MultiDmineTest, MinesEachDistinctPredicateOnce) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt;
  opt.num_workers = 2;
  opt.k = 2;
  opt.d = 2;
  opt.sigma = 1;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 8;

  std::vector<Predicate> predicates{g1.q, g1.q};  // duplicate collapses
  auto result = DmineForPredicates(g1.graph, predicates, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->per_predicate.size(), 1u);
  EXPECT_GT(result->per_predicate[0].second.stats.accepted, 0u);
}

TEST(MultiDmineTest, AutoCollectsFrequentPredicates) {
  PaperG1 g1 = MakePaperG1();
  DmineOptions opt;
  opt.num_workers = 2;
  opt.k = 2;
  opt.d = 2;
  opt.sigma = 1;
  opt.max_pattern_edges = 2;
  opt.seed_edge_limit = 6;

  auto result = DmineAuto(g1.graph, opt, /*num_predicates=*/3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->per_predicate.size(), 1u);
  EXPECT_LE(result->per_predicate.size(), 3u);

  // Filtered variant: only visit predicates.
  auto visits = DmineAuto(g1.graph, opt, 3,
                          g1.graph.labels().Lookup("visit"));
  ASSERT_TRUE(visits.ok());
  for (const auto& [q, r] : visits->per_predicate) {
    EXPECT_EQ(q.edge_label, g1.graph.labels().Lookup("visit"));
  }
}

}  // namespace
}  // namespace gpar
