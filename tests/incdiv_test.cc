// Tests incDiv and the Lemma-3 reduction rules against the hand-computable
// rule universe of the paper's Example 9 (rules R5-R8 over G1).

#include "mine/inc_div.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "mine/reduction.h"
#include "rule/diversity.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

std::shared_ptr<MinedRule> MakeRule(const Gpar& g, Matcher& m,
                                    const QStats& stats) {
  auto r = std::make_shared<MinedRule>();
  r->rule = g;
  GparEval eval = EvaluateGpar(m, g, stats, {.compute_antecedent_images = false});
  r->supp = eval.supp_r;
  r->supp_qqbar = eval.supp_qqbar;
  r->conf = eval.conf;
  r->matches = eval.pr_matches;
  r->extendable = true;
  return r;
}

class IncDivTest : public ::testing::Test {
 protected:
  IncDivTest() : g1_(MakePaperG1()), m_(g1_.graph) {
    stats_ = ComputeQStats(m_, g1_.q);
    n_norm_ = static_cast<double>(stats_.supp_q * stats_.supp_qbar);
  }
  PaperG1 g1_;
  VF2Matcher m_;
  QStats stats_;
  double n_norm_;
};

TEST_F(IncDivTest, Example9RoundOne) {
  // Round 1: ΔE = {R5, R6}; queue fills with the pair (R5, R6), F' = 0.92.
  IncDiv inc(/*k=*/2, /*lambda=*/0.5, n_norm_);
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  std::vector<std::shared_ptr<MinedRule>> delta{r5, r6};
  std::vector<std::shared_ptr<MinedRule>> sigma = delta;
  inc.AddRound(delta, sigma);

  EXPECT_NEAR(inc.MinPairFPrime(), 0.92, 1e-12);
  auto topk = inc.TopK();
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_TRUE(inc.InQueue(r5.get()));
  EXPECT_TRUE(inc.InQueue(r6.get()));
}

TEST_F(IncDivTest, Example9RoundTwoReplacesTheQueuePair) {
  // Round 2: ΔE = {R7, R8}. Exactly the paper's trace: members of the
  // current queue (R5, R6) are not available as partners (queue pairs are
  // pairwise disjoint), so R7's best partner is R8 with F'(R7, R8) = 1.08 >
  // F'(R5, R6) = 0.92 — the pair is replaced and L_k becomes {R7, R8}.
  IncDiv inc(2, 0.5, n_norm_);
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  auto r7 = MakeRule(g1_.r7, m_, stats_);
  auto r8 = MakeRule(g1_.r8, m_, stats_);

  std::vector<std::shared_ptr<MinedRule>> sigma{r5, r6};
  inc.AddRound({r5, r6}, sigma);
  ASSERT_NEAR(inc.MinPairFPrime(), 0.92, 1e-12);

  sigma.push_back(r7);
  sigma.push_back(r8);
  inc.AddRound({r7, r8}, sigma);

  EXPECT_FALSE(inc.InQueue(r5.get()));
  EXPECT_FALSE(inc.InQueue(r6.get()));
  EXPECT_TRUE(inc.InQueue(r7.get()));
  EXPECT_TRUE(inc.InQueue(r8.get()));
  EXPECT_NEAR(inc.MinPairFPrime(), 1.08, 1e-12);

  // Objective F(L_k) = F({R7, R8}) = 1.08, the paper's Example 8 value.
  EXPECT_NEAR(inc.Objective(), 1.08, 1e-12);
}

TEST_F(IncDivTest, QueueNotFullMeansNoPruningThreshold) {
  IncDiv inc(6, 0.5, n_norm_);  // needs 3 pairs
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  std::vector<std::shared_ptr<MinedRule>> sigma{r5, r6};
  inc.AddRound({r5, r6}, sigma);
  EXPECT_EQ(inc.MinPairFPrime(), -std::numeric_limits<double>::infinity());
}

TEST_F(IncDivTest, DegenerateNormalizerStillRanksByDiversity) {
  // N = 0 (no ~q pool): the confidence term of F' vanishes, but the queue
  // must still fill and rank pairs by the diversity term — and everything
  // stays finite (the old FPrime returned a flat 0 here, collapsing the
  // ranking; worse, inf confidences could surface NaN).
  IncDiv inc(2, 0.5, /*n_norm=*/0.0);
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  auto r8 = MakeRule(g1_.r8, m_, stats_);
  std::vector<std::shared_ptr<MinedRule>> sigma{r5, r6, r8};
  inc.AddRound(sigma, sigma);

  auto topk = inc.TopK();
  ASSERT_EQ(topk.size(), 2u);
  EXPECT_TRUE(std::isfinite(inc.MinPairFPrime()));
  EXPECT_TRUE(std::isfinite(inc.Objective()));
  // The max-diff pair wins: R5 ({c1..c4}) and R8 ({c6}) are disjoint
  // (diff = 1), beating any pair overlapping on matches.
  double diff = JaccardDistance(topk[0]->matches, topk[1]->matches);
  EXPECT_DOUBLE_EQ(diff, 1.0);
}

TEST_F(IncDivTest, PrunedRulesAreNotPaired) {
  IncDiv inc(2, 0.5, n_norm_);
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  r5->pruned = true;
  auto r8 = MakeRule(g1_.r8, m_, stats_);
  std::vector<std::shared_ptr<MinedRule>> sigma{r5, r6, r8};
  inc.AddRound({r5, r6, r8}, sigma);
  EXPECT_FALSE(inc.InQueue(r5.get()));
}

TEST_F(IncDivTest, FullDiversifyMatchesGreedyChoice) {
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  auto r6 = MakeRule(g1_.r6, m_, stats_);
  auto r7 = MakeRule(g1_.r7, m_, stats_);
  auto r8 = MakeRule(g1_.r8, m_, stats_);
  std::vector<std::shared_ptr<MinedRule>> pool{r5, r6, r7, r8};
  auto topk = FullDiversify(pool, 2, 0.5, n_norm_);
  ASSERT_EQ(topk.size(), 2u);
  // Best pair by F' over the pool: (R5, R6)? F'(R5,R6)=0.92;
  // (R5,R8): conf 0.8+0.2, diff({c1..c4},{c6})=1 -> 0.1+1=1.1;
  // (R7,R6): 1.1; (R5,R7): low diff; (R7,R8): 1.08; (R6,R8) diff({c4,c6},{c6})=0.5 -> 0.56.
  // Greedy picks one of the 1.1 pairs.
  double conf_sum = topk[0]->conf + topk[1]->conf;
  double diff = JaccardDistance(topk[0]->matches, topk[1]->matches);
  EXPECT_NEAR(FPrime(topk[0]->conf, topk[1]->conf, diff, 0.5, n_norm_, 2),
              1.1, 1e-12);
  (void)conf_sum;
}

class ReductionTest : public IncDivTest {};

TEST_F(ReductionTest, UConfPlusAssembly) {
  // Uconf+(R) = Usupp * supp(~q) / supp(q).
  EXPECT_DOUBLE_EQ(UConfPlus(4, 1, 5), 0.8);
  EXPECT_DOUBLE_EQ(UConfPlus(0, 1, 5), 0.0);
  EXPECT_DOUBLE_EQ(UConfPlus(4, 1, 0), 0.0);  // guarded
}

TEST_F(ReductionTest, NoPruningWhileQueueUnfilled) {
  auto r5 = MakeRule(g1_.r5, m_, stats_);
  r5->uconf_plus = 0.1;
  std::vector<std::shared_ptr<MinedRule>> sigma{r5};
  auto stats = ApplyReductionRules(
      sigma, sigma, -std::numeric_limits<double>::infinity(), 0.5, n_norm_, 2,
      [](const MinedRule*) { return false; });
  EXPECT_EQ(stats.pruned_sigma, 0u);
  EXPECT_FALSE(r5->pruned);
}

TEST_F(ReductionTest, HighThresholdPrunesWeakRules) {
  // With lambda = 0 the diversity term vanishes, so the Lemma-3 bound is
  // conf-only and easy to trip.
  auto weak = MakeRule(g1_.r8, m_, stats_);   // conf 0.2
  auto strong = MakeRule(g1_.r5, m_, stats_); // conf 0.8
  weak->uconf_plus = 0.0;
  weak->extendable = true;
  strong->uconf_plus = 0.9;
  strong->extendable = true;
  std::vector<std::shared_ptr<MinedRule>> sigma{weak, strong};
  std::vector<std::shared_ptr<MinedRule>> delta{weak, strong};

  // F'm set above any achievable bound for `weak`:
  // bound(weak) = (1-0)/ (N*(k-1)) * (0.2 + maxUconf+) + 0.
  double fm = 1.0;  // generous
  auto rstats = ApplyReductionRules(sigma, delta, fm, /*lambda=*/0.0, n_norm_,
                                    2, [](const MinedRule*) { return false; });
  EXPECT_TRUE(weak->pruned);
  EXPECT_GT(rstats.pruned_sigma + rstats.pruned_delta, 0u);
}

TEST_F(ReductionTest, QueueMembersAreExempt) {
  auto weak = MakeRule(g1_.r8, m_, stats_);
  weak->uconf_plus = 0;
  std::vector<std::shared_ptr<MinedRule>> sigma{weak};
  ApplyReductionRules(sigma, sigma, 100.0, 0.0, n_norm_, 2,
                      [&](const MinedRule* r) { return r == weak.get(); });
  EXPECT_FALSE(weak->pruned);
}

}  // namespace
}  // namespace gpar
