#include "rule/multi_consequent.h"

#include <gtest/gtest.h>

#include "graph/paper_graphs.h"
#include "match/matcher.h"
#include "rule/metrics.h"

namespace gpar {
namespace {

class MultiConsequentTest : public ::testing::Test {
 protected:
  MultiConsequentTest() : g1_(MakePaperG1()), m_(g1_.graph) {
    labels_ = &g1_.graph.labels();
    cust_ = labels_->Lookup("cust");
    fr_ = labels_->Lookup("French_restaurant");
    friend_ = labels_->Lookup("friend");
    visit_ = labels_->Lookup("visit");
    like_ = labels_->Lookup("like");
  }

  PaperG1 g1_;
  VF2Matcher m_;
  const Interner* labels_;
  LabelId cust_, fr_, friend_, visit_, like_;
};

TEST_F(MultiConsequentTest, SinglePredicateReducesToGpar) {
  // Q = friend(x, x') + visit(x', y); consequent visit(x, y). The m = 1
  // multi-consequent rule must agree with the plain Gpar machinery.
  Pattern q;
  PNodeId x = q.AddNode(cust_);
  PNodeId xp = q.AddNode(cust_);
  PNodeId y = q.AddNode(fr_);
  q.set_x(x);
  q.set_y(y);
  q.AddEdge(x, friend_, xp);
  q.AddEdge(xp, visit_, y);

  auto multi = MultiConsequentGpar::Create(q, {{visit_, y}});
  ASSERT_TRUE(multi.ok()) << multi.status();
  MultiConsequentEval me = EvaluateMultiConsequent(m_, *multi);

  Gpar single = Gpar::Create(q, visit_).value();
  QStats stats = ComputeQStats(m_, single.predicate());
  GparEval se = EvaluateGpar(m_, single, stats);

  EXPECT_EQ(me.supp_r, se.supp_r);
  EXPECT_EQ(me.supp_q, stats.supp_q);
  EXPECT_EQ(me.supp_qbar, stats.supp_qbar);
  EXPECT_EQ(me.supp_qqbar, se.supp_qqbar);
  EXPECT_DOUBLE_EQ(me.conf, se.conf);
  EXPECT_EQ(me.pr_matches, se.pr_matches);
}

TEST_F(MultiConsequentTest, ConjunctionIsStricterThanEachConjunct) {
  // Consequent: visit(x, y) ∧ like(x, f). Matches must satisfy both, so
  // the composite support is bounded by each single-consequent support.
  Pattern q;
  PNodeId x = q.AddNode(cust_);
  PNodeId xp = q.AddNode(cust_);
  PNodeId y = q.AddNode(fr_);
  PNodeId f = q.AddNode(fr_);
  q.set_x(x);
  q.set_y(y);
  q.AddEdge(x, friend_, xp);
  q.AddEdge(xp, visit_, y);
  q.AddEdge(xp, like_, f);

  auto both =
      MultiConsequentGpar::Create(q, {{visit_, y}, {like_, f}});
  ASSERT_TRUE(both.ok()) << both.status();
  MultiConsequentEval be = EvaluateMultiConsequent(m_, *both);

  auto only_visit = MultiConsequentGpar::Create(q, {{visit_, y}});
  ASSERT_TRUE(only_visit.ok());
  MultiConsequentEval ve = EvaluateMultiConsequent(m_, *only_visit);

  EXPECT_LE(be.supp_r, ve.supp_r);
  EXPECT_LE(be.supp_q, ve.supp_q);
  EXPECT_GT(be.supp_r, 0u);  // cust1-3 visit LeB and like the FR triple
}

TEST_F(MultiConsequentTest, UnknownNodesStayOutOfNegativePool) {
  // A node missing edges of *any* consequent label is LCWA-unknown for the
  // conjunction: with consequents visit+like, a cust with likes but no
  // visits is unknown, not negative.
  Pattern q;
  PNodeId x = q.AddNode(cust_);
  PNodeId xp = q.AddNode(cust_);
  PNodeId y = q.AddNode(fr_);
  PNodeId f = q.AddNode(fr_);
  q.set_x(x);
  q.set_y(y);
  q.AddEdge(x, friend_, xp);
  q.AddEdge(xp, visit_, y);
  q.AddEdge(xp, like_, f);
  auto r = MultiConsequentGpar::Create(q, {{visit_, y}, {like_, f}});
  ASSERT_TRUE(r.ok());
  MultiConsequentEval e = EvaluateMultiConsequent(m_, *r);
  // All six custs have like edges... but cust6 has no like to an FR and
  // no... check consistency bounds only: negatives + positives <= custs
  // with both edge labels present.
  size_t with_both = 0;
  for (NodeId v : g1_.graph.nodes_with_label(cust_)) {
    if (g1_.graph.HasOutLabel(v, visit_) && g1_.graph.HasOutLabel(v, like_)) {
      ++with_both;
    }
  }
  EXPECT_LE(e.supp_q + e.supp_qbar, with_both);
}

TEST_F(MultiConsequentTest, CreateValidations) {
  Pattern q;
  PNodeId x = q.AddNode(cust_);
  PNodeId xp = q.AddNode(cust_);
  PNodeId y = q.AddNode(fr_);
  q.set_x(x);
  q.set_y(y);
  q.AddEdge(x, friend_, xp);
  q.AddEdge(xp, visit_, y);

  EXPECT_FALSE(MultiConsequentGpar::Create(q, {}).ok());
  EXPECT_FALSE(MultiConsequentGpar::Create(q, {{visit_, 99}}).ok());
  EXPECT_FALSE(MultiConsequentGpar::Create(q, {{visit_, x}}).ok());
  EXPECT_FALSE(
      MultiConsequentGpar::Create(q, {{visit_, y}, {visit_, y}}).ok());

  // Consequent already present in Q.
  Pattern q2 = q;
  q2.AddEdge(x, visit_, y);
  EXPECT_FALSE(MultiConsequentGpar::Create(q2, {{visit_, y}}).ok());
}

}  // namespace
}  // namespace gpar
