#include "match/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generator.h"
#include "graph/graph_view.h"
#include "graph/neighborhood.h"
#include "graph/paper_graphs.h"
#include "graph/stats.h"
#include "match/guided.h"
#include "match/multi_pattern.h"
#include "match/simulation.h"
#include "pattern/pattern_generator.h"

namespace gpar {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : g1_(MakePaperG1()) {}
  PaperG1 g1_;
};

TEST_F(MatcherTest, Example3_Q1ImagesOfX) {
  // Example 3: Q1(x, G1) includes cust1-cust3 and cust5.
  VF2Matcher m(g1_.graph);
  const Pattern& q1 = g1_.r1.antecedent();
  std::vector<NodeId> images = m.Images(q1, q1.x());
  std::sort(images.begin(), images.end());
  std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust5};
  EXPECT_EQ(images, expected);
}

TEST_F(MatcherTest, ExistsAtAnchors) {
  VF2Matcher m(g1_.graph);
  EXPECT_TRUE(m.ExistsAt(g1_.r1.pr(), g1_.cust1));
  EXPECT_TRUE(m.ExistsAt(g1_.r1.pr(), g1_.cust2));
  EXPECT_FALSE(m.ExistsAt(g1_.r1.pr(), g1_.cust4));
  EXPECT_FALSE(m.ExistsAt(g1_.r1.pr(), g1_.cust5));  // antecedent only
  EXPECT_TRUE(m.ExistsAt(g1_.r1.antecedent(), g1_.cust5));
}

TEST_F(MatcherTest, ScratchReuseAcrossInterleavedPatterns) {
  // Successive queries reuse the matcher's scratch and plan cache; results
  // must stay identical when patterns and anchors are interleaved, and
  // repeated probes of the same pattern must not re-plan it.
  VF2Matcher m(g1_.graph);
  const Pattern& pr = g1_.r1.pr();
  const Pattern& ant = g1_.r1.antecedent();
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_TRUE(m.ExistsAt(pr, g1_.cust1));
    EXPECT_FALSE(m.ExistsAt(pr, g1_.cust4));
    EXPECT_FALSE(m.ExistsAt(pr, g1_.cust5));
    EXPECT_TRUE(m.ExistsAt(ant, g1_.cust5));
    std::vector<NodeId> images = m.Images(ant, ant.x());
    std::sort(images.begin(), images.end());
    std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust5};
    EXPECT_EQ(images, expected);
  }
  // Two distinct patterns were planned, each exactly once.
  EXPECT_EQ(m.plans_cached(), 2u);
}

TEST_F(MatcherTest, ThrowingCallbackDoesNotCorruptScratch) {
  // An exception unwinding out of an embedding callback skips Extend's
  // symmetric used-bitmap clears; the matcher must still answer later
  // queries correctly (the stale path is swept at the next search).
  VF2Matcher m(g1_.graph);
  struct Abort {};
  const Pattern& pr = g1_.r1.pr();
  EXPECT_THROW(m.Enumerate(pr, {},
                           [](std::span<const NodeId>) -> bool {
                             throw Abort{};
                           }),
               Abort);
  EXPECT_TRUE(m.ExistsAt(pr, g1_.cust1));
  std::vector<NodeId> images = m.Images(g1_.r1.antecedent(),
                                        g1_.r1.antecedent().x());
  std::sort(images.begin(), images.end());
  std::vector<NodeId> expected{g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust5};
  EXPECT_EQ(images, expected);
}

TEST_F(MatcherTest, MultiplicityForcesDistinctCopies) {
  // like(x, FR^4): nobody likes 4 French restaurants.
  VF2Matcher m(g1_.graph);
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId f = p.AddNode(labels.Lookup("French_restaurant"), 4);
  p.AddEdge(x, labels.Lookup("like"), f);
  p.set_x(x);
  EXPECT_TRUE(m.Images(p, x).empty());

  // FR^3 matches cust1-cust5.
  Pattern p3;
  PNodeId x3 = p3.AddNode(labels.Lookup("cust"));
  PNodeId f3 = p3.AddNode(labels.Lookup("French_restaurant"), 3);
  p3.AddEdge(x3, labels.Lookup("like"), f3);
  p3.set_x(x3);
  EXPECT_EQ(m.Images(p3, x3).size(), 5u);
  (void)f;
}

TEST_F(MatcherTest, EnumerateCountsEmbeddings) {
  // friend(x, x') in the two triangles: 6 ordered pairs per triangle.
  VF2Matcher m(g1_.graph);
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId z = p.AddNode(labels.Lookup("cust"));
  p.AddEdge(x, labels.Lookup("friend"), z);
  p.set_x(x);
  uint64_t n = m.Enumerate(
      p, {}, [](std::span<const NodeId>) { return true; });
  EXPECT_EQ(n, 12u);

  // Early stop via callback.
  uint64_t seen = 0;
  m.Enumerate(p, {}, [&](std::span<const NodeId>) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);

  // Limit parameter.
  uint64_t limited = m.Enumerate(
      p, {}, [](std::span<const NodeId>) { return true; }, 5);
  EXPECT_EQ(limited, 5u);
}

TEST_F(MatcherTest, DisconnectedPatternStillMatches) {
  // Antecedent with isolated y is legal for Q-only matching.
  const Interner& labels = g1_.graph.labels();
  VF2Matcher m(g1_.graph);
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId z = p.AddNode(labels.Lookup("cust"));
  PNodeId y = p.AddNode(labels.Lookup("French_restaurant"));
  p.AddEdge(x, labels.Lookup("friend"), z);
  p.set_x(x);
  p.set_y(y);
  // Every cust with a friend matches; y binds to any FR node.
  EXPECT_EQ(m.Images(p, x).size(), 6u);
}

TEST_F(MatcherTest, GuidedMatcherAgreesWithVF2) {
  VF2Matcher vf2(g1_.graph);
  GuidedMatcher guided(g1_.graph, 2);
  for (const Gpar* r : {&g1_.r1, &g1_.r5, &g1_.r6, &g1_.r7, &g1_.r8}) {
    for (NodeId v : {g1_.cust1, g1_.cust2, g1_.cust3, g1_.cust4, g1_.cust5,
                     g1_.cust6}) {
      EXPECT_EQ(vf2.ExistsAt(r->pr(), v), guided.ExistsAt(r->pr(), v))
          << "pr mismatch at cust node " << v;
      EXPECT_EQ(vf2.ExistsAt(r->antecedent(), v),
                guided.ExistsAt(r->antecedent(), v))
          << "antecedent mismatch at cust node " << v;
    }
  }
}

TEST_F(MatcherTest, SketchCoverageIsSoundPruning) {
  // Any true match must pass the sketch filter: compare guided image sets
  // with VF2 image sets on every rule.
  VF2Matcher vf2(g1_.graph);
  GuidedMatcher guided(g1_.graph, 2);
  for (const Gpar* r : {&g1_.r1, &g1_.r5, &g1_.r7}) {
    auto a = vf2.Images(r->pr(), r->pr().x());
    auto b = guided.Images(r->pr(), r->pr().x());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST_F(MatcherTest, PatternSketchCountsMultiplicity) {
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId f = p.AddNode(labels.Lookup("French_restaurant"), 3);
  p.AddEdge(x, labels.Lookup("like"), f);
  p.set_x(x);
  KHopSketch sk = ComputePatternSketch(p, x, 1);
  ASSERT_EQ(sk.hops.size(), 1u);
  ASSERT_EQ(sk.hops[0].size(), 1u);
  EXPECT_EQ(sk.hops[0][0].second, 3u);  // three copies required at hop 1
}

TEST_F(MatcherTest, MultiPatternSharing) {
  // Q5 ⊑ Q7 anchored at x: evaluating both at a center that fails Q5 must
  // skip Q7 entirely.
  std::vector<const Pattern*> pats{&g1_.r5.antecedent(),
                                   &g1_.r7.antecedent()};
  MultiPatternEvaluator eval(pats);
  VF2Matcher m(g1_.graph);

  std::vector<char> out;
  eval.EvaluateAt(m, g1_.cust6, &out);  // cust6 fails Q5 (no FR likes)
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  uint64_t q_after_fail = eval.queries_issued();
  EXPECT_EQ(q_after_fail, 1u);  // only Q5 was actually evaluated

  eval.EvaluateAt(m, g1_.cust1, &out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
}

TEST_F(MatcherTest, MultiPatternDuplicatesEvaluatedOnce) {
  std::vector<const Pattern*> pats{&g1_.r5.antecedent(),
                                   &g1_.r5.antecedent()};
  MultiPatternEvaluator eval(pats);
  VF2Matcher m(g1_.graph);
  std::vector<char> out;
  eval.EvaluateAt(m, g1_.cust1, &out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(eval.queries_issued(), 1u);
}

TEST_F(MatcherTest, ViewMatchingEqualsInducedCopyOnG1) {
  // A matcher over a GraphView answers exactly like one over the copied
  // induced subgraph of the same member set — on global ids, with no remap.
  std::vector<NodeId> members =
      NodesWithinRadius(g1_.graph, g1_.cust1, 2);
  std::sort(members.begin(), members.end());
  GraphView view(g1_.graph, members);
  InducedSubgraph copy = BuildInducedSubgraph(g1_.graph, members);

  EXPECT_EQ(view.num_nodes(), copy.graph.num_nodes());
  EXPECT_EQ(view.num_edges(), copy.graph.num_edges());
  EXPECT_EQ(view.size(), copy.graph.size());

  VF2Matcher on_view(view);
  VF2Matcher on_copy(copy.graph);
  for (const Gpar* r : {&g1_.r1, &g1_.r5, &g1_.r6, &g1_.r7, &g1_.r8}) {
    for (NodeId global : members) {
      NodeId local = copy.to_local.at(global);
      EXPECT_EQ(on_view.ExistsAt(r->pr(), global),
                on_copy.ExistsAt(r->pr(), local))
          << "view/copy pr mismatch at node " << global;
      EXPECT_EQ(on_view.ExistsAt(r->antecedent(), global),
                on_copy.ExistsAt(r->antecedent(), local))
          << "view/copy antecedent mismatch at node " << global;
    }
    // Unanchored search exercises the label-index candidate source.
    EXPECT_EQ(on_view.Exists(r->antecedent()), on_copy.Exists(r->antecedent()));
  }
}

TEST_F(MatcherTest, ViewExcludesNonMembers) {
  // Anchoring outside the view never matches; edges to non-members are
  // invisible even when the parent graph has them.
  std::vector<NodeId> members{g1_.cust1};  // a single isolated member
  GraphView view(g1_.graph, members);
  VF2Matcher m(view);
  const Pattern& ant = g1_.r1.antecedent();  // needs neighbors to match
  EXPECT_FALSE(m.ExistsAt(ant, g1_.cust1));
  EXPECT_FALSE(m.ExistsAt(ant, g1_.cust2));  // not a member at all
  EXPECT_TRUE(m.Images(ant, ant.x()).empty());
  EXPECT_EQ(view.num_edges(), 0u);
}

TEST_F(MatcherTest, GuidedViewMatcherAgreesWithCopy) {
  // Randomized cross-check including the sketch filter: the guided matcher
  // over a view (membership-restricted sketches) must agree with plain VF2
  // over the equivalent copy.
  Graph g = MakeSynthetic(300, 900, 15, 17);
  auto freq = FrequentEdgePatterns(g, 1);
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  GparGenOptions gopt;
  gopt.num_nodes = 4;
  gopt.num_edges = 4;
  gopt.max_radius = 2;
  gopt.seed = 23;
  auto rules = GenerateGparWorkload(g, q, 4, gopt);

  auto centers = g.nodes_with_label(q.x_label);
  std::vector<NodeId> members = NodesWithinRadius(g, centers[0], 2);
  for (size_t i = 1; i < centers.size() && i < 8; ++i) {
    auto more = NodesWithinRadius(g, centers[i], 2);
    members.insert(members.end(), more.begin(), more.end());
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  GraphView view(g, members);
  InducedSubgraph copy = BuildInducedSubgraph(g, members);

  GuidedMatcher guided_view(view, 2);
  VF2Matcher vf2_copy(copy.graph);
  for (const Gpar& r : rules) {
    for (NodeId global : members) {
      if (g.node_label(global) != q.x_label) continue;
      EXPECT_EQ(guided_view.ExistsAt(r.pr(), global),
                vf2_copy.ExistsAt(r.pr(), copy.to_local.at(global)))
          << "guided view diverged at node " << global;
    }
  }
}

TEST_F(MatcherTest, SharedPlanStoreServesProbes) {
  // A store-served probe answers identically to private planning and is
  // counted; Prepare is idempotent and unprepared patterns fall back.
  SearchPlanStore store(g1_.graph);
  const Pattern& pr = g1_.r1.pr();
  PNodeId x = pr.x();
  store.Prepare(pr, {&x, 1});
  store.Prepare(pr, {&x, 1});  // idempotent
  EXPECT_EQ(store.patterns_planned(), 1u);
  ASSERT_NE(store.Find(pr), nullptr);
  EXPECT_EQ(store.Find(g1_.r5.pr()), nullptr);

  VF2Matcher with_store(g1_.graph);
  with_store.set_plan_store(&store);
  VF2Matcher without(g1_.graph);
  for (NodeId v : {g1_.cust1, g1_.cust2, g1_.cust4, g1_.cust5}) {
    EXPECT_EQ(with_store.ExistsAt(pr, v), without.ExistsAt(pr, v));
  }
  EXPECT_EQ(with_store.plan_store_hits(), 4u);
  EXPECT_EQ(with_store.plans_cached(), 0u);  // never planned privately

  // A pattern the store does not know is planned privately as before.
  EXPECT_TRUE(with_store.ExistsAt(g1_.r5.pr(), g1_.cust1));
  EXPECT_EQ(with_store.plan_store_hits(), 4u);
  EXPECT_EQ(with_store.plans_cached(), 1u);
}

TEST_F(MatcherTest, SimulationOverapproximatesIsomorphism) {
  // sim(x) ⊇ Q(x, G) for every rule pattern.
  VF2Matcher m(g1_.graph);
  for (const Gpar* r : {&g1_.r1, &g1_.r5, &g1_.r6, &g1_.r7, &g1_.r8}) {
    auto iso = m.Images(r->antecedent(), r->antecedent().x());
    auto sim = SimulationImages(r->antecedent(), g1_.graph,
                                r->antecedent().x());
    std::sort(iso.begin(), iso.end());
    for (NodeId v : iso) {
      EXPECT_TRUE(std::binary_search(sim.begin(), sim.end(), v))
          << "simulation dropped isomorphism image " << v;
    }
  }
}

TEST_F(MatcherTest, SimulationEmptyWhenLabelMissing) {
  const Interner& labels = g1_.graph.labels();
  Pattern p;
  PNodeId x = p.AddNode(labels.Lookup("cust"));
  PNodeId z = p.AddNode(kWildcardLabel);  // label that exists nowhere
  p.AddEdge(x, labels.Lookup("friend"), z);
  p.set_x(x);
  auto sim = DualSimulation(p, g1_.graph);
  for (const auto& s : sim) EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace gpar
