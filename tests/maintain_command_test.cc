#include "maintain/maintain_command.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph_snapshot.h"
#include "graph/stats.h"
#include "mine/dmine.h"
#include "rule/rule_snapshot.h"
#include "serve/delta_journal.h"

namespace gpar {
namespace {

MaintainRequest SmallRequest() {
  MaintainRequest req;
  req.options.mine.num_workers = 2;
  req.options.mine.k = 3;
  req.options.mine.d = 2;
  req.options.mine.sigma = 2;
  req.options.mine.max_pattern_edges = 3;
  req.options.mine.seed_edge_limit = 8;
  req.options.mine.max_candidates_per_round = 200;
  return req;
}

/// A self-contained maintain fixture on disk: graph snapshot, v1 rule
/// snapshot (records only — forces the seeding path), and the predicate's
/// label names.
struct Fixture {
  Graph graph;
  Predicate q;
  std::string gpath, rpath;
  std::string x, edge, y;
};

Fixture MakeFixture(const std::string& tag) {
  Fixture f;
  f.graph = MakeSynthetic(250, 750, 10, 13);
  auto freq = FrequentEdgePatterns(f.graph);
  EXPECT_FALSE(freq.empty());
  f.q = {freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
  f.x = f.graph.labels().Name(f.q.x_label);
  f.edge = f.graph.labels().Name(f.q.edge_label);
  f.y = f.graph.labels().Name(f.q.y_label);
  f.gpath = "/tmp/gpar_mcmd_" + tag + ".snap";
  f.rpath = "/tmp/gpar_mcmd_" + tag + ".rules";
  EXPECT_TRUE(WriteGraphSnapshotFile(f.graph, f.gpath).ok());
  EXPECT_TRUE(
      WriteRuleSetSnapshotFile({}, f.graph.labels(), f.rpath).ok());
  return f;
}

void ExpectInvalid(const Result<MaintainReport>& r, std::string_view needle) {
  ASSERT_FALSE(r.ok()) << "ran unexpectedly";
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();
  EXPECT_NE(r.status().message().find(needle), std::string::npos)
      << "message '" << r.status().message() << "' lacks '" << needle << "'";
}

TEST(MaintainExitCodeTest, PolicyMapsStatusAndStrictness) {
  EXPECT_EQ(MaintainExitCode(Status::OK(), false), 0);
  EXPECT_EQ(MaintainExitCode(Status::OK(), true), 0);
  // Usage errors are exit 2 regardless of strictness.
  EXPECT_EQ(MaintainExitCode(Status::InvalidArgument("x"), false), 2);
  EXPECT_EQ(MaintainExitCode(Status::InvalidArgument("x"), true), 2);
  // Runtime failures: 1 normally, 3 when strict mode refused the run.
  EXPECT_EQ(MaintainExitCode(Status::IoError("x"), false), 1);
  EXPECT_EQ(MaintainExitCode(Status::IoError("x"), true), 3);
  EXPECT_EQ(MaintainExitCode(Status::Corruption("x"), false), 1);
  EXPECT_EQ(MaintainExitCode(Status::Corruption("x"), true), 3);
}

TEST(MaintainOptionsFromSetupTest, UnpacksTheMiningParameters) {
  MiningSetup setup;
  setup.k = 7;
  setup.d = 3;
  setup.sigma = 11;
  setup.lambda = 0.25;
  setup.max_pattern_edges = 5;
  setup.seed_edge_limit = 12;
  setup.max_candidates_per_round = 99;
  // bits 0..7 in DmineOptions declaration order; set an asymmetric pattern.
  setup.bool_flags = (1u << 0) | (1u << 3) | (1u << 6);

  MaintainOptions base;
  base.enable_incremental_maintenance = false;
  base.mine.num_workers = 9;
  auto o = MaintainOptionsFromSetup(setup, base);
  ASSERT_TRUE(o.ok()) << o.status();
  EXPECT_EQ(o->mine.k, 7u);
  EXPECT_EQ(o->mine.d, 3u);
  EXPECT_EQ(o->mine.sigma, 11u);
  EXPECT_DOUBLE_EQ(o->mine.lambda, 0.25);
  EXPECT_EQ(o->mine.max_pattern_edges, 5u);
  EXPECT_EQ(o->mine.seed_edge_limit, 12u);
  EXPECT_EQ(o->mine.max_candidates_per_round, 99u);
  EXPECT_TRUE(o->mine.enable_incremental_div);
  EXPECT_FALSE(o->mine.enable_reduction_rules);
  EXPECT_FALSE(o->mine.enable_bisim_prefilter);
  EXPECT_TRUE(o->mine.enable_parent_prune);
  EXPECT_FALSE(o->mine.enable_worker_gen);
  EXPECT_FALSE(o->mine.use_fragment_copies);
  EXPECT_TRUE(o->mine.enable_shared_plans);
  EXPECT_FALSE(o->mine.enable_prune_aware_usupp);
  // Non-setup knobs come from `base`, untouched.
  EXPECT_FALSE(o->enable_incremental_maintenance);
  EXPECT_EQ(o->mine.num_workers, 9u);
}

TEST(MaintainOptionsFromSetupTest, RejectsUnknownFlagBits) {
  MiningSetup setup;
  setup.bool_flags = 1u << 8;  // a bit this build does not know
  auto o = MaintainOptionsFromSetup(setup, {});
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(o.status().message().find("unknown ablation flag"),
            std::string::npos)
      << o.status();
}

TEST(MaintainCommandTest, MalformedRequestsNameTheMissingPiece) {
  MaintainRequest req = SmallRequest();
  ExpectInvalid(RunMaintain(req), "--graph-snapshot is required");

  req.graph_snapshot = "/tmp/whatever.snap";
  ExpectInvalid(RunMaintain(req), "--rules-snapshot is required");

  // A graph snapshot that does not exist is a load error, not a usage one.
  req.rules_snapshot = "/tmp/whatever.rules";
  auto r = RunMaintain(req);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().code(), StatusCode::kInvalidArgument) << r.status();

  Fixture f = MakeFixture("malformed");
  req.graph_snapshot = f.gpath;
  req.rules_snapshot = f.rpath;
  // v1 snapshot, no predicate labels: cannot seed.
  ExpectInvalid(RunMaintain(req), "no evidence section");

  req.x_label = f.x;
  req.edge_label = f.edge;
  req.y_label = "no_such_label";
  ExpectInvalid(RunMaintain(req),
                "'no_such_label' does not occur in the graph snapshot");
  std::remove(f.gpath.c_str());
  std::remove(f.rpath.c_str());
}

TEST(MaintainCommandTest, SeedsFromV1ThenRestoresFromItsV2Output) {
  Fixture f = MakeFixture("roundtrip");
  const std::string out = "/tmp/gpar_mcmd_roundtrip.out";
  MaintainRequest req = SmallRequest();
  req.graph_snapshot = f.gpath;
  req.rules_snapshot = f.rpath;
  req.out = out;
  req.x_label = f.x;
  req.edge_label = f.edge;
  req.y_label = f.y;

  auto first = RunMaintain(req);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->seeded);
  EXPECT_EQ(first->rules_in, 0u);
  EXPECT_GT(first->rules_out, 0u);
  EXPECT_EQ(first->out_path, out);
  EXPECT_GT(first->objective, 0.0);

  // The output is a v2 snapshot whose records equal a from-scratch Dmine.
  Interner labels = f.graph.labels();
  auto snap = ReadRuleSetSnapshotAnyFile(out, &labels);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_TRUE(snap->has_evidence);
  auto mined = Dmine(f.graph, f.q, req.options.mine);
  ASSERT_TRUE(mined.ok()) << mined.status();
  ASSERT_EQ(snap->rules.size(), mined->topk.size());
  for (size_t i = 0; i < snap->rules.size(); ++i) {
    EXPECT_EQ(snap->rules[i].supp, mined->topk[i]->supp) << "rule " << i;
    EXPECT_EQ(snap->rules[i].conf, mined->topk[i]->conf) << "rule " << i;
  }

  // Second run: restore from the v2 output — the persisted setup wins, so
  // no predicate labels are needed; zero journal frames to apply.
  MaintainRequest again = SmallRequest();
  again.graph_snapshot = f.gpath;
  again.rules_snapshot = out;
  auto second = RunMaintain(again);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->seeded);
  EXPECT_EQ(second->rules_in, first->rules_out);
  EXPECT_EQ(second->rules_out, first->rules_out);
  EXPECT_EQ(second->objective, first->objective);
  std::remove(f.gpath.c_str());
  std::remove(f.rpath.c_str());
  std::remove(out.c_str());
}

TEST(MaintainCommandTest, ReplaysTheJournalAndReportsTheScan) {
  Fixture f = MakeFixture("journal");
  const std::string wal = "/tmp/gpar_mcmd_journal.wal";
  const std::string out = "/tmp/gpar_mcmd_journal.out";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    for (uint64_t s = 1; s <= 2; ++s) {
      GraphDelta d;
      d.sequence = s;
      for (NodeId v = 0; v < 10; ++v) {
        d.inserts.push_back(
            {static_cast<NodeId>(v * 7 + s), f.q.edge_label,
             static_cast<NodeId>(v * 11 + 2 * s)});
      }
      ASSERT_TRUE((*j)->Append(d).ok());
    }
  }

  MaintainRequest req = SmallRequest();
  req.graph_snapshot = f.gpath;
  req.rules_snapshot = f.rpath;
  req.journal = wal;
  req.out = out;
  req.x_label = f.x;
  req.edge_label = f.edge;
  req.y_label = f.y;
  auto r = RunMaintain(req);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->journal_scan.frames, 2u);
  EXPECT_EQ(r->last_sequence, 2u);
  EXPECT_TRUE(r->warnings.empty());
  // Seed pass + 2 replayed frames.
  EXPECT_EQ(r->stats.passes, 3u);

  // The maintained output equals Dmine on the journal-patched graph.
  Graph patched = f.graph;
  ASSERT_TRUE(ReplayRange(wal, 0, [&](const GraphDelta& d) -> Status {
                auto p = PatchGraph(patched, d);
                GPAR_RETURN_NOT_OK(p.status());
                patched = std::move(p)->graph;
                return Status::OK();
              }).ok());
  Interner labels = patched.labels();
  auto snap = ReadRuleSetSnapshotAnyFile(out, &labels);
  ASSERT_TRUE(snap.ok()) << snap.status();
  auto mined = Dmine(patched, f.q, req.options.mine);
  ASSERT_TRUE(mined.ok()) << mined.status();
  ASSERT_EQ(snap->rules.size(), mined->topk.size());
  for (size_t i = 0; i < snap->rules.size(); ++i) {
    EXPECT_EQ(snap->rules[i].supp, mined->topk[i]->supp) << "rule " << i;
    EXPECT_EQ(snap->rules[i].conf, mined->topk[i]->conf) << "rule " << i;
  }
  std::remove(f.gpath.c_str());
  std::remove(f.rpath.c_str());
  std::remove(wal.c_str());
  std::remove(out.c_str());
}

TEST(MaintainCommandTest, TornTailIsStrictErrorOrWarning) {
  Fixture f = MakeFixture("torn");
  const std::string wal = "/tmp/gpar_mcmd_torn.wal";
  const std::string out = "/tmp/gpar_mcmd_torn.out";
  std::remove(wal.c_str());
  {
    auto j = DeltaJournal::Open(wal);
    ASSERT_TRUE(j.ok()) << j.status();
    GraphDelta d;
    d.sequence = 1;
    d.inserts.push_back({1, f.q.edge_label, 2});
    ASSERT_TRUE((*j)->Append(d).ok());
    // Tear a second frame: append half its bytes raw.
    GraphDelta torn;
    torn.sequence = 2;
    torn.inserts.push_back({3, f.q.edge_label, 4});
    std::string frame = torn.Serialize();
    std::ofstream os(wal, std::ios::binary | std::ios::app);
    os.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }

  MaintainRequest req = SmallRequest();
  req.graph_snapshot = f.gpath;
  req.rules_snapshot = f.rpath;
  req.journal = wal;
  req.out = out;
  req.x_label = f.x;
  req.edge_label = f.edge;
  req.y_label = f.y;

  req.strict = true;
  auto strict = RunMaintain(req);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  EXPECT_NE(strict.status().message().find("torn tail"), std::string::npos)
      << strict.status();
  EXPECT_NE(strict.status().message().find("strict mode"), std::string::npos)
      << strict.status();
  EXPECT_EQ(MaintainExitCode(strict.status(), req.strict), 3);

  req.strict = false;
  auto lax = RunMaintain(req);
  ASSERT_TRUE(lax.ok()) << lax.status();
  ASSERT_EQ(lax->warnings.size(), 1u);
  EXPECT_NE(lax->warnings[0].find("torn tail"), std::string::npos);
  EXPECT_TRUE(lax->journal_scan.tail_truncated);
  EXPECT_EQ(lax->last_sequence, 1u);  // the intact prefix applied
  std::remove(f.gpath.c_str());
  std::remove(f.rpath.c_str());
  std::remove(wal.c_str());
  std::remove(out.c_str());
}

}  // namespace
}  // namespace gpar
