#!/usr/bin/env bash
# Runs the micro benchmarks (google-benchmark binaries named micro_*) and
# merges their JSON reports into one machine-readable file that seeds the
# perf trajectory across PRs. Additionally runs a CI-sized
# exp1_dmine_vary_size sweep into a second JSON report (DMINE_JSON) so
# DMine-level speedups are tracked PR-over-PR with in-run baselines: the
# parent-prune ablation ("noprune_s") and the WorkerGen ablation
# ("central_s" = coordinator-side candidate generation, plus the
# coordinator-share columns that show generation moving off the
# coordinator's critical path).
#
# A third JSON report (PARTITION_JSON) comes from a CI-sized
# exp4_partition_skew run: partition build time and fragment memory for
# zero-copy GraphView fragments vs the use_fragment_copies baseline.
#
# A fourth JSON report (SERVE_JSON) comes from a CI-sized exp5_serve run:
# cold vs warm-cache QPS of the RuleServer serving path and the cost of
# edge-delta invalidation, against the per-request batch baseline.
#
# A fifth JSON report (SHARDED_JSON) comes from a CI-sized
# exp6_sharded_serve run: aggregate warm QPS vs shard count for the
# ShardedRuleServer deployment (makespan-accounted; the headline number is
# the k=4 vs k=1 scaling ratio in "totals"), plus p50/p99 request latency
# under a mixed query + delta workload.
#
# A sixth JSON report (CHURN_JSON) comes from a CI-sized exp7_delta_churn
# run: maintained ApplyDelta + requery cost vs a from-scratch server
# rebuild under a CDC-style insert+delete churn stream, plus the fraction
# of (rule, center) cache entries each batch invalidates.
#
# A seventh JSON report (RECOVERY_JSON) comes from a CI-sized exp8_recovery
# run: the write-ahead journal's ApplyDelta overhead (off / journal /
# fsync), journal replay throughput through RuleServer::Recover, and
# degraded-mode QPS of a k=4 sharded deployment with failpoint-injected
# shard loss.
#
# An eighth JSON report (MAINTENANCE_JSON) comes from a CI-sized
# exp9_maintenance run: per-batch cost of the incremental RuleMaintainer
# vs its re-probe-everything ablation (a sequential re-mine) on one
# interleaved insert+delete stream, the freshness lag of the maintained
# top-k, and the match-set-delta evidence encoding's bytes vs the raw
# full encoding.
#
# Usage:
#   tools/run_bench.sh [OUTPUT_JSON] [DMINE_JSON] [PARTITION_JSON] \
#                      [SERVE_JSON] [SHARDED_JSON] [CHURN_JSON] \
#                      [RECOVERY_JSON] [MAINTENANCE_JSON]
#
# Environment:
#   GPAR_BENCH_BIN_DIR   directory holding the bench binaries
#                        (default: build/release/bench)
#   GPAR_BENCH_FILTER    --benchmark_filter regex passed through (default: all)
#   GPAR_BENCH_MIN_TIME  --benchmark_min_time per benchmark (default: unset)
#   GPAR_BENCH_SMALL     sweep size for the DMine report (default: 1 = CI-sized)
#
# The merged document has the shape:
#   { "benches": { "<binary>": <google-benchmark JSON report>, ... } }
set -euo pipefail

out="${1:-BENCH_micro.json}"
dmine_out="${2:-BENCH_dmine.json}"
partition_out="${3:-BENCH_partition.json}"
serve_out="${4:-BENCH_serve.json}"
sharded_out="${5:-BENCH_sharded_serve.json}"
churn_out="${6:-BENCH_delta_churn.json}"
recovery_out="${7:-BENCH_recovery.json}"
maintenance_out="${8:-BENCH_maintenance.json}"
bin_dir="${GPAR_BENCH_BIN_DIR:-build/release/bench}"

if [[ ! -d "${bin_dir}" ]]; then
  echo "error: bench binary dir '${bin_dir}' not found." >&2
  echo "Build first: cmake --preset release && cmake --build --preset release" >&2
  exit 1
fi

# DMine experiment sweep (plain binary, own JSON format). Runs first so the
# artifact exists even when google-benchmark is unavailable.
dmine_bin="${bin_dir}/exp1_dmine_vary_size"
if [[ -x "${dmine_bin}" ]]; then
  echo "== exp1_dmine_vary_size -> ${dmine_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${dmine_out}" \
    "${dmine_bin}"
else
  echo "warning: ${dmine_bin} not built; skipping ${dmine_out}" >&2
fi

# Partition representation sweep (view vs copied fragments).
partition_bin="${bin_dir}/exp4_partition_skew"
if [[ -x "${partition_bin}" ]]; then
  echo "== exp4_partition_skew -> ${partition_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${partition_out}" \
    "${partition_bin}"
else
  echo "warning: ${partition_bin} not built; skipping ${partition_out}" >&2
fi

# Rule-serving sweep (cold/warm QPS + delta invalidation).
serve_bin="${bin_dir}/exp5_serve"
if [[ -x "${serve_bin}" ]]; then
  echo "== exp5_serve -> ${serve_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${serve_out}" \
    "${serve_bin}"
else
  echo "warning: ${serve_bin} not built; skipping ${serve_out}" >&2
fi

# Sharded serving sweep (aggregate warm QPS vs shard count, mixed p50/p99).
sharded_bin="${bin_dir}/exp6_sharded_serve"
if [[ -x "${sharded_bin}" ]]; then
  echo "== exp6_sharded_serve -> ${sharded_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${sharded_out}" \
    "${sharded_bin}"
else
  echo "warning: ${sharded_bin} not built; skipping ${sharded_out}" >&2
fi

# Delta churn sweep (maintained insert+delete stream vs fresh rebuild).
churn_bin="${bin_dir}/exp7_delta_churn"
if [[ -x "${churn_bin}" ]]; then
  echo "== exp7_delta_churn -> ${churn_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${churn_out}" \
    "${churn_bin}"
else
  echo "warning: ${churn_bin} not built; skipping ${churn_out}" >&2
fi

# Fault-tolerance sweep (journal overhead, replay throughput, degraded QPS).
recovery_bin="${bin_dir}/exp8_recovery"
if [[ -x "${recovery_bin}" ]]; then
  echo "== exp8_recovery -> ${recovery_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" GPAR_BENCH_JSON="${recovery_out}" \
    "${recovery_bin}"
else
  echo "warning: ${recovery_bin} not built; skipping ${recovery_out}" >&2
fi

# Incremental maintenance sweep (maintained vs re-mine cost, freshness lag).
maintenance_bin="${bin_dir}/exp9_maintenance"
if [[ -x "${maintenance_bin}" ]]; then
  echo "== exp9_maintenance -> ${maintenance_out}" >&2
  GPAR_BENCH_SMALL="${GPAR_BENCH_SMALL:-1}" \
    GPAR_BENCH_JSON="${maintenance_out}" "${maintenance_bin}"
else
  echo "warning: ${maintenance_bin} not built; skipping ${maintenance_out}" >&2
fi

shopt -s nullglob
bins=("${bin_dir}"/micro_*)
if [[ ${#bins[@]} -eq 0 ]]; then
  echo "error: no micro_* binaries under '${bin_dir}'." >&2
  echo "Was google-benchmark found at configure time?" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

extra_args=()
[[ -n "${GPAR_BENCH_FILTER:-}" ]] &&
  extra_args+=("--benchmark_filter=${GPAR_BENCH_FILTER}")
[[ -n "${GPAR_BENCH_MIN_TIME:-}" ]] &&
  extra_args+=("--benchmark_min_time=${GPAR_BENCH_MIN_TIME}")

for bin in "${bins[@]}"; do
  [[ -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  echo "== ${name}" >&2
  "${bin}" --benchmark_format=json \
    ${extra_args[@]+"${extra_args[@]}"} >"${tmp_dir}/${name}.json"
done

python3 - "${out}" "${tmp_dir}" <<'PY'
import json, pathlib, sys

out, tmp_dir = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {"benches": {}}
for report in sorted(tmp_dir.glob("*.json")):
    merged["benches"][report.stem] = json.loads(report.read_text())
pathlib.Path(out).write_text(json.dumps(merged, indent=2) + "\n")
total = sum(len(r.get("benchmarks", [])) for r in merged["benches"].values())
print(f"wrote {out}: {len(merged['benches'])} binaries, {total} benchmarks")
PY
