#!/usr/bin/env python3
"""gpar_lint: repo-specific static checks clang cannot express.

Five rules, each encoding a project invariant that has bitten (or would
bite) the concurrent serving tier:

  [atomic-order]   Every std::atomic access through .load/.store/.exchange/
                   .fetch_*/.compare_exchange_* in src/ must name an
                   explicit std::memory_order AND carry a justifying
                   comment on the same line or within the three lines
                   above it. Defaulted seq_cst hides the author's intent
                   and an unjustified order is unreviewable.

  [naked-mutex]    No std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable outside
                   common/mutex.h. Raw primitives are invisible to clang
                   Thread Safety Analysis, so everything they guard
                   silently escapes -Werror=thread-safety.

  [ablation-flag]  Every bool field of DmineOptions (src/mine/dmine.h),
                   EipOptions (src/identify/eip.h), and MaintainOptions
                   (src/maintain/rule_maintainer.h) must be referenced by at
                   least one test in tests/*.cc — the repo's rule is that
                   each ablation axis ships with an equivalence battery.

  [bench-json]     Every BENCH_*.json artifact name mentioned by a bench
                   emitter (bench/*.cc) must be registered in
                   tools/run_bench.sh, or CI quietly stops tracking it.

  [failpoint-site] Every GPAR_FAILPOINT / GPAR_FAILPOINT_TORN site name in
                   src/ must appear in at least one test in tests/*.cc. An
                   untested failpoint is an untested failure path — the
                   whole point of registering the site was to inject faults
                   through it.

Usage:
  tools/gpar_lint.py [--root DIR]

Exits 0 when clean; prints "file:line: [rule] message" diagnostics and
exits 1 otherwise. --root defaults to the repository root (the parent of
this script's directory) and exists so the seeded-violation fixture under
tests/lint_fixtures/ can be linted as its own tree.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
MEMORY_ORDER_RE = re.compile(r"\bmemory_order(_|::)\w+")
COMMENT_RE = re.compile(r"//")
NAKED_PRIMITIVE_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)
NAKED_INCLUDE_RE = re.compile(r'#\s*include\s*<(mutex|condition_variable|shared_mutex)>')
BOOL_FIELD_RE = re.compile(r"^\s*bool\s+(\w+)\s*=")
BENCH_JSON_RE = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")
FAILPOINT_SITE_RE = re.compile(r'\bGPAR_FAILPOINT(?:_TORN)?\(\s*"([^"]+)"')

# Files allowed to touch the raw primitives: the annotated wrappers
# themselves (and the macro header they depend on).
NAKED_MUTEX_ALLOWLIST = {
    pathlib.PurePosixPath("src/common/mutex.h"),
    pathlib.PurePosixPath("src/common/thread_annotations.h"),
}

# How many lines above an atomic access may hold its justifying comment.
COMMENT_WINDOW = 3


class Linter:
    def __init__(self, root: pathlib.Path) -> None:
        self.root = root
        self.findings: list[str] = []

    def report(self, path: pathlib.Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: [{rule}] {msg}")

    # -- helpers ----------------------------------------------------------

    def _source_files(self, subdir: str) -> list[pathlib.Path]:
        base = self.root / subdir
        if not base.is_dir():
            return []
        return sorted(
            p
            for p in base.rglob("*")
            if p.suffix in (".h", ".cc", ".cpp", ".hpp") and p.is_file()
        )

    @staticmethod
    def _read_lines(path: pathlib.Path) -> list[str]:
        return path.read_text(encoding="utf-8", errors="replace").splitlines()

    # -- rule: atomic-order ------------------------------------------------

    def check_atomic_orders(self) -> None:
        for path in self._source_files("src"):
            lines = self._read_lines(path)
            for i, line in enumerate(lines):
                for m in ATOMIC_OP_RE.finditer(line):
                    # The call statement may wrap; join until its parens
                    # balance (capped — real statements here are short).
                    depth, statement = 0, ""
                    for j in range(i, min(i + 6, len(lines))):
                        chunk = lines[j][m.start():] if j == i else lines[j]
                        for ch in chunk:
                            statement += ch
                            if ch == "(":
                                depth += 1
                            elif ch == ")":
                                depth -= 1
                                if depth == 0:
                                    break
                        if depth == 0 and "(" in statement:
                            break
                        statement += " "
                    if not MEMORY_ORDER_RE.search(statement):
                        self.report(
                            path, i + 1, "atomic-order",
                            f"atomic .{m.group(1)}() without an explicit "
                            "std::memory_order argument",
                        )
                        continue
                    window = lines[max(0, i - COMMENT_WINDOW): i + 1]
                    if not any(COMMENT_RE.search(w) for w in window):
                        self.report(
                            path, i + 1, "atomic-order",
                            f"atomic .{m.group(1)}() lacks a justifying "
                            f"comment (same line or the {COMMENT_WINDOW} "
                            "lines above)",
                        )

    # -- rule: naked-mutex -------------------------------------------------

    def check_naked_mutexes(self) -> None:
        for path in self._source_files("src"):
            rel = pathlib.PurePosixPath(path.relative_to(self.root).as_posix())
            if rel in NAKED_MUTEX_ALLOWLIST:
                continue
            for i, line in enumerate(self._read_lines(path)):
                m = NAKED_PRIMITIVE_RE.search(line)
                if m:
                    self.report(
                        path, i + 1, "naked-mutex",
                        f"raw std::{m.group(1)} outside common/mutex.h — use "
                        "the annotated Mutex/MutexLock/CondVar wrappers",
                    )
                    continue
                inc = NAKED_INCLUDE_RE.search(line)
                if inc:
                    self.report(
                        path, i + 1, "naked-mutex",
                        f"#include <{inc.group(1)}> outside common/mutex.h — "
                        "include \"common/mutex.h\" instead",
                    )

    # -- rule: ablation-flag -----------------------------------------------

    @staticmethod
    def _struct_bool_fields(lines: list[str], struct_name: str) -> list[tuple[int, str]]:
        fields: list[tuple[int, str]] = []
        depth, inside = 0, False
        for i, line in enumerate(lines):
            if not inside:
                if re.search(rf"\bstruct\s+{struct_name}\b", line):
                    inside = True
                    depth = line.count("{") - line.count("}")
                continue
            depth += line.count("{") - line.count("}")
            m = BOOL_FIELD_RE.match(line)
            if m:
                fields.append((i + 1, m.group(1)))
            if depth <= 0:
                break
        return fields

    def check_ablation_flags(self) -> None:
        test_dir = self.root / "tests"
        test_text = "".join(
            p.read_text(encoding="utf-8", errors="replace")
            for p in sorted(test_dir.glob("*.cc"))
        ) if test_dir.is_dir() else ""
        for header, struct in (
            ("src/mine/dmine.h", "DmineOptions"),
            ("src/identify/eip.h", "EipOptions"),
            ("src/maintain/rule_maintainer.h", "MaintainOptions"),
        ):
            path = self.root / header
            if not path.is_file():
                continue
            lines = self._read_lines(path)
            for lineno, field in self._struct_bool_fields(lines, struct):
                if not re.search(rf"\b{field}\b", test_text):
                    self.report(
                        path, lineno, "ablation-flag",
                        f"{struct}::{field} is not exercised by any test in "
                        "tests/*.cc — every ablation flag needs an "
                        "equivalence battery",
                    )

    # -- rule: bench-json --------------------------------------------------

    def check_bench_registration(self) -> None:
        script = self.root / "tools" / "run_bench.sh"
        script_text = (
            script.read_text(encoding="utf-8", errors="replace")
            if script.is_file()
            else ""
        )
        bench_dir = self.root / "bench"
        if not bench_dir.is_dir():
            return
        for path in sorted(bench_dir.glob("*.cc")):
            for i, line in enumerate(self._read_lines(path)):
                for name in BENCH_JSON_RE.findall(line):
                    if name not in script_text:
                        self.report(
                            path, i + 1, "bench-json",
                            f"{name} is emitted here but not registered in "
                            "tools/run_bench.sh",
                        )

    # -- rule: failpoint-site ----------------------------------------------

    def check_failpoint_sites(self) -> None:
        test_dir = self.root / "tests"
        test_text = "".join(
            p.read_text(encoding="utf-8", errors="replace")
            for p in sorted(test_dir.glob("*.cc"))
        ) if test_dir.is_dir() else ""
        for path in self._source_files("src"):
            if path.name in ("failpoint.h", "failpoint.cc"):
                continue  # the registry itself, not an instrumented site
            for i, line in enumerate(self._read_lines(path)):
                for site in FAILPOINT_SITE_RE.findall(line):
                    if f'"{site}"' not in test_text:
                        self.report(
                            path, i + 1, "failpoint-site",
                            f'failpoint site "{site}" is never armed by any '
                            "test in tests/*.cc — every registered site "
                            "needs fault-injection coverage",
                        )

    # -- driver ------------------------------------------------------------

    def run(self) -> int:
        self.check_atomic_orders()
        self.check_naked_mutexes()
        self.check_ablation_flags()
        self.check_bench_registration()
        self.check_failpoint_sites()
        for finding in self.findings:
            print(finding)
        if self.findings:
            print(f"gpar_lint: {len(self.findings)} finding(s)", file=sys.stderr)
            return 1
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="tree to lint (default: the repository root)",
    )
    args = parser.parse_args()
    root = args.root.resolve()
    if not root.is_dir():
        print(f"gpar_lint: no such directory: {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
