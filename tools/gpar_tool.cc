// gpar_tool — command-line front end for the library.
//
//   gpar_tool generate --type pokec|gplus|synthetic --scale N --out g.txt
//   gpar_tool info     --graph g.txt
//   gpar_tool mine     --graph g.txt --x user --edge like_music --y music_1
//                      [--k 10 --d 2 --sigma 5 --lambda 0.5 --workers 4]
//                      [--rules-out rules.txt] [--snapshot-out rules.snap]
//   gpar_tool identify --graph g.txt --rules rules.txt --eta 1.0
//                      [--algo match|matchc|disvf2|seq] [--workers 4]
//   gpar_tool snapshot --graph g.txt --out g.snap
//                      [--rules rules.txt --rules-out rules.snap]
//   gpar_tool serve    --graph-snapshot g.snap --rules-snapshot rules.snap
//                      [--workers 4 --cache 1048576 --shards 1 --strict 0]
//                      [--journal deltas.wal] [--maintain 0]
//                      (query loop on stdin; type `help` at the prompt;
//                      --shards k > 1 serves from a k-shard deployment;
//                      --strict 1 exits with code 3 on the first malformed
//                      or failed query instead of continuing; --journal
//                      attaches a write-ahead delta journal — existing
//                      frames replay at startup, every later delta is
//                      appended before it is published, and the
//                      `checkpoint [path]` / `recover` loop commands
//                      snapshot+compact / rebuild from snapshot+journal;
//                      --maintain 1 enables incremental rule maintenance:
//                      the session mines once at startup under the mining
//                      flags below and keeps the top-k fresh across deltas)
//   gpar_tool maintain --graph-snapshot g.snap --rules-snapshot rules.snap
//                      [--journal deltas.wal] [--out rules2.snap]
//                      [--strict 0] [--x user --edge like_music --y music_1]
//                      [--k 10 --d 2 --sigma 5 --lambda 0.5 --max-edges 4]
//                      [--incremental 1]
//                      (offline rule refresh: restores a maintainer from a
//                      v2 rule snapshot's evidence — or seeds one from a v1
//                      snapshot, which needs --x/--edge/--y and the mining
//                      flags — replays the journal, and writes the
//                      refreshed v2 snapshot to --out, default in place;
//                      --strict 1 refuses a torn-tail journal with exit 3;
//                      --incremental 0 re-probes everything, the ablation
//                      baseline)
//
// Exit codes: 0 ok, 1 load/runtime error, 2 usage error, 3 malformed query
// or failed checkpoint/recover in --strict mode (for `maintain`: refused
// lossy history or a non-usage failure under --strict 1).
//
// Graphs use the `v/e` text format of graph_io.h; rule files use the
// Gpar::SerializeSet format (pattern codec blocks separated by `---`);
// snapshots use the binary formats of graph_snapshot.h / rule_snapshot.h.

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/flags.h"
#include "graph/generator.h"
#include "maintain/maintain_command.h"
#include "graph/graph_io.h"
#include "graph/graph_snapshot.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "mine/dmine.h"
#include "rule/gpar.h"
#include "rule/rule_snapshot.h"
#include "serve/rule_server.h"
#include "serve/serve_command.h"
#include "serve/serve_session.h"
#include "serve/sharded_rule_server.h"

namespace {

using namespace gpar;

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

std::string RequireFlag(const std::map<std::string, std::string>& flags,
                        const std::string& key) {
  auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

/// Checked numeric flag lookups: a malformed value is a usage error (exit
/// 2), not an uncaught std::stoul exception.
template <typename T>
T NumFlagOr(const std::map<std::string, std::string>& flags,
            const std::string& key, T def) {
  auto it = flags.find(key);
  if (it == flags.end()) return def;
  const std::string& s = it->second;
  T v{};
  auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || end != s.data() + s.size()) {
    std::fprintf(stderr, "flag --%s expects a number, got '%s'\n",
                 key.c_str(), s.c_str());
    std::exit(2);
  }
  return v;
}

Graph LoadGraph(const std::string& path) {
  auto r = ReadGraphFile(path);
  if (!r.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

LabelId RequireLabel(const Graph& g, const std::string& name) {
  LabelId id = g.labels().Lookup(name);
  if (id == kNoLabel) {
    std::fprintf(stderr, "label '%s' does not occur in the graph\n",
                 name.c_str());
    std::exit(1);
  }
  return id;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  std::string type = FlagOr(flags, "type", "synthetic");
  uint32_t scale = NumFlagOr<uint32_t>(flags, "scale", 1);
  uint64_t seed = NumFlagOr<uint64_t>(flags, "seed", 42);
  Graph g;
  if (type == "pokec") {
    g = MakePokecLike(scale, seed);
  } else if (type == "gplus") {
    g = MakeGPlusLike(scale, seed);
  } else if (type == "synthetic") {
    g = MakeSynthetic(10000 * scale, 20000 * scale, 100, seed);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 2;
  }
  std::string out = RequireFlag(flags, "out");
  Status s = WriteGraphFile(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(), g.num_nodes(),
              g.num_edges());
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  DegreeStats deg = ComputeDegreeStats(g);
  std::printf("nodes: %u\nedges: %zu\n|G| = |V|+|E|: %zu\n", g.num_nodes(),
              g.num_edges(), g.size());
  std::printf("avg degree: %.2f  max out: %zu  max in: %zu\n",
              deg.avg_degree, deg.max_out_degree, deg.max_in_degree);
  std::printf("top edge patterns (src --edge--> dst : count):\n");
  for (const EdgePatternStat& s : FrequentEdgePatterns(g, 10)) {
    std::printf("  %s --%s--> %s : %llu\n",
                g.labels().Name(s.src_label).c_str(),
                g.labels().Name(s.edge_label).c_str(),
                g.labels().Name(s.dst_label).c_str(),
                static_cast<unsigned long long>(s.count));
  }
  return 0;
}

int CmdMine(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  Predicate q{RequireLabel(g, RequireFlag(flags, "x")),
              RequireLabel(g, RequireFlag(flags, "edge")),
              RequireLabel(g, RequireFlag(flags, "y"))};
  DmineOptions opt;
  opt.k = NumFlagOr<uint32_t>(flags, "k", 10);
  opt.d = NumFlagOr<uint32_t>(flags, "d", 2);
  opt.sigma = NumFlagOr<uint64_t>(flags, "sigma", 5);
  opt.lambda = NumFlagOr<double>(flags, "lambda", 0.5);
  opt.num_workers = NumFlagOr<uint32_t>(flags, "workers", 4);
  opt.max_pattern_edges = NumFlagOr<uint32_t>(flags, "max-edges", 4);

  auto result = Dmine(g, q, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("accepted %zu rules; top-%u objective F = %.4f "
              "(%.2fs simulated parallel)\n",
              result->stats.accepted, opt.k, result->objective,
              result->times.SimulatedParallelSeconds());
  std::vector<Gpar> rules;
  std::vector<RuleRecord> records;
  for (const auto& r : result->topk) {
    std::printf("--- supp=%llu conf=%.3f ---\n%s",
                static_cast<unsigned long long>(r->supp), r->conf,
                r->rule.ToString(g.labels()).c_str());
    rules.push_back(r->rule);
    records.push_back({r->rule, r->supp, r->conf});
  }
  auto it = flags.find("rules-out");
  if (it != flags.end()) {
    std::ofstream os(it->second);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", it->second.c_str());
      return 1;
    }
    os << Gpar::SerializeSet(rules, g.labels());
    std::printf("wrote %zu rules to %s\n", rules.size(), it->second.c_str());
  }
  it = flags.find("snapshot-out");
  if (it != flags.end()) {
    Status s = WriteRuleSetSnapshotFile(records, g.labels(), it->second);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu rules (with supp/conf metadata) to %s\n",
                records.size(), it->second.c_str());
  }
  return 0;
}

int CmdIdentify(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  std::ifstream is(RequireFlag(flags, "rules"));
  if (!is) {
    std::fprintf(stderr, "cannot open rules file\n");
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  auto rules = Gpar::ParseSet(buffer.str(), g.mutable_labels());
  if (!rules.ok()) {
    std::fprintf(stderr, "bad rules file: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  EipOptions opt;
  opt.eta = NumFlagOr<double>(flags, "eta", 1.0);
  opt.num_workers = NumFlagOr<uint32_t>(flags, "workers", 4);
  std::string algo = FlagOr(flags, "algo", "match");
  if (algo == "match") {
    opt.algorithm = EipAlgorithm::kMatch;
  } else if (algo == "matchc") {
    opt.algorithm = EipAlgorithm::kMatchc;
  } else if (algo == "disvf2") {
    opt.algorithm = EipAlgorithm::kDisVf2;
  } else if (algo == "seq") {
    opt.algorithm = EipAlgorithm::kSequential;
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
    return 2;
  }

  auto result = IdentifyEntities(g, *rules, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("rules: %zu; eta: %.2f\n", rules->size(), opt.eta);
  for (size_t i = 0; i < result->rule_evals.size(); ++i) {
    std::printf("  rule %zu: supp=%llu conf=%.3f%s\n", i,
                static_cast<unsigned long long>(result->rule_evals[i].supp_r),
                result->rule_evals[i].conf,
                result->rule_evals[i].conf >= opt.eta ? "  [selected]" : "");
  }
  std::printf("Σ(x, G, η): %zu potential customers\n",
              result->entities.size());
  size_t shown = 0;
  for (NodeId v : result->entities) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", result->entities.size() - 20);
      break;
    }
    std::printf("  node %u\n", v);
  }
  return 0;
}

int CmdSnapshot(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  std::string out = RequireFlag(flags, "out");
  Status s = WriteGraphSnapshotFile(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote graph snapshot %s: %u nodes, %zu edges\n", out.c_str(),
              g.num_nodes(), g.num_edges());

  auto it = flags.find("rules");
  if (it != flags.end()) {
    std::ifstream is(it->second);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", it->second.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << is.rdbuf();
    auto rules = Gpar::ParseSet(buffer.str(), g.mutable_labels());
    if (!rules.ok()) {
      std::fprintf(stderr, "bad rules file: %s\n",
                   rules.status().ToString().c_str());
      return 1;
    }
    std::vector<RuleRecord> records;
    for (const Gpar& r : *rules) records.push_back({r, 0, 0.0});
    std::string rules_out = RequireFlag(flags, "rules-out");
    s = WriteRuleSetSnapshotFile(records, g.labels(), rules_out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote rule snapshot %s: %zu rules\n", rules_out.c_str(),
                records.size());
  }
  return 0;
}

/// The mining parameters shared by `serve --maintain 1` (seeding the
/// session's maintainer) and `maintain` on a v1 snapshot — for a v2
/// snapshot the persisted evidence setup overrides all of these.
MaintainOptions MaintainOptionsFromFlags(
    const std::map<std::string, std::string>& flags) {
  MaintainOptions o;
  o.mine.k = NumFlagOr<uint32_t>(flags, "k", 10);
  o.mine.d = NumFlagOr<uint32_t>(flags, "d", 2);
  o.mine.sigma = NumFlagOr<uint64_t>(flags, "sigma", 5);
  o.mine.lambda = NumFlagOr<double>(flags, "lambda", 0.5);
  o.mine.max_pattern_edges = NumFlagOr<uint32_t>(flags, "max-edges", 4);
  o.enable_incremental_maintenance =
      NumFlagOr<int>(flags, "incremental", 1) != 0;
  return o;
}

int CmdMaintain(const std::map<std::string, std::string>& flags) {
  MaintainRequest req;
  req.graph_snapshot = RequireFlag(flags, "graph-snapshot");
  req.rules_snapshot = RequireFlag(flags, "rules-snapshot");
  req.journal = FlagOr(flags, "journal", "");
  req.out = FlagOr(flags, "out", "");
  req.strict = NumFlagOr<int>(flags, "strict", 0) != 0;
  req.x_label = FlagOr(flags, "x", "");
  req.edge_label = FlagOr(flags, "edge", "");
  req.y_label = FlagOr(flags, "y", "");
  req.options = MaintainOptionsFromFlags(flags);

  auto report = RunMaintain(req);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return MaintainExitCode(report.status(), req.strict);
  }
  for (const std::string& w : report->warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  std::printf("%s maintainer: %zu rules in -> %zu rules out "
              "(objective F = %.4f)\n",
              report->seeded ? "seeded" : "restored", report->rules_in,
              report->rules_out, report->objective);
  if (!req.journal.empty()) {
    std::printf("journal: %zu frames scanned, maintained to sequence %llu%s\n",
                report->journal_scan.frames,
                static_cast<unsigned long long>(report->last_sequence),
                report->journal_scan.tail_truncated ? " (torn tail truncated)"
                                                    : "");
  }
  const MaintainStats& ms = report->stats;
  std::printf(
      "passes=%llu reprobed=%llu carried=%llu patched=%zu reexpanded=%zu "
      "sigma-crossings +%zu/-%zu\n",
      static_cast<unsigned long long>(ms.passes),
      static_cast<unsigned long long>(ms.centers_reprobed),
      static_cast<unsigned long long>(ms.centers_carried), ms.rules_patched,
      ms.rules_reexpanded, ms.sigma_crossed_up, ms.sigma_crossed_down);
  std::printf("evidence: %llu bytes delta-encoded (%llu raw)\n",
              static_cast<unsigned long long>(ms.evidence_bytes_delta),
              static_cast<unsigned long long>(ms.evidence_bytes_full));
  std::printf("wrote refreshed v2 snapshot %s\n", report->out_path.c_str());
  return 0;
}

void PrintServeStatsLine(const char* prefix, const ServeStats& st,
                         size_t cached) {
  std::printf("%srequests=%llu hits=%llu probes=%llu centers=%llu "
              "cached=%zu total_latency=%.2f ms\n",
              prefix, static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_probes),
              static_cast<unsigned long long>(st.centers_evaluated), cached,
              st.latency_seconds * 1e3);
}

// The serve query loop's line protocol (one command per line on stdin) is
// parsed by serve/serve_command.h — type `help` at the prompt for the
// grammar. Every command routes through the unified `ServeSession`
// interface, so a single-server and a --shards k deployment answer the
// same loop identically.
int CmdServe(const std::map<std::string, std::string>& flags) {
  RuleServerOptions opt;
  opt.num_workers = NumFlagOr<uint32_t>(flags, "workers", 4);
  opt.cache_capacity = NumFlagOr<size_t>(flags, "cache", 1048576);
  const uint32_t shards = NumFlagOr<uint32_t>(flags, "shards", 1);
  const bool strict = NumFlagOr<int>(flags, "strict", 0) != 0;
  const bool maintain = NumFlagOr<int>(flags, "maintain", 0) != 0;
  // Not const: `checkpoint <path>` moves the snapshot-of-record there (the
  // journal is compacted against the NEW snapshot, so a later `recover`
  // must rebuild from it — the original file no longer pairs with the
  // journal's sequence floor).
  std::string graph_path = RequireFlag(flags, "graph-snapshot");
  const std::string rules_path = RequireFlag(flags, "rules-snapshot");
  const std::string journal_path = FlagOr(flags, "journal", "");

  std::unique_ptr<RuleServer> single;
  std::unique_ptr<ShardedRuleServer> sharded;
  ServeSession* session = nullptr;
  // Builds (or, for `recover`, rebuilds) the session from the snapshot
  // pair, then attaches the journal — which replays its frames, so the
  // loaded state is snapshot + journal, not just the snapshot.
  auto load_session = [&]() -> bool {
    single.reset();
    sharded.reset();
    session = nullptr;
    if (shards > 1) {
      ShardedRuleServerOptions sopt;
      sopt.num_shards = shards;
      sopt.shard_options = opt;
      auto s = ShardedRuleServer::Load(graph_path, rules_path, sopt);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot load server: %s\n",
                     s.status().ToString().c_str());
        return false;
      }
      sharded = std::move(s).value();
      session = sharded.get();
    } else {
      auto s = RuleServer::Load(graph_path, rules_path, opt);
      if (!s.ok()) {
        std::fprintf(stderr, "cannot load server: %s\n",
                     s.status().ToString().c_str());
        return false;
      }
      single = std::move(s).value();
      session = single.get();
    }
    if (!journal_path.empty()) {
      JournalReplayStats replay;
      Status st = session->AttachJournal(journal_path, {}, &replay);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot attach journal %s: %s\n",
                     journal_path.c_str(), st.ToString().c_str());
        return false;
      }
      std::printf("journal %s: replayed %zu frames to sequence %llu%s\n",
                  journal_path.c_str(), replay.frames,
                  static_cast<unsigned long long>(replay.last_sequence),
                  replay.tail_truncated ? " (torn tail truncated)" : "");
    }
    if (maintain) {
      // Enabled AFTER the journal replay, so the seed pass mines the
      // caught-up graph — and re-enabled by `recover`, which rebuilds the
      // session from scratch.
      const MaintainOptions mo = MaintainOptionsFromFlags(flags);
      Status st = single != nullptr ? single->EnableMaintenance(mo)
                                    : sharded->EnableMaintenance(mo);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot enable maintenance: %s\n",
                     st.ToString().c_str());
        return false;
      }
      std::printf("maintenance enabled: serving the maintained top-%u "
                  "(d=%u, sigma=%llu)\n",
                  mo.mine.k, mo.mine.d,
                  static_cast<unsigned long long>(mo.mine.sigma));
    }
    return true;
  };
  if (!load_session()) return 1;

  {
    const auto g = session->graph_snapshot();
    std::printf("serving %u nodes, %zu edges, %zu rules, %zu candidates "
                "across %u shard(s)\n",
                g->num_nodes(), g->num_edges(), session->rules().size(),
                session->candidates().size(), shards);
  }
  if (sharded != nullptr) {
    for (uint32_t i = 0; i < sharded->num_shards(); ++i) {
      const RuleServer& sh = sharded->shard(i);
      std::printf("  shard %u: %zu owned centers, %zu view nodes\n", i,
                  sh.candidates().size(), sh.view_members());
    }
  }

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    auto parsed = ParseServeCommand(line);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      if (strict) return 3;
      continue;
    }
    switch (parsed->kind) {
      case ServeCommand::Kind::kQuit:
        return 0;
      case ServeCommand::Kind::kHelp:
        std::printf("%s\n", ServeCommandHelp());
        break;
      case ServeCommand::Kind::kStats: {
        PrintServeStatsLine("  ", session->lifetime_stats(),
                            single != nullptr ? single->cached_centers() : 0);
        if (sharded != nullptr) {
          for (uint32_t i = 0; i < sharded->num_shards(); ++i) {
            const RuleServer& sh = sharded->shard(i);
            std::printf("  shard %u: ", i);
            PrintServeStatsLine("", sh.lifetime_stats(), sh.cached_centers());
          }
        }
        break;
      }
      case ServeCommand::Kind::kQuery: {
        auto reply = session->Query(parsed->request);
        if (!reply.ok()) {
          std::printf("error: %s\n", reply.status().ToString().c_str());
          if (strict) return 3;
          break;
        }
        if (parsed->request.all_centers) {
          const double eta = parsed->request.eta;
          for (size_t i = 0; i < reply->rule_evals.size(); ++i) {
            std::printf(
                "  rule %zu: supp=%llu conf=%.3f%s\n", i,
                static_cast<unsigned long long>(reply->rule_evals[i].supp_r),
                reply->rule_evals[i].conf,
                reply->rule_evals[i].conf >= eta ? "  [selected]" : "");
          }
          std::printf("  %zu entities at eta=%.2f", reply->entities.size(),
                      eta);
        } else {
          for (size_t i = 0; i < parsed->request.centers.size(); ++i) {
            std::printf("  node %u:", parsed->request.centers[i]);
            if (reply->matched[i].empty()) std::printf(" no rule matches");
            for (uint32_t ri : reply->matched[i]) {
              std::printf(" R%u(conf=%.3f)", ri, session->rules()[ri].conf);
            }
            std::printf("\n");
          }
          std::printf(" ");
        }
        std::printf(" [%llu hits, %llu probes, %.2f ms]\n",
                    static_cast<unsigned long long>(reply->stats.cache_hits),
                    static_cast<unsigned long long>(reply->stats.cache_probes),
                    reply->stats.latency_seconds * 1e3);
        break;
      }
      case ServeCommand::Kind::kDelta: {
        GraphDelta delta;
        delta.inserts.reserve(parsed->inserts.size());
        for (const TextEdgeInsert& e : parsed->inserts) {
          delta.inserts.push_back(
              {e.src, session->InternLabel(e.label), e.dst});
        }
        delta.deletes.reserve(parsed->deletes.size());
        for (const TextEdgeDelete& e : parsed->deletes) {
          delta.deletes.push_back(
              {e.src, session->InternLabel(e.label), e.dst});
        }
        auto ds = session->ApplyDelta(delta);
        if (!ds.ok()) {
          std::printf("error: %s\n", ds.status().ToString().c_str());
          if (strict) return 3;
          break;
        }
        std::printf(
            "  +%zu edges (%zu dup), -%zu edges (%zu missing), "
            "%llu memberships + %llu q-classes "
            "invalidated, %llu sketches refreshed, %llu view nodes added, "
            "%llu wire bytes, %.2f ms\n",
            ds->edges_inserted, ds->duplicates_ignored, ds->edges_deleted,
            ds->deletes_missing,
            static_cast<unsigned long long>(ds->memberships_invalidated),
            static_cast<unsigned long long>(ds->qclass_invalidated),
            static_cast<unsigned long long>(ds->sketches_refreshed),
            static_cast<unsigned long long>(ds->members_extended),
            static_cast<unsigned long long>(ds->wire_bytes),
            ds->seconds * 1e3);
        if (ds->rules_refreshed != 0) {
          std::printf("  maintenance refreshed the served rule set "
                      "(%zu rules)\n",
                      session->rules().size());
        }
        break;
      }
      case ServeCommand::Kind::kCheckpoint: {
        const std::string out =
            parsed->path.empty() ? graph_path : parsed->path;
        Status st = session->Checkpoint(out);
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
          if (strict) return 3;
          break;
        }
        std::printf("  checkpointed graph to %s, journal compacted\n",
                    out.c_str());
        graph_path = out;
        break;
      }
      case ServeCommand::Kind::kRecover: {
        if (journal_path.empty()) {
          std::printf("error: recover requires --journal\n");
          if (strict) return 3;
          break;
        }
        // Simulated crash recovery: drop the live session and rebuild it
        // from snapshot + journal replay. A failed rebuild is fatal — there
        // is no session left to serve from.
        if (!load_session()) return 1;
        std::printf("  recovered\n");
        break;
      }
    }
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: gpar_tool "
               "<generate|info|mine|identify|snapshot|serve|maintain> "
               "--flag value ...\n"
               "(see the header comment of tools/gpar_tool.cc)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  auto flags = ParseFlagArgs(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 2;
  }
  if (cmd == "generate") return CmdGenerate(*flags);
  if (cmd == "info") return CmdInfo(*flags);
  if (cmd == "mine") return CmdMine(*flags);
  if (cmd == "identify") return CmdIdentify(*flags);
  if (cmd == "snapshot") return CmdSnapshot(*flags);
  if (cmd == "serve") return CmdServe(*flags);
  if (cmd == "maintain") return CmdMaintain(*flags);
  Usage();
  return 2;
}
