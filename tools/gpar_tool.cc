// gpar_tool — command-line front end for the library.
//
//   gpar_tool generate --type pokec|gplus|synthetic --scale N --out g.txt
//   gpar_tool info     --graph g.txt
//   gpar_tool mine     --graph g.txt --x user --edge like_music --y music_1
//                      [--k 10 --d 2 --sigma 5 --lambda 0.5 --workers 4]
//                      [--rules-out rules.txt]
//   gpar_tool identify --graph g.txt --rules rules.txt --eta 1.0
//                      [--algo match|matchc|disvf2|seq] [--workers 4]
//
// Graphs use the `v/e` text format of graph_io.h; rule files use the
// Gpar::SerializeSet format (pattern codec blocks separated by `---`).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "graph/generator.h"
#include "graph/graph_io.h"
#include "graph/stats.h"
#include "identify/eip.h"
#include "mine/dmine.h"
#include "rule/gpar.h"

namespace {

using namespace gpar;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "expected --flag, got %s\n", key.c_str());
      std::exit(2);
    }
    flags[key.substr(2)] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

std::string RequireFlag(const std::map<std::string, std::string>& flags,
                        const std::string& key) {
  auto it = flags.find(key);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required --%s\n", key.c_str());
    std::exit(2);
  }
  return it->second;
}

Graph LoadGraph(const std::string& path) {
  auto r = ReadGraphFile(path);
  if (!r.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

LabelId RequireLabel(const Graph& g, const std::string& name) {
  LabelId id = g.labels().Lookup(name);
  if (id == kNoLabel) {
    std::fprintf(stderr, "label '%s' does not occur in the graph\n",
                 name.c_str());
    std::exit(1);
  }
  return id;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  std::string type = FlagOr(flags, "type", "synthetic");
  uint32_t scale = std::stoul(FlagOr(flags, "scale", "1"));
  uint64_t seed = std::stoull(FlagOr(flags, "seed", "42"));
  Graph g;
  if (type == "pokec") {
    g = MakePokecLike(scale, seed);
  } else if (type == "gplus") {
    g = MakeGPlusLike(scale, seed);
  } else if (type == "synthetic") {
    g = MakeSynthetic(10000 * scale, 20000 * scale, 100, seed);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 2;
  }
  std::string out = RequireFlag(flags, "out");
  Status s = WriteGraphFile(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(), g.num_nodes(),
              g.num_edges());
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  DegreeStats deg = ComputeDegreeStats(g);
  std::printf("nodes: %u\nedges: %zu\n|G| = |V|+|E|: %zu\n", g.num_nodes(),
              g.num_edges(), g.size());
  std::printf("avg degree: %.2f  max out: %zu  max in: %zu\n",
              deg.avg_degree, deg.max_out_degree, deg.max_in_degree);
  std::printf("top edge patterns (src --edge--> dst : count):\n");
  for (const EdgePatternStat& s : FrequentEdgePatterns(g, 10)) {
    std::printf("  %s --%s--> %s : %llu\n",
                g.labels().Name(s.src_label).c_str(),
                g.labels().Name(s.edge_label).c_str(),
                g.labels().Name(s.dst_label).c_str(),
                static_cast<unsigned long long>(s.count));
  }
  return 0;
}

int CmdMine(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  Predicate q{RequireLabel(g, RequireFlag(flags, "x")),
              RequireLabel(g, RequireFlag(flags, "edge")),
              RequireLabel(g, RequireFlag(flags, "y"))};
  DmineOptions opt;
  opt.k = std::stoul(FlagOr(flags, "k", "10"));
  opt.d = std::stoul(FlagOr(flags, "d", "2"));
  opt.sigma = std::stoull(FlagOr(flags, "sigma", "5"));
  opt.lambda = std::stod(FlagOr(flags, "lambda", "0.5"));
  opt.num_workers = std::stoul(FlagOr(flags, "workers", "4"));
  opt.max_pattern_edges = std::stoul(FlagOr(flags, "max-edges", "4"));

  auto result = Dmine(g, q, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("accepted %zu rules; top-%u objective F = %.4f "
              "(%.2fs simulated parallel)\n",
              result->stats.accepted, opt.k, result->objective,
              result->times.SimulatedParallelSeconds());
  std::vector<Gpar> rules;
  for (const auto& r : result->topk) {
    std::printf("--- supp=%llu conf=%.3f ---\n%s",
                static_cast<unsigned long long>(r->supp), r->conf,
                r->rule.ToString(g.labels()).c_str());
    rules.push_back(r->rule);
  }
  auto it = flags.find("rules-out");
  if (it != flags.end()) {
    std::ofstream os(it->second);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", it->second.c_str());
      return 1;
    }
    os << Gpar::SerializeSet(rules, g.labels());
    std::printf("wrote %zu rules to %s\n", rules.size(), it->second.c_str());
  }
  return 0;
}

int CmdIdentify(const std::map<std::string, std::string>& flags) {
  Graph g = LoadGraph(RequireFlag(flags, "graph"));
  std::ifstream is(RequireFlag(flags, "rules"));
  if (!is) {
    std::fprintf(stderr, "cannot open rules file\n");
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  auto rules = Gpar::ParseSet(buffer.str(), g.mutable_labels());
  if (!rules.ok()) {
    std::fprintf(stderr, "bad rules file: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  EipOptions opt;
  opt.eta = std::stod(FlagOr(flags, "eta", "1.0"));
  opt.num_workers = std::stoul(FlagOr(flags, "workers", "4"));
  std::string algo = FlagOr(flags, "algo", "match");
  if (algo == "match") {
    opt.algorithm = EipAlgorithm::kMatch;
  } else if (algo == "matchc") {
    opt.algorithm = EipAlgorithm::kMatchc;
  } else if (algo == "disvf2") {
    opt.algorithm = EipAlgorithm::kDisVf2;
  } else if (algo == "seq") {
    opt.algorithm = EipAlgorithm::kSequential;
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
    return 2;
  }

  auto result = IdentifyEntities(g, *rules, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("rules: %zu; eta: %.2f\n", rules->size(), opt.eta);
  for (size_t i = 0; i < result->rule_evals.size(); ++i) {
    std::printf("  rule %zu: supp=%llu conf=%.3f%s\n", i,
                static_cast<unsigned long long>(result->rule_evals[i].supp_r),
                result->rule_evals[i].conf,
                result->rule_evals[i].conf >= opt.eta ? "  [selected]" : "");
  }
  std::printf("Σ(x, G, η): %zu potential customers\n",
              result->entities.size());
  size_t shown = 0;
  for (NodeId v : result->entities) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", result->entities.size() - 20);
      break;
    }
    std::printf("  node %u\n", v);
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: gpar_tool <generate|info|mine|identify> --flag value "
               "...\n(see the header comment of tools/gpar_tool.cc)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "mine") return CmdMine(flags);
  if (cmd == "identify") return CmdIdentify(flags);
  Usage();
  return 2;
}
