// Experiment E3c/E3d — Figures 5(j), 5(k): Match vs Matchc vs disVF2,
// varying the number of GPARs ||Σ|| from 8 to 48 (n = 8, d = 2).
//
// Paper shape: all grow with ||Σ||; Match is least sensitive (early
// termination + multi-pattern sharing amortize more with larger Σ), and
// its advantage over the others grows with ||Σ||.

#include <cstdio>

#include "bench_common.h"
#include "identify/eip.h"

namespace gpar::bench {
namespace {

void RunSeries(const std::string& name, const Graph& g,
               const std::vector<Gpar>& all_sigma) {
  PrintHeader("Fig 5 Match varying ||Sigma|| — " + name,
              {"|Sigma|", "Match(s)", "Matchc(s)", "disVF2(s)"});
  for (size_t count : {8u, 16u, 24u, 32u, 40u, 48u}) {
    if (count > all_sigma.size()) break;
    std::vector<Gpar> sigma(all_sigma.begin(), all_sigma.begin() + count);
    PrintCell(static_cast<uint64_t>(count));
    for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                              EipAlgorithm::kDisVf2}) {
      EipOptions opt;
      opt.algorithm = algo;
      opt.num_workers = 8;
      opt.eta = 1.5;
      opt.enumeration_cap = 50000;  // bound the enumeration baselines
      auto r = IdentifyEntities(g, sigma, opt);
      PrintCell(r.ok() ? r->times.SimulatedParallelSeconds() : -1.0);
    }
    EndRow();
  }
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    auto sigma = MakeSigma(g, q, 48, 5, 8, 2);
    std::printf("[Pokec-like] generated ||Sigma|| = %zu\n", sigma.size());
    RunSeries("Pokec-like (Fig 5j)", g, sigma);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    auto sigma = MakeSigma(g, q, 48, 5, 8, 2);
    std::printf("[GPlus-like] generated ||Sigma|| = %zu\n", sigma.size());
    RunSeries("Google+-like (Fig 5k)", g, sigma);
  }
  return 0;
}
