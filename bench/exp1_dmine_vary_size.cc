// Experiment E1f — Figure 5(f): DMine vs DMineno on synthetic graphs of
// growing size (n = 16, d = 2, fixed σ), plus this implementation's two
// ablation axes:
//  - parent-match pruning (enable_parent_prune off = the pre-lineage worker
//    loop that re-tests every owned center each round), and
//  - decentralized candidate generation (enable_worker_gen off = the
//    centralized coordinator that generates and dedups every extension
//    itself — the pre-PR-3 contract).
// For the WorkerGen ablation the row reports each path's coordinator share
// (coordinator seconds / simulated parallel seconds) and the proposal
// volume: moving generation into the worker rounds must shrink the
// coordinator's share of the critical path while the results stay
// identical.
//
// Paper shape: both grow with |G|; DMine outperforms DMineno (1.76x at the
// largest size).
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_dmine.json CI artifact tracking DMine-level speedups PR-over-PR);
// GPAR_BENCH_SMALL=1 shrinks the sweep to CI size.

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const uint32_t steps = small ? 3 : 5;
  const uint32_t v_step = small ? 4000 : 10000;

  struct Row {
    uint64_t v, e;
    double dmine_s, dmineno_s, noprune_s, central_s;
    double coord_share_wg, coord_share_central;
    double coord_merge_wg, coord_merge_central;
    uint64_t centers_skipped, exists_pruned, exists_noprune;
    uint64_t proposals, cross_merged;
  };
  std::vector<Row> rows;

  PrintHeader("Fig 5(f) DMine varying |G| (synthetic, n=16)",
              {"V", "E", "DMine(s)", "DMineno(s)", "NoPrune(s)", "Central(s)",
               "ratio", "coord%WG", "coord%C", "props"});
  for (uint32_t step = 1; step <= steps; ++step) {
    uint32_t v = v_step * step * scale;
    uint64_t e = 2ull * v_step * step * scale;
    Graph g = MakeSynthetic(v, e, 100, 42 + step);
    auto freq = FrequentEdgePatterns(g, 1);
    Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};

    DmineOptions opt;
    opt.num_workers = 16;
    opt.k = 10;
    opt.d = 2;
    opt.sigma = 2 * scale;
    // The CI-sized sweep grows one level deeper: with more levelwise rounds
    // the parent-restricted fraction of the work rises, keeping the prune
    // ablation's signal above timing noise on small graphs.
    opt.max_pattern_edges = small ? 4 : 3;
    opt.seed_edge_limit = 14;
    opt.max_candidates_per_round = 150;
    DmineOptions no_prune = opt;
    no_prune.enable_parent_prune = false;
    DmineOptions central = opt;
    central.enable_worker_gen = false;

    // CI-sized configs finish in tens of ms, where scheduler noise rivals
    // the measured effect: report the min over a few repetitions. The
    // coordinator shares come from the run that produced the min time.
    const int reps = small ? 3 : 1;
    double tf = 0, ts = 0, tu = 0, tc = 0;
    DmineStats fast_stats, unpruned_stats;
    double coord_share_wg = 0, coord_share_central = 0;
    double coord_merge_wg = 0, coord_merge_central = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto fast = Dmine(g, q, opt);
      auto slow = Dmine(g, q, DmineNoOptions(opt));
      auto unpruned = Dmine(g, q, no_prune);
      auto centralized = Dmine(g, q, central);
      if (!fast.ok() || !slow.ok() || !unpruned.ok() || !centralized.ok()) {
        return 1;
      }
      double f = fast->times.SimulatedParallelSeconds();
      double s = slow->times.SimulatedParallelSeconds();
      double u = unpruned->times.SimulatedParallelSeconds();
      double c = centralized->times.SimulatedParallelSeconds();
      if (rep == 0 || f < tf) {
        tf = f;
        coord_share_wg = f > 0 ? fast->times.coordinator_seconds / f : 0;
        coord_merge_wg = fast->stats.coordinator_merge_seconds;
      }
      if (rep == 0 || s < ts) ts = s;
      if (rep == 0 || u < tu) tu = u;
      if (rep == 0 || c < tc) {
        tc = c;
        coord_share_central =
            c > 0 ? centralized->times.coordinator_seconds / c : 0;
        coord_merge_central = centralized->stats.coordinator_merge_seconds;
      }
      fast_stats = fast->stats;
      unpruned_stats = unpruned->stats;
    }
    uint64_t proposals = 0;
    for (uint64_t p : fast_stats.proposals_per_worker) proposals += p;
    rows.push_back({v, e, tf, ts, tu, tc,
                    coord_share_wg, coord_share_central,
                    coord_merge_wg, coord_merge_central,
                    fast_stats.centers_skipped_by_parent,
                    fast_stats.exists_calls, unpruned_stats.exists_calls,
                    proposals, fast_stats.cross_fragment_merged});
    PrintCell(static_cast<uint64_t>(v));
    PrintCell(e);
    PrintCell(tf);
    PrintCell(ts);
    PrintCell(tu);
    PrintCell(tc);
    PrintCell(tf > 0 ? ts / tf : 0.0);
    PrintCell(coord_share_wg);
    PrintCell(coord_share_central);
    PrintCell(proposals);
    EndRow();
  }

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    // dmine_s = this build (worker-generated candidates); noprune_s = the
    // same build with the pre-lineage worker loop; central_s = the same
    // build with coordinator-side candidate generation. The latter two are
    // the in-run baselines the CI artifact compares against.
    std::fprintf(f, "{\n  \"bench\": \"exp1_dmine_vary_size\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n  \"rows\": [\n",
                 scale, small ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"v\": %llu, \"e\": %llu, \"dmine_s\": %.6f, "
          "\"dmineno_s\": %.6f, \"noprune_s\": %.6f, \"central_s\": %.6f, "
          "\"coord_share_workergen\": %.6f, \"coord_share_central\": %.6f, "
          "\"coord_merge_s_workergen\": %.6f, "
          "\"coord_merge_s_central\": %.6f, "
          "\"proposals\": %llu, \"cross_fragment_merged\": %llu, "
          "\"centers_skipped_by_parent\": %llu, "
          "\"exists_calls_pruned\": %llu, \"exists_calls_noprune\": %llu}%s\n",
          static_cast<unsigned long long>(r.v),
          static_cast<unsigned long long>(r.e), r.dmine_s, r.dmineno_s,
          r.noprune_s, r.central_s, r.coord_share_wg, r.coord_share_central,
          r.coord_merge_wg, r.coord_merge_central,
          static_cast<unsigned long long>(r.proposals),
          static_cast<unsigned long long>(r.cross_merged),
          static_cast<unsigned long long>(r.centers_skipped),
          static_cast<unsigned long long>(r.exists_pruned),
          static_cast<unsigned long long>(r.exists_noprune),
          i + 1 < rows.size() ? "," : "");
    }
    double tot_dmine = 0, tot_dmineno = 0, tot_noprune = 0, tot_central = 0;
    for (const Row& r : rows) {
      tot_dmine += r.dmine_s;
      tot_dmineno += r.dmineno_s;
      tot_noprune += r.noprune_s;
      tot_central += r.central_s;
    }
    // Per-row times at CI sizes are noisy (tens of ms); trajectory
    // comparisons should use the sweep totals.
    std::fprintf(f,
                 "  ],\n  \"totals\": {\"dmine_s\": %.6f, \"dmineno_s\": "
                 "%.6f, \"noprune_s\": %.6f, \"central_s\": %.6f}\n}\n",
                 tot_dmine, tot_dmineno, tot_noprune, tot_central);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s: %zu rows\n", json, rows.size());
  }
  return 0;
}
