// Experiment E1f — Figure 5(f): DMine vs DMineno on synthetic graphs of
// growing size (n = 16, d = 2, fixed σ).
//
// Paper shape: both grow with |G|; DMine outperforms DMineno (1.76x at the
// largest size).

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  PrintHeader("Fig 5(f) DMine varying |G| (synthetic, n=16)",
              {"V", "E", "DMine(s)", "DMineno(s)", "ratio"});
  for (uint32_t step = 1; step <= 5; ++step) {
    uint32_t v = 10000 * step * scale;
    uint64_t e = 20000ull * step * scale;
    Graph g = MakeSynthetic(v, e, 100, 42 + step);
    auto freq = FrequentEdgePatterns(g, 1);
    Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};

    DmineOptions opt;
    opt.num_workers = 16;
    opt.k = 10;
    opt.d = 2;
    opt.sigma = 2 * scale;
    opt.max_pattern_edges = 3;
    opt.seed_edge_limit = 14;
    opt.max_candidates_per_round = 150;
    auto fast = Dmine(g, q, opt);
    auto slow = Dmine(g, q, DmineNoOptions(opt));
    if (!fast.ok() || !slow.ok()) return 1;
    double tf = fast->times.SimulatedParallelSeconds();
    double ts = slow->times.SimulatedParallelSeconds();
    PrintCell(static_cast<uint64_t>(v));
    PrintCell(e);
    PrintCell(tf);
    PrintCell(ts);
    PrintCell(tf > 0 ? ts / tf : 0.0);
    EndRow();
  }
  return 0;
}
