// Experiment E7 — delta maintenance under churn: a CDC-style stream where
// fake-account edges appear in bursts and are cleaned up a round later
// (the paper's fraud scenario, Section 1). Each round ships one insert
// batch and one delete batch through RuleServer::ApplyDelta and re-answers
// the full identification from the maintained session; the baseline pays a
// from-scratch RuleServer::Create + cold identification on the same final
// edge list. The table tracks both costs plus the invalidation fraction —
// the share of (rule, center) cache entries each batch actually dropped,
// the locality argument for maintaining instead of rebuilding.
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_delta_churn.json CI artifact); GPAR_BENCH_SMALL=1 keeps the
// CI-sized config.

#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/graph_delta.h"
#include "serve/rule_server.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const uint32_t workers = 4;
  const size_t rounds = small ? 4 : 8;
  const size_t churn_k = small ? 8 : 32;

  Graph g = MakePokecLike(scale);
  Predicate q = PickPredicate(g, "like_music");
  // Fake-account activity gets its own edge label, interned up front so
  // both servers can resolve it; the churn batches also reuse q's edge
  // label so some rounds genuinely move answers, not just cache bits.
  LabelId fake = g.mutable_labels()->Intern("fake_follow");
  std::printf("Pokec-like: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  auto sigma = MakeSigma(g, q, 6, 4, 5, 2);
  if (sigma.size() < 2) return 1;
  std::vector<RuleRecord> records;
  for (const Gpar& r : sigma) records.push_back({r, 0, 0.0});

  RuleServerOptions sopt;
  sopt.num_workers = workers;
  auto server = RuleServer::Create(g, records, sopt);
  if (!server.ok()) return 1;
  RuleServer& s = **server;
  if (!s.IdentifyAll(1.0).ok()) return 1;  // warm the maintained session

  const double cache_slots =
      static_cast<double>(records.size()) * s.candidates().size();

  struct Row {
    size_t round;
    size_t inserted, deleted, missing;
    double insert_s, delete_s, requery_s, rebuild_s;
    double inval_frac_insert, inval_frac_delete;
  };
  std::vector<Row> rows;

  PrintHeader("Exp-7 delta churn (maintained vs fresh rebuild)",
              {"round", "ins", "del", "ins(s)", "del(s)", "requery(s)",
               "rebuild(s)", "if_ins", "if_del"});

  std::mt19937_64 rng(1234);
  Graph current = g;  // the reference edge list, patched outside the server
  std::vector<EdgeInsert> live;  // last round's fakes, cleaned up next round
  for (size_t round = 0; round < rounds; ++round) {
    // The cleanup batch: delete the previous burst.
    GraphDelta cleanup;
    cleanup.sequence = 2 * round;
    for (const EdgeInsert& e : live) {
      cleanup.deletes.push_back({e.src, e.label, e.dst});
    }
    // The new burst: a few fake accounts spraying edges at random targets.
    GraphDelta burst;
    burst.sequence = 2 * round + 1;
    for (size_t i = 0; i < churn_k; ++i) {
      NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
      NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
      burst.inserts.push_back({src, i % 2 == 0 ? fake : q.edge_label, dst});
    }
    live = burst.inserts;

    double delete_s = 0;
    double inval_frac_delete = 0;
    size_t deleted = 0, missing = 0;
    if (!cleanup.deletes.empty()) {
      auto ref = PatchGraph(current, cleanup);
      if (!ref.ok()) return 1;
      current = std::move(ref)->graph;
      auto ds = s.ApplyDelta(cleanup);
      if (!ds.ok()) return 1;
      delete_s = ds->seconds;
      deleted = ds->edges_deleted;
      missing = ds->deletes_missing;
      inval_frac_delete =
          static_cast<double>(ds->memberships_invalidated) / cache_slots;
    }

    auto ref = PatchGraph(current, burst);
    if (!ref.ok()) return 1;
    current = std::move(ref)->graph;
    auto ds = s.ApplyDelta(burst);
    if (!ds.ok()) return 1;
    double insert_s = ds->seconds;
    double inval_frac_insert =
        static_cast<double>(ds->memberships_invalidated) / cache_slots;

    // Maintained path: re-answer the full identification from the session.
    Timer tq;
    auto maintained = s.IdentifyAll(1.0);
    double requery_s = tq.Seconds();
    if (!maintained.ok()) return 1;

    // Baseline: rebuild a server from the final edge list and answer cold.
    Timer tr;
    auto fresh = RuleServer::Create(current, records, sopt);
    if (!fresh.ok()) return 1;
    auto cold = (*fresh)->IdentifyAll(1.0);
    double rebuild_s = tr.Seconds();
    if (!cold.ok()) return 1;
    if (cold->entities != maintained->entities) {
      std::fprintf(stderr, "maintained/rebuild mismatch at round %zu\n",
                   round);
      return 1;
    }

    rows.push_back({round, ds->edges_inserted, deleted, missing, insert_s,
                    delete_s, requery_s, rebuild_s, inval_frac_insert,
                    inval_frac_delete});
    PrintCell(static_cast<uint64_t>(round));
    PrintCell(static_cast<uint64_t>(ds->edges_inserted));
    PrintCell(static_cast<uint64_t>(deleted));
    PrintCell(insert_s);
    PrintCell(delete_s);
    PrintCell(requery_s);
    PrintCell(rebuild_s);
    PrintCell(inval_frac_insert);
    PrintCell(inval_frac_delete);
    EndRow();
  }

  std::printf(
      "Each round: delete last round's %zu fake edges, insert a fresh\n"
      "burst, re-answer everything. ins/del(s) = ApplyDelta cost per batch;\n"
      "requery(s) = maintained full identification (invalidated centers\n"
      "only); rebuild(s) = fresh RuleServer::Create + cold identification\n"
      "on the same edge list. if_* = fraction of (rule, center) cache\n"
      "entries invalidated — locality means far below 1.\n",
      churn_k);

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp7_delta_churn\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n  \"rows\": [\n",
                 scale, small ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"round\": %zu, \"inserted\": %zu, \"deleted\": %zu, "
          "\"missing\": %zu, \"insert_s\": %.6f, \"delete_s\": %.6f, "
          "\"requery_s\": %.6f, \"rebuild_s\": %.6f, "
          "\"inval_frac_insert\": %.6f, \"inval_frac_delete\": %.6f}%s\n",
          r.round, r.inserted, r.deleted, r.missing, r.insert_s, r.delete_s,
          r.requery_s, r.rebuild_s, r.inval_frac_insert, r.inval_frac_delete,
          i + 1 < rows.size() ? "," : "");
    }
    double maintained_s = 0, rebuild_s = 0, frac = 0;
    for (const Row& r : rows) {
      maintained_s += r.insert_s + r.delete_s + r.requery_s;
      rebuild_s += r.rebuild_s;
      frac += r.inval_frac_insert + r.inval_frac_delete;
    }
    // Per-row numbers at CI sizes are noisy; trajectory comparisons should
    // use the sweep totals.
    std::fprintf(f,
                 "  ],\n  \"totals\": {\"maintained_s\": %.6f, "
                 "\"rebuild_s\": %.6f, \"inval_frac_mean\": %.6f}\n}\n",
                 maintained_s, rebuild_s,
                 frac / (2.0 * static_cast<double>(rows.size())));
    std::fclose(f);
    std::fprintf(stderr, "wrote %s: %zu rows\n", json, rows.size());
  }
  return 0;
}
