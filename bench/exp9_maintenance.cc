// Experiment E9 — the cost of keeping mined rules fresh. Two
// RuleMaintainers ride the same interleaved insert+delete stream:
//
//   maintained: enable_incremental_maintenance = true — per batch, only
//               centers inside the d-hop delta-affected region are
//               re-probed; every other pool membership and match set is
//               carried from the previous pass's evidence.
//   remine:     the ablation (flag off) — every pass re-probes every pool
//               center from scratch, i.e. a sequential re-mine per batch.
//
// Both must produce byte-identical top-k supports/confidences every batch
// (the MaintainEquivalence invariant; a mismatch fails the bench), so the
// only difference the table shows is cost: per-batch maintain seconds
// (freshness lag — how stale the served top-k is after a delta lands),
// centers re-probed vs carried, and the match-set-delta encoding's
// evidence bytes against the raw full encoding. A final from-scratch
// Dmine on the post-stream graph anchors the comparison to the real
// miner's cost and checks the maintained objective against it.
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_maintenance.json CI artifact); GPAR_BENCH_SMALL=1 keeps the
// CI-sized config.

#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/graph_delta.h"
#include "maintain/rule_maintainer.h"
#include "mine/dmine.h"

namespace {

bool SameTopK(const std::vector<gpar::RuleRecord>& a,
              const std::vector<gpar::RuleRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].supp != b[i].supp || a[i].conf != b[i].conf) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const size_t batches = small ? 4 : 10;
  const size_t batch_k = small ? 12 : 48;

  auto g = std::make_shared<const Graph>(MakePokecLike(scale));
  Predicate q = PickPredicate(*g, "like_music");
  std::printf("Pokec-like: %u nodes, %zu edges\n", g->num_nodes(),
              g->num_edges());

  MaintainOptions mopt;
  mopt.mine.k = 6;
  mopt.mine.d = 2;
  mopt.mine.sigma = small ? 3 : 5;
  mopt.mine.max_pattern_edges = 3;
  MaintainOptions ropt = mopt;
  ropt.enable_incremental_maintenance = false;

  Timer ts;
  auto maintained = RuleMaintainer::Seed(g, q, mopt);
  double seed_s = ts.Seconds();
  if (!maintained.ok()) return 1;
  auto remine = RuleMaintainer::Seed(g, q, ropt);
  if (!remine.ok()) return 1;
  RuleMaintainer& m = **maintained;
  RuleMaintainer& r = **remine;
  std::printf("seeded: %zu rules in top-k (F = %.4f) in %.4fs\n",
              m.topk().size(), m.objective(), seed_s);

  struct Row {
    size_t batch;
    size_t inserted, deleted;
    uint64_t affected, reprobed, carried;
    size_t patched, reexpanded, crossings;
    double maintain_s, remine_s;
    uint64_t bytes_full, bytes_delta;
  };
  std::vector<Row> rows;

  PrintHeader("Exp-9 incremental maintenance (identical delta stream)",
              {"batch", "ins", "del", "affected", "reprobed", "carried",
               "maint(s)", "remine(s)"});

  // CDC-style stream: every batch sprays fresh q-labeled edges at random
  // endpoints and cleans up half of the previous batch's spray — inserts
  // and deletes interleave, so sigma crossings happen in both directions.
  std::mt19937_64 rng(4242);
  std::vector<EdgeInsert> live;
  for (size_t b = 0; b < batches; ++b) {
    GraphDelta d;
    d.sequence = b + 1;
    for (size_t i = 0; i < live.size() / 2; ++i) {
      d.deletes.push_back({live[i].src, live[i].label, live[i].dst});
    }
    live.erase(live.begin(), live.begin() + live.size() / 2);
    for (size_t i = 0; i < batch_k; ++i) {
      NodeId src = static_cast<NodeId>(rng() % g->num_nodes());
      NodeId dst = static_cast<NodeId>(rng() % g->num_nodes());
      d.inserts.push_back({src, q.edge_label, dst});
    }
    live.insert(live.end(), d.inserts.begin(), d.inserts.end());

    auto ms = m.ApplyDelta(d);
    if (!ms.ok()) return 1;
    auto rs = r.ApplyDelta(d);
    if (!rs.ok()) return 1;
    if (!SameTopK(m.TopKRecords(), r.TopKRecords())) {
      std::fprintf(stderr, "batch %zu: maintained top-k diverged from the "
                   "remine baseline\n", b);
      return 1;
    }

    Row row;
    row.batch = b;
    row.inserted = ms->edges_inserted;
    row.deleted = ms->edges_deleted;
    row.affected = ms->affected_nodes;
    row.reprobed = ms->centers_reprobed;
    row.carried = ms->centers_carried;
    row.patched = ms->rules_patched;
    row.reexpanded = ms->rules_reexpanded;
    row.crossings = ms->sigma_crossed_up + ms->sigma_crossed_down;
    row.maintain_s = ms->seconds;
    row.remine_s = rs->seconds;
    row.bytes_full = ms->evidence_bytes_full;
    row.bytes_delta = ms->evidence_bytes_delta;
    rows.push_back(row);

    PrintCell(static_cast<uint64_t>(row.batch));
    PrintCell(static_cast<uint64_t>(row.inserted));
    PrintCell(static_cast<uint64_t>(row.deleted));
    PrintCell(row.affected);
    PrintCell(row.reprobed);
    PrintCell(row.carried);
    PrintCell(row.maintain_s);
    PrintCell(row.remine_s);
    EndRow();
  }

  // Anchor: one true from-scratch Dmine on the post-stream graph — what a
  // deployment without the maintainer pays for the same freshness.
  Timer td;
  auto mined = Dmine(*m.graph(), q, mopt.mine);
  double dmine_s = td.Seconds();
  if (!mined.ok()) return 1;
  if (std::abs(mined->objective - m.objective()) > 1e-9) {
    std::fprintf(stderr, "maintained objective %.9f != Dmine %.9f\n",
                 m.objective(), mined->objective);
    return 1;
  }

  double maintain_total = 0, remine_total = 0, max_lag = 0;
  for (const Row& row : rows) {
    maintain_total += row.maintain_s;
    remine_total += row.remine_s;
    if (row.maintain_s > max_lag) max_lag = row.maintain_s;
  }
  const Row& last = rows.back();
  double mean_lag = maintain_total / static_cast<double>(rows.size());
  double speedup = maintain_total > 0 ? remine_total / maintain_total : 0;
  double bytes_saved =
      last.bytes_full > 0
          ? 1.0 - static_cast<double>(last.bytes_delta) /
                      static_cast<double>(last.bytes_full)
          : 0;

  std::printf(
      "\ntotals: maintain %.4fs vs remine-per-batch %.4fs (%.1fx), one\n"
      "from-scratch Dmine on the final graph %.4fs; freshness lag mean\n"
      "%.4fs / max %.4fs; evidence %llu bytes delta-encoded vs %llu full\n"
      "(%.1f%% saved). Top-k supports/confidences stayed identical across\n"
      "both paths every batch, and the final objective matches Dmine.\n",
      maintain_total, remine_total, speedup, dmine_s, mean_lag, max_lag,
      static_cast<unsigned long long>(last.bytes_delta),
      static_cast<unsigned long long>(last.bytes_full), 100.0 * bytes_saved);

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp9_maintenance\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n", scale,
                 small ? "true" : "false");
    std::fprintf(f, "  \"seed_s\": %.6f,\n  \"batches\": [\n", seed_s);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          f,
          "    {\"batch\": %zu, \"inserted\": %zu, \"deleted\": %zu, "
          "\"affected_nodes\": %llu, \"centers_reprobed\": %llu, "
          "\"centers_carried\": %llu, \"rules_patched\": %zu, "
          "\"rules_reexpanded\": %zu, \"sigma_crossings\": %zu, "
          "\"maintain_s\": %.6f, \"remine_s\": %.6f}%s\n",
          row.batch, row.inserted, row.deleted,
          static_cast<unsigned long long>(row.affected),
          static_cast<unsigned long long>(row.reprobed),
          static_cast<unsigned long long>(row.carried), row.patched,
          row.reexpanded, row.crossings, row.maintain_s, row.remine_s,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"totals\": {\"maintain_s\": %.6f, \"remine_s\": %.6f, "
                 "\"speedup\": %.2f, \"dmine_final_s\": %.6f},\n",
                 maintain_total, remine_total, speedup, dmine_s);
    std::fprintf(f,
                 "  \"freshness\": {\"mean_lag_s\": %.6f, "
                 "\"max_lag_s\": %.6f},\n",
                 mean_lag, max_lag);
    std::fprintf(f,
                 "  \"evidence\": {\"bytes_full\": %llu, "
                 "\"bytes_delta\": %llu, \"saved_frac\": %.4f}\n}\n",
                 static_cast<unsigned long long>(last.bytes_full),
                 static_cast<unsigned long long>(last.bytes_delta),
                 bytes_saved);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json);
  }
  return 0;
}
