// Experiment E1a/E1b/E1e — Figures 5(a), 5(b), 5(e): DMine vs DMineno,
// varying the number of processors n on Pokec-like, Google+-like, and
// synthetic graphs. The reported time is the simulated parallel time
// (max per-worker CPU per round + coordinator); see DESIGN.md §5.
//
// Paper shape to reproduce: both curves fall as n grows (DMine ~3.7x /
// 2.69x faster from n=4 to 20); DMine beats DMineno at every n.

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"

namespace gpar::bench {
namespace {

void RunSeries(const std::string& name, const Graph& g, const Predicate& q,
               uint64_t sigma) {
  PrintHeader("Fig 5 DMine varying n — " + name,
              {"n", "DMine(s)", "DMineno(s)", "speedup_vs_n4", "rules"});
  DmineOptions base;
  base.k = 10;
  base.d = 2;
  base.sigma = sigma;
  base.lambda = 0.5;
  base.max_pattern_edges = 3;
  base.seed_edge_limit = 12;
  base.max_candidates_per_round = 120;

  double t4 = 0;
  for (uint32_t n : {4u, 8u, 12u, 16u, 20u}) {
    DmineOptions opt = base;
    opt.num_workers = n;
    auto fast = Dmine(g, q, opt);
    auto slow = Dmine(g, q, DmineNoOptions(opt));
    if (!fast.ok() || !slow.ok()) {
      std::fprintf(stderr, "dmine failed\n");
      return;
    }
    double tf = fast->times.SimulatedParallelSeconds();
    double ts = slow->times.SimulatedParallelSeconds();
    if (n == 4) t4 = tf;
    PrintCell(static_cast<uint64_t>(n));
    PrintCell(tf);
    PrintCell(ts);
    PrintCell(t4 > 0 ? t4 / tf : 0.0);
    PrintCell(static_cast<uint64_t>(fast->stats.accepted));
    EndRow();
  }
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    std::printf("[Pokec-like] |V|+|E| = %zu\n", g.size());
    RunSeries("Pokec-like (Fig 5a)", g, q, 10 * scale);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    std::printf("[GPlus-like] |V|+|E| = %zu\n", g.size());
    RunSeries("Google+-like (Fig 5b)", g, q, 30 * scale);
  }
  {
    Graph g = MakeSynthetic(10000 * scale, 20000 * scale, 100, 42);
    auto freq = FrequentEdgePatterns(g, 1);
    Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
    std::printf("[Synthetic] |V|+|E| = %zu\n", g.size());
    RunSeries("Synthetic (10k,20k) (Fig 5e)", g, q, 5 * scale);
  }
  return 0;
}
