// Experiment E2a — Figure 5(g) and the Exp-2 case study: print the top
// diversified GPARs DMine finds on the Pokec-like and Google+-like graphs
// (the paper's R9-R11 analogues), and contrast them with the patterns a
// GraMi-style frequent-subgraph miner reports — which are frequent but
// reveal little about entity associations (the paper: "mostly cycles of
// users").

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"
#include "mine/fsm.h"
#include "pattern/pattern_ops.h"

namespace gpar::bench {
namespace {

void MineAndShow(const std::string& name, const Graph& g, const Predicate& q,
                 uint64_t sigma) {
  std::printf("\n=== Top diversified GPARs on %s ===\n", name.c_str());
  std::printf("q(x, y) = %s(%s, %s)\n",
              g.labels().Name(q.edge_label).c_str(),
              g.labels().Name(q.x_label).c_str(),
              g.labels().Name(q.y_label).c_str());

  DmineOptions opt;
  opt.num_workers = 4;
  opt.k = 4;
  opt.d = 2;
  opt.sigma = sigma;
  opt.max_pattern_edges = 3;
  opt.seed_edge_limit = 12;
  opt.max_candidates_per_round = 120;
  auto result = Dmine(g, q, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "dmine failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  size_t rank = 1;
  for (const auto& r : result->topk) {
    std::printf("--- #%zu  supp=%llu conf=%.3f matches=%zu ---\n", rank++,
                static_cast<unsigned long long>(r->supp), r->conf,
                r->matches.size());
    std::printf("%s", r->rule.ToString(g.labels()).c_str());
  }
  std::printf("(objective F(Lk) = %.4f, %zu rules accepted)\n",
              result->objective, result->stats.accepted);
}

void FrequentPatternsForContrast(const Graph& g) {
  std::printf("\n=== GraMi-style frequent patterns (for contrast) ===\n");
  FsmOptions opt;
  opt.min_support = 40;
  opt.max_edges = 2;
  opt.seed_edge_limit = 6;
  opt.max_patterns = 5;
  opt.embedding_cap = 20000;
  auto patterns = MineFrequentSubgraphs(g, opt);
  size_t cycles = 0;
  for (const auto& fp : patterns) {
    std::printf("--- MNI support %llu%s ---\n",
                static_cast<unsigned long long>(fp.support),
                fp.pattern.num_edges() >= fp.pattern.num_nodes() ? " (cyclic)"
                                                                 : "");
    if (fp.pattern.num_edges() >= fp.pattern.num_nodes()) ++cycles;
    std::printf("%s", fp.pattern.ToString(g.labels()).c_str());
  }
  std::printf(
      "Frequent patterns rank by raw frequency; they carry no consequent,\n"
      "no confidence, and no diversification — the paper's observation that\n"
      "frequency alone \"reveals little insight about entity associations\".\n");
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    MineAndShow("Pokec-like", g, q, 8 * scale);
    FrequentPatternsForContrast(g);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    MineAndShow("Google+-like (R11-style: school/employer/major)", g, q,
                25 * scale);
  }
  return 0;
}
