// Ablation — the optimization claims of Section 5.2 / Section 6: what do
// early termination, guided search, and multi-pattern sharing each buy?
//
// Rows: full Match; Match without guided search; Match without sharing;
// Match without both (early termination only); Matchc (no early
// termination); disVF2 (conventional baseline). Paper's aggregate claims:
// Match ≈ 1.27x over Matchc and 6.24x over disVF2 on real-life graphs.

#include <cstdio>

#include "bench_common.h"
#include "identify/eip.h"

namespace gpar::bench {
namespace {

double RunOnce(const Graph& g, const std::vector<Gpar>& sigma,
               EipAlgorithm algo, bool guided, bool share,
               uint64_t* queries) {
  EipOptions opt;
  opt.algorithm = algo;
  opt.num_workers = 8;
  opt.eta = 1.5;
  opt.enumeration_cap = 50000;  // bound the enumeration baselines
  opt.use_guided_search = guided;
  opt.share_multi_patterns = share;
  auto r = IdentifyEntities(g, sigma, opt);
  if (!r.ok()) return -1;
  *queries = r->exists_queries;
  return r->times.SimulatedParallelSeconds();
}

void RunSeries(const std::string& name, const Graph& g,
               const std::vector<Gpar>& sigma) {
  PrintHeader("Match optimization ablation — " + name,
              {"variant", "time(s)", "queries"});
  struct Variant {
    const char* label;
    EipAlgorithm algo;
    bool guided;
    bool share;
  };
  for (const Variant& v : {
           Variant{"Match(full)", EipAlgorithm::kMatch, true, true},
           Variant{"-guided", EipAlgorithm::kMatch, false, true},
           Variant{"-sharing", EipAlgorithm::kMatch, true, false},
           Variant{"-both", EipAlgorithm::kMatch, false, false},
           Variant{"Matchc", EipAlgorithm::kMatchc, false, false},
           Variant{"disVF2", EipAlgorithm::kDisVf2, false, false},
       }) {
    uint64_t queries = 0;
    double t = RunOnce(g, sigma, v.algo, v.guided, v.share, &queries);
    PrintCell(std::string(v.label));
    PrintCell(t);
    PrintCell(queries);
    EndRow();
  }
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    auto sigma = MakeSigma(g, q, 24, 5, 8, 2);
    RunSeries("Pokec-like", g, sigma);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    auto sigma = MakeSigma(g, q, 24, 5, 8, 2);
    RunSeries("Google+-like", g, sigma);
  }
  return 0;
}
