// Micro-benchmarks (google-benchmark) for the matching layer: VF2 vs
// guided search, sketch construction, and multi-pattern sharing. Not a
// paper figure — engineering-level visibility into the EIP cost model.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/sketch.h"
#include "match/guided.h"
#include "match/matcher.h"
#include "match/multi_pattern.h"

namespace {

using namespace gpar;
using namespace gpar::bench;

struct Fixture {
  Graph graph = MakePokecLike(1);
  Predicate q = PickPredicate(graph, "like_music");
  std::vector<Gpar> sigma = MakeSigma(graph, q, 8, 5, 8, 2);
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_VF2ExistsAt(benchmark::State& state) {
  Fixture& f = GetFixture();
  VF2Matcher m(f.graph);
  auto centers = f.graph.nodes_with_label(f.q.x_label);
  size_t i = 0;
  for (auto _ : state) {
    const Gpar& r = f.sigma[i % f.sigma.size()];
    NodeId v = centers[(i * 7919) % centers.size()];
    benchmark::DoNotOptimize(m.ExistsAt(r.pr(), v));
    ++i;
  }
}
BENCHMARK(BM_VF2ExistsAt);

void BM_GuidedExistsAt(benchmark::State& state) {
  Fixture& f = GetFixture();
  GuidedMatcher m(f.graph, 2);
  auto centers = f.graph.nodes_with_label(f.q.x_label);
  size_t i = 0;
  for (auto _ : state) {
    const Gpar& r = f.sigma[i % f.sigma.size()];
    NodeId v = centers[(i * 7919) % centers.size()];
    benchmark::DoNotOptimize(m.ExistsAt(r.pr(), v));
    ++i;
  }
}
BENCHMARK(BM_GuidedExistsAt);

void BM_VF2EnumerateAll(benchmark::State& state) {
  Fixture& f = GetFixture();
  VF2Matcher m(f.graph);
  auto centers = f.graph.nodes_with_label(f.q.x_label);
  size_t i = 0;
  for (auto _ : state) {
    const Gpar& r = f.sigma[i % f.sigma.size()];
    NodeId v = centers[(i * 7919) % centers.size()];
    Anchor a{r.pr().x(), v};
    benchmark::DoNotOptimize(m.Enumerate(
        r.pr(), {&a, 1}, [](std::span<const NodeId>) { return true; },
        10000));
    ++i;
  }
}
BENCHMARK(BM_VF2EnumerateAll);

void BM_SketchIndexBuild(benchmark::State& state) {
  Graph g = MakeSynthetic(2000, 6000, 50, 3);
  for (auto _ : state) {
    SketchIndex idx = SketchIndex::Build(g, 2);
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_SketchIndexBuild);

void BM_MultiPatternSharedEval(benchmark::State& state) {
  Fixture& f = GetFixture();
  VF2Matcher m(f.graph);
  std::vector<const Pattern*> pats;
  for (const Gpar& r : f.sigma) pats.push_back(&r.pr());
  MultiPatternEvaluator eval(pats);
  auto centers = f.graph.nodes_with_label(f.q.x_label);
  std::vector<char> out;
  size_t i = 0;
  for (auto _ : state) {
    eval.EvaluateAt(m, centers[(i * 7919) % centers.size()], &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_MultiPatternSharedEval);

void BM_MultiPatternNaiveEval(benchmark::State& state) {
  Fixture& f = GetFixture();
  VF2Matcher m(f.graph);
  auto centers = f.graph.nodes_with_label(f.q.x_label);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = centers[(i * 7919) % centers.size()];
    for (const Gpar& r : f.sigma) {
      benchmark::DoNotOptimize(m.ExistsAt(r.pr(), v));
    }
    ++i;
  }
}
BENCHMARK(BM_MultiPatternNaiveEval);

}  // namespace

BENCHMARK_MAIN();
