// Experiment E1g — Section 6 "Varying d" (text-only result): DMine and
// DMineno on synthetic graphs with radius bound d in {1, 2, 3}.
//
// Paper shape: both take longer for larger d; DMine is less sensitive
// (its pruning cuts candidates before they are verified).

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  Graph g = MakeSynthetic(10000 * scale, 20000 * scale, 100, 42);
  auto freq = FrequentEdgePatterns(g, 1);
  Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};

  PrintHeader("Exp-1 DMine varying d (synthetic, n=8)",
              {"d", "DMine(s)", "DMineno(s)", "verified", "rules"});
  for (uint32_t d : {1u, 2u, 3u}) {
    DmineOptions opt;
    opt.num_workers = 8;
    opt.k = 10;
    opt.d = d;
    opt.sigma = 5 * scale;
    opt.max_pattern_edges = 3;
    opt.seed_edge_limit = 10;
    opt.max_candidates_per_round = 100;
    auto fast = Dmine(g, q, opt);
    auto slow = Dmine(g, q, DmineNoOptions(opt));
    if (!fast.ok() || !slow.ok()) return 1;
    PrintCell(static_cast<uint64_t>(d));
    PrintCell(fast->times.SimulatedParallelSeconds());
    PrintCell(slow->times.SimulatedParallelSeconds());
    PrintCell(static_cast<uint64_t>(fast->stats.candidates_verified));
    PrintCell(static_cast<uint64_t>(fast->stats.accepted));
    EndRow();
  }
  return 0;
}
