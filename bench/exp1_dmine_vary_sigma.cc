// Experiment E1c/E1d — Figures 5(c), 5(d): DMine vs DMineno, varying the
// support threshold σ (n = 4, d = 2).
//
// Paper shape: both take longer at smaller σ (more candidates pass the
// support filter); DMine wins everywhere and is less sensitive to σ thanks
// to its filtering.

#include <cstdio>

#include "bench_common.h"
#include "mine/dmine.h"

namespace gpar::bench {
namespace {

void RunSeries(const std::string& name, const Graph& g, const Predicate& q,
               const std::vector<uint64_t>& sigmas) {
  PrintHeader("Fig 5 DMine varying sigma — " + name,
              {"sigma", "DMine(s)", "DMineno(s)", "verified", "rules"});
  for (uint64_t sigma : sigmas) {
    DmineOptions opt;
    opt.num_workers = 4;
    opt.k = 10;
    opt.d = 2;
    opt.sigma = sigma;
    opt.max_pattern_edges = 3;
    opt.seed_edge_limit = 12;
    opt.max_candidates_per_round = 120;
    auto fast = Dmine(g, q, opt);
    auto slow = Dmine(g, q, DmineNoOptions(opt));
    if (!fast.ok() || !slow.ok()) return;
    PrintCell(sigma);
    PrintCell(fast->times.SimulatedParallelSeconds());
    PrintCell(slow->times.SimulatedParallelSeconds());
    PrintCell(static_cast<uint64_t>(fast->stats.candidates_verified));
    PrintCell(static_cast<uint64_t>(fast->stats.accepted));
    EndRow();
  }
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  // Geometric σ ranges spanning the rule-support distribution, so the
  // threshold actually gates which rules are accepted and extended.
  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    std::vector<uint64_t> sigmas;
    for (uint64_t s : {8, 16, 32, 64, 128}) sigmas.push_back(s * scale);
    RunSeries("Pokec-like (Fig 5c)", g, q, sigmas);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    std::vector<uint64_t> sigmas;
    for (uint64_t s : {25, 50, 100, 200, 400}) sigmas.push_back(s * scale);
    RunSeries("Google+-like (Fig 5d)", g, q, sigmas);
  }
  return 0;
}
