// Experiment E3h — Figure 5(o): Match vs Matchc vs disVF2 on synthetic
// graphs of growing size (n = 4, ||Σ|| = 24, d = 2, η = 1.5).
//
// Paper shape: all grow with |G|; Match performs best and is least
// sensitive (paper: 163s vs 922s for disVF2 at (50M, 100M)).

#include <cstdio>

#include "bench_common.h"
#include "identify/eip.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  PrintHeader("Fig 5(o) Match varying |G| (synthetic, n=4)",
              {"V", "E", "Match(s)", "Matchc(s)", "disVF2(s)"});
  for (uint32_t step = 1; step <= 5; ++step) {
    uint32_t v = 10000 * step * scale;
    uint64_t e = 20000ull * step * scale;
    Graph g = MakeSynthetic(v, e, 100, 42 + step);
    auto freq = FrequentEdgePatterns(g, 1);
    Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
    auto sigma = MakeSigma(g, q, 24, 4, 6, 2);
    if (sigma.empty()) continue;

    PrintCell(static_cast<uint64_t>(v));
    PrintCell(e);
    for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                              EipAlgorithm::kDisVf2}) {
      EipOptions opt;
      opt.algorithm = algo;
      opt.num_workers = 4;
      opt.eta = 1.5;
      opt.enumeration_cap = 50000;  // bound the enumeration baselines
      auto r = IdentifyEntities(g, sigma, opt);
      PrintCell(r.ok() ? r->times.SimulatedParallelSeconds() : -1.0);
    }
    EndRow();
  }
  return 0;
}
