// Experiment E5 — the serving subsystem: cold vs warm-cache QPS for batched
// identify requests against a long-lived RuleServer, the warm full
// identification vs the per-request batch IdentifyEntities baseline (the
// only pre-existing way to answer an online request), and the cost +
// locality of edge-delta invalidation, across rule-set sizes.
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_serve.json CI artifact tracking serve-path speedups PR-over-PR);
// GPAR_BENCH_SMALL=1 keeps the CI-sized config.

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/graph_delta.h"
#include "identify/eip.h"
#include "serve/rule_server.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const uint32_t workers = 4;
  const size_t batch_size = 16;  // centers per serve request

  struct Row {
    size_t rules;
    size_t candidates;
    double load_s;
    double cold_qps, warm_qps, after_delta_qps;
    double batch_s, warm_all_s;
    double delta_s;
    uint64_t invalidated, sketches_refreshed;
  };
  std::vector<Row> rows;

  Graph g = MakePokecLike(scale);
  Predicate q = PickPredicate(g, "like_music");
  std::printf("Pokec-like: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  PrintHeader("Exp-5 rule serving (cold/warm QPS, delta invalidation)",
              {"rules", "cands", "load(s)", "cold_qps", "warm_qps",
               "delta_qps", "batch(s)", "warm_all(s)", "delta(s)", "inval"});

  std::vector<size_t> sizes = small ? std::vector<size_t>{2, 6}
                                    : std::vector<size_t>{2, 6, 12};
  for (size_t m : sizes) {
    auto sigma = MakeSigma(g, q, m, 4, 5, 2);
    if (sigma.size() < 2) continue;
    std::vector<RuleRecord> records;
    for (const Gpar& r : sigma) records.push_back({r, 0, 0.0});

    // Baseline: one batch IdentifyEntities per "request".
    EipOptions bopt;
    bopt.num_workers = workers;
    bopt.eta = 1.0;
    Timer tb;
    auto batch = IdentifyEntities(g, sigma, bopt);
    double batch_s = tb.Seconds();
    if (!batch.ok()) return 1;

    RuleServerOptions sopt;
    sopt.num_workers = workers;
    Timer tl;
    auto server = RuleServer::Create(g, records, sopt);
    double load_s = tl.Seconds();
    if (!server.ok()) return 1;
    RuleServer& s = **server;

    // Request set: random candidate batches covering the candidate pool
    // roughly once (capped so cold runs stay CI-sized).
    std::mt19937_64 rng(99 + m);
    const auto& cands = s.candidates();
    size_t num_requests =
        std::min<size_t>(small ? 64 : 512,
                         std::max<size_t>(cands.size() / batch_size, 1));
    std::vector<ServeRequest> requests(num_requests);
    for (auto& req : requests) {
      for (size_t i = 0; i < batch_size; ++i) {
        req.centers.push_back(cands[rng() % cands.size()]);
      }
    }

    auto run_requests = [&]() -> double {
      Timer t;
      for (const ServeRequest& req : requests) {
        auto reply = s.Serve(req);
        if (!reply.ok()) std::abort();
      }
      return static_cast<double>(requests.size()) / t.Seconds();
    };

    double cold_qps = run_requests();
    double warm_qps = run_requests();

    // Warm full identification (the batch-equivalent answer, from cache).
    Timer tw;
    auto warm_all = s.IdentifyAll(1.0);
    double warm_all_s = tw.Seconds();
    if (!warm_all.ok() || warm_all->entities != batch->entities) {
      std::fprintf(stderr, "serve/batch mismatch at m=%zu\n", m);
      return 1;
    }

    // Delta: a few random inserts, then the same request set.
    std::vector<EdgeInsert> inserts;
    {
      LabelId follows = g.labels().Lookup("follows");
      if (follows == kNoLabel) follows = q.edge_label;
      for (int i = 0; i < 8; ++i) {
        inserts.push_back(
            {static_cast<NodeId>(rng() % g.num_nodes()), follows,
             static_cast<NodeId>(rng() % g.num_nodes())});
      }
    }
    auto ds = s.ApplyDelta(inserts);
    if (!ds.ok()) return 1;
    double after_delta_qps = run_requests();

    rows.push_back({sigma.size(), cands.size(), load_s, cold_qps, warm_qps,
                    after_delta_qps, batch_s, warm_all_s, ds->seconds,
                    ds->memberships_invalidated, ds->sketches_refreshed});
    PrintCell(static_cast<uint64_t>(sigma.size()));
    PrintCell(static_cast<uint64_t>(cands.size()));
    PrintCell(load_s);
    PrintCell(cold_qps);
    PrintCell(warm_qps);
    PrintCell(after_delta_qps);
    PrintCell(batch_s);
    PrintCell(warm_all_s);
    PrintCell(ds->seconds);
    PrintCell(ds->memberships_invalidated);
    EndRow();
  }

  std::printf(
      "qps = %zu-center Serve requests per second (cold: empty cache; warm:\n"
      "repeat of the same request set; delta_qps: after an 8-edge delta).\n"
      "batch(s) = one IdentifyEntities call — the per-request baseline a\n"
      "server-less deployment pays; warm_all(s) = the same answer from the\n"
      "warm session. inval = (rule, center) memberships invalidated by the\n"
      "delta (locality: far below rules x candidates).\n",
      batch_size);

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp5_serve\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n  \"rows\": [\n",
                 scale, small ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"rules\": %zu, \"candidates\": %zu, \"load_s\": %.6f, "
          "\"cold_qps\": %.2f, \"warm_qps\": %.2f, "
          "\"after_delta_qps\": %.2f, \"batch_s\": %.6f, "
          "\"warm_all_s\": %.6f, \"delta_s\": %.6f, "
          "\"memberships_invalidated\": %llu, "
          "\"sketches_refreshed\": %llu}%s\n",
          r.rules, r.candidates, r.load_s, r.cold_qps, r.warm_qps,
          r.after_delta_qps, r.batch_s, r.warm_all_s, r.delta_s,
          static_cast<unsigned long long>(r.invalidated),
          static_cast<unsigned long long>(r.sketches_refreshed),
          i + 1 < rows.size() ? "," : "");
    }
    double tot_cold = 0, tot_warm = 0, tot_batch = 0, tot_warm_all = 0,
           tot_delta = 0;
    for (const Row& r : rows) {
      tot_cold += r.cold_qps;
      tot_warm += r.warm_qps;
      tot_batch += r.batch_s;
      tot_warm_all += r.warm_all_s;
      tot_delta += r.delta_s;
    }
    // Per-row numbers at CI sizes are noisy; trajectory comparisons should
    // use the sweep totals.
    std::fprintf(f,
                 "  ],\n  \"totals\": {\"cold_qps\": %.2f, "
                 "\"warm_qps\": %.2f, \"batch_s\": %.6f, "
                 "\"warm_all_s\": %.6f, \"delta_s\": %.6f}\n}\n",
                 tot_cold, tot_warm, tot_batch, tot_warm_all, tot_delta);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s: %zu rows\n", json, rows.size());
  }
  return 0;
}
