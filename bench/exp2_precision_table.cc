// Experiment E2b — the Exp-2 precision table: cross-validated prediction
// precision of GPARs ranked by the paper's BF/LCWA conf vs PCA confidence
// vs image-based confidence.
//
// Protocol (following the paper / [17]): split the Pokec-like graph into a
// training half F1 and a validation half F2 (random person split, items
// kept in both); mine the rule pool on F1; rank it by each metric; report
// prec(R) = supp(R, F2) / supp(Q, F2) averaged over the top 10/30/60.
//
// Paper shape to reproduce: conf outranks PCAconf and Iconf at every k
// (paper: 0.423/0.388/0.381 for conf vs ~0.27 for the others).

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "graph/graph_builder.h"
#include "match/matcher.h"
#include "mine/dmine.h"
#include "mine/naive_miner.h"
#include "rule/metrics.h"

namespace gpar::bench {
namespace {

/// Splits persons (nodes labeled `person`) into two halves; each half is
/// the subgraph induced by its persons plus all non-person nodes.
std::pair<Graph, Graph> SplitGraph(const Graph& g, LabelId person,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> half1, half2;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node_label(v) != person) {
      half1.push_back(v);
      half2.push_back(v);
    } else if (rng.Bernoulli(0.5)) {
      half1.push_back(v);
    } else {
      half2.push_back(v);
    }
  }
  auto build = [&](const std::vector<NodeId>& nodes) {
    GraphBuilder b(g.labels_ptr());
    std::vector<NodeId> to_local(g.num_nodes(), kInvalidNode);
    for (NodeId v : nodes) to_local[v] = b.AddNode(g.node_label(v));
    for (NodeId v : nodes) {
      for (const AdjEntry& e : g.out_edges(v)) {
        if (to_local[e.other] != kInvalidNode) {
          b.AddEdgeUnchecked(to_local[v], e.label, to_local[e.other]);
        }
      }
    }
    return std::move(b).Build();
  };
  return {build(half1), build(half2)};
}

struct Ranked {
  const MinedRule* rule;
  double key;
};

/// QStats on the validation half, cached per predicate.
using StatsCache = std::map<std::tuple<LabelId, LabelId, LabelId>, QStats>;

const QStats& ValidationStats(Matcher& m2, const Predicate& q,
                              StatsCache* cache) {
  auto key = std::make_tuple(q.x_label, q.edge_label, q.y_label);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, ComputeQStats(m2, q)).first;
  }
  return it->second;
}

double AvgPrecision(const std::vector<Ranked>& ranked, size_t top_k,
                    Matcher& m2, StatsCache* cache) {
  double sum = 0;
  size_t used = 0;
  for (size_t i = 0; i < ranked.size() && used < top_k; ++i) {
    const Gpar& r = ranked[i].rule->rule;
    const QStats& stats2 = ValidationStats(m2, r.predicate(), cache);
    GparEval eval = EvaluateGpar(m2, r, stats2);
    if (eval.supp_q_ant == 0) continue;
    sum += static_cast<double>(eval.supp_r) /
           static_cast<double>(eval.supp_q_ant);
    ++used;
  }
  return used > 0 ? sum / static_cast<double>(used) : 0;
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  Graph g = MakePokecLike(scale, /*seed=*/4242);
  LabelId person = g.labels().Lookup("user");
  auto [f1, f2] = SplitGraph(g, person, 99);
  std::printf("train |G| = %zu, validate |G| = %zu\n", f1.size(), f2.size());

  // Pool of rules mined on F1 over 5 predicates, as in the paper's setup
  // (lambda = 0: pure relevance). The BF-vs-PCA gap comes from how the
  // metrics weigh rules *across* predicates: within one predicate both
  // rank identically (they differ by the constant supp(~q)/supp(q)).
  std::vector<Predicate> predicates;
  for (const char* edge :
       {"like_music", "like_book", "does_sport", "watches", "member_of"}) {
    predicates.push_back(PickPredicate(f1, edge));
  }

  std::vector<std::shared_ptr<MinedRule>> pool;
  VF2Matcher m1(f1);
  std::vector<QStats> stats1;
  for (const Predicate& q : predicates) {
    DmineOptions opt;
    opt.k = 10;
    opt.d = 2;
    opt.sigma = 3 * scale;
    opt.lambda = 0;
    opt.max_pattern_edges = 3;
    opt.seed_edge_limit = 10;
    opt.max_candidates_per_round = 100;
    auto mined = NaiveMine(f1, q, opt);
    if (!mined.ok()) continue;
    for (const auto& r : mined->all_rules) pool.push_back(r);
    stats1.push_back(ComputeQStats(m1, q));
  }
  std::printf("pool: %zu rules across %zu predicates\n", pool.size(),
              predicates.size());

  // Rank the pool by each metric.
  auto make_ranking = [&](auto key_fn) {
    std::vector<Ranked> out;
    for (const auto& r : pool) out.push_back({r.get(), key_fn(*r)});
    std::stable_sort(out.begin(), out.end(),
                     [](const Ranked& a, const Ranked& b) {
                       return a.key > b.key;
                     });
    return out;
  };

  auto by_conf = make_ranking([](const MinedRule& r) { return r.conf; });
  auto by_pca = make_ranking([](const MinedRule& r) {
    return r.supp_qqbar == 0 ? 0.0
                             : static_cast<double>(r.supp) /
                                   static_cast<double>(r.supp_qqbar);
  });
  // Iconf: recompute with minimum-image supports on F1.
  auto by_iconf = make_ranking([&](const MinedRule& r) {
    QStats stats = ComputeQStats(m1, r.rule.predicate());
    return ImageBasedConf(m1, r.rule, stats, r.supp_qqbar, 20000);
  });

  VF2Matcher m2(f2);
  StatsCache cache;
  PrintHeader("Exp-2 prediction precision (Pokec-like split)",
              {"metric", "top 10", "top 30", "top 60"});
  struct Row {
    const char* name;
    const std::vector<Ranked>* ranking;
  };
  for (const Row& row : {Row{"PCAconf", &by_pca}, Row{"Iconf", &by_iconf},
                         Row{"conf", &by_conf}}) {
    PrintCell(std::string(row.name));
    for (size_t k : {10u, 30u, 60u}) {
      PrintCell(AvgPrecision(*row.ranking, k, m2, &cache));
    }
    EndRow();
  }
  std::printf(
      "prec(R) = supp(R, F2) / supp(Q, F2): correctly predicted customers\n"
      "among antecedent matches in held-out data. Expected shape: conf >\n"
      "PCAconf, Iconf at every k (paper: 0.42/0.39/0.38 vs ~0.27).\n");
  return 0;
}
