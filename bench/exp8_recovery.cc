// Experiment E8 — the price of durability and the cost of losing a shard.
// Three measurements around the fault-tolerance layer:
//
//   1. Journal overhead: a delta stream applied through RuleServer with
//      and without an attached journal (and with fsync-per-append), so
//      the write-ahead tax on ApplyDelta is a tracked number.
//   2. Replay throughput: RuleServer::Recover over the journal the stream
//      just wrote — frames/s and the end-to-end rebuild time, checked
//      result-identical to the maintained session.
//   3. Degraded-mode serving: warm all-centers QPS of a k-shard
//      ShardedRuleServer, healthy vs one shard down (failpoint-injected),
//      plus the surviving-entity fraction of each degraded answer.
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_recovery.json CI artifact); GPAR_BENCH_SMALL=1 keeps the CI-sized
// config.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "graph/graph_delta.h"
#include "graph/graph_snapshot.h"
#include "rule/rule_snapshot.h"
#include "serve/delta_journal.h"
#include "serve/rule_server.h"
#include "serve/sharded_rule_server.h"

namespace {

// A batch of random edges between existing nodes; reusing q's edge label
// for half of them keeps the stream adversarial for the caches.
gpar::GraphDelta MakeBatch(const gpar::Graph& g, gpar::LabelId label,
                           std::mt19937_64& rng, size_t k) {
  gpar::GraphDelta d;
  for (size_t i = 0; i < k; ++i) {
    gpar::NodeId src = static_cast<gpar::NodeId>(rng() % g.num_nodes());
    gpar::NodeId dst = static_cast<gpar::NodeId>(rng() % g.num_nodes());
    d.inserts.push_back({src, label, dst});
  }
  return d;
}

}  // namespace

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const uint32_t workers = 4;
  const size_t batches = small ? 6 : 16;
  const size_t batch_k = small ? 16 : 64;
  const size_t qps_rounds = small ? 4 : 12;
  const std::string dir = "/tmp/gpar_exp8";

  Graph g = MakePokecLike(scale);
  Predicate q = PickPredicate(g, "like_music");
  std::printf("Pokec-like: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());
  auto sigma = MakeSigma(g, q, 6, 4, 5, 2);
  if (sigma.size() < 2) return 1;
  std::vector<RuleRecord> records;
  for (const Gpar& r : sigma) records.push_back({r, 0, 0.0});

  RuleServerOptions sopt;
  sopt.num_workers = workers;

  // ---- 1. journal overhead: the same stream, three durability modes ----
  struct Mode {
    const char* name;
    bool journaled;
    bool fsync;
    double apply_s = 0;
    uint64_t journal_bytes = 0;
  };
  std::vector<Mode> modes = {{"off", false, false},
                             {"journal", true, false},
                             {"fsync", true, true}};
  for (Mode& mode : modes) {
    auto server = RuleServer::Create(g, records, sopt);
    if (!server.ok()) return 1;
    const std::string wal = dir + "_" + mode.name + ".wal";
    std::remove(wal.c_str());
    if (mode.journaled) {
      DeltaJournalOptions jopt;
      jopt.fsync_on_append = mode.fsync;
      if (!(*server)->AttachJournal(wal, jopt).ok()) return 1;
    }
    std::mt19937_64 rng(99);  // identical stream for every mode
    Timer t;
    for (size_t b = 0; b < batches; ++b) {
      auto ds = (*server)->ApplyDelta(MakeBatch(g, q.edge_label, rng, batch_k));
      if (!ds.ok()) return 1;
      mode.journal_bytes += ds->journal_bytes;
    }
    mode.apply_s = t.Seconds();
  }

  PrintHeader("Exp-8a journal overhead (identical delta stream)",
              {"mode", "apply(s)", "bytes"});
  for (const Mode& m : modes) {
    PrintCell(std::string(m.name));
    PrintCell(m.apply_s);
    PrintCell(m.journal_bytes);
    EndRow();
  }

  // ---- 2. replay throughput: recover the journaled stream ----
  const std::string gpath = dir + ".snap";
  const std::string rpath = dir + ".rules";
  const std::string wal = dir + "_journal.wal";
  if (!WriteGraphSnapshotFile(g, gpath).ok()) return 1;
  if (!WriteRuleSetSnapshotFile(records, g.labels(), rpath).ok()) return 1;
  JournalReplayStats replay;
  Timer tr;
  auto recovered = RuleServer::Recover(gpath, rpath, wal, sopt, {}, &replay);
  double recover_s = tr.Seconds();
  if (!recovered.ok()) return 1;
  double frames_per_s =
      recover_s > 0 ? static_cast<double>(replay.frames) / recover_s : 0;
  std::printf("Exp-8b recovery: %zu frames (%llu bytes) in %.4fs = %.1f "
              "frames/s\n",
              replay.frames,
              static_cast<unsigned long long>(replay.valid_bytes), recover_s,
              frames_per_s);

  // ---- 3. degraded-mode QPS: k shards, healthy vs one down ----
  ShardedRuleServerOptions shopt;
  shopt.num_shards = 4;
  shopt.shard_options.num_workers = 2;
  shopt.max_shard_retries = 0;  // a failure degrades immediately
  auto sharded = ShardedRuleServer::Create(g, records, shopt);
  if (!sharded.ok()) return 1;
  ShardedRuleServer& sh = **sharded;
  SessionRequest all;
  all.all_centers = true;
  all.eta = 1.0;
  auto warmup = sh.Query(all);  // warm every shard's cache
  if (!warmup.ok()) return 1;
  const double healthy_entities =
      static_cast<double>(warmup->entities.size());

  Timer th;
  for (size_t i = 0; i < qps_rounds; ++i) {
    if (!sh.Query(all).ok()) return 1;
  }
  double healthy_s = th.Seconds();

  // One shard down for the whole degraded sweep: the first query's failure
  // is permanent (fires = 0), so every round answers from k-1 shards.
  FailpointSpec spec;
  spec.fires = 0;
  spec.probability = 1.0 / static_cast<double>(shopt.num_shards);
  spec.seed = 7;  // deterministic victim selection per round
  FailpointRegistry::Instance().Arm("shard.query", spec);
  double degraded_entities = 0;
  size_t degraded_hits = 0;
  Timer td;
  for (size_t i = 0; i < qps_rounds; ++i) {
    auto r = sh.Query(all);
    if (!r.ok()) return 1;
    if (r->degraded) {
      ++degraded_hits;
      degraded_entities += static_cast<double>(r->entities.size());
    }
  }
  double degraded_s = td.Seconds();
  FailpointRegistry::Instance().DisarmAll();

  double healthy_qps =
      healthy_s > 0 ? static_cast<double>(qps_rounds) / healthy_s : 0;
  double degraded_qps =
      degraded_s > 0 ? static_cast<double>(qps_rounds) / degraded_s : 0;
  double survive_frac =
      degraded_hits > 0 && healthy_entities > 0
          ? degraded_entities /
                (static_cast<double>(degraded_hits) * healthy_entities)
          : 1.0;

  PrintHeader("Exp-8c degraded serving (k=4, failpoint-injected loss)",
              {"mode", "qps", "entity_frac"});
  PrintCell(std::string("healthy"));
  PrintCell(healthy_qps);
  PrintCell(1.0);
  EndRow();
  PrintCell(std::string("degraded"));
  PrintCell(degraded_qps);
  PrintCell(survive_frac);
  EndRow();

  std::printf(
      "8a: one delta stream through ApplyDelta, journal off / on / fsync —\n"
      "the write-ahead tax. 8b: RuleServer::Recover replaying that journal.\n"
      "8c: all-centers QPS with shard.query failing probabilistically —\n"
      "degraded answers keep the surviving shards' entities (entity_frac).\n");

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp8_recovery\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n", scale,
                 small ? "true" : "false");
    std::fprintf(f, "  \"journal_overhead\": [\n");
    for (size_t i = 0; i < modes.size(); ++i) {
      const Mode& m = modes[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"apply_s\": %.6f, "
                   "\"journal_bytes\": %llu}%s\n",
                   m.name, m.apply_s,
                   static_cast<unsigned long long>(m.journal_bytes),
                   i + 1 < modes.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"recovery\": {\"frames\": %zu, \"valid_bytes\": %llu, "
                 "\"recover_s\": %.6f, \"frames_per_s\": %.1f},\n",
                 replay.frames,
                 static_cast<unsigned long long>(replay.valid_bytes),
                 recover_s, frames_per_s);
    std::fprintf(f,
                 "  \"degraded\": {\"healthy_qps\": %.2f, "
                 "\"degraded_qps\": %.2f, \"degraded_rounds\": %zu, "
                 "\"entity_frac\": %.4f}\n}\n",
                 healthy_qps, degraded_qps, degraded_hits, survive_frac);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", json);
  }
  return 0;
}
