// Experiment E3e/E3f — Figures 5(l), 5(m): Match vs Matchc vs disVF2,
// varying the maximum GPAR radius d from 1 to 3 (n = 8, ||Σ|| = 20).
// (The paper sweeps to d = 5 on cluster hardware; radius > 3 patterns on a
// laptop-scale graph explode the d-neighborhoods — set GPAR_BENCH_SCALE
// and edit kMaxD to push further.)
//
// Paper shape: every algorithm slows with d (bigger neighborhoods);
// Match and Matchc are far less sensitive than disVF2.

#include <cstdio>

#include "bench_common.h"
#include "identify/eip.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  constexpr uint32_t kMaxD = 3;

  // Radius-d partitioning replicates N_d per candidate; at d = 3 on the
  // full-size generated graphs the d-neighborhood approaches the whole
  // graph, so this sweep uses reduced editions (the d-sensitivity shape is
  // what matters, not the absolute base size).
  struct Dataset {
    std::string name;
    Graph graph;
    Predicate q;
  };
  std::vector<Dataset> datasets;
  {
    SocialGraphSpec spec;
    spec.num_persons = 800 * scale;
    spec.person_label = "user";
    spec.social_avg_degree = 6.0;
    spec.social_edge_labels = {"follow", "friend"};
    spec.num_communities = 12 * scale;
    spec.seed = 42;
    spec.domains = {
        {"music_", 20, 3, "like_music", 2, 0.6, 0.05, false},
        {"hobby_", 20, 2, "hobby", 2, 0.6, 0.05, false},
        {"city_", 10, 1, "live_in", 1, 0.95, 0.01, false},
    };
    Graph g = MakeSocialGraph(spec);
    Predicate q = PickPredicate(g, "like_music");
    datasets.push_back({"Pokec-like/small (Fig 5l)", std::move(g), q});
  }
  {
    SocialGraphSpec spec;
    spec.num_persons = 1000 * scale;
    spec.person_label = "person";
    spec.social_avg_degree = 7.0;
    spec.social_edge_labels = {"follow"};
    spec.num_communities = 10 * scale;
    spec.seed = 43;
    spec.domains = {
        {"employer", 15, 1, "works_at", 1, 0.8, 0.05, false},
        {"major", 12, 1, "majored_in", 1, 0.75, 0.05, false},
    };
    Graph g = MakeSocialGraph(spec);
    Predicate q = PickPredicate(g, "majored_in");
    datasets.push_back({"Google+-like/small (Fig 5m)", std::move(g), q});
  }

  for (const Dataset& ds : datasets) {
    PrintHeader("Fig 5 Match varying d — " + ds.name,
                {"d", "Match(s)", "Matchc(s)", "disVF2(s)"});
    for (uint32_t d = 1; d <= kMaxD; ++d) {
      auto sigma = MakeSigma(ds.graph, ds.q, 20, 4 + d, 4 + 2 * d, d);
      if (sigma.empty()) continue;
      PrintCell(static_cast<uint64_t>(d));
      for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                                EipAlgorithm::kDisVf2}) {
        EipOptions opt;
        opt.algorithm = algo;
        opt.num_workers = 8;
        opt.eta = 1.5;
        opt.enumeration_cap = 100000;  // keep the worst case bounded
        auto r = IdentifyEntities(ds.graph, sigma, opt);
        PrintCell(r.ok() ? r->times.SimulatedParallelSeconds() : -1.0);
      }
      EndRow();
    }
  }
  return 0;
}
