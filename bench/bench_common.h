#ifndef GPAR_BENCH_BENCH_COMMON_H_
#define GPAR_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/stats.h"
#include "pattern/pattern_generator.h"
#include "rule/gpar.h"

namespace gpar::bench {

/// Global scale multiplier: GPAR_BENCH_SCALE=4 reruns every experiment on
/// 4x larger graphs. Default 1 keeps the full suite in a few minutes on a
/// laptop; the paper's absolute sizes (millions of nodes) are reduced by a
/// constant factor, which preserves curve *shapes* (see DESIGN.md §3).
inline uint32_t Scale() {
  const char* s = std::getenv("GPAR_BENCH_SCALE");
  if (s == nullptr) return 1;
  int v = std::atoi(s);
  return v >= 1 ? static_cast<uint32_t>(v) : 1;
}

/// GPAR_BENCH_SMALL=1 shrinks an experiment to a CI-sized run (fewer steps,
/// ~10x smaller graphs) so per-PR artifacts stay cheap to produce. Off by
/// default: local runs keep the paper-shaped sizes.
inline bool SmallRun() {
  const char* s = std::getenv("GPAR_BENCH_SMALL");
  return s != nullptr && std::atoi(s) >= 1;
}

/// Destination for a machine-readable report (GPAR_BENCH_JSON), or nullptr
/// when the bench should only print its table.
inline const char* JsonPath() { return std::getenv("GPAR_BENCH_JSON"); }

/// Picks the most frequent (x_label, edge, y_label) triple whose edge label
/// is `edge_name` — the benchmark predicate q(x, y).
inline Predicate PickPredicate(const Graph& g, const std::string& edge_name) {
  LabelId edge = g.labels().Lookup(edge_name);
  for (const EdgePatternStat& s : FrequentEdgePatterns(g)) {
    if (s.edge_label == edge) return {s.src_label, s.edge_label, s.dst_label};
  }
  std::fprintf(stderr, "no edge pattern with label %s\n", edge_name.c_str());
  std::abort();
}

/// Generates a Σ of `count` GPARs pertaining to `q`, lifted from `g`
/// (supported by construction), |R| controlled as in the paper's pattern
/// generator.
inline std::vector<Gpar> MakeSigma(const Graph& g, const Predicate& q,
                                   size_t count, uint32_t num_nodes,
                                   uint32_t num_edges, uint32_t max_radius,
                                   uint64_t seed = 7) {
  GparGenOptions opt;
  opt.num_nodes = num_nodes;
  opt.num_edges = num_edges;
  opt.max_radius = max_radius;
  opt.seed = seed;
  return GenerateGparWorkload(g, q, count, opt);
}

/// Table helpers: fixed-width rows the paper's figures plot.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------");
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%16.4f", v); }
inline void PrintCell(uint64_t v) {
  std::printf("%16llu", static_cast<unsigned long long>(v));
}
inline void PrintCell(const std::string& s) { std::printf("%16s", s.c_str()); }
/// Rows flush immediately so partial results survive a timeout/kill.
inline void EndRow() {
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace gpar::bench

#endif  // GPAR_BENCH_BENCH_COMMON_H_
