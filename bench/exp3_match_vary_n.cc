// Experiment E3a/E3b/E3g — Figures 5(h), 5(i), 5(n): Match vs Matchc vs
// disVF2 for EIP, varying the number of processors n (||Σ|| = 24 GPARs,
// d = 2, η = 1.5 as in the paper).
//
// Paper shape: all three scale with n (Match ~3.5x faster from n=4 to 20);
// Match < Matchc < disVF2 at every n (paper: Match/Matchc are 6.24x/4.79x
// faster than disVF2 on average, Match ~1.3x faster than Matchc).

#include <cstdio>

#include "bench_common.h"
#include "identify/eip.h"

namespace gpar::bench {
namespace {

void RunSeries(const std::string& name, const Graph& g,
               const std::vector<Gpar>& sigma) {
  PrintHeader("Fig 5 Match varying n — " + name,
              {"n", "Match(s)", "Matchc(s)", "disVF2(s)", "speedup_n4"});
  double t4 = 0;
  for (uint32_t n : {4u, 8u, 12u, 16u, 20u}) {
    double times[3] = {0, 0, 0};
    int i = 0;
    for (EipAlgorithm algo : {EipAlgorithm::kMatch, EipAlgorithm::kMatchc,
                              EipAlgorithm::kDisVf2}) {
      EipOptions opt;
      opt.algorithm = algo;
      opt.num_workers = n;
      opt.eta = 1.5;
      opt.enumeration_cap = 50000;  // bound the enumeration baselines
      auto r = IdentifyEntities(g, sigma, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "eip failed: %s\n",
                     r.status().ToString().c_str());
        return;
      }
      times[i++] = r->times.SimulatedParallelSeconds();
    }
    if (n == 4) t4 = times[0];
    PrintCell(static_cast<uint64_t>(n));
    PrintCell(times[0]);
    PrintCell(times[1]);
    PrintCell(times[2]);
    PrintCell(t4 > 0 && times[0] > 0 ? t4 / times[0] : 0.0);
    EndRow();
  }
}

}  // namespace
}  // namespace gpar::bench

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    auto sigma = MakeSigma(g, q, 24, 5, 8, 2);
    std::printf("[Pokec-like] |G| = %zu, ||Sigma|| = %zu\n", g.size(),
                sigma.size());
    RunSeries("Pokec-like (Fig 5h)", g, sigma);
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    auto sigma = MakeSigma(g, q, 24, 5, 8, 2);
    std::printf("[GPlus-like] |G| = %zu, ||Sigma|| = %zu\n", g.size(),
                sigma.size());
    RunSeries("Google+-like (Fig 5i)", g, sigma);
  }
  {
    Graph g = MakeSynthetic(15000 * scale, 30000 * scale, 100, 42);
    auto freq = FrequentEdgePatterns(g, 1);
    Predicate q{freq[0].src_label, freq[0].edge_label, freq[0].dst_label};
    auto sigma = MakeSigma(g, q, 24, 4, 6, 2);
    std::printf("[Synthetic] |G| = %zu, ||Sigma|| = %zu\n", g.size(),
                sigma.size());
    RunSeries("Synthetic (Fig 5n)", g, sigma);
  }
  return 0;
}
