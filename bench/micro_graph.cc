// Micro-benchmarks (google-benchmark) for the graph substrate: build,
// BFS d-neighborhoods, labeled adjacency lookups, and partitioning.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/graph_builder.h"
#include "graph/neighborhood.h"
#include "graph/partition.h"

namespace {

using namespace gpar;
using namespace gpar::bench;

void BM_GraphBuild(benchmark::State& state) {
  for (auto _ : state) {
    Graph g = MakeSynthetic(5000, 15000, 50, 3);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphBuild);

void BM_DNeighborhoodExtract(benchmark::State& state) {
  Graph g = MakeSynthetic(20000, 60000, 50, 3);
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>((i * 7919) % g.num_nodes());
    DNeighborhood dn = ExtractDNeighborhood(g, v, 2);
    benchmark::DoNotOptimize(dn.sub.graph.num_nodes());
    ++i;
  }
}
BENCHMARK(BM_DNeighborhoodExtract);

void BM_LabeledEdgeLookup(benchmark::State& state) {
  Graph g = MakeSynthetic(20000, 60000, 50, 3);
  LabelId l = g.labels().Lookup("e1");
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>((i * 7919) % g.num_nodes());
    benchmark::DoNotOptimize(g.out_edges_labeled(v, l).size());
    ++i;
  }
}
BENCHMARK(BM_LabeledEdgeLookup);

void BM_HasEdge(benchmark::State& state) {
  Graph g = MakeSynthetic(20000, 60000, 50, 3);
  LabelId l = g.labels().Lookup("e0");
  size_t i = 0;
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>((i * 7919) % g.num_nodes());
    NodeId w = static_cast<NodeId>((i * 104729) % g.num_nodes());
    benchmark::DoNotOptimize(g.HasEdge(v, l, w));
    ++i;
  }
}
BENCHMARK(BM_HasEdge);

void BM_PartitionGraph(benchmark::State& state) {
  Graph g = MakeSynthetic(10000, 30000, 50, 3);
  auto freq = FrequentEdgePatterns(g, 1);
  std::vector<NodeId> centers;
  {
    auto span = g.nodes_with_label(freq[0].src_label);
    centers.assign(span.begin(), span.end());
  }
  for (auto _ : state) {
    PartitionOptions opt;
    opt.num_fragments = static_cast<uint32_t>(state.range(0));
    opt.d = 2;
    // range(1): 0 = zero-copy views (default), 1 = copied induced CSRs.
    opt.use_fragment_copies = state.range(1) != 0;
    auto parts = PartitionGraph(g, centers, opt);
    benchmark::DoNotOptimize(parts.ok());
  }
}
BENCHMARK(BM_PartitionGraph)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1});

}  // namespace

BENCHMARK_MAIN();
