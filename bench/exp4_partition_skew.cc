// Experiment E4 — the partition-skew check from the Section 6 setup: the
// paper reports a max-min gap of <= 14.4% (Pokec) / 8.8% (Google+) across
// fragments for DMine, and <= 6.0% / 5.2% for Match, showing partitioning
// skew is small. We report fragment-size skew and per-worker busy-time
// spread for the EIP workload, plus the zero-copy fragment A/B: partition
// build time and fragment memory for GraphView-backed fragments vs the
// use_fragment_copies baseline (copied induced CSRs).
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_partition.json CI artifact tracking the view/copy build-time and
// memory ratios PR-over-PR); GPAR_BENCH_SMALL=1 keeps the CI-sized config.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/partition.h"
#include "identify/eip.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();

  struct Row {
    std::string dataset;
    uint32_t n;
    double size_skew, time_gap;
    double build_view_s, build_copy_s;
    uint64_t bytes_view, bytes_copy;
  };
  std::vector<Row> rows;

  PrintHeader("Exp-4 partition skew + fragment representation",
              {"dataset", "n", "size_skew", "time_gap", "build_v(s)",
               "build_c(s)", "MB_view", "MB_copy", "mem_ratio"});
  struct Dataset {
    std::string name;
    Graph graph;
    Predicate q;
  };
  std::vector<Dataset> datasets;
  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    datasets.push_back({"Pokec-like", std::move(g), q});
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    datasets.push_back({"GPlus-like", std::move(g), q});
  }

  for (const Dataset& ds : datasets) {
    for (uint32_t n : {4u, 8u, 16u}) {
      std::vector<NodeId> centers;
      {
        auto span = ds.graph.nodes_with_label(ds.q.x_label);
        centers.assign(span.begin(), span.end());
      }
      PartitionOptions popt;
      popt.num_fragments = n;
      popt.d = 2;

      // The view/copy A/B: same assignment, different representation. CI
      // sizes finish in ms, so report the min over a few repetitions.
      const int reps = small ? 3 : 2;
      double build_view = 0, build_copy = 0;
      uint64_t bytes_view = 0, bytes_copy = 0;
      Partitioning parts;  // last view-backed build, reused for the skew
      for (int rep = 0; rep < reps; ++rep) {
        popt.use_fragment_copies = false;
        Timer tv;
        auto views = PartitionGraph(ds.graph, centers, popt);
        double sv = tv.Seconds();
        popt.use_fragment_copies = true;
        Timer tc;
        auto copies = PartitionGraph(ds.graph, centers, popt);
        double sc = tc.Seconds();
        if (!views.ok() || !copies.ok()) return 1;
        if (rep == 0 || sv < build_view) build_view = sv;
        if (rep == 0 || sc < build_copy) build_copy = sc;
        bytes_view = PartitionMemoryBytes(*views);
        bytes_copy = PartitionMemoryBytes(*copies);
        parts = std::move(*views);
      }

      auto sigma = MakeSigma(ds.graph, ds.q, 12, 4, 6, 2);
      EipOptions opt;
      opt.num_workers = n;
      opt.eta = 1.5;
      auto r = IdentifyEntities(ds.graph, sigma, opt);
      double gap = 0;
      if (r.ok() && !r->times.worker_total_seconds.empty()) {
        double mx = *std::max_element(r->times.worker_total_seconds.begin(),
                                      r->times.worker_total_seconds.end());
        double mn = *std::min_element(r->times.worker_total_seconds.begin(),
                                      r->times.worker_total_seconds.end());
        gap = mx > 0 ? (mx - mn) / mx : 0;
      }
      rows.push_back({ds.name, n, FragmentSkew(parts), gap, build_view,
                      build_copy, bytes_view, bytes_copy});
      PrintCell(ds.name);
      PrintCell(static_cast<uint64_t>(n));
      PrintCell(FragmentSkew(parts));
      PrintCell(gap);
      PrintCell(build_view);
      PrintCell(build_copy);
      PrintCell(static_cast<double>(bytes_view) / (1024.0 * 1024.0));
      PrintCell(static_cast<double>(bytes_copy) / (1024.0 * 1024.0));
      PrintCell(bytes_view > 0
                    ? static_cast<double>(bytes_copy) /
                          static_cast<double>(bytes_view)
                    : 0.0);
      EndRow();
    }
  }
  std::printf(
      "size_skew = (max-min)/max fragment |G|; time_gap = (max-min)/max\n"
      "per-worker busy seconds during Match. The paper's gaps: <= 14.4%%.\n"
      "build_v/build_c = PartitionGraph seconds with view-backed vs copied\n"
      "fragments (same assignment); MB_* = total fragment representation\n"
      "bytes. mem_ratio = copy/view.\n");

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp4_partition_skew\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n  \"rows\": [\n",
                 scale, small ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"dataset\": \"%s\", \"n\": %u, \"size_skew\": %.6f, "
          "\"time_gap\": %.6f, \"build_view_s\": %.6f, "
          "\"build_copy_s\": %.6f, \"fragment_bytes_view\": %llu, "
          "\"fragment_bytes_copy\": %llu}%s\n",
          r.dataset.c_str(), r.n, r.size_skew, r.time_gap, r.build_view_s,
          r.build_copy_s, static_cast<unsigned long long>(r.bytes_view),
          static_cast<unsigned long long>(r.bytes_copy),
          i + 1 < rows.size() ? "," : "");
    }
    double tot_view = 0, tot_copy = 0;
    uint64_t tot_bytes_view = 0, tot_bytes_copy = 0;
    for (const Row& r : rows) {
      tot_view += r.build_view_s;
      tot_copy += r.build_copy_s;
      tot_bytes_view += r.bytes_view;
      tot_bytes_copy += r.bytes_copy;
    }
    // Per-row times at CI sizes are noisy; trajectory comparisons should
    // use the sweep totals.
    std::fprintf(f,
                 "  ],\n  \"totals\": {\"build_view_s\": %.6f, "
                 "\"build_copy_s\": %.6f, \"fragment_bytes_view\": %llu, "
                 "\"fragment_bytes_copy\": %llu}\n}\n",
                 tot_view, tot_copy,
                 static_cast<unsigned long long>(tot_bytes_view),
                 static_cast<unsigned long long>(tot_bytes_copy));
    std::fclose(f);
    std::fprintf(stderr, "wrote %s: %zu rows\n", json, rows.size());
  }
  return 0;
}
