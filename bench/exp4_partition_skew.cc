// Experiment E4 — the partition-skew check from the Section 6 setup: the
// paper reports a max-min gap of <= 14.4% (Pokec) / 8.8% (Google+) across
// fragments for DMine, and <= 6.0% / 5.2% for Match, showing partitioning
// skew is small. We report fragment-size skew and per-worker busy-time
// spread for the EIP workload.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "graph/partition.h"
#include "identify/eip.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();

  PrintHeader("Exp-4 partition skew",
              {"dataset", "n", "size_skew", "time_gap"});
  struct Dataset {
    std::string name;
    Graph graph;
    Predicate q;
  };
  std::vector<Dataset> datasets;
  {
    Graph g = MakePokecLike(scale);
    Predicate q = PickPredicate(g, "like_music");
    datasets.push_back({"Pokec-like", std::move(g), q});
  }
  {
    Graph g = MakeGPlusLike(scale);
    Predicate q = PickPredicate(g, "majored_in");
    datasets.push_back({"GPlus-like", std::move(g), q});
  }

  for (const Dataset& ds : datasets) {
    for (uint32_t n : {4u, 8u, 16u}) {
      std::vector<NodeId> centers;
      {
        auto span = ds.graph.nodes_with_label(ds.q.x_label);
        centers.assign(span.begin(), span.end());
      }
      PartitionOptions popt;
      popt.num_fragments = n;
      popt.d = 2;
      auto parts = PartitionGraph(ds.graph, centers, popt);
      if (!parts.ok()) return 1;

      auto sigma = MakeSigma(ds.graph, ds.q, 12, 4, 6, 2);
      EipOptions opt;
      opt.num_workers = n;
      opt.eta = 1.5;
      auto r = IdentifyEntities(ds.graph, sigma, opt);
      double gap = 0;
      if (r.ok() && !r->times.worker_total_seconds.empty()) {
        double mx = *std::max_element(r->times.worker_total_seconds.begin(),
                                      r->times.worker_total_seconds.end());
        double mn = *std::min_element(r->times.worker_total_seconds.begin(),
                                      r->times.worker_total_seconds.end());
        gap = mx > 0 ? (mx - mn) / mx : 0;
      }
      PrintCell(ds.name);
      PrintCell(static_cast<uint64_t>(n));
      PrintCell(FragmentSkew(*parts));
      PrintCell(gap);
      EndRow();
    }
  }
  std::printf(
      "size_skew = (max-min)/max fragment |G|; time_gap = (max-min)/max\n"
      "per-worker busy seconds during Match. The paper's gaps: <= 14.4%%.\n");
  return 0;
}
