// Experiment E6 — the sharded serving tier: aggregate warm QPS as the
// shard count grows (k client streams firing point queries with per-shard
// center affinity at a k-shard ShardedRuleServer), and request latency
// p50/p99 under a mixed workload where edge-delta batches land while the
// clients keep querying (deltas swap immutable state snapshots, so they
// must never block in-flight queries).
//
// Aggregate warm QPS uses the same makespan accounting as the BSP mining
// runtime (src/parallel/bsp.h): each shard of a real deployment is its own
// machine, so the per-stream busy times are measured independently and the
// aggregate rate is total requests over the max stream time. Wall time on
// a single CI host cannot show the scaling; makespan can. `wall_qps`
// additionally reports the k-thread wall-clock rate on this host. The
// mixed phase runs genuinely concurrent client threads + one delta writer
// (that is what the latency percentiles are about).
//
// With GPAR_BENCH_JSON=<path> the rows are also written as JSON (the
// BENCH_sharded_serve.json CI artifact tracking the k=4 vs k=1 scaling
// ratio PR-over-PR); GPAR_BENCH_SMALL=1 keeps the CI-sized config.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/graph_delta.h"
#include "serve/rule_server.h"
#include "serve/serve_session.h"
#include "serve/sharded_rule_server.h"

int main() {
  using namespace gpar;
  using namespace gpar::bench;
  const uint32_t scale = Scale();
  const bool small = SmallRun();
  const size_t batch_size = 8;          // centers per point request
  const size_t rules = small ? 4 : 6;   // |Sigma|
  const size_t warm_requests = small ? 400 : 4000;   // per client thread
  const size_t mixed_requests = small ? 200 : 2000;  // per client thread
  const size_t delta_batches = small ? 6 : 24;
  const size_t delta_edges = 4;

  struct Row {
    uint32_t shards;
    uint32_t threads;
    double load_s;
    double warm_qps;  ///< makespan-accounted aggregate rate
    double wall_qps;  ///< k concurrent threads on this host
    double mixed_qps, p50_ms, p99_ms;
    double delta_s;
    uint64_t wire_bytes;
  };
  std::vector<Row> rows;

  Graph g = MakePokecLike(scale);
  Predicate q = PickPredicate(g, "like_music");
  std::printf("Pokec-like: %u nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  auto sigma = MakeSigma(g, q, rules, 4, 5, 2);
  if (sigma.size() < 2) {
    std::fprintf(stderr, "workload generation produced %zu rules\n",
                 sigma.size());
    return 1;
  }
  std::vector<RuleRecord> records;
  for (const Gpar& r : sigma) records.push_back({r, 0, 0.0});

  // Reference entities for the equivalence spot-check across shard counts.
  std::vector<NodeId> want_entities;

  PrintHeader("Exp-6 sharded serving (aggregate warm QPS, mixed p50/p99)",
              {"shards", "threads", "load(s)", "warm_qps", "wall_qps",
               "mixed_qps", "p50(ms)", "p99(ms)", "delta(s)", "wire(B)"});

  for (uint32_t k : {1u, 2u, 4u}) {
    ShardedRuleServerOptions sopt;
    sopt.num_shards = k;
    sopt.shard_options.num_workers = 2;
    Timer tl;
    auto server = ShardedRuleServer::Create(g, records, sopt);
    double load_s = tl.Seconds();
    if (!server.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    ShardedRuleServer& s = **server;

    {
      SessionRequest all;
      all.all_centers = true;
      all.eta = 1.0;
      auto r = s.Query(all);
      if (!r.ok()) return 1;
      if (k == 1) {
        want_entities = r->entities;
      } else if (r->entities != want_entities) {
        std::fprintf(stderr, "k=%u entities diverge from k=1\n", k);
        return 1;
      }
    }

    // Per-client request streams with shard affinity: thread t draws its
    // centers from shard t's owned set, so a request scatters to exactly
    // one shard and aggregate throughput measures the sharding, not the
    // router fan-out.
    const uint32_t threads = k;
    std::vector<std::vector<SessionRequest>> streams(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      const auto& owned = s.shard(t).candidates();
      if (owned.empty()) {
        std::fprintf(stderr, "shard %u owns no centers\n", t);
        return 1;
      }
      std::mt19937_64 rng(31 * t + k);
      streams[t].resize(64);
      for (auto& req : streams[t]) {
        for (size_t i = 0; i < batch_size; ++i) {
          req.centers.push_back(owned[rng() % owned.size()]);
        }
      }
    }

    // Warm every stream's centers once, off the clock.
    for (uint32_t t = 0; t < threads; ++t) {
      for (const auto& req : streams[t]) {
        if (!s.Query(req).ok()) return 1;
      }
    }

    // Phase 1a: makespan-accounted aggregate warm QPS. Each stream is one
    // simulated shard machine: run it alone, clock its busy time, and
    // charge the deployment the slowest stream (partition skew and router
    // overhead both land here).
    double warm_qps = 0;
    {
      double makespan = 0;
      for (uint32_t t = 0; t < threads; ++t) {
        Timer tt;
        for (size_t i = 0; i < warm_requests; ++i) {
          if (!s.Query(streams[t][i % streams[t].size()]).ok()) return 1;
        }
        makespan = std::max(makespan, tt.Seconds());
      }
      warm_qps =
          static_cast<double>(warm_requests) * threads / makespan;
    }

    // Phase 1b (and the mixed phase below): genuinely concurrent clients.
    auto run_clients = [&](size_t per_thread,
                           std::vector<double>* latencies_ms) -> double {
      std::atomic<bool> failed{false};
      std::vector<std::vector<double>> lat(threads);
      Timer t0;
      std::vector<std::thread> clients;
      clients.reserve(threads);
      for (uint32_t t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
          auto& mine = lat[t];
          if (latencies_ms != nullptr) mine.reserve(per_thread);
          for (size_t i = 0; i < per_thread; ++i) {
            const SessionRequest& req = streams[t][i % streams[t].size()];
            Timer tr;
            if (!s.Query(req).ok()) {
              failed.store(true);
              return;
            }
            if (latencies_ms != nullptr) mine.push_back(tr.Millis());
          }
        });
      }
      for (auto& th : clients) th.join();
      double elapsed = t0.Seconds();
      if (failed.load()) std::abort();
      if (latencies_ms != nullptr) {
        for (auto& v : lat) {
          latencies_ms->insert(latencies_ms->end(), v.begin(), v.end());
        }
      }
      return static_cast<double>(per_thread) * threads / elapsed;
    };

    double wall_qps = run_clients(warm_requests, nullptr);

    // Phase 2: the same clients with a writer landing delta batches
    // mid-stream. Latencies include the cache-miss recomputation of
    // invalidated centers; the writer's batches are identical across k.
    std::vector<double> latencies;
    double delta_s = 0;
    uint64_t wire_bytes = 0;
    double mixed_qps = 0;
    {
      std::atomic<bool> clients_done{false};
      std::atomic<uint64_t> deltas_failed{0};
      double writer_s = 0;
      uint64_t writer_bytes = 0;
      std::thread writer([&] {
        std::mt19937_64 rng(777);
        LabelId follows = g.labels().Lookup("follows");
        if (follows == kNoLabel) follows = q.edge_label;
        for (size_t b = 0; b < delta_batches; ++b) {
          if (clients_done.load(std::memory_order_relaxed)) break;
          GraphDelta delta;
          for (size_t i = 0; i < delta_edges; ++i) {
            delta.inserts.push_back(
                {static_cast<NodeId>(rng() % g.num_nodes()), follows,
                 static_cast<NodeId>(rng() % g.num_nodes())});
          }
          Timer td;
          auto ds = s.ApplyDelta(delta);
          writer_s += td.Seconds();
          if (!ds.ok()) {
            ++deltas_failed;
            break;
          }
          writer_bytes += ds->wire_bytes;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
      mixed_qps = run_clients(mixed_requests, &latencies);
      clients_done.store(true);
      writer.join();
      if (deltas_failed.load() != 0) return 1;
      delta_s = writer_s;
      wire_bytes = writer_bytes;
    }

    std::sort(latencies.begin(), latencies.end());
    double p50 = latencies.empty() ? 0 : latencies[latencies.size() / 2];
    double p99 =
        latencies.empty() ? 0 : latencies[latencies.size() * 99 / 100];

    rows.push_back({k, threads, load_s, warm_qps, wall_qps, mixed_qps, p50,
                    p99, delta_s, wire_bytes});
    PrintCell(static_cast<uint64_t>(k));
    PrintCell(static_cast<uint64_t>(threads));
    PrintCell(load_s);
    PrintCell(warm_qps);
    PrintCell(wall_qps);
    PrintCell(mixed_qps);
    PrintCell(p50);
    PrintCell(p99);
    PrintCell(delta_s);
    PrintCell(wire_bytes);
    EndRow();
  }

  std::printf(
      "warm_qps = aggregate %zu-center point requests per second, k client\n"
      "streams with per-shard center affinity, all answers cached —\n"
      "makespan-accounted (total requests / slowest stream, the rate a\n"
      "k-machine deployment sees; see src/parallel/bsp.h). wall_qps = the\n"
      "same streams as k concurrent threads on this host. mixed_* = those\n"
      "threads while a writer lands %zu-edge delta batches (snapshot swaps;\n"
      "queries never block); p50/p99 over all client-observed request\n"
      "latencies. wire(B) = serialized GraphDelta bytes shipped\n"
      "router->shards.\n",
      batch_size, delta_edges);

  if (const char* json = JsonPath()) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"exp6_sharded_serve\",\n");
    std::fprintf(f, "  \"scale\": %u,\n  \"small\": %s,\n  \"rows\": [\n",
                 scale, small ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"shards\": %u, \"threads\": %u, \"load_s\": %.6f, "
          "\"warm_qps\": %.2f, \"wall_qps\": %.2f, \"mixed_qps\": %.2f, "
          "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"delta_s\": %.6f, "
          "\"wire_bytes\": %llu}%s\n",
          r.shards, r.threads, r.load_s, r.warm_qps, r.wall_qps, r.mixed_qps,
          r.p50_ms, r.p99_ms, r.delta_s,
          static_cast<unsigned long long>(r.wire_bytes),
          i + 1 < rows.size() ? "," : "");
    }
    // The scaling ratio is the headline number: aggregate warm QPS at the
    // largest shard count over the single-shard deployment.
    double base = rows.empty() ? 0 : rows.front().warm_qps;
    double top = rows.empty() ? 0 : rows.back().warm_qps;
    std::fprintf(f,
                 "  ],\n  \"totals\": {\"warm_qps_k1\": %.2f, "
                 "\"warm_qps_kmax\": %.2f, \"scaling\": %.3f}\n}\n",
                 base, top, base > 0 ? top / base : 0.0);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s: %zu rows\n", json, rows.size());
  }
  return 0;
}
