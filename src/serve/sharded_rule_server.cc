#include "serve/sharded_rule_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "graph/graph_snapshot.h"
#include "graph/partition.h"
#include "identify/eip.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

void Accumulate(ServeStats* into, const ServeStats& s) {
  into->cache_hits += s.cache_hits;
  into->cache_probes += s.cache_probes;
  into->centers_evaluated += s.centers_evaluated;
}

/// The retry policy's transience test: Unavailable is transient by
/// definition, IoError covers injected torn writes and flaky storage.
/// Everything else (InvalidArgument, Corruption, ...) propagates at once.
bool IsTransient(const Status& st) {
  return st.code() == StatusCode::kUnavailable ||
         st.code() == StatusCode::kIoError;
}

}  // namespace

ShardedRuleServer::ShardedRuleServer(const ShardedRuleServerOptions& options)
    : options_(options) {}

Result<std::unique_ptr<ShardedRuleServer>> ShardedRuleServer::Load(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path,
    const ShardedRuleServerOptions& options) {
  GPAR_FAILPOINT("snapshot.load");
  auto g = ReadGraphSnapshotFile(graph_snapshot_path);
  if (!g.ok()) return g.status();
  auto rules =
      ReadRuleSetSnapshotFile(rules_snapshot_path, g->mutable_labels());
  if (!rules.ok()) return rules.status();
  return Create(std::move(g).value(), std::move(rules).value(), options);
}

Result<std::unique_ptr<ShardedRuleServer>> ShardedRuleServer::Recover(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path, const std::string& journal_path,
    const ShardedRuleServerOptions& options,
    const DeltaJournalOptions& journal_options, JournalReplayStats* replay) {
  GPAR_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedRuleServer> server,
      Load(graph_snapshot_path, rules_snapshot_path, options));
  GPAR_RETURN_NOT_OK(
      server->AttachJournal(journal_path, journal_options, replay));
  return server;
}

Result<std::unique_ptr<ShardedRuleServer>> ShardedRuleServer::Create(
    Graph g, std::vector<RuleRecord> rules,
    const ShardedRuleServerOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::unique_ptr<ShardedRuleServer> server(new ShardedRuleServer(options));
  auto records =
      std::make_shared<const std::vector<RuleRecord>>(std::move(rules));
  std::vector<Gpar> sigma;
  sigma.reserve(records->size());
  for (const RuleRecord& r : *records) sigma.push_back(r.rule);
  GPAR_ASSIGN_OR_RETURN(SigmaInfo info, ValidateSigma(sigma));
  server->q_ = info.q;

  auto parent = std::make_shared<const Graph>(std::move(g));
  server->interner_ = parent->labels_ptr();
  {
    auto span = parent->nodes_with_label(info.q.x_label);
    server->candidates_.assign(span.begin(), span.end());
  }

  // Partition at the rule set's locality radius: every owned center's
  // G_d lives inside its fragment, so shard-local matching is exact.
  PartitionOptions popt;
  popt.num_fragments = options.num_shards;
  popt.d = std::max<uint32_t>(info.d, 1);
  server->partition_d_ = popt.d;
  GPAR_ASSIGN_OR_RETURN(
      Partitioning parts,
      PartitionGraph(*parent, server->candidates_, popt));
  server->owner_ = std::move(parts.owner_of_center);

  server->shards_.reserve(parts.fragments.size());
  for (Fragment& frag : parts.fragments) {
    GPAR_ASSIGN_OR_RETURN(
        std::unique_ptr<RuleServer> shard,
        RuleServer::CreateShard(parent, frag.view.nodes(),
                                std::move(frag.centers), *records,
                                options.shard_options));
    server->shards_.push_back(std::move(shard));
  }
  server->router_pool_ = std::make_unique<ThreadPool>(
      options.router_threads > 0 ? options.router_threads
                                 : options.num_shards);
  server->num_nodes_ = parent->num_nodes();
  {
    // Create runs single-threaded, but `graph_` is guarded and the lock is
    // uncontended — take it rather than poke an analysis hole.
    MutexLock lock(server->graph_mu_);
    server->graph_ = std::move(parent);
    server->records_ = std::move(records);
    server->shard_acked_.assign(server->shards_.size(), 0);
  }
  return server;
}

const std::vector<RuleRecord>& ShardedRuleServer::rules() const {
  MutexLock lock(graph_mu_);
  // The pointee is immutable and stays alive through the shared_ptr even
  // after a refresh replaces `records_`... as long as the caller read it
  // before the old set's last owner (this object) let go — hence the
  // "valid until the next refresh" contract in the header.
  return *records_;
}

std::shared_ptr<const std::vector<RuleRecord>>
ShardedRuleServer::AcquireRecords() const {
  MutexLock lock(graph_mu_);
  return records_;
}

uint32_t ShardedRuleServer::OwnerOf(NodeId center) const {
  auto it = std::lower_bound(candidates_.begin(), candidates_.end(), center);
  if (it == candidates_.end() || *it != center) return num_shards();
  return owner_[static_cast<size_t>(it - candidates_.begin())];
}

uint64_t ShardedRuleServer::delta_sequence() const {
  MutexLock lock(graph_mu_);
  return delta_sequence_;
}

size_t ShardedRuleServer::lagging_shards() const {
  MutexLock lock(graph_mu_);
  size_t lagging = 0;
  for (uint64_t acked : shard_acked_) {
    if (acked != delta_sequence_) ++lagging;
  }
  return lagging;
}

bool ShardedRuleServer::journal_attached() const {
  MutexLock writer(writer_mu_);
  return journal_ != nullptr;
}

std::shared_ptr<const Graph> ShardedRuleServer::graph_snapshot() const {
  MutexLock lock(graph_mu_);
  return graph_;
}

ServeStats ShardedRuleServer::lifetime_stats() const {
  // Relaxed: each counter is independently monotonic and the snapshot is
  // advisory — a read torn ACROSS counters is acceptable, no ordering with
  // any other memory is implied.
  const auto get = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  ServeStats st;
  st.requests = get(lifetime_.requests);
  st.cache_hits = get(lifetime_.cache_hits);
  st.cache_probes = get(lifetime_.cache_probes);
  st.centers_evaluated = get(lifetime_.centers_evaluated);
  st.shards_failed = get(lifetime_.shards_failed);
  st.retries = get(lifetime_.retries);
  st.latency_seconds = static_cast<double>(get(lifetime_.latency_micros)) * 1e-6;
  return st;
}

void ShardedRuleServer::RecordRequest(const ServeStats& stats) {
  // Relaxed: pure monotonic counters on the router hot path; publishing
  // request results does not ride on these stores, so no release is needed.
  const auto add = [](std::atomic<uint64_t>& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  };
  add(lifetime_.requests, 1);
  add(lifetime_.cache_hits, stats.cache_hits);
  add(lifetime_.cache_probes, stats.cache_probes);
  add(lifetime_.centers_evaluated, stats.centers_evaluated);
  add(lifetime_.shards_failed, stats.shards_failed);
  add(lifetime_.retries, stats.retries);
  add(lifetime_.latency_micros,
      static_cast<uint64_t>(stats.latency_seconds * 1e6));
}

Result<SessionReply> ShardedRuleServer::Query(const SessionRequest& request) {
  const std::shared_ptr<const std::vector<RuleRecord>> records =
      AcquireRecords();
  GPAR_ASSIGN_OR_RETURN(
      std::vector<uint32_t> selected,
      NormalizeRuleSelection(request.rules, records->size()));
  if (request.deadline_seconds < 0) {
    return Status::InvalidArgument("deadline_seconds must be non-negative");
  }
  return request.all_centers ? QueryAll(request, selected)
                             : QueryPoint(request, selected);
}

Status ShardedRuleServer::CallWithRetry(const std::function<Status()>& call,
                                        double deadline_seconds,
                                        const Timer& timer,
                                        uint64_t* retries) const {
  Status st = call();
  for (uint32_t attempt = 0;
       !st.ok() && IsTransient(st) && attempt < options_.max_shard_retries;
       ++attempt) {
    const uint64_t backoff_micros =
        static_cast<uint64_t>(options_.retry_backoff_micros) << attempt;
    if (deadline_seconds > 0 &&
        timer.Seconds() + static_cast<double>(backoff_micros) * 1e-6 >
            deadline_seconds) {
      // Honest semantics: the budget bounds how long we keep TRYING; the
      // in-flight call that just failed was never cancelled.
      return Status::DeadlineExceeded(
          "retry budget exhausted after " + std::to_string(attempt) +
          " retries: " + st.message());
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
    ++*retries;
    st = call();
  }
  return st;
}

Result<SessionReply> ShardedRuleServer::QueryPoint(
    const SessionRequest& request, const std::vector<uint32_t>& selected) {
  Timer timer;
  const NodeId n = num_nodes_;
  const uint32_t k = num_shards();

  // Scatter by center ownership; non-candidate centers match nothing and
  // never leave the router.
  struct ShardBatch {
    std::vector<NodeId> centers;
    std::vector<size_t> positions;  ///< indices into request.centers
  };
  std::vector<ShardBatch> batches(k);
  for (size_t i = 0; i < request.centers.size(); ++i) {
    const NodeId c = request.centers[i];
    if (c >= n) {
      return Status::InvalidArgument("center id " + std::to_string(c) +
                                     " out of range");
    }
    const uint32_t owner = OwnerOf(c);
    if (owner >= k) continue;
    batches[owner].centers.push_back(c);
    batches[owner].positions.push_back(i);
  }
  std::vector<uint32_t> involved;
  for (uint32_t s = 0; s < k; ++s) {
    if (!batches[s].centers.empty()) involved.push_back(s);
  }

  // Health snapshot: a shard behind the delta sequence would answer from
  // a stale graph, so it fails fast here and the reply degrades around it.
  std::vector<char> healthy(k, 1);
  {
    MutexLock lock(graph_mu_);
    for (uint32_t s = 0; s < k; ++s) {
      healthy[s] = shard_acked_[s] == delta_sequence_ ? 1 : 0;
    }
  }

  std::vector<Status> statuses(involved.size(), Status::OK());
  std::vector<SessionReply> shard_replies(involved.size());
  std::vector<uint64_t> retries(involved.size(), 0);
  auto run = [&](uint32_t idx) {
    const uint32_t s = involved[idx];
    if (healthy[s] == 0) {
      statuses[idx] = Status::Unavailable(
          "shard " + std::to_string(s) +
          " is lagging behind the delta sequence");
      return;
    }
    SessionRequest sub;
    sub.centers = std::move(batches[s].centers);
    sub.rules = selected;
    sub.require_consequent = request.require_consequent;
    statuses[idx] = CallWithRetry(
        [&]() {
          auto r = shards_[s]->Query(sub);
          if (!r.ok()) return r.status();
          shard_replies[idx] = std::move(r).value();
          return Status::OK();
        },
        request.deadline_seconds, timer, &retries[idx]);
  };
  // Single-shard requests (the common point-lookup case under center
  // affinity) skip the router pool entirely and run on the caller.
  if (involved.size() == 1) {
    run(0);
  } else if (!involved.empty()) {
    ParallelFor(*router_pool_, static_cast<uint32_t>(involved.size()), run);
  }

  SessionReply reply;
  reply.matched.assign(request.centers.size(), {});
  ServeStats stats;
  stats.requests = 1;
  for (uint64_t r : retries) stats.retries += r;
  for (size_t bi = 0; bi < involved.size(); ++bi) {
    if (!statuses[bi].ok()) {
      if (!options_.degrade_on_shard_failure) return statuses[bi];
      // Degrade: this shard's centers keep their empty matched rows —
      // exactly what the failed_shards marker tells the caller to expect.
      reply.degraded = true;
      reply.failed_shards.push_back(involved[bi]);
      ++stats.shards_failed;
      continue;
    }
    const ShardBatch& batch = batches[involved[bi]];
    SessionReply& sub = shard_replies[bi];
    for (size_t j = 0; j < batch.positions.size(); ++j) {
      reply.matched[batch.positions[j]] = std::move(sub.matched[j]);
    }
    Accumulate(&stats, sub.stats);
  }
  for (size_t i = 0; i < request.centers.size(); ++i) {
    if (!reply.matched[i].empty()) {
      reply.entities.push_back(request.centers[i]);
    }
  }
  std::sort(reply.entities.begin(), reply.entities.end());
  reply.entities.erase(
      std::unique(reply.entities.begin(), reply.entities.end()),
      reply.entities.end());

  stats.latency_seconds = timer.Seconds();
  RecordRequest(stats);
  reply.stats = stats;
  return reply;
}

Result<SessionReply> ShardedRuleServer::QueryAll(
    const SessionRequest& request, const std::vector<uint32_t>& selected) {
  Timer timer;
  if (request.eta <= 0) {
    return Status::InvalidArgument("eta must be positive");
  }
  const uint32_t k = num_shards();

  SessionRequest sub;
  sub.all_centers = true;
  sub.rules = selected;
  sub.eta = request.eta;
  sub.require_consequent = request.require_consequent;

  // Health snapshot, as in QueryPoint: lagging shards fail fast.
  std::vector<char> healthy(k, 1);
  {
    MutexLock lock(graph_mu_);
    for (uint32_t s = 0; s < k; ++s) {
      healthy[s] = shard_acked_[s] == delta_sequence_ ? 1 : 0;
    }
  }

  std::vector<Status> statuses(k, Status::OK());
  std::vector<SessionReply> shard_replies(k);
  std::vector<uint64_t> retries(k, 0);
  auto run = [&](uint32_t s) {
    if (healthy[s] == 0) {
      statuses[s] = Status::Unavailable(
          "shard " + std::to_string(s) +
          " is lagging behind the delta sequence");
      return;
    }
    statuses[s] = CallWithRetry(
        [&]() {
          auto r = shards_[s]->Query(sub);
          if (!r.ok()) return r.status();
          shard_replies[s] = std::move(r).value();
          return Status::OK();
        },
        request.deadline_seconds, timer, &retries[s]);
  };
  if (k == 1) {
    run(0);
  } else {
    ParallelFor(*router_pool_, k, run);
  }

  // Gather: center ownership is disjoint, so the per-shard partial
  // supports sum to the global ones; confidences must be computed HERE,
  // from the global sums — shard-local confidences are meaningless.
  // Failed shards contribute nothing: their owned centers keep empty
  // matched rows and the sums cover the SURVIVING shards only (exact for
  // survivors' centers, a lower bound globally).
  SessionReply reply;
  reply.matched.assign(candidates_.size(), {});
  reply.rule_evals.assign(AcquireRecords()->size(), {});
  ServeStats stats;
  stats.requests = 1;
  for (uint64_t r : retries) stats.retries += r;
  for (uint32_t s = 0; s < k; ++s) {
    if (!statuses[s].ok()) {
      if (!options_.degrade_on_shard_failure) return statuses[s];
      reply.degraded = true;
      reply.failed_shards.push_back(s);
      ++stats.shards_failed;
      continue;
    }
    SessionReply& sub_reply = shard_replies[s];
    const std::vector<NodeId>& owned = shards_[s]->candidates();
    for (size_t j = 0; j < owned.size(); ++j) {
      auto it =
          std::lower_bound(candidates_.begin(), candidates_.end(), owned[j]);
      reply.matched[static_cast<size_t>(it - candidates_.begin())] =
          std::move(sub_reply.matched[j]);
    }
    reply.supp_q += sub_reply.supp_q;
    reply.supp_qbar += sub_reply.supp_qbar;
    for (uint32_t ri : selected) {
      // Bounds guards: a maintenance refresh racing this request can leave
      // router and shards briefly on differently sized rule sets (the
      // per-shard snapshot consistency caveat) — never index across the
      // mismatch.
      if (ri >= reply.rule_evals.size() ||
          ri >= sub_reply.rule_evals.size()) {
        continue;
      }
      reply.rule_evals[ri].supp_r += sub_reply.rule_evals[ri].supp_r;
      reply.rule_evals[ri].supp_qqbar += sub_reply.rule_evals[ri].supp_qqbar;
    }
    Accumulate(&stats, sub_reply.stats);
  }
  std::vector<char> qualified(reply.rule_evals.size(), 0);
  for (uint32_t ri : selected) {
    if (ri >= reply.rule_evals.size()) continue;  // refresh race, as above
    EipRuleEval& ev = reply.rule_evals[ri];
    ev.conf = BayesFactorConf(ev.supp_r, reply.supp_qbar, ev.supp_qqbar,
                              reply.supp_q);
    if (ev.conf >= request.eta) qualified[ri] = 1;
  }
  for (size_t i = 0; i < candidates_.size(); ++i) {
    for (uint32_t ri : reply.matched[i]) {
      if (ri < qualified.size() && qualified[ri] != 0) {
        reply.entities.push_back(candidates_[i]);
        break;
      }
    }
  }

  stats.latency_seconds = timer.Seconds();
  RecordRequest(stats);
  reply.stats = stats;
  return reply;
}

Result<DeltaStats> ShardedRuleServer::ApplyDelta(const GraphDelta& delta) {
  MutexLock writer(writer_mu_);
  // Heal first: a lagging shard must not receive this batch on top of a
  // gap (it would miss the intermediate invalidations). Shards that are
  // still lagging afterwards are excluded from the ship below and stay
  // degraded.
  Status resync = ResyncLaggingShardsLocked();
  (void)resync;
  return ApplyDeltaLocked(delta, /*journal=*/true, /*replay_sequence=*/0);
}

Result<DeltaStats> ShardedRuleServer::ApplyDeltaLocked(
    const GraphDelta& delta, bool journal, uint64_t replay_sequence) {
  std::shared_ptr<const Graph> cur;
  {
    MutexLock lock(graph_mu_);
    cur = graph_;
  }
  Timer timer;
  DeltaStats ds;
  // Replayed journal frames carry their own label dictionary (v3 wire);
  // re-intern before patching so a frame minted after the snapshot was
  // written still resolves. Live deltas have no defs — this is free.
  GPAR_RETURN_NOT_OK(ApplyLabelDefs(delta, interner_.get()));
  GPAR_ASSIGN_OR_RETURN(GraphPatch patch, PatchGraph(*cur, delta));
  ds.edges_inserted = patch.edges_inserted;
  ds.duplicates_ignored = patch.duplicates;
  ds.edges_deleted = patch.edges_deleted;
  ds.deletes_missing = patch.missing;
  if (patch.applied.empty() && patch.applied_deletes.empty()) {
    if (replay_sequence != 0) {
      // Replayed no-op (the checkpoint floor marker): nothing to ship,
      // but the sequence must advance — and shards that were current stay
      // current over an empty frame.
      MutexLock lock(graph_mu_);
      for (uint64_t& acked : shard_acked_) {
        if (acked == delta_sequence_) acked = replay_sequence;
      }
      delta_sequence_ = replay_sequence;
      ds.sequence = replay_sequence;
    }
    ds.seconds = timer.Seconds();
    return ds;
  }

  // Patch the shared parent CSR once, then ship one serialized batch of
  // the applied mutations to every shard — bytes on the wire instead of k
  // graph snapshots. Batches with deletes go out as v2 frames; pure-insert
  // batches keep the v1 framing.
  auto next = std::make_shared<const Graph>(std::move(patch.graph));
  GraphDelta wire;
  wire.inserts = std::move(patch.applied);
  wire.deletes = std::move(patch.applied_deletes);
  // Frames name the labels they reference, so journal replay against an
  // older snapshot re-interns live-minted labels instead of failing.
  CollectLabelDefs(*interner_, &wire);
  {
    MutexLock lock(graph_mu_);
    wire.sequence =
        replay_sequence != 0 ? replay_sequence : delta_sequence_ + 1;
  }
  if (journal && journal_ != nullptr) {
    // Append-before-ship: on an append failure nothing has advanced and
    // nothing was shipped, so the deployment is exactly as before.
    const uint64_t bytes_before = journal_->size_bytes();
    GPAR_RETURN_NOT_OK(journal_->Append(wire));
    ds.journal_bytes = journal_->size_bytes() - bytes_before;
  }
  // The crash window recovery must close: the frame is journaled but not
  // yet shipped or published. Replay applies it.
  GPAR_FAILPOINT("serve.publish");

  const uint32_t k = num_shards();
  const std::string bytes = wire.Serialize();
  std::vector<char> ship_to(k, 1);
  {
    MutexLock lock(graph_mu_);
    for (uint32_t s = 0; s < k; ++s) {
      ship_to[s] = shard_acked_[s] + 1 == wire.sequence ? 1 : 0;
    }
  }
  std::vector<Status> statuses(k, Status::OK());
  std::vector<DeltaStats> shard_stats(k);
  std::vector<uint64_t> retries(k, 0);
  auto ship = [&](uint32_t s) {
    if (ship_to[s] == 0) return;
    statuses[s] = CallWithRetry(
        [&]() {
          auto r = shards_[s]->ApplyShardDelta(next, bytes);
          if (!r.ok()) return r.status();
          shard_stats[s] = std::move(r).value();
          return Status::OK();
        },
        /*deadline_seconds=*/0, timer, &retries[s]);
  };
  if (k == 1) {
    ship(0);
  } else {
    ParallelFor(*router_pool_, k, ship);
  }

  uint64_t total_retries = 0;
  for (uint64_t r : retries) total_retries += r;
  // Relaxed: pure monotonic counter off the query path, no ordering with
  // other memory implied.
  lifetime_.retries.fetch_add(total_retries, std::memory_order_relaxed);

  if (!options_.degrade_on_shard_failure) {
    for (uint32_t s = 0; s < k; ++s) {
      // Strict mode: propagate the first ship failure without publishing.
      // (A journaled frame stays journaled — the journal is the source of
      // truth, and recovery replays it.)
      if (ship_to[s] != 0) GPAR_RETURN_NOT_OK(statuses[s]);
    }
  }

  {
    MutexLock lock(graph_mu_);
    graph_ = next;
    delta_sequence_ = wire.sequence;
    for (uint32_t s = 0; s < k; ++s) {
      if (ship_to[s] != 0 && statuses[s].ok()) {
        shard_acked_[s] = wire.sequence;
      }
    }
    for (uint64_t acked : shard_acked_) {
      if (acked != wire.sequence) ++ds.shards_lagging;
    }
  }
  ds.sequence = wire.sequence;

  if (maintainer_ != nullptr) {
    // Maintain-on-ApplyDelta: the pass runs on the parent graph after the
    // ship; a changed top-k is pushed to the shards and republished
    // router-side. Push failures degrade (the affected shard keeps the
    // previous set until the next refresh) unless strict mode is on.
    Status maintained = MaintainAfterShip(*cur, next, wire, &ds);
    if (!maintained.ok() && !options_.degrade_on_shard_failure) {
      return maintained;
    }
  }

  // Keep the frame for pending-tail resync until every shard acked it,
  // bounded: a shard lagging past the cap resyncs from the journal or not
  // at all.
  pending_.push_back(PendingFrame{wire.sequence, std::move(wire)});
  {
    MutexLock lock(graph_mu_);
    uint64_t min_acked = delta_sequence_;
    for (uint64_t acked : shard_acked_) min_acked = std::min(min_acked, acked);
    while (!pending_.empty() && pending_.front().sequence <= min_acked) {
      pending_.pop_front();
    }
  }
  constexpr size_t kMaxPendingFrames = 4096;
  while (pending_.size() > kMaxPendingFrames) pending_.pop_front();

  for (uint32_t s = 0; s < k; ++s) {
    if (ship_to[s] == 0 || !statuses[s].ok()) continue;
    const DeltaStats& st = shard_stats[s];
    ds.memberships_invalidated += st.memberships_invalidated;
    ds.qclass_invalidated += st.qclass_invalidated;
    ds.sketches_refreshed += st.sketches_refreshed;
    ds.members_extended += st.members_extended;
    ds.wire_bytes += st.wire_bytes;
  }
  ds.seconds = timer.Seconds();
  return ds;
}

Status ShardedRuleServer::MaintainAfterShip(
    const Graph& old_graph, std::shared_ptr<const Graph> new_graph,
    const GraphDelta& wire, DeltaStats* ds) {
  GPAR_ASSIGN_OR_RETURN(
      const MaintainStats ms,
      maintainer_->Advance(old_graph, std::move(new_graph), wire.inserts,
                           wire.deletes));
  (void)ms;  // folded into maintain_stats()
  std::vector<RuleRecord> refreshed = maintainer_->TopKRecords();
  {
    MutexLock lock(graph_mu_);
    if (refreshed == *records_) return Status::OK();
  }
  // Publish router-side FIRST: selections normalize against the router's
  // set, and a shard still on the old set rejects out-of-range indices
  // (the merge also bounds-checks) instead of answering from the wrong
  // rule.
  auto shared =
      std::make_shared<const std::vector<RuleRecord>>(std::move(refreshed));
  {
    MutexLock lock(graph_mu_);
    records_ = shared;
  }
  ds->rules_refreshed = 1;
  Status first_failure = Status::OK();
  for (auto& shard : shards_) {
    Status st = shard->UpdateRules(*shared);
    if (!st.ok() && first_failure.ok()) first_failure = std::move(st);
  }
  return first_failure;
}

Status ShardedRuleServer::EnableMaintenance(const MaintainOptions& options) {
  MutexLock writer(writer_mu_);
  if (maintainer_ != nullptr) {
    return Status::InvalidArgument("maintenance is already enabled");
  }
  if (std::max<uint32_t>(options.mine.d, 1) > partition_d_) {
    return Status::InvalidArgument(
        "maintained rule radius " + std::to_string(options.mine.d) +
        " exceeds the partition radius " + std::to_string(partition_d_) +
        " the fragments were cut for; reload the deployment with the "
        "deeper radius instead");
  }
  std::shared_ptr<const Graph> g;
  {
    MutexLock lock(graph_mu_);
    g = graph_;
  }
  GPAR_ASSIGN_OR_RETURN(maintainer_,
                        RuleMaintainer::Seed(std::move(g), q_, options));
  std::vector<RuleRecord> refreshed = maintainer_->TopKRecords();
  {
    MutexLock lock(graph_mu_);
    if (refreshed == *records_) return Status::OK();
  }
  auto shared =
      std::make_shared<const std::vector<RuleRecord>>(std::move(refreshed));
  {
    MutexLock lock(graph_mu_);
    records_ = shared;
  }
  Status first_failure = Status::OK();
  for (auto& shard : shards_) {
    Status st = shard->UpdateRules(*shared);
    if (!st.ok() && first_failure.ok()) first_failure = std::move(st);
  }
  return first_failure;
}

bool ShardedRuleServer::maintenance_enabled() const {
  MutexLock writer(writer_mu_);
  return maintainer_ != nullptr;
}

MaintainStats ShardedRuleServer::maintain_stats() const {
  MutexLock writer(writer_mu_);
  return maintainer_ != nullptr ? maintainer_->lifetime_stats()
                                : MaintainStats{};
}

Status ShardedRuleServer::ResyncLaggingShards() {
  MutexLock writer(writer_mu_);
  return ResyncLaggingShardsLocked();
}

Status ShardedRuleServer::ResyncLaggingShardsLocked() {
  const uint32_t k = num_shards();
  uint64_t cur = 0;
  std::vector<uint64_t> acked;
  std::shared_ptr<const Graph> g;
  {
    MutexLock lock(graph_mu_);
    cur = delta_sequence_;
    acked = shard_acked_;
    g = graph_;
  }
  Status first_failure = Status::OK();
  auto note = [&first_failure](Status st) {
    if (first_failure.ok()) first_failure = std::move(st);
  };
  for (uint32_t s = 0; s < k; ++s) {
    if (acked[s] >= cur) continue;
    // Collect the frames this shard missed — exactly (acked, cur], every
    // sequence accounted for. The journal (durable, survives restarts) is
    // preferred; the in-memory pending tail covers frames a compaction
    // already dropped. Floor markers are empty stand-ins for compacted
    // frames, not the frames themselves, so they never count as coverage.
    const uint64_t needed = cur - acked[s];
    std::vector<const GraphDelta*> missed;
    std::vector<GraphDelta> journal_frames;
    auto covered = [&]() {
      return missed.size() == needed &&
             missed.front()->sequence == acked[s] + 1 &&
             missed.back()->sequence == cur;
    };
    if (journal_ != nullptr) {
      auto all = DeltaJournal::ReadAll(journal_->path());
      if (all.ok()) {
        journal_frames = std::move(all).value();
        for (const GraphDelta& f : journal_frames) {
          if (f.sequence > acked[s] && f.sequence <= cur &&
              !(f.inserts.empty() && f.deletes.empty())) {
            missed.push_back(&f);
          }
        }
      }
    }
    if (missed.empty() || !covered()) {
      missed.clear();
      for (const PendingFrame& f : pending_) {
        if (f.sequence > acked[s] && f.sequence <= cur) {
          missed.push_back(&f.delta);
        }
      }
    }
    if (missed.empty() || !covered()) {
      note(Status::Unavailable(
          "shard " + std::to_string(s) + " cannot be resynced: frames (" +
          std::to_string(acked[s]) + ", " + std::to_string(cur) +
          "] are no longer available"));
      continue;
    }
    // One merged catch-up batch at the current sequence, shipped with the
    // current parent graph. Safe: the shard served nothing while lagging,
    // so no intermediate state was ever observable, and the endpoint
    // union (an edge inserted then deleted in the window contributes
    // both) is exactly what its invalidation walk needs.
    GraphDelta merged;
    merged.sequence = cur;
    for (const GraphDelta* f : missed) {
      merged.inserts.insert(merged.inserts.end(), f->inserts.begin(),
                            f->inserts.end());
      merged.deletes.insert(merged.deletes.end(), f->deletes.begin(),
                            f->deletes.end());
    }
    CollectLabelDefs(*interner_, &merged);
    auto r = shards_[s]->ApplyShardDelta(g, merged.Serialize());
    if (r.ok()) {
      MutexLock lock(graph_mu_);
      shard_acked_[s] = std::max(shard_acked_[s], cur);
    } else {
      note(r.status());
    }
  }
  return first_failure;
}

Status ShardedRuleServer::AttachJournal(const std::string& path,
                                        const DeltaJournalOptions& options,
                                        JournalReplayStats* replay) {
  MutexLock writer(writer_mu_);
  if (journal_ != nullptr) {
    return Status::InvalidArgument("a journal is already attached");
  }
  JournalReplayStats stats;
  GPAR_ASSIGN_OR_RETURN(std::vector<GraphDelta> frames,
                        DeltaJournal::ReadAll(path, &stats));
  for (const GraphDelta& frame : frames) {
    // Replay through the normal ship path, pinned to the journaled
    // sequence (not re-journaled — these frames ARE the journal).
    auto applied = ApplyDeltaLocked(frame, /*journal=*/false, frame.sequence);
    if (!applied.ok()) return applied.status();
  }
  GPAR_ASSIGN_OR_RETURN(journal_, DeltaJournal::Open(path, options));
  if (replay != nullptr) *replay = stats;
  return Status::OK();
}

Status ShardedRuleServer::Checkpoint(const std::string& graph_snapshot_path) {
  MutexLock writer(writer_mu_);
  if (journal_ == nullptr) {
    return Status::InvalidArgument("checkpoint requires an attached journal");
  }
  std::shared_ptr<const Graph> g;
  {
    MutexLock lock(graph_mu_);
    g = graph_;
  }
  GPAR_RETURN_NOT_OK(WriteGraphSnapshotFile(*g, graph_snapshot_path));
  // The snapshot now carries every journaled frame's effects; compaction
  // keeps only the sequence floor.
  return journal_->Compact();
}

}  // namespace gpar
