#include "serve/sharded_rule_server.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/timer.h"
#include "graph/graph_snapshot.h"
#include "graph/partition.h"
#include "identify/eip.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

void Accumulate(ServeStats* into, const ServeStats& s) {
  into->cache_hits += s.cache_hits;
  into->cache_probes += s.cache_probes;
  into->centers_evaluated += s.centers_evaluated;
}

}  // namespace

ShardedRuleServer::ShardedRuleServer(const ShardedRuleServerOptions& options)
    : options_(options) {}

Result<std::unique_ptr<ShardedRuleServer>> ShardedRuleServer::Load(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path,
    const ShardedRuleServerOptions& options) {
  auto g = ReadGraphSnapshotFile(graph_snapshot_path);
  if (!g.ok()) return g.status();
  auto rules =
      ReadRuleSetSnapshotFile(rules_snapshot_path, g->mutable_labels());
  if (!rules.ok()) return rules.status();
  return Create(std::move(g).value(), std::move(rules).value(), options);
}

Result<std::unique_ptr<ShardedRuleServer>> ShardedRuleServer::Create(
    Graph g, std::vector<RuleRecord> rules,
    const ShardedRuleServerOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::unique_ptr<ShardedRuleServer> server(new ShardedRuleServer(options));
  server->records_ = std::move(rules);
  std::vector<Gpar> sigma;
  sigma.reserve(server->records_.size());
  for (const RuleRecord& r : server->records_) sigma.push_back(r.rule);
  GPAR_ASSIGN_OR_RETURN(SigmaInfo info, ValidateSigma(sigma));

  auto parent = std::make_shared<const Graph>(std::move(g));
  server->interner_ = parent->labels_ptr();
  {
    auto span = parent->nodes_with_label(info.q.x_label);
    server->candidates_.assign(span.begin(), span.end());
  }

  // Partition at the rule set's locality radius: every owned center's
  // G_d lives inside its fragment, so shard-local matching is exact.
  PartitionOptions popt;
  popt.num_fragments = options.num_shards;
  popt.d = std::max<uint32_t>(info.d, 1);
  GPAR_ASSIGN_OR_RETURN(
      Partitioning parts,
      PartitionGraph(*parent, server->candidates_, popt));
  server->owner_ = std::move(parts.owner_of_center);

  server->shards_.reserve(parts.fragments.size());
  for (Fragment& frag : parts.fragments) {
    GPAR_ASSIGN_OR_RETURN(
        std::unique_ptr<RuleServer> shard,
        RuleServer::CreateShard(parent, frag.view.nodes(),
                                std::move(frag.centers), server->records_,
                                options.shard_options));
    server->shards_.push_back(std::move(shard));
  }
  server->router_pool_ = std::make_unique<ThreadPool>(
      options.router_threads > 0 ? options.router_threads
                                 : options.num_shards);
  server->num_nodes_ = parent->num_nodes();
  {
    // Create runs single-threaded, but `graph_` is guarded and the lock is
    // uncontended — take it rather than poke an analysis hole.
    MutexLock lock(server->graph_mu_);
    server->graph_ = std::move(parent);
  }
  return server;
}

uint32_t ShardedRuleServer::OwnerOf(NodeId center) const {
  auto it = std::lower_bound(candidates_.begin(), candidates_.end(), center);
  if (it == candidates_.end() || *it != center) return num_shards();
  return owner_[static_cast<size_t>(it - candidates_.begin())];
}

uint64_t ShardedRuleServer::delta_sequence() const {
  MutexLock lock(graph_mu_);
  return delta_sequence_;
}

std::shared_ptr<const Graph> ShardedRuleServer::graph_snapshot() const {
  MutexLock lock(graph_mu_);
  return graph_;
}

ServeStats ShardedRuleServer::lifetime_stats() const {
  // Relaxed: each counter is independently monotonic and the snapshot is
  // advisory — a read torn ACROSS counters is acceptable, no ordering with
  // any other memory is implied.
  const auto get = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  ServeStats st;
  st.requests = get(lifetime_.requests);
  st.cache_hits = get(lifetime_.cache_hits);
  st.cache_probes = get(lifetime_.cache_probes);
  st.centers_evaluated = get(lifetime_.centers_evaluated);
  st.latency_seconds = static_cast<double>(get(lifetime_.latency_micros)) * 1e-6;
  return st;
}

void ShardedRuleServer::RecordRequest(const ServeStats& stats) {
  // Relaxed: pure monotonic counters on the router hot path; publishing
  // request results does not ride on these stores, so no release is needed.
  const auto add = [](std::atomic<uint64_t>& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  };
  add(lifetime_.requests, 1);
  add(lifetime_.cache_hits, stats.cache_hits);
  add(lifetime_.cache_probes, stats.cache_probes);
  add(lifetime_.centers_evaluated, stats.centers_evaluated);
  add(lifetime_.latency_micros,
      static_cast<uint64_t>(stats.latency_seconds * 1e6));
}

Result<SessionReply> ShardedRuleServer::Query(const SessionRequest& request) {
  GPAR_ASSIGN_OR_RETURN(
      std::vector<uint32_t> selected,
      NormalizeRuleSelection(request.rules, records_.size()));
  return request.all_centers ? QueryAll(request, selected)
                             : QueryPoint(request, selected);
}

Result<SessionReply> ShardedRuleServer::QueryPoint(
    const SessionRequest& request, const std::vector<uint32_t>& selected) {
  Timer timer;
  const NodeId n = num_nodes_;
  const uint32_t k = num_shards();

  // Scatter by center ownership; non-candidate centers match nothing and
  // never leave the router.
  struct ShardBatch {
    std::vector<NodeId> centers;
    std::vector<size_t> positions;  ///< indices into request.centers
  };
  std::vector<ShardBatch> batches(k);
  for (size_t i = 0; i < request.centers.size(); ++i) {
    const NodeId c = request.centers[i];
    if (c >= n) {
      return Status::InvalidArgument("center id " + std::to_string(c) +
                                     " out of range");
    }
    const uint32_t owner = OwnerOf(c);
    if (owner >= k) continue;
    batches[owner].centers.push_back(c);
    batches[owner].positions.push_back(i);
  }
  std::vector<uint32_t> involved;
  for (uint32_t s = 0; s < k; ++s) {
    if (!batches[s].centers.empty()) involved.push_back(s);
  }

  std::vector<Status> statuses(involved.size(), Status::OK());
  std::vector<SessionReply> shard_replies(involved.size());
  auto run = [&](uint32_t idx) {
    SessionRequest sub;
    sub.centers = std::move(batches[involved[idx]].centers);
    sub.rules = selected;
    sub.require_consequent = request.require_consequent;
    auto r = shards_[involved[idx]]->Query(sub);
    if (r.ok()) {
      shard_replies[idx] = std::move(r).value();
    } else {
      statuses[idx] = r.status();
    }
  };
  // Single-shard requests (the common point-lookup case under center
  // affinity) skip the router pool entirely and run on the caller.
  if (involved.size() == 1) {
    run(0);
  } else if (!involved.empty()) {
    ParallelFor(*router_pool_, static_cast<uint32_t>(involved.size()), run);
  }
  for (const Status& st : statuses) GPAR_RETURN_NOT_OK(st);

  SessionReply reply;
  reply.matched.assign(request.centers.size(), {});
  ServeStats stats;
  stats.requests = 1;
  for (size_t bi = 0; bi < involved.size(); ++bi) {
    const ShardBatch& batch = batches[involved[bi]];
    SessionReply& sub = shard_replies[bi];
    for (size_t j = 0; j < batch.positions.size(); ++j) {
      reply.matched[batch.positions[j]] = std::move(sub.matched[j]);
    }
    Accumulate(&stats, sub.stats);
  }
  for (size_t i = 0; i < request.centers.size(); ++i) {
    if (!reply.matched[i].empty()) {
      reply.entities.push_back(request.centers[i]);
    }
  }
  std::sort(reply.entities.begin(), reply.entities.end());
  reply.entities.erase(
      std::unique(reply.entities.begin(), reply.entities.end()),
      reply.entities.end());

  stats.latency_seconds = timer.Seconds();
  RecordRequest(stats);
  reply.stats = stats;
  return reply;
}

Result<SessionReply> ShardedRuleServer::QueryAll(
    const SessionRequest& request, const std::vector<uint32_t>& selected) {
  Timer timer;
  if (request.eta <= 0) {
    return Status::InvalidArgument("eta must be positive");
  }
  const uint32_t k = num_shards();

  SessionRequest sub;
  sub.all_centers = true;
  sub.rules = selected;
  sub.eta = request.eta;
  sub.require_consequent = request.require_consequent;

  std::vector<Status> statuses(k, Status::OK());
  std::vector<SessionReply> shard_replies(k);
  auto run = [&](uint32_t s) {
    auto r = shards_[s]->Query(sub);
    if (r.ok()) {
      shard_replies[s] = std::move(r).value();
    } else {
      statuses[s] = r.status();
    }
  };
  if (k == 1) {
    run(0);
  } else {
    ParallelFor(*router_pool_, k, run);
  }
  for (const Status& st : statuses) GPAR_RETURN_NOT_OK(st);

  // Gather: center ownership is disjoint, so the per-shard partial
  // supports sum to the global ones; confidences must be computed HERE,
  // from the global sums — shard-local confidences are meaningless.
  SessionReply reply;
  reply.matched.assign(candidates_.size(), {});
  reply.rule_evals.assign(records_.size(), {});
  ServeStats stats;
  stats.requests = 1;
  for (uint32_t s = 0; s < k; ++s) {
    SessionReply& sub_reply = shard_replies[s];
    const std::vector<NodeId>& owned = shards_[s]->candidates();
    for (size_t j = 0; j < owned.size(); ++j) {
      auto it =
          std::lower_bound(candidates_.begin(), candidates_.end(), owned[j]);
      reply.matched[static_cast<size_t>(it - candidates_.begin())] =
          std::move(sub_reply.matched[j]);
    }
    reply.supp_q += sub_reply.supp_q;
    reply.supp_qbar += sub_reply.supp_qbar;
    for (uint32_t ri : selected) {
      reply.rule_evals[ri].supp_r += sub_reply.rule_evals[ri].supp_r;
      reply.rule_evals[ri].supp_qqbar += sub_reply.rule_evals[ri].supp_qqbar;
    }
    Accumulate(&stats, sub_reply.stats);
  }
  std::vector<char> qualified(records_.size(), 0);
  for (uint32_t ri : selected) {
    EipRuleEval& ev = reply.rule_evals[ri];
    ev.conf = BayesFactorConf(ev.supp_r, reply.supp_qbar, ev.supp_qqbar,
                              reply.supp_q);
    if (ev.conf >= request.eta) qualified[ri] = 1;
  }
  for (size_t i = 0; i < candidates_.size(); ++i) {
    for (uint32_t ri : reply.matched[i]) {
      if (qualified[ri] != 0) {
        reply.entities.push_back(candidates_[i]);
        break;
      }
    }
  }

  stats.latency_seconds = timer.Seconds();
  RecordRequest(stats);
  reply.stats = stats;
  return reply;
}

Result<DeltaStats> ShardedRuleServer::ApplyDelta(const GraphDelta& delta) {
  MutexLock writer(writer_mu_);
  std::shared_ptr<const Graph> cur = graph_snapshot();
  Timer timer;
  DeltaStats ds;
  GPAR_ASSIGN_OR_RETURN(GraphPatch patch, PatchGraph(*cur, delta));
  ds.edges_inserted = patch.edges_inserted;
  ds.duplicates_ignored = patch.duplicates;
  ds.edges_deleted = patch.edges_deleted;
  ds.deletes_missing = patch.missing;
  if (patch.applied.empty() && patch.applied_deletes.empty()) {
    ds.seconds = timer.Seconds();
    return ds;
  }

  // Patch the shared parent CSR once, then ship one serialized batch of
  // the applied mutations to every shard — bytes on the wire instead of k
  // graph snapshots. Batches with deletes go out as v2 frames; pure-insert
  // batches keep the v1 framing.
  auto next = std::make_shared<const Graph>(std::move(patch.graph));
  GraphDelta wire;
  wire.inserts = std::move(patch.applied);
  wire.deletes = std::move(patch.applied_deletes);
  const uint32_t k = num_shards();
  std::vector<Status> statuses(k, Status::OK());
  std::vector<DeltaStats> shard_stats(k);
  {
    MutexLock lock(graph_mu_);
    wire.sequence = ++delta_sequence_;
  }
  const std::string bytes = wire.Serialize();
  auto ship = [&](uint32_t s) {
    auto r = shards_[s]->ApplyShardDelta(next, bytes);
    if (r.ok()) {
      shard_stats[s] = std::move(r).value();
    } else {
      statuses[s] = r.status();
    }
  };
  if (k == 1) {
    ship(0);
  } else {
    ParallelFor(*router_pool_, k, ship);
  }
  for (const Status& st : statuses) GPAR_RETURN_NOT_OK(st);

  {
    MutexLock lock(graph_mu_);
    graph_ = next;
  }
  for (const DeltaStats& s : shard_stats) {
    ds.memberships_invalidated += s.memberships_invalidated;
    ds.qclass_invalidated += s.qclass_invalidated;
    ds.sketches_refreshed += s.sketches_refreshed;
    ds.members_extended += s.members_extended;
    ds.wire_bytes += s.wire_bytes;
  }
  ds.seconds = timer.Seconds();
  return ds;
}

}  // namespace gpar
