#ifndef GPAR_SERVE_SERVE_COMMAND_H_
#define GPAR_SERVE_SERVE_COMMAND_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "serve/serve_session.h"

namespace gpar {

/// One edge insert with a textual label — the wire-independent form the
/// serve loop parses before interning labels through the session.
struct TextEdgeInsert {
  NodeId src = 0;
  std::string label;
  NodeId dst = 0;

  friend bool operator==(const TextEdgeInsert&,
                         const TextEdgeInsert&) = default;
};

/// One edge delete with a textual label (the `-` sections of a `delta`
/// line). A label the session never interned simply names no edge — the
/// delete is counted missing downstream, per `EdgeDelete` semantics.
struct TextEdgeDelete {
  NodeId src = 0;
  std::string label;
  NodeId dst = 0;

  friend bool operator==(const TextEdgeDelete&,
                         const TextEdgeDelete&) = default;
};

/// A parsed line of the gpar_tool serve protocol.
struct ServeCommand {
  enum class Kind {
    kHelp,        ///< `help` or an empty line
    kQuit,        ///< `quit` / `exit`
    kStats,       ///< `stats`
    kQuery,       ///< `id ...` / `all ...` — `request` is filled
    kDelta,       ///< `delta ...` — `inserts` / `deletes` are filled
    kCheckpoint,  ///< `checkpoint [path]` — `path` is filled (may be empty)
    kRecover,     ///< `recover`
  };
  Kind kind = Kind::kHelp;
  SessionRequest request;
  std::vector<TextEdgeInsert> inserts;
  std::vector<TextEdgeDelete> deletes;
  /// `checkpoint` only: snapshot destination; empty = the path the serving
  /// graph snapshot was loaded from.
  std::string path;
};

/// Parses one line of the serve loop's protocol into a typed command:
///
///   id [rules=i,j,...] [pr=0|1] <center> [<center> ...]
///   all [eta] [rules=i,j,...] [pr=0|1]
///   delta [+|-] <src> <elabel> <dst> [[+|-] <src> <elabel> <dst> ...]
///   checkpoint [path]
///   recover
///   stats | help | quit | exit
///
/// `checkpoint` snapshots the served graph (to `path`, default the loaded
/// snapshot path) and compacts the attached journal; `recover` rebuilds
/// the session from snapshot + journal replay. Both require the serve
/// loop to have a journal attached (`--journal`).
///
/// `rules=` restricts the probe to a rule-index subset; `pr=1` requires
/// the full P_R (consequent included) instead of the formal antecedent
/// semantics. A `delta` line starts in insert mode; a bare `+` / `-`
/// token switches the following triples to inserts / deletes, so one
/// line can mix both (`delta 1 follow 2 - 3 follow 4`). Malformed input
/// yields InvalidArgument with a message naming the offending command
/// and token (unit-covered like common/flags); rule indices are
/// range-checked by the session, not here.
Result<ServeCommand> ParseServeCommand(std::string_view line);

/// The `help` text matching the grammar above.
const char* ServeCommandHelp();

}  // namespace gpar

#endif  // GPAR_SERVE_SERVE_COMMAND_H_
