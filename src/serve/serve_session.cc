#include "serve/serve_session.h"

#include <algorithm>
#include <numeric>

namespace gpar {

Result<std::vector<uint32_t>> NormalizeRuleSelection(
    const std::vector<uint32_t>& rules, size_t num_rules) {
  std::vector<uint32_t> selected = rules;
  if (selected.empty()) {
    selected.resize(num_rules);
    std::iota(selected.begin(), selected.end(), 0);
    return selected;
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  if (selected.back() >= num_rules) {
    return Status::InvalidArgument("rule index " +
                                   std::to_string(selected.back()) +
                                   " out of range");
  }
  return selected;
}

}  // namespace gpar
