#include "serve/serve_command.h"

#include <charconv>
#include <sstream>
#include <system_error>

namespace gpar {

namespace {

bool ParseNumber(std::string_view token, uint32_t* out) {
  auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   *out);
  return ec == std::errc() && end == token.data() + token.size();
}

bool ParseDouble(std::string_view token, double* out) {
  // std::from_chars<double> is missing on some libc++ versions; stream
  // parsing is fine at interactive-command rates.
  std::istringstream ss{std::string(token)};
  ss >> *out;
  return !ss.fail() && ss.eof();
}

Status Malformed(std::string_view cmd, const std::string& detail) {
  return Status::InvalidArgument(std::string(cmd) + ": " + detail);
}

/// Consumes a `rules=i,j,...` / `pr=0|1` option token; `true` with OK
/// status when the token was an option (applied to `request`), `true`
/// with an error status when it was a malformed option, `false` when it
/// is not an option token at all.
bool TryParseOption(std::string_view cmd, std::string_view token,
                    SessionRequest* request, Status* status) {
  *status = Status::OK();
  if (token.rfind("rules=", 0) == 0) {
    std::string_view list = token.substr(6);
    if (list.empty()) {
      *status = Malformed(cmd, "rules= expects a comma-separated rule list");
      return true;
    }
    while (!list.empty()) {
      const size_t comma = list.find(',');
      const std::string_view item = list.substr(0, comma);
      uint32_t ri;
      if (!ParseNumber(item, &ri)) {
        *status = Malformed(cmd, "rules= expects rule indices, got '" +
                                     std::string(item) + "'");
        return true;
      }
      request->rules.push_back(ri);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
      if (list.empty()) {
        *status = Malformed(cmd, "rules= has a trailing comma");
        return true;
      }
    }
    return true;
  }
  if (token.rfind("pr=", 0) == 0) {
    const std::string_view v = token.substr(3);
    if (v == "0") {
      request->require_consequent = false;
    } else if (v == "1") {
      request->require_consequent = true;
    } else {
      *status =
          Malformed(cmd, "pr= expects 0 or 1, got '" + std::string(v) + "'");
      return true;
    }
    return true;
  }
  return false;
}

}  // namespace

const char* ServeCommandHelp() {
  return "commands: id [rules=i,j] [pr=0|1] <center>... | "
         "all [eta] [rules=i,j] [pr=0|1] | "
         "delta [+|-] <src> <elabel> <dst>... | "
         "checkpoint [path] | recover | stats | quit";
}

Result<ServeCommand> ParseServeCommand(std::string_view line) {
  std::istringstream ls{std::string(line)};
  std::string cmd;
  ServeCommand out;
  if (!(ls >> cmd) || cmd == "help") {
    out.kind = ServeCommand::Kind::kHelp;
    return out;
  }
  if (cmd == "quit" || cmd == "exit") {
    out.kind = ServeCommand::Kind::kQuit;
    return out;
  }
  std::string token;
  if (cmd == "stats") {
    if (ls >> token) {
      return Malformed(cmd, "takes no arguments, got '" + token + "'");
    }
    out.kind = ServeCommand::Kind::kStats;
    return out;
  }
  if (cmd == "checkpoint") {
    out.kind = ServeCommand::Kind::kCheckpoint;
    if (ls >> token) {
      out.path = std::move(token);
      std::string extra;
      if (ls >> extra) {
        return Malformed(cmd,
                         "takes at most one path, got '" + extra + "'");
      }
    }
    return out;
  }
  if (cmd == "recover") {
    if (ls >> token) {
      return Malformed(cmd, "takes no arguments, got '" + token + "'");
    }
    out.kind = ServeCommand::Kind::kRecover;
    return out;
  }
  if (cmd == "id") {
    out.kind = ServeCommand::Kind::kQuery;
    while (ls >> token) {
      Status opt_status;
      if (TryParseOption(cmd, token, &out.request, &opt_status)) {
        GPAR_RETURN_NOT_OK(opt_status);
        continue;
      }
      uint32_t center;
      if (!ParseNumber(token, &center)) {
        return Malformed(cmd, "center must be a node id, got '" + token + "'");
      }
      out.request.centers.push_back(center);
    }
    if (out.request.centers.empty()) {
      return Malformed(cmd, "expects at least one center id");
    }
    return out;
  }
  if (cmd == "all") {
    out.kind = ServeCommand::Kind::kQuery;
    out.request.all_centers = true;
    bool have_eta = false;
    while (ls >> token) {
      Status opt_status;
      if (TryParseOption(cmd, token, &out.request, &opt_status)) {
        GPAR_RETURN_NOT_OK(opt_status);
        continue;
      }
      double eta;
      if (have_eta || !ParseDouble(token, &eta)) {
        return Malformed(cmd, "unexpected token '" + token + "'");
      }
      if (eta <= 0) {
        return Malformed(cmd, "eta must be positive, got '" + token + "'");
      }
      out.request.eta = eta;
      have_eta = true;
    }
    return out;
  }
  if (cmd == "delta") {
    out.kind = ServeCommand::Kind::kDelta;
    bool deleting = false;  // lines start in insert mode
    while (ls >> token) {
      if (token == "+") {
        deleting = false;
        continue;
      }
      if (token == "-") {
        deleting = true;
        continue;
      }
      NodeId src;
      if (!ParseNumber(token, &src)) {
        return Malformed(cmd, "src must be a node id, got '" + token + "'");
      }
      std::string label;
      if (!(ls >> label)) {
        return Malformed(cmd, "missing edge label after src " + token);
      }
      std::string dst_token;
      NodeId dst;
      if (!(ls >> dst_token) || !ParseNumber(dst_token, &dst)) {
        return Malformed(cmd, "expects (src, elabel, dst) triples");
      }
      if (deleting) {
        out.deletes.push_back({src, std::move(label), dst});
      } else {
        out.inserts.push_back({src, std::move(label), dst});
      }
    }
    if (out.inserts.empty() && out.deletes.empty()) {
      return Malformed(cmd, "expects at least one (src, elabel, dst) triple");
    }
    return out;
  }
  return Status::InvalidArgument("unknown command '" + cmd + "' (try help)");
}

}  // namespace gpar
