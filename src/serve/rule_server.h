#ifndef GPAR_SERVE_RULE_SERVER_H_
#define GPAR_SERVE_RULE_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/sketch.h"
#include "identify/center_evaluator.h"
#include "identify/eip.h"
#include "match/matcher.h"
#include "parallel/thread_pool.h"
#include "rule/rule_snapshot.h"

namespace gpar {

/// Options for `RuleServer`.
struct RuleServerOptions {
  uint32_t num_workers = 4;
  /// k for the guided matcher's k-hop sketches (see EipOptions::sketch_hops).
  uint32_t sketch_hops = 1;
  bool use_guided_search = true;
  bool share_multi_patterns = true;
  /// Capacity of the (rule, center) match cache, counted in (rule, center)
  /// memberships. Centers are the physical eviction unit: one cached center
  /// holds one membership slot per loaded rule.
  size_t cache_capacity = size_t{1} << 20;
  /// Precompute a shared sketch store at load for nodes whose label occurs
  /// in a loaded rule pattern (the only nodes guided search can ever
  /// sketch), capped below. Off: sketches are built lazily per worker.
  bool precompute_sketches = true;
  size_t max_precomputed_sketches = size_t{1} << 17;
};

/// A batched identify request: which centers to classify against which of
/// the loaded rules. Empty `rules` selects every loaded rule. Centers need
/// not satisfy x's label — such centers simply match nothing.
struct ServeRequest {
  std::vector<NodeId> centers;
  std::vector<uint32_t> rules;
  /// False (default): a rule matches a center when its antecedent Q does
  /// (the formal Σ(x, G, η) semantics). True: require the full P_R.
  bool require_consequent = false;
};

/// Per-request (and accumulated lifetime) serving statistics.
struct ServeStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;    ///< (rule, center) memberships answered from cache
  uint64_t cache_probes = 0;  ///< memberships computed by pattern matching
  uint64_t centers_evaluated = 0;  ///< centers that needed any matching work
  double latency_seconds = 0;
};

/// Reply to a `ServeRequest`.
struct ServeReply {
  /// Parallel to `request.centers`: the selected rule indices whose
  /// consequent fires at that center (sorted ascending).
  std::vector<std::vector<uint32_t>> matched;
  /// Distinct centers with at least one matched rule, sorted.
  std::vector<NodeId> entities;
  ServeStats stats;
};

/// Cost accounting for one `ApplyDelta` call.
struct DeltaStats {
  size_t edges_inserted = 0;
  size_t duplicates_ignored = 0;
  uint64_t memberships_invalidated = 0;  ///< known (rule, center) bits cleared
  uint64_t qclass_invalidated = 0;
  uint64_t sketches_refreshed = 0;
  double seconds = 0;
};

/// The online half of GPAR mining (Section 5 framing): rules are mined
/// offline into snapshots; a long-lived `RuleServer` session loads one
/// (graph, rule set) snapshot pair, precomputes per-rule state once —
/// search plans in a shared `SearchPlanStore`, k-hop sketches in a shared
/// `SketchStore`, the per-label candidate index, global satisfiability of
/// antecedent components not containing x — and then answers batched
/// identify requests on a persistent `ThreadPool`, far cheaper than one
/// batch `IdentifyEntities` run per request.
///
/// Memberships are memoized in an LRU (rule, center) match cache. Edge
/// deltas (`ApplyDelta`) patch the CSR and, by the paper's locality
/// property (membership of v depends only on G_d(v)), invalidate only the
/// cached memberships within d(R) hops of a touched endpoint — everything
/// else stays warm. `IdentifyAll` answers exactly like a fresh batch
/// `IdentifyEntities` on the equivalent graph (the ServeEquivalence tests).
///
/// Thread-safety: one request at a time (calls use the pool internally);
/// external synchronization is required for concurrent callers.
class RuleServer {
 public:
  /// Loads a snapshot pair produced by `WriteGraphSnapshot[File]` and
  /// `WriteRuleSetSnapshot[File]`.
  static Result<std::unique_ptr<RuleServer>> Load(
      const std::string& graph_snapshot_path,
      const std::string& rules_snapshot_path,
      const RuleServerOptions& options = {});

  /// Builds a session from in-memory state (tests, single-process use).
  static Result<std::unique_ptr<RuleServer>> Create(
      Graph g, std::vector<RuleRecord> rules,
      const RuleServerOptions& options = {});

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  /// Classifies `request.centers` against the selected rules.
  Result<ServeReply> Serve(const ServeRequest& request);

  /// Full entity identification over all candidates — the batch-equivalent
  /// answer Σ(x, G, η), with live supports/confidences on the current
  /// (possibly delta-patched) graph. Warm caches make repeats cheap.
  Result<EipResult> IdentifyAll(double eta, bool require_consequent = false,
                                ServeStats* request_stats = nullptr);

  /// Applies edge inserts: patches the CSR, refreshes stale shared
  /// sketches, and invalidates cached memberships within d(R) hops of the
  /// inserted edges' endpoints (per rule R).
  Result<DeltaStats> ApplyDelta(std::span<const EdgeInsert> inserts);

  const Graph& graph() const { return graph_; }
  /// Interns an edge-label name through the session's dictionary — for
  /// building `EdgeInsert` batches from textual input (ids are append-only,
  /// so existing patterns and cached state are unaffected).
  LabelId InternLabel(std::string_view name) {
    return graph_.mutable_labels()->Intern(name);
  }
  const std::vector<RuleRecord>& rules() const { return records_; }
  const Predicate& predicate() const { return q_; }
  /// All candidate centers (nodes satisfying x's label), sorted.
  const std::vector<NodeId>& candidates() const { return candidates_; }
  uint32_t max_rule_radius() const { return max_d_; }

  const ServeStats& lifetime_stats() const { return lifetime_stats_; }
  size_t cached_centers() const { return cache_.size(); }
  size_t sketches_precomputed() const { return sketch_store_.size(); }
  size_t plans_prepared() const { return plan_store_->patterns_planned(); }

 private:
  /// One worker's private matching state (matchers are not thread-safe).
  struct WorkerCtx {
    std::unique_ptr<CenterEvaluator> evaluator;
    std::unique_ptr<VF2Matcher> pq_matcher;
    std::unique_ptr<Matcher> probe_matcher;
  };

  /// Cached per-center state; rule memberships are bitsets over the loaded
  /// rule set (in_q is RAW antecedent membership — other-component
  /// satisfiability is applied at read time, so a flip never invalidates).
  struct CenterEntry {
    uint8_t qclass = 0;  // bit0 known, bit1 is_q, bit2 is_qbar
    std::vector<uint64_t> known, in_q, in_pr;
    std::list<NodeId>::iterator lru_it;
  };

  /// Resolved memberships for one request center.
  struct Row {
    uint8_t qclass = 0;
    std::vector<uint64_t> in_q, in_pr;
  };

  /// A unit of matching work for one center.
  struct WorkItem {
    NodeId center = kInvalidNode;
    bool full = false;               ///< evaluate all rules via the evaluator
    std::vector<uint32_t> rules;     ///< rules to probe when !full
    uint8_t qclass_in = 0;           ///< known q-class, or 0 to compute
    // Outputs (written by exactly one worker):
    uint8_t qclass_out = 0;
    std::vector<uint64_t> in_q, in_pr, probed;
  };

  RuleServer(Graph g, std::vector<RuleRecord> rules,
             const RuleServerOptions& options);

  Status Init();
  void BuildWorkers();
  void PrecomputeSketches();

  size_t rule_words() const { return (sigma_.size() + 63) / 64; }
  size_t max_cached_centers() const;

  /// Ensures memberships of `selected` rules for every center in `centers`
  /// (deduplicated internally), filling `rows` keyed by center. Updates the
  /// cache/LRU and accumulates stats.
  Status EnsureRows(std::span<const NodeId> centers,
                    const std::vector<uint32_t>& selected,
                    std::unordered_map<NodeId, Row>* rows, ServeStats* stats);

  void EvaluateItem(WorkerCtx& ctx, WorkItem& item);
  void TouchLru(CenterEntry& entry);
  void EvictToCapacity();

  RuleServerOptions options_;
  Graph graph_;
  std::vector<RuleRecord> records_;
  std::vector<Gpar> sigma_;  ///< records_[i].rule, stable storage for evaluators
  Predicate q_{};
  Pattern pq_;
  uint32_t max_d_ = 0;
  std::vector<char> other_ok_;  ///< live per-rule other-component check
  std::vector<char> all_ok_;    ///< constant 1s handed to evaluators
  std::vector<NodeId> candidates_;
  bool has_other_components_ = false;

  ThreadPool pool_;
  std::unique_ptr<SearchPlanStore> plan_store_;
  SketchStore sketch_store_;
  std::vector<WorkerCtx> workers_;

  std::unordered_map<NodeId, CenterEntry> cache_;
  std::list<NodeId> lru_;  ///< front = most recently used
  ServeStats lifetime_stats_;
};

}  // namespace gpar

#endif  // GPAR_SERVE_RULE_SERVER_H_
