#ifndef GPAR_SERVE_RULE_SERVER_H_
#define GPAR_SERVE_RULE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "graph/graph_view.h"
#include "graph/sketch.h"
#include "identify/center_evaluator.h"
#include "identify/eip.h"
#include "maintain/rule_maintainer.h"
#include "match/matcher.h"
#include "parallel/thread_pool.h"
#include "rule/rule_snapshot.h"
#include "serve/serve_session.h"

namespace gpar {

/// Options for `RuleServer`.
struct RuleServerOptions {
  uint32_t num_workers = 4;
  /// k for the guided matcher's k-hop sketches (see EipOptions::sketch_hops).
  uint32_t sketch_hops = 1;
  bool use_guided_search = true;
  bool share_multi_patterns = true;
  /// Capacity of the (rule, center) match cache, counted in (rule, center)
  /// memberships. Centers are the physical eviction unit: one cached center
  /// holds one membership slot per loaded rule.
  size_t cache_capacity = size_t{1} << 20;
  /// Lock shards for the match cache: concurrent queries contend per shard
  /// (centers hash across shards), not on one global cache mutex.
  uint32_t cache_shards = 8;
  /// Precompute a shared sketch store at load for nodes whose label occurs
  /// in a loaded rule pattern (the only nodes guided search can ever
  /// sketch), capped below. Off: sketches are built lazily per worker.
  /// (View-restricted shard servers never precompute: their matchers
  /// sketch the fragment-induced subgraph, not the parent.)
  bool precompute_sketches = true;
  size_t max_precomputed_sketches = size_t{1} << 17;
};

/// Deprecated (PR 5) request shape — `SessionRequest` with
/// `all_centers = false`. Kept as a thin shim through this PR.
struct ServeRequest {
  std::vector<NodeId> centers;
  std::vector<uint32_t> rules;
  bool require_consequent = false;
};

/// Deprecated (PR 5) reply shape for `Serve` — the point-lookup subset of
/// `SessionReply`.
struct ServeReply {
  std::vector<std::vector<uint32_t>> matched;
  std::vector<NodeId> entities;
  ServeStats stats;
};

/// The online half of GPAR mining (Section 5 framing): rules are mined
/// offline into snapshots; a long-lived `RuleServer` session loads one
/// (graph, rule set) snapshot pair, precomputes per-rule state once —
/// search plans in a shared `SearchPlanStore`, k-hop sketches in a shared
/// `SketchStore`, the per-label candidate index, global satisfiability of
/// antecedent components not containing x — and then answers `Query`
/// requests on a persistent `ThreadPool`, far cheaper than one batch
/// `IdentifyEntities` run per request.
///
/// Memberships are memoized in a lock-sharded LRU (rule, center) match
/// cache. Edge deltas (`ApplyDelta`) publish a new immutable state
/// snapshot (RCU style) and, by the paper's locality property (membership
/// of v depends only on G_d(v)), invalidate only the cached memberships
/// within d(R) hops of a touched endpoint — everything else stays warm.
/// An `all_centers` query answers exactly like a fresh batch
/// `IdentifyEntities` on the equivalent graph (the ServeEquivalence and
/// ShardedServeEquivalence tests).
///
/// Thread-safety: `Query` may run from any number of threads concurrently;
/// `ApplyDelta` never blocks in-flight queries (they finish on the state
/// snapshot they started with). Writers serialize among themselves.
///
/// A `RuleServer` can also run as one shard of a `ShardedRuleServer`
/// deployment (`CreateShard`): it then serves only its owned centers from
/// a zero-copy `GraphView` slice of the shared parent CSR and receives
/// serialized `GraphDelta` batches from the router (`ApplyShardDelta`)
/// instead of applying deltas itself.
class RuleServer : public ServeSession {
 public:
  /// Loads a snapshot pair produced by `WriteGraphSnapshot[File]` and
  /// `WriteRuleSetSnapshot[File]`.
  static Result<std::unique_ptr<RuleServer>> Load(
      const std::string& graph_snapshot_path,
      const std::string& rules_snapshot_path,
      const RuleServerOptions& options = {});

  /// Crash recovery: loads the snapshot pair, then attaches the journal
  /// at `journal_path` — which replays its valid frame prefix (torn tail
  /// truncated) and leaves the journal live for later appends. The result
  /// is byte-equivalent to a server that applied those deltas and never
  /// crashed.
  static Result<std::unique_ptr<RuleServer>> Recover(
      const std::string& graph_snapshot_path,
      const std::string& rules_snapshot_path,
      const std::string& journal_path, const RuleServerOptions& options = {},
      const DeltaJournalOptions& journal_options = {},
      JournalReplayStats* replay = nullptr);

  /// Builds a session from in-memory state (tests, single-process use).
  static Result<std::unique_ptr<RuleServer>> Create(
      Graph g, std::vector<RuleRecord> rules,
      const RuleServerOptions& options = {});

  /// Builds one shard of a sharded deployment: the server answers for
  /// `owned_centers` only, matching inside the `GraphView` slice of
  /// `graph` induced by `members` (which must cover N_d of every owned
  /// center — `PartitionGraph`'s fragment invariant). `members` and
  /// `owned_centers` must be sorted parent-global node ids.
  static Result<std::unique_ptr<RuleServer>> CreateShard(
      std::shared_ptr<const Graph> graph, std::vector<NodeId> members,
      std::vector<NodeId> owned_centers, std::vector<RuleRecord> rules,
      const RuleServerOptions& options = {});

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  // ---- ServeSession ----

  Result<SessionReply> Query(const SessionRequest& request) override;

  /// Applies a typed edge-mutation batch (deletes, then inserts): patches
  /// the CSR into a fresh state snapshot, refreshes stale shared sketches,
  /// and invalidates cached memberships within d(R) hops of the touched
  /// edges' endpoints (per rule R). Deleted edges make the walk
  /// non-monotone — memberships can be LOST — so affected (rule, center)
  /// entries are dropped and re-checked on their next query; the BFS runs
  /// on the pre-delete graph as well as the patched one, because a center
  /// whose only path to a deleted edge ran through that edge is out of
  /// reach afterwards but still stale. Rejected on shard servers — shards
  /// take `ApplyShardDelta` from their router.
  Result<DeltaStats> ApplyDelta(const GraphDelta& delta) override;

  Status AttachJournal(const std::string& path,
                       const DeltaJournalOptions& options = {},
                       JournalReplayStats* replay = nullptr) override;
  Status Checkpoint(const std::string& graph_snapshot_path) override;

  std::shared_ptr<const Graph> graph_snapshot() const override;
  /// The currently served rule set. The reference is valid until the next
  /// rule refresh (maintenance pass that changed the top-k, or
  /// `UpdateRules`); callers that race refreshes should copy.
  const std::vector<RuleRecord>& rules() const override;
  const std::vector<NodeId>& candidates() const override {
    return candidates_;
  }
  LabelId InternLabel(std::string_view name) override {
    return interner_->Intern(name);
  }
  ServeStats lifetime_stats() const override;

  // ---- Shard seam (used by ShardedRuleServer) ----

  /// Ingests one serialized `GraphDelta` batch from the router together
  /// with the already-patched parent graph (shards share the parent CSR,
  /// so the router patches once and ships the cheap delta bytes, not a
  /// graph snapshot). Extends the fragment view where inserted edges pull
  /// new nodes into an owned center's N_d — deletions may leave the view a
  /// superset of the owned centers' neighborhoods, which stays correct
  /// because view-restricted matching of a center only reads G_d(center) ⊆
  /// view — then invalidates like `ApplyDelta`. Rejected on non-shard
  /// servers.
  Result<DeltaStats> ApplyShardDelta(std::shared_ptr<const Graph> new_graph,
                                     std::string_view delta_bytes);

  bool is_shard() const noexcept { return is_shard_; }
  /// Shard mode: current fragment view size in nodes (0 otherwise).
  size_t view_members() const;
  /// Shard mode: sequence of the last batch this shard applied — the
  /// router's resync logic compares it against its own delta sequence.
  uint64_t shard_sequence() const GPAR_EXCLUDES(writer_mu_);

  bool journal_attached() const GPAR_EXCLUDES(writer_mu_);
  /// Last sequence the attached journal holds (0 when none is attached).
  uint64_t journal_sequence() const GPAR_EXCLUDES(writer_mu_);

  // ---- Incremental rule maintenance ----

  /// Switches the session into maintain-on-ApplyDelta mode: seeds a
  /// `RuleMaintainer` on the current graph (one full discovery pass under
  /// `options.mine`) and serves its diversified top-k from here on — every
  /// subsequent delta runs a maintenance pass under the writer lock and,
  /// when the top-k changed, publishes the refreshed rule set with the new
  /// graph generation (queries see graph+rules move together). The
  /// maintained set replaces the loaded snapshot records, which may differ
  /// from them when the snapshot was mined under other parameters.
  /// Rejected on shard servers (the router maintains on the parent graph
  /// and pushes refreshed sets down via `UpdateRules`) and when
  /// maintenance is already enabled.
  Status EnableMaintenance(const MaintainOptions& options)
      GPAR_EXCLUDES(writer_mu_);
  bool maintenance_enabled() const GPAR_EXCLUDES(writer_mu_);
  /// Accumulated maintenance-pass stats (zero when maintenance is off).
  MaintainStats maintain_stats() const GPAR_EXCLUDES(writer_mu_);

  /// Replaces the served rule set (router -> shard push after a router-side
  /// maintenance refresh; also usable standalone as a hot rule reload). The
  /// new set must keep the session's predicate q(x,y); on a shard its
  /// radius must stay within the partition radius the fragment view was
  /// built for (the view only covers N_d of the owned centers at that
  /// radius). An empty set is allowed — a maintained top-k can die under
  /// deletes and the session must keep serving (zero rules match nothing).
  /// Drops the whole match cache: rule indices change meaning.
  Status UpdateRules(std::vector<RuleRecord> rules) GPAR_EXCLUDES(writer_mu_);

  // ---- Deprecated PR 5 surface (thin shims over Query/ApplyDelta) ----

  /// Deprecated: use `Query` with `all_centers = false`.
  Result<ServeReply> Serve(const ServeRequest& request);
  /// Deprecated: use `Query` with `all_centers = true`.
  Result<EipResult> IdentifyAll(double eta, bool require_consequent = false,
                                ServeStats* request_stats = nullptr);
  /// Deprecated: use the typed `GraphDelta` overload.
  Result<DeltaStats> ApplyDelta(std::span<const EdgeInsert> inserts);
  /// Deprecated: use `graph_snapshot()`. The reference is only guaranteed
  /// valid until the next `ApplyDelta`.
  const Graph& graph() const { return *graph_snapshot(); }

  // ---- Introspection ----

  const Predicate& predicate() const noexcept { return q_; }
  uint32_t max_rule_radius() const noexcept { return max_d_; }
  size_t cached_centers() const;
  size_t sketches_precomputed() const;
  size_t plans_prepared() const;

 private:
  /// One worker's private matching state (matchers are not thread-safe).
  struct WorkerCtx {
    std::unique_ptr<CenterEvaluator> evaluator;
    std::unique_ptr<VF2Matcher> pq_matcher;
    std::unique_ptr<Matcher> probe_matcher;
  };

  /// One immutable generation of the loaded rule set and everything derived
  /// from it per rule. Published inside `State` (RCU, like the graph) so a
  /// maintenance refresh can swap the whole set atomically: in-flight
  /// queries keep matching against the records/sigma they selected rules
  /// from, never a half-replaced set.
  struct RuleSet {
    std::vector<RuleRecord> records;
    std::vector<Gpar> sigma;  ///< records[i].rule, stable storage for evaluators
    std::vector<char> all_ok;  ///< constant 1s handed to evaluators
    bool has_other_components = false;
  };

  /// One immutable graph generation. Queries pin the current `State` with
  /// a shared_ptr for their whole run; `ApplyDelta` builds the successor
  /// and swaps the head pointer, so readers never see a half-updated
  /// graph/plan/sketch trio and the old generation dies with its last
  /// reader. Matching contexts are pooled per state (lazily built, reused
  /// across requests, discarded with the generation).
  struct State {
    explicit State(uint32_t sketch_hops) : sketch_store(sketch_hops) {}

    uint64_t epoch = 0;
    std::shared_ptr<const Graph> graph;
    /// The rule set this generation serves. Usually shared with the
    /// previous generation; a maintenance refresh (or `UpdateRules`)
    /// publishes a new one, which also drops the whole match cache — rule
    /// indices change meaning across rule sets.
    std::shared_ptr<const RuleSet> rules;
    /// Shard mode: sorted fragment membership + the view matchers run in.
    std::vector<NodeId> members;
    std::unique_ptr<GraphView> view;
    std::vector<char> other_ok;  ///< per-rule other-component check
    std::unique_ptr<SearchPlanStore> plan_store;
    SketchStore sketch_store;

    mutable Mutex ctx_mu;
    mutable std::vector<std::unique_ptr<WorkerCtx>> free_ctxs
        GPAR_GUARDED_BY(ctx_mu);
  };

  /// Cached per-center state; rule memberships are bitsets over the loaded
  /// rule set (in_q is RAW antecedent membership — other-component
  /// satisfiability is applied at read time, so a flip never invalidates).
  struct CenterEntry {
    uint8_t qclass = 0;  // bit0 known, bit1 is_q, bit2 is_qbar
    std::vector<uint64_t> known, in_q, in_pr;
    std::list<NodeId>::iterator lru_it;
  };

  /// One lock shard of the match cache. Entries are epoch-agnostic (an
  /// untouched membership is valid across deltas, by locality); writers
  /// only insert results computed on the CURRENT epoch — see EnsureRows.
  struct CacheShard {
    mutable Mutex mu;
    std::unordered_map<NodeId, CenterEntry> map GPAR_GUARDED_BY(mu);
    std::list<NodeId> lru GPAR_GUARDED_BY(mu);  ///< front = most recently used
  };

  /// Resolved memberships for one request center.
  struct Row {
    uint8_t qclass = 0;
    std::vector<uint64_t> in_q, in_pr;
  };

  /// A unit of matching work for one center.
  struct WorkItem {
    NodeId center = kInvalidNode;
    bool full = false;               ///< evaluate all rules via the evaluator
    std::vector<uint32_t> rules;     ///< rules to probe when !full
    uint8_t qclass_in = 0;           ///< known q-class, or 0 to compute
    // Outputs (written by exactly one worker):
    uint8_t qclass_out = 0;
    std::vector<uint64_t> in_q, in_pr, probed;
  };

  RuleServer(std::vector<RuleRecord> rules, const RuleServerOptions& options);

  Status Init(std::shared_ptr<const Graph> g, std::vector<NodeId> members);
  /// The body of `ApplyDelta`: patches, optionally journals the applied
  /// mutations (appends-before-publish), then swaps + invalidates.
  /// `journal` is false on the replay path — those frames are already on
  /// disk.
  Result<DeltaStats> ApplyDeltaLocked(const GraphDelta& delta, bool journal)
      GPAR_REQUIRES(writer_mu_);
  /// Derives the per-rule state (sigma storage, other-component flag) for a
  /// record set. Validation (non-empty sets keep q and respect the radius
  /// bound) happens in the callers — see UpdateRules.
  static std::shared_ptr<const RuleSet> BuildRuleSet(
      std::vector<RuleRecord> records);
  void PreparePlans(SearchPlanStore* store, const RuleSet& rules) const;
  void PrecomputeSketches(State* st) const;
  std::unique_ptr<WorkerCtx> BuildCtx(const State& st) const;
  std::unique_ptr<WorkerCtx> AcquireCtx(const State& st) const;
  void ReleaseCtx(const State& st, std::unique_ptr<WorkerCtx> ctx) const;

  std::shared_ptr<const State> AcquireState() const GPAR_EXCLUDES(state_mu_);
  /// Builds + publishes the successor state for `new_graph`, then walks
  /// the cache invalidating what the applied inserts and deletes can have
  /// changed. The invalidation BFS runs on the new graph and — when there
  /// are deletes — also on `old`'s graph, unioned at minimum distance.
  /// `new_rules` non-null publishes a refreshed rule set with the new
  /// generation and clears the whole match cache instead of the selective
  /// invalidation walk; null keeps `old.rules` shared.
  void SwapStateAndInvalidate(const State& old,
                              std::shared_ptr<const Graph> new_graph,
                              std::span<const EdgeInsert> applied,
                              std::span<const EdgeDelete> applied_deletes,
                              DeltaStats* ds,
                              std::shared_ptr<const RuleSet> new_rules =
                                  nullptr) GPAR_REQUIRES(writer_mu_);

  static size_t rule_words(const RuleSet& rules) noexcept {
    return (rules.sigma.size() + 63) / 64;
  }
  size_t max_cached_centers(const RuleSet& rules) const;
  CacheShard& ShardFor(NodeId center) const;

  /// Ensures memberships of `selected` rules for every center in `centers`
  /// (deduplicated internally), filling `rows` keyed by center. Updates the
  /// cache/LRU and accumulates stats.
  Status EnsureRows(const State& st, std::span<const NodeId> centers,
                    const std::vector<uint32_t>& selected,
                    std::unordered_map<NodeId, Row>* rows, ServeStats* stats);

  void EvaluateItem(const State& st, WorkerCtx& ctx, WorkItem& item) const;

  RuleServerOptions options_;
  bool is_shard_ = false;
  std::shared_ptr<Interner> interner_;
  /// Records handed to Create/Load, consumed by Init into the first
  /// published RuleSet (empty afterwards — the live set lives in State).
  std::vector<RuleRecord> initial_records_;
  Predicate q_{};
  Pattern pq_;
  /// Invalidation/view radius bound. Fixed on shards (the fragment view was
  /// cut at this radius); may grow on non-shard servers when a refreshed
  /// rule set carries deeper rules.
  uint32_t max_d_ = 0;
  std::vector<NodeId> candidates_;

  ThreadPool pool_;

  mutable Mutex state_mu_;  ///< guards the `state_` pointer only
  std::shared_ptr<const State> state_ GPAR_GUARDED_BY(state_mu_);
  /// Epoch of the newest published state. A query writes its results back
  /// into the cache only if this still equals its state's epoch (checked
  /// under the cache-shard lock), so a reader that outlived a delta can
  /// never resurrect stale memberships after the invalidation walk.
  std::atomic<uint64_t> epoch_{0};
  mutable Mutex writer_mu_;  ///< serializes ApplyDelta / ApplyShardDelta
  /// Attach-journal mode (non-shard servers): applied mutations are
  /// appended here before they are published.
  std::unique_ptr<DeltaJournal> journal_ GPAR_GUARDED_BY(writer_mu_);
  /// Shard mode: sequence of the last applied batch. Retried ships of an
  /// already-applied frame are recognized here and become no-ops, so a
  /// router retry can never double-apply a delta.
  uint64_t shard_sequence_ GPAR_GUARDED_BY(writer_mu_) = 0;
  /// Maintain-on-ApplyDelta mode (non-shard): passes run under the writer
  /// lock, between patching the graph and publishing the new generation.
  std::unique_ptr<RuleMaintainer> maintainer_ GPAR_GUARDED_BY(writer_mu_);

  uint32_t num_cache_shards_ = 1;
  std::unique_ptr<CacheShard[]> cache_shards_;

  mutable Mutex stats_mu_;
  ServeStats lifetime_stats_ GPAR_GUARDED_BY(stats_mu_);
};

}  // namespace gpar

#endif  // GPAR_SERVE_RULE_SERVER_H_
