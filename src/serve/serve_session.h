#ifndef GPAR_SERVE_SERVE_SESSION_H_
#define GPAR_SERVE_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "identify/eip.h"
#include "rule/rule_snapshot.h"
#include "serve/delta_journal.h"

namespace gpar {

/// The one request shape the serving tier answers — it subsumes the PR 5
/// `Serve` (point lookups) and `IdentifyAll` (full Σ(x, G, η)) entry
/// points so routers, tools, benches, and the equivalence batteries are
/// written once against `ServeSession`.
struct SessionRequest {
  /// True: classify every candidate center (all nodes with x's label) and
  /// fill the support/confidence fields of the reply, honoring `eta` — the
  /// batch-equivalent Σ(x, G, η) answer. False: classify just `centers`.
  bool all_centers = false;
  /// Point lookups (ignored when `all_centers`). Centers need not satisfy
  /// x's label — such centers simply match nothing.
  std::vector<NodeId> centers;
  /// Rule subset to probe; empty selects every loaded rule.
  std::vector<uint32_t> rules;
  /// Confidence threshold for `all_centers` entity qualification
  /// (BayesFactorConf >= eta). Ignored for point lookups.
  double eta = 1.0;
  /// False (default): a rule matches a center when its antecedent Q does
  /// (the formal Σ(x, G, η) semantics). True: require the full P_R.
  bool require_consequent = false;
  /// Per-request time budget in seconds; 0 = unbounded. The sharded
  /// router checks it on entry and lets it cap the retry/backoff budget
  /// for failing shards (an in-flight shard call is never cancelled — the
  /// budget bounds how long the router keeps TRYING, not a hard wall).
  double deadline_seconds = 0;
};

/// Per-request (and accumulated lifetime) serving statistics.
struct ServeStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;    ///< (rule, center) memberships answered from cache
  uint64_t cache_probes = 0;  ///< memberships computed by pattern matching
  uint64_t centers_evaluated = 0;  ///< centers that needed any matching work
  uint64_t shards_failed = 0;  ///< shards that contributed nothing (degraded)
  uint64_t retries = 0;        ///< transient shard errors retried
  double latency_seconds = 0;
};

/// Reply to a `SessionRequest`.
struct SessionReply {
  /// Per requested center (parallel to `request.centers`, or to
  /// `candidates()` when `all_centers`): the selected rule indices whose
  /// antecedent — or full P_R under `require_consequent` — fires there,
  /// sorted ascending.
  std::vector<std::vector<uint32_t>> matched;
  /// Point lookups: distinct centers with at least one matched rule.
  /// `all_centers`: Σ(x, G, η) — candidates matching some rule whose
  /// confidence meets `eta`. Sorted ascending either way.
  std::vector<NodeId> entities;
  /// `all_centers` only: per loaded rule, live supports and confidence on
  /// the current graph (entries for unselected rules stay zero).
  std::vector<EipRuleEval> rule_evals;
  uint64_t supp_q = 0;     ///< candidates matching the consequent q(x, y)
  uint64_t supp_qbar = 0;  ///< LCWA negatives (no q-edge at all)
  /// Degraded mode (sharded router only): one or more shards contributed
  /// nothing, so matched rows of their owned centers are empty and the
  /// supports/confidences are sums over the SURVIVING shards — exact for
  /// the surviving shards' centers, a lower bound globally.
  bool degraded = false;
  /// The shards that contributed nothing (sorted), when `degraded`.
  std::vector<uint32_t> failed_shards;
  ServeStats stats;
};

/// Cost accounting for one `ApplyDelta` call.
struct DeltaStats {
  size_t edges_inserted = 0;
  size_t duplicates_ignored = 0;
  size_t edges_deleted = 0;
  /// Deletes naming an edge the graph did not have (tolerated, per
  /// `EdgeDelete`), plus repeated deletes of the same edge.
  size_t deletes_missing = 0;
  uint64_t memberships_invalidated = 0;  ///< known (rule, center) bits cleared
  uint64_t qclass_invalidated = 0;
  uint64_t sketches_refreshed = 0;
  uint64_t members_extended = 0;  ///< shard mode: nodes pulled into the view
  uint64_t wire_bytes = 0;        ///< serialized delta bytes shipped to shards
  uint64_t sequence = 0;       ///< journal/router sequence stamped on the batch
  uint64_t journal_bytes = 0;  ///< frame bytes appended to an attached journal
  /// Router only: shards that did not acknowledge this batch (they answer
  /// no queries — degraded mode — until a journal resync catches them up).
  size_t shards_lagging = 0;
  /// Maintain-on-ApplyDelta mode: 1 when this batch's maintenance pass
  /// changed the served top-k and a refreshed rule set was published with
  /// the new graph generation.
  uint64_t rules_refreshed = 0;
  double seconds = 0;
};

/// A long-lived serving session over one (graph, rule set) snapshot pair:
/// `RuleServer` answers from a single process-local graph; sharded
/// deployments put a `ShardedRuleServer` router in front of k of them.
/// Both ends of that split speak this interface.
///
/// Thread-safety contract: `Query` may be called from any number of threads
/// concurrently, including while one `ApplyDelta` is in flight (deltas
/// publish a new immutable state snapshot; in-flight queries finish on the
/// old one). Concurrent `ApplyDelta` calls serialize internally.
class ServeSession {
 public:
  virtual ~ServeSession() = default;

  /// Answers one request against the current graph snapshot.
  virtual Result<SessionReply> Query(const SessionRequest& request) = 0;

  /// Applies a typed edge-mutation batch (inserts and/or deletes): patches
  /// the graph and invalidates exactly the cached state within reach of the
  /// touched edges. Deletions are non-monotone — a membership can be LOST —
  /// so invalidated centers are re-checked on their next query rather than
  /// monotonely extended.
  virtual Result<DeltaStats> ApplyDelta(const GraphDelta& delta) = 0;

  /// Attach-journal mode: replays any frames already in the journal at
  /// `path` (so attaching IS recovering — a fresh session + a populated
  /// journal converge to the journaled state), then appends the applied
  /// mutations of every later `ApplyDelta` BEFORE publishing them.
  /// `replay`, when non-null, reports what the attach scan found.
  virtual Status AttachJournal(const std::string& path,
                               const DeltaJournalOptions& options = {},
                               JournalReplayStats* replay = nullptr) = 0;

  /// Checkpoint: writes the current graph to `graph_snapshot_path` and
  /// compacts the attached journal behind it (keeping the sequence
  /// floor). Requires an attached journal; serialized against deltas.
  virtual Status Checkpoint(const std::string& graph_snapshot_path) = 0;

  /// The current graph snapshot. Holding the returned pointer keeps that
  /// version alive across subsequent deltas.
  virtual std::shared_ptr<const Graph> graph_snapshot() const = 0;

  virtual const std::vector<RuleRecord>& rules() const = 0;
  /// All candidate centers (nodes satisfying x's label), sorted.
  virtual const std::vector<NodeId>& candidates() const = 0;
  /// Interns an edge-label name through the session's dictionary — for
  /// building `GraphDelta` batches from textual input (ids are append-only,
  /// so existing patterns and cached state are unaffected). Call from the
  /// delta-applying thread only; it mutates the shared dictionary.
  virtual LabelId InternLabel(std::string_view name) = 0;
  /// Accumulated statistics over the session's lifetime (by value — the
  /// internals keep mutating under concurrent queries).
  virtual ServeStats lifetime_stats() const = 0;
};

/// Expands/validates a request's rule subset against `num_rules` loaded
/// rules: empty selects all; otherwise sorted, deduplicated, and
/// range-checked. Shared by both `ServeSession` implementations.
Result<std::vector<uint32_t>> NormalizeRuleSelection(
    const std::vector<uint32_t>& rules, size_t num_rules);

}  // namespace gpar

#endif  // GPAR_SERVE_SERVE_SESSION_H_
