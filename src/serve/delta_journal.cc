#include "serve/delta_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/failpoint.h"

namespace gpar {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Reads the whole file into `out`; a missing file yields an empty buffer.
Status SlurpFile(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    out->clear();
    return Status::OK();
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  *out = std::move(buf).str();
  return Status::OK();
}

}  // namespace

Status DeltaJournal::ScanBuffer(std::string_view data,
                                std::vector<GraphDelta>* frames,
                                JournalReplayStats* stats) {
  *stats = JournalReplayStats{};
  if (frames != nullptr) frames->clear();
  size_t pos = 0;
  while (pos < data.size()) {
    const std::string_view rest = data.substr(pos);
    bool torn = rest.size() < GraphDelta::kFrameHeaderBytes;
    size_t frame_size = 0;
    if (!torn) {
      auto fs = GraphDelta::FrameSize(rest);
      torn = !fs.ok() || *fs > rest.size();
      if (fs.ok()) frame_size = *fs;
    }
    GraphDelta delta;
    if (!torn) {
      auto d = GraphDelta::Deserialize(rest.substr(0, frame_size));
      if (d.ok()) {
        delta = std::move(d).value();
      } else {
        torn = true;
      }
    }
    if (torn) {
      // A truncated or checksum-broken frame is the expected signature of
      // a crash mid-append: keep the intact prefix, cut the tail.
      stats->tail_truncated = true;
      stats->dropped_bytes = data.size() - pos;
      return Status::OK();
    }
    // A frame that decodes cleanly but runs the sequence backwards is NOT
    // a torn tail — it is foreign or reordered data, and truncating would
    // silently discard valid history. Fail loudly instead.
    if (delta.sequence <= stats->last_sequence) {
      return Status::Corruption(
          "delta journal: non-monotone sequence " +
          std::to_string(delta.sequence) + " after " +
          std::to_string(stats->last_sequence) + " at byte offset " +
          std::to_string(pos));
    }
    stats->last_sequence = delta.sequence;
    ++stats->frames;
    pos += frame_size;
    stats->valid_bytes = pos;
    if (frames != nullptr) frames->push_back(std::move(delta));
  }
  return Status::OK();
}

Result<std::vector<GraphDelta>> DeltaJournal::ReadAll(
    const std::string& path, JournalReplayStats* stats) {
  GPAR_FAILPOINT("journal.replay");
  std::string data;
  GPAR_RETURN_NOT_OK(SlurpFile(path, &data));
  std::vector<GraphDelta> frames;
  JournalReplayStats local;
  GPAR_RETURN_NOT_OK(ScanBuffer(data, &frames, &local));
  if (stats != nullptr) *stats = local;
  return frames;
}

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(
    const std::string& path, const DeltaJournalOptions& options,
    JournalReplayStats* scan) {
  std::string data;
  GPAR_RETURN_NOT_OK(SlurpFile(path, &data));
  JournalReplayStats local;
  GPAR_RETURN_NOT_OK(ScanBuffer(data, nullptr, &local));

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("cannot open journal", path);
  std::unique_ptr<DeltaJournal> journal(new DeltaJournal(path, options, fd));
  journal->last_sequence_ = local.last_sequence;
  journal->size_bytes_ = local.valid_bytes;
  journal->frames_ = local.frames;
  if (local.tail_truncated) {
    // Cut the torn tail in place so the file IS the valid prefix — the
    // journal object and the bytes on disk never disagree about length.
    if (::ftruncate(fd, static_cast<off_t>(local.valid_bytes)) != 0) {
      return Errno("cannot truncate torn journal tail of", path);
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Errno("cannot seek to journal end of", path);
  }
  if (scan != nullptr) *scan = local;
  return journal;
}

DeltaJournal::DeltaJournal(std::string path,
                           const DeltaJournalOptions& options, int fd)
    : path_(std::move(path)), options_(options), fd_(fd) {}

DeltaJournal::~DeltaJournal() {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaJournal::WriteFully(const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot append to journal", path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status DeltaJournal::Append(const GraphDelta& delta) {
  GPAR_FAILPOINT("journal.append");
  MutexLock lock(mu_);
  if (broken_) {
    return Status::IoError("journal " + path_ +
                           " is in a failed state after a torn write; "
                           "reopen it to recover the valid prefix");
  }
  GraphDelta frame = delta;
  if (frame.sequence == 0) {
    frame.sequence = last_sequence_ + 1;
  } else if (frame.sequence <= last_sequence_) {
    return Status::InvalidArgument(
        "journal sequence must be monotone: got " +
        std::to_string(frame.sequence) + " after " +
        std::to_string(last_sequence_));
  }
  const std::string bytes = frame.Serialize();
  const size_t budget = GPAR_FAILPOINT_TORN("journal.append_torn",
                                            bytes.size());
  GPAR_RETURN_NOT_OK(WriteFully(bytes.data(), budget));
  if (budget < bytes.size()) {
    // Injected torn write: the partial frame is on disk exactly as a
    // crash would leave it. Fail-stop — recovery reopens and truncates.
    broken_ = true;
    return Status::IoError("journal " + path_ + ": torn write injected (" +
                           std::to_string(budget) + " of " +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (options_.fsync_on_append && ::fsync(fd_) != 0) {
    return Errno("cannot fsync journal", path_);
  }
  last_sequence_ = frame.sequence;
  size_bytes_ += bytes.size();
  ++frames_;
  return Status::OK();
}

Status DeltaJournal::Compact() {
  MutexLock lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Errno("cannot compact journal", path_);
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Errno("cannot rewind journal", path_);
  }
  broken_ = false;
  size_bytes_ = 0;
  frames_ = 0;
  if (last_sequence_ > 0) {
    // Sequence-floor marker: an empty frame carrying the last sequence,
    // so a reopened journal keeps counting where the pre-checkpoint one
    // stopped (replaying it is a no-op delta).
    GraphDelta marker;
    marker.sequence = last_sequence_;
    const std::string bytes = marker.Serialize();
    GPAR_RETURN_NOT_OK(WriteFully(bytes.data(), bytes.size()));
    size_bytes_ = bytes.size();
    frames_ = 1;
  }
  if (::fsync(fd_) != 0) {
    return Errno("cannot fsync compacted journal", path_);
  }
  return Status::OK();
}

uint64_t DeltaJournal::last_sequence() const {
  MutexLock lock(mu_);
  return last_sequence_;
}

uint64_t DeltaJournal::size_bytes() const {
  MutexLock lock(mu_);
  return size_bytes_;
}

uint64_t DeltaJournal::frames_appended() const {
  MutexLock lock(mu_);
  return frames_;
}

Result<DeltaJournalCursor> DeltaJournalCursor::Open(const std::string& path,
                                                    JournalReplayStats* scan) {
  DeltaJournalCursor cursor;
  GPAR_RETURN_NOT_OK(SlurpFile(path, &cursor.data_));
  JournalReplayStats local;
  GPAR_RETURN_NOT_OK(DeltaJournal::ScanBuffer(cursor.data_, nullptr, &local));
  // Drop the torn tail from the snapshot: iteration is then a pure forward
  // walk over pre-vetted frames.
  cursor.data_.resize(static_cast<size_t>(local.valid_bytes));
  cursor.frames_ = local.frames;
  cursor.last_sequence_ = local.last_sequence;
  if (scan != nullptr) *scan = local;
  return cursor;
}

bool DeltaJournalCursor::Next(GraphDelta* delta) {
  if (consumed_ >= frames_) return false;
  const std::string_view rest = std::string_view(data_).substr(pos_);
  // The open scan validated every frame in the prefix, so both the size and
  // the decode are infallible here.
  const size_t frame_size = GraphDelta::FrameSize(rest).value();
  *delta =
      std::move(GraphDelta::Deserialize(rest.substr(0, frame_size))).value();
  pos_ += frame_size;
  ++consumed_;
  return true;
}

void DeltaJournalCursor::SeekPastSequence(uint64_t floor) {
  GraphDelta frame;
  while (consumed_ < frames_) {
    const size_t save_pos = pos_;
    const size_t save_consumed = consumed_;
    if (!Next(&frame)) return;
    if (frame.sequence > floor) {
      pos_ = save_pos;
      consumed_ = save_consumed;
      return;
    }
  }
}

Status ReplayRange(const std::string& path, uint64_t after_sequence,
                   const std::function<Status(const GraphDelta&)>& fn,
                   JournalReplayStats* scan) {
  GPAR_ASSIGN_OR_RETURN(DeltaJournalCursor cursor,
                        DeltaJournalCursor::Open(path, scan));
  cursor.SeekPastSequence(after_sequence);
  GraphDelta frame;
  while (cursor.Next(&frame)) {
    GPAR_RETURN_NOT_OK(fn(frame));
  }
  return Status::OK();
}

}  // namespace gpar
