#include "serve/rule_server.h"

#include <algorithm>
#include <bit>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "common/timer.h"
#include "graph/graph_snapshot.h"
#include "match/guided.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

constexpr uint8_t kQKnown = 1;
constexpr uint8_t kQIsQ = 2;
constexpr uint8_t kQIsQbar = 4;

bool GetBit(const std::vector<uint64_t>& words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}
void SetBit(std::vector<uint64_t>* words, size_t i) {
  (*words)[i >> 6] |= uint64_t{1} << (i & 63);
}
void ClearBit(std::vector<uint64_t>* words, size_t i) {
  (*words)[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

void Accumulate(ServeStats* into, const ServeStats& s) {
  into->requests += s.requests;
  into->cache_hits += s.cache_hits;
  into->cache_probes += s.cache_probes;
  into->centers_evaluated += s.centers_evaluated;
  into->latency_seconds += s.latency_seconds;
}

}  // namespace

RuleServer::RuleServer(std::vector<RuleRecord> rules,
                       const RuleServerOptions& options)
    : options_(options),
      initial_records_(std::move(rules)),
      pool_(std::max(1u, options.num_workers)) {
  options_.num_workers = pool_.num_threads();
}

Result<std::unique_ptr<RuleServer>> RuleServer::Load(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path, const RuleServerOptions& options) {
  GPAR_FAILPOINT("snapshot.load");
  auto g = ReadGraphSnapshotFile(graph_snapshot_path);
  if (!g.ok()) return g.status();
  auto rules =
      ReadRuleSetSnapshotFile(rules_snapshot_path, g->mutable_labels());
  if (!rules.ok()) return rules.status();
  return Create(std::move(g).value(), std::move(rules).value(), options);
}

Result<std::unique_ptr<RuleServer>> RuleServer::Recover(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path, const std::string& journal_path,
    const RuleServerOptions& options,
    const DeltaJournalOptions& journal_options, JournalReplayStats* replay) {
  GPAR_ASSIGN_OR_RETURN(
      std::unique_ptr<RuleServer> server,
      Load(graph_snapshot_path, rules_snapshot_path, options));
  GPAR_RETURN_NOT_OK(
      server->AttachJournal(journal_path, journal_options, replay));
  return server;
}

Result<std::unique_ptr<RuleServer>> RuleServer::Create(
    Graph g, std::vector<RuleRecord> rules, const RuleServerOptions& options) {
  auto graph = std::make_shared<const Graph>(std::move(g));
  std::unique_ptr<RuleServer> server(
      new RuleServer(std::move(rules), options));
  server->interner_ = graph->labels_ptr();
  GPAR_RETURN_NOT_OK(server->Init(std::move(graph), {}));
  return server;
}

Result<std::unique_ptr<RuleServer>> RuleServer::CreateShard(
    std::shared_ptr<const Graph> graph, std::vector<NodeId> members,
    std::vector<NodeId> owned_centers, std::vector<RuleRecord> rules,
    const RuleServerOptions& options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("shard graph must not be null");
  }
  std::unique_ptr<RuleServer> server(
      new RuleServer(std::move(rules), options));
  server->is_shard_ = true;
  // Shard matchers run view-restricted: the parent-graph sketch store would
  // never be consulted, so skip the precompute entirely.
  server->options_.precompute_sketches = false;
  server->interner_ = graph->labels_ptr();
  std::sort(owned_centers.begin(), owned_centers.end());
  owned_centers.erase(
      std::unique(owned_centers.begin(), owned_centers.end()),
      owned_centers.end());
  server->candidates_ = std::move(owned_centers);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  GPAR_RETURN_NOT_OK(server->Init(std::move(graph), std::move(members)));
  return server;
}

Status RuleServer::Init(std::shared_ptr<const Graph> g,
                        std::vector<NodeId> members) {
  std::shared_ptr<const RuleSet> rules =
      BuildRuleSet(std::move(initial_records_));
  auto info = ValidateSigma(rules->sigma);
  if (!info.ok()) return info.status();
  q_ = info->q;
  max_d_ = std::max<uint32_t>(info->d, 1);
  pq_ = q_.ToPattern();
  if (!is_shard_) {
    auto span = g->nodes_with_label(q_.x_label);
    candidates_.assign(span.begin(), span.end());
  } else {
    for (NodeId c : candidates_) {
      if (c >= g->num_nodes()) {
        return Status::InvalidArgument("owned center out of range");
      }
    }
  }

  auto st = std::make_shared<State>(options_.sketch_hops);
  st->graph = std::move(g);
  st->rules = std::move(rules);
  if (is_shard_) {
    st->members = std::move(members);
    st->view = std::make_unique<GraphView>(*st->graph, st->members);
  }
  // Other-component satisfiability is a WHOLE-graph property (components
  // not containing x match anywhere), so shards, too, compute it on the
  // parent graph — fragment-local checks would diverge from the
  // single-server answer.
  st->other_ok = OtherComponentsOk(*st->graph, st->rules->sigma);
  st->plan_store = std::make_unique<SearchPlanStore>(*st->graph);
  PreparePlans(st->plan_store.get(), *st->rules);
  if (!is_shard_ && options_.precompute_sketches &&
      options_.use_guided_search) {
    PrecomputeSketches(st.get());
  }

  num_cache_shards_ = std::max<uint32_t>(options_.cache_shards, 1);
  cache_shards_ = std::make_unique<CacheShard[]>(num_cache_shards_);
  // Init runs single-threaded, but `state_` is guarded and the lock is
  // uncontended — take it rather than poke an analysis hole.
  MutexLock lock(state_mu_);
  state_ = std::move(st);
  return Status::OK();
}

std::shared_ptr<const RuleServer::RuleSet> RuleServer::BuildRuleSet(
    std::vector<RuleRecord> records) {
  auto rs = std::make_shared<RuleSet>();
  rs->records = std::move(records);
  rs->sigma.reserve(rs->records.size());
  for (const RuleRecord& r : rs->records) rs->sigma.push_back(r.rule);
  rs->all_ok.assign(rs->sigma.size(), 1);
  for (const Gpar& r : rs->sigma) {
    if (!r.other_components().empty()) rs->has_other_components = true;
  }
  return rs;
}

void RuleServer::PreparePlans(SearchPlanStore* store,
                              const RuleSet& rules) const {
  // Anchored at x, the only anchor serving ever uses; planned once per
  // state and shared by every matching context of that generation.
  auto prepare_at_x = [store](const Pattern& p) {
    PNodeId x = p.x();
    store->Prepare(p, std::span<const PNodeId>(&x, 1));
  };
  prepare_at_x(pq_);
  for (const Gpar& r : rules.sigma) {
    prepare_at_x(r.pr());
    prepare_at_x(r.x_component());
    for (const Pattern& comp : r.other_components()) {
      store->Prepare(comp, {});
    }
  }
}

void RuleServer::PrecomputeSketches(State* st) const {
  std::set<LabelId> labels;
  auto collect = [&labels](const Pattern& p) {
    for (PNodeId u = 0; u < p.num_nodes(); ++u) labels.insert(p.node(u).label);
  };
  for (const Gpar& r : st->rules->sigma) {
    collect(r.pr());
    for (const Pattern& comp : r.other_components()) collect(comp);
  }
  const Graph& g = *st->graph;
  for (LabelId l : labels) {
    if (l >= g.labels().size()) continue;  // wildcard / unset labels
    for (NodeId v : g.nodes_with_label(l)) {
      if (st->sketch_store.size() >= options_.max_precomputed_sketches) return;
      st->sketch_store.Add(g, v);
    }
  }
}

std::unique_ptr<RuleServer::WorkerCtx> RuleServer::BuildCtx(
    const State& st) const {
  const SketchStore* sketches =
      st.sketch_store.size() > 0 ? &st.sketch_store : nullptr;
  const GraphView* view = st.view.get();
  auto ctx = std::make_unique<WorkerCtx>();
  ctx->evaluator = MakeMatchEvaluator(
      *st.graph, view, st.rules->sigma, st.rules->all_ok, options_.sketch_hops,
      options_.use_guided_search, options_.share_multi_patterns,
      st.plan_store.get(), sketches);
  ctx->pq_matcher = std::make_unique<VF2Matcher>(*st.graph, view);
  ctx->pq_matcher->set_plan_store(st.plan_store.get());
  if (options_.use_guided_search) {
    auto gm = std::make_unique<GuidedMatcher>(*st.graph, view,
                                              options_.sketch_hops);
    gm->set_sketch_store(sketches);
    gm->set_plan_store(st.plan_store.get());
    ctx->probe_matcher = std::move(gm);
  } else {
    auto m = std::make_unique<VF2Matcher>(*st.graph, view);
    m->set_plan_store(st.plan_store.get());
    ctx->probe_matcher = std::move(m);
  }
  return ctx;
}

std::unique_ptr<RuleServer::WorkerCtx> RuleServer::AcquireCtx(
    const State& st) const {
  {
    MutexLock lock(st.ctx_mu);
    if (!st.free_ctxs.empty()) {
      auto ctx = std::move(st.free_ctxs.back());
      st.free_ctxs.pop_back();
      return ctx;
    }
  }
  return BuildCtx(st);
}

void RuleServer::ReleaseCtx(const State& st,
                            std::unique_ptr<WorkerCtx> ctx) const {
  MutexLock lock(st.ctx_mu);
  st.free_ctxs.push_back(std::move(ctx));
}

std::shared_ptr<const RuleServer::State> RuleServer::AcquireState() const {
  MutexLock lock(state_mu_);
  return state_;
}

size_t RuleServer::max_cached_centers(const RuleSet& rules) const {
  size_t per_center = std::max<size_t>(rules.sigma.size(), 1);
  return std::max<size_t>(options_.cache_capacity / per_center, 1);
}

RuleServer::CacheShard& RuleServer::ShardFor(NodeId center) const {
  const uint64_t h = (static_cast<uint64_t>(center) * 0x9E3779B97F4A7C15ull);
  return cache_shards_[(h >> 32) % num_cache_shards_];
}

void RuleServer::EvaluateItem(const State& st, WorkerCtx& ctx,
                              WorkItem& item) const {
  const NodeId v = item.center;
  uint8_t qc = item.qclass_in;
  if ((qc & kQKnown) == 0) {
    bool is_q = ctx.pq_matcher->ExistsAt(pq_, v);
    // The consequent edge targets a 1-hop neighbor, which is inside the
    // shard view whenever v is an owned center (d >= 1), so the view and
    // parent-graph probes agree for every center this server answers for.
    bool is_qbar = !is_q && (st.view != nullptr
                                 ? st.view->HasOutLabel(v, q_.edge_label)
                                 : st.graph->HasOutLabel(v, q_.edge_label));
    qc = kQKnown | (is_q ? kQIsQ : 0) | (is_qbar ? kQIsQbar : 0);
  }
  item.qclass_out = qc;
  const bool is_q = (qc & kQIsQ) != 0;
  const bool is_qbar = (qc & kQIsQbar) != 0;
  if (item.full) {
    std::vector<char> in_pr, in_q;
    ctx.evaluator->Evaluate(v, is_q, is_qbar, /*need_q_membership=*/true,
                            &in_pr, &in_q);
    for (size_t i = 0; i < st.rules->sigma.size(); ++i) {
      SetBit(&item.probed, i);
      if (in_q[i]) SetBit(&item.in_q, i);
      if (in_pr[i]) SetBit(&item.in_pr, i);
    }
  } else {
    for (uint32_t ri : item.rules) {
      const Gpar& r = st.rules->sigma[ri];
      // P_R contains the consequent edge, so only q-match centers can hold
      // it; a P_R match implies antecedent membership (its restriction to
      // Q's nodes is a Q-match), saving the second probe.
      bool pr = is_q && ctx.probe_matcher->ExistsAt(r.pr(), v);
      bool qm = pr || ctx.probe_matcher->ExistsAt(r.x_component(), v);
      SetBit(&item.probed, ri);
      if (qm) SetBit(&item.in_q, ri);
      if (pr) SetBit(&item.in_pr, ri);
    }
  }
}

Status RuleServer::EnsureRows(const State& st, std::span<const NodeId> centers,
                              const std::vector<uint32_t>& selected,
                              std::unordered_map<NodeId, Row>* rows,
                              ServeStats* stats) {
  const size_t words = rule_words(*st.rules);
  std::vector<WorkItem> items;

  for (NodeId c : centers) {
    if (c >= st.graph->num_nodes()) {
      return Status::InvalidArgument("center id " + std::to_string(c) +
                                     " out of range");
    }
    if (rows->count(c) > 0) continue;  // duplicate within this request
    Row& row = (*rows)[c];
    row.in_q.assign(words, 0);
    row.in_pr.assign(words, 0);

    std::vector<uint32_t> missing;
    uint8_t qclass = 0;
    {
      CacheShard& sh = ShardFor(c);
      MutexLock lock(sh.mu);
      auto cit = sh.map.find(c);
      if (cit != sh.map.end() && cit->second.known.size() != words) {
        // Defensive: an entry written under a different rule-set geometry
        // (a racing rule refresh) is meaningless here — treat as a miss.
        sh.lru.erase(cit->second.lru_it);
        sh.map.erase(cit);
        cit = sh.map.end();
      }
      if (cit != sh.map.end()) {
        CenterEntry& e = cit->second;
        qclass = e.qclass;
        for (uint32_t ri : selected) {
          if (GetBit(e.known, ri)) {
            ++stats->cache_hits;
            if (GetBit(e.in_q, ri)) SetBit(&row.in_q, ri);
            if (GetBit(e.in_pr, ri)) SetBit(&row.in_pr, ri);
          } else {
            missing.push_back(ri);
          }
        }
        sh.lru.splice(sh.lru.begin(), sh.lru, e.lru_it);
      } else {
        missing = selected;
      }
    }
    row.qclass = qclass;
    if (missing.empty() && (qclass & kQKnown) != 0) continue;

    WorkItem item;
    item.center = c;
    item.qclass_in = qclass;
    item.full = missing.size() == st.rules->sigma.size();
    if (!item.full) item.rules = std::move(missing);
    item.in_q.assign(words, 0);
    item.in_pr.assign(words, 0);
    item.probed.assign(words, 0);
    items.push_back(std::move(item));
  }

  if (!items.empty()) {
    stats->centers_evaluated += items.size();
    const uint32_t m = static_cast<uint32_t>(
        std::min<size_t>(options_.num_workers, items.size()));
    std::vector<std::unique_ptr<WorkerCtx>> ctxs(m);
    for (auto& c : ctxs) c = AcquireCtx(st);
    ParallelFor(pool_, m, [this, &st, &items, &ctxs, m](uint32_t w) {
      const size_t begin = items.size() * w / m;
      const size_t end = items.size() * (w + 1) / m;
      for (size_t i = begin; i < end; ++i) {
        EvaluateItem(st, *ctxs[w], items[i]);
      }
    });
    for (auto& c : ctxs) ReleaseCtx(st, std::move(c));
  }

  const size_t shard_cap =
      std::max<size_t>(max_cached_centers(*st.rules) / num_cache_shards_, 1);
  for (WorkItem& item : items) {
    Row& row = (*rows)[item.center];
    row.qclass = item.qclass_out;
    for (size_t w = 0; w < words; ++w) {
      row.in_q[w] |= item.in_q[w];
      row.in_pr[w] |= item.in_pr[w];
      stats->cache_probes += std::popcount(item.probed[w]);
    }
    CacheShard& sh = ShardFor(item.center);
    MutexLock lock(sh.mu);
    // Write back only results computed on the CURRENT epoch. A delta
    // publishes the new epoch BEFORE its invalidation walk, so a stale
    // reader either inserts before the walk (and gets invalidated by it)
    // or sees the new epoch here and skips — stale memberships can never
    // outlive the walk.
    if (epoch_.load(std::memory_order_acquire) != st.epoch) continue;
    auto [cit, inserted] = sh.map.try_emplace(item.center);
    CenterEntry& e = cit->second;
    if (inserted) {
      e.known.assign(words, 0);
      e.in_q.assign(words, 0);
      e.in_pr.assign(words, 0);
      sh.lru.push_front(item.center);
      e.lru_it = sh.lru.begin();
    } else if (e.known.size() != words) {
      // Same defensive geometry guard as the read side.
      e.qclass = 0;
      e.known.assign(words, 0);
      e.in_q.assign(words, 0);
      e.in_pr.assign(words, 0);
    }
    e.qclass = item.qclass_out;
    for (size_t w = 0; w < words; ++w) {
      // Probed bits overwrite (an invalidated bit may hold a stale value);
      // the rest keep their cached values.
      e.in_q[w] = (e.in_q[w] & ~item.probed[w]) | item.in_q[w];
      e.in_pr[w] = (e.in_pr[w] & ~item.probed[w]) | item.in_pr[w];
      e.known[w] |= item.probed[w];
    }
    sh.lru.splice(sh.lru.begin(), sh.lru, e.lru_it);
    while (sh.map.size() > shard_cap) {
      NodeId victim = sh.lru.back();
      sh.lru.pop_back();
      sh.map.erase(victim);
    }
  }
  return Status::OK();
}

Result<SessionReply> RuleServer::Query(const SessionRequest& request) {
  if (is_shard_) {
    // Simulated shard failure on the query path — what the router's
    // degraded mode and per-request retries are tested against.
    GPAR_FAILPOINT("shard.query");
  }
  Timer timer;
  // Pin the state FIRST: the selection must be normalized against the same
  // rule set the request will match with, or a racing rule refresh could
  // hand back indices into the wrong set.
  const std::shared_ptr<const State> st = AcquireState();
  GPAR_ASSIGN_OR_RETURN(
      std::vector<uint32_t> selected,
      NormalizeRuleSelection(request.rules, st->rules->sigma.size()));
  if (request.all_centers && request.eta <= 0) {
    return Status::InvalidArgument("eta must be positive");
  }
  const std::span<const NodeId> centers =
      request.all_centers ? std::span<const NodeId>(candidates_)
                          : std::span<const NodeId>(request.centers);

  ServeStats stats;
  stats.requests = 1;
  std::unordered_map<NodeId, Row> rows;
  GPAR_RETURN_NOT_OK(EnsureRows(*st, centers, selected, &rows, &stats));

  SessionReply reply;
  reply.matched.reserve(centers.size());
  for (NodeId c : centers) {
    const Row& row = rows.at(c);
    std::vector<uint32_t> m;
    for (uint32_t ri : selected) {
      bool hit = request.require_consequent
                     ? GetBit(row.in_pr, ri)
                     : (GetBit(row.in_q, ri) && st->other_ok[ri] != 0);
      if (hit) m.push_back(ri);
    }
    reply.matched.push_back(std::move(m));
  }

  if (request.all_centers) {
    // Candidate-major assembly: one row lookup per center, all rule bits
    // read inline (the warm path is lookup-bound, not match-bound).
    reply.rule_evals.assign(st->rules->sigma.size(), {});
    for (NodeId c : candidates_) {
      const Row& row = rows.at(c);
      if (row.qclass & kQIsQ) ++reply.supp_q;
      const bool is_qbar = (row.qclass & kQIsQbar) != 0;
      if (is_qbar) ++reply.supp_qbar;
      for (uint32_t ri : selected) {
        EipRuleEval& ev = reply.rule_evals[ri];
        if (GetBit(row.in_pr, ri)) ++ev.supp_r;
        if (is_qbar && GetBit(row.in_q, ri) && st->other_ok[ri] != 0) {
          ++ev.supp_qqbar;
        }
      }
    }
    std::vector<char> qualified(st->rules->sigma.size(), 0);
    for (uint32_t ri : selected) {
      EipRuleEval& ev = reply.rule_evals[ri];
      ev.conf = BayesFactorConf(ev.supp_r, reply.supp_qbar, ev.supp_qqbar,
                                reply.supp_q);
      if (ev.conf >= request.eta) qualified[ri] = 1;
    }
    for (size_t i = 0; i < candidates_.size(); ++i) {
      // candidates_ is sorted, so entities come out sorted
      for (uint32_t ri : reply.matched[i]) {
        if (qualified[ri] != 0) {
          reply.entities.push_back(candidates_[i]);
          break;
        }
      }
    }
  } else {
    for (size_t i = 0; i < centers.size(); ++i) {
      if (!reply.matched[i].empty()) reply.entities.push_back(centers[i]);
    }
    std::sort(reply.entities.begin(), reply.entities.end());
    reply.entities.erase(
        std::unique(reply.entities.begin(), reply.entities.end()),
        reply.entities.end());
  }

  stats.latency_seconds = timer.Seconds();
  {
    MutexLock lock(stats_mu_);
    Accumulate(&lifetime_stats_, stats);
  }
  reply.stats = stats;
  return reply;
}

Result<DeltaStats> RuleServer::ApplyDelta(const GraphDelta& delta) {
  if (is_shard_) {
    return Status::InvalidArgument(
        "shard servers receive deltas from their router (ApplyShardDelta)");
  }
  MutexLock writer(writer_mu_);
  return ApplyDeltaLocked(delta, /*journal=*/true);
}

Result<DeltaStats> RuleServer::ApplyDeltaLocked(const GraphDelta& delta,
                                                bool journal) {
  const std::shared_ptr<const State> st = AcquireState();
  Timer timer;
  DeltaStats ds;
  // Replayed journal frames carry their own label dictionary (v3 wire);
  // re-intern before patching so a frame minted after the snapshot was
  // written still resolves. Live deltas have no defs — this is free.
  GPAR_RETURN_NOT_OK(ApplyLabelDefs(delta, interner_.get()));
  GPAR_ASSIGN_OR_RETURN(GraphPatch patch, PatchGraph(*st->graph, delta));
  ds.edges_inserted = patch.edges_inserted;
  ds.duplicates_ignored = patch.duplicates;
  ds.edges_deleted = patch.edges_deleted;
  ds.deletes_missing = patch.missing;
  if (patch.applied.empty() && patch.applied_deletes.empty()) {
    // No structural change: every cached answer and sketch stays valid —
    // and nothing is journaled, so replay reproduces only real mutations.
    ds.seconds = timer.Seconds();
    return ds;
  }
  if (journal && journal_ != nullptr) {
    // Append-before-publish, and journal the APPLIED mutations rather than
    // the raw input: duplicates and missing deletes are already filtered,
    // so snapshot + replay re-derives this exact graph bit-for-bit. An
    // append failure leaves the served state untouched.
    GraphDelta wire;
    wire.sequence = journal_->last_sequence() + 1;
    wire.inserts = patch.applied;
    wire.deletes = patch.applied_deletes;
    // Frames name the labels they reference, so replay against an older
    // snapshot re-interns live-minted labels instead of failing.
    CollectLabelDefs(*interner_, &wire);
    const uint64_t bytes_before = journal_->size_bytes();
    GPAR_RETURN_NOT_OK(journal_->Append(wire));
    ds.sequence = wire.sequence;
    ds.journal_bytes = journal_->size_bytes() - bytes_before;
  }
  // The crash window recovery must close: the frame is on disk but not yet
  // published. Replay applies it, converging with the no-crash timeline.
  GPAR_FAILPOINT("serve.publish");
  auto new_graph = std::make_shared<const Graph>(std::move(patch.graph));
  std::shared_ptr<const RuleSet> new_rules;
  if (maintainer_ != nullptr) {
    // Maintain-on-ApplyDelta: run the maintenance pass between patching
    // and publishing, so queries observe the new graph together with the
    // rule set that is fresh for it.
    GPAR_ASSIGN_OR_RETURN(
        const MaintainStats ms,
        maintainer_->Advance(*st->graph, new_graph, patch.applied,
                             patch.applied_deletes));
    (void)ms;  // folded into maintain_stats()
    std::vector<RuleRecord> refreshed = maintainer_->TopKRecords();
    if (refreshed != st->rules->records) {
      new_rules = BuildRuleSet(std::move(refreshed));
      ds.rules_refreshed = 1;
    }
  }
  SwapStateAndInvalidate(*st, std::move(new_graph), patch.applied,
                         patch.applied_deletes, &ds, std::move(new_rules));
  ds.seconds = timer.Seconds();
  return ds;
}

Status RuleServer::AttachJournal(const std::string& path,
                                 const DeltaJournalOptions& options,
                                 JournalReplayStats* replay) {
  if (is_shard_) {
    return Status::InvalidArgument(
        "shard servers do not journal; attach at the router");
  }
  MutexLock writer(writer_mu_);
  if (journal_ != nullptr) {
    return Status::InvalidArgument("a journal is already attached");
  }
  JournalReplayStats stats;
  GPAR_ASSIGN_OR_RETURN(std::vector<GraphDelta> frames,
                        DeltaJournal::ReadAll(path, &stats));
  for (const GraphDelta& frame : frames) {
    // Replay without re-journaling — these frames ARE the journal. The
    // checkpoint floor marker (an empty frame) falls out as a no-op.
    auto applied = ApplyDeltaLocked(frame, /*journal=*/false);
    if (!applied.ok()) return applied.status();
  }
  GPAR_ASSIGN_OR_RETURN(journal_, DeltaJournal::Open(path, options));
  if (replay != nullptr) *replay = stats;
  return Status::OK();
}

Status RuleServer::Checkpoint(const std::string& graph_snapshot_path) {
  MutexLock writer(writer_mu_);
  if (journal_ == nullptr) {
    return Status::InvalidArgument("checkpoint requires an attached journal");
  }
  const std::shared_ptr<const State> st = AcquireState();
  GPAR_RETURN_NOT_OK(WriteGraphSnapshotFile(*st->graph, graph_snapshot_path));
  // The snapshot now carries every journaled frame's effects; compaction
  // keeps only the sequence floor.
  return journal_->Compact();
}

Result<DeltaStats> RuleServer::ApplyShardDelta(
    std::shared_ptr<const Graph> new_graph, std::string_view delta_bytes) {
  if (!is_shard_) {
    return Status::InvalidArgument(
        "ApplyShardDelta is only for shard servers");
  }
  if (new_graph == nullptr) {
    return Status::InvalidArgument("shard delta graph must not be null");
  }
  GPAR_ASSIGN_OR_RETURN(GraphDelta delta,
                        GraphDelta::Deserialize(delta_bytes));
  // Simulated shard failure during ingestion — the router's retry and
  // resync paths are exercised by arming this site.
  GPAR_FAILPOINT("shard.apply_delta");
  MutexLock writer(writer_mu_);
  Timer timer;
  DeltaStats ds;
  // Shards share the router's dictionary, so the defs usually verify as
  // no-ops — but a shard brought up against an older snapshot (sharded
  // recovery) interns here, keeping the wire self-contained.
  GPAR_RETURN_NOT_OK(ApplyLabelDefs(delta, interner_.get()));
  ds.wire_bytes = delta_bytes.size();
  if (delta.sequence != 0 && delta.sequence <= shard_sequence_) {
    // Already applied: a router retry of an acknowledged-then-failed ship
    // must be a no-op, never a double-apply.
    ds.sequence = delta.sequence;
    ds.seconds = timer.Seconds();
    return ds;
  }
  const std::shared_ptr<const State> st = AcquireState();
  // The router ships only the mutations that actually changed the parent
  // graph (GraphPatch::applied / applied_deletes), already validated
  // against it.
  ds.edges_inserted = delta.inserts.size();
  ds.edges_deleted = delta.deletes.size();
  if (!delta.inserts.empty() || !delta.deletes.empty()) {
    SwapStateAndInvalidate(*st, std::move(new_graph), delta.inserts,
                           delta.deletes, &ds);
  }
  if (delta.sequence != 0) shard_sequence_ = delta.sequence;
  ds.sequence = delta.sequence;
  ds.seconds = timer.Seconds();
  return ds;
}

uint64_t RuleServer::shard_sequence() const {
  MutexLock writer(writer_mu_);
  return shard_sequence_;
}

bool RuleServer::journal_attached() const {
  MutexLock writer(writer_mu_);
  return journal_ != nullptr;
}

uint64_t RuleServer::journal_sequence() const {
  MutexLock writer(writer_mu_);
  return journal_ != nullptr ? journal_->last_sequence() : 0;
}

const std::vector<RuleRecord>& RuleServer::rules() const {
  // The RuleSet is owned by the published State, which outlives this call;
  // the reference stays valid until a refresh publishes a different set.
  return AcquireState()->rules->records;
}

Status RuleServer::EnableMaintenance(const MaintainOptions& options) {
  if (is_shard_) {
    return Status::InvalidArgument(
        "shards serve refreshed rule sets from their router (UpdateRules); "
        "enable maintenance there");
  }
  MutexLock writer(writer_mu_);
  if (maintainer_ != nullptr) {
    return Status::InvalidArgument("maintenance is already enabled");
  }
  const std::shared_ptr<const State> st = AcquireState();
  GPAR_ASSIGN_OR_RETURN(maintainer_,
                        RuleMaintainer::Seed(st->graph, q_, options));
  // Every rule the maintainer will ever emit has eval radius <= mine.d, so
  // widening the invalidation radius once up front covers all refreshes.
  max_d_ = std::max(max_d_, std::max<uint32_t>(options.mine.d, 1));
  std::vector<RuleRecord> refreshed = maintainer_->TopKRecords();
  if (refreshed == st->rules->records) return Status::OK();
  DeltaStats ds;
  SwapStateAndInvalidate(*st, st->graph, {}, {}, &ds,
                         BuildRuleSet(std::move(refreshed)));
  return Status::OK();
}

bool RuleServer::maintenance_enabled() const {
  MutexLock writer(writer_mu_);
  return maintainer_ != nullptr;
}

MaintainStats RuleServer::maintain_stats() const {
  MutexLock writer(writer_mu_);
  return maintainer_ != nullptr ? maintainer_->lifetime_stats()
                                : MaintainStats{};
}

Status RuleServer::UpdateRules(std::vector<RuleRecord> rules) {
  MutexLock writer(writer_mu_);
  const std::shared_ptr<const State> st = AcquireState();
  if (rules == st->rules->records) return Status::OK();
  if (!rules.empty()) {
    std::vector<Gpar> sigma;
    sigma.reserve(rules.size());
    for (const RuleRecord& r : rules) sigma.push_back(r.rule);
    GPAR_ASSIGN_OR_RETURN(const SigmaInfo info, ValidateSigma(sigma));
    if (!(info.q == q_)) {
      return Status::InvalidArgument(
          "refreshed rule set changes the session predicate q(x, y)");
    }
    const uint32_t d = std::max<uint32_t>(info.d, 1);
    if (is_shard_ && d > max_d_) {
      return Status::InvalidArgument(
          "refreshed rule radius " + std::to_string(d) +
          " exceeds the partition radius " + std::to_string(max_d_) +
          " this shard's view was cut for");
    }
    max_d_ = std::max(max_d_, d);
  }
  // An empty set skips sigma validation on purpose: a maintained top-k can
  // die under deletes and the session keeps serving zero rules.
  DeltaStats ds;
  SwapStateAndInvalidate(*st, st->graph, {}, {}, &ds,
                         BuildRuleSet(std::move(rules)));
  return Status::OK();
}

void RuleServer::SwapStateAndInvalidate(
    const State& old, std::shared_ptr<const Graph> new_graph,
    std::span<const EdgeInsert> applied, std::span<const EdgeDelete> deleted,
    DeltaStats* ds, std::shared_ptr<const RuleSet> new_rules) {
  const bool rules_changed = new_rules != nullptr;
  // q-class depends only on a node's own out-edges, so its invalidation
  // frontier is the source nodes — of inserts and deletes alike.
  std::unordered_set<NodeId> sources;
  for (const EdgeInsert& e : applied) sources.insert(e.src);
  for (const EdgeDelete& e : deleted) sources.insert(e.src);

  // The delta-affected region (shared with the rule maintainer's evidence
  // patching) to the largest radius any cached state can reach: rule
  // memberships go stale within d(R) hops, stored sketches within k hops.
  // Deletions make reach non-monotone, so the helper also sweeps the
  // pre-delete graph and unions at minimum distance.
  uint32_t rmax = max_d_;
  if (old.sketch_store.size() > 0) {
    rmax = std::max(rmax, options_.sketch_hops);
  }
  auto touched =
      DeltaAffectedRegion(*old.graph, *new_graph, applied, deleted, rmax);

  auto next = std::make_shared<State>(options_.sketch_hops);
  next->epoch = old.epoch + 1;
  next->graph = std::move(new_graph);
  next->rules = rules_changed ? std::move(new_rules) : old.rules;

  if (is_shard_) {
    // Inserted edges can pull new nodes into an owned center's N_d (and
    // chained inserts can do so through nodes that were not members
    // before), so re-derive the d-ball of every owned center the delta can
    // reach ON THE NEW GRAPH and extend the view. Deletions only shrink
    // neighborhoods, so the view is kept as a superset of ∪N_d(owned) —
    // never pruned — which stays exact for view-restricted matching: the
    // view is a subgraph of the parent (soundness) and still covers every
    // owned center's G_d (completeness).
    std::vector<NodeId> members = old.members;
    std::vector<NodeId> affected;
    for (const auto& [v, dist] : touched) {
      if (dist <= max_d_ &&
          std::binary_search(candidates_.begin(), candidates_.end(), v)) {
        affected.push_back(v);
      }
    }
    if (!affected.empty()) {
      // One multi-source BFS: v is within max_d_ of SOME affected center
      // iff v is in the union of their N_d balls.
      std::vector<NodeId> additions;
      for (const auto& [v, dist] :
           NodesWithinRadiusOfAny(*next->graph, affected, max_d_)) {
        if (!std::binary_search(members.begin(), members.end(), v)) {
          additions.push_back(v);
        }
      }
      if (!additions.empty()) {
        std::sort(additions.begin(), additions.end());
        ds->members_extended += additions.size();
        const size_t old_size = members.size();
        members.insert(members.end(), additions.begin(), additions.end());
        std::inplace_merge(members.begin(),
                           members.begin() + static_cast<long>(old_size),
                           members.end());
      }
    }
    next->members = std::move(members);
    // Rebuild even without additions: the view borrows the graph object,
    // which this generation replaces.
    next->view = std::make_unique<GraphView>(*next->graph, next->members);
  }

  // Components not containing x can match anywhere, so any mutation can
  // flip their satisfiability globally (in either direction, once deletes
  // are in play); the raw cached antecedent bits deliberately exclude this
  // factor, so recomputing it here never touches the cache.
  next->other_ok = (rules_changed || next->rules->has_other_components)
                       ? OtherComponentsOk(*next->graph, next->rules->sigma)
                       : old.other_ok;
  next->plan_store = std::make_unique<SearchPlanStore>(*next->graph);
  PreparePlans(next->plan_store.get(), *next->rules);
  if (old.sketch_store.size() > 0) {
    next->sketch_store = old.sketch_store;
    std::vector<NodeId> refresh;
    for (const auto& [v, dist] : touched) {
      if (dist <= options_.sketch_hops) refresh.push_back(v);
    }
    ds->sketches_refreshed = next->sketch_store.Refresh(*next->graph, refresh);
  }

  // Publish the state, THEN the epoch, THEN invalidate: readers that
  // slipped a stale writeback past the epoch check did so before the store
  // below, hence before this walk, which then clears it (see EnsureRows).
  {
    MutexLock lock(state_mu_);
    state_ = next;
  }
  // Release: pairs with the acquire load in EnsureRows — a reader that
  // observes the new epoch also observes the fully built state above.
  epoch_.store(next->epoch, std::memory_order_release);

  if (rules_changed) {
    // Rule indices change meaning across rule sets, so a selective walk
    // could keep bit i of the old set alive as bit i of the new one — drop
    // the whole cache instead. The publish-then-clear order gives the same
    // guarantee as the selective walk: a stale writeback either landed
    // before this clear (and dies here) or saw the new epoch and skipped.
    for (uint32_t i = 0; i < num_cache_shards_; ++i) {
      CacheShard& sh = cache_shards_[i];
      MutexLock lock(sh.mu);
      for (const auto& [v, e] : sh.map) {
        for (uint64_t w : e.known) {
          ds->memberships_invalidated += std::popcount(w);
        }
        if ((e.qclass & kQKnown) != 0) ++ds->qclass_invalidated;
      }
      sh.map.clear();
      sh.lru.clear();
    }
    return;
  }

  const std::vector<Gpar>& sigma = next->rules->sigma;
  for (const auto& [v, dist] : touched) {
    CacheShard& sh = ShardFor(v);
    MutexLock lock(sh.mu);
    auto cit = sh.map.find(v);
    if (cit == sh.map.end()) continue;
    CenterEntry& e = cit->second;
    for (size_t ri = 0; ri < sigma.size(); ++ri) {
      if (dist <= sigma[ri].eval_radius() && GetBit(e.known, ri)) {
        ClearBit(&e.known, ri);
        ++ds->memberships_invalidated;
      }
    }
    // q-class depends only on v's own out-edges: only mutation sources move.
    if ((e.qclass & kQKnown) != 0 && sources.count(v) > 0) {
      e.qclass = 0;
      ++ds->qclass_invalidated;
    }
    bool any_known = (e.qclass & kQKnown) != 0;
    for (uint64_t w : e.known) any_known = any_known || w != 0;
    if (!any_known) {
      sh.lru.erase(e.lru_it);
      sh.map.erase(cit);
    }
  }
}

std::shared_ptr<const Graph> RuleServer::graph_snapshot() const {
  return AcquireState()->graph;
}

ServeStats RuleServer::lifetime_stats() const {
  MutexLock lock(stats_mu_);
  return lifetime_stats_;
}

size_t RuleServer::cached_centers() const {
  size_t total = 0;
  for (uint32_t i = 0; i < num_cache_shards_; ++i) {
    const CacheShard& sh = cache_shards_[i];
    MutexLock lock(sh.mu);
    total += sh.map.size();
  }
  return total;
}

size_t RuleServer::sketches_precomputed() const {
  return AcquireState()->sketch_store.size();
}

size_t RuleServer::plans_prepared() const {
  return AcquireState()->plan_store->patterns_planned();
}

size_t RuleServer::view_members() const {
  const auto st = AcquireState();
  return st->view != nullptr ? st->view->nodes().size() : 0;
}

Result<ServeReply> RuleServer::Serve(const ServeRequest& request) {
  SessionRequest req;
  req.centers = request.centers;
  req.rules = request.rules;
  req.require_consequent = request.require_consequent;
  GPAR_ASSIGN_OR_RETURN(SessionReply r, Query(req));
  ServeReply reply;
  reply.matched = std::move(r.matched);
  reply.entities = std::move(r.entities);
  reply.stats = r.stats;
  return reply;
}

Result<EipResult> RuleServer::IdentifyAll(double eta, bool require_consequent,
                                          ServeStats* request_stats) {
  SessionRequest req;
  req.all_centers = true;
  req.eta = eta;
  req.require_consequent = require_consequent;
  GPAR_ASSIGN_OR_RETURN(SessionReply r, Query(req));
  EipResult result;
  result.entities = std::move(r.entities);
  result.rule_evals = std::move(r.rule_evals);
  result.supp_q = r.supp_q;
  result.supp_qbar = r.supp_qbar;
  if (request_stats != nullptr) *request_stats = r.stats;
  return result;
}

Result<DeltaStats> RuleServer::ApplyDelta(std::span<const EdgeInsert> inserts) {
  GraphDelta delta;
  delta.inserts.assign(inserts.begin(), inserts.end());
  return ApplyDelta(delta);
}

}  // namespace gpar
