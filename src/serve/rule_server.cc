#include "serve/rule_server.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "graph/graph_snapshot.h"
#include "match/guided.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

constexpr uint8_t kQKnown = 1;
constexpr uint8_t kQIsQ = 2;
constexpr uint8_t kQIsQbar = 4;

bool GetBit(const std::vector<uint64_t>& words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}
void SetBit(std::vector<uint64_t>* words, size_t i) {
  (*words)[i >> 6] |= uint64_t{1} << (i & 63);
}
void ClearBit(std::vector<uint64_t>* words, size_t i) {
  (*words)[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

void Accumulate(ServeStats* into, const ServeStats& s) {
  into->requests += s.requests;
  into->cache_hits += s.cache_hits;
  into->cache_probes += s.cache_probes;
  into->centers_evaluated += s.centers_evaluated;
  into->latency_seconds += s.latency_seconds;
}

}  // namespace

RuleServer::RuleServer(Graph g, std::vector<RuleRecord> rules,
                       const RuleServerOptions& options)
    : options_(options),
      graph_(std::move(g)),
      records_(std::move(rules)),
      pool_(std::max(1u, options.num_workers)),
      sketch_store_(options.sketch_hops) {
  options_.num_workers = pool_.num_threads();
}

Result<std::unique_ptr<RuleServer>> RuleServer::Load(
    const std::string& graph_snapshot_path,
    const std::string& rules_snapshot_path, const RuleServerOptions& options) {
  auto g = ReadGraphSnapshotFile(graph_snapshot_path);
  if (!g.ok()) return g.status();
  auto rules =
      ReadRuleSetSnapshotFile(rules_snapshot_path, g->mutable_labels());
  if (!rules.ok()) return rules.status();
  return Create(std::move(g).value(), std::move(rules).value(), options);
}

Result<std::unique_ptr<RuleServer>> RuleServer::Create(
    Graph g, std::vector<RuleRecord> rules, const RuleServerOptions& options) {
  std::unique_ptr<RuleServer> server(
      new RuleServer(std::move(g), std::move(rules), options));
  if (Status st = server->Init(); !st.ok()) return st;
  return server;
}

Status RuleServer::Init() {
  sigma_.reserve(records_.size());
  for (const RuleRecord& r : records_) sigma_.push_back(r.rule);
  auto info = ValidateSigma(sigma_);
  if (!info.ok()) return info.status();
  q_ = info->q;
  max_d_ = std::max<uint32_t>(info->d, 1);
  pq_ = q_.ToPattern();
  all_ok_.assign(sigma_.size(), 1);
  other_ok_ = OtherComponentsOk(graph_, sigma_);
  for (const Gpar& r : sigma_) {
    if (!r.other_components().empty()) has_other_components_ = true;
  }
  {
    auto span = graph_.nodes_with_label(q_.x_label);
    candidates_.assign(span.begin(), span.end());
  }

  // Per-rule precompute (1): search plans, planned once and shared by every
  // worker matcher — anchored at x, the only anchor serving ever uses.
  plan_store_ = std::make_unique<SearchPlanStore>(graph_);
  auto prepare_at_x = [this](const Pattern& p) {
    PNodeId x = p.x();
    plan_store_->Prepare(p, std::span<const PNodeId>(&x, 1));
  };
  prepare_at_x(pq_);
  for (const Gpar& r : sigma_) {
    prepare_at_x(r.pr());
    prepare_at_x(r.x_component());
    for (const Pattern& comp : r.other_components()) {
      plan_store_->Prepare(comp, {});
    }
  }

  // Per-rule precompute (2): shared k-hop sketches for every node guided
  // search can possibly score (nodes whose label occurs in a rule pattern).
  if (options_.precompute_sketches && options_.use_guided_search) {
    PrecomputeSketches();
  }

  BuildWorkers();
  return Status::OK();
}

void RuleServer::PrecomputeSketches() {
  std::set<LabelId> labels;
  auto collect = [&labels](const Pattern& p) {
    for (PNodeId u = 0; u < p.num_nodes(); ++u) labels.insert(p.node(u).label);
  };
  for (const Gpar& r : sigma_) {
    collect(r.pr());
    for (const Pattern& comp : r.other_components()) collect(comp);
  }
  for (LabelId l : labels) {
    if (l >= graph_.labels().size()) continue;  // wildcard / unset labels
    for (NodeId v : graph_.nodes_with_label(l)) {
      if (sketch_store_.size() >= options_.max_precomputed_sketches) return;
      sketch_store_.Add(graph_, v);
    }
  }
}

void RuleServer::BuildWorkers() {
  const SketchStore* sketches =
      sketch_store_.size() > 0 ? &sketch_store_ : nullptr;
  workers_.clear();
  workers_.resize(options_.num_workers);
  for (WorkerCtx& w : workers_) {
    w.evaluator = MakeMatchEvaluator(
        graph_, nullptr, sigma_, all_ok_, options_.sketch_hops,
        options_.use_guided_search, options_.share_multi_patterns,
        plan_store_.get(), sketches);
    w.pq_matcher = std::make_unique<VF2Matcher>(graph_);
    w.pq_matcher->set_plan_store(plan_store_.get());
    if (options_.use_guided_search) {
      auto gm = std::make_unique<GuidedMatcher>(graph_, nullptr,
                                                options_.sketch_hops);
      gm->set_sketch_store(sketches);
      gm->set_plan_store(plan_store_.get());
      w.probe_matcher = std::move(gm);
    } else {
      auto m = std::make_unique<VF2Matcher>(graph_);
      m->set_plan_store(plan_store_.get());
      w.probe_matcher = std::move(m);
    }
  }
}

size_t RuleServer::max_cached_centers() const {
  size_t per_center = std::max<size_t>(sigma_.size(), 1);
  return std::max<size_t>(options_.cache_capacity / per_center, 1);
}

void RuleServer::TouchLru(CenterEntry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void RuleServer::EvictToCapacity() {
  const size_t cap = max_cached_centers();
  while (cache_.size() > cap) {
    NodeId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
}

void RuleServer::EvaluateItem(WorkerCtx& ctx, WorkItem& item) {
  const NodeId v = item.center;
  uint8_t qc = item.qclass_in;
  if ((qc & kQKnown) == 0) {
    bool is_q = ctx.pq_matcher->ExistsAt(pq_, v);
    bool is_qbar = !is_q && graph_.HasOutLabel(v, q_.edge_label);
    qc = kQKnown | (is_q ? kQIsQ : 0) | (is_qbar ? kQIsQbar : 0);
  }
  item.qclass_out = qc;
  const bool is_q = (qc & kQIsQ) != 0;
  const bool is_qbar = (qc & kQIsQbar) != 0;
  if (item.full) {
    std::vector<char> in_pr, in_q;
    ctx.evaluator->Evaluate(v, is_q, is_qbar, /*need_q_membership=*/true,
                            &in_pr, &in_q);
    for (size_t i = 0; i < sigma_.size(); ++i) {
      SetBit(&item.probed, i);
      if (in_q[i]) SetBit(&item.in_q, i);
      if (in_pr[i]) SetBit(&item.in_pr, i);
    }
  } else {
    for (uint32_t ri : item.rules) {
      const Gpar& r = sigma_[ri];
      // P_R contains the consequent edge, so only q-match centers can hold
      // it; a P_R match implies antecedent membership (its restriction to
      // Q's nodes is a Q-match), saving the second probe.
      bool pr = is_q && ctx.probe_matcher->ExistsAt(r.pr(), v);
      bool qm = pr || ctx.probe_matcher->ExistsAt(r.x_component(), v);
      SetBit(&item.probed, ri);
      if (qm) SetBit(&item.in_q, ri);
      if (pr) SetBit(&item.in_pr, ri);
    }
  }
}

Status RuleServer::EnsureRows(std::span<const NodeId> centers,
                              const std::vector<uint32_t>& selected,
                              std::unordered_map<NodeId, Row>* rows,
                              ServeStats* stats) {
  const size_t words = rule_words();
  std::vector<WorkItem> items;

  for (NodeId c : centers) {
    if (c >= graph_.num_nodes()) {
      return Status::InvalidArgument("center id " + std::to_string(c) +
                                     " out of range");
    }
    if (rows->count(c) > 0) continue;  // duplicate within this request
    Row& row = (*rows)[c];
    row.in_q.assign(words, 0);
    row.in_pr.assign(words, 0);

    std::vector<uint32_t> missing;
    uint8_t qclass = 0;
    auto cit = cache_.find(c);
    if (cit != cache_.end()) {
      CenterEntry& e = cit->second;
      qclass = e.qclass;
      for (uint32_t ri : selected) {
        if (GetBit(e.known, ri)) {
          ++stats->cache_hits;
          if (GetBit(e.in_q, ri)) SetBit(&row.in_q, ri);
          if (GetBit(e.in_pr, ri)) SetBit(&row.in_pr, ri);
        } else {
          missing.push_back(ri);
        }
      }
      TouchLru(e);
    } else {
      missing = selected;
    }
    row.qclass = qclass;
    if (missing.empty() && (qclass & kQKnown) != 0) continue;

    WorkItem item;
    item.center = c;
    item.qclass_in = qclass;
    item.full = missing.size() == sigma_.size();
    if (!item.full) item.rules = std::move(missing);
    item.in_q.assign(words, 0);
    item.in_pr.assign(words, 0);
    item.probed.assign(words, 0);
    items.push_back(std::move(item));
  }

  if (!items.empty()) {
    stats->centers_evaluated += items.size();
    const uint32_t n = options_.num_workers;
    ParallelFor(pool_, n, [this, &items, n](uint32_t w) {
      const size_t begin = items.size() * w / n;
      const size_t end = items.size() * (w + 1) / n;
      for (size_t i = begin; i < end; ++i) {
        EvaluateItem(workers_[w], items[i]);
      }
    });
  }

  for (WorkItem& item : items) {
    Row& row = (*rows)[item.center];
    row.qclass = item.qclass_out;
    for (size_t w = 0; w < words; ++w) {
      row.in_q[w] |= item.in_q[w];
      row.in_pr[w] |= item.in_pr[w];
      stats->cache_probes += std::popcount(item.probed[w]);
    }
    auto [cit, inserted] = cache_.try_emplace(item.center);
    CenterEntry& e = cit->second;
    if (inserted) {
      e.known.assign(words, 0);
      e.in_q.assign(words, 0);
      e.in_pr.assign(words, 0);
      lru_.push_front(item.center);
      e.lru_it = lru_.begin();
    }
    e.qclass = item.qclass_out;
    for (size_t w = 0; w < words; ++w) {
      // Probed bits overwrite (an invalidated bit may hold a stale value);
      // the rest keep their cached values.
      e.in_q[w] = (e.in_q[w] & ~item.probed[w]) | item.in_q[w];
      e.in_pr[w] = (e.in_pr[w] & ~item.probed[w]) | item.in_pr[w];
      e.known[w] |= item.probed[w];
    }
    TouchLru(e);
  }
  EvictToCapacity();
  return Status::OK();
}

Result<ServeReply> RuleServer::Serve(const ServeRequest& request) {
  Timer timer;
  std::vector<uint32_t> selected = request.rules;
  if (selected.empty()) {
    selected.resize(sigma_.size());
    std::iota(selected.begin(), selected.end(), 0);
  } else {
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
    if (!selected.empty() && selected.back() >= sigma_.size()) {
      return Status::InvalidArgument("rule index out of range");
    }
  }

  ServeReply reply;
  ServeStats stats;
  stats.requests = 1;
  std::unordered_map<NodeId, Row> rows;
  GPAR_RETURN_NOT_OK(EnsureRows(request.centers, selected, &rows, &stats));

  reply.matched.reserve(request.centers.size());
  for (NodeId c : request.centers) {
    const Row& row = rows.at(c);
    std::vector<uint32_t> m;
    for (uint32_t ri : selected) {
      bool hit = request.require_consequent
                     ? GetBit(row.in_pr, ri)
                     : (GetBit(row.in_q, ri) && other_ok_[ri] != 0);
      if (hit) m.push_back(ri);
    }
    if (!m.empty()) reply.entities.push_back(c);
    reply.matched.push_back(std::move(m));
  }
  std::sort(reply.entities.begin(), reply.entities.end());
  reply.entities.erase(
      std::unique(reply.entities.begin(), reply.entities.end()),
      reply.entities.end());

  stats.latency_seconds = timer.Seconds();
  Accumulate(&lifetime_stats_, stats);
  reply.stats = stats;
  return reply;
}

Result<EipResult> RuleServer::IdentifyAll(double eta, bool require_consequent,
                                          ServeStats* request_stats) {
  if (eta <= 0) {
    return Status::InvalidArgument("eta must be positive");
  }
  Timer timer;
  ServeStats stats;
  stats.requests = 1;
  std::vector<uint32_t> selected(sigma_.size());
  std::iota(selected.begin(), selected.end(), 0);

  std::unordered_map<NodeId, Row> rows;
  GPAR_RETURN_NOT_OK(EnsureRows(candidates_, selected, &rows, &stats));

  // Candidate-major assembly: one row lookup per center, all rule bits
  // read inline (the warm path is lookup-bound, not match-bound).
  EipResult result;
  result.rule_evals.assign(sigma_.size(), {});
  for (NodeId c : candidates_) {
    const Row& row = rows.at(c);
    if (row.qclass & kQIsQ) ++result.supp_q;
    const bool is_qbar = (row.qclass & kQIsQbar) != 0;
    if (is_qbar) ++result.supp_qbar;
    for (size_t ri = 0; ri < sigma_.size(); ++ri) {
      EipRuleEval& ev = result.rule_evals[ri];
      if (GetBit(row.in_pr, ri)) ++ev.supp_r;
      if (is_qbar && GetBit(row.in_q, ri) && other_ok_[ri] != 0) {
        ++ev.supp_qqbar;
      }
    }
  }
  for (EipRuleEval& ev : result.rule_evals) {
    ev.conf = BayesFactorConf(ev.supp_r, result.supp_qbar, ev.supp_qqbar,
                              result.supp_q);
  }

  std::vector<uint32_t> qualified;
  for (size_t ri = 0; ri < sigma_.size(); ++ri) {
    if (result.rule_evals[ri].conf >= eta) {
      qualified.push_back(static_cast<uint32_t>(ri));
    }
  }
  for (NodeId c : candidates_) {  // sorted, so entities come out sorted
    const Row& row = rows.at(c);
    for (uint32_t ri : qualified) {
      bool member = require_consequent
                        ? GetBit(row.in_pr, ri)
                        : (GetBit(row.in_q, ri) && other_ok_[ri] != 0);
      if (member) {
        result.entities.push_back(c);
        break;
      }
    }
  }

  stats.latency_seconds = timer.Seconds();
  Accumulate(&lifetime_stats_, stats);
  if (request_stats != nullptr) *request_stats = stats;
  return result;
}

Result<DeltaStats> RuleServer::ApplyDelta(std::span<const EdgeInsert> inserts) {
  Timer timer;
  DeltaStats ds;
  GPAR_ASSIGN_OR_RETURN(GraphPatch patch,
                        PatchGraphWithInserts(graph_, inserts));
  ds.edges_inserted = patch.edges_inserted;
  ds.duplicates_ignored = patch.duplicates;
  graph_ = std::move(patch.graph);
  if (patch.applied.empty()) {
    // No structural change: every cached answer and sketch stays valid.
    ds.seconds = timer.Seconds();
    return ds;
  }

  std::vector<NodeId> endpoints;
  std::unordered_set<NodeId> sources;
  for (const EdgeInsert& e : patch.applied) {
    endpoints.push_back(e.src);
    endpoints.push_back(e.dst);
    sources.insert(e.src);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  // One multi-source BFS (on the patched graph) to the largest radius any
  // cached state can reach: rule memberships go stale within d(R) hops,
  // stored sketches within k hops.
  uint32_t rmax = max_d_;
  if (sketch_store_.size() > 0) {
    rmax = std::max(rmax, options_.sketch_hops);
  }
  auto touched = NodesWithinRadiusOfAny(graph_, endpoints, rmax);

  std::vector<NodeId> sketch_refresh;
  for (const auto& [v, dist] : touched) {
    if (sketch_store_.size() > 0 && dist <= options_.sketch_hops) {
      sketch_refresh.push_back(v);
    }
    auto cit = cache_.find(v);
    if (cit == cache_.end()) continue;
    CenterEntry& e = cit->second;
    for (size_t ri = 0; ri < sigma_.size(); ++ri) {
      if (dist <= sigma_[ri].eval_radius() && GetBit(e.known, ri)) {
        ClearBit(&e.known, ri);
        ++ds.memberships_invalidated;
      }
    }
    // q-class depends only on v's own out-edges: only insert sources move.
    if ((e.qclass & kQKnown) != 0 && sources.count(v) > 0) {
      e.qclass = 0;
      ++ds.qclass_invalidated;
    }
    bool any_known = (e.qclass & kQKnown) != 0;
    for (uint64_t w : e.known) any_known = any_known || w != 0;
    if (!any_known) {
      lru_.erase(e.lru_it);
      cache_.erase(cit);
    }
  }
  ds.sketches_refreshed = sketch_store_.Refresh(graph_, sketch_refresh);

  // Components not containing x can match anywhere, so an insert can flip
  // their satisfiability globally (monotonely, for insert-only deltas); the
  // raw cached antecedent bits deliberately exclude this factor.
  if (has_other_components_) {
    other_ok_ = OtherComponentsOk(graph_, sigma_);
  }

  // Worker matchers memoize per-node sketches of the pre-delta graph;
  // rebuild them (shared plans and the refreshed sketch store stay).
  BuildWorkers();
  ds.seconds = timer.Seconds();
  return ds;
}

}  // namespace gpar
