#ifndef GPAR_SERVE_DELTA_JOURNAL_H_
#define GPAR_SERVE_DELTA_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "graph/graph_delta.h"

namespace gpar {

/// Options for `DeltaJournal`.
struct DeltaJournalOptions {
  /// fsync(2) after every append: the delta is durable when `Append`
  /// returns, at the cost of one disk flush per batch. Off (default), the
  /// write still reaches the file immediately (unbuffered), but a machine
  /// crash may lose OS-buffered frames — a torn tail recovery truncates.
  bool fsync_on_append = false;
};

/// What a journal scan (open or replay) found on disk.
struct JournalReplayStats {
  size_t frames = 0;           ///< intact frames in the valid prefix
  uint64_t valid_bytes = 0;    ///< length of that prefix
  uint64_t dropped_bytes = 0;  ///< torn/corrupt tail bytes cut behind it
  uint64_t last_sequence = 0;  ///< sequence of the last intact frame
  bool tail_truncated = false;
};

/// A checksummed write-ahead journal of `GraphDelta` frames — the
/// durability half of the serving tier. Each record is one self-delimiting
/// frame in the "GPARDLTA" wire format (`GraphDelta::Serialize`: magic,
/// version, payload size, FNV-1a checksum, payload), appended in strictly
/// increasing `sequence` order. A server in attach-journal mode appends
/// the applied mutations of every `ApplyDelta` BEFORE publishing them, so
/// recovery = load the snapshot + replay the journal reproduces exactly
/// the mutations queries ever observed.
///
/// Torn-tail handling: a crash mid-append leaves a truncated or
/// checksum-broken final frame. `Open` scans the file, keeps the longest
/// prefix of intact frames, and truncates the tail in place — every
/// complete frame survives, the torn one is dropped. A checksum-valid
/// frame with a NON-monotone sequence is different: that is not a crash
/// artifact but mixed-up data, and it fails the scan with `Corruption`
/// rather than silently discarding valid frames.
///
/// `Compact` (the checkpoint op) truncates the journal after a fresh
/// snapshot has been written, then records a sequence-floor marker (an
/// empty frame carrying the last sequence) so appends stay monotone even
/// across a close/reopen of the compacted journal.
///
/// Thread-safety: all methods are safe to call concurrently, though the
/// servers already serialize appends under their writer lock.
class DeltaJournal {
 public:
  /// Opens `path` for appending, creating it if absent. Scans existing
  /// contents for the valid frame prefix (reported through `scan` when
  /// non-null) and truncates any torn tail in place.
  static Result<std::unique_ptr<DeltaJournal>> Open(
      const std::string& path, const DeltaJournalOptions& options = {},
      JournalReplayStats* scan = nullptr);

  /// Decodes the valid frame prefix of `path` in order — the replay half
  /// of recovery. A missing file is an empty journal, not an error.
  static Result<std::vector<GraphDelta>> ReadAll(
      const std::string& path, JournalReplayStats* stats = nullptr);

  /// Frame-scans an in-memory buffer (the shared core of Open/ReadAll,
  /// exposed for tests that slice journals at arbitrary byte offsets).
  static Status ScanBuffer(std::string_view data,
                           std::vector<GraphDelta>* frames,
                           JournalReplayStats* stats);

  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Appends one frame. A zero `delta.sequence` is stamped with
  /// `last_sequence() + 1`; a nonzero one must exceed `last_sequence()`.
  /// On an injected torn write the journal enters a failed state (every
  /// later append reports IoError) — recovery is reopening the path,
  /// which truncates the torn frame.
  Status Append(const GraphDelta& delta);

  /// Checkpoint compaction: drops every frame (the fresh snapshot now
  /// carries their effects) and writes the sequence-floor marker. Always
  /// fsyncs — compaction is a durability point regardless of options.
  Status Compact();

  uint64_t last_sequence() const;
  uint64_t size_bytes() const;
  uint64_t frames_appended() const;  ///< frames on disk (marker included)
  const std::string& path() const { return path_; }

 private:
  DeltaJournal(std::string path, const DeltaJournalOptions& options, int fd);

  Status WriteFully(const char* data, size_t size) GPAR_REQUIRES(mu_);

  const std::string path_;
  const DeltaJournalOptions options_;

  mutable Mutex mu_;
  int fd_ GPAR_GUARDED_BY(mu_);
  bool broken_ GPAR_GUARDED_BY(mu_) = false;
  uint64_t last_sequence_ GPAR_GUARDED_BY(mu_) = 0;
  uint64_t size_bytes_ GPAR_GUARDED_BY(mu_) = 0;
  uint64_t frames_ GPAR_GUARDED_BY(mu_) = 0;
};

/// A read-only frame iterator over a journal file — the replay primitive
/// for consumers that want frames one at a time (the rule maintainer, the
/// `maintain` tool) instead of the whole history materialized at once
/// (`ReadAll`). `Open` slurps and frame-scans the file ONCE, with exactly
/// `Open`'s torn-tail discipline — the cursor iterates the longest intact
/// prefix and never yields a frame behind a torn byte — but decodes frames
/// lazily in `Next`. A non-monotone sequence still fails the open with
/// `Corruption` (it is foreign data, not a crash artifact).
///
/// The cursor holds a snapshot of the bytes at open time; frames appended
/// afterwards are not observed. Not thread-safe (single consumer).
class DeltaJournalCursor {
 public:
  /// Opens a cursor over the valid prefix of `path`. A missing file is an
  /// empty journal (a cursor with no frames), matching `ReadAll`. `scan`,
  /// when non-null, reports what the open scan found.
  static Result<DeltaJournalCursor> Open(const std::string& path,
                                         JournalReplayStats* scan = nullptr);

  /// Decodes the next frame into `*delta`. Returns false at the end of the
  /// valid prefix (the scan already vetted every frame, so `Next` itself
  /// cannot fail).
  bool Next(GraphDelta* delta);

  /// Skips frames with `sequence <= floor` — the checkpoint-floor seek: a
  /// consumer restored from a snapshot at sequence s resumes replay with
  /// `SeekPastSequence(s)`, which also steps over a compaction marker (an
  /// empty frame carrying the floor). Only forward seeks: frames already
  /// consumed are not revisited.
  void SeekPastSequence(uint64_t floor);

  /// Frames remaining ahead of the cursor.
  size_t remaining() const { return frames_ - consumed_; }
  /// Total intact frames in the snapshot (markers included).
  size_t frames() const { return frames_; }
  /// Sequence of the last intact frame (0 for an empty journal).
  uint64_t last_sequence() const { return last_sequence_; }

 private:
  DeltaJournalCursor() = default;

  std::string data_;        ///< the valid frame prefix, snapshot at open
  size_t pos_ = 0;          ///< byte offset of the next frame
  size_t frames_ = 0;
  size_t consumed_ = 0;
  uint64_t last_sequence_ = 0;
};

/// Replays the frames of `path` with `sequence > after_sequence` through
/// `fn`, in order, stopping early on the first non-OK status. The
/// journal-to-maintainer replay loop, shared with the `maintain` tool.
Status ReplayRange(const std::string& path, uint64_t after_sequence,
                   const std::function<Status(const GraphDelta&)>& fn,
                   JournalReplayStats* scan = nullptr);

}  // namespace gpar

#endif  // GPAR_SERVE_DELTA_JOURNAL_H_
