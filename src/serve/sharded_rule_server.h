#ifndef GPAR_SERVE_SHARDED_RULE_SERVER_H_
#define GPAR_SERVE_SHARDED_RULE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "parallel/thread_pool.h"
#include "rule/rule_snapshot.h"
#include "serve/rule_server.h"
#include "serve/serve_session.h"

namespace gpar {

/// Options for `ShardedRuleServer`.
struct ShardedRuleServerOptions {
  /// Number of shard servers. 1 is a valid (router + one shard)
  /// deployment, handy for A/B against a plain `RuleServer`.
  uint32_t num_shards = 2;
  /// Threads the router uses to scatter a request across shards and to
  /// ship deltas; 0 sizes it to `num_shards`.
  uint32_t router_threads = 0;
  /// Per-shard serving options (worker threads, cache size, ...).
  RuleServerOptions shard_options;
  /// Bounded retry of TRANSIENT shard errors (Unavailable / IoError) on
  /// the query and delta-ship paths; other codes propagate immediately.
  uint32_t max_shard_retries = 2;
  /// Backoff before the first retry, doubling per attempt. The retry loop
  /// never sleeps past a request's `deadline_seconds`.
  uint32_t retry_backoff_micros = 200;
  /// When a shard keeps failing: answer from the surviving shards with
  /// `SessionReply::degraded` set (owned-center supports of survivors stay
  /// exact) instead of failing the request; a shard that misses a delta is
  /// likewise left lagging — excluded from queries until a journal/pending
  /// resync catches it up — rather than failing the `ApplyDelta`. False
  /// restores strict all-or-nothing semantics.
  bool degrade_on_shard_failure = true;
};

/// A sharded serving deployment: the graph is split once at load with the
/// `PartitionGraph` fragment builder (d = the rule set's locality radius,
/// so G_d of every owned center lies inside its shard's `GraphView` slice)
/// into `num_shards` `RuleServer` shards, each answering for its owned
/// centers only. This thin router scatters a request by center ownership,
/// gathers the matches, and — for `all_centers` requests — assembles the
/// global supports and confidences from the per-shard partial sums, which
/// is exact because center ownership is disjoint (the paper's summable
/// local supports, Section 5.1).
///
/// Deltas (inserts and deletes) are applied to the shared parent CSR once,
/// then shipped to every shard as one serialized `GraphDelta` batch
/// (`common/binary_io` framing — v2 frames when the batch deletes) rather
/// than k graph snapshots; each shard re-derives its own invalidation and
/// view extension from the batch. Deletions shrink neighborhoods, so a
/// shard's view may become a strict superset of its owned centers' N_d
/// balls — still exact for view-restricted matching (see
/// `RuleServer::ApplyShardDelta`).
///
/// Thread-safety: as `ServeSession` — any number of concurrent `Query`
/// calls, concurrent with at most the internal serialization of
/// `ApplyDelta`. Shards swap snapshots independently, so a query racing a
/// delta may observe it on some shards and not others (per-shard snapshot
/// consistency; the delta becomes globally visible when `ApplyDelta`
/// returns).
class ShardedRuleServer : public ServeSession {
 public:
  /// Loads a snapshot pair (see `RuleServer::Load`) and partitions it.
  static Result<std::unique_ptr<ShardedRuleServer>> Load(
      const std::string& graph_snapshot_path,
      const std::string& rules_snapshot_path,
      const ShardedRuleServerOptions& options = {});

  static Result<std::unique_ptr<ShardedRuleServer>> Create(
      Graph g, std::vector<RuleRecord> rules,
      const ShardedRuleServerOptions& options = {});

  /// Crash recovery: loads the snapshot pair, then attaches the journal at
  /// `journal_path` — replaying its valid frame prefix through the normal
  /// ship path, so the rebuilt deployment is result-identical to one that
  /// applied those deltas and never crashed.
  static Result<std::unique_ptr<ShardedRuleServer>> Recover(
      const std::string& graph_snapshot_path,
      const std::string& rules_snapshot_path,
      const std::string& journal_path,
      const ShardedRuleServerOptions& options = {},
      const DeltaJournalOptions& journal_options = {},
      JournalReplayStats* replay = nullptr);

  ShardedRuleServer(const ShardedRuleServer&) = delete;
  ShardedRuleServer& operator=(const ShardedRuleServer&) = delete;

  // ---- ServeSession ----

  Result<SessionReply> Query(const SessionRequest& request) override;
  Result<DeltaStats> ApplyDelta(const GraphDelta& delta) override;
  Status AttachJournal(const std::string& path,
                       const DeltaJournalOptions& options = {},
                       JournalReplayStats* replay = nullptr) override;
  Status Checkpoint(const std::string& graph_snapshot_path) override;
  std::shared_ptr<const Graph> graph_snapshot() const override;
  /// The currently served rule set. The reference stays valid until the
  /// next maintenance refresh publishes a different set; callers racing
  /// refreshes should copy (or hold `AcquireRecords`-style snapshots —
  /// queries do internally).
  const std::vector<RuleRecord>& rules() const override
      GPAR_EXCLUDES(graph_mu_);
  const std::vector<NodeId>& candidates() const override {
    return candidates_;
  }
  LabelId InternLabel(std::string_view name) override {
    return interner_->Intern(name);
  }
  /// Router-level lifetime stats (one request per `Query`; per-shard stats
  /// live on the shards — see `shard()`).
  ServeStats lifetime_stats() const override;

  // ---- Introspection ----

  uint32_t num_shards() const noexcept {
    return static_cast<uint32_t>(shards_.size());
  }
  const RuleServer& shard(uint32_t i) const noexcept { return *shards_[i]; }
  /// Shard owning `center`, or `num_shards()` when it is not a candidate.
  uint32_t OwnerOf(NodeId center) const;
  /// Sequence number stamped on the next shipped delta batch minus one.
  uint64_t delta_sequence() const GPAR_EXCLUDES(graph_mu_);
  /// Shards currently behind `delta_sequence()` (they answer no queries —
  /// the router degrades around them — until a resync catches them up).
  size_t lagging_shards() const GPAR_EXCLUDES(graph_mu_);
  bool journal_attached() const GPAR_EXCLUDES(writer_mu_);

  /// Replays the frames a lagging shard missed — from the attached
  /// journal when possible, else from the in-memory pending tail — merged
  /// into one catch-up batch shipped with the current parent graph. Safe
  /// because a lagging shard serves nothing until it is current again, so
  /// it never exposes an intermediate state. Called automatically at the
  /// top of every `ApplyDelta`; public so operators (and tests) can heal a
  /// deployment without waiting for the next delta. Returns the first
  /// resync failure, with the still-lagging shards left lagging.
  Status ResyncLaggingShards() GPAR_EXCLUDES(writer_mu_);

  // ---- Incremental rule maintenance ----

  /// Switches the deployment into maintain-on-ApplyDelta mode: seeds a
  /// `RuleMaintainer` on the PARENT graph (shards only see fragment views)
  /// and serves its top-k from here on. Every later delta runs a
  /// maintenance pass after the ship and, when the top-k changed, pushes
  /// the refreshed set to every healthy shard (`RuleServer::UpdateRules`)
  /// and republishes the router's records. The maintained radius
  /// `options.mine.d` must not exceed the partition radius the fragments
  /// were cut for — deeper rules could not be matched shard-locally.
  /// A rule refresh is atomic per shard but briefly heterogeneous across
  /// shards, like deltas (per-shard snapshot consistency).
  Status EnableMaintenance(const MaintainOptions& options)
      GPAR_EXCLUDES(writer_mu_);
  bool maintenance_enabled() const GPAR_EXCLUDES(writer_mu_);
  /// Accumulated maintenance-pass stats (zero when maintenance is off).
  MaintainStats maintain_stats() const GPAR_EXCLUDES(writer_mu_);

 private:
  explicit ShardedRuleServer(const ShardedRuleServerOptions& options);

  Result<SessionReply> QueryPoint(const SessionRequest& request,
                                  const std::vector<uint32_t>& selected);
  Result<SessionReply> QueryAll(const SessionRequest& request,
                                const std::vector<uint32_t>& selected);
  /// The body of `ApplyDelta`. `journal` is false on the replay path;
  /// `replay_sequence`, when nonzero, pins the batch's sequence to a
  /// journaled frame's instead of stamping the next one.
  Result<DeltaStats> ApplyDeltaLocked(const GraphDelta& delta, bool journal,
                                      uint64_t replay_sequence)
      GPAR_REQUIRES(writer_mu_);
  Status ResyncLaggingShardsLocked() GPAR_REQUIRES(writer_mu_);
  /// Runs `call` under the retry policy: transient failures back off
  /// (doubling, bounded by `deadline_seconds` on `timer` when positive)
  /// and retry up to `max_shard_retries` times, counting into `retries`.
  Status CallWithRetry(const std::function<Status()>& call,
                       double deadline_seconds, const Timer& timer,
                       uint64_t* retries) const;
  /// Pins the current record set (shared, immutable) for one request, so a
  /// racing maintenance refresh can never resize it mid-merge.
  std::shared_ptr<const std::vector<RuleRecord>> AcquireRecords() const
      GPAR_EXCLUDES(graph_mu_);
  /// Runs the maintenance pass for one applied batch and, when the top-k
  /// changed, publishes the refreshed set router-side and pushes it to
  /// every shard that acked the batch. Push failures leave those shards on
  /// the previous set (the next refresh retries — the compare is against
  /// the router's records) and are reported in `ds->rules_refreshed` only
  /// through the router's own publish.
  Status MaintainAfterShip(const Graph& old_graph,
                           std::shared_ptr<const Graph> new_graph,
                           const GraphDelta& wire, DeltaStats* ds)
      GPAR_REQUIRES(writer_mu_);

  ShardedRuleServerOptions options_;
  std::shared_ptr<Interner> interner_;
  /// The served rule set, RCU-style: replaced wholesale by a maintenance
  /// refresh, never mutated in place.
  std::shared_ptr<const std::vector<RuleRecord>> records_
      GPAR_GUARDED_BY(graph_mu_);
  Predicate q_{};           ///< the rule set's predicate q(x, y)
  uint32_t partition_d_ = 0;  ///< radius the fragments were cut for
  std::vector<NodeId> candidates_;  ///< all candidate centers, sorted
  std::vector<uint32_t> owner_;     ///< parallel to candidates_
  /// Fixed for the server's lifetime (deltas mutate edges, never the node
  /// set), so point-query validation needn't take `graph_mu_`.
  NodeId num_nodes_ = 0;
  std::vector<std::unique_ptr<RuleServer>> shards_;
  /// Scatter/ship pool — deliberately separate from the shards' matching
  /// pools: a router task blocks on a shard's `Query`, and blocking waits
  /// must never share a pool with the tasks they wait for.
  std::unique_ptr<ThreadPool> router_pool_;

  mutable Mutex graph_mu_;
  std::shared_ptr<const Graph> graph_ GPAR_GUARDED_BY(graph_mu_);
  /// Serializes ApplyDelta / AttachJournal / Checkpoint / resync.
  mutable Mutex writer_mu_;
  uint64_t delta_sequence_ GPAR_GUARDED_BY(graph_mu_) = 0;
  /// Per-shard last acknowledged batch sequence. A shard is healthy iff
  /// its entry equals `delta_sequence_`; queries route around the rest.
  std::vector<uint64_t> shard_acked_ GPAR_GUARDED_BY(graph_mu_);
  /// Attach-journal mode: batches are appended here (applied mutations,
  /// stamped sequence) BEFORE being shipped to any shard.
  std::unique_ptr<DeltaJournal> journal_ GPAR_GUARDED_BY(writer_mu_);
  /// Recent shipped batches kept in memory for journal-free resync (and
  /// for frames a compaction already dropped from the journal). Pruned
  /// once every shard has acked; capped — a shard that lags past the cap
  /// with no journal coverage stays degraded until the process restarts.
  struct PendingFrame {
    uint64_t sequence = 0;
    GraphDelta delta;
  };
  std::deque<PendingFrame> pending_ GPAR_GUARDED_BY(writer_mu_);
  /// Maintain-on-ApplyDelta mode: router-level maintainer on the parent
  /// graph; passes run under the writer lock, after the ship.
  std::unique_ptr<RuleMaintainer> maintainer_ GPAR_GUARDED_BY(writer_mu_);

  /// Lifetime counters are lock-free (relaxed atomics; latency in
  /// microseconds): the router adds one entry per request, and a shared
  /// mutex here would serialize otherwise shard-disjoint hot paths.
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_probes{0};
    std::atomic<uint64_t> centers_evaluated{0};
    std::atomic<uint64_t> shards_failed{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> latency_micros{0};
  };
  AtomicStats lifetime_;

  void RecordRequest(const ServeStats& stats);
};

}  // namespace gpar

#endif  // GPAR_SERVE_SHARDED_RULE_SERVER_H_
