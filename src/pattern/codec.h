#ifndef GPAR_PATTERN_CODEC_H_
#define GPAR_PATTERN_CODEC_H_

#include <string>

#include "common/result.h"
#include "pattern/pattern.h"

namespace gpar {

/// Parses the line format emitted by `Pattern::ToString`:
/// ```
/// n <id> <label> [*<multiplicity>] [x] [y]
/// e <src> <dst> <label>
/// ```
/// Ids must be dense in declaration order; labels are interned through
/// `labels`. Blank lines and `#` comments are ignored.
Result<Pattern> ParsePattern(const std::string& text, Interner* labels);

/// Serializes `p` to the same format (alias of Pattern::ToString, provided
/// for symmetry with ParsePattern).
std::string SerializePattern(const Pattern& p, const Interner& labels);

}  // namespace gpar

#endif  // GPAR_PATTERN_CODEC_H_
