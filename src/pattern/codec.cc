#include "pattern/codec.h"

#include <sstream>
#include <string>
#include <vector>

namespace gpar {

Result<Pattern> ParsePattern(const std::string& text, Interner* labels) {
  Pattern p;
  std::istringstream is(text);
  std::string line;
  size_t lineno = 0;
  bool saw_x = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'n') {
      uint64_t id;
      std::string label;
      if (!(ls >> id >> label)) {
        return Status::Corruption("bad pattern node line " +
                                  std::to_string(lineno));
      }
      if (id != p.num_nodes()) {
        return Status::Corruption("non-dense pattern node id at line " +
                                  std::to_string(lineno));
      }
      uint32_t mult = 1;
      std::string tok;
      bool is_x = false, is_y = false;
      while (ls >> tok) {
        if (tok.size() > 1 && tok[0] == '*') {
          mult = static_cast<uint32_t>(std::stoul(tok.substr(1)));
        } else if (tok == "x") {
          is_x = true;
        } else if (tok == "y") {
          is_y = true;
        } else {
          return Status::Corruption("unknown node attribute '" + tok +
                                    "' at line " + std::to_string(lineno));
        }
      }
      PNodeId u = p.AddNode(labels->Intern(label), mult);
      if (is_x) {
        p.set_x(u);
        saw_x = true;
      }
      if (is_y) p.set_y(u);
    } else if (kind == 'e') {
      uint64_t src, dst;
      std::string label;
      if (!(ls >> src >> dst >> label)) {
        return Status::Corruption("bad pattern edge line " +
                                  std::to_string(lineno));
      }
      if (src >= p.num_nodes() || dst >= p.num_nodes()) {
        return Status::Corruption("pattern edge endpoint out of range at line " +
                                  std::to_string(lineno));
      }
      p.AddEdge(static_cast<PNodeId>(src), labels->Intern(label),
                static_cast<PNodeId>(dst));
    } else {
      return Status::Corruption("unknown pattern record at line " +
                                std::to_string(lineno));
    }
  }
  if (p.num_nodes() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  (void)saw_x;  // x defaults to node 0 when unmarked, matching ToString.
  return p;
}

std::string SerializePattern(const Pattern& p, const Interner& labels) {
  return p.ToString(labels);
}

}  // namespace gpar
