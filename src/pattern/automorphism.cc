#include "pattern/automorphism.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "pattern/pattern_ops.h"

namespace gpar {

bool AreIsomorphic(const Pattern& a, const Pattern& b,
                   bool preserve_designated) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  // An injective embedding between equal-sized patterns with equal edge
  // counts is a bijection covering all edges (edge mapping is injective by
  // construction and every a-edge must be present).
  if (preserve_designated) {
    if (a.has_y() != b.has_y()) return false;
  }
  return IsSubsumedBy(a, b, preserve_designated) &&
         IsSubsumedBy(b, a, preserve_designated);
}

std::string IsomorphismBucketKey(const Pattern& p) {
  // Invariants preserved by designated-preserving isomorphism: per-node
  // (label, multiplicity, out-degree, in-degree) multiset, edge label
  // triple multiset, and the invariant tuples of x and y themselves.
  std::vector<std::string> node_keys;
  node_keys.reserve(p.num_nodes());
  auto node_key = [&](PNodeId u) {
    size_t out_deg = 0, in_deg = 0;
    for (const PatternAdj& e : p.adj(u)) {
      if (e.out) ++out_deg; else ++in_deg;
    }
    std::ostringstream os;
    os << p.node(u).label << ':' << p.node(u).multiplicity << ':' << out_deg
       << ':' << in_deg;
    return os.str();
  };
  for (PNodeId u = 0; u < p.num_nodes(); ++u) node_keys.push_back(node_key(u));

  std::ostringstream os;
  os << "x=" << node_keys[p.x()];
  os << ";y=" << (p.has_y() ? node_keys[p.y()] : "-");
  std::vector<std::string> sorted_nodes = node_keys;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  os << ";V=";
  for (const std::string& k : sorted_nodes) os << k << ',';
  std::vector<std::string> edge_keys;
  edge_keys.reserve(p.num_edges());
  for (const PatternEdge& e : p.edges()) {
    std::ostringstream ek;
    ek << p.node(e.src).label << '-' << e.label << '>' << p.node(e.dst).label;
    edge_keys.push_back(ek.str());
  }
  std::sort(edge_keys.begin(), edge_keys.end());
  os << ";E=";
  for (const std::string& k : edge_keys) os << k << ',';
  return os.str();
}

uint64_t IsomorphismBucketHash(const Pattern& p) {
  // Per-node invariant: (label, multiplicity, out-degree, in-degree) folded
  // into one 64-bit value. Isomorphism permutes nodes, so only the *multiset*
  // of these values (plus x's and y's own values) may be mixed in — sort
  // before folding.
  std::vector<uint64_t> node_inv(p.num_nodes());
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    uint64_t out_deg = 0, in_deg = 0;
    for (const PatternAdj& e : p.adj(u)) {
      if (e.out) ++out_deg; else ++in_deg;
    }
    uint64_t h = kFnvOffsetBasis;
    h = FnvMix(h, p.node(u).label);
    h = FnvMix(h, p.node(u).multiplicity);
    h = FnvMix(h, out_deg);
    h = FnvMix(h, in_deg);
    node_inv[u] = h;
  }

  uint64_t h = kFnvOffsetBasis;
  h = FnvMix(h, p.num_nodes());
  h = FnvMix(h, p.num_edges());
  h = FnvMix(h, node_inv[p.x()]);
  h = FnvMix(h, p.has_y() ? 1 : 0);
  if (p.has_y()) h = FnvMix(h, node_inv[p.y()]);

  std::vector<uint64_t> sorted_nodes = node_inv;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  for (uint64_t v : sorted_nodes) h = FnvMix(h, v);

  // Edge invariant: the (src-label, edge-label, dst-label) triple multiset.
  std::vector<uint64_t> edge_inv;
  edge_inv.reserve(p.num_edges());
  for (const PatternEdge& e : p.edges()) {
    uint64_t eh = kFnvOffsetBasis;
    eh = FnvMix(eh, p.node(e.src).label);
    eh = FnvMix(eh, e.label);
    eh = FnvMix(eh, p.node(e.dst).label);
    edge_inv.push_back(eh);
  }
  std::sort(edge_inv.begin(), edge_inv.end());
  for (uint64_t v : edge_inv) h = FnvMix(h, v);
  return h;
}

}  // namespace gpar
