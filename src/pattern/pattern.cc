#include "pattern/pattern.h"

#include <cassert>
#include <sstream>

namespace gpar {

PNodeId Pattern::AddNode(LabelId label, uint32_t multiplicity) {
  assert(multiplicity >= 1);
  nodes_.push_back({label, multiplicity});
  adj_.emplace_back();
  return static_cast<PNodeId>(nodes_.size() - 1);
}

void Pattern::AddEdge(PNodeId src, LabelId label, PNodeId dst) {
  assert(src < nodes_.size() && dst < nodes_.size());
  edges_.push_back({src, dst, label});
  adj_[src].push_back({label, dst, /*out=*/true});
  if (src != dst) adj_[dst].push_back({label, src, /*out=*/false});
}

bool Pattern::has_multiplicities() const {
  for (const PatternNode& n : nodes_) {
    if (n.multiplicity > 1) return true;
  }
  return false;
}

Pattern Pattern::ExpandMultiplicities(std::vector<PNodeId>* first_copy_out) const {
  if (!has_multiplicities()) {
    if (first_copy_out != nullptr) {
      first_copy_out->resize(nodes_.size());
      for (PNodeId u = 0; u < nodes_.size(); ++u) (*first_copy_out)[u] = u;
    }
    return *this;
  }
  assert(nodes_[x_].multiplicity == 1);
  assert(!has_y() || nodes_[y_].multiplicity == 1);

  Pattern out;
  // first_copy[u] = id of u's first copy in `out`; copies are contiguous.
  std::vector<PNodeId> first_copy(nodes_.size());
  for (PNodeId u = 0; u < nodes_.size(); ++u) {
    first_copy[u] = out.num_nodes();
    for (uint32_t c = 0; c < nodes_[u].multiplicity; ++c) {
      out.AddNode(nodes_[u].label, 1);
    }
  }
  for (const PatternEdge& e : edges_) {
    // Every copy of src links to every copy of dst ("associated links in
    // the common neighborhood"). For the typical case one side has
    // multiplicity 1, reproducing Q1's three like-edges to FR^3.
    for (uint32_t cs = 0; cs < nodes_[e.src].multiplicity; ++cs) {
      for (uint32_t cd = 0; cd < nodes_[e.dst].multiplicity; ++cd) {
        out.AddEdge(first_copy[e.src] + cs, e.label, first_copy[e.dst] + cd);
      }
    }
  }
  out.set_x(first_copy[x_]);
  if (has_y()) out.set_y(first_copy[y_]);
  if (first_copy_out != nullptr) *first_copy_out = first_copy;
  return out;
}

std::string Pattern::ToString(const Interner& labels) const {
  std::ostringstream os;
  for (PNodeId u = 0; u < nodes_.size(); ++u) {
    os << "n " << u << ' ' << labels.Name(nodes_[u].label);
    if (nodes_[u].multiplicity > 1) os << " *" << nodes_[u].multiplicity;
    if (u == x_) os << " x";
    if (u == y_) os << " y";
    os << '\n';
  }
  for (const PatternEdge& e : edges_) {
    os << "e " << e.src << ' ' << e.dst << ' ' << labels.Name(e.label)
       << '\n';
  }
  return os.str();
}

bool operator==(const Pattern& a, const Pattern& b) {
  if (a.x_ != b.x_ || a.y_ != b.y_) return false;
  if (a.nodes_.size() != b.nodes_.size()) return false;
  for (size_t i = 0; i < a.nodes_.size(); ++i) {
    if (a.nodes_[i].label != b.nodes_[i].label ||
        a.nodes_[i].multiplicity != b.nodes_[i].multiplicity) {
      return false;
    }
  }
  return a.edges_ == b.edges_;
}

}  // namespace gpar
