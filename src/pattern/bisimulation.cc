#include "pattern/bisimulation.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace gpar {

namespace {

/// Partition refinement over the disjoint union of two patterns (the second
/// may be empty). Signature of a node = (label, sorted set of
/// (edge label, color of out-neighbor)). Refines until stable.
///
/// Bisimulation per the paper is forward-only (out-edges), so in-edges do
/// not contribute to the signature.
std::vector<uint32_t> RefineUnion(const Pattern& a, const Pattern* b) {
  const uint32_t na = a.num_nodes();
  const uint32_t nb = (b != nullptr) ? b->num_nodes() : 0;
  const uint32_t n = na + nb;

  auto label_of = [&](uint32_t u) {
    return u < na ? a.node(u).label : b->node(u - na).label;
  };
  auto out_edges_of = [&](uint32_t u) {
    std::vector<std::pair<LabelId, uint32_t>> out;
    if (u < na) {
      for (const PatternAdj& e : a.adj(u)) {
        if (e.out) out.emplace_back(e.elabel, e.other);
      }
    } else {
      for (const PatternAdj& e : b->adj(u - na)) {
        if (e.out) out.emplace_back(e.elabel, e.other + na);
      }
    }
    return out;
  };

  // Initial colors by node label.
  std::vector<uint32_t> color(n);
  {
    std::map<LabelId, uint32_t> first;
    uint32_t next = 0;
    for (uint32_t u = 0; u < n; ++u) {
      auto [it, inserted] = first.emplace(label_of(u), next);
      if (inserted) ++next;
      color[u] = it->second;
    }
  }

  // Refine: signature = (color, set of (elabel, target color)).
  for (;;) {
    using Sig = std::pair<uint32_t, std::set<std::pair<LabelId, uint32_t>>>;
    std::map<Sig, uint32_t> sig_color;
    std::vector<uint32_t> next_color(n);
    uint32_t next = 0;
    for (uint32_t u = 0; u < n; ++u) {
      Sig sig;
      sig.first = color[u];
      for (const auto& [el, v] : out_edges_of(u)) {
        sig.second.emplace(el, color[v]);
      }
      auto [it, inserted] = sig_color.emplace(std::move(sig), next);
      if (inserted) ++next;
      next_color[u] = it->second;
    }
    if (next_color == color) break;
    color = std::move(next_color);
  }
  return color;
}

}  // namespace

std::vector<uint32_t> BisimulationColors(const Pattern& p) {
  return RefineUnion(p, nullptr);
}

bool AreBisimilar(const Pattern& a, const Pattern& b) {
  const uint32_t na = a.num_nodes();
  const uint32_t nb = b.num_nodes();
  std::vector<uint32_t> color = RefineUnion(a, &b);
  // Every equivalence class touched by one pattern must be inhabited by the
  // other, in both directions.
  std::set<uint32_t> in_a, in_b;
  for (uint32_t u = 0; u < na; ++u) in_a.insert(color[u]);
  for (uint32_t u = 0; u < nb; ++u) in_b.insert(color[na + u]);
  return in_a == in_b;
}

bool AreBisimilarDesignated(const Pattern& a, const Pattern& b) {
  if (!AreBisimilar(a, b)) return false;
  if (a.has_y() != b.has_y()) return false;
  std::vector<uint32_t> color = RefineUnion(a, &b);
  const uint32_t na = a.num_nodes();
  if (color[a.x()] != color[na + b.x()]) return false;
  if (a.has_y() && color[a.y()] != color[na + b.y()]) return false;
  return true;
}

}  // namespace gpar
