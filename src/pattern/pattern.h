#ifndef GPAR_PATTERN_PATTERN_H_
#define GPAR_PATTERN_PATTERN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/interner.h"

namespace gpar {

/// Index of a pattern node within a Pattern.
using PNodeId = uint32_t;
inline constexpr PNodeId kNoPatternNode = static_cast<PNodeId>(-1);

/// A pattern node: a search-condition label plus the paper's succinct
/// multiplicity annotation C(u) = k ("k copies of u with the same label and
/// associated links in the common neighborhood", Section 2.1).
struct PatternNode {
  LabelId label;
  uint32_t multiplicity = 1;
};

/// A directed labeled pattern edge.
struct PatternEdge {
  PNodeId src;
  PNodeId dst;
  LabelId label;

  friend bool operator==(const PatternEdge&, const PatternEdge&) = default;
};

/// One adjacency record of a pattern node: the incident edge seen from this
/// node's perspective.
struct PatternAdj {
  LabelId elabel;
  PNodeId other;
  bool out;  ///< true if the edge leaves this node
};

/// A pattern query Q = (Vp, Ep, f, C) with up to two designated nodes x and
/// y (Section 2.1/2.2). Patterns are small (a handful of nodes); the
/// representation favours simplicity: adjacency lists are kept in sync on
/// every AddEdge.
///
/// Node labels are `LabelId`s interned through the same dictionary as the
/// graph the pattern will be matched against.
class Pattern {
 public:
  Pattern() = default;

  PNodeId AddNode(LabelId label, uint32_t multiplicity = 1);
  void AddEdge(PNodeId src, LabelId label, PNodeId dst);

  PNodeId num_nodes() const { return static_cast<PNodeId>(nodes_.size()); }
  size_t num_edges() const { return edges_.size(); }
  const PatternNode& node(PNodeId u) const { return nodes_[u]; }
  const PatternEdge& edge(size_t i) const { return edges_[i]; }
  std::span<const PatternEdge> edges() const { return edges_; }
  std::span<const PatternAdj> adj(PNodeId u) const { return adj_[u]; }

  /// Designated node x (the "potential customer"); defaults to node 0.
  PNodeId x() const { return x_; }
  void set_x(PNodeId u) { x_ = u; }
  /// Designated node y, or kNoPatternNode when unset.
  PNodeId y() const { return y_; }
  void set_y(PNodeId u) { y_ = u; }
  bool has_y() const { return y_ != kNoPatternNode; }

  /// True iff some node carries a multiplicity > 1.
  bool has_multiplicities() const;

  /// Returns an equivalent pattern where every C(u) = k annotation is
  /// expanded into k copies of u with duplicated incident edges. Designated
  /// nodes must have multiplicity 1 (checked). Matching always operates on
  /// the expanded form: injectivity of subgraph isomorphism then forces the
  /// k copies onto k distinct graph nodes (Example 2/3 counting).
  ///
  /// If `first_copy` is non-null it receives, for every original node, the
  /// id of its first copy in the expanded pattern (used to translate
  /// anchors).
  Pattern ExpandMultiplicities(std::vector<PNodeId>* first_copy = nullptr) const;

  /// Human-readable rendering using `labels` for names.
  std::string ToString(const Interner& labels) const;

  friend bool operator==(const Pattern& a, const Pattern& b);

 private:
  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<PatternAdj>> adj_;
  PNodeId x_ = 0;
  PNodeId y_ = kNoPatternNode;
};

}  // namespace gpar

#endif  // GPAR_PATTERN_PATTERN_H_
