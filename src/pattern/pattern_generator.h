#ifndef GPAR_PATTERN_PATTERN_GENERATOR_H_
#define GPAR_PATTERN_PATTERN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "rule/gpar.h"

namespace gpar {

/// Options for the GPAR workload generator (the paper's "pattern generator",
/// Section 6: GPARs controlled by |Vp| and |Ep| with labels drawn from the
/// data).
struct GparGenOptions {
  uint32_t num_nodes = 5;   ///< |Vp| including x and y
  uint32_t num_edges = 8;   ///< |Ep| including the consequent edge
  uint32_t max_radius = 2;  ///< r(P_R, x) bound
  uint64_t seed = 42;
};

/// Generates `count` distinct GPARs pertaining to `q` whose patterns are
/// *lifted from the graph*: each is grown by a random walk over the
/// d-neighborhood of an actual q-match, so every generated GPAR has
/// supp(R, G) >= 1 (the generated workloads are "meaningful", like the 48
/// hand-picked GPARs in the paper's evaluation). Returns fewer than `count`
/// if the graph cannot support that many distinct patterns.
std::vector<Gpar> GenerateGparWorkload(const Graph& g, const Predicate& q,
                                       size_t count,
                                       const GparGenOptions& options);

}  // namespace gpar

#endif  // GPAR_PATTERN_PATTERN_GENERATOR_H_
