#ifndef GPAR_PATTERN_PATTERN_OPS_H_
#define GPAR_PATTERN_PATTERN_OPS_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"

namespace gpar {

inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);

/// Undirected BFS distances from `from`; kUnreachable for disconnected
/// nodes. Multiplicity copies are treated as the single annotated node.
std::vector<uint32_t> DistancesFrom(const Pattern& p, PNodeId from);

/// r(Q, x): the longest undirected distance from `from` to any node
/// (Section 2.1). Returns kUnreachable if the pattern is disconnected.
uint32_t Radius(const Pattern& p, PNodeId from);

/// True iff the pattern is connected (undirected reachability).
bool IsConnected(const Pattern& p);

/// FNV-1a mixing primitives shared by the pattern hashes (StructuralHash
/// here, IsomorphismBucketHash in automorphism.h) and by callers that fold
/// several pattern hashes into one key.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;
inline uint64_t FnvMix(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

/// Structural FNV-1a hash over nodes, edges, and designated nodes. Equal
/// patterns (operator==) hash equal; collisions must be resolved by exact
/// equality in the consuming cache bucket. Shared by the matchers' pattern
/// caches (guided sketches, search plans) and by DMine's worker candidate
/// proposals (the per-extension checksum in CandidateProposal). Not
/// isomorphism-invariant — node ids participate; use IsomorphismBucketHash
/// for iso-stable bucketing.
uint64_t StructuralHash(const Pattern& p);

/// True iff there is an injective, label- and edge-preserving embedding of
/// `sub` into `super`. With `anchor_designated`, sub's x must map to
/// super's x (and sub's y to super's y when both are set). This decides
/// pattern subsumption Q' ⊑ Q up to renaming of node ids.
bool IsSubsumedBy(const Pattern& sub, const Pattern& super,
                  bool anchor_designated);

/// An extension step used by pattern growth: attach a new edge to `at`
/// (forward: new node labeled `other_label`; backward: existing node
/// `existing`).
struct Extension {
  PNodeId at;             ///< existing pattern node the edge touches
  bool out;               ///< edge direction seen from `at`
  LabelId edge_label;
  LabelId other_label;    ///< label of the new node (forward extensions)
  PNodeId existing = kNoPatternNode;  ///< set for backward extensions

  friend bool operator==(const Extension&, const Extension&) = default;
};

/// Returns a copy of `p` with the extension applied.
Pattern ApplyExtension(const Pattern& p, const Extension& ext);

}  // namespace gpar

#endif  // GPAR_PATTERN_PATTERN_OPS_H_
