#include "pattern/pattern_ops.h"

#include <algorithm>
#include <deque>

namespace gpar {

std::vector<uint32_t> DistancesFrom(const Pattern& p, PNodeId from) {
  std::vector<uint32_t> dist(p.num_nodes(), kUnreachable);
  std::deque<PNodeId> frontier{from};
  dist[from] = 0;
  while (!frontier.empty()) {
    PNodeId u = frontier.front();
    frontier.pop_front();
    for (const PatternAdj& a : p.adj(u)) {
      if (dist[a.other] == kUnreachable) {
        dist[a.other] = dist[u] + 1;
        frontier.push_back(a.other);
      }
    }
  }
  return dist;
}

uint32_t Radius(const Pattern& p, PNodeId from) {
  std::vector<uint32_t> dist = DistancesFrom(p, from);
  uint32_t r = 0;
  for (uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    r = std::max(r, d);
  }
  return r;
}

bool IsConnected(const Pattern& p) {
  if (p.num_nodes() == 0) return true;
  return Radius(p, 0) != kUnreachable;
}

uint64_t StructuralHash(const Pattern& p) {
  uint64_t h = kFnvOffsetBasis;
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    h = FnvMix(h, p.node(u).label);
    h = FnvMix(h, p.node(u).multiplicity);
  }
  for (const PatternEdge& e : p.edges()) {
    h = FnvMix(h, e.src);
    h = FnvMix(h, e.dst);
    h = FnvMix(h, e.label);
  }
  h = FnvMix(h, p.x());
  h = FnvMix(h, p.y());
  return h;
}

namespace {

/// Backtracking embedding of `sub` into `super` (both tiny).
bool EmbedFrom(const Pattern& sub, const Pattern& super, size_t next,
               std::vector<PNodeId>& map, std::vector<bool>& used,
               const std::vector<PNodeId>& order) {
  if (next == order.size()) return true;
  PNodeId u = order[next];
  for (PNodeId v = 0; v < super.num_nodes(); ++v) {
    if (used[v]) continue;
    if (map[u] != kNoPatternNode && map[u] != v) continue;
    if (sub.node(u).label != super.node(v).label) continue;
    if (sub.node(u).multiplicity > super.node(v).multiplicity) continue;
    // All sub-edges between u and already-mapped nodes must exist in super.
    bool ok = true;
    for (const PatternAdj& a : sub.adj(u)) {
      if (map[a.other] == kNoPatternNode && a.other != u) continue;
      PNodeId w = (a.other == u) ? v : map[a.other];
      PNodeId s = a.out ? v : w;
      PNodeId t = a.out ? w : v;
      bool found = false;
      for (const PatternEdge& e : super.edges()) {
        if (e.src == s && e.dst == t && e.label == a.elabel) {
          found = true;
          break;
        }
      }
      if (!found) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    PNodeId saved = map[u];
    map[u] = v;
    used[v] = true;
    if (EmbedFrom(sub, super, next + 1, map, used, order)) return true;
    used[v] = false;
    map[u] = saved;
  }
  return false;
}

}  // namespace

bool IsSubsumedBy(const Pattern& sub, const Pattern& super,
                  bool anchor_designated) {
  if (sub.num_nodes() > super.num_nodes()) return false;
  if (sub.num_edges() > super.num_edges()) return false;
  std::vector<PNodeId> map(sub.num_nodes(), kNoPatternNode);
  std::vector<bool> used(super.num_nodes(), false);
  std::vector<PNodeId> order;
  order.reserve(sub.num_nodes());
  if (anchor_designated) {
    if (sub.node(sub.x()).label != super.node(super.x()).label) return false;
    map[sub.x()] = super.x();
    if (sub.has_y()) {
      if (!super.has_y()) return false;
      if (sub.x() != sub.y()) map[sub.y()] = super.y();
    }
  }
  // Order: pre-anchored nodes first, then the rest.
  for (PNodeId u = 0; u < sub.num_nodes(); ++u) {
    if (map[u] != kNoPatternNode) order.push_back(u);
  }
  for (PNodeId u = 0; u < sub.num_nodes(); ++u) {
    if (map[u] == kNoPatternNode) order.push_back(u);
  }
  // Mark anchored targets used.
  for (PNodeId u = 0; u < sub.num_nodes(); ++u) {
    if (map[u] != kNoPatternNode) used[map[u]] = true;
  }
  // Anchored nodes are validated by EmbedFrom as they come first in order
  // (the candidate loop only accepts v == map[u] for them).
  for (PNodeId u = 0; u < sub.num_nodes(); ++u) {
    if (map[u] != kNoPatternNode) used[map[u]] = false;
  }
  return EmbedFrom(sub, super, 0, map, used, order);
}

Pattern ApplyExtension(const Pattern& p, const Extension& ext) {
  Pattern out = p;
  PNodeId other = ext.existing;
  if (other == kNoPatternNode) {
    other = out.AddNode(ext.other_label, 1);
  }
  if (ext.out) {
    out.AddEdge(ext.at, ext.edge_label, other);
  } else {
    out.AddEdge(other, ext.edge_label, ext.at);
  }
  return out;
}

}  // namespace gpar
