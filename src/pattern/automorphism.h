#ifndef GPAR_PATTERN_AUTOMORPHISM_H_
#define GPAR_PATTERN_AUTOMORPHISM_H_

#include <cstdint>
#include <string>

#include "pattern/pattern.h"

namespace gpar {

/// True iff there is a bijection between the nodes of `a` and `b` that
/// preserves node labels, multiplicities, and labeled edges. With
/// `preserve_designated`, the bijection must also map a.x -> b.x and
/// a.y -> b.y. This is the exact test behind DMine's "automorphic GPAR"
/// grouping (the paper calls isomorphic candidate patterns automorphic
/// because they denote the same rule).
bool AreIsomorphic(const Pattern& a, const Pattern& b,
                   bool preserve_designated);

/// A cheap grouping key: patterns that are isomorphic (designated-preserving)
/// always share the same key. Used to bucket candidates before pairwise
/// bisimulation / isomorphism tests, and by tests as a human-readable rule
/// fingerprint.
std::string IsomorphismBucketKey(const Pattern& p);

/// 64-bit counterpart of IsomorphismBucketKey over the same invariants
/// (per-node label/multiplicity/degree multiset, edge label-triple multiset,
/// the invariants of x and y): isomorphic (designated-preserving) patterns
/// always hash equal, with no string materialization. Hash collisions
/// between non-isomorphic patterns merely co-bucket them — consumers run
/// the exact bisimulation/isomorphism tests within a bucket, so collisions
/// cost time, never correctness. This keys the DMine coordinator's
/// cross-fragment dedup buckets (`DedupCandidates`).
uint64_t IsomorphismBucketHash(const Pattern& p);

}  // namespace gpar

#endif  // GPAR_PATTERN_AUTOMORPHISM_H_
