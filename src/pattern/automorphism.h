#ifndef GPAR_PATTERN_AUTOMORPHISM_H_
#define GPAR_PATTERN_AUTOMORPHISM_H_

#include <cstdint>
#include <string>

#include "pattern/pattern.h"

namespace gpar {

/// True iff there is a bijection between the nodes of `a` and `b` that
/// preserves node labels, multiplicities, and labeled edges. With
/// `preserve_designated`, the bijection must also map a.x -> b.x and
/// a.y -> b.y. This is the exact test behind DMine's "automorphic GPAR"
/// grouping (the paper calls isomorphic candidate patterns automorphic
/// because they denote the same rule).
bool AreIsomorphic(const Pattern& a, const Pattern& b,
                   bool preserve_designated);

/// A cheap grouping key: patterns that are isomorphic (designated-preserving)
/// always share the same key. Used to bucket candidates before pairwise
/// bisimulation / isomorphism tests.
std::string IsomorphismBucketKey(const Pattern& p);

}  // namespace gpar

#endif  // GPAR_PATTERN_AUTOMORPHISM_H_
