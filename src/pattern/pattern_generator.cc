#include "pattern/pattern_generator.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "match/matcher.h"
#include "pattern/automorphism.h"
#include "pattern/pattern_ops.h"

namespace gpar {

namespace {

/// Lifts one pattern from the neighborhood of graph node `vx`: starts with
/// the consequent edge (vx, q, vy) and repeatedly copies a random incident
/// graph edge of an already-lifted node, keeping the radius bound.
bool LiftPattern(const Graph& g, const Predicate& q, NodeId vx, Rng& rng,
                 const GparGenOptions& opt, Pattern* out) {
  // Pick a valid consequent endpoint vy.
  auto q_edges = g.out_edges_labeled(vx, q.edge_label);
  std::vector<NodeId> vy_cands;
  for (const AdjEntry& e : q_edges) {
    if (g.node_label(e.other) == q.y_label) vy_cands.push_back(e.other);
  }
  if (vy_cands.empty()) return false;
  NodeId vy = vy_cands[rng.Uniform(vy_cands.size())];

  Pattern p;
  std::unordered_map<NodeId, PNodeId> lifted;  // graph node -> pattern node
  std::vector<NodeId> lifted_order;
  PNodeId px = p.AddNode(g.node_label(vx));
  PNodeId py = p.AddNode(g.node_label(vy));
  p.set_x(px);
  p.set_y(py);
  lifted[vx] = px;
  lifted[vy] = py;
  lifted_order = {vx, vy};

  // The antecedent must be nonempty and must not duplicate q(x, y); build
  // edges until targets are met or attempts run out.
  std::map<std::tuple<PNodeId, LabelId, PNodeId>, bool> have_edges;
  size_t edges_added = 0;
  const size_t edge_target = opt.num_edges > 0 ? opt.num_edges - 1 : 1;
  for (int attempt = 0; attempt < 200 && edges_added < edge_target;
       ++attempt) {
    NodeId src_g = lifted_order[rng.Uniform(lifted_order.size())];
    PNodeId src_p = lifted[src_g];
    // Choose a random incident edge (out or in) of src_g.
    size_t od = g.out_degree(src_g);
    size_t id = g.in_degree(src_g);
    if (od + id == 0) continue;
    size_t pick = rng.Uniform(od + id);
    bool out_dir = pick < od;
    AdjEntry e = out_dir ? g.out_edges(src_g)[pick]
                         : g.in_edges(src_g)[pick - od];
    NodeId other_g = e.other;

    auto it = lifted.find(other_g);
    const bool is_new = it == lifted.end();
    if (is_new && p.num_nodes() >= opt.num_nodes) continue;
    // A brand-new node cannot produce a duplicate edge; for existing nodes
    // check before mutating the pattern.
    PNodeId other_p = is_new ? p.num_nodes() : it->second;
    PNodeId es = out_dir ? src_p : other_p;
    PNodeId ed = out_dir ? other_p : src_p;
    if (!is_new) {
      if (have_edges.count({es, e.label, ed}) > 0) continue;
      if (es == px && ed == py && e.label == q.edge_label) continue;
    }
    if (is_new) {
      PNodeId added = p.AddNode(g.node_label(other_g));
      (void)added;
      lifted[other_g] = other_p;
      lifted_order.push_back(other_g);
    }
    p.AddEdge(es, e.label, ed);
    have_edges[{es, e.label, ed}] = true;
    ++edges_added;
  }
  if (edges_added == 0) return false;

  // Radius check on P_R.
  Pattern pr = p;
  pr.AddEdge(px, q.edge_label, py);
  if (!IsConnected(pr) || Radius(pr, px) > opt.max_radius) return false;
  *out = std::move(p);
  return true;
}

}  // namespace

std::vector<Gpar> GenerateGparWorkload(const Graph& g, const Predicate& q,
                                       size_t count,
                                       const GparGenOptions& options) {
  Rng rng(options.seed);
  std::vector<Gpar> out;
  std::map<std::string, std::vector<Pattern>> seen;

  // Candidate anchors: nodes with a valid consequent edge (q-matches).
  std::vector<NodeId> anchors;
  for (NodeId v : g.nodes_with_label(q.x_label)) {
    for (const AdjEntry& e : g.out_edges_labeled(v, q.edge_label)) {
      if (g.node_label(e.other) == q.y_label) {
        anchors.push_back(v);
        break;
      }
    }
  }
  if (anchors.empty()) return out;

  const size_t max_attempts = count * 50 + 100;
  for (size_t attempt = 0; attempt < max_attempts && out.size() < count;
       ++attempt) {
    NodeId vx = anchors[rng.Uniform(anchors.size())];
    Pattern p;
    if (!LiftPattern(g, q, vx, rng, options, &p)) continue;
    auto r = Gpar::Create(std::move(p), q.edge_label);
    if (!r.ok()) continue;
    // The radius bound applies to evaluation depth (P_R *and* the
    // antecedent's x-component): workloads must not force the EIP
    // partitioner into deeper-than-requested neighborhoods.
    if (r.value().eval_radius() > options.max_radius) continue;
    // Distinctness up to designated isomorphism.
    std::string key = IsomorphismBucketKey(r.value().pr());
    auto& bucket = seen[key];
    bool dup = false;
    for (const Pattern& prev : bucket) {
      if (AreIsomorphic(prev, r.value().pr(), /*preserve_designated=*/true)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    bucket.push_back(r.value().pr());
    out.push_back(std::move(r).value());
  }
  return out;
}

}  // namespace gpar
