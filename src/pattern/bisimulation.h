#ifndef GPAR_PATTERN_BISIMULATION_H_
#define GPAR_PATTERN_BISIMULATION_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"

namespace gpar {

/// Stable bisimulation colors of a pattern's nodes: two nodes get the same
/// color iff they are bisimilar (same label, matching out-edge behaviour),
/// computed by partition refinement [12].
std::vector<uint32_t> BisimulationColors(const Pattern& p);

/// True iff patterns `a` and `b` are bisimilar per the paper's definition
/// (Section 4.2): there is a relation Ob covering every node of each
/// pattern, pairing same-label nodes whose outgoing edges mutually match.
///
/// Lemma 4: if not bisimilar, the patterns cannot be automorphic — so this
/// is DMine's cheap O((|a|+|b|)^2) prefilter before exact automorphism
/// checks.
bool AreBisimilar(const Pattern& a, const Pattern& b);

/// As `AreBisimilar`, additionally requiring the designated nodes x (and y,
/// when present) to be related. A necessary condition for an automorphism
/// that fixes the designated nodes — what DMine's rule grouping needs.
bool AreBisimilarDesignated(const Pattern& a, const Pattern& b);

}  // namespace gpar

#endif  // GPAR_PATTERN_BISIMULATION_H_
