#include "parallel/thread_pool.h"

#include <utility>

namespace gpar {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, uint32_t n,
                 const std::function<void(uint32_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to overlap; skip the queue round-trip
    fn(0);
    return;
  }
  // Per-call completion latch rather than ThreadPool::Wait: Wait drains the
  // WHOLE pool, so two concurrent ParallelFor calls sharing one pool would
  // block on each other's tasks. The serving tier runs many simultaneous
  // requests over one pool, so each call only waits for its own n tasks.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    uint32_t remaining;
  };
  Latch latch;
  latch.remaining = n;
  for (uint32_t i = 0; i < n; ++i) {
    pool.Submit([i, &fn, &latch] {
      fn(i);
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

}  // namespace gpar
