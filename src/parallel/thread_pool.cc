#include "parallel/thread_pool.h"

#include <utility>

namespace gpar {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && in_flight_ == 0)) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) task_available_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, uint32_t n,
                 const std::function<void(uint32_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {  // nothing to overlap; skip the queue round-trip
    fn(0);
    return;
  }
  // Per-call completion latch rather than ThreadPool::Wait: Wait drains the
  // WHOLE pool, so two concurrent ParallelFor calls sharing one pool would
  // block on each other's tasks. The serving tier runs many simultaneous
  // requests over one pool, so each call only waits for its own n tasks.
  struct Latch {
    Mutex mu;
    CondVar cv;
    uint32_t remaining GPAR_GUARDED_BY(mu) = 0;
  };
  Latch latch;
  {
    MutexLock lock(latch.mu);
    latch.remaining = n;
  }
  for (uint32_t i = 0; i < n; ++i) {
    pool.Submit([i, &fn, &latch] {
      fn(i);
      MutexLock lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.NotifyOne();
    });
  }
  MutexLock lock(latch.mu);
  while (latch.remaining != 0) latch.cv.Wait(latch.mu);
}

}  // namespace gpar
