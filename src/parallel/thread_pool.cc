#include "parallel/thread_pool.h"

#include <utility>

namespace gpar {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, uint32_t n,
                 const std::function<void(uint32_t)>& fn) {
  for (uint32_t i = 0; i < n; ++i) {
    pool.Submit([i, &fn] { fn(i); });
  }
  pool.Wait();
}

}  // namespace gpar
