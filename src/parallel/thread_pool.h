#ifndef GPAR_PARALLEL_THREAD_POOL_H_
#define GPAR_PARALLEL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gpar {

/// Fixed-size worker pool. Submitted tasks run FIFO; `Wait` blocks until
/// all submitted tasks have finished. Used by the BSP runtime to simulate
/// the paper's n processors with n threads.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) GPAR_EXCLUDES(mu_);

  /// Blocks until the queue is drained and all in-flight tasks complete.
  void Wait() GPAR_EXCLUDES(mu_);

  uint32_t num_threads() const noexcept {
    return static_cast<uint32_t>(threads_.size());
  }

 private:
  void WorkerLoop() GPAR_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ GPAR_GUARDED_BY(mu_);
  CondVar task_available_;
  CondVar all_done_;
  uint32_t in_flight_ GPAR_GUARDED_BY(mu_) = 0;
  bool shutting_down_ GPAR_GUARDED_BY(mu_) = false;
};

/// Runs fn(0..n-1) on the pool and waits for completion of exactly those n
/// tasks (a per-call latch, not `ThreadPool::Wait`), so concurrent calls
/// may safely share one pool — the serving tier's concurrency substrate.
/// Do not nest a ParallelFor inside a task running on the same pool: the
/// outer call holds its worker thread while waiting.
void ParallelFor(ThreadPool& pool, uint32_t n,
                 const std::function<void(uint32_t)>& fn);

}  // namespace gpar

#endif  // GPAR_PARALLEL_THREAD_POOL_H_
