#include "parallel/bsp.h"

#include <time.h>

#include <algorithm>
#include <chrono>

namespace gpar {

double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

namespace {
double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

BspRuntime::BspRuntime(uint32_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers),
      pool_(num_workers_),
      wall_start_(WallSeconds()) {
  times_.worker_total_seconds.assign(num_workers_, 0);
}

void BspRuntime::RunRound(const std::function<void(uint32_t)>& fn) {
  std::vector<double> round_cpu(num_workers_, 0);
  ParallelFor(pool_, num_workers_, [&](uint32_t i) {
    double start = ThreadCpuSeconds();
    fn(i);
    round_cpu[i] = ThreadCpuSeconds() - start;
  });
  double round_max = 0;
  for (uint32_t i = 0; i < num_workers_; ++i) {
    times_.worker_total_seconds[i] += round_cpu[i];
    round_max = std::max(round_max, round_cpu[i]);
  }
  times_.makespan_seconds += round_max;
  ++times_.rounds;
}

void BspRuntime::RunCoordinator(const std::function<void()>& fn) {
  double start = ThreadCpuSeconds();
  fn();
  times_.coordinator_seconds += ThreadCpuSeconds() - start;
}

ParallelTimes BspRuntime::FinishTiming() {
  times_.wall_seconds = WallSeconds() - wall_start_;
  return times_;
}

}  // namespace gpar
