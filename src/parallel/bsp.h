#ifndef GPAR_PARALLEL_BSP_H_
#define GPAR_PARALLEL_BSP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.h"

namespace gpar {

/// Timing record for one BSP computation.
///
/// The paper deploys n fragments on n machines; this reproduction runs them
/// as n threads on one host and reports, per round, the *max per-worker CPU
/// time* (the makespan a real n-machine deployment would see), plus the
/// coordinator's assembly time. `SimulatedParallelSeconds` — makespan plus
/// coordinator — is the quantity the Exp-1/Exp-3 "varying n" curves plot;
/// wall time on a single host cannot show the speedup, makespan can
/// (see DESIGN.md §5, EC2 substitution).
struct ParallelTimes {
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double coordinator_seconds = 0;
  std::vector<double> worker_total_seconds;  // per worker, cumulative CPU
  uint32_t rounds = 0;

  double SimulatedParallelSeconds() const {
    return makespan_seconds + coordinator_seconds;
  }
};

/// Returns CPU time consumed by the calling thread, in seconds.
double ThreadCpuSeconds();

/// Bulk-synchronous runtime: alternating parallel worker rounds and
/// coordinator sections, with per-round makespan accounting.
class BspRuntime {
 public:
  explicit BspRuntime(uint32_t num_workers);

  /// Runs fn(worker_id) for all workers; the barrier is implicit (returns
  /// when all are done). Adds max-over-workers CPU time to the makespan.
  void RunRound(const std::function<void(uint32_t)>& fn);

  /// Runs (and times) a coordinator section on the calling thread.
  void RunCoordinator(const std::function<void()>& fn);

  uint32_t num_workers() const { return num_workers_; }
  const ParallelTimes& times() const { return times_; }
  /// Finalizes wall time; call once when the computation completes.
  ParallelTimes FinishTiming();

 private:
  uint32_t num_workers_;
  ThreadPool pool_;
  ParallelTimes times_;
  double wall_start_;
};

}  // namespace gpar

#endif  // GPAR_PARALLEL_BSP_H_
