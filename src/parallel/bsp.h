#ifndef GPAR_PARALLEL_BSP_H_
#define GPAR_PARALLEL_BSP_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace gpar {

/// Timing record for one BSP computation.
///
/// The paper deploys n fragments on n machines; this reproduction runs them
/// as n threads on one host and reports, per round, the *max per-worker CPU
/// time* (the makespan a real n-machine deployment would see), plus the
/// coordinator's assembly time. `SimulatedParallelSeconds` — makespan plus
/// coordinator — is the quantity the Exp-1/Exp-3 "varying n" curves plot;
/// wall time on a single host cannot show the speedup, makespan can
/// (see DESIGN.md §5, EC2 substitution).
struct ParallelTimes {
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double coordinator_seconds = 0;
  std::vector<double> worker_total_seconds;  // per worker, cumulative CPU
  uint32_t rounds = 0;

  double SimulatedParallelSeconds() const noexcept {
    return makespan_seconds + coordinator_seconds;
  }
};

/// Returns CPU time consumed by the calling thread, in seconds.
double ThreadCpuSeconds();

/// Bulk-synchronous runtime: alternating parallel worker rounds and
/// coordinator sections, with per-round makespan accounting.
class BspRuntime {
 public:
  explicit BspRuntime(uint32_t num_workers);

  /// Runs fn(worker_id) for all workers; the barrier is implicit (returns
  /// when all are done). Adds max-over-workers CPU time to the makespan.
  void RunRound(const std::function<void(uint32_t)>& fn);

  /// Gather overload: runs fn(worker_id) for all workers and returns the
  /// per-worker payloads indexed by worker id — the BSP "messages to the
  /// coordinator" of a round, without caller-side mutex plumbing. Each
  /// worker writes only its own slot, so the result is deterministic
  /// regardless of scheduling. T must be default-constructible and
  /// move-assignable. Timing is identical to the void overload: producing
  /// the payload counts toward the round's makespan, not the coordinator.
  template <typename Fn, typename T = std::invoke_result_t<Fn&, uint32_t>,
            typename = std::enable_if_t<!std::is_void_v<T>>>
  std::vector<T> RunRound(Fn&& fn) {
    // vector<bool> packs bits: concurrent out[i] writes from different
    // workers would race on shared words. Return a wider type (or a struct).
    static_assert(!std::is_same_v<T, bool>,
                  "bool payloads race in std::vector<bool>; gather a wider "
                  "type instead");
    std::vector<T> out(num_workers_);
    RunRound(std::function<void(uint32_t)>(
        [&out, &fn](uint32_t i) { out[i] = fn(i); }));
    return out;
  }

  /// Runs (and times) a coordinator section on the calling thread.
  void RunCoordinator(const std::function<void()>& fn);

  uint32_t num_workers() const noexcept { return num_workers_; }
  const ParallelTimes& times() const noexcept { return times_; }
  /// Finalizes wall time; call once when the computation completes.
  ParallelTimes FinishTiming();

 private:
  uint32_t num_workers_;
  ThreadPool pool_;
  ParallelTimes times_;
  double wall_start_;
};

}  // namespace gpar

#endif  // GPAR_PARALLEL_BSP_H_
