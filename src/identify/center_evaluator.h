#ifndef GPAR_IDENTIFY_CENTER_EVALUATOR_H_
#define GPAR_IDENTIFY_CENTER_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/sketch.h"
#include "match/matcher.h"
#include "rule/gpar.h"

namespace gpar {

/// Work counters accumulated by a center evaluator.
struct EvaluatorWork {
  uint64_t exists_queries = 0;
  uint64_t embeddings = 0;
};

/// Strategy interface: decides, for one candidate center, membership in
/// P_R(x, ·) and Q(x, ·) for every rule. The three EIP algorithms differ
/// only in this strategy; the partitioning/assembly skeleton is shared.
class CenterEvaluator {
 public:
  virtual ~CenterEvaluator() = default;

  /// Evaluates the center `v` (local id in the fragment graph).
  ///  * `is_q_match`: v ∈ P_q(x, ·) (has a consequent edge to a valid y);
  ///  * `is_qbar`:    v is an LCWA negative;
  ///  * `need_q_membership`: Q(x, ·) membership must be reported even when
  ///    it is not needed for confidence (formal output semantics).
  /// On return (*in_pr)[i] / (*in_q)[i] hold the memberships for rule i.
  virtual void Evaluate(NodeId v, bool is_q_match, bool is_qbar,
                        bool need_q_membership, std::vector<char>* in_pr,
                        std::vector<char>* in_q) = 0;

  const EvaluatorWork& work() const { return work_; }

 protected:
  EvaluatorWork work_;
};

/// Q-membership inside a fragment is decided on the antecedent's
/// x-component (exactly localizable within eval_radius hops); `other_ok[i]`
/// says whether rule i's remaining antecedent components (which may match
/// anywhere in G) were found globally — when false, Q matches nobody.
///
/// Every factory takes the fragment as (graph, view): `view == nullptr`
/// means `frag_graph` is the fragment itself (a copied induced subgraph, or
/// the whole graph), non-null restricts matching to the zero-copy fragment
/// view — candidates and evidence are then parent-global ids.

/// Matchc (Section 5.1): one pattern check per candidate via the minimal
/// policy, but membership decided by *enumerating* matches (no early
/// termination), with plain VF2.
std::unique_ptr<CenterEvaluator> MakeMatchcEvaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint64_t cap);

/// Match (Section 5.2): early termination (exists-queries), sketch-guided
/// candidate ordering, and multi-pattern sharing across Σ. The last two
/// are individually toggleable for ablation (early termination is the
/// definitional difference to Matchc and always on).
///
/// `plan_store` / `sketch_store` optionally attach shared read-only
/// precomputed state (the serving session's reuse hooks): search plans and
/// node sketches are then consulted there before being derived privately.
/// Both may be nullptr (batch identification passes neither).
std::unique_ptr<CenterEvaluator> MakeMatchEvaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint32_t sketch_hops, bool use_guided_search, bool share_multi_patterns,
    const SearchPlanStore* plan_store = nullptr,
    const SketchStore* sketch_store = nullptr);

/// disVF2 (Section 6 baseline): enumerates embeddings of BOTH P_R and Q at
/// every candidate — two isomorphism checks per candidate.
std::unique_ptr<CenterEvaluator> MakeDisVf2Evaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint64_t cap);

}  // namespace gpar

#endif  // GPAR_IDENTIFY_CENTER_EVALUATOR_H_
