#ifndef GPAR_IDENTIFY_EIP_H_
#define GPAR_IDENTIFY_EIP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "parallel/bsp.h"
#include "rule/gpar.h"

namespace gpar {

/// Algorithm selector for the entity identification problem (Section 5).
enum class EipAlgorithm {
  /// Match: data locality + early termination + sketch-guided search +
  /// multi-pattern sharing (Section 5.2).
  kMatch,
  /// Matchc: the parallel-scalable baseline — data locality but full
  /// enumeration of matches per candidate (Section 5.1).
  kMatchc,
  /// disVF2: parallel VF2 that enumerates both P_R and Q at every
  /// candidate — two isomorphism checks per candidate vs one (Section 6).
  kDisVf2,
  /// Single-threaded reference evaluation on the whole graph (test oracle).
  kSequential,
};

/// Options for `IdentifyEntities`.
struct EipOptions {
  EipAlgorithm algorithm = EipAlgorithm::kMatch;
  uint32_t num_workers = 4;
  double eta = 1.0;  ///< confidence bound η
  /// Formal semantics (Table 1) output Q(x, G) matches; §5.1's Matchc prose
  /// outputs P_R(x, G) matches. False = formal definition (default).
  bool require_consequent = false;
  /// k for the guided matcher's k-hop sketches. 1 is the robust default:
  /// on scale-free graphs a 2-hop sketch costs a hub-sized BFS per scored
  /// node, which can exceed the matching work it saves (k = 2 pays off for
  /// highly selective patterns on sparse graphs).
  uint32_t sketch_hops = 1;
  /// Ablation toggles for kMatch (both on by default; the ablation bench
  /// measures each optimization's contribution):
  bool use_guided_search = true;     ///< sketch-guided candidate ordering
  bool share_multi_patterns = true;  ///< anchored-subsumption sharing over Σ
  uint64_t enumeration_cap = 0;  ///< per-candidate embedding cap, 0 = none
  /// Materialize fragments as copied induced subgraphs instead of
  /// zero-copy views over the parent CSR (the A/B baseline; results are
  /// identical — see the view/copy equivalence tests).
  bool use_fragment_copies = false;
};

/// Per-rule evaluation assembled across fragments.
struct EipRuleEval {
  uint64_t supp_r = 0;
  uint64_t supp_qqbar = 0;
  double conf = 0;
};

/// Result of entity identification.
struct EipResult {
  /// Σ(x, G, η): potential customers, global node ids, sorted.
  std::vector<NodeId> entities;
  std::vector<EipRuleEval> rule_evals;  ///< parallel to the input Σ
  uint64_t supp_q = 0;
  uint64_t supp_qbar = 0;
  ParallelTimes times;
  uint64_t exists_queries = 0;        ///< total membership checks issued
  uint64_t embeddings_enumerated = 0; ///< total embeddings visited
};

/// Validated per-Σ setup shared by batch identification and the serving
/// session (serve/rule_server.h): the common predicate and the locality
/// radius d = max over Σ of `eval_radius()`.
struct SigmaInfo {
  Predicate q;
  uint32_t d = 0;
};

/// Checks that `sigma` is nonempty and uniform in q(x, y); returns the
/// predicate and the partitioning/invalidation radius.
Result<SigmaInfo> ValidateSigma(const std::vector<Gpar>& sigma);

/// Satisfiability of antecedent components not containing x: such
/// components can match anywhere in G, so one global check per rule
/// replaces per-center work (all-ones for connected antecedents). Entry i
/// is 0 iff some component of rule i's antecedent has no match in `g` —
/// then Q matches nobody regardless of the center.
std::vector<char> OtherComponentsOk(const Graph& g,
                                    const std::vector<Gpar>& sigma);

/// Computes Σ(x, G, η) = { v_x ∈ Q(x, G) | Q => q ∈ Σ, conf(R, G) >= η }
/// for a set `sigma` of GPARs pertaining to one predicate q(x, y).
///
/// Parallel algorithms partition G into `num_workers` fragments with d-hop
/// locality (d = max radius over Σ) and evaluate owned candidates locally;
/// confidences are assembled globally — the structure proving EIP parallel
/// scalable (Theorem 6).
Result<EipResult> IdentifyEntities(const Graph& g,
                                   const std::vector<Gpar>& sigma,
                                   const EipOptions& options = {});

}  // namespace gpar

#endif  // GPAR_IDENTIFY_EIP_H_
