#include <memory>

#include "identify/center_evaluator.h"
#include "match/matcher.h"

namespace gpar {

namespace {

/// disVF2 performs two isomorphism checks — P_R and Q — at *every*
/// candidate, each by full enumeration. This is the conventional
/// apply-a-matcher baseline of Section 6, against which Matchc/Match are
/// 4.79x / 6.24x faster in the paper.
class DisVf2Evaluator : public CenterEvaluator {
 public:
  DisVf2Evaluator(const Graph& g, const GraphView* view,
                  const std::vector<Gpar>& sigma,
                  const std::vector<char>& other_ok, uint64_t cap)
      : matcher_(g, view), sigma_(sigma), other_ok_(other_ok), cap_(cap) {}

  void Evaluate(NodeId v, bool is_q_match, bool is_qbar,
                bool need_q_membership, std::vector<char>* in_pr,
                std::vector<char>* in_q) override {
    (void)is_q_match;
    (void)is_qbar;
    (void)need_q_membership;
    in_pr->assign(sigma_.size(), 0);
    in_q->assign(sigma_.size(), 0);
    for (size_t i = 0; i < sigma_.size(); ++i) {
      const Gpar& r = sigma_[i];
      // Both checks, unconditionally (centers without a consequent edge
      // still pay for the P_R enumeration attempt).
      (*in_pr)[i] = EnumerateAt(r.pr(), v) ? 1 : 0;
      bool q_local = EnumerateAt(r.x_component(), v);
      (*in_q)[i] = (q_local && other_ok_[i]) ? 1 : 0;
    }
  }

 private:
  bool EnumerateAt(const Pattern& p, NodeId v) {
    ++work_.exists_queries;
    Anchor a{p.x(), v};
    uint64_t n = matcher_.Enumerate(
        p, {&a, 1}, [](std::span<const NodeId>) { return true; }, cap_);
    work_.embeddings += n;
    return n > 0;
  }

  VF2Matcher matcher_;
  const std::vector<Gpar>& sigma_;
  const std::vector<char>& other_ok_;
  uint64_t cap_;
};

}  // namespace

std::unique_ptr<CenterEvaluator> MakeDisVf2Evaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint64_t cap) {
  return std::make_unique<DisVf2Evaluator>(frag_graph, view, sigma, other_ok,
                                           cap);
}

}  // namespace gpar
