#include "identify/eip.h"

#include <algorithm>
#include <memory>

#include "graph/partition.h"
#include "identify/center_evaluator.h"
#include "match/matcher.h"
#include "rule/metrics.h"

namespace gpar {

namespace {

/// Sequential reference: evaluates every rule on the whole graph with the
/// library's metric functions. The oracle the parallel paths must agree
/// with (tests) — and the t(|G|, |Σ|) baseline of Theorem 6.
Result<EipResult> IdentifySequential(const Graph& g,
                                     const std::vector<Gpar>& sigma,
                                     const EipOptions& options) {
  EipResult result;
  VF2Matcher matcher(g);
  QStats stats = ComputeQStats(matcher, sigma.front().predicate());
  result.supp_q = stats.supp_q;
  result.supp_qbar = stats.supp_qbar;

  std::vector<NodeId> entities;
  for (const Gpar& r : sigma) {
    EvalOptions eopt;
    eopt.compute_antecedent_images = !options.require_consequent;
    GparEval eval = EvaluateGpar(matcher, r, stats, eopt);
    result.rule_evals.push_back({eval.supp_r, eval.supp_qqbar, eval.conf});
    if (eval.conf >= options.eta) {
      const auto& members =
          options.require_consequent ? eval.pr_matches : eval.antecedent_matches;
      entities.insert(entities.end(), members.begin(), members.end());
    }
  }
  std::sort(entities.begin(), entities.end());
  entities.erase(std::unique(entities.begin(), entities.end()),
                 entities.end());
  result.entities = std::move(entities);
  return result;
}

}  // namespace

Result<SigmaInfo> ValidateSigma(const std::vector<Gpar>& sigma) {
  if (sigma.empty()) {
    return Status::InvalidArgument("empty GPAR set");
  }
  SigmaInfo info;
  info.q = sigma.front().predicate();
  for (const Gpar& r : sigma) {
    if (!(r.predicate() == info.q)) {
      return Status::InvalidArgument(
          "all GPARs in Sigma must pertain to the same q(x, y)");
    }
    // eval_radius covers both P_R and fragment-local antecedent matching.
    info.d = std::max(info.d, r.eval_radius());
  }
  return info;
}

std::vector<char> OtherComponentsOk(const Graph& g,
                                    const std::vector<Gpar>& sigma) {
  std::vector<char> other_ok(sigma.size(), 1);
  VF2Matcher global_matcher(g);
  for (size_t i = 0; i < sigma.size(); ++i) {
    for (const Pattern& comp : sigma[i].other_components()) {
      if (!global_matcher.Exists(comp)) {
        other_ok[i] = 0;
        break;
      }
    }
  }
  return other_ok;
}

Result<EipResult> IdentifyEntities(const Graph& g,
                                   const std::vector<Gpar>& sigma,
                                   const EipOptions& options) {
  GPAR_ASSIGN_OR_RETURN(SigmaInfo sigma_info, ValidateSigma(sigma));
  const Predicate q = sigma_info.q;
  const uint32_t d = sigma_info.d;
  if (options.eta <= 0) {
    return Status::InvalidArgument("eta must be positive");
  }
  if (options.algorithm == EipAlgorithm::kSequential) {
    return IdentifySequential(g, sigma, options);
  }

  EipResult result;
  BspRuntime bsp(options.num_workers);

  // (1) Partitioning: candidates L = nodes satisfying x's condition; each
  // fragment contains G_d(v_x) for its owned candidates.
  std::vector<NodeId> centers;
  {
    auto span = g.nodes_with_label(q.x_label);
    centers.assign(span.begin(), span.end());
  }
  PartitionOptions popt;
  popt.num_fragments = options.num_workers;
  popt.d = std::max<uint32_t>(d, 1);
  popt.use_fragment_copies = options.use_fragment_copies;
  GPAR_ASSIGN_OR_RETURN(Partitioning parts, PartitionGraph(g, centers, popt));

  // Satisfiability of antecedent components not containing x (empty for
  // connected antecedents).
  std::vector<char> other_ok = OtherComponentsOk(g, sigma);

  // (2) Matching: all workers evaluate their owned candidates in parallel.
  struct WorkerOut {
    uint64_t supp_q = 0;
    uint64_t supp_qbar = 0;
    // per rule: owned centers' membership (global ids)
    std::vector<std::vector<NodeId>> pr_members;
    std::vector<std::vector<NodeId>> q_members;
    std::vector<NodeId> qbar_globals;  // owned LCWA negatives, global ids
    EvaluatorWork work;
  };
  std::vector<WorkerOut> outs(options.num_workers);
  const Pattern pq = q.ToPattern();
  const bool need_q_membership = !options.require_consequent;

  bsp.RunRound([&](uint32_t i) {
    const Fragment& frag = parts.fragments[i];
    // View-backed fragments match on the parent CSR restricted by
    // membership (global ids throughout); the copied path (ablation)
    // matches the materialized subgraph through the MatchId translation.
    const Graph& fg = frag.uses_copy() ? frag.copy->graph : g;
    const GraphView* view = frag.uses_copy() ? nullptr : &frag.view;
    WorkerOut& out = outs[i];
    out.pr_members.resize(sigma.size());
    out.q_members.resize(sigma.size());

    std::unique_ptr<CenterEvaluator> evaluator;
    switch (options.algorithm) {
      case EipAlgorithm::kMatch:
        evaluator = MakeMatchEvaluator(fg, view, sigma, other_ok,
                                       options.sketch_hops,
                                       options.use_guided_search,
                                       options.share_multi_patterns);
        break;
      case EipAlgorithm::kMatchc:
        evaluator = MakeMatchcEvaluator(fg, view, sigma, other_ok,
                                        options.enumeration_cap);
        break;
      case EipAlgorithm::kDisVf2:
        evaluator = MakeDisVf2Evaluator(fg, view, sigma, other_ok,
                                        options.enumeration_cap);
        break;
      case EipAlgorithm::kSequential:
        return;  // handled above
    }

    VF2Matcher base_matcher(fg, view);  // for the cheap P_q classification
    std::vector<char> in_pr, in_q;
    for (NodeId global : frag.centers) {
      NodeId probe = frag.MatchId(global);
      bool is_q = base_matcher.ExistsAt(pq, probe);
      bool is_qbar = !is_q && frag.HasOutLabelAt(global, q.edge_label);
      if (is_q) ++out.supp_q;
      if (is_qbar) {
        ++out.supp_qbar;
        out.qbar_globals.push_back(global);
      }
      evaluator->Evaluate(probe, is_q, is_qbar, need_q_membership, &in_pr,
                          &in_q);
      for (size_t ri = 0; ri < sigma.size(); ++ri) {
        if (in_pr[ri]) out.pr_members[ri].push_back(global);
        if (in_q[ri]) out.q_members[ri].push_back(global);
      }
    }
    out.work = evaluator->work();
  });

  // (3) Assembling: global supports and confidences, then the output set.
  bsp.RunCoordinator([&] {
    result.rule_evals.assign(sigma.size(), {});
    for (const WorkerOut& out : outs) {
      result.supp_q += out.supp_q;
      result.supp_qbar += out.supp_qbar;
      result.exists_queries += out.work.exists_queries;
      result.embeddings_enumerated += out.work.embeddings;
    }

    // supp(Q~q) per rule: antecedent matches that are ~q nodes, checked
    // against the global ~q set assembled from the fragments.
    std::vector<NodeId> qbar_nodes;
    for (const WorkerOut& out : outs) {
      qbar_nodes.insert(qbar_nodes.end(), out.qbar_globals.begin(),
                        out.qbar_globals.end());
    }
    std::sort(qbar_nodes.begin(), qbar_nodes.end());

    for (size_t ri = 0; ri < sigma.size(); ++ri) {
      EipRuleEval& ev = result.rule_evals[ri];
      for (const WorkerOut& out : outs) {
        ev.supp_r += out.pr_members[ri].size();
        for (NodeId v : out.q_members[ri]) {
          if (std::binary_search(qbar_nodes.begin(), qbar_nodes.end(), v)) {
            ++ev.supp_qqbar;
          }
        }
      }
      ev.conf = BayesFactorConf(ev.supp_r, result.supp_qbar, ev.supp_qqbar,
                                result.supp_q);
    }

    std::vector<NodeId> entities;
    for (size_t ri = 0; ri < sigma.size(); ++ri) {
      if (result.rule_evals[ri].conf < options.eta) continue;
      for (const WorkerOut& out : outs) {
        const auto& members = options.require_consequent
                                  ? out.pr_members[ri]
                                  : out.q_members[ri];
        entities.insert(entities.end(), members.begin(), members.end());
      }
    }
    std::sort(entities.begin(), entities.end());
    entities.erase(std::unique(entities.begin(), entities.end()),
                   entities.end());
    result.entities = std::move(entities);
  });

  result.times = bsp.FinishTiming();
  return result;
}

}  // namespace gpar
