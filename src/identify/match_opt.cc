#include <memory>

#include "identify/center_evaluator.h"
#include "match/guided.h"
#include "match/multi_pattern.h"

namespace gpar {

namespace {

/// Match (Section 5.2): guided search with early termination plus
/// multi-pattern sharing. Three evaluators cover the per-center policies:
///  * q-match centers: P_R patterns (plus antecedents when the formal
///    output semantics needs Q-membership), evaluated jointly so that the
///    anchored-subsumption DAG shares work across Σ — in particular
///    Q_i ⊑ P_R_i, so a failed antecedent skips its P_R;
///  * other centers: antecedents only.
class MatchEvaluator : public CenterEvaluator {
 public:
  MatchEvaluator(const Graph& g, const GraphView* view,
                 const std::vector<Gpar>& sigma,
                 const std::vector<char>& other_ok, uint32_t sketch_hops,
                 bool use_guided, bool share, const SearchPlanStore* plans,
                 const SketchStore* sketches)
      : guided_(use_guided
                    ? std::make_unique<GuidedMatcher>(g, view, sketch_hops)
                    : nullptr),
        vf2_(use_guided ? nullptr : std::make_unique<VF2Matcher>(g, view)),
        sigma_(sigma),
        other_ok_(other_ok) {
    Matcher& m = guided_ ? static_cast<Matcher&>(*guided_)
                         : static_cast<Matcher&>(*vf2_);
    if (plans != nullptr) m.set_plan_store(plans);
    if (guided_ && sketches != nullptr) guided_->set_sketch_store(sketches);
    for (const Gpar& r : sigma_) {
      pr_patterns_.push_back(&r.pr());
      q_patterns_.push_back(&r.x_component());
    }
    if (share) {
      pr_eval_ = std::make_unique<MultiPatternEvaluator>(pr_patterns_);
      q_eval_ = std::make_unique<MultiPatternEvaluator>(q_patterns_);
    }
  }

  void Evaluate(NodeId v, bool is_q_match, bool is_qbar,
                bool need_q_membership, std::vector<char>* in_pr,
                std::vector<char>* in_q) override {
    const size_t n = sigma_.size();
    in_pr->assign(n, 0);
    in_q->assign(n, 0);
    Matcher& m = guided_ ? static_cast<Matcher&>(*guided_)
                         : static_cast<Matcher&>(*vf2_);
    if (is_q_match) {
      EvalSet(m, pr_patterns_, pr_eval_.get(), v, in_pr, nullptr);
      if (need_q_membership) {
        // Antecedents of matched P_Rs are implied; only the rest are
        // queried (seeded via known_yes when sharing is on).
        EvalSet(m, q_patterns_, q_eval_.get(), v, in_q, in_pr);
        for (size_t i = 0; i < n; ++i) {
          if (!other_ok_[i]) (*in_q)[i] = 0;
        }
      } else {
        for (size_t i = 0; i < n; ++i) (*in_q)[i] = (*in_pr)[i];
      }
    } else if (is_qbar || need_q_membership) {
      // Q-membership is needed for supp(Q~q) (negatives) or for the formal
      // output set; unknown centers are skipped entirely otherwise.
      EvalSet(m, q_patterns_, q_eval_.get(), v, in_q, nullptr);
      for (size_t i = 0; i < n; ++i) {
        if (!other_ok_[i]) (*in_q)[i] = 0;
      }
    }
  }

 private:
  /// Evaluates a pattern set at `v`: via the sharing evaluator when built,
  /// otherwise one independent exists-query per pattern.
  void EvalSet(Matcher& m, const std::vector<const Pattern*>& patterns,
               const MultiPatternEvaluator* eval, NodeId v,
               std::vector<char>* out, const std::vector<char>* known_yes) {
    if (eval != nullptr) {
      uint64_t before = eval->queries_issued();
      eval->EvaluateAt(m, v, out, known_yes);
      work_.exists_queries += eval->queries_issued() - before;
      return;
    }
    out->assign(patterns.size(), 0);
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (known_yes != nullptr && (*known_yes)[i]) {
        (*out)[i] = 1;
        continue;
      }
      ++work_.exists_queries;
      (*out)[i] = m.ExistsAt(*patterns[i], v) ? 1 : 0;
    }
  }

  std::unique_ptr<GuidedMatcher> guided_;
  std::unique_ptr<VF2Matcher> vf2_;
  const std::vector<Gpar>& sigma_;
  const std::vector<char>& other_ok_;
  std::vector<const Pattern*> pr_patterns_;
  std::vector<const Pattern*> q_patterns_;
  std::unique_ptr<MultiPatternEvaluator> pr_eval_;
  std::unique_ptr<MultiPatternEvaluator> q_eval_;
};

}  // namespace

std::unique_ptr<CenterEvaluator> MakeMatchEvaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint32_t sketch_hops, bool use_guided_search, bool share_multi_patterns,
    const SearchPlanStore* plan_store, const SketchStore* sketch_store) {
  return std::make_unique<MatchEvaluator>(
      frag_graph, view, sigma, other_ok, sketch_hops, use_guided_search,
      share_multi_patterns, plan_store, sketch_store);
}

}  // namespace gpar
