#include <memory>

#include "identify/center_evaluator.h"
#include "match/matcher.h"

namespace gpar {

namespace {

/// Matchc decides memberships by full enumeration at the candidate: it
/// counts every embedding of the pattern anchored at v_x before concluding
/// (the cost Match's early termination removes). The pattern-per-candidate
/// policy is minimal: P_R for q-matches, Q otherwise.
class MatchcEvaluator : public CenterEvaluator {
 public:
  MatchcEvaluator(const Graph& g, const GraphView* view,
                  const std::vector<Gpar>& sigma,
                  const std::vector<char>& other_ok, uint64_t cap)
      : matcher_(g, view), sigma_(sigma), other_ok_(other_ok), cap_(cap) {}

  void Evaluate(NodeId v, bool is_q_match, bool is_qbar,
                bool need_q_membership, std::vector<char>* in_pr,
                std::vector<char>* in_q) override {
    in_pr->assign(sigma_.size(), 0);
    in_q->assign(sigma_.size(), 0);
    for (size_t i = 0; i < sigma_.size(); ++i) {
      const Gpar& r = sigma_[i];
      if (is_q_match) {
        (*in_pr)[i] = EnumerateAt(r.pr(), v) ? 1 : 0;
        if ((*in_pr)[i]) {
          (*in_q)[i] = 1;  // P_R match implies Q match
        } else if (need_q_membership && other_ok_[i]) {
          (*in_q)[i] = EnumerateAt(r.x_component(), v) ? 1 : 0;
        }
      } else if ((is_qbar || need_q_membership) && other_ok_[i]) {
        // No valid consequent edge at v: P_R cannot match. Q-membership is
        // needed for supp(Q~q) (negatives) or for the formal output set.
        (*in_q)[i] = EnumerateAt(r.x_component(), v) ? 1 : 0;
      }
    }
  }

 private:
  bool EnumerateAt(const Pattern& p, NodeId v) {
    ++work_.exists_queries;
    Anchor a{p.x(), v};
    uint64_t n = matcher_.Enumerate(
        p, {&a, 1}, [](std::span<const NodeId>) { return true; }, cap_);
    work_.embeddings += n;
    return n > 0;
  }

  VF2Matcher matcher_;
  const std::vector<Gpar>& sigma_;
  const std::vector<char>& other_ok_;
  uint64_t cap_;
};

}  // namespace

std::unique_ptr<CenterEvaluator> MakeMatchcEvaluator(
    const Graph& frag_graph, const GraphView* view,
    const std::vector<Gpar>& sigma, const std::vector<char>& other_ok,
    uint64_t cap) {
  return std::make_unique<MatchcEvaluator>(frag_graph, view, sigma, other_ok,
                                           cap);
}

}  // namespace gpar
