#ifndef GPAR_MAINTAIN_MAINTAIN_COMMAND_H_
#define GPAR_MAINTAIN_MAINTAIN_COMMAND_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "maintain/rule_maintainer.h"
#include "rule/rule_evidence.h"
#include "serve/delta_journal.h"

namespace gpar {

/// A parsed `gpar_tool maintain` invocation — the wire-independent request
/// the tool builds from flags, factored out (serve_command style) so the
/// command's validation, error messages, and exit-code policy are
/// unit-testable without spawning the binary.
struct MaintainRequest {
  std::string graph_snapshot;  ///< required: graph the rules are served on
  std::string rules_snapshot;  ///< required: v1 (records) or v2 (+evidence)
  std::string journal;         ///< optional: delta journal to replay
  /// Refreshed v2 snapshot destination; empty = refresh `rules_snapshot`
  /// in place.
  std::string out;
  /// Strict mode: a journal that lost bytes to a torn tail is an error
  /// (Corruption), not a warning — refuse to maintain from known-lossy
  /// history. The tool maps strict failures to exit code 3.
  bool strict = false;
  /// Seeding inputs, used ONLY when `rules_snapshot` is v1 (no evidence
  /// section): the predicate labels to mine, plus `options.mine`. For a v2
  /// snapshot the persisted setup wins (evidence is only reusable under the
  /// parameters it was mined with) and these are ignored.
  std::string x_label, edge_label, y_label;
  MaintainOptions options;
};

/// What a maintain run did, for the tool's report lines.
struct MaintainReport {
  /// True when the rule snapshot had no evidence and the maintainer was
  /// seeded by a full mining pass instead of restored.
  bool seeded = false;
  size_t rules_in = 0;   ///< records in the input snapshot
  size_t rules_out = 0;  ///< maintained top-k written out
  JournalReplayStats journal_scan;  ///< what the journal scan found
  /// Accumulated pass stats: the seed/restore pass plus every replayed
  /// frame (see MaintainStats for the per-field semantics).
  MaintainStats stats;
  uint64_t last_sequence = 0;  ///< sequence the rule set is fresh through
  double objective = 0;        ///< F(L_k) of the maintained top-k
  std::string out_path;        ///< where the refreshed snapshot landed
  /// Non-fatal conditions a non-strict run proceeded past (torn tail).
  std::vector<std::string> warnings;
};

/// Rebuilds the MaintainOptions a v2 snapshot's evidence was produced
/// under: `base` supplies everything that is not part of the mining setup
/// (`enable_incremental_maintenance`, `mine.num_workers`), the setup
/// supplies the mining parameters and ablation flags. InvalidArgument when
/// the setup carries flag bits this build does not know.
Result<MaintainOptions> MaintainOptionsFromSetup(const MiningSetup& setup,
                                                 const MaintainOptions& base);

/// Runs one maintain invocation end to end: load the graph snapshot,
/// restore (v2) or seed (v1) the maintainer, replay the journal past the
/// evidence's sequence floor, and write the refreshed v2 snapshot.
/// Error taxonomy (unit-covered): missing/unreadable inputs -> IoError or
/// the reader's Corruption; a v1 snapshot without predicate labels in the
/// request, unknown labels, or a setup/options mismatch -> InvalidArgument;
/// a torn journal tail under `strict` -> Corruption.
Result<MaintainReport> RunMaintain(const MaintainRequest& req);

/// The tool's exit-code policy for a failed run, factored for tests:
/// InvalidArgument is a usage error (2); anything else is 3 under
/// `--strict 1` (the run refused data it would otherwise have limped
/// past) and 1 otherwise. A successful run exits 0.
int MaintainExitCode(const Status& status, bool strict);

}  // namespace gpar

#endif  // GPAR_MAINTAIN_MAINTAIN_COMMAND_H_
