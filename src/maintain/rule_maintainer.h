#ifndef GPAR_MAINTAIN_RULE_MAINTAINER_H_
#define GPAR_MAINTAIN_RULE_MAINTAINER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "mine/dmine.h"
#include "mine/mined_rule.h"
#include "rule/gpar.h"
#include "rule/rule_evidence.h"
#include "rule/rule_snapshot.h"

namespace gpar {

/// Options for `RuleMaintainer`.
struct MaintainOptions {
  /// The mining parameters the maintained rule set is defined by. Every
  /// refresh pass replays DMine's discovery skeleton under these exact
  /// parameters (the maintained output is DEFINED as what `Dmine` would
  /// return on the current graph), so they are fixed at construction and
  /// persisted with the evidence. `num_workers` is irrelevant here — DMine
  /// results are worker-count-independent and the maintainer patches
  /// sequentially — and `enable_prune_aware_usupp` is rejected (its Usupp
  /// tightening depends on fragment geometry the maintainer does not have).
  DmineOptions mine;
  /// The subsystem's own ablation flag: off = every pass re-probes every
  /// pool center from scratch (a sequential re-mine — the "remine" baseline
  /// of BENCH_maintenance), on = only centers inside the delta-affected
  /// region are re-probed; everything else is carried from evidence. Both
  /// settings produce identical rule sets (MaintainEquivalence battery).
  bool enable_incremental_maintenance = true;
};

/// Cost accounting for one maintenance pass (and, accumulated, for the
/// maintainer's lifetime — `evidence_bytes_*` are point-in-time, not sums).
struct MaintainStats {
  uint64_t passes = 0;
  size_t edges_inserted = 0;  ///< applied mutations this pass
  size_t edges_deleted = 0;
  /// Nodes in the delta-affected region (radius d) — the re-probe frontier.
  uint64_t affected_nodes = 0;
  uint64_t centers_reprobed = 0;  ///< pool memberships recomputed by matching
  uint64_t centers_carried = 0;   ///< pool memberships reused from evidence
  uint64_t exists_calls = 0;      ///< matcher probes (pools + rules)
  size_t candidates_evaluated = 0;  ///< candidate rules the pass walked
  /// Candidates whose match sets were patched from a prior pass's evidence
  /// (only affected centers re-probed).
  size_t rules_patched = 0;
  /// Candidates with no usable evidence — first seen, or their pattern
  /// never evaluated before — re-expanded by probing their full (parent-
  /// restricted) pool.
  size_t rules_reexpanded = 0;
  /// Rules whose support crossed sigma since their last evidence: upward
  /// crossings (re)admit the rule to Σ, downward ones retire it.
  size_t sigma_crossed_up = 0;
  size_t sigma_crossed_down = 0;
  size_t rules_accepted = 0;  ///< entered Σ this pass (supp >= sigma, nontrivial)
  /// Serialized size of the pass's full evidence section, raw center lists
  /// vs the match-set-delta encoding actually persisted (point-in-time).
  uint64_t evidence_bytes_full = 0;
  uint64_t evidence_bytes_delta = 0;
  double seconds = 0;
};

/// Incremental rule maintenance: keeps a mined diversified top-k — and the
/// full per-rule match evidence behind it — fresh under the delta stream
/// without re-running DMine.
///
/// The maintained invariant: after every pass, `topk()`/`objective()` (and
/// the supports/confidences of every rule in Σ) equal what
/// `Dmine(current graph, q, options.mine)` would return, byte-for-byte.
/// Each pass replays DMine's cheap discovery skeleton — seed alphabet,
/// levelwise candidate generation, automorphism dedup, incDiv, reduction
/// rules — but replaces the expensive part, match evaluation, with evidence
/// patching: by the locality property (Section 5.1) a center's membership
/// in a pattern of eval radius r depends only on G_r(center), so only
/// centers within d hops of a touched edge (`DeltaAffectedRegion`) are
/// re-probed; every other membership is carried from the previous pass's
/// evidence. A candidate whose pattern has no prior evidence (a sigma
/// crossing upstream changed the lineage, or the seed alphabet shifted) is
/// re-expanded locally: its pool is already restricted to its parent's
/// fresh match set, so the full probe stays proportional to that rule, not
/// the graph.
///
/// Not thread-safe: callers serialize passes (the servers run them under
/// their writer lock).
class RuleMaintainer {
 public:
  /// Seeds a maintainer by running one full discovery pass on `g` — the
  /// result is identical to `Dmine(g, q, options.mine)`, and the pass's
  /// match evidence becomes the baseline later deltas patch.
  static Result<std::unique_ptr<RuleMaintainer>> Seed(
      std::shared_ptr<const Graph> g, const Predicate& q,
      const MaintainOptions& options = {});

  /// Restores a maintainer from a persisted evidence section (rule-snapshot
  /// v2) against the graph that section was exported at. The evidence setup
  /// must match `options.mine` (same predicate labels and mining
  /// parameters); a mismatch is InvalidArgument — patching against a
  /// foreign lineage would silently corrupt supports. Runs one zero-delta
  /// pass to rebuild Σ/top-k from the evidence — no pool probes, pattern-
  /// level work only.
  static Result<std::unique_ptr<RuleMaintainer>> FromEvidence(
      std::shared_ptr<const Graph> g, RuleSetEvidence evidence,
      const MaintainOptions& options = {});

  /// Applies one mutation batch: patches the graph internally, then runs a
  /// maintenance pass over the applied mutations. A batch that changes
  /// nothing (all duplicates/missing) only advances the sequence.
  Result<MaintainStats> ApplyDelta(const GraphDelta& delta);

  /// Serving hook: the caller (a server) already patched and swapped the
  /// graph; run the maintenance pass from the applied mutations. `old_graph`
  /// is the pre-delta graph (needed for the delete side of the affected
  /// region); the maintainer adopts `new_graph` as current.
  Result<MaintainStats> Advance(const Graph& old_graph,
                                std::shared_ptr<const Graph> new_graph,
                                std::span<const EdgeInsert> applied,
                                std::span<const EdgeDelete> applied_deletes);

  /// Replays every journal frame with sequence > `last_sequence()` through
  /// `ApplyDelta`, in order — snapshot + journal convergence for the
  /// maintained rule set, mirroring the servers' attach-is-recovery
  /// discipline. Returns the accumulated stats of the replayed passes.
  Result<MaintainStats> ReplayJournal(const std::string& journal_path);

  /// The maintained diversified top-k (same contents as DmineResult::topk
  /// on the current graph) and its objective F(L_k).
  const std::vector<std::shared_ptr<MinedRule>>& topk() const { return topk_; }
  double objective() const { return objective_; }
  /// The top-k as serving-layer records (rule, supp, conf).
  std::vector<RuleRecord> TopKRecords() const;

  /// The current evidence — what rule-snapshot v2 persists. Entries are in
  /// evaluation order (parents precede children).
  const RuleSetEvidence& evidence() const { return evidence_; }
  RuleSetEvidence ExportEvidence() const { return evidence_; }

  std::shared_ptr<const Graph> graph() const { return graph_; }
  const Predicate& predicate() const { return q_; }
  const MaintainOptions& options() const { return options_; }
  uint64_t supp_q() const { return evidence_.q_pool.size(); }
  uint64_t supp_qbar() const { return evidence_.qbar_pool.size(); }
  /// Sequence of the last applied delta (journal bookkeeping).
  uint64_t last_sequence() const { return last_sequence_; }
  const MaintainStats& lifetime_stats() const { return lifetime_; }

 private:
  RuleMaintainer(std::shared_ptr<const Graph> g, const Predicate& q,
                 const MaintainOptions& options);

  /// One maintenance pass on the current graph. `affected` maps node ->
  /// min distance to a touched endpoint; nullptr = probe everything (the
  /// seed pass and the incremental-off ablation).
  Status RefreshPass(const std::unordered_map<NodeId, uint32_t>* affected,
                     MaintainStats* ps);
  void RebuildIndex();

  MaintainOptions options_;
  std::shared_ptr<const Graph> graph_;
  Predicate q_;
  Pattern pq_;    ///< P_q: x --q--> y
  Pattern base_;  ///< the bare two-node antecedent round 1 extends

  /// The current evidence: pools + per-candidate match sets of the latest
  /// pass (ALL evaluated candidates, sub-sigma ones included — that is
  /// what makes upward sigma crossings cheap).
  RuleSetEvidence evidence_;
  /// StructuralHash(entry.rule.pr()) -> indices into evidence_.entries.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index_;

  std::vector<std::shared_ptr<MinedRule>> topk_;
  double objective_ = 0;
  uint64_t last_sequence_ = 0;
  MaintainStats lifetime_;
};

}  // namespace gpar

#endif  // GPAR_MAINTAIN_RULE_MAINTAINER_H_
