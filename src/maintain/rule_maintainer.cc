#include "maintain/rule_maintainer.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "graph/stats.h"
#include "match/matcher.h"
#include "mine/inc_div.h"
#include "mine/reduction.h"
#include "pattern/pattern_ops.h"
#include "rule/diversity.h"
#include "rule/match_delta.h"
#include "rule/metrics.h"
#include "serve/delta_journal.h"

namespace gpar {

namespace {

uint32_t PackFlags(const DmineOptions& o) {
  uint32_t f = 0;
  if (o.enable_incremental_div) f |= 1u << 0;
  if (o.enable_reduction_rules) f |= 1u << 1;
  if (o.enable_bisim_prefilter) f |= 1u << 2;
  if (o.enable_parent_prune) f |= 1u << 3;
  if (o.enable_worker_gen) f |= 1u << 4;
  if (o.use_fragment_copies) f |= 1u << 5;
  if (o.enable_shared_plans) f |= 1u << 6;
  if (o.enable_prune_aware_usupp) f |= 1u << 7;
  return f;
}

MiningSetup MakeSetup(const DmineOptions& o, const Predicate& q,
                      const Interner& labels) {
  MiningSetup s;
  s.x_label = labels.Name(q.x_label);
  s.edge_label = labels.Name(q.edge_label);
  s.y_label = labels.Name(q.y_label);
  s.k = o.k;
  s.d = o.d;
  s.sigma = o.sigma;
  s.lambda = o.lambda;
  s.max_pattern_edges = o.max_pattern_edges;
  s.seed_edge_limit = o.seed_edge_limit;
  s.max_candidates_per_round = o.max_candidates_per_round;
  s.bool_flags = PackFlags(o);
  return s;
}

Status ValidateOptions(const MaintainOptions& options) {
  if (options.mine.k < 2) {
    return Status::InvalidArgument("k must be at least 2");
  }
  if (options.mine.d == 0) {
    return Status::InvalidArgument("d must be at least 1");
  }
  if (options.mine.enable_prune_aware_usupp) {
    return Status::InvalidArgument(
        "enable_prune_aware_usupp is not maintainable: its Usupp tightening "
        "depends on fragment geometry the sequential maintainer does not "
        "have");
  }
  return Status::OK();
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Folds one pass's counters into an accumulator. The evidence byte gauges
/// are point-in-time (the latest pass's evidence), not sums.
void Accumulate(MaintainStats* total, const MaintainStats& ps) {
  total->passes += ps.passes;
  total->edges_inserted += ps.edges_inserted;
  total->edges_deleted += ps.edges_deleted;
  total->affected_nodes += ps.affected_nodes;
  total->centers_reprobed += ps.centers_reprobed;
  total->centers_carried += ps.centers_carried;
  total->exists_calls += ps.exists_calls;
  total->candidates_evaluated += ps.candidates_evaluated;
  total->rules_patched += ps.rules_patched;
  total->rules_reexpanded += ps.rules_reexpanded;
  total->sigma_crossed_up += ps.sigma_crossed_up;
  total->sigma_crossed_down += ps.sigma_crossed_down;
  total->rules_accepted += ps.rules_accepted;
  if (ps.passes > 0) {
    total->evidence_bytes_full = ps.evidence_bytes_full;
    total->evidence_bytes_delta = ps.evidence_bytes_delta;
  }
  total->seconds += ps.seconds;
}

}  // namespace

RuleMaintainer::RuleMaintainer(std::shared_ptr<const Graph> g,
                               const Predicate& q,
                               const MaintainOptions& options)
    : options_(options), graph_(std::move(g)), q_(q) {
  pq_ = q_.ToPattern();
  PNodeId x = base_.AddNode(q_.x_label);
  PNodeId y = base_.AddNode(q_.y_label);
  base_.set_x(x);
  base_.set_y(y);
  evidence_.setup = MakeSetup(options_.mine, q_, graph_->labels());
}

Result<std::unique_ptr<RuleMaintainer>> RuleMaintainer::Seed(
    std::shared_ptr<const Graph> g, const Predicate& q,
    const MaintainOptions& options) {
  GPAR_RETURN_NOT_OK(ValidateOptions(options));
  if (g == nullptr) return Status::InvalidArgument("null graph");
  if (q.x_label >= g->labels().size() || q.edge_label >= g->labels().size() ||
      q.y_label >= g->labels().size()) {
    return Status::InvalidArgument(
        "predicate labels are not interned in the graph's dictionary");
  }
  std::unique_ptr<RuleMaintainer> m(
      new RuleMaintainer(std::move(g), q, options));
  MaintainStats ps;
  GPAR_RETURN_NOT_OK(m->RefreshPass(nullptr, &ps));
  Accumulate(&m->lifetime_, ps);
  return m;
}

Result<std::unique_ptr<RuleMaintainer>> RuleMaintainer::FromEvidence(
    std::shared_ptr<const Graph> g, RuleSetEvidence evidence,
    const MaintainOptions& options) {
  GPAR_RETURN_NOT_OK(ValidateOptions(options));
  if (g == nullptr) return Status::InvalidArgument("null graph");
  Interner* labels = g->labels_ptr().get();
  const Predicate q{labels->Intern(evidence.setup.x_label),
                    labels->Intern(evidence.setup.edge_label),
                    labels->Intern(evidence.setup.y_label)};
  std::unique_ptr<RuleMaintainer> m(
      new RuleMaintainer(std::move(g), q, options));
  if (!(evidence.setup == m->evidence_.setup)) {
    return Status::InvalidArgument(
        "evidence mining setup does not match MaintainOptions: evidence is "
        "only reusable under the exact parameters it was mined with");
  }
  m->evidence_ = std::move(evidence);
  m->RebuildIndex();
  // A zero-delta pass rebuilds Σ/top-k from the adopted evidence: with an
  // empty affected map every membership is carried, so this is pattern-
  // level work only (no pool probes) when the evidence matches the graph —
  // and a sound (if slow) re-expansion when it does not.
  const std::unordered_map<NodeId, uint32_t> kNoneAffected;
  MaintainStats ps;
  GPAR_RETURN_NOT_OK(m->RefreshPass(&kNoneAffected, &ps));
  Accumulate(&m->lifetime_, ps);
  return m;
}

void RuleMaintainer::RebuildIndex() {
  index_.clear();
  for (uint32_t i = 0; i < evidence_.entries.size(); ++i) {
    index_[StructuralHash(evidence_.entries[i].rule.pr())].push_back(i);
  }
}

Status RuleMaintainer::RefreshPass(
    const std::unordered_map<NodeId, uint32_t>* affected, MaintainStats* ps) {
  const auto t0 = std::chrono::steady_clock::now();
  const DmineOptions& mo = options_.mine;
  const Graph& g = *graph_;
  if (!options_.enable_incremental_maintenance) affected = nullptr;
  ++ps->passes;

  VF2Matcher matcher(g);
  SearchPlanStore plan_store(g);
  if (mo.enable_shared_plans) {
    PNodeId px = pq_.x();
    plan_store.Prepare(pq_, {&px, 1});
    matcher.set_plan_store(&plan_store);
  }

  // --- Round 0: the q / ~q pools, patched over the affected frontier.
  // Pool membership of a center depends on G_1(center) (P_q has radius 1;
  // the ~q test reads the center's own out-edges), so only centers within
  // distance 1 of a touched endpoint are re-probed.
  RuleSetEvidence next;
  next.setup = evidence_.setup;
  for (NodeId c : g.nodes_with_label(q_.x_label)) {
    bool probe = affected == nullptr;
    if (!probe) {
      auto it = affected->find(c);
      probe = it != affected->end() && it->second <= 1;
    }
    bool in_q = false, in_qbar = false;
    if (probe) {
      ++ps->centers_reprobed;
      ++ps->exists_calls;
      in_q = matcher.ExistsAt(pq_, c);
      if (!in_q) in_qbar = g.HasOutLabel(c, q_.edge_label);
    } else {
      ++ps->centers_carried;
      in_q = std::binary_search(evidence_.q_pool.begin(),
                                evidence_.q_pool.end(), c);
      if (!in_q) {
        in_qbar = std::binary_search(evidence_.qbar_pool.begin(),
                                     evidence_.qbar_pool.end(), c);
      }
    }
    if (in_q) {
      next.q_pool.push_back(c);
    } else if (in_qbar) {
      next.qbar_pool.push_back(c);
    }
  }

  const uint64_t supp_q = next.q_pool.size();
  const uint64_t supp_qbar = next.qbar_pool.size();
  if (supp_q == 0 || supp_qbar == 0) {
    // Dmine's early-out: no mineable rules. Discovery is skipped, so no
    // evidence gets refreshed — and stale entries must not survive to be
    // patched against a graph they no longer describe. Drop them; the next
    // pass with live pools re-expands from scratch.
    evidence_ = std::move(next);
    index_.clear();
    topk_.clear();
    objective_ = 0;
    ps->seconds = SecondsSince(t0);
    return Status::OK();
  }

  const double n_norm =
      static_cast<double>(supp_q) * static_cast<double>(supp_qbar);
  IncDiv incdiv(mo.k, mo.lambda, n_norm);
  std::vector<std::shared_ptr<MinedRule>> sigma;
  std::unordered_map<uint64_t, std::vector<Pattern>> seen_buckets;
  const std::vector<EdgePatternStat> seeds =
      FrequentEdgePatterns(g, mo.seed_edge_limit);
  VF2Matcher global_matcher(g);
  DmineStats dedup_stats;  // scratch for DedupCandidates' counters
  const bool prune = mo.enable_parent_prune;
  static const std::vector<NodeId> kNoOldSet;

  // This round's parents, with the index of each parent's entry in
  // `next.entries` (its freshly patched pools).
  std::vector<std::shared_ptr<MinedRule>> m_parents;
  std::vector<uint32_t> m_parent_entry;

  // The discovery skeleton below replays Dmine's coordinator loop verbatim
  // (same candidate stream, dedup, acceptance, incDiv and reduction calls),
  // with match evaluation swapped for evidence patching. Supports computed
  // here are exactly the full-probe values — locality carries unaffected
  // memberships, anti-monotone pools bound the rest — so the pass output is
  // byte-identical to Dmine on the current graph.
  for (uint32_t round = 1;
       round <= mo.max_pattern_edges && (round == 1 || !m_parents.empty());
       ++round) {
    std::vector<Gpar> fresh;
    std::vector<size_t> fresh_parent;
    auto generate_from = [&](const Pattern& ant, size_t parent_idx) {
      std::vector<Gpar> ext = GenerateExtensions(
          ant, q_.edge_label, mo.d, mo.max_pattern_edges, seeds);
      for (Gpar& e : ext) {
        fresh.push_back(std::move(e));
        fresh_parent.push_back(parent_idx);
      }
    };
    if (round == 1) {
      generate_from(base_, kRootParent);
    } else {
      for (size_t pi = 0; pi < m_parents.size(); ++pi) {
        generate_from(m_parents[pi]->rule.antecedent(), pi);
      }
    }

    const std::vector<size_t> kept =
        DedupCandidates(fresh, mo.max_candidates_per_round, &seen_buckets,
                        mo.enable_bisim_prefilter, &dedup_stats);
    std::vector<Gpar> candidates;
    std::vector<size_t> cand_parent;
    candidates.reserve(kept.size());
    cand_parent.reserve(kept.size());
    for (size_t idx : kept) {
      candidates.push_back(std::move(fresh[idx]));
      cand_parent.push_back(fresh_parent[idx]);
    }
    if (candidates.empty()) break;
    ps->candidates_evaluated += candidates.size();

    std::vector<char> other_ok(candidates.size(), 1);
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      for (const Pattern& comp : candidates[ci].other_components()) {
        ++ps->exists_calls;
        if (!global_matcher.Exists(comp)) {
          other_ok[ci] = 0;
          break;
        }
      }
    }

    if (mo.enable_shared_plans) {
      for (const Gpar& r : candidates) {
        PNodeId prx = r.pr().x();
        plan_store.Prepare(r.pr(), {&prx, 1});
        PNodeId qx = r.x_component().x();
        plan_store.Prepare(r.x_component(), {&qx, 1});
      }
    }

    std::vector<std::shared_ptr<MinedRule>> delta;
    std::vector<uint32_t> delta_entry;  // entry index per accepted rule

    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const Gpar& r = candidates[ci];
      const uint32_t radius = r.eval_radius();

      // Pools: the parent's THIS-pass match sets (already exact), or the
      // round-0 pools for roots and the prune-off ablation. Note: spans
      // into entry vectors stay valid across `next.entries` growth — vector
      // reallocation moves the EvidenceEntry objects, which transfers the
      // inner buffers without touching their contents.
      const uint32_t parent_entry =
          (prune && cand_parent[ci] != kRootParent)
              ? m_parent_entry[cand_parent[ci]]
              : kEvidenceRoot;
      std::span<const NodeId> pr_pool =
          parent_entry != kEvidenceRoot
              ? std::span<const NodeId>(next.entries[parent_entry].pr_matches)
              : std::span<const NodeId>(next.q_pool);
      std::span<const NodeId> ant_pool =
          parent_entry != kEvidenceRoot
              ? std::span<const NodeId>(next.entries[parent_entry].ant_matches)
              : std::span<const NodeId>(next.qbar_pool);

      // Prior evidence for this exact pattern, if any (a fresh pattern —
      // new seed, shifted lineage — has none and is re-expanded over its
      // pool, which its parent has already narrowed).
      const EvidenceEntry* old_ev = nullptr;
      if (affected != nullptr) {
        auto it = index_.find(StructuralHash(r.pr()));
        if (it != index_.end()) {
          for (uint32_t ei : it->second) {
            if (evidence_.entries[ei].rule == r) {
              old_ev = &evidence_.entries[ei];
              break;
            }
          }
        }
      }
      if (old_ev != nullptr) {
        ++ps->rules_patched;
      } else {
        ++ps->rules_reexpanded;
      }

      // Membership of `c` in pattern `p` (eval radius <= `radius`): probe
      // when the center sits inside the affected region at that radius or
      // there is no evidence to carry; otherwise G_radius(c) is unchanged
      // and the prior pass's answer stands (locality, Section 5.1).
      auto membership = [&](NodeId c, const Pattern& p,
                            const std::vector<NodeId>& old_set,
                            bool have_old) -> bool {
        bool must_probe = !have_old;
        if (!must_probe) {
          auto it = affected->find(c);
          must_probe = it != affected->end() && it->second <= radius;
        }
        if (must_probe) {
          ++ps->centers_reprobed;
          ++ps->exists_calls;
          return matcher.ExistsAt(p, c);
        }
        ++ps->centers_carried;
        return std::binary_search(old_set.begin(), old_set.end(), c);
      };

      EvidenceEntry ent;
      ent.rule = r;
      ent.parent = parent_entry;
      auto rule = std::make_shared<MinedRule>();
      rule->rule = r;

      const bool have_pr = old_ev != nullptr;
      for (NodeId c : pr_pool) {
        if (membership(c, r.pr(), have_pr ? old_ev->pr_matches : kNoOldSet,
                       have_pr)) {
          ent.pr_matches.push_back(c);
        }
      }
      rule->supp = ent.pr_matches.size();
      rule->matches = ent.pr_matches;
      rule->extendable = rule->supp > 0;
      rule->usupp = rule->supp;  // enable_prune_aware_usupp rejected upfront
      rule->uconf_plus = UConfPlus(rule->usupp, supp_qbar, supp_q);

      if (other_ok[ci]) {
        ent.ant_probed = true;
        const bool have_ant = old_ev != nullptr && old_ev->ant_probed;
        for (NodeId c : ant_pool) {
          if (membership(c, r.x_component(),
                         have_ant ? old_ev->ant_matches : kNoOldSet,
                         have_ant)) {
            ent.ant_matches.push_back(c);
          }
        }
        rule->supp_qqbar = ent.ant_matches.size();
      }

      if (old_ev != nullptr) {
        const bool was_in = old_ev->pr_matches.size() >= mo.sigma;
        const bool now_in = rule->supp >= mo.sigma;
        if (!was_in && now_in) ++ps->sigma_crossed_up;
        if (was_in && !now_in) ++ps->sigma_crossed_down;
      }

      const uint32_t entry_idx = static_cast<uint32_t>(next.entries.size());
      next.entries.push_back(std::move(ent));

      if (rule->supp < mo.sigma) continue;
      if (rule->supp_qqbar == 0) continue;  // trivial logic rule
      rule->conf =
          BayesFactorConf(rule->supp, supp_qbar, rule->supp_qqbar, supp_q);
      delta.push_back(std::move(rule));
      delta_entry.push_back(entry_idx);
    }
    ps->rules_accepted += delta.size();
    sigma.insert(sigma.end(), delta.begin(), delta.end());

    if (mo.enable_incremental_div) {
      incdiv.AddRound(delta, sigma);
      if (mo.enable_reduction_rules) {
        ApplyReductionRules(
            sigma, delta, incdiv.MinPairFPrime(), mo.lambda, n_norm, mo.k,
            [&](const MinedRule* rr) { return incdiv.InQueue(rr); });
      }
    }

    m_parents.clear();
    m_parent_entry.clear();
    for (size_t di = 0; di < delta.size(); ++di) {
      const auto& rr = delta[di];
      if (!rr->extendable || rr->pruned ||
          rr->rule.antecedent().num_edges() >= mo.max_pattern_edges) {
        continue;
      }
      m_parents.push_back(rr);
      m_parent_entry.push_back(delta_entry[di]);
    }
  }

  if (mo.enable_incremental_div) {
    topk_ = incdiv.TopK();
    objective_ = incdiv.Objective();
  } else {
    topk_ = FullDiversify(sigma, mo.k, mo.lambda, n_norm);
    std::vector<double> confs;
    std::vector<const std::vector<NodeId>*> sets;
    for (const auto& r : topk_) {
      confs.push_back(r->conf);
      sets.push_back(&r->matches);
    }
    objective_ = ObjectiveF(confs, sets, mo.lambda, n_norm, mo.k);
  }

  evidence_ = std::move(next);
  RebuildIndex();

  for (const EvidenceEntry& e : evidence_.entries) {
    const size_t parent_pr =
        e.parent == kEvidenceRoot ? evidence_.q_pool.size()
                                  : evidence_.entries[e.parent].pr_matches.size();
    const size_t parent_ant =
        e.parent == kEvidenceRoot
            ? evidence_.qbar_pool.size()
            : evidence_.entries[e.parent].ant_matches.size();
    ps->evidence_bytes_full += FullEncodedBytes(e.pr_matches.size()) +
                               FullEncodedBytes(e.ant_matches.size());
    ps->evidence_bytes_delta +=
        DeltaEncodedBytes(e.pr_matches.size(), parent_pr) +
        DeltaEncodedBytes(e.ant_matches.size(), parent_ant);
  }
  ps->seconds = SecondsSince(t0);
  return Status::OK();
}

Result<MaintainStats> RuleMaintainer::Advance(
    const Graph& old_graph, std::shared_ptr<const Graph> new_graph,
    std::span<const EdgeInsert> applied,
    std::span<const EdgeDelete> applied_deletes) {
  if (new_graph == nullptr) return Status::InvalidArgument("null graph");
  MaintainStats ps;
  ps.edges_inserted = applied.size();
  ps.edges_deleted = applied_deletes.size();
  graph_ = std::move(new_graph);

  std::unordered_map<NodeId, uint32_t> affected;
  const std::unordered_map<NodeId, uint32_t>* affected_ptr = nullptr;
  if (options_.enable_incremental_maintenance) {
    // The shared re-probe frontier, at the mining radius: every generated
    // rule has eval_radius() <= mine.d, and the pools live at radius 1.
    const auto region = DeltaAffectedRegion(old_graph, *graph_, applied,
                                            applied_deletes, options_.mine.d);
    affected.reserve(region.size());
    for (const auto& [v, dist] : region) affected.emplace(v, dist);
    ps.affected_nodes = affected.size();
    affected_ptr = &affected;
  }
  GPAR_RETURN_NOT_OK(RefreshPass(affected_ptr, &ps));
  Accumulate(&lifetime_, ps);
  return ps;
}

Result<MaintainStats> RuleMaintainer::ApplyDelta(const GraphDelta& delta) {
  GPAR_ASSIGN_OR_RETURN(GraphPatch patch, PatchGraph(*graph_, delta));
  if (delta.sequence > last_sequence_) last_sequence_ = delta.sequence;
  if (patch.applied.empty() && patch.applied_deletes.empty()) {
    // Nothing changed (duplicates/missing only, or a compaction marker):
    // the rule set is already fresh.
    return MaintainStats{};
  }
  std::shared_ptr<const Graph> old = graph_;
  auto next = std::make_shared<const Graph>(std::move(patch.graph));
  return Advance(*old, std::move(next), patch.applied, patch.applied_deletes);
}

Result<MaintainStats> RuleMaintainer::ReplayJournal(
    const std::string& journal_path) {
  MaintainStats total;
  GPAR_RETURN_NOT_OK(ReplayRange(
      journal_path, last_sequence_, [&](const GraphDelta& frame) -> Status {
        auto r = ApplyDelta(frame);
        if (!r.ok()) return r.status();
        Accumulate(&total, r.value());
        return Status::OK();
      }));
  return total;
}

std::vector<RuleRecord> RuleMaintainer::TopKRecords() const {
  std::vector<RuleRecord> out;
  out.reserve(topk_.size());
  for (const auto& r : topk_) {
    out.push_back(RuleRecord{r->rule, r->supp, r->conf});
  }
  return out;
}

}  // namespace gpar
