#include "maintain/maintain_command.h"

#include <memory>
#include <utility>

#include "graph/graph_snapshot.h"
#include "rule/rule_snapshot.h"

namespace gpar {

Result<MaintainOptions> MaintainOptionsFromSetup(const MiningSetup& setup,
                                                 const MaintainOptions& base) {
  if (setup.bool_flags > 0xffu) {
    return Status::InvalidArgument(
        "evidence setup carries unknown ablation flag bits (" +
        std::to_string(setup.bool_flags >> 8) +
        " above bit 7): written by a newer build?");
  }
  MaintainOptions o = base;
  o.mine.k = setup.k;
  o.mine.d = setup.d;
  o.mine.sigma = setup.sigma;
  o.mine.lambda = setup.lambda;
  o.mine.max_pattern_edges = setup.max_pattern_edges;
  o.mine.seed_edge_limit = setup.seed_edge_limit;
  o.mine.max_candidates_per_round = setup.max_candidates_per_round;
  o.mine.enable_incremental_div = (setup.bool_flags & (1u << 0)) != 0;
  o.mine.enable_reduction_rules = (setup.bool_flags & (1u << 1)) != 0;
  o.mine.enable_bisim_prefilter = (setup.bool_flags & (1u << 2)) != 0;
  o.mine.enable_parent_prune = (setup.bool_flags & (1u << 3)) != 0;
  o.mine.enable_worker_gen = (setup.bool_flags & (1u << 4)) != 0;
  o.mine.use_fragment_copies = (setup.bool_flags & (1u << 5)) != 0;
  o.mine.enable_shared_plans = (setup.bool_flags & (1u << 6)) != 0;
  o.mine.enable_prune_aware_usupp = (setup.bool_flags & (1u << 7)) != 0;
  return o;
}

Result<MaintainReport> RunMaintain(const MaintainRequest& req) {
  if (req.graph_snapshot.empty()) {
    return Status::InvalidArgument("maintain: --graph-snapshot is required");
  }
  if (req.rules_snapshot.empty()) {
    return Status::InvalidArgument("maintain: --rules-snapshot is required");
  }
  GPAR_ASSIGN_OR_RETURN(Graph loaded,
                        ReadGraphSnapshotFile(req.graph_snapshot));
  auto g = std::make_shared<const Graph>(std::move(loaded));

  GPAR_ASSIGN_OR_RETURN(
      RuleSetSnapshot snap,
      ReadRuleSetSnapshotAnyFile(req.rules_snapshot, g->labels_ptr().get()));

  MaintainReport report;
  report.rules_in = snap.rules.size();

  std::unique_ptr<RuleMaintainer> maintainer;
  if (snap.has_evidence) {
    GPAR_ASSIGN_OR_RETURN(
        MaintainOptions options,
        MaintainOptionsFromSetup(snap.evidence.setup, req.options));
    GPAR_ASSIGN_OR_RETURN(
        maintainer,
        RuleMaintainer::FromEvidence(g, std::move(snap.evidence), options));
  } else {
    report.seeded = true;
    if (req.x_label.empty() || req.edge_label.empty() ||
        req.y_label.empty()) {
      return Status::InvalidArgument(
          "maintain: rule snapshot " + req.rules_snapshot +
          " has no evidence section (v1); seeding a maintainer requires "
          "--x/--edge/--y (and the mining flags) to define the predicate");
    }
    auto lookup = [&](const std::string& name, LabelId* slot) -> Status {
      *slot = g->labels().Lookup(name);
      if (*slot == kNoLabel) {
        return Status::InvalidArgument(
            "maintain: label '" + name +
            "' does not occur in the graph snapshot");
      }
      return Status::OK();
    };
    Predicate q;
    GPAR_RETURN_NOT_OK(lookup(req.x_label, &q.x_label));
    GPAR_RETURN_NOT_OK(lookup(req.edge_label, &q.edge_label));
    GPAR_RETURN_NOT_OK(lookup(req.y_label, &q.y_label));
    GPAR_ASSIGN_OR_RETURN(maintainer,
                          RuleMaintainer::Seed(g, q, req.options));
  }

  if (!req.journal.empty()) {
    // Scan first so strict mode can refuse lossy history up front (and so
    // the report carries what the scan found even when zero frames apply).
    GPAR_ASSIGN_OR_RETURN(
        DeltaJournalCursor cursor,
        DeltaJournalCursor::Open(req.journal, &report.journal_scan));
    if (report.journal_scan.tail_truncated) {
      const std::string what =
          "journal " + req.journal + " lost " +
          std::to_string(report.journal_scan.dropped_bytes) +
          " trailing bytes to a torn tail";
      if (req.strict) {
        return Status::Corruption(
            "maintain: " + what + "; refusing to maintain in strict mode");
      }
      report.warnings.push_back(what + " (replaying the intact prefix)");
    }
    (void)cursor;  // scan-only: ReplayJournal re-reads through its own cursor
    GPAR_ASSIGN_OR_RETURN(const MaintainStats replayed,
                          maintainer->ReplayJournal(req.journal));
    (void)replayed;  // folded into lifetime_stats(), reported below
  }

  report.stats = maintainer->lifetime_stats();
  report.last_sequence = maintainer->last_sequence();
  report.objective = maintainer->objective();

  const std::vector<RuleRecord> records = maintainer->TopKRecords();
  report.rules_out = records.size();
  report.out_path = req.out.empty() ? req.rules_snapshot : req.out;
  GPAR_RETURN_NOT_OK(WriteRuleSetSnapshotV2File(
      records, maintainer->evidence(), g->labels(), report.out_path));
  return report;
}

int MaintainExitCode(const Status& status, bool strict) {
  if (status.ok()) return 0;
  if (status.code() == StatusCode::kInvalidArgument) return 2;
  return strict ? 3 : 1;
}

}  // namespace gpar
