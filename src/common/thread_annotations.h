#ifndef GPAR_COMMON_THREAD_ANNOTATIONS_H_
#define GPAR_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attributes (no-ops on other compilers).
///
/// These macros let the locking discipline of the concurrent tiers
/// (parallel/, serve/) be stated in the type system and checked at compile
/// time with `-Werror=thread-safety` (the `analyze` CMake preset; plain
/// clang builds get `-Wthread-safety` promoted by the global -Werror).
/// The annotated primitives live in common/mutex.h — new code takes
/// `Mutex`/`MutexLock`/`CondVar` from there, never raw `std::mutex`
/// (enforced by tools/gpar_lint.py).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define GPAR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GPAR_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define GPAR_CAPABILITY(x) GPAR_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime equals a region of held capability.
#define GPAR_SCOPED_CAPABILITY GPAR_THREAD_ANNOTATION__(scoped_lockable)

/// Data member is protected by the given capability.
#define GPAR_GUARDED_BY(x) GPAR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointed-to data is protected by the given capability.
#define GPAR_PT_GUARDED_BY(x) GPAR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define GPAR_REQUIRES(...) \
  GPAR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability (and it must not already be held).
#define GPAR_ACQUIRE(...) \
  GPAR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define GPAR_RELEASE(...) \
  GPAR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define GPAR_TRY_ACQUIRE(...) \
  GPAR_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define GPAR_EXCLUDES(...) \
  GPAR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime semantics, compile-time for analysis) that the
/// capability is held.
#define GPAR_ASSERT_CAPABILITY(x) \
  GPAR_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define GPAR_RETURN_CAPABILITY(x) GPAR_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot follow. Every use must carry a justifying comment.
#define GPAR_NO_THREAD_SAFETY_ANALYSIS \
  GPAR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // GPAR_COMMON_THREAD_ANNOTATIONS_H_
