#include "common/interner.h"

namespace gpar {

namespace {
const std::string kNoLabelName = "<none>";
const std::string kWildcardName = "*";
const std::string kUnknownName = "<unknown>";
}  // namespace

LabelId Interner::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId Interner::Lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kNoLabel : it->second;
}

const std::string& Interner::Name(LabelId id) const {
  if (id == kNoLabel) return kNoLabelName;
  if (id == kWildcardLabel) return kWildcardName;
  if (id >= names_.size()) return kUnknownName;
  return names_[id];
}

}  // namespace gpar
