#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace gpar {

namespace internal {
std::atomic<int> g_armed_failpoints{0};
}  // namespace internal

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& site, FailpointSpec spec) {
  MutexLock lock(mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  it->second.spec = std::move(spec);
  it->second.rng.seed(it->second.spec.seed);
  it->second.passes = 0;
  it->second.fired = 0;
  if (inserted) {
    // Relaxed: the macro fast path only needs to eventually observe a
    // nonzero count; Check() itself synchronizes through mu_.
    internal::g_armed_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  if (sites_.erase(site) > 0) {
    // Relaxed: see Arm — the count is advisory for the fast path only.
    internal::g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mu_);
  // Relaxed: see Arm — the count is advisory for the fast path only.
  internal::g_armed_failpoints.fetch_sub(static_cast<int>(sites_.size()),
                                         std::memory_order_relaxed);
  sites_.clear();
}

uint64_t FailpointRegistry::Passes(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.passes;
}

uint64_t FailpointRegistry::Fires(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

bool FailpointRegistry::PassFires(const char* site, FailpointSpec* spec) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Armed& armed = it->second;
  const uint64_t pass = armed.passes++;
  if (pass < armed.spec.skip) return false;
  if (armed.spec.fires != 0 && armed.fired >= armed.spec.fires) return false;
  if (armed.spec.probability < 1.0) {
    std::uniform_real_distribution<double> draw(0.0, 1.0);
    if (draw(armed.rng) >= armed.spec.probability) return false;
  }
  ++armed.fired;
  *spec = armed.spec;
  return true;
}

Status FailpointRegistry::Check(const char* site) {
  FailpointSpec spec;
  if (!PassFires(site, &spec)) return Status::OK();
  if (spec.latency_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(spec.latency_micros));
  }
  return Status::FromCode(spec.code, std::string("failpoint ") + site + ": " +
                                         spec.message);
}

size_t FailpointRegistry::TornWriteLimit(const char* site, size_t size) {
  FailpointSpec spec;
  if (!PassFires(site, &spec)) return size;
  if (spec.torn_bytes < 0) return size;
  if (spec.latency_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(spec.latency_micros));
  }
  const size_t cap = size == 0 ? 0 : size - 1;
  return std::min<size_t>(static_cast<size_t>(spec.torn_bytes), cap);
}

}  // namespace gpar
