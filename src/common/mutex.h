#ifndef GPAR_COMMON_MUTEX_H_
#define GPAR_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gpar {

// The project's only sanctioned locking primitives: thin zero-cost wrappers
// over std::mutex / std::condition_variable carrying clang thread-safety
// capability annotations, so GUARDED_BY / REQUIRES contracts on the data
// they protect are compile-checked under `-Werror=thread-safety`. Raw
// std::mutex / std::lock_guard / std::unique_lock outside this header are
// rejected by tools/gpar_lint.py: an unannotated lock is invisible to the
// analysis and silently exempts everything it guards.

class CondVar;

/// Annotated mutual-exclusion capability. Same cost and semantics as the
/// std::mutex it wraps.
class GPAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GPAR_ACQUIRE() { mu_.lock(); }
  void Unlock() GPAR_RELEASE() { mu_.unlock(); }
  bool TryLock() GPAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a `Mutex` — the project's std::lock_guard. The analysis
/// treats the guarded region as exactly the object's lifetime.
class GPAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPAR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GPAR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable while holding an annotated `Mutex`.
///
/// `Wait` takes the mutex the caller already holds (REQUIRES), so guarded
/// members may be read in the caller's wait loop without analysis escapes:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // ready_ GUARDED_BY(mu_)
///
/// There is deliberately no predicate overload: a predicate lambda is a
/// separate function to the analysis and would need a REQUIRES annotation
/// clang cannot attach to a lambda; the explicit while loop keeps every
/// guarded access inside the annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and re-acquires `mu`
  /// before returning. Spurious wakeups possible — always loop.
  void Wait(Mutex& mu) GPAR_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the MutexLock in the caller stays
    // the sole unlocker. The capability is held again when Wait returns,
    // matching the REQUIRES contract.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpar

#endif  // GPAR_COMMON_MUTEX_H_
