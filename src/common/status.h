#ifndef GPAR_COMMON_STATUS_H_
#define GPAR_COMMON_STATUS_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <ostream>
#include <string>
#include <utility>

namespace gpar {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of status codes instead of exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  /// Transient failure (an injected fault, a shard mid-resync): safe to
  /// retry. The serving router's retry policy keys on this code.
  kUnavailable,
  /// A per-request deadline budget ran out before the work completed.
  kDeadlineExceeded,
};

/// Lightweight status object returned by fallible operations.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise. Use the factory functions
/// (`Status::OK()`, `Status::InvalidArgument(...)`, ...) to construct.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Constructs from a runtime code — for layers (like the failpoint
  /// registry) that inject configured, not hardcoded, error categories.
  /// A `kOk` code yields OK and drops the message.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller; the Arrow/RocksDB idiom.
#define GPAR_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::gpar::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace gpar

#endif  // GPAR_COMMON_STATUS_H_
