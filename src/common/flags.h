#ifndef GPAR_COMMON_FLAGS_H_
#define GPAR_COMMON_FLAGS_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <map>
#include <string>

#include "common/result.h"

namespace gpar {

/// Parsed `--flag value` pairs, keyed by flag name without the `--` prefix.
using FlagMap = std::map<std::string, std::string>;

/// Parses a strict `--flag value` argument list: every token at an even
/// offset from `first` must start with `--` and be followed by a value
/// token. Returns InvalidArgument for a non-flag token, a trailing flag
/// with no value (previously dropped silently), or a repeated flag.
Result<FlagMap> ParseFlagArgs(int argc, const char* const* argv, int first);

}  // namespace gpar

#endif  // GPAR_COMMON_FLAGS_H_
