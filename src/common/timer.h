#ifndef GPAR_COMMON_TIMER_H_
#define GPAR_COMMON_TIMER_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <chrono>
#include <cstdint>

namespace gpar {

/// Monotonic wall-clock stopwatch used by the benchmark harness and by the
/// BSP runtime's per-worker busy-time accounting.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates busy time across start/stop episodes; one per simulated
/// worker in the BSP runtime. The max across workers of the accumulated
/// time is the "parallel makespan" reported by the benchmark harness.
class BusyClock {
 public:
  void Start() { timer_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_seconds_ += timer_.Seconds();
      running_ = false;
    }
  }
  void Reset() { total_seconds_ = 0; running_ = false; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  Timer timer_;
  double total_seconds_ = 0;
  bool running_ = false;
};

}  // namespace gpar

#endif  // GPAR_COMMON_TIMER_H_
