#ifndef GPAR_COMMON_BINARY_IO_H_
#define GPAR_COMMON_BINARY_IO_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gpar {

/// Little-endian binary encoding helpers shared by the snapshot codecs
/// (graph and rule-set snapshots). Writers append fixed-width fields to a
/// payload string; `ByteReader` decodes with bounds checks so truncated or
/// corrupt payloads fail cleanly instead of reading out of range.
///
/// All multi-byte integers are little-endian regardless of host order, so
/// snapshot files are portable across machines.

inline void PutU32(std::string* buf, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf->append(b, 4);
}

inline void PutU64(std::string* buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf->append(b, 8);
}

/// Doubles are serialized as their IEEE-754 bit pattern: round-trips are
/// byte-exact, including NaN payloads and signed zeros.
inline void PutF64(std::string* buf, double v) {
  PutU64(buf, std::bit_cast<uint64_t>(v));
}

inline void PutString(std::string* buf, std::string_view s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s.data(), s.size());
}

/// Sequential decoder over a byte buffer. Every Read* returns false once
/// the buffer is exhausted; callers translate that into a Corruption status.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<unsigned char>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (data_.size() - pos_ < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Reads exactly `declared_size` bytes from `is` into `*out`, in bounded
/// chunks: the size comes from an untrusted header, so allocation must
/// track the bytes actually present — a corrupt size field then yields a
/// clean Corruption status instead of a multi-gigabyte allocation.
inline Status ReadSizedPayload(std::istream& is, uint64_t declared_size,
                               const char* what, std::string* out) {
  constexpr uint64_t kChunk = uint64_t{1} << 20;
  out->clear();
  out->reserve(static_cast<size_t>(std::min(declared_size, kChunk)));
  char buf[4096];
  uint64_t left = declared_size;
  while (left > 0) {
    const std::streamsize want =
        static_cast<std::streamsize>(std::min<uint64_t>(left, sizeof(buf)));
    is.read(buf, want);
    const std::streamsize got = is.gcount();
    if (got <= 0) {
      return Status::Corruption(std::string(what) + ": truncated payload");
    }
    out->append(buf, static_cast<size_t>(got));
    left -= static_cast<uint64_t>(got);
  }
  return Status::OK();
}

/// FNV-1a 64-bit — the snapshot payload checksum. Not cryptographic; it
/// guards against truncation and bit rot, not adversaries.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace gpar

#endif  // GPAR_COMMON_BINARY_IO_H_
