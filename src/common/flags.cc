#include "common/flags.h"

namespace gpar {

Result<FlagMap> ParseFlagArgs(int argc, const char* const* argv, int first) {
  FlagMap flags;
  for (int i = first; i < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || key.size() == 2) {
      return Status::InvalidArgument("expected --flag, got '" + key + "'");
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag '" + key + "' is missing a value");
    }
    auto [it, inserted] = flags.emplace(key.substr(2), argv[i + 1]);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("flag '" + key + "' given twice");
    }
  }
  return flags;
}

}  // namespace gpar
