#ifndef GPAR_COMMON_FAILPOINT_H_
#define GPAR_COMMON_FAILPOINT_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace gpar {

/// Deterministic fault injection for the serving tier's durability layer.
///
/// Code marks named *sites* with `GPAR_FAILPOINT("journal.append")`; tests
/// arm a site with a `FailpointSpec` describing *what* to inject (a
/// `Status` error, a latency spike, a torn write) and *when* (skip the
/// first N passes, fire M times, optionally with a seeded per-pass
/// probability). Unarmed sites cost one relaxed atomic load — the macros
/// never take a lock, allocate, or branch into the registry unless at
/// least one site is armed anywhere in the process.
///
/// Determinism: firing depends only on the spec and the site's pass
/// counter (plus an RNG seeded from `spec.seed` when `probability < 1`),
/// never on wall-clock time — a failing injection run replays exactly.
struct FailpointSpec {
  /// Error to inject on a fire. `kOk` fires without an error — useful for
  /// pure latency spikes that should not fail the call.
  StatusCode code = StatusCode::kUnavailable;
  /// Appended to the generated "failpoint <site>" message.
  std::string message = "injected";
  /// Passes through the site before the first fire.
  uint32_t skip = 0;
  /// Number of fires before the site goes quiet again; 0 = every pass
  /// after `skip` fires (a permanently failing site).
  uint32_t fires = 1;
  /// Per-pass fire probability once past `skip`; draws come from an RNG
  /// seeded with `seed`, so a given (spec, pass history) always fires the
  /// same way.
  double probability = 1.0;
  uint64_t seed = 0;
  /// Injected latency per fire, before the status is returned.
  uint32_t latency_micros = 0;
  /// Torn-write sites only (`GPAR_FAILPOINT_TORN`): how many bytes of the
  /// write actually reach the file on a fire. Negative = not a torn spec
  /// (the site fires as a plain error). Clamped below the full size, so a
  /// torn write is always genuinely torn.
  int64_t torn_bytes = -1;
};

namespace internal {
/// Count of armed sites, process-wide. Read by the macro fast path.
extern std::atomic<int> g_armed_failpoints;
}  // namespace internal

/// True when any failpoint is armed anywhere in the process.
inline bool FailpointsActive() noexcept {
  // Relaxed: a racing Arm/Disarm at worst sends one pass down the wrong
  // path (Check() re-checks under the registry mutex); no other memory
  // rides on this load.
  return internal::g_armed_failpoints.load(std::memory_order_relaxed) > 0;
}

/// Process-wide registry of armed failpoint sites. All methods are
/// thread-safe; tests typically Arm/Disarm from the main thread while
/// server threads pass through Check concurrently.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Arms (or re-arms, resetting counters) `site` with `spec`.
  void Arm(const std::string& site, FailpointSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Total passes through `site` while armed (diagnostics).
  uint64_t Passes(const std::string& site) const;
  /// Total fires at `site` since it was (re-)armed.
  uint64_t Fires(const std::string& site) const;

  /// The macro's slow path: counts a pass and, when the armed spec elects
  /// to fire, injects the configured latency and returns the configured
  /// status. OK when the site is unarmed, skipped, or exhausted.
  Status Check(const char* site);

  /// Torn-write support: byte budget for a `size`-byte write at `site`.
  /// Returns `size` unless the site is armed with `torn_bytes >= 0` and
  /// elects to fire, in which case the budget is `min(torn_bytes,
  /// size - 1)` — the caller writes that prefix and reports an IO error.
  size_t TornWriteLimit(const char* site, size_t size);

 private:
  struct Armed {
    FailpointSpec spec;
    std::mt19937_64 rng;
    uint64_t passes = 0;
    uint64_t fired = 0;
  };

  FailpointRegistry() = default;

  /// Pass/fire bookkeeping shared by Check and TornWriteLimit: returns
  /// whether this pass fires and copies the spec out for lock-free use.
  bool PassFires(const char* site, FailpointSpec* spec)
      GPAR_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, Armed> sites_ GPAR_GUARDED_BY(mu_);
};

}  // namespace gpar

/// Marks an injectable fault site in a function returning `Status` or
/// `Result<T>`: when the named site is armed and fires, the injected
/// status is returned from the enclosing function. Zero-cost (one relaxed
/// atomic load) while no failpoint is armed.
#define GPAR_FAILPOINT(site)                                              \
  do {                                                                    \
    if (::gpar::FailpointsActive()) {                                     \
      ::gpar::Status _gpar_fp =                                           \
          ::gpar::FailpointRegistry::Instance().Check(site);              \
      if (!_gpar_fp.ok()) return _gpar_fp;                                \
    }                                                                     \
  } while (false)

/// Torn-write budget for a `size`-byte write at `site`: evaluates to the
/// byte count to actually write (== `size` when unarmed or not firing).
#define GPAR_FAILPOINT_TORN(site, size)                                   \
  (::gpar::FailpointsActive()                                             \
       ? ::gpar::FailpointRegistry::Instance().TornWriteLimit(site, size) \
       : (size))

#endif  // GPAR_COMMON_FAILPOINT_H_
