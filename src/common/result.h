#ifndef GPAR_COMMON_RESULT_H_
#define GPAR_COMMON_RESULT_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace gpar {

/// A value-or-error holder: either a `T` or a non-OK `Status`.
///
/// Modeled on `arrow::Result`. Construction from a value yields `ok()`;
/// construction from a non-OK status yields an error result. Accessing the
/// value of an error result is a programming bug (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...;` works.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error status to the caller.
#define GPAR_ASSIGN_OR_RETURN(lhs, expr)       \
  auto GPAR_CONCAT_(result_, __LINE__) = (expr); \
  if (!GPAR_CONCAT_(result_, __LINE__).ok())     \
    return GPAR_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(GPAR_CONCAT_(result_, __LINE__)).value()

#define GPAR_CONCAT_(a, b) GPAR_CONCAT_IMPL_(a, b)
#define GPAR_CONCAT_IMPL_(a, b) a##b

}  // namespace gpar

#endif  // GPAR_COMMON_RESULT_H_
