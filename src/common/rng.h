#ifndef GPAR_COMMON_RNG_H_
#define GPAR_COMMON_RNG_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <cstdint>
#include <limits>

namespace gpar {

/// Deterministic 64-bit pseudo-random generator (xorshift128+ family).
///
/// All synthetic data in this repository (graphs, patterns, workloads) is
/// produced from explicit seeds through this generator so that tests and
/// benchmark tables are exactly reproducible across runs and platforms.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to spread low-entropy seeds across both words.
    uint64_t z = seed;
    s0_ = Mix(&z);
    s1_ = Mix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s`; small-n direct
  /// inversion on the precomputable harmonic weights is avoided in favour of
  /// rejection-free cumulative search, adequate for label sampling.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static uint64_t Mix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

/// Cheap x^s for s in [0, ~4]; accuracy is irrelevant for sampling skew.
double PowApprox(double x, double s);

inline uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over H(n, s) via linear scan with early exit; label
  // alphabets in this library are small (<= a few hundred), so the scan cost
  // is negligible next to graph generation itself.
  double h = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    h += 1.0 / PowApprox(static_cast<double>(i), s);
  }
  double u = NextDouble() * h;
  double acc = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / PowApprox(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

inline double PowApprox(double x, double s) {
  if (s == 1.0) return x;
  if (s == 2.0) return x * x;
  double r = 1.0;
  double acc = x;
  double e = s;
  // Exponentiation by squaring on integer part + linear blend on fraction.
  int ip = static_cast<int>(e);
  double frac = e - ip;
  for (int i = 0; i < ip; ++i) r *= acc;
  if (frac > 0) r *= 1.0 + frac * (x - 1.0);
  return r;
}

}  // namespace gpar

#endif  // GPAR_COMMON_RNG_H_
