#ifndef GPAR_COMMON_INTERNER_H_
#define GPAR_COMMON_INTERNER_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gpar {

/// Integer id for an interned label string. `kNoLabel` marks "no label";
/// `kWildcardLabel` matches any label under the extension semantics used by
/// the simulation matcher (never produced by `Intern`).
using LabelId = uint32_t;
inline constexpr LabelId kNoLabel = static_cast<LabelId>(-1);
inline constexpr LabelId kWildcardLabel = static_cast<LabelId>(-2);

/// Bidirectional string<->id dictionary for node and edge labels.
///
/// Graphs and patterns store `LabelId`s only; the interner is shared between
/// a graph and the patterns queried against it so that label equality is an
/// integer compare. Not thread-safe for interning; concurrent read-only
/// lookups are safe once loading is done.
class Interner {
 public:
  Interner() = default;

  /// Returns the id for `s`, inserting it if unseen.
  LabelId Intern(std::string_view s);

  /// Returns the id for `s` or `kNoLabel` if never interned.
  LabelId Lookup(std::string_view s) const;

  /// Returns the string for `id`; "<none>" for kNoLabel, "*" for wildcard.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace gpar

#endif  // GPAR_COMMON_INTERNER_H_
