#ifndef GPAR_COMMON_REQUIRE_CXX20_H_
#define GPAR_COMMON_REQUIRE_CXX20_H_

// The library uses C++20-only constructs (operator<=>, std::span, concepts)
// that can fail with inscrutable errors — or, worse, compile to subtly wrong
// overload resolutions — under an older dialect. Fail loudly with one clear
// diagnostic instead. (MSVC reports 199711L unless /Zc:__cplusplus is given;
// _MSVC_LANG carries the real value there.)
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "gpar requires C++20: compile with /std:c++20 /Zc:__cplusplus"
#endif
#elif __cplusplus < 202002L
#error "gpar requires C++20: compile with -std=c++20 (see CMakeLists.txt)"
#endif

#endif  // GPAR_COMMON_REQUIRE_CXX20_H_
