#include "match/simulation.h"

#include <algorithm>
#include <unordered_set>

namespace gpar {

std::vector<std::vector<NodeId>> DualSimulation(const Pattern& p0,
                                                const Graph& g) {
  const Pattern p = p0.ExpandMultiplicities();
  const PNodeId n = p.num_nodes();
  std::vector<std::unordered_set<NodeId>> sim(n);
  for (PNodeId u = 0; u < n; ++u) {
    for (NodeId v : g.nodes_with_label(p.node(u).label)) sim[u].insert(v);
  }

  // Fixpoint: drop v from sim(u) when some pattern edge at u has no
  // supporting edge into the current sim set of the other endpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (PNodeId u = 0; u < n; ++u) {
      for (auto it = sim[u].begin(); it != sim[u].end();) {
        NodeId v = *it;
        bool ok = true;
        for (const PatternAdj& a : p.adj(u)) {
          const auto& other_sim = sim[a.other];
          bool found = false;
          auto slice = a.out ? g.out_edges_labeled(v, a.elabel)
                             : g.in_edges_labeled(v, a.elabel);
          for (const AdjEntry& e : slice) {
            if (other_sim.count(e.other) > 0) {
              found = true;
              break;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          it = sim[u].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // If any pattern node's sim set is empty the simulation is empty.
    for (PNodeId u = 0; u < n; ++u) {
      if (sim[u].empty()) {
        return std::vector<std::vector<NodeId>>(n);
      }
    }
  }

  std::vector<std::vector<NodeId>> out(n);
  for (PNodeId u = 0; u < n; ++u) {
    out[u].assign(sim[u].begin(), sim[u].end());
    std::sort(out[u].begin(), out[u].end());
  }
  return out;
}

std::vector<NodeId> SimulationImages(const Pattern& p, const Graph& g,
                                     PNodeId u) {
  std::vector<PNodeId> first_copy;
  p.ExpandMultiplicities(&first_copy);
  auto sim = DualSimulation(p, g);
  if (sim.empty()) return {};
  return sim[first_copy.empty() ? u : first_copy[u]];
}

}  // namespace gpar
