#include "match/multi_pattern.h"

#include <algorithm>
#include <numeric>

#include "pattern/automorphism.h"
#include "pattern/pattern_ops.h"

namespace gpar {

MultiPatternEvaluator::MultiPatternEvaluator(
    std::vector<const Pattern*> patterns)
    : patterns_(std::move(patterns)) {
  const size_t n = patterns_.size();
  canonical_.resize(n);
  implies_.resize(n);
  implied_failed_.resize(n);

  // Duplicate elimination: canonical_[i] = first designated-isomorphic twin.
  for (size_t i = 0; i < n; ++i) {
    canonical_[i] = i;
    for (size_t j = 0; j < i; ++j) {
      if (canonical_[j] == j &&
          AreIsomorphic(*patterns_[i], *patterns_[j],
                        /*preserve_designated=*/true)) {
        canonical_[i] = j;
        break;
      }
    }
  }

  // Subsumption DAG over canonical representatives: i ⊑ j (i embeds into j,
  // anchored) means j's success implies i's, and i's failure implies j's.
  for (size_t i = 0; i < n; ++i) {
    if (canonical_[i] != i) continue;
    for (size_t j = 0; j < n; ++j) {
      if (i == j || canonical_[j] != j) continue;
      if (patterns_[i]->num_edges() <= patterns_[j]->num_edges() &&
          IsSubsumedBy(*patterns_[i], *patterns_[j],
                       /*anchor_designated=*/false)) {
        // Anchored-at-x subsumption is what licenses per-candidate pruning;
        // re-check with the anchor.
        if (IsSubsumedBy(*patterns_[i], *patterns_[j],
                         /*anchor_designated=*/true)) {
          implies_[j].push_back(i);         // j matched -> i matched
          implied_failed_[i].push_back(j);  // i failed  -> j failed
        }
      }
    }
  }

  // Evaluate small antecedents first so failures prune larger ones.
  eval_order_.resize(n);
  std::iota(eval_order_.begin(), eval_order_.end(), 0);
  std::stable_sort(eval_order_.begin(), eval_order_.end(),
                   [&](size_t a, size_t b) {
                     return patterns_[a]->num_edges() <
                            patterns_[b]->num_edges();
                   });
}

void MultiPatternEvaluator::EvaluateAt(Matcher& m, NodeId vx,
                                       std::vector<char>* out,
                                       const std::vector<char>* known_yes) const {
  const size_t n = patterns_.size();
  enum : char { kUnknown = -1, kNo = 0, kYes = 1 };
  std::vector<char> state(n, kUnknown);
  if (known_yes != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if ((*known_yes)[i]) {
        state[canonical_[i]] = kYes;
        for (size_t k : implies_[canonical_[i]]) {
          if (state[k] == kUnknown) state[k] = kYes;
        }
      }
    }
  }

  for (size_t idx : eval_order_) {
    if (canonical_[idx] != idx) continue;
    if (state[idx] != kUnknown) continue;
    ++queries_issued_;
    bool matched = m.ExistsAt(*patterns_[idx], vx);
    state[idx] = matched ? kYes : kNo;
    if (matched) {
      for (size_t k : implies_[idx]) {
        if (state[k] == kUnknown) state[k] = kYes;
      }
    } else {
      // Propagate failure transitively through the DAG.
      std::vector<size_t> stack(implied_failed_[idx].begin(),
                                implied_failed_[idx].end());
      while (!stack.empty()) {
        size_t k = stack.back();
        stack.pop_back();
        if (state[k] != kUnknown) continue;
        state[k] = kNo;
        stack.insert(stack.end(), implied_failed_[k].begin(),
                     implied_failed_[k].end());
      }
    }
  }

  out->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = state[canonical_[i]] == kYes ? 1 : 0;
  }
}

}  // namespace gpar
