#include "match/guided.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "pattern/pattern_ops.h"

namespace gpar {

KHopSketch ComputePatternSketch(const Pattern& p, PNodeId u, uint32_t k) {
  KHopSketch sk;
  sk.hops.resize(k);
  std::unordered_map<PNodeId, uint32_t> dist;
  std::deque<PNodeId> frontier{u};
  dist.emplace(u, 0);
  while (!frontier.empty()) {
    PNodeId w = frontier.front();
    frontier.pop_front();
    uint32_t dw = dist[w];
    if (dw == k) continue;
    for (const PatternAdj& a : p.adj(w)) {
      if (dist.emplace(a.other, dw + 1).second) frontier.push_back(a.other);
    }
  }
  std::vector<std::unordered_map<LabelId, uint32_t>> per_hop(k);
  for (const auto& [node, d] : dist) {
    if (d == 0) continue;
    per_hop[d - 1][p.node(node).label] += p.node(node).multiplicity;
  }
  for (uint32_t i = 0; i < k; ++i) {
    sk.hops[i].assign(per_hop[i].begin(), per_hop[i].end());
    std::sort(sk.hops[i].begin(), sk.hops[i].end());
  }
  return sk;
}

const KHopSketch& GuidedMatcher::SketchOf(NodeId v) {
  if (sketch_store_ != nullptr && sketch_store_->k() == k_ &&
      view() == nullptr) {
    if (const KHopSketch* stored = sketch_store_->Find(v)) {
      ++sketch_store_hits_;
      return *stored;
    }
  }
  auto it = cache_.find(v);
  if (it == cache_.end()) {
    // Stored pre-accumulated: comparisons on the hot loop are then pure
    // linear merges. Fragment views sketch the induced subgraph.
    KHopSketch raw = view() != nullptr ? ComputeSketch(*view(), v, k_)
                                       : ComputeSketch(graph(), v, k_);
    it = cache_.emplace(v, AccumulateSketch(raw)).first;
  }
  return it->second;
}

void GuidedMatcher::PrepareForPattern(const Pattern& p) {
  uint64_t h = StructuralHash(p);
  auto& bucket = pattern_cache_[h];
  for (const PatternSketches& entry : bucket) {
    if (entry.pattern == p) {
      pattern_sketches_ = &entry.sketches;
      return;
    }
  }
  PatternSketches entry;
  entry.pattern = p;
  entry.sketches.reserve(p.num_nodes());
  for (PNodeId u = 0; u < p.num_nodes(); ++u) {
    entry.sketches.push_back(AccumulateSketch(ComputePatternSketch(p, u, k_)));
  }
  bucket.push_back(std::move(entry));
  pattern_sketches_ = &bucket.back().sketches;
}

bool GuidedMatcher::FilterCandidate(const Pattern& p, PNodeId u, NodeId v) {
  (void)p;
  if (!sketch_engaged_) return true;
  return SketchCoversAccumulated(SketchOf(v), (*pattern_sketches_)[u]);
}

void GuidedMatcher::OrderCandidates(const Pattern& p, PNodeId u,
                                    std::vector<NodeId>* cands) {
  (void)p;
  sketch_engaged_ = cands->size() > kSketchGate;
  if (!sketch_engaged_) return;
  const KHopSketch& need = (*pattern_sketches_)[u];
  std::vector<std::pair<int64_t, NodeId>> scored;
  scored.reserve(cands->size());
  for (NodeId v : *cands) {
    scored.emplace_back(SketchScoreAccumulated(SketchOf(v), need), v);
  }
  // Best (largest slack) first; score < 0 means coverage already failed and
  // FilterCandidate will drop it, but keep deterministic order regardless.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; i < scored.size(); ++i) (*cands)[i] = scored[i].second;
}

}  // namespace gpar
