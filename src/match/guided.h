#ifndef GPAR_MATCH_GUIDED_H_
#define GPAR_MATCH_GUIDED_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/sketch.h"
#include "match/matcher.h"

namespace gpar {

/// Sketch-guided matcher (Section 5.2).
///
/// On top of the shared backtracking engine it adds:
///  * candidate filtering by k-hop sketch coverage — a candidate v cannot
///    match pattern node u unless v's neighborhood label counts dominate
///    u's at every hop prefix ("v' does not match u' if D_i - D'_i < 0");
///  * best-first candidate ordering by the slack score
///    f(u', v') = sum_i (D_i - D'_i), backtracking to the next-best
///    candidate on failure.
///
/// Graph-side sketches are computed lazily, one truncated BFS per *visited*
/// node, and memoized for the matcher's lifetime — nodes the search never
/// touches never pay for a sketch (crucial on large fragments, where an
/// eager index would dwarf the matching work itself). View-backed matchers
/// sketch the view-induced subgraph (BFS restricted to members), so
/// filtering and ordering match the copied-fragment baseline exactly.
class GuidedMatcher : public Matcher {
 public:
  explicit GuidedMatcher(const Graph& g, uint32_t k = 2)
      : Matcher(g), k_(k) {}
  explicit GuidedMatcher(const GraphView& view, uint32_t k = 2)
      : Matcher(view), k_(k) {}
  GuidedMatcher(const Graph& g, const GraphView* view, uint32_t k = 2)
      : Matcher(g, view), k_(k) {}

  /// Number of node sketches materialized so far (for tests/benches).
  size_t sketches_built() const { return cache_.size(); }

  /// Attaches a shared read-only sketch store (serving: precomputed once
  /// per session, refreshed under deltas). `SketchOf` consults it before
  /// paying for a private BFS; the store is only used when its k matches
  /// this matcher's and the matcher is not view-restricted (stored sketches
  /// are whole-graph; a view-induced sketch differs).
  void set_sketch_store(const SketchStore* store) { sketch_store_ = store; }

  /// Number of sketch lookups answered by the shared store.
  uint64_t sketch_store_hits() const { return sketch_store_hits_; }

 protected:
  void PrepareForPattern(const Pattern& p) override;
  bool FilterCandidate(const Pattern& p, PNodeId u, NodeId v) override;
  void OrderCandidates(const Pattern& p, PNodeId u,
                       std::vector<NodeId>* cands) override;

 private:
  const KHopSketch& SketchOf(NodeId v);

  /// Sketch filtering/ordering only engages for candidate lists above this
  /// size: tiny pivot-derived lists are cheaper to try directly than to
  /// sketch (the BFS behind one sketch costs more than a failed extension).
  static constexpr size_t kSketchGate = 12;

  /// Pattern-side sketches, cached across queries (the same Σ patterns are
  /// probed at thousands of candidates).
  struct PatternSketches {
    Pattern pattern;
    std::vector<KHopSketch> sketches;
  };

  uint32_t k_;
  const SketchStore* sketch_store_ = nullptr;
  uint64_t sketch_store_hits_ = 0;
  std::unordered_map<NodeId, KHopSketch> cache_;
  std::unordered_map<uint64_t, std::vector<PatternSketches>> pattern_cache_;
  const std::vector<KHopSketch>* pattern_sketches_ = nullptr;  // current
  bool sketch_engaged_ = false;  // set per candidate list by OrderCandidates
};

/// Computes the k-hop sketch of a pattern node over the pattern itself
/// (undirected hops, labels weighted by multiplicity-expanded counts).
KHopSketch ComputePatternSketch(const Pattern& p, PNodeId u, uint32_t k);

}  // namespace gpar

#endif  // GPAR_MATCH_GUIDED_H_
