#include "match/matcher.h"

#include <algorithm>
#include <deque>

#include "pattern/pattern_ops.h"

namespace gpar {

namespace {

// Mined pattern universes are bounded (a few thousand per run); the cache is
// cleared wholesale if a workload ever exceeds this, trading a re-plan for a
// memory ceiling.
constexpr size_t kMaxCachedPatterns = 1 << 14;

/// Sorts and deduplicates an anchored-node set into its plan-cache key form.
void CanonicalizeAnchored(std::vector<PNodeId>* anchored) {
  std::sort(anchored->begin(), anchored->end());
  anchored->erase(std::unique(anchored->begin(), anchored->end()),
                  anchored->end());
}

/// The plan matching an anchored set in an already-built entry, or nullptr.
const SearchPlan* FindPlanIn(const PatternPlanEntry& entry,
                             const std::vector<PNodeId>& anchored) {
  for (const SearchPlan& plan : entry.plans) {
    if (plan.anchored == anchored) return &plan;
  }
  return nullptr;
}

}  // namespace

SearchPlan BuildSearchPlan(
    const Pattern& expanded, std::vector<PNodeId> anchored,
    const std::function<size_t(LabelId)>& label_count) {
  CanonicalizeAnchored(&anchored);
  const Pattern& p = expanded;
  SearchPlan plan;
  plan.anchored = std::move(anchored);

  std::vector<bool> placed(p.num_nodes(), false);
  std::deque<PNodeId> frontier;
  auto place = [&](PNodeId u) {
    if (placed[u]) return;
    placed[u] = true;
    plan.order.push_back(u);
    frontier.push_back(u);
  };

  // Anchored nodes first, then BFS across pattern adjacency so every later
  // node has a mapped neighbor (pivot) when reached.
  for (PNodeId u : plan.anchored) place(u);
  auto drain = [&] {
    while (!frontier.empty()) {
      PNodeId u = frontier.front();
      frontier.pop_front();
      for (const PatternAdj& a : p.adj(u)) place(a.other);
    }
  };
  drain();
  // Disconnected remainder: root each component at the node whose label is
  // rarest in the graph (smallest candidate set).
  for (;;) {
    PNodeId best = kNoPatternNode;
    size_t best_count = 0;
    for (PNodeId u = 0; u < p.num_nodes(); ++u) {
      if (placed[u]) continue;
      size_t c = label_count(p.node(u).label);
      if (best == kNoPatternNode || c < best_count) {
        best = u;
        best_count = c;
      }
    }
    if (best == kNoPatternNode) break;
    place(best);
    drain();
  }
  return plan;
}

void SearchPlanStore::Prepare(const Pattern& p,
                              std::span<const PNodeId> anchored) {
  // Same memory ceiling as the private plan cache: a workload exceeding
  // the bounded mined-pattern universe trades a re-plan (consumers fall
  // back to their private caches) for bounded store growth.
  if (planned_ > kMaxCachedPatterns) {
    cache_.clear();
    planned_ = 0;
  }
  auto& bucket = cache_[StructuralHash(p)];
  PatternPlanEntry* entry = nullptr;
  for (PatternPlanEntry& e : bucket) {
    if (e.pattern == p) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    PatternPlanEntry fresh;
    fresh.pattern = p;
    fresh.expanded = p.ExpandMultiplicities(&fresh.first_copy);
    bucket.push_back(std::move(fresh));
    entry = &bucket.back();
    ++planned_;
  }
  std::vector<PNodeId> mapped;
  mapped.reserve(anchored.size());
  for (PNodeId u : anchored) mapped.push_back(entry->first_copy[u]);
  CanonicalizeAnchored(&mapped);
  if (FindPlanIn(*entry, mapped) != nullptr) return;  // idempotent
  entry->plans.push_back(BuildSearchPlan(
      entry->expanded, std::move(mapped),
      [this](LabelId l) { return g_.label_count(l); }));
}

const PatternPlanEntry* SearchPlanStore::Find(const Pattern& p) const {
  auto it = cache_.find(StructuralHash(p));
  if (it == cache_.end()) return nullptr;
  for (const PatternPlanEntry& entry : it->second) {
    if (entry.pattern == p) return &entry;
  }
  return nullptr;
}

PatternPlanEntry& Matcher::CacheEntryFor(const Pattern& p) {
  if (plans_cached_ > kMaxCachedPatterns) {
    plan_cache_.clear();
    plans_cached_ = 0;
  }
  auto& bucket = plan_cache_[StructuralHash(p)];
  for (PatternPlanEntry& entry : bucket) {
    if (entry.pattern == p) return entry;
  }
  PatternPlanEntry entry;
  entry.pattern = p;
  entry.expanded = p.ExpandMultiplicities(&entry.first_copy);
  bucket.push_back(std::move(entry));
  ++plans_cached_;
  return bucket.back();
}

const SearchPlan& Matcher::PlanFor(PatternPlanEntry& entry,
                                   const std::vector<PNodeId>& anchored_key) {
  if (const SearchPlan* plan = FindPlanIn(entry, anchored_key)) return *plan;
  // The copy into BuildSearchPlan happens once per (pattern, anchor set),
  // not per probe.
  entry.plans.push_back(BuildSearchPlan(
      entry.expanded, anchored_key, [this](LabelId l) {
        return view_ != nullptr ? view_->label_count(l) : g_.label_count(l);
      }));
  return entry.plans.back();
}

bool Matcher::Extend(const Pattern& p, const SearchPlan& plan, size_t level,
                     const EmbeddingCallback& cb, uint64_t limit,
                     uint64_t* count) {
  std::vector<NodeId>& mapping = scratch_.mapping;
  if (level == plan.order.size()) {
    ++*count;
    bool keep_going = cb(mapping);
    if (limit != 0 && *count >= limit) keep_going = false;
    return keep_going;
  }
  const PNodeId u = plan.order[level];
  const LabelId want = p.node(u).label;

  // Candidate source: anchored value, or neighbors of the pivot (the mapped
  // neighbor whose labeled adjacency list is smallest), or the label index.
  // View-backed matchers admit only member candidates, which is the entire
  // fragment restriction: mapped endpoints are then always members, so the
  // edge checks below can run on the parent CSR unfiltered (an induced
  // subgraph has every parent edge between member pairs).
  // The per-level buffer is owned by the scratch and reused across calls.
  std::vector<NodeId>& cands = scratch_.cand_bufs[level];
  cands.clear();
  if (scratch_.anchor_of[u] != kInvalidNode) {
    const NodeId anchor = scratch_.anchor_of[u];
    if (view_ == nullptr || view_->contains(anchor)) cands.push_back(anchor);
  } else {
    std::span<const AdjEntry> best_slice;
    bool have_pivot = false;
    for (const PatternAdj& a : p.adj(u)) {
      if (a.other == u || mapping[a.other] == kInvalidNode) continue;
      // Pattern edge between u and the mapped node a.other: candidates for
      // u are the corresponding neighbors of mapping[a.other].
      std::span<const AdjEntry> slice =
          a.out ? g_.in_edges_labeled(mapping[a.other], a.elabel)
                : g_.out_edges_labeled(mapping[a.other], a.elabel);
      if (!have_pivot || slice.size() < best_slice.size()) {
        best_slice = slice;
        have_pivot = true;
      }
    }
    if (have_pivot) {
      cands.reserve(best_slice.size());
      if (view_ == nullptr) {
        for (const AdjEntry& e : best_slice) cands.push_back(e.other);
      } else {
        for (const AdjEntry& e : best_slice) {
          if (view_->contains(e.other)) cands.push_back(e.other);
        }
      }
    } else {
      auto all = view_ != nullptr ? view_->nodes_with_label(want)
                                  : g_.nodes_with_label(want);
      cands.assign(all.begin(), all.end());
    }
  }

  OrderCandidates(p, u, &cands);

  for (NodeId v : cands) {
    ++nodes_visited_;
    if (g_.node_label(v) != want) continue;
    // Injectivity: the used bitmap mirrors `mapping` (set/cleared with it),
    // replacing the O(|P|) scan over mapped nodes.
    if (scratch_.used[v]) continue;
    if (!FilterCandidate(p, u, v)) continue;
    // Every pattern edge between u and an already-mapped node (including
    // self-loops) must exist in the graph with the right label.
    bool edges_ok = true;
    for (const PatternAdj& a : p.adj(u)) {
      NodeId w;
      if (a.other == u) {
        w = v;
      } else if (mapping[a.other] != kInvalidNode) {
        w = mapping[a.other];
      } else {
        continue;
      }
      bool present = a.out ? g_.HasEdge(v, a.elabel, w)
                           : g_.HasEdge(w, a.elabel, v);
      if (!present) {
        edges_ok = false;
        break;
      }
    }
    if (!edges_ok) continue;

    mapping[u] = v;
    scratch_.used[v] = 1;
    bool keep_going = Extend(p, plan, level + 1, cb, limit, count);
    mapping[u] = kInvalidNode;
    scratch_.used[v] = 0;
    if (!keep_going) return false;
  }
  return true;
}

uint64_t Matcher::Enumerate(const Pattern& p, std::span<const Anchor> anchors,
                            const EmbeddingCallback& cb, uint64_t limit) {
  // Resolve the pattern's expansion and plan: the shared store first (a hit
  // costs one hash lookup and skips expansion + planning entirely), the
  // private cache otherwise. The mapped-anchor and key buffers live in the
  // scratch so the probe hot path stays allocation-free after warmup; the
  // single-anchor case (every ExistsAt) is its own canonical key.
  const PatternPlanEntry* entry = nullptr;
  const SearchPlan* plan = nullptr;
  std::vector<PNodeId>& anchored_nodes = scratch_.anchored;
  auto map_anchors = [&](const std::vector<PNodeId>& first_copy) {
    anchored_nodes.clear();
    for (const Anchor& a : anchors) anchored_nodes.push_back(first_copy[a.u]);
  };
  auto canonical_key = [&]() -> const std::vector<PNodeId>& {
    if (anchored_nodes.size() <= 1) return anchored_nodes;
    scratch_.anchored_key.assign(anchored_nodes.begin(), anchored_nodes.end());
    CanonicalizeAnchored(&scratch_.anchored_key);
    return scratch_.anchored_key;
  };
  if (plan_store_ != nullptr) {
    if (const PatternPlanEntry* shared = plan_store_->Find(p)) {
      map_anchors(shared->first_copy);
      if (const SearchPlan* shared_plan = FindPlanIn(*shared, canonical_key())) {
        entry = shared;
        plan = shared_plan;
        ++plan_store_hits_;
      }
    }
  }
  if (entry == nullptr) {
    PatternPlanEntry& own = CacheEntryFor(p);
    map_anchors(own.first_copy);
    plan = &PlanFor(own, canonical_key());
    entry = &own;
  }
  const Pattern& expanded = entry->expanded;

  // Anchor values are per-call: (re)build the anchor_of table in scratch.
  scratch_.anchor_of.assign(expanded.num_nodes(), kInvalidNode);
  for (size_t i = 0; i < anchors.size(); ++i) {
    scratch_.anchor_of[anchored_nodes[i]] = anchors[i].v;
  }

  PrepareForPattern(expanded);

  if (scratch_.used.size() < g_.num_nodes()) {
    scratch_.used.assign(g_.num_nodes(), 0);
  }
  if (scratch_.cand_bufs.size() < plan->order.size()) {
    scratch_.cand_bufs.resize(plan->order.size());
  }
  // A previous search that unwound abnormally (an embedding callback threw)
  // skipped Extend's symmetric clears; sweep the stale path out of `used`
  // before the mapping is reset, or those nodes stay excluded forever.
  for (NodeId v : scratch_.mapping) {
    if (v != kInvalidNode) scratch_.used[v] = 0;
  }
  scratch_.mapping.assign(expanded.num_nodes(), kInvalidNode);

  uint64_t count = 0;
  Extend(expanded, *plan, 0, cb, limit, &count);
  return count;
}

bool Matcher::Exists(const Pattern& p, std::span<const Anchor> anchors) {
  return Enumerate(
             p, anchors, [](std::span<const NodeId>) { return false; },
             /*limit=*/1) > 0;
}

std::vector<NodeId> Matcher::Images(const Pattern& p, PNodeId u) {
  std::vector<NodeId> out;
  auto cands = view_ != nullptr ? view_->nodes_with_label(p.node(u).label)
                                : g_.nodes_with_label(p.node(u).label);
  for (NodeId v : cands) {
    Anchor a{u, v};
    if (Exists(p, {&a, 1})) out.push_back(v);
  }
  return out;
}

}  // namespace gpar
