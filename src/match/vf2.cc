#include "match/matcher.h"

#include <algorithm>
#include <deque>

namespace gpar {

struct Matcher::SearchPlan {
  std::vector<PNodeId> order;     // match order over pattern nodes
  std::vector<NodeId> anchor_of;  // per pattern node, or kInvalidNode
};

Matcher::SearchPlan Matcher::MakePlan(const Pattern& p,
                                      std::span<const Anchor> anchors) {
  SearchPlan plan;
  plan.anchor_of.assign(p.num_nodes(), kInvalidNode);
  for (const Anchor& a : anchors) plan.anchor_of[a.u] = a.v;

  std::vector<bool> placed(p.num_nodes(), false);
  std::deque<PNodeId> frontier;
  auto place = [&](PNodeId u) {
    if (placed[u]) return;
    placed[u] = true;
    plan.order.push_back(u);
    frontier.push_back(u);
  };

  // Anchored nodes first, then BFS across pattern adjacency so every later
  // node has a mapped neighbor (pivot) when reached.
  for (const Anchor& a : anchors) place(a.u);
  auto drain = [&] {
    while (!frontier.empty()) {
      PNodeId u = frontier.front();
      frontier.pop_front();
      for (const PatternAdj& a : p.adj(u)) place(a.other);
    }
  };
  drain();
  // Disconnected remainder: root each component at the node whose label is
  // rarest in the graph (smallest candidate set).
  for (;;) {
    PNodeId best = kNoPatternNode;
    size_t best_count = 0;
    for (PNodeId u = 0; u < p.num_nodes(); ++u) {
      if (placed[u]) continue;
      size_t c = g_.label_count(p.node(u).label);
      if (best == kNoPatternNode || c < best_count) {
        best = u;
        best_count = c;
      }
    }
    if (best == kNoPatternNode) break;
    place(best);
    drain();
  }
  return plan;
}

bool Matcher::Extend(const Pattern& p, const SearchPlan& plan, size_t level,
                     std::vector<NodeId>& mapping, const EmbeddingCallback& cb,
                     uint64_t limit, uint64_t* count) {
  if (level == plan.order.size()) {
    ++*count;
    bool keep_going = cb(mapping);
    if (limit != 0 && *count >= limit) keep_going = false;
    return keep_going;
  }
  const PNodeId u = plan.order[level];
  const LabelId want = p.node(u).label;

  // Candidate source: anchored value, or neighbors of the pivot (the mapped
  // neighbor whose labeled adjacency list is smallest), or the label index.
  std::vector<NodeId> cands;
  if (plan.anchor_of[u] != kInvalidNode) {
    cands.push_back(plan.anchor_of[u]);
  } else {
    std::span<const AdjEntry> best_slice;
    bool have_pivot = false;
    for (const PatternAdj& a : p.adj(u)) {
      if (a.other == u || mapping[a.other] == kInvalidNode) continue;
      // Pattern edge between u and the mapped node a.other: candidates for
      // u are the corresponding neighbors of mapping[a.other].
      std::span<const AdjEntry> slice =
          a.out ? g_.in_edges_labeled(mapping[a.other], a.elabel)
                : g_.out_edges_labeled(mapping[a.other], a.elabel);
      if (!have_pivot || slice.size() < best_slice.size()) {
        best_slice = slice;
        have_pivot = true;
      }
    }
    if (have_pivot) {
      cands.reserve(best_slice.size());
      for (const AdjEntry& e : best_slice) cands.push_back(e.other);
    } else {
      auto all = g_.nodes_with_label(want);
      cands.assign(all.begin(), all.end());
    }
  }

  OrderCandidates(p, u, &cands);

  for (NodeId v : cands) {
    ++nodes_visited_;
    if (g_.node_label(v) != want) continue;
    // Injectivity.
    bool used = false;
    for (NodeId w : mapping) {
      if (w == v) {
        used = true;
        break;
      }
    }
    if (used) continue;
    if (!FilterCandidate(p, u, v)) continue;
    // Every pattern edge between u and an already-mapped node (including
    // self-loops) must exist in the graph with the right label.
    bool edges_ok = true;
    for (const PatternAdj& a : p.adj(u)) {
      NodeId w;
      if (a.other == u) {
        w = v;
      } else if (mapping[a.other] != kInvalidNode) {
        w = mapping[a.other];
      } else {
        continue;
      }
      bool present = a.out ? g_.HasEdge(v, a.elabel, w)
                           : g_.HasEdge(w, a.elabel, v);
      if (!present) {
        edges_ok = false;
        break;
      }
    }
    if (!edges_ok) continue;

    mapping[u] = v;
    bool keep_going = Extend(p, plan, level + 1, mapping, cb, limit, count);
    mapping[u] = kInvalidNode;
    if (!keep_going) return false;
  }
  return true;
}

uint64_t Matcher::Enumerate(const Pattern& p, std::span<const Anchor> anchors,
                            const EmbeddingCallback& cb, uint64_t limit) {
  std::vector<PNodeId> first_copy;
  const Pattern expanded = p.ExpandMultiplicities(&first_copy);
  std::vector<Anchor> xanchors(anchors.begin(), anchors.end());
  for (Anchor& a : xanchors) a.u = first_copy[a.u];

  PrepareForPattern(expanded);
  SearchPlan plan = MakePlan(expanded, xanchors);
  std::vector<NodeId> mapping(expanded.num_nodes(), kInvalidNode);
  uint64_t count = 0;
  Extend(expanded, plan, 0, mapping, cb, limit, &count);
  return count;
}

bool Matcher::Exists(const Pattern& p, std::span<const Anchor> anchors) {
  return Enumerate(
             p, anchors, [](std::span<const NodeId>) { return false; },
             /*limit=*/1) > 0;
}

std::vector<NodeId> Matcher::Images(const Pattern& p, PNodeId u) {
  std::vector<NodeId> out;
  for (NodeId v : g_.nodes_with_label(p.node(u).label)) {
    Anchor a{u, v};
    if (Exists(p, {&a, 1})) out.push_back(v);
  }
  return out;
}

}  // namespace gpar
