#ifndef GPAR_MATCH_MATCHER_H_
#define GPAR_MATCH_MATCHER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "pattern/pattern.h"

namespace gpar {

/// Pins a pattern node to a specific graph node before the search starts.
struct Anchor {
  PNodeId u;
  NodeId v;
};

/// Callback receiving one embedding: `mapping[u]` is the graph node matched
/// to pattern node `u`. Return false to stop the enumeration.
using EmbeddingCallback = std::function<bool(std::span<const NodeId>)>;

/// A cached match order for one (expanded pattern, anchored-node set):
/// anchored nodes first, then BFS over pattern adjacency. Only the node
/// *set* of the anchors matters — anchor values are per-call state.
struct SearchPlan {
  std::vector<PNodeId> anchored;  ///< sorted, deduplicated key
  std::vector<PNodeId> order;
};

/// Everything derived from one pattern, cached across searches: the
/// multiplicity expansion and the search plans seen so far (typically one,
/// anchored at x). Keyed by StructuralHash with exact-equality buckets.
struct PatternPlanEntry {
  Pattern pattern;  ///< original, exact-equality key
  Pattern expanded;
  std::vector<PNodeId> first_copy;  ///< original node -> first expanded copy
  std::vector<SearchPlan> plans;
};

/// Builds the match order for `expanded` with the given anchored node set
/// (expanded-pattern ids; consumed, sorted, deduplicated). `label_count`
/// supplies per-label candidate counts for rooting disconnected remainder
/// components at the rarest label. Any order is correct; the heuristic only
/// steers search cost.
SearchPlan BuildSearchPlan(const Pattern& expanded,
                           std::vector<PNodeId> anchored,
                           const std::function<size_t(LabelId)>& label_count);

/// Read-only-shared search-plan store (the ROADMAP "plan-cache sharing
/// across workers" item): patterns are identical across fragments, so the
/// coordinator plans each round's patterns once via `Prepare` and every
/// worker matcher consults the store before planning privately.
///
/// Concurrency contract: `Prepare` is single-threaded (call it from
/// coordinator sections, between worker rounds); `Find` is lock-free and
/// safe from any number of threads once preparation for the round is done.
class SearchPlanStore {
 public:
  /// `g` supplies the label counts the planner roots disconnected
  /// components with (global counts — a better selectivity signal than any
  /// one fragment's, and identical across workers by construction).
  explicit SearchPlanStore(const Graph& g) : g_(g) {}

  SearchPlanStore(const SearchPlanStore&) = delete;
  SearchPlanStore& operator=(const SearchPlanStore&) = delete;

  /// Plans `p` anchored at `anchored` (original-pattern node ids; mapped
  /// through the multiplicity expansion internally). Idempotent.
  void Prepare(const Pattern& p, std::span<const PNodeId> anchored);

  /// The prepared entry for `p`, or nullptr if never prepared.
  const PatternPlanEntry* Find(const Pattern& p) const;

  /// Number of distinct patterns prepared (for tests/stats).
  size_t patterns_planned() const { return planned_; }

 private:
  const Graph& g_;
  size_t planned_ = 0;
  std::unordered_map<uint64_t, std::vector<PatternPlanEntry>> cache_;
};

/// Subgraph-isomorphism engine bound to one graph — or to a zero-copy
/// `GraphView` fragment of it, in which case every candidate is filtered by
/// membership and all ids (anchors, embeddings) are parent-global ids. A
/// view-backed matcher answers exactly like a matcher over the equivalent
/// copied induced subgraph, without the CSR copy or the id translation.
///
/// Semantics (Section 2.1): a match is an injective mapping of pattern
/// nodes to graph nodes such that node labels agree and every pattern edge
/// maps to a graph edge with the same label (non-induced). Multiplicity
/// annotations are expanded before searching.
///
/// The backtracking core is shared; subclasses steer it via candidate
/// filtering and ordering. `VF2Matcher` applies label checks only;
/// `GuidedMatcher` adds the paper's k-hop-sketch filter and best-first
/// candidate ordering (Section 5.2).
///
/// Searches reuse per-matcher scratch state (mapping, injectivity bitmap,
/// candidate buffers) and a search-plan cache, so repeated `ExistsAt` probes
/// of the same pattern are allocation-free. Consequently a matcher is NOT
/// reentrant: embedding callbacks must not call back into the same matcher,
/// and instances must not be shared across threads without external
/// synchronization (DMine gives each worker its own matcher).
class Matcher {
 public:
  explicit Matcher(const Graph& g) : g_(g), view_(nullptr) {}
  explicit Matcher(const GraphView& view)
      : g_(view.parent()), view_(&view) {}
  Matcher(const Graph& g, const GraphView* view)
      : g_(view != nullptr ? view->parent() : g), view_(view) {}
  virtual ~Matcher() = default;

  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// True iff a match exists honoring `anchors`. Stops at the first match
  /// (the paper's "early termination": a potential customer is identified
  /// once one match is found).
  bool Exists(const Pattern& p, std::span<const Anchor> anchors = {});

  /// True iff a match exists with the designated node x mapped to `vx`.
  bool ExistsAt(const Pattern& p, NodeId vx) {
    Anchor a{p.x(), vx};
    return Exists(p, {&a, 1});
  }

  /// Q(u, G): distinct graph nodes that match pattern node `u` over all
  /// matches. Computed candidate-by-candidate with early termination, so
  /// the cost is one Exists query per candidate, not full enumeration.
  std::vector<NodeId> Images(const Pattern& p, PNodeId u);

  /// Enumerates embeddings, invoking `cb` for each; stops early if `cb`
  /// returns false or after `limit` embeddings (0 = unlimited). Returns the
  /// number of embeddings visited.
  uint64_t Enumerate(const Pattern& p, std::span<const Anchor> anchors,
                     const EmbeddingCallback& cb, uint64_t limit = 0);

  const Graph& graph() const { return g_; }

  /// Attaches a shared read-only plan store. Probes consult it before the
  /// private plan cache; a hit skips both the multiplicity expansion and
  /// the plan construction for that pattern.
  void set_plan_store(const SearchPlanStore* store) { plan_store_ = store; }

  /// Number of probes whose plan came from the shared store.
  uint64_t plan_store_hits() const { return plan_store_hits_; }

  /// Number of search-tree nodes visited since construction (for benches).
  uint64_t nodes_visited() const { return nodes_visited_; }

  /// Number of patterns with a cached search plan (for tests/benches).
  size_t plans_cached() const { return plans_cached_; }

 protected:
  /// Policy hook: may a candidate `v` be considered for pattern node `u`?
  /// Node-label equality is already checked by the engine.
  virtual bool FilterCandidate(const Pattern& p, PNodeId u, NodeId v) {
    (void)p; (void)u; (void)v;
    return true;
  }

  /// Policy hook: reorder `cands` in place (best candidates first).
  virtual void OrderCandidates(const Pattern& p, PNodeId u,
                               std::vector<NodeId>* cands) {
    (void)p; (void)u; (void)cands;
  }

  /// Invoked once per search so policies can precompute per-pattern state.
  virtual void PrepareForPattern(const Pattern& p) { (void)p; }

  /// The fragment view this matcher is restricted to, or nullptr for a
  /// whole-graph matcher (policy hooks use it to mirror the restriction).
  const GraphView* view() const { return view_; }

 private:
  /// Reusable per-search state: `ExistsAt` is called once per candidate
  /// center on the mining hot path, so the search must not pay a heap
  /// allocation per level per call.
  struct Scratch {
    std::vector<char> used;        ///< per graph node: mapped right now
    std::vector<NodeId> mapping;   ///< per expanded pattern node
    std::vector<NodeId> anchor_of; ///< per expanded pattern node, or invalid
    std::vector<std::vector<NodeId>> cand_bufs;  ///< per search level
    std::vector<PNodeId> anchored;      ///< per-call mapped anchors
    std::vector<PNodeId> anchored_key;  ///< canonical form of `anchored`
  };

  bool Extend(const Pattern& p, const SearchPlan& plan, size_t level,
              const EmbeddingCallback& cb, uint64_t limit, uint64_t* count);
  PatternPlanEntry& CacheEntryFor(const Pattern& p);
  /// `anchored_key` must already be sorted and deduplicated.
  const SearchPlan& PlanFor(PatternPlanEntry& entry,
                            const std::vector<PNodeId>& anchored_key);

  const Graph& g_;
  const GraphView* view_;
  const SearchPlanStore* plan_store_ = nullptr;
  uint64_t plan_store_hits_ = 0;
  uint64_t nodes_visited_ = 0;
  size_t plans_cached_ = 0;
  std::unordered_map<uint64_t, std::vector<PatternPlanEntry>> plan_cache_;
  Scratch scratch_;
};

/// Plain VF2-style matcher [10]: label-filtered candidates in index order.
class VF2Matcher : public Matcher {
 public:
  explicit VF2Matcher(const Graph& g) : Matcher(g) {}
  explicit VF2Matcher(const GraphView& view) : Matcher(view) {}
  VF2Matcher(const Graph& g, const GraphView* view) : Matcher(g, view) {}
};

}  // namespace gpar

#endif  // GPAR_MATCH_MATCHER_H_
