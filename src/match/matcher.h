#ifndef GPAR_MATCH_MATCHER_H_
#define GPAR_MATCH_MATCHER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpar {

/// Pins a pattern node to a specific graph node before the search starts.
struct Anchor {
  PNodeId u;
  NodeId v;
};

/// Callback receiving one embedding: `mapping[u]` is the graph node matched
/// to pattern node `u`. Return false to stop the enumeration.
using EmbeddingCallback = std::function<bool(std::span<const NodeId>)>;

/// Subgraph-isomorphism engine bound to one graph.
///
/// Semantics (Section 2.1): a match is an injective mapping of pattern
/// nodes to graph nodes such that node labels agree and every pattern edge
/// maps to a graph edge with the same label (non-induced). Multiplicity
/// annotations are expanded before searching.
///
/// The backtracking core is shared; subclasses steer it via candidate
/// filtering and ordering. `VF2Matcher` applies label checks only;
/// `GuidedMatcher` adds the paper's k-hop-sketch filter and best-first
/// candidate ordering (Section 5.2).
///
/// Searches reuse per-matcher scratch state (mapping, injectivity bitmap,
/// candidate buffers) and a search-plan cache, so repeated `ExistsAt` probes
/// of the same pattern are allocation-free. Consequently a matcher is NOT
/// reentrant: embedding callbacks must not call back into the same matcher,
/// and instances must not be shared across threads without external
/// synchronization (DMine gives each worker its own matcher).
class Matcher {
 public:
  explicit Matcher(const Graph& g) : g_(g) {}
  virtual ~Matcher() = default;

  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// True iff a match exists honoring `anchors`. Stops at the first match
  /// (the paper's "early termination": a potential customer is identified
  /// once one match is found).
  bool Exists(const Pattern& p, std::span<const Anchor> anchors = {});

  /// True iff a match exists with the designated node x mapped to `vx`.
  bool ExistsAt(const Pattern& p, NodeId vx) {
    Anchor a{p.x(), vx};
    return Exists(p, {&a, 1});
  }

  /// Q(u, G): distinct graph nodes that match pattern node `u` over all
  /// matches. Computed candidate-by-candidate with early termination, so
  /// the cost is one Exists query per candidate, not full enumeration.
  std::vector<NodeId> Images(const Pattern& p, PNodeId u);

  /// Enumerates embeddings, invoking `cb` for each; stops early if `cb`
  /// returns false or after `limit` embeddings (0 = unlimited). Returns the
  /// number of embeddings visited.
  uint64_t Enumerate(const Pattern& p, std::span<const Anchor> anchors,
                     const EmbeddingCallback& cb, uint64_t limit = 0);

  const Graph& graph() const { return g_; }

  /// Number of search-tree nodes visited since construction (for benches).
  uint64_t nodes_visited() const { return nodes_visited_; }

  /// Number of patterns with a cached search plan (for tests/benches).
  size_t plans_cached() const { return plans_cached_; }

 protected:
  /// Policy hook: may a candidate `v` be considered for pattern node `u`?
  /// Node-label equality is already checked by the engine.
  virtual bool FilterCandidate(const Pattern& p, PNodeId u, NodeId v) {
    (void)p; (void)u; (void)v;
    return true;
  }

  /// Policy hook: reorder `cands` in place (best candidates first).
  virtual void OrderCandidates(const Pattern& p, PNodeId u,
                               std::vector<NodeId>* cands) {
    (void)p; (void)u; (void)cands;
  }

  /// Invoked once per search so policies can precompute per-pattern state.
  virtual void PrepareForPattern(const Pattern& p) { (void)p; }

 private:
  /// A cached match order for one (expanded pattern, anchored-node set):
  /// anchored nodes first, then BFS over pattern adjacency. Only the node
  /// *set* of the anchors matters — anchor values are per-call state held in
  /// `Scratch::anchor_of`.
  struct SearchPlan {
    std::vector<PNodeId> anchored;  ///< sorted, deduplicated key
    std::vector<PNodeId> order;
  };

  /// Everything derived from one pattern, cached across calls: the
  /// multiplicity expansion and the search plans seen so far (typically one,
  /// anchored at x). Keyed by StructuralHash with exact-equality buckets.
  struct PlanCacheEntry {
    Pattern pattern;  ///< original, exact-equality key
    Pattern expanded;
    std::vector<PNodeId> first_copy;  ///< original node -> first expanded copy
    std::vector<SearchPlan> plans;
  };

  /// Reusable per-search state: `ExistsAt` is called once per candidate
  /// center on the mining hot path, so the search must not pay a heap
  /// allocation per level per call.
  struct Scratch {
    std::vector<char> used;        ///< per graph node: mapped right now
    std::vector<NodeId> mapping;   ///< per expanded pattern node
    std::vector<NodeId> anchor_of; ///< per expanded pattern node, or invalid
    std::vector<std::vector<NodeId>> cand_bufs;  ///< per search level
  };

  bool Extend(const Pattern& p, const SearchPlan& plan, size_t level,
              const EmbeddingCallback& cb, uint64_t limit, uint64_t* count);
  PlanCacheEntry& CacheEntryFor(const Pattern& p);
  const SearchPlan& PlanFor(PlanCacheEntry& entry,
                            std::vector<PNodeId> anchored);

  const Graph& g_;
  uint64_t nodes_visited_ = 0;
  size_t plans_cached_ = 0;
  std::unordered_map<uint64_t, std::vector<PlanCacheEntry>> plan_cache_;
  Scratch scratch_;
};

/// Plain VF2-style matcher [10]: label-filtered candidates in index order.
class VF2Matcher : public Matcher {
 public:
  explicit VF2Matcher(const Graph& g) : Matcher(g) {}
};

}  // namespace gpar

#endif  // GPAR_MATCH_MATCHER_H_
