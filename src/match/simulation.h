#ifndef GPAR_MATCH_SIMULATION_H_
#define GPAR_MATCH_SIMULATION_H_

#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpar {

/// Dual graph simulation (an extension the paper's conclusion proposes as
/// future work: "allowing other matching semantics such as graph
/// simulation").
///
/// Computes, for every pattern node u, the set sim(u) of graph nodes v such
/// that (a) labels agree, (b) for every out-edge (u, l, u') some v' in
/// sim(u') has (v, l, v') in G, and (c) symmetrically for in-edges. The
/// result is the (unique) maximum dual simulation; sets are sorted.
///
/// Simulation is cubic-time (no NP-hardness) but weaker than subgraph
/// isomorphism: sim(x) is always a superset of the isomorphism images
/// Q(x, G), which makes it a sound prefilter and a cheap alternative
/// matching semantics.
std::vector<std::vector<NodeId>> DualSimulation(const Pattern& p,
                                                const Graph& g);

/// sim(x): the simulation-semantics counterpart of Q(x, G).
std::vector<NodeId> SimulationImages(const Pattern& p, const Graph& g,
                                     PNodeId u);

}  // namespace gpar

#endif  // GPAR_MATCH_SIMULATION_H_
