#ifndef GPAR_MATCH_MULTI_PATTERN_H_
#define GPAR_MATCH_MULTI_PATTERN_H_

#include <cstdint>
#include <vector>

#include "match/matcher.h"
#include "pattern/pattern.h"

namespace gpar {

/// Shared evaluation of many anchored patterns at the same candidate node —
/// the multi-GPAR optimization of Match (Section 5.2, after [32]).
///
/// Two ideas, both exploiting anchored subsumption (x -> x):
///  * duplicate elimination: designated-isomorphic patterns are evaluated
///    once;
///  * implication pruning: if Q ⊑ Q' (Q embeds into Q' anchored at x), a
///    failure of Q at v_x implies a failure of Q' at v_x, so Q' is skipped;
///    symmetrically a success of Q' implies a success of Q.
class MultiPatternEvaluator {
 public:
  /// `patterns` must outlive the evaluator.
  explicit MultiPatternEvaluator(std::vector<const Pattern*> patterns);

  /// Evaluates ExistsAt(pattern_i, vx) for every pattern; results in
  /// (*out)[i]. Uses `m` for the underlying exists-queries.
  ///
  /// `known_yes`, when non-null (size = #patterns), marks patterns already
  /// known to match at vx (e.g. antecedents whose P_R matched): they are
  /// not re-queried and their implications are propagated for free.
  void EvaluateAt(Matcher& m, NodeId vx, std::vector<char>* out,
                  const std::vector<char>* known_yes = nullptr) const;

  /// Number of exists-queries actually issued by the last EvaluateAt calls
  /// (cumulative); always <= patterns * calls. For benches/tests.
  uint64_t queries_issued() const { return queries_issued_; }

 private:
  std::vector<const Pattern*> patterns_;
  std::vector<size_t> canonical_;  // index of representative duplicate
  // implies_[i] = patterns implied-matched when i matches (i embeds them);
  // implied_failed_[i] = patterns implied-failed when i fails (they embed i).
  std::vector<std::vector<size_t>> implies_;
  std::vector<std::vector<size_t>> implied_failed_;
  std::vector<size_t> eval_order_;  // smaller patterns first
  mutable uint64_t queries_issued_ = 0;
};

}  // namespace gpar

#endif  // GPAR_MATCH_MULTI_PATTERN_H_
