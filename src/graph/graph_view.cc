#include "graph/graph_view.h"

namespace gpar {

GraphView::GraphView(const Graph& parent, std::vector<NodeId> members)
    : parent_(&parent), members_(std::move(members)) {
  bitmap_.assign((parent.num_nodes() + 63) / 64, 0);
  for (NodeId v : members_) bitmap_[v >> 6] |= uint64_t{1} << (v & 63);

  // Label index: one counting pass sizes the per-label ranges, one fill
  // pass places the (already ascending) member ids, so each label's slice
  // comes out sorted without a comparison sort.
  std::unordered_map<LabelId, uint32_t> counts;
  counts.reserve(members_.size());
  for (NodeId v : members_) ++counts[parent.node_label(v)];
  label_ranges_.reserve(counts.size());
  uint32_t offset = 0;
  for (const auto& [label, count] : counts) {
    label_ranges_.emplace(label, std::make_pair(offset, offset));
    offset += count;
  }
  by_label_.resize(members_.size());
  for (NodeId v : members_) {
    auto& range = label_ranges_[parent.node_label(v)];
    by_label_[range.second++] = v;  // second doubles as the fill cursor
  }
}

size_t GraphView::num_edges() const {
  // Relaxed: the cell is an idempotent memo — racing readers compute and
  // publish the same value, and no other data is ordered by it.
  size_t cached = induced_edges_.value.load(std::memory_order_relaxed);
  if (cached != CachedCount::kUnknown) return cached;
  // Induced edge count: every parent out-edge between two members — the
  // |E_f| of the equivalent copied fragment (skew/size parity). One
  // filtered adjacency sweep, deferred off the partition-build path.
  size_t count = 0;
  for (NodeId v : members_) {
    for (const AdjEntry& e : parent_->out_edges(v)) {
      if (contains(e.other)) ++count;
    }
  }
  // Relaxed: see the load above — any racing writer stores the same count.
  induced_edges_.value.store(count, std::memory_order_relaxed);
  return count;
}

std::span<const NodeId> GraphView::nodes_with_label(LabelId label) const {
  auto it = label_ranges_.find(label);
  if (it == label_ranges_.end()) return {};
  return {by_label_.data() + it->second.first,
          it->second.second - it->second.first};
}

bool GraphView::HasOutLabel(NodeId v, LabelId elabel) const {
  for (const AdjEntry& e : parent_->out_edges_labeled(v, elabel)) {
    if (contains(e.other)) return true;
  }
  return false;
}

size_t GraphView::MemoryBytes() const {
  size_t bytes = members_.capacity() * sizeof(NodeId) +
                 by_label_.capacity() * sizeof(NodeId) +
                 bitmap_.capacity() * sizeof(uint64_t);
  // Node-based unordered_map estimate: per-node payload + two pointers,
  // plus the bucket array.
  bytes += label_ranges_.size() *
           (sizeof(std::pair<const LabelId, std::pair<uint32_t, uint32_t>>) +
            2 * sizeof(void*));
  bytes += label_ranges_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace gpar
