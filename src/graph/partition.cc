#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

namespace gpar {

size_t Fragment::MemoryBytes() const {
  size_t bytes = centers.capacity() * sizeof(NodeId) +
                 center_hops_available.capacity() * sizeof(uint32_t);
  if (copy != nullptr) {
    const Graph& cg = copy->graph;
    // The copied CSR: labels, offsets, and both adjacency directions, plus
    // the id maps the copy needs for global evidence.
    bytes += cg.num_nodes() * sizeof(LabelId);
    bytes += 2 * (cg.num_nodes() + 1) * sizeof(size_t);  // out/in offsets
    bytes += 2 * cg.num_edges() * sizeof(AdjEntry);      // out/in adjacency
    bytes += copy->to_global.capacity() * sizeof(NodeId);
    bytes += copy->to_local.size() *
             (sizeof(std::pair<const NodeId, NodeId>) + 2 * sizeof(void*));
    bytes += copy->to_local.bucket_count() * sizeof(void*);
    // The label inverted index the copy rebuilds.
    bytes += cg.num_nodes() * sizeof(NodeId);
  } else {
    bytes += view.MemoryBytes();
  }
  return bytes;
}

namespace {

/// Greedy balanced assignment shared by both build paths: heaviest centers
/// first, least-loaded fragment next (longest-processing-time heuristic).
/// Deterministic: ties in weight keep input order (stable sort), ties in
/// load pick the lowest fragment index.
struct Assignment {
  std::vector<std::vector<size_t>> per_fragment;  // center indices
  std::vector<uint32_t> owner_of_center;
};

Assignment AssignLpt(const std::vector<size_t>& weights, uint32_t n) {
  Assignment out;
  out.per_fragment.resize(n);
  out.owner_of_center.assign(weights.size(), 0);

  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });

  struct Load {
    size_t load;
    uint32_t frag;
    bool operator>(const Load& o) const {
      if (load != o.load) return load > o.load;
      return frag > o.frag;
    }
  };
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t f = 0; f < n; ++f) heap.push({0, f});

  for (size_t idx : order) {
    Load best = heap.top();
    heap.pop();
    out.per_fragment[best.frag].push_back(idx);
    best.load += weights[idx];
    heap.push(best);
    out.owner_of_center[idx] = best.frag;
  }
  return out;
}

/// Legacy build pipeline, selected by `use_fragment_copies`: one BFS (with
/// a hash-map visited set) per center, per-fragment unordered_set unions,
/// and a materialized induced-CSR copy per fragment — the pre-view cost
/// structure, kept intact as the Exp-4 A/B baseline. Produces the exact
/// same assignment, membership, centers, and extendability signal as the
/// single-sweep view path.
Partitioning PartitionLegacy(const Graph& g, const std::vector<NodeId>& centers,
                             const PartitionOptions& options) {
  const uint32_t n = options.num_fragments;
  Partitioning out;
  out.d = options.d;

  std::vector<std::vector<NodeId>> neigh(centers.size());
  std::vector<uint32_t> hops_avail(centers.size(), 0);
  std::vector<size_t> weights(centers.size(), 0);
  for (size_t i = 0; i < centers.size(); ++i) {
    std::vector<uint32_t> dist;
    neigh[i] = NodesWithinRadius(g, centers[i], options.d, &dist);
    weights[i] = neigh[i].size();
    // Extendable past d iff some hop-d node has an incident edge leaving
    // N_d (see the view path for the rationale).
    std::unordered_set<NodeId> in_nd(neigh[i].begin(), neigh[i].end());
    for (size_t k = 0; k < neigh[i].size() && hops_avail[i] == 0; ++k) {
      if (dist[k] != options.d) continue;
      for (const AdjEntry& e : g.out_edges(neigh[i][k])) {
        if (!in_nd.count(e.other)) {
          hops_avail[i] = 1;
          break;
        }
      }
      if (hops_avail[i] != 0) break;
      for (const AdjEntry& e : g.in_edges(neigh[i][k])) {
        if (!in_nd.count(e.other)) {
          hops_avail[i] = 1;
          break;
        }
      }
    }
  }

  Assignment assign = AssignLpt(weights, n);
  out.owner_of_center = assign.owner_of_center;

  out.fragments.resize(n);
  for (uint32_t f = 0; f < n; ++f) {
    std::unordered_set<NodeId> node_set;
    for (size_t idx : assign.per_fragment[f]) {
      node_set.insert(neigh[idx].begin(), neigh[idx].end());
    }
    std::vector<NodeId> nodes(node_set.begin(), node_set.end());
    std::sort(nodes.begin(), nodes.end());
    Fragment& frag = out.fragments[f];
    frag.copy = std::make_unique<InducedSubgraph>(BuildInducedSubgraph(g, nodes));
    frag.centers.reserve(assign.per_fragment[f].size());
    frag.center_hops_available.reserve(assign.per_fragment[f].size());
    for (size_t idx : assign.per_fragment[f]) {
      frag.centers.push_back(centers[idx]);
      frag.center_hops_available.push_back(hops_avail[idx]);
    }
  }
  return out;
}

}  // namespace

Result<Partitioning> PartitionGraph(const Graph& g,
                                    const std::vector<NodeId>& centers,
                                    const PartitionOptions& options) {
  if (options.num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  if (options.use_fragment_copies) {
    return PartitionLegacy(g, centers, options);
  }
  const uint32_t n = options.num_fragments;
  const size_t nc = centers.size();

  Partitioning out;
  out.d = options.d;

  // --- Single BFS sweep over all centers with shared flat scratch. --------
  // One (center, distance)-tagging pass: every center's d-neighborhood is
  // swept through a single reused frontier pair with a flat stamp array as
  // the visited set — O(1) dedup per edge scan, no per-BFS hash maps, no
  // per-node tag lists (which go quadratic on scale-free hubs that sit
  // within d of thousands of centers). The sweep emits the |N_d| weights,
  // the arena-packed membership lists, and the extendability signal in one
  // near-linear pass over the replicated edge set.
  std::vector<uint32_t> stamp(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> curr, next;
  std::vector<size_t> neigh_size(nc, 0);
  // N_d(center) node sets, CSR-packed into one arena (4 bytes per
  // replicated node — the transient peak of the build).
  std::vector<size_t> neigh_offsets(nc + 1, 0);
  std::vector<NodeId> neigh_arena;
  std::vector<uint32_t> hops_avail(nc, 0);
  for (uint32_t c = 0; c < static_cast<uint32_t>(nc); ++c) {
    neigh_offsets[c] = neigh_arena.size();
    const NodeId src = centers[c];
    stamp[src] = c;  // ordinals are unique, so stamps never need clearing
    neigh_arena.push_back(src);
    curr.assign(1, src);
    for (uint32_t level = 0; level < options.d && !curr.empty(); ++level) {
      next.clear();
      for (NodeId u : curr) {
        auto visit = [&](NodeId w) {
          if (stamp[w] == c) return;
          stamp[w] = c;
          neigh_arena.push_back(w);
          next.push_back(w);
        };
        for (const AdjEntry& e : g.out_edges(u)) visit(e.other);
        for (const AdjEntry& e : g.in_edges(u)) visit(e.other);
      }
      curr.swap(next);
    }
    neigh_size[c] = neigh_arena.size() - neigh_offsets[c];
    // `curr` now holds exactly the hop-d arrivals. The real "extendable
    // past d" signal: hops are available iff some node at distance exactly
    // d has an incident edge leaving N_d — i.e. to an unstamped neighbor.
    // (The previous implementation recorded the max observed BFS depth,
    // which is nonzero for any center with a neighbor — even when N_d is
    // the entire reachable component and no further hop exists.)
    for (NodeId u : curr) {
      bool escapes = false;
      for (const AdjEntry& e : g.out_edges(u)) {
        if (stamp[e.other] != c) {
          escapes = true;
          break;
        }
      }
      if (!escapes) {
        for (const AdjEntry& e : g.in_edges(u)) {
          if (stamp[e.other] != c) {
            escapes = true;
            break;
          }
        }
      }
      if (escapes) {
        hops_avail[c] = 1;
        break;
      }
    }
  }
  neigh_offsets[nc] = neigh_arena.size();

  Assignment assign = AssignLpt(neigh_size, n);
  out.owner_of_center = assign.owner_of_center;

  // --- Membership: concatenate each fragment's owned N_d lists from the
  // arena, deduplicating with a per-node last-fragment stamp (fragments
  // are processed in order, so one array replaces any set union), then a
  // single sort per fragment yields the ascending member list.
  std::vector<std::vector<NodeId>> members(n);
  {
    std::vector<uint32_t> last_frag(g.num_nodes(), kInvalidNode);
    for (uint32_t f = 0; f < n; ++f) {
      for (size_t idx : assign.per_fragment[f]) {
        for (size_t k = neigh_offsets[idx]; k < neigh_offsets[idx + 1]; ++k) {
          const NodeId v = neigh_arena[k];
          if (last_frag[v] != f) {
            last_frag[v] = f;
            members[f].push_back(v);
          }
        }
      }
      std::sort(members[f].begin(), members[f].end());
    }
  }

  // --- Materialize fragments as zero-copy views (O(id-list) memory, no
  // CSR rebuild). Centers are global ids.
  out.fragments.resize(n);
  for (uint32_t f = 0; f < n; ++f) {
    Fragment& frag = out.fragments[f];
    frag.view = GraphView(g, std::move(members[f]));
    frag.centers.reserve(assign.per_fragment[f].size());
    frag.center_hops_available.reserve(assign.per_fragment[f].size());
    for (size_t idx : assign.per_fragment[f]) {
      frag.centers.push_back(centers[idx]);
      frag.center_hops_available.push_back(hops_avail[idx]);
    }
  }
  return out;
}

double FragmentSkew(const Partitioning& p) {
  if (p.fragments.empty()) return 0;
  size_t max_size = 0;
  size_t min_size = static_cast<size_t>(-1);
  for (const Fragment& f : p.fragments) {
    size_t s = f.SizeVE();
    max_size = std::max(max_size, s);
    min_size = std::min(min_size, s);
  }
  if (max_size == 0) return 0;
  return static_cast<double>(max_size - min_size) /
         static_cast<double>(max_size);
}

size_t PartitionMemoryBytes(const Partitioning& p) {
  size_t total = 0;
  for (const Fragment& f : p.fragments) total += f.MemoryBytes();
  return total;
}

}  // namespace gpar
