#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

namespace gpar {

Result<Partitioning> PartitionGraph(const Graph& g,
                                    const std::vector<NodeId>& centers,
                                    const PartitionOptions& options) {
  if (options.num_fragments == 0) {
    return Status::InvalidArgument("num_fragments must be positive");
  }
  const uint32_t n = options.num_fragments;

  Partitioning out;
  out.d = options.d;
  out.owner_of_center.assign(centers.size(), 0);

  // Estimate per-center work as |N_d(v)| via BFS. Also record, per center,
  // the largest hop at which the neighborhood still has unexplored edges
  // (the "extendable" signal used by DMine's flag).
  std::vector<std::vector<NodeId>> neigh(centers.size());
  std::vector<uint32_t> hops_avail(centers.size(), 0);
  for (size_t i = 0; i < centers.size(); ++i) {
    std::vector<uint32_t> dist;
    neigh[i] = NodesWithinRadius(g, centers[i], options.d, &dist);
    // A center can be extended past hop r if some node at distance d has
    // any incident edge leading outside N_d, or simply if the frontier at
    // max distance is non-empty; we record the max observed distance.
    uint32_t max_dist = 0;
    for (uint32_t dd : dist) max_dist = std::max(max_dist, dd);
    hops_avail[i] = max_dist;
  }

  // Greedy balanced assignment: heaviest centers first, least-loaded
  // fragment next (longest-processing-time heuristic).
  std::vector<size_t> order(centers.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return neigh[a].size() > neigh[b].size();
  });

  struct Load {
    size_t load;
    uint32_t frag;
    bool operator>(const Load& o) const {
      if (load != o.load) return load > o.load;
      return frag > o.frag;
    }
  };
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t f = 0; f < n; ++f) heap.push({0, f});

  std::vector<std::vector<size_t>> assigned(n);
  for (size_t idx : order) {
    Load best = heap.top();
    heap.pop();
    assigned[best.frag].push_back(idx);
    best.load += neigh[idx].size();
    heap.push(best);
    out.owner_of_center[idx] = best.frag;
  }

  // Materialize fragments: union of owned centers' neighborhoods, induced.
  out.fragments.resize(n);
  for (uint32_t f = 0; f < n; ++f) {
    std::unordered_set<NodeId> node_set;
    for (size_t idx : assigned[f]) {
      node_set.insert(neigh[idx].begin(), neigh[idx].end());
    }
    std::vector<NodeId> nodes(node_set.begin(), node_set.end());
    std::sort(nodes.begin(), nodes.end());
    Fragment& frag = out.fragments[f];
    frag.sub = BuildInducedSubgraph(g, nodes);
    frag.centers.reserve(assigned[f].size());
    frag.center_hops_available.reserve(assigned[f].size());
    for (size_t idx : assigned[f]) {
      frag.centers.push_back(frag.sub.to_local.at(centers[idx]));
      frag.center_hops_available.push_back(hops_avail[idx]);
    }
  }
  return out;
}

double FragmentSkew(const Partitioning& p) {
  if (p.fragments.empty()) return 0;
  size_t max_size = 0;
  size_t min_size = static_cast<size_t>(-1);
  for (const Fragment& f : p.fragments) {
    size_t s = f.sub.graph.size();
    max_size = std::max(max_size, s);
    min_size = std::min(min_size, s);
  }
  if (max_size == 0) return 0;
  return static_cast<double>(max_size - min_size) /
         static_cast<double>(max_size);
}

}  // namespace gpar
