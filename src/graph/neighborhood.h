#ifndef GPAR_GRAPH_NEIGHBORHOOD_H_
#define GPAR_GRAPH_NEIGHBORHOOD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// Computes N_r(v): all nodes within undirected distance `r` of `v`
/// (including `v` itself), in BFS order. This is the paper's d-neighbor
/// basis: `G_d(v_x)` is the subgraph induced by N_d(v_x).
std::vector<NodeId> NodesWithinRadius(const Graph& g, NodeId v, uint32_t r);

/// As above but also reports each node's distance from `v`.
std::vector<NodeId> NodesWithinRadius(const Graph& g, NodeId v, uint32_t r,
                                      std::vector<uint32_t>* distances);

/// A subgraph induced by a node set, carrying the local<->global id maps.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_global;                 // local id -> global id
  std::unordered_map<NodeId, NodeId> to_local;   // global id -> local id
};

/// Builds the subgraph of `g` induced by `nodes` (edges with both endpoints
/// in the set). The label dictionary is shared with `g`.
InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     const std::vector<NodeId>& nodes);

/// Extracts G_d(v): the subgraph induced by N_d(v). `center_local` is the
/// local id of `v` in the extracted graph.
struct DNeighborhood {
  InducedSubgraph sub;
  NodeId center_local;
};
DNeighborhood ExtractDNeighborhood(const Graph& g, NodeId v, uint32_t d);

/// True iff `desc` is a descendant of `v` (directed path v ->* desc).
bool IsDescendant(const Graph& g, NodeId v, NodeId desc);

}  // namespace gpar

#endif  // GPAR_GRAPH_NEIGHBORHOOD_H_
