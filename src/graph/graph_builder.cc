#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include "graph/graph_raw_access.h"

namespace gpar {

Status GraphBuilder::AddEdge(NodeId src, LabelId label, NodeId dst) {
  if (src >= node_labels_.size() || dst >= node_labels_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  edges_.push_back({src, label, dst});
  return Status::OK();
}

void GraphRawAccess::FinishFromOutCsr(Graph& g) {
  const NodeId n = g.num_nodes();
  const auto& out_adj = g.out_adj_;
  const auto& out_offsets = g.out_offsets_;

  // In-CSR: counting sort by dst, then per-node sort by (label, src).
  g.in_offsets_.assign(n + 1, 0);
  for (const AdjEntry& e : out_adj) g.in_offsets_[e.other + 1]++;
  for (NodeId v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_adj_.assign(out_adj.size(), AdjEntry{});
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (NodeId src = 0; src < n; ++src) {
      for (size_t i = out_offsets[src]; i < out_offsets[src + 1]; ++i) {
        g.in_adj_[cursor[out_adj[i].other]++] = {out_adj[i].label, src};
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      std::sort(g.in_adj_.begin() + g.in_offsets_[v],
                g.in_adj_.begin() + g.in_offsets_[v + 1]);
    }
  }

  // Label inverted index (node ids ascend naturally).
  g.label_index_.clear();
  for (NodeId v = 0; v < n; ++v) {
    g.label_index_[g.node_labels_[v]].push_back(v);
  }
}

Graph GraphBuilder::Build() && {
  Graph g;
  g.labels_ = std::move(labels_);
  g.node_labels_ = std::move(node_labels_);
  const NodeId n = static_cast<NodeId>(g.node_labels_.size());

  // Deduplicate (src, label, dst) triples.
  std::sort(edges_.begin(), edges_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.label != b.label) return a.label < b.label;
              return a.dst < b.dst;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const PendingEdge& a, const PendingEdge& b) {
                             return a.src == b.src && a.label == b.label &&
                                    a.dst == b.dst;
                           }),
               edges_.end());

  // Out-CSR: edges_ is already sorted by (src, label, dst).
  g.out_offsets_.assign(n + 1, 0);
  for (const PendingEdge& e : edges_) g.out_offsets_[e.src + 1]++;
  for (NodeId v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  g.out_adj_.resize(edges_.size());
  {
    std::vector<size_t> cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
    for (const PendingEdge& e : edges_) {
      g.out_adj_[cursor[e.src]++] = {e.label, e.dst};
    }
  }

  GraphRawAccess::FinishFromOutCsr(g);
  edges_.clear();
  return g;
}

}  // namespace gpar
