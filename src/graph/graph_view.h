#ifndef GPAR_GRAPH_GRAPH_VIEW_H_
#define GPAR_GRAPH_GRAPH_VIEW_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// A zero-copy induced-subgraph view over a parent `Graph` CSR.
///
/// Where `BuildInducedSubgraph` materializes a fragment as a fresh CSR with
/// a local↔global id remap, a view stores only *membership*: a sorted
/// global-id node list, a dense bitmap over the parent's id space, and a
/// per-label grouping of the members. The subgraph it denotes is the one
/// induced by the member set — every parent edge whose endpoints are both
/// members — and all ids are parent (global) ids, so evidence produced by
/// matching against a view needs no translation layer.
///
/// Memory is O(|members|) id-lists plus |V_parent|/8 bitmap bytes, versus
/// O(|V_f| + |E_f|) CSR copies per fragment; construction is one pass over
/// the members' adjacency (for the induced edge count) instead of a full
/// CSR rebuild. A constructed view is immutable and safe for concurrent
/// reads; it borrows the parent graph, which must outlive it.
class GraphView {
 public:
  GraphView() = default;
  /// `members` must be sorted ascending and duplicate-free parent node ids.
  GraphView(const Graph& parent, std::vector<NodeId> members);

  bool valid() const { return parent_ != nullptr; }
  const Graph& parent() const { return *parent_; }

  /// True iff `v` is a member (O(1) bitmap probe).
  bool contains(NodeId v) const {
    const size_t w = v >> 6;
    return w < bitmap_.size() && ((bitmap_[w] >> (v & 63)) & 1) != 0;
  }

  /// Member ids, sorted ascending.
  const std::vector<NodeId>& nodes() const { return members_; }
  NodeId num_nodes() const { return static_cast<NodeId>(members_.size()); }
  /// Number of induced edges (both endpoints members). Computed lazily on
  /// first call — one filtered adjacency sweep — and cached, so views that
  /// only ever match (DMine's hot path) never pay for it at build time.
  size_t num_edges() const;
  /// |V_f| + |E_f|, matching `Graph::size()` of the copied fragment.
  size_t size() const { return members_.size() + num_edges(); }

  LabelId node_label(NodeId v) const { return parent_->node_label(v); }

  /// Members whose label is `label`, sorted ascending (empty if none).
  std::span<const NodeId> nodes_with_label(LabelId label) const;
  size_t label_count(LabelId label) const {
    return nodes_with_label(label).size();
  }

  /// True iff `v` has an outgoing `elabel` edge to another member.
  bool HasOutLabel(NodeId v, LabelId elabel) const;

  /// Bytes held by the view's own containers (node lists, bitmap, label
  /// index) — the quantity the Exp-4 fragment-memory column reports.
  size_t MemoryBytes() const;

 private:
  /// Copyable atomic cell for the lazy edge count (idempotent to race:
  /// concurrent first calls compute the same value).
  struct CachedCount {
    static constexpr size_t kUnknown = static_cast<size_t>(-1);
    std::atomic<size_t> value{kUnknown};
    CachedCount() = default;
    CachedCount(const CachedCount& o)
        // Relaxed: views are copied single-threaded; the cell only memoizes.
        : value(o.value.load(std::memory_order_relaxed)) {}
    CachedCount& operator=(const CachedCount& o) {
      // Relaxed: same single-threaded copy contract as the copy ctor.
      value.store(o.value.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      return *this;
    }
  };

  const Graph* parent_ = nullptr;
  std::vector<NodeId> members_;    // sorted global ids
  std::vector<uint64_t> bitmap_;   // membership bits over parent ids
  std::vector<NodeId> by_label_;   // members grouped by label, ids ascending
  // label -> [begin, end) into by_label_
  std::unordered_map<LabelId, std::pair<uint32_t, uint32_t>> label_ranges_;
  mutable CachedCount induced_edges_;
};

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_VIEW_H_
