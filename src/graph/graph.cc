#include "graph/graph.h"

#include <algorithm>

namespace gpar {

namespace {

std::span<const AdjEntry> LabeledSlice(std::span<const AdjEntry> adj,
                                       LabelId elabel) {
  // Adjacency is sorted by (label, other): the slice for one label is the
  // equal_range over the label component.
  auto lo = std::lower_bound(
      adj.begin(), adj.end(), elabel,
      [](const AdjEntry& e, LabelId l) { return e.label < l; });
  auto hi = std::upper_bound(
      adj.begin(), adj.end(), elabel,
      [](LabelId l, const AdjEntry& e) { return l < e.label; });
  return adj.subspan(lo - adj.begin(), hi - lo);
}

}  // namespace

std::span<const AdjEntry> Graph::out_edges_labeled(NodeId v,
                                                   LabelId elabel) const {
  return LabeledSlice(out_edges(v), elabel);
}

std::span<const AdjEntry> Graph::in_edges_labeled(NodeId v,
                                                  LabelId elabel) const {
  return LabeledSlice(in_edges(v), elabel);
}

bool Graph::HasEdge(NodeId src, LabelId elabel, NodeId dst) const {
  auto adj = out_edges(src);
  return std::binary_search(adj.begin(), adj.end(), AdjEntry{elabel, dst});
}

std::span<const NodeId> Graph::nodes_with_label(LabelId label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return {};
  return {it->second.data(), it->second.size()};
}

}  // namespace gpar
