#include "graph/stats.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace gpar {

std::vector<EdgePatternStat> FrequentEdgePatterns(const Graph& g,
                                                  size_t limit) {
  std::map<std::tuple<LabelId, LabelId, LabelId>, uint64_t> counts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    LabelId src = g.node_label(v);
    for (const AdjEntry& e : g.out_edges(v)) {
      counts[{src, e.label, g.node_label(e.other)}]++;
    }
  }
  std::vector<EdgePatternStat> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                   count});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EdgePatternStat& a, const EdgePatternStat& b) {
                     return a.count > b.count;
                   });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(v));
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(v));
  }
  s.avg_degree = 2.0 * static_cast<double>(g.num_edges()) /
                 static_cast<double>(g.num_nodes());
  return s;
}

}  // namespace gpar
