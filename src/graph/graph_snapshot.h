#ifndef GPAR_GRAPH_GRAPH_SNAPSHOT_H_
#define GPAR_GRAPH_GRAPH_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace gpar {

/// Versioned, checksummed binary snapshot of a `Graph` — the serving
/// subsystem's at-rest format. Unlike the `v/e` text format (graph_io.h),
/// a snapshot is a direct dump of the out-CSR plus the interner's label
/// table, so loading skips tokenizing, label hashing, and the edge sort:
/// the reader memcpy-decodes the arrays and derives the in-CSR and label
/// index with the same assembly routine `GraphBuilder::Build` uses.
///
/// Layout (all integers little-endian; see README "Serving" for the spec):
/// ```
/// u64 magic "GPARGRPH"   u32 version=1   u64 payload_size   u64 fnv1a64
/// payload:
///   u32 label_count, label_count x { u32 len, bytes }   // interner, id order
///   u32 num_nodes,  num_nodes x u32 node_label
///   u64 num_edges,  (num_nodes+1) x u64 out_offset
///   num_edges x { u32 edge_label, u32 dst }             // CSR dump order
/// ```
/// The writer is deterministic, so write -> read -> write is byte-identical
/// (guarded by the snapshot tests). Readers reject wrong magic/version,
/// size mismatches, checksum failures, and any structural inconsistency
/// (non-monotone offsets, out-of-range ids, unsorted adjacency).
Status WriteGraphSnapshot(const Graph& g, std::ostream& os);
Status WriteGraphSnapshotFile(const Graph& g, const std::string& path);

Result<Graph> ReadGraphSnapshot(std::istream& is);
Result<Graph> ReadGraphSnapshotFile(const std::string& path);

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_SNAPSHOT_H_
