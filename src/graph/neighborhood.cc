#include "graph/neighborhood.h"

#include <deque>

#include "graph/graph_builder.h"

namespace gpar {

std::vector<NodeId> NodesWithinRadius(const Graph& g, NodeId v, uint32_t r) {
  return NodesWithinRadius(g, v, r, nullptr);
}

std::vector<NodeId> NodesWithinRadius(const Graph& g, NodeId v, uint32_t r,
                                      std::vector<uint32_t>* distances) {
  std::vector<NodeId> order;
  std::unordered_map<NodeId, uint32_t> dist;
  std::deque<NodeId> frontier;
  order.push_back(v);
  dist.emplace(v, 0);
  frontier.push_back(v);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    uint32_t du = dist[u];
    if (du == r) continue;
    auto visit = [&](NodeId w) {
      if (dist.emplace(w, du + 1).second) {
        order.push_back(w);
        frontier.push_back(w);
      }
    };
    for (const AdjEntry& e : g.out_edges(u)) visit(e.other);
    for (const AdjEntry& e : g.in_edges(u)) visit(e.other);
  }
  if (distances != nullptr) {
    distances->clear();
    distances->reserve(order.size());
    for (NodeId u : order) distances->push_back(dist[u]);
  }
  return order;
}

InducedSubgraph BuildInducedSubgraph(const Graph& g,
                                     const std::vector<NodeId>& nodes) {
  InducedSubgraph out;
  GraphBuilder builder(g.labels_ptr());
  out.to_global = nodes;
  out.to_local.reserve(nodes.size() * 2);
  for (NodeId v : nodes) {
    NodeId local = builder.AddNode(g.node_label(v));
    out.to_local.emplace(v, local);
  }
  for (NodeId v : nodes) {
    NodeId src_local = out.to_local[v];
    for (const AdjEntry& e : g.out_edges(v)) {
      auto it = out.to_local.find(e.other);
      if (it != out.to_local.end()) {
        builder.AddEdgeUnchecked(src_local, e.label, it->second);
      }
    }
  }
  out.graph = std::move(builder).Build();
  return out;
}

DNeighborhood ExtractDNeighborhood(const Graph& g, NodeId v, uint32_t d) {
  DNeighborhood out;
  std::vector<NodeId> nodes = NodesWithinRadius(g, v, d);
  out.sub = BuildInducedSubgraph(g, nodes);
  out.center_local = out.sub.to_local.at(v);
  return out;
}

bool IsDescendant(const Graph& g, NodeId v, NodeId desc) {
  if (v == desc) return false;  // a node is not its own descendant
  std::unordered_map<NodeId, bool> seen;
  std::deque<NodeId> frontier{v};
  seen.emplace(v, true);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    for (const AdjEntry& e : g.out_edges(u)) {
      if (e.other == desc) return true;
      if (seen.emplace(e.other, true).second) frontier.push_back(e.other);
    }
  }
  return false;
}

}  // namespace gpar
