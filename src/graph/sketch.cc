#include "graph/sketch.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace gpar {

namespace {

/// Accumulates hops[0..i] into a single distribution (labels within hop i+1).
HopDistribution AccumulatePrefix(const KHopSketch& sk, size_t upto) {
  std::unordered_map<LabelId, uint32_t> acc;
  for (size_t i = 0; i <= upto && i < sk.hops.size(); ++i) {
    for (const auto& [label, count] : sk.hops[i]) acc[label] += count;
  }
  HopDistribution out(acc.begin(), acc.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Returns (covered, slack): covered = every pattern label count is met;
/// slack = sum over labels of (graph count - pattern count) for labels the
/// pattern mentions, plus graph-only surplus.
std::pair<bool, int64_t> CompareDistributions(const HopDistribution& graph_d,
                                              const HopDistribution& pat_d) {
  bool covered = true;
  int64_t slack = 0;
  size_t gi = 0;
  for (const auto& [label, need] : pat_d) {
    while (gi < graph_d.size() && graph_d[gi].first < label) {
      slack += graph_d[gi].second;
      ++gi;
    }
    uint32_t have = 0;
    if (gi < graph_d.size() && graph_d[gi].first == label) {
      have = graph_d[gi].second;
      ++gi;
    }
    if (have < need) covered = false;
    slack += static_cast<int64_t>(have) - static_cast<int64_t>(need);
  }
  while (gi < graph_d.size()) {
    slack += graph_d[gi].second;
    ++gi;
  }
  return {covered, slack};
}

}  // namespace

namespace {

/// Shared truncated-BFS core: `admit(w)` gates which neighbors the sketch
/// may traverse (always-true for whole graphs, membership for views).
template <typename Admit>
KHopSketch ComputeSketchFiltered(const Graph& g, NodeId v, uint32_t k,
                                 const Admit& admit) {
  KHopSketch sk;
  sk.hops.resize(k);
  std::unordered_map<NodeId, uint32_t> dist;
  std::deque<NodeId> frontier{v};
  dist.emplace(v, 0);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    uint32_t du = dist[u];
    if (du == k) continue;
    auto visit = [&](NodeId w) {
      if (!admit(w)) return;
      if (dist.emplace(w, du + 1).second) frontier.push_back(w);
    };
    for (const AdjEntry& e : g.out_edges(u)) visit(e.other);
    for (const AdjEntry& e : g.in_edges(u)) visit(e.other);
  }
  std::vector<std::unordered_map<LabelId, uint32_t>> per_hop(k);
  for (const auto& [node, d] : dist) {
    if (d == 0) continue;
    per_hop[d - 1][g.node_label(node)]++;
  }
  for (uint32_t i = 0; i < k; ++i) {
    sk.hops[i].assign(per_hop[i].begin(), per_hop[i].end());
    std::sort(sk.hops[i].begin(), sk.hops[i].end());
  }
  return sk;
}

}  // namespace

KHopSketch ComputeSketch(const Graph& g, NodeId v, uint32_t k) {
  return ComputeSketchFiltered(g, v, k, [](NodeId) { return true; });
}

KHopSketch ComputeSketch(const GraphView& view, NodeId v, uint32_t k) {
  return ComputeSketchFiltered(view.parent(), v, k,
                               [&](NodeId w) { return view.contains(w); });
}

SketchIndex SketchIndex::Build(const Graph& g, uint32_t k) {
  SketchIndex idx;
  idx.k_ = k;
  idx.sketches_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    idx.sketches_.push_back(ComputeSketch(g, v, k));
  }
  return idx;
}

bool SketchCovers(const KHopSketch& graph_side,
                  const KHopSketch& pattern_side) {
  const size_t hops = pattern_side.hops.size();
  for (size_t i = 0; i < hops; ++i) {
    HopDistribution g_acc = AccumulatePrefix(graph_side, i);
    HopDistribution p_acc = AccumulatePrefix(pattern_side, i);
    auto [covered, slack] = CompareDistributions(g_acc, p_acc);
    (void)slack;
    if (!covered) return false;
  }
  return true;
}

int64_t SketchScore(const KHopSketch& graph_side,
                    const KHopSketch& pattern_side) {
  const size_t hops = pattern_side.hops.size();
  int64_t total = 0;
  for (size_t i = 0; i < hops; ++i) {
    HopDistribution g_acc = AccumulatePrefix(graph_side, i);
    HopDistribution p_acc = AccumulatePrefix(pattern_side, i);
    auto [covered, slack] = CompareDistributions(g_acc, p_acc);
    if (!covered) return -1;
    total += slack;
  }
  return total;
}

KHopSketch AccumulateSketch(const KHopSketch& sketch) {
  KHopSketch out;
  out.hops.reserve(sketch.hops.size());
  for (size_t i = 0; i < sketch.hops.size(); ++i) {
    out.hops.push_back(AccumulatePrefix(sketch, i));
  }
  return out;
}

bool SketchCoversAccumulated(const KHopSketch& graph_acc,
                             const KHopSketch& pattern_acc) {
  const size_t hops = pattern_acc.hops.size();
  for (size_t i = 0; i < hops; ++i) {
    if (i >= graph_acc.hops.size()) {
      if (!pattern_acc.hops[i].empty()) return false;
      continue;
    }
    auto [covered, slack] =
        CompareDistributions(graph_acc.hops[i], pattern_acc.hops[i]);
    (void)slack;
    if (!covered) return false;
  }
  return true;
}

int64_t SketchScoreAccumulated(const KHopSketch& graph_acc,
                               const KHopSketch& pattern_acc) {
  const size_t hops = pattern_acc.hops.size();
  int64_t total = 0;
  for (size_t i = 0; i < hops && i < graph_acc.hops.size(); ++i) {
    auto [covered, slack] =
        CompareDistributions(graph_acc.hops[i], pattern_acc.hops[i]);
    if (!covered) return -1;
    total += slack;
  }
  return total;
}

void SketchStore::Add(const Graph& g, NodeId v) {
  if (sketches_.count(v) > 0) return;
  sketches_.emplace(v, AccumulateSketch(ComputeSketch(g, v, k_)));
}

const KHopSketch* SketchStore::Find(NodeId v) const {
  auto it = sketches_.find(v);
  return it == sketches_.end() ? nullptr : &it->second;
}

size_t SketchStore::Refresh(const Graph& g, std::span<const NodeId> nodes) {
  size_t refreshed = 0;
  for (NodeId v : nodes) {
    auto it = sketches_.find(v);
    if (it == sketches_.end()) continue;
    it->second = AccumulateSketch(ComputeSketch(g, v, k_));
    ++refreshed;
  }
  return refreshed;
}

}  // namespace gpar
