#ifndef GPAR_GRAPH_PARTITION_H_
#define GPAR_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/neighborhood.h"

namespace gpar {

/// One fragment F_i of a partitioned graph (Sections 4.2 / 5.1).
///
/// A fragment owns a disjoint subset of the *center* nodes (the candidates
/// v_x) and stores the subgraph induced by the union of their d-neighbor
/// sets N_d(v_x), so `G_d(v_x)` is fully contained in the fragment for every
/// owned center — the data-locality invariant both DMine and Matchc rely on.
/// Border (replicated) nodes are present for matching but never counted
/// toward support: support counting only ever iterates `centers`.
struct Fragment {
  InducedSubgraph sub;             // local graph + id maps
  std::vector<NodeId> centers;     // local ids of owned centers
  std::vector<uint32_t> center_hops_available;  // max hop with edges, per center
};

/// A full partitioning of (G, centers) into fragments.
struct Partitioning {
  std::vector<Fragment> fragments;
  uint32_t d = 0;
  /// fragment index owning each input center (parallel to the input span).
  std::vector<uint32_t> owner_of_center;
};

/// Options for `PartitionGraph`.
struct PartitionOptions {
  uint32_t num_fragments = 4;
  uint32_t d = 2;  ///< locality radius: G_d(center) kept within its fragment
};

/// Partitions `g` for the given `centers` (candidate nodes v_x).
///
/// Centers are assigned greedily in descending estimated-work order to the
/// least loaded fragment (load = sum of |N_d| sizes), which bounds fragment
/// skew — the paper reports <= 14.4% max-min gap with a comparable balanced
/// partitioner [36]. Each fragment's node set is the union of the owned
/// centers' N_d sets (replication at borders), so fragments overlap but
/// center ownership is disjoint, making local supports directly summable.
Result<Partitioning> PartitionGraph(const Graph& g,
                                    const std::vector<NodeId>& centers,
                                    const PartitionOptions& options);

/// Measures balance: (max fragment size - min fragment size) / max, in
/// [0, 1]; 0 is perfectly even. Used by the Exp-4 skew bench.
double FragmentSkew(const Partitioning& p);

}  // namespace gpar

#endif  // GPAR_GRAPH_PARTITION_H_
