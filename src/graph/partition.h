#ifndef GPAR_GRAPH_PARTITION_H_
#define GPAR_GRAPH_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_view.h"
#include "graph/neighborhood.h"

namespace gpar {

/// One fragment F_i of a partitioned graph (Sections 4.2 / 5.1).
///
/// A fragment owns a disjoint subset of the *center* nodes (the candidates
/// v_x) and covers the subgraph induced by the union of their d-neighbor
/// sets N_d(v_x), so `G_d(v_x)` is fully contained in the fragment for every
/// owned center — the data-locality invariant both DMine and Matchc rely on.
/// Border (replicated) nodes are present for matching but never counted
/// toward support: support counting only ever iterates `centers`.
///
/// Representation: by default the fragment is a zero-copy `GraphView` over
/// the parent CSR — matching runs on global ids, so match evidence is
/// globally addressed by construction and border replication costs one
/// id-list entry per node, not a CSR copy. With
/// `PartitionOptions::use_fragment_copies` the legacy materialized
/// `InducedSubgraph` is built instead (the A/B baseline); `MatchId` /
/// `GlobalId` fold the id translation the copy still needs into two
/// helpers so consumers stay representation-agnostic.
struct Fragment {
  GraphView view;                       // zero-copy path (default)
  std::unique_ptr<InducedSubgraph> copy;  // legacy path, iff requested
  std::vector<NodeId> centers;          // GLOBAL ids of owned centers
  /// Per owned center: nonzero iff the center's N_d can still grow — some
  /// node at hop exactly d has an incident edge leaving N_d. 0 means the
  /// d-neighborhood is saturated (it is the whole reachable component).
  std::vector<uint32_t> center_hops_available;

  bool uses_copy() const { return copy != nullptr; }
  /// Id to hand the fragment's matcher for a global node (identity for
  /// views; the local id for copies).
  NodeId MatchId(NodeId global) const {
    return copy ? copy->to_local.at(global) : global;
  }
  /// Inverse of `MatchId`.
  NodeId GlobalId(NodeId match_id) const {
    return copy ? copy->to_global[match_id] : match_id;
  }
  /// True iff the global node belongs to the fragment.
  bool ContainsGlobal(NodeId v) const {
    return copy ? copy->to_local.count(v) > 0 : view.contains(v);
  }
  /// True iff the global node has an outgoing `elabel` edge inside the
  /// fragment — the consequent-edge (LCWA) classification DMine and EIP
  /// share, kept here so consumers never pair the wrong id kind with the
  /// wrong representation.
  bool HasOutLabelAt(NodeId global, LabelId elabel) const {
    return copy ? copy->graph.HasOutLabel(MatchId(global), elabel)
                : view.HasOutLabel(global, elabel);
  }
  /// |V_f| + |E_f| — the paper's fragment size measure (skew metric).
  size_t SizeVE() const { return copy ? copy->graph.size() : view.size(); }
  /// Bytes held by the fragment's graph representation (view id-lists +
  /// bitmap, or the copied CSR + id maps) — the Exp-4 memory column.
  size_t MemoryBytes() const;
};

/// A full partitioning of (G, centers) into fragments.
struct Partitioning {
  std::vector<Fragment> fragments;
  uint32_t d = 0;
  /// fragment index owning each input center (parallel to the input span).
  std::vector<uint32_t> owner_of_center;
};

/// Options for `PartitionGraph`.
struct PartitionOptions {
  uint32_t num_fragments = 4;
  uint32_t d = 2;  ///< locality radius: G_d(center) kept within its fragment
  /// Select the legacy build pipeline: one hash-map BFS per center,
  /// per-fragment unordered_set unions, and a materialized `InducedSubgraph`
  /// CSR copy per fragment — the pre-view cost structure, kept intact as
  /// the A/B baseline for the Exp-4 bench and the view/copy equivalence
  /// battery. The partition itself (assignment, membership, centers,
  /// extendability signal) is identical under both settings; only build
  /// cost, memory, and the fragment representation differ.
  bool use_fragment_copies = false;
};

/// Partitions `g` for the given `centers` (candidate nodes v_x).
///
/// Centers are assigned greedily in descending estimated-work order to the
/// least loaded fragment (load = sum of |N_d| sizes), which bounds fragment
/// skew — the paper reports <= 14.4% max-min gap with a comparable balanced
/// partitioner [36]. Each fragment's node set is the union of the owned
/// centers' N_d sets (replication at borders), so fragments overlap but
/// center ownership is disjoint, making local supports directly summable.
///
/// The build is a single multi-source BFS sweep: one frontier pass tags
/// every node with the (center, distance) pairs that reach it within d,
/// which yields exact |N_d| weights for the LPT assignment, the
/// extendable-past-d signal, and sorted fragment membership lists in one
/// near-linear pass — replacing |centers| independent BFS runs,
/// per-fragment unordered_set unions, and (on the view path) the induced
/// CSR rebuild entirely.
Result<Partitioning> PartitionGraph(const Graph& g,
                                    const std::vector<NodeId>& centers,
                                    const PartitionOptions& options);

/// Measures balance: (max fragment size - min fragment size) / max, in
/// [0, 1]; 0 is perfectly even. Used by the Exp-4 skew bench.
double FragmentSkew(const Partitioning& p);

/// Total `Fragment::MemoryBytes()` across fragments — the Exp-4 view/copy
/// memory comparison.
size_t PartitionMemoryBytes(const Partitioning& p);

}  // namespace gpar

#endif  // GPAR_GRAPH_PARTITION_H_
