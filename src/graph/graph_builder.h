#ifndef GPAR_GRAPH_GRAPH_BUILDER_H_
#define GPAR_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace gpar {

/// Mutable accumulator that produces an immutable `Graph`.
///
/// Typical use:
/// ```
/// GraphBuilder b;
/// NodeId alice = b.AddNode("cust");
/// NodeId shop  = b.AddNode("store");
/// b.AddEdge(alice, "visit", shop);
/// Graph g = std::move(b).Build();
/// ```
/// Duplicate (src, label, dst) edges are collapsed at Build time; self-loops
/// are allowed. Builders may share a label dictionary with an existing graph
/// by constructing from its `labels_ptr()`.
class GraphBuilder {
 public:
  GraphBuilder() : labels_(std::make_shared<Interner>()) {}
  explicit GraphBuilder(std::shared_ptr<Interner> labels)
      : labels_(std::move(labels)) {}

  /// Adds a node labeled `label`, returning its dense id.
  NodeId AddNode(std::string_view label) {
    return AddNode(labels_->Intern(label));
  }
  NodeId AddNode(LabelId label) {
    node_labels_.push_back(label);
    return static_cast<NodeId>(node_labels_.size() - 1);
  }

  /// Adds `count` nodes with the same label; returns the first id.
  NodeId AddNodes(LabelId label, NodeId count) {
    NodeId first = static_cast<NodeId>(node_labels_.size());
    node_labels_.insert(node_labels_.end(), count, label);
    return first;
  }

  /// Adds a directed edge src --label--> dst. Endpoints must already exist.
  Status AddEdge(NodeId src, std::string_view label, NodeId dst) {
    return AddEdge(src, labels_->Intern(label), dst);
  }
  Status AddEdge(NodeId src, LabelId label, NodeId dst);

  /// Convenience for trusted internal callers (generators): no id checks.
  void AddEdgeUnchecked(NodeId src, LabelId label, NodeId dst) {
    edges_.push_back({src, label, dst});
  }

  LabelId InternLabel(std::string_view s) { return labels_->Intern(s); }
  const std::shared_ptr<Interner>& labels_ptr() const { return labels_; }

  NodeId num_nodes() const { return static_cast<NodeId>(node_labels_.size()); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into an immutable Graph. The builder is consumed.
  Graph Build() &&;

 private:
  struct PendingEdge {
    NodeId src;
    LabelId label;
    NodeId dst;
  };

  std::shared_ptr<Interner> labels_;
  std::vector<LabelId> node_labels_;
  std::vector<PendingEdge> edges_;
};

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_BUILDER_H_
