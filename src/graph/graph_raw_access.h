#ifndef GPAR_GRAPH_GRAPH_RAW_ACCESS_H_
#define GPAR_GRAPH_GRAPH_RAW_ACCESS_H_

#include <memory>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// Internal backdoor into `Graph`'s CSR storage, shared by the binary
/// snapshot codec (graph_snapshot.cc) and the edge-delta patcher
/// (graph_delta.cc). Not part of the public graph API: everything here
/// assumes the caller maintains the class invariants — out-adjacency sorted
/// by (label, other) within each node's slice, offsets monotone with
/// `offsets[num_nodes] == adj.size()`.
///
/// `FinishFromOutCsr` derives the remaining storage (in-CSR and the label
/// inverted index) from the out-CSR; it is the single assembly routine used
/// by `GraphBuilder::Build`, the snapshot reader, and the delta patcher, so
/// a graph assembled from any of them is bit-identical given the same
/// out-CSR and labels.
struct GraphRawAccess {
  static std::shared_ptr<Interner>& labels(Graph& g) { return g.labels_; }
  static std::vector<LabelId>& node_labels(Graph& g) { return g.node_labels_; }
  static std::vector<size_t>& out_offsets(Graph& g) { return g.out_offsets_; }
  static std::vector<AdjEntry>& out_adj(Graph& g) { return g.out_adj_; }

  static const std::vector<LabelId>& node_labels(const Graph& g) {
    return g.node_labels_;
  }
  static const std::vector<size_t>& out_offsets(const Graph& g) {
    return g.out_offsets_;
  }
  static const std::vector<AdjEntry>& out_adj(const Graph& g) {
    return g.out_adj_;
  }

  /// Rebuilds in-CSR (counting sort by destination, then per-node sort by
  /// (label, src)) and the label inverted index from the out-CSR. The
  /// out-CSR fields and `node_labels_` must be fully populated.
  static void FinishFromOutCsr(Graph& g);
};

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_RAW_ACCESS_H_
