#include "graph/graph_snapshot.h"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "common/binary_io.h"
#include "graph/graph_raw_access.h"

namespace gpar {

namespace {

// "GPARGRPH", little-endian.
constexpr uint64_t kGraphMagic = 0x4850524741525047ull;
constexpr uint32_t kGraphVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8;

std::string EncodePayload(const Graph& g) {
  std::string p;
  const Interner& labels = g.labels();
  PutU32(&p, static_cast<uint32_t>(labels.size()));
  for (LabelId id = 0; id < labels.size(); ++id) {
    PutString(&p, labels.Name(id));
  }
  const NodeId n = g.num_nodes();
  PutU32(&p, n);
  for (NodeId v = 0; v < n; ++v) PutU32(&p, g.node_label(v));
  PutU64(&p, g.num_edges());
  const auto& offsets = GraphRawAccess::out_offsets(g);
  for (size_t off : offsets) PutU64(&p, off);
  for (const AdjEntry& e : GraphRawAccess::out_adj(g)) {
    PutU32(&p, e.label);
    PutU32(&p, e.other);
  }
  return p;
}

}  // namespace

Status WriteGraphSnapshot(const Graph& g, std::ostream& os) {
  std::string payload = EncodePayload(g);
  std::string header;
  PutU64(&header, kGraphMagic);
  PutU32(&header, kGraphVersion);
  PutU64(&header, payload.size());
  PutU64(&header, Fnv1a64(payload));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) return Status::IoError("graph snapshot write failed");
  return Status::OK();
}

Status WriteGraphSnapshotFile(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return Status::IoError("cannot open " + path);
  return WriteGraphSnapshot(g, os);
}

Result<Graph> ReadGraphSnapshot(std::istream& is) {
  std::string header(kHeaderBytes, '\0');
  is.read(header.data(), static_cast<std::streamsize>(kHeaderBytes));
  if (is.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return Status::Corruption("graph snapshot: truncated header");
  }
  ByteReader hr(header);
  uint64_t magic = 0, payload_size = 0, checksum = 0;
  uint32_t version = 0;
  if (!hr.ReadU64(&magic) || !hr.ReadU32(&version) ||
      !hr.ReadU64(&payload_size) || !hr.ReadU64(&checksum)) {
    return Status::Corruption("graph snapshot: truncated header");
  }
  if (magic != kGraphMagic) {
    return Status::Corruption("graph snapshot: bad magic");
  }
  if (version != kGraphVersion) {
    return Status::Corruption("graph snapshot: unsupported version " +
                              std::to_string(version));
  }

  // The declared size is untrusted: read in bounded chunks so a corrupt
  // header cannot make us allocate gigabytes before noticing truncation.
  std::string payload;
  GPAR_RETURN_NOT_OK(
      ReadSizedPayload(is, payload_size, "graph snapshot", &payload));
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("graph snapshot: checksum mismatch");
  }

  ByteReader r(payload);
  uint32_t label_count;
  if (!r.ReadU32(&label_count)) {
    return Status::Corruption("graph snapshot: bad label table");
  }
  auto interner = std::make_shared<Interner>();
  for (uint32_t i = 0; i < label_count; ++i) {
    std::string name;
    if (!r.ReadString(&name)) {
      return Status::Corruption("graph snapshot: bad label table");
    }
    if (interner->Intern(name) != i) {
      return Status::Corruption("graph snapshot: duplicate label in table");
    }
  }

  uint32_t num_nodes;
  if (!r.ReadU32(&num_nodes)) {
    return Status::Corruption("graph snapshot: bad node section");
  }
  // Element counts are untrusted until checked against the bytes actually
  // present; never size a container from the count alone.
  if (uint64_t{num_nodes} * 4 > r.remaining()) {
    return Status::Corruption("graph snapshot: bad node section");
  }
  std::vector<LabelId> node_labels(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    if (!r.ReadU32(&node_labels[v]) || node_labels[v] >= label_count) {
      return Status::Corruption("graph snapshot: bad node label");
    }
  }

  uint64_t num_edges;
  if (!r.ReadU64(&num_edges)) {
    return Status::Corruption("graph snapshot: bad edge section");
  }
  if ((uint64_t{num_nodes} + 1) * 8 > r.remaining() ||
      num_edges > (r.remaining() - (uint64_t{num_nodes} + 1) * 8) / 8) {
    return Status::Corruption("graph snapshot: bad edge section");
  }
  std::vector<size_t> offsets(static_cast<size_t>(num_nodes) + 1);
  uint64_t prev = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    uint64_t off;
    if (!r.ReadU64(&off) || off < prev || off > num_edges) {
      return Status::Corruption("graph snapshot: bad CSR offsets");
    }
    offsets[i] = static_cast<size_t>(off);
    prev = off;
  }
  if (offsets.front() != 0 || offsets.back() != num_edges) {
    return Status::Corruption("graph snapshot: bad CSR offsets");
  }
  std::vector<AdjEntry> adj(static_cast<size_t>(num_edges));
  for (auto& e : adj) {
    if (!r.ReadU32(&e.label) || !r.ReadU32(&e.other) ||
        e.label >= label_count || e.other >= num_nodes) {
      return Status::Corruption("graph snapshot: bad adjacency entry");
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("graph snapshot: trailing bytes in payload");
  }
  // Per-node slices must be sorted by (label, other): binary-searched edge
  // membership and labeled-slice lookups rely on it.
  for (uint32_t v = 0; v < num_nodes; ++v) {
    for (size_t i = offsets[v] + 1; i < offsets[v + 1]; ++i) {
      if (!(adj[i - 1] < adj[i])) {
        return Status::Corruption("graph snapshot: unsorted adjacency");
      }
    }
  }

  Graph g;
  GraphRawAccess::labels(g) = std::move(interner);
  GraphRawAccess::node_labels(g) = std::move(node_labels);
  GraphRawAccess::out_offsets(g) = std::move(offsets);
  GraphRawAccess::out_adj(g) = std::move(adj);
  GraphRawAccess::FinishFromOutCsr(g);
  return g;
}

Result<Graph> ReadGraphSnapshotFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open " + path);
  return ReadGraphSnapshot(is);
}

}  // namespace gpar
