#ifndef GPAR_GRAPH_SKETCH_H_
#define GPAR_GRAPH_SKETCH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_view.h"

namespace gpar {

/// Label frequency distribution at one hop distance: sorted (label, count)
/// pairs. Sorted order makes coverage checks a linear merge.
using HopDistribution = std::vector<std::pair<LabelId, uint32_t>>;

/// k-hop neighborhood sketch K(v) = {(1, D_1), ..., (k, D_k)} where D_i is
/// the distribution of node labels at (undirected) hop i of v — the guided
/// search index of Section 5.2.
struct KHopSketch {
  std::vector<HopDistribution> hops;  // hops[i] = D_{i+1}
};

/// Per-node sketches over a whole graph.
///
/// `Build` performs one truncated BFS per node; cost O(|V| * avg |N_k|).
/// Designed for fragment-local graphs (d-neighborhood unions), where N_k is
/// small (98% of real-life patterns have radius 1, 1.8% radius 2 — §4.2).
class SketchIndex {
 public:
  SketchIndex() = default;

  /// Builds k-hop sketches for every node of `g`.
  static SketchIndex Build(const Graph& g, uint32_t k);

  uint32_t k() const { return k_; }
  const KHopSketch& of(NodeId v) const { return sketches_[v]; }
  size_t size() const { return sketches_.size(); }

 private:
  uint32_t k_ = 0;
  std::vector<KHopSketch> sketches_;
};

/// Read-only shared store of *accumulated* node sketches — the serving
/// counterpart of `SearchPlanStore`: a `RuleServer` precomputes sketches
/// for the nodes rule patterns can touch once at load, and every worker's
/// `GuidedMatcher` consults the store before paying for a private BFS
/// (`GuidedMatcher::set_sketch_store`).
///
/// Concurrency contract: `Add`/`Refresh` are single-threaded (load time or
/// between requests); `Find` is lock-free and safe from any number of
/// threads once population is done. Under edge deltas, stored sketches of
/// nodes within k hops of an inserted edge's endpoints go stale and MUST be
/// refreshed — a stale sketch under-counts and would wrongly prune a
/// now-valid candidate.
class SketchStore {
 public:
  explicit SketchStore(uint32_t k) : k_(k) {}

  /// Computes and stores the sketch of `v` over `g` (idempotent).
  void Add(const Graph& g, NodeId v);

  /// The stored accumulated sketch of `v`, or nullptr if never added.
  const KHopSketch* Find(NodeId v) const;

  /// Recomputes the stored sketches among `nodes` over (the current state
  /// of) `g`; nodes not in the store are ignored. Returns the number of
  /// sketches recomputed — the delta-maintenance cost counter.
  size_t Refresh(const Graph& g, std::span<const NodeId> nodes);

  uint32_t k() const { return k_; }
  size_t size() const { return sketches_.size(); }

 private:
  uint32_t k_;
  std::unordered_map<NodeId, KHopSketch> sketches_;
};

/// Computes the sketch of a single node (used for pattern nodes, where the
/// "graph" is the pattern itself).
KHopSketch ComputeSketch(const Graph& g, NodeId v, uint32_t k);

/// As above, with the BFS restricted to `view` members: the sketch of `v`
/// in the subgraph the view induces — identical to the sketch a copied
/// fragment would produce, so view-backed guided matching filters and
/// orders candidates exactly like the copy-backed baseline.
KHopSketch ComputeSketch(const GraphView& view, NodeId v, uint32_t k);

/// True iff `graph_side` dominates `pattern_side`: for every hop i <= k and
/// every label, the graph node has at least as many occurrences as the
/// pattern node requires. A candidate failing this cannot match (Section
/// 5.2: "v' does not match u' if for some i, D_i - D'_i < 0").
///
/// Note this is a *cumulative* check: pattern nodes at hop i may map to
/// graph nodes at hop <= i, so we compare prefix-accumulated counts; the
/// plain per-hop check would wrongly reject valid candidates.
bool SketchCovers(const KHopSketch& graph_side, const KHopSketch& pattern_side);

/// Guided-search score f(u', v') = sum_i (D_i - D'_i): total slack of the
/// graph node's label budget over the pattern's requirement. Larger score =
/// more likely to match (Section 5.2). Returns a negative value if coverage
/// fails.
int64_t SketchScore(const KHopSketch& graph_side,
                    const KHopSketch& pattern_side);

/// Converts a sketch to prefix-accumulated form: hops[i] holds the label
/// counts within distance i+1 (not exactly i+1). Comparisons on
/// accumulated sketches are allocation-free linear merges — the fast path
/// the guided matcher uses on its hot loop.
KHopSketch AccumulateSketch(const KHopSketch& sketch);

/// `SketchCovers` for sketches already in accumulated form.
bool SketchCoversAccumulated(const KHopSketch& graph_acc,
                             const KHopSketch& pattern_acc);

/// `SketchScore` for sketches already in accumulated form.
int64_t SketchScoreAccumulated(const KHopSketch& graph_acc,
                               const KHopSketch& pattern_acc);

}  // namespace gpar

#endif  // GPAR_GRAPH_SKETCH_H_
