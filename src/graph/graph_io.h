#ifndef GPAR_GRAPH_GRAPH_IO_H_
#define GPAR_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace gpar {

/// Text serialization of labeled graphs.
///
/// Line-oriented format, one record per line:
/// ```
/// # comment
/// v <id> <label>
/// e <src> <dst> <label>
/// ```
/// Node ids must be dense and declared before use in edges. Labels are
/// whitespace-free tokens (escape spaces with '_'; the examples use this for
/// labels like `French_restaurant`).
Status WriteGraphText(const Graph& g, std::ostream& os);
Status WriteGraphFile(const Graph& g, const std::string& path);

Result<Graph> ReadGraphText(std::istream& is);
Result<Graph> ReadGraphFile(const std::string& path);

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_IO_H_
