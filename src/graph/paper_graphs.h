#ifndef GPAR_GRAPH_PAPER_GRAPHS_H_
#define GPAR_GRAPH_PAPER_GRAPHS_H_

#include <memory>

#include "graph/graph.h"
#include "rule/gpar.h"

namespace gpar {

/// The running-example graphs and rules of the paper (Figures 1-3), used by
/// unit tests to validate every worked number (Examples 3, 5, 7, 8, 9, 10)
/// and by the example programs.
///
/// Node name constants are indices into the graphs built by the factories.
struct PaperG1 {
  Graph graph;
  // Customers.
  NodeId cust1, cust2, cust3, cust4, cust5, cust6;
  // Cities.
  NodeId ny, la;
  // French restaurants: the two liked triples and the named ones.
  NodeId f1, f2, f3;          // liked by cust1-cust3, in NY
  NodeId f4, f5, f6;          // liked by cust4/cust5, in LA
  NodeId le_bernardin, per_se, patina;
  // Asian restaurants.
  NodeId a1, a2;              // a2 in LA, a1 without a city

  // The predicate q(x, y) = visit(cust, French_restaurant).
  Predicate q;

  // The paper's rules over G1.
  Gpar r1;  ///< Q1 (Fig. 1a): same-city friends, 3 shared FRs, x' visits y
  Gpar r5;  ///< Fig. 3: friend + x likes FR^2            (radius 1)
  Gpar r6;  ///< Fig. 3: friend + x likes Asian restaurant (radius 1)
  Gpar r7;  ///< Fig. 3: R5 + live_in/in closure           (radius 2)
  Gpar r8;  ///< Fig. 3: R6 + live_in/in closure           (radius 2)
};

/// Builds G1 (Fig. 2 left) with the exact supports of the examples:
/// supp(Q1) = 4, supp(R1) = 3, supp(q) = 5, supp(~q) = 1, conf(R1) = 0.6,
/// conf(R5) = 0.8, conf(R6) = 0.4, conf(R7) = 0.6, conf(R8) = 0.2.
PaperG1 MakePaperG1();

struct PaperG2 {
  Graph graph;
  NodeId acct1, acct2, acct3, acct4;
  NodeId p1, p2, p3, p4, p5, p6, p7;  // blogs
  NodeId k1, k2;                      // keywords
  NodeId fake;                        // the value-binding node

  Predicate q;  ///< is_a(acct, fake)
  Gpar r4;      ///< Q4 (Fig. 1d) with k = 2 common liked blogs
};

/// Builds G2 (Fig. 2 right): supp(R4) = supp(Q4) = 3 for k = 2.
PaperG2 MakePaperG2();

struct PaperEcuador {
  Graph graph;
  NodeId v1, v2, v3;  // the positive / negative / unknown users (Example 7)
  NodeId w1, w2;      // friends completing the Q2 triangles
  NodeId ecuador, shakira_album, mj_album;

  Predicate q;  ///< like(user, shakira_album)
  Gpar r2;      ///< Q2 (Fig. 1b): triangle of friends in Ecuador, k=2 likers
};

/// Builds the Example 6/7 scenario: under LCWA, v1 is positive, v2 negative
/// (likes only another album), v3 unknown (no like edges at all); the
/// BF-based confidence is 1 while conventional confidence is below 1.
PaperEcuador MakePaperEcuador();

}  // namespace gpar

#endif  // GPAR_GRAPH_PAPER_GRAPHS_H_
