#ifndef GPAR_GRAPH_GRAPH_H_
#define GPAR_GRAPH_GRAPH_H_

#include "common/require_cxx20.h"  // IWYU pragma: keep

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/interner.h"

namespace gpar {

/// Integer id of a graph node. Nodes are dense `[0, num_nodes)`.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One directed adjacency entry: the other endpoint plus the edge label.
/// Stored sorted by (label, other) so per-label neighbor ranges and exact
/// edge membership are binary-searchable.
struct AdjEntry {
  LabelId label;
  NodeId other;

  friend bool operator==(const AdjEntry&, const AdjEntry&) = default;
  friend auto operator<=>(const AdjEntry& a, const AdjEntry& b) {
    if (auto c = a.label <=> b.label; c != 0) return c;
    return a.other <=> b.other;
  }
};

/// Immutable labeled directed graph G = (V, E, L) — the paper's data model
/// (Section 2.1): finite node set, directed labeled edges, node labels that
/// carry either type names ("cust") or value bindings ("44").
///
/// Storage is CSR in both directions with label-sorted adjacency, plus an
/// inverted index from node label to the nodes carrying it. Construct via
/// `GraphBuilder`; a built graph is immutable and safe for concurrent reads.
class Graph {
 public:
  Graph() : labels_(std::make_shared<Interner>()) {}

  NodeId num_nodes() const { return static_cast<NodeId>(node_labels_.size()); }
  size_t num_edges() const { return out_adj_.size(); }
  /// |G| = |V| + |E| (the paper's size measure).
  size_t size() const { return node_labels_.size() + out_adj_.size(); }

  LabelId node_label(NodeId v) const { return node_labels_[v]; }

  /// Outgoing adjacency of `v`, sorted by (edge label, destination).
  std::span<const AdjEntry> out_edges(NodeId v) const {
    return {out_adj_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  /// Incoming adjacency of `v`, sorted by (edge label, source).
  std::span<const AdjEntry> in_edges(NodeId v) const {
    return {in_adj_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t out_degree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t in_degree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  size_t degree(NodeId v) const { return out_degree(v) + in_degree(v); }

  /// Outgoing neighbors of `v` over edges labeled `elabel` (a contiguous
  /// slice of `out_edges(v)`).
  std::span<const AdjEntry> out_edges_labeled(NodeId v, LabelId elabel) const;
  /// Incoming counterpart of `out_edges_labeled`.
  std::span<const AdjEntry> in_edges_labeled(NodeId v, LabelId elabel) const;

  /// True iff edge (src --elabel--> dst) exists.
  bool HasEdge(NodeId src, LabelId elabel, NodeId dst) const;
  /// True iff `v` has at least one outgoing edge labeled `elabel`.
  bool HasOutLabel(NodeId v, LabelId elabel) const {
    return !out_edges_labeled(v, elabel).empty();
  }

  /// All nodes whose label is `label` (empty span if none).
  std::span<const NodeId> nodes_with_label(LabelId label) const;

  /// Number of nodes labeled `label`.
  size_t label_count(LabelId label) const {
    return nodes_with_label(label).size();
  }

  /// Shared label dictionary. Patterns posed against this graph should
  /// intern their labels through the same dictionary.
  const Interner& labels() const { return *labels_; }
  const std::shared_ptr<Interner>& labels_ptr() const { return labels_; }
  Interner* mutable_labels() { return labels_.get(); }

 private:
  friend class GraphBuilder;
  // Internal accessor for the binary snapshot codec and the edge-delta
  // patcher (graph_raw_access.h): both assemble a Graph directly from CSR
  // arrays instead of replaying edge triples through the builder.
  friend struct GraphRawAccess;

  std::shared_ptr<Interner> labels_;
  std::vector<LabelId> node_labels_;
  std::vector<size_t> out_offsets_;  // size num_nodes()+1
  std::vector<AdjEntry> out_adj_;
  std::vector<size_t> in_offsets_;
  std::vector<AdjEntry> in_adj_;
  // label -> sorted node ids
  std::unordered_map<LabelId, std::vector<NodeId>> label_index_;
};

}  // namespace gpar

#endif  // GPAR_GRAPH_GRAPH_H_
