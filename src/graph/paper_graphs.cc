#include "graph/paper_graphs.h"

#include <cassert>

#include "graph/graph_builder.h"

namespace gpar {

namespace {

/// Adds friend edges in both directions (friendship is symmetric in G1).
void AddFriends(GraphBuilder& b, LabelId friend_label, NodeId a, NodeId c) {
  b.AddEdgeUnchecked(a, friend_label, c);
  b.AddEdgeUnchecked(c, friend_label, a);
}

}  // namespace

PaperG1 MakePaperG1() {
  PaperG1 g1;
  GraphBuilder b;
  const LabelId cust = b.InternLabel("cust");
  const LabelId city = b.InternLabel("city");
  const LabelId fr = b.InternLabel("French_restaurant");
  const LabelId ar = b.InternLabel("Asian_restaurant");
  const LabelId live_in = b.InternLabel("live_in");
  const LabelId friend_l = b.InternLabel("friend");
  const LabelId like = b.InternLabel("like");
  const LabelId in = b.InternLabel("in");
  const LabelId visit = b.InternLabel("visit");

  g1.cust1 = b.AddNode(cust);
  g1.cust2 = b.AddNode(cust);
  g1.cust3 = b.AddNode(cust);
  g1.cust4 = b.AddNode(cust);
  g1.cust5 = b.AddNode(cust);
  g1.cust6 = b.AddNode(cust);
  g1.ny = b.AddNode(city);
  g1.la = b.AddNode(city);
  g1.f1 = b.AddNode(fr);
  g1.f2 = b.AddNode(fr);
  g1.f3 = b.AddNode(fr);
  g1.f4 = b.AddNode(fr);
  g1.f5 = b.AddNode(fr);
  g1.f6 = b.AddNode(fr);
  g1.le_bernardin = b.AddNode(fr);
  g1.per_se = b.AddNode(fr);
  g1.patina = b.AddNode(fr);
  g1.a1 = b.AddNode(ar);
  g1.a2 = b.AddNode(ar);

  // Residence: cust1-3 in New York, cust4-6 in LA.
  for (NodeId c : {g1.cust1, g1.cust2, g1.cust3}) {
    b.AddEdgeUnchecked(c, live_in, g1.ny);
  }
  for (NodeId c : {g1.cust4, g1.cust5, g1.cust6}) {
    b.AddEdgeUnchecked(c, live_in, g1.la);
  }

  // Friendships: the NY triangle and the LA triangle minus cust5-cust6...
  AddFriends(b, friend_l, g1.cust1, g1.cust2);
  AddFriends(b, friend_l, g1.cust1, g1.cust3);
  AddFriends(b, friend_l, g1.cust2, g1.cust3);
  AddFriends(b, friend_l, g1.cust4, g1.cust5);
  AddFriends(b, friend_l, g1.cust4, g1.cust6);
  AddFriends(b, friend_l, g1.cust5, g1.cust6);

  // Likes: cust1-cust3 like the NY French triple; cust4/cust5 the LA triple.
  for (NodeId c : {g1.cust1, g1.cust2, g1.cust3}) {
    for (NodeId f : {g1.f1, g1.f2, g1.f3}) b.AddEdgeUnchecked(c, like, f);
  }
  for (NodeId c : {g1.cust4, g1.cust5}) {
    for (NodeId f : {g1.f4, g1.f5, g1.f6}) b.AddEdgeUnchecked(c, like, f);
  }
  // Asian likes: cust4 likes a1 (no city), cust5/cust6 like a2 (in LA).
  b.AddEdgeUnchecked(g1.cust4, like, g1.a1);
  b.AddEdgeUnchecked(g1.cust5, like, g1.a2);
  b.AddEdgeUnchecked(g1.cust6, like, g1.a2);

  // Restaurant locations.
  for (NodeId f : {g1.f1, g1.f2, g1.f3, g1.le_bernardin, g1.per_se}) {
    b.AddEdgeUnchecked(f, in, g1.ny);
  }
  for (NodeId f : {g1.f4, g1.f5, g1.f6, g1.patina, g1.a2}) {
    b.AddEdgeUnchecked(f, in, g1.la);
  }

  // Visits: q-matches are cust1-cust4 and cust6; cust5 is the LCWA negative
  // (visits only an Asian restaurant).
  b.AddEdgeUnchecked(g1.cust1, visit, g1.le_bernardin);
  b.AddEdgeUnchecked(g1.cust2, visit, g1.le_bernardin);
  b.AddEdgeUnchecked(g1.cust3, visit, g1.le_bernardin);
  b.AddEdgeUnchecked(g1.cust3, visit, g1.per_se);
  b.AddEdgeUnchecked(g1.cust4, visit, g1.patina);
  b.AddEdgeUnchecked(g1.cust6, visit, g1.patina);
  b.AddEdgeUnchecked(g1.cust5, visit, g1.a1);

  g1.graph = std::move(b).Build();
  const Interner& labels = g1.graph.labels();
  const LabelId custL = labels.Lookup("cust");
  const LabelId frL = labels.Lookup("French_restaurant");
  g1.q = {custL, labels.Lookup("visit"), frL};

  // --- R1 (Q1, Fig. 1a): x, x' same-city friends; FR^3 in c liked by both;
  // x' visits y in c; consequent visit(x, y). ---------------------------
  {
    Pattern p;
    PNodeId x = p.AddNode(custL);
    PNodeId xp = p.AddNode(custL);
    PNodeId c = p.AddNode(labels.Lookup("city"));
    PNodeId f3n = p.AddNode(frL, /*multiplicity=*/3);
    PNodeId y = p.AddNode(frL);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, xp);
    p.AddEdge(xp, friend_l, x);
    p.AddEdge(x, live_in, c);
    p.AddEdge(xp, live_in, c);
    p.AddEdge(x, like, f3n);
    p.AddEdge(xp, like, f3n);
    p.AddEdge(f3n, in, c);
    p.AddEdge(y, in, c);
    p.AddEdge(xp, visit, y);
    g1.r1 = Gpar::Create(std::move(p), visit).value();
  }
  // --- R5: friend(x, x') + like(x, FR^2) + visit(x', y); consequent
  // visit(x, y) (Fig. 3's edge set: like, visit, friend). -----------------
  {
    Pattern p;
    PNodeId x = p.AddNode(custL);
    PNodeId xp = p.AddNode(custL);
    PNodeId f2n = p.AddNode(frL, 2);
    PNodeId y = p.AddNode(frL);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, xp);
    p.AddEdge(x, like, f2n);
    p.AddEdge(xp, visit, y);
    g1.r5 = Gpar::Create(std::move(p), visit).value();
  }
  // --- R6: friend(x, x') + like(x, Asian) + visit(x', y); consequent
  // visit(x, y:FR). -------------------------------------------------------
  {
    Pattern p;
    PNodeId x = p.AddNode(custL);
    PNodeId xp = p.AddNode(custL);
    PNodeId a = p.AddNode(labels.Lookup("Asian_restaurant"));
    PNodeId y = p.AddNode(frL);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, xp);
    p.AddEdge(x, like, a);
    p.AddEdge(xp, visit, y);
    g1.r6 = Gpar::Create(std::move(p), visit).value();
  }
  // --- R7: R5 closed over the city: both live in c, the liked FR^2 and the
  // visited y are in c, and x' visits y. ---------------------------------
  {
    Pattern p;
    PNodeId x = p.AddNode(custL);
    PNodeId xp = p.AddNode(custL);
    PNodeId c = p.AddNode(labels.Lookup("city"));
    PNodeId f2n = p.AddNode(frL, 2);
    PNodeId y = p.AddNode(frL);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, xp);
    p.AddEdge(x, live_in, c);
    p.AddEdge(xp, live_in, c);
    p.AddEdge(x, like, f2n);
    p.AddEdge(xp, like, f2n);
    p.AddEdge(f2n, in, c);
    p.AddEdge(y, in, c);
    p.AddEdge(xp, visit, y);
    g1.r7 = Gpar::Create(std::move(p), visit).value();
  }
  // --- R8: R6 closed over the city: x's liked Asian restaurant is in c,
  // both live in c, x' visits a French restaurant y in c. ----------------
  {
    Pattern p;
    PNodeId x = p.AddNode(custL);
    PNodeId xp = p.AddNode(custL);
    PNodeId c = p.AddNode(labels.Lookup("city"));
    PNodeId a = p.AddNode(labels.Lookup("Asian_restaurant"));
    PNodeId y = p.AddNode(frL);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, xp);
    p.AddEdge(x, live_in, c);
    p.AddEdge(xp, live_in, c);
    p.AddEdge(x, like, a);
    p.AddEdge(a, in, c);
    p.AddEdge(y, in, c);
    p.AddEdge(xp, visit, y);
    g1.r8 = Gpar::Create(std::move(p), visit).value();
  }
  return g1;
}

PaperG2 MakePaperG2() {
  PaperG2 g2;
  GraphBuilder b;
  const LabelId acct = b.InternLabel("acct");
  const LabelId blog = b.InternLabel("blog");
  const LabelId keyword = b.InternLabel("keyword");
  const LabelId fake = b.InternLabel("fake");
  const LabelId like = b.InternLabel("like");
  const LabelId post = b.InternLabel("post");
  const LabelId contains = b.InternLabel("contains");
  const LabelId is_a = b.InternLabel("is_a");

  g2.acct1 = b.AddNode(acct);
  g2.acct2 = b.AddNode(acct);
  g2.acct3 = b.AddNode(acct);
  g2.acct4 = b.AddNode(acct);
  g2.p1 = b.AddNode(blog);
  g2.p2 = b.AddNode(blog);
  g2.p3 = b.AddNode(blog);
  g2.p4 = b.AddNode(blog);
  g2.p5 = b.AddNode(blog);
  g2.p6 = b.AddNode(blog);
  g2.p7 = b.AddNode(blog);
  g2.k1 = b.AddNode(keyword);  // "claim a prize"
  g2.k2 = b.AddNode(keyword);  // "lottery rules"
  g2.fake = b.AddNode(fake);

  // Everyone likes the two common blogs p1, p2.
  for (NodeId a : {g2.acct1, g2.acct2, g2.acct3, g2.acct4}) {
    b.AddEdgeUnchecked(a, like, g2.p1);
    b.AddEdgeUnchecked(a, like, g2.p2);
  }
  // Posts.
  b.AddEdgeUnchecked(g2.acct1, post, g2.p3);
  b.AddEdgeUnchecked(g2.acct2, post, g2.p4);
  b.AddEdgeUnchecked(g2.acct3, post, g2.p5);
  b.AddEdgeUnchecked(g2.acct4, post, g2.p6);
  b.AddEdgeUnchecked(g2.acct4, post, g2.p7);
  // Keywords: the fake accounts' blogs share k1; acct4's blogs carry k2.
  b.AddEdgeUnchecked(g2.p3, contains, g2.k1);
  b.AddEdgeUnchecked(g2.p4, contains, g2.k1);
  b.AddEdgeUnchecked(g2.p5, contains, g2.k1);
  b.AddEdgeUnchecked(g2.p6, contains, g2.k2);
  b.AddEdgeUnchecked(g2.p7, contains, g2.k2);
  // Confirmed fakes.
  b.AddEdgeUnchecked(g2.acct1, is_a, g2.fake);
  b.AddEdgeUnchecked(g2.acct2, is_a, g2.fake);
  b.AddEdgeUnchecked(g2.acct3, is_a, g2.fake);

  g2.graph = std::move(b).Build();
  const Interner& labels = g2.graph.labels();
  g2.q = {labels.Lookup("acct"), labels.Lookup("is_a"),
          labels.Lookup("fake")};

  // --- R4 (Q4, Fig. 1d), k = 2: x and a confirmed-fake x' both like two
  // blogs; x posts y1 and x' posts y2 containing the same keyword;
  // consequent is_a(x, fake). --------------------------------------------
  {
    Pattern p;
    PNodeId x = p.AddNode(acct);
    PNodeId xp = p.AddNode(acct);
    PNodeId y = p.AddNode(fake);
    PNodeId pk = p.AddNode(blog, /*multiplicity=*/2);  // commonly liked
    PNodeId y1 = p.AddNode(blog);
    PNodeId y2 = p.AddNode(blog);
    PNodeId w = p.AddNode(keyword);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(xp, is_a, y);
    p.AddEdge(x, like, pk);
    p.AddEdge(xp, like, pk);
    p.AddEdge(x, post, y1);
    p.AddEdge(xp, post, y2);
    p.AddEdge(y1, contains, w);
    p.AddEdge(y2, contains, w);
    g2.r4 = Gpar::Create(std::move(p), is_a).value();
  }
  return g2;
}

PaperEcuador MakePaperEcuador() {
  PaperEcuador e;
  GraphBuilder b;
  const LabelId user = b.InternLabel("user");
  const LabelId country = b.InternLabel("Ecuador");
  const LabelId shakira = b.InternLabel("shakira_album");
  const LabelId mj = b.InternLabel("mj_album");
  const LabelId friend_l = b.InternLabel("friend");
  const LabelId live_in = b.InternLabel("live_in");
  const LabelId like = b.InternLabel("like");

  e.v1 = b.AddNode(user);
  e.v2 = b.AddNode(user);
  e.v3 = b.AddNode(user);
  e.w1 = b.AddNode(user);
  e.w2 = b.AddNode(user);
  e.ecuador = b.AddNode(country);
  e.shakira_album = b.AddNode(shakira);
  e.mj_album = b.AddNode(mj);

  for (NodeId u : {e.v1, e.v2, e.v3, e.w1, e.w2}) {
    b.AddEdgeUnchecked(u, live_in, e.ecuador);
  }
  // w1, w2 befriend everyone (and each other): every user closes a triangle.
  for (NodeId u : {e.v1, e.v2, e.v3, e.w2}) {
    AddFriends(b, friend_l, e.w1, u);
  }
  for (NodeId u : {e.v1, e.v2, e.v3}) {
    AddFriends(b, friend_l, e.w2, u);
  }
  // Likes: v1, w1, w2 like the Shakira album (positives); v2 likes only
  // MJ's (negative); v3 likes nothing (unknown).
  b.AddEdgeUnchecked(e.v1, like, e.shakira_album);
  b.AddEdgeUnchecked(e.w1, like, e.shakira_album);
  b.AddEdgeUnchecked(e.w2, like, e.shakira_album);
  b.AddEdgeUnchecked(e.v2, like, e.mj_album);

  e.graph = std::move(b).Build();
  const Interner& labels = e.graph.labels();
  e.q = {labels.Lookup("user"), labels.Lookup("like"),
         labels.Lookup("shakira_album")};

  // --- R2 (Q2, Fig. 1b): x, x1, x2 pairwise friends, all in Ecuador; x1
  // and x2 both like the album y; consequent like(x, y). -----------------
  {
    Pattern p;
    PNodeId x = p.AddNode(user);
    PNodeId x1 = p.AddNode(user);
    PNodeId x2 = p.AddNode(user);
    PNodeId c = p.AddNode(country);
    PNodeId y = p.AddNode(shakira);
    p.set_x(x);
    p.set_y(y);
    p.AddEdge(x, friend_l, x1);
    p.AddEdge(x, friend_l, x2);
    p.AddEdge(x1, friend_l, x2);
    p.AddEdge(x, live_in, c);
    p.AddEdge(x1, live_in, c);
    p.AddEdge(x2, live_in, c);
    p.AddEdge(x1, like, y);
    p.AddEdge(x2, like, y);
    e.r2 = Gpar::Create(std::move(p), like).value();
  }
  return e;
}

}  // namespace gpar
