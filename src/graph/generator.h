#ifndef GPAR_GRAPH_GENERATOR_H_
#define GPAR_GRAPH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// Specification of a synthetic labeled social graph.
///
/// The generator plants community structure so that graph-pattern
/// association rules actually hold with measurable confidence: persons in a
/// community share item preferences, and social edges are mostly
/// intra-community, so "x--friend-->x', x'--likes-->y:kind" genuinely
/// correlates with "x--likes-->y':kind". This is the behaviour-preserving
/// substitute for the Pokec / Google+ snapshots (see DESIGN.md §5).
struct SocialGraphSpec {
  /// One item universe (music genres, employers, cities, ...): `num_kinds`
  /// distinct node labels, each carried by `items_per_kind` item nodes, and
  /// one edge label connecting persons to items.
  struct ItemDomain {
    std::string kind_prefix;     ///< item labels are "<prefix><i>"
    uint32_t num_kinds = 10;
    uint32_t items_per_kind = 4;
    std::string edge_label;
    uint32_t kinds_per_community = 2;  ///< preferred kinds per community
    double adoption_prob = 0.7;  ///< P(person adopts a preferred kind)
    double noise_prob = 0.05;    ///< P(person adopts a uniformly random kind)
    bool single_kind_label = false;  ///< all items share one label (= prefix)
  };

  uint32_t num_persons = 10000;
  std::string person_label = "user";
  double social_avg_degree = 8.0;
  std::vector<std::string> social_edge_labels = {"follow", "friend"};
  double social_zipf_s = 1.0;  ///< skew of the social edge-label mix
  uint32_t num_communities = 50;
  double intra_community_prob = 0.8;
  double degree_zipf_s = 1.2;  ///< skew of person degree targets
  std::vector<ItemDomain> domains;
  uint64_t seed = 42;
};

/// Generates a graph from an explicit spec.
Graph MakeSocialGraph(const SocialGraphSpec& spec);

/// Pokec-like graph: 269 node labels (user + many fine-grained item kinds),
/// 11 edge labels, skewed degrees. `scale` multiplies the person count
/// (scale 1 ~ 2k persons, ~20k nodes+edges).
Graph MakePokecLike(uint32_t scale, uint64_t seed = 42);

/// Google+-like graph: 5 node labels (person, employer, school, major,
/// city), 5 edge labels, coarser selectivity than Pokec-like (which is what
/// makes its curves slower in the paper's Figures 5(b)/(d)/(i)/(k)).
Graph MakeGPlusLike(uint32_t scale, uint64_t seed = 42);

/// Uniform synthetic graph per the paper's generator (Section 6): |V| nodes,
/// ~|E| edges, labels drawn from an alphabet of `num_labels` (default 100),
/// with Zipfian label skew and heavy-tailed degrees.
Graph MakeSynthetic(uint32_t num_nodes, uint64_t num_edges,
                    uint32_t num_labels = 100, uint64_t seed = 42);

}  // namespace gpar

#endif  // GPAR_GRAPH_GENERATOR_H_
