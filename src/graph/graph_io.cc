#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"

namespace gpar {

Status WriteGraphText(const Graph& g, std::ostream& os) {
  os << "# gpar graph: " << g.num_nodes() << " nodes, " << g.num_edges()
     << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "v " << v << ' ' << g.labels().Name(g.node_label(v)) << '\n';
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.out_edges(v)) {
      os << "e " << v << ' ' << e.other << ' ' << g.labels().Name(e.label)
         << '\n';
    }
  }
  if (!os) return Status::IoError("write failed");
  return Status::OK();
}

Status WriteGraphFile(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IoError("cannot open " + path);
  return WriteGraphText(g, os);
}

Result<Graph> ReadGraphText(std::istream& is) {
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'v') {
      uint64_t id;
      std::string label;
      if (!(ls >> id >> label)) {
        return Status::Corruption("bad node line " + std::to_string(lineno));
      }
      if (id != builder.num_nodes()) {
        return Status::Corruption("non-dense node id at line " +
                                  std::to_string(lineno));
      }
      builder.AddNode(label);
    } else if (kind == 'e') {
      uint64_t src, dst;
      std::string label;
      if (!(ls >> src >> dst >> label)) {
        return Status::Corruption("bad edge line " + std::to_string(lineno));
      }
      GPAR_RETURN_NOT_OK(builder.AddEdge(static_cast<NodeId>(src), label,
                                         static_cast<NodeId>(dst)));
    } else {
      return Status::Corruption("unknown record '" + std::string(1, kind) +
                                "' at line " + std::to_string(lineno));
    }
  }
  return std::move(builder).Build();
}

Result<Graph> ReadGraphFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IoError("cannot open " + path);
  return ReadGraphText(is);
}

}  // namespace gpar
