#ifndef GPAR_GRAPH_STATS_H_
#define GPAR_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gpar {

/// A single-edge pattern (both node labels plus the edge label) with its
/// frequency in a graph. These are the paper's "most frequent edge patterns,
/// i.e., graph patterns consisting of a single edge (with both node and edge
/// labels)" used as the growth alphabet for DMine (Section 6, Exp-1).
struct EdgePatternStat {
  LabelId src_label;
  LabelId edge_label;
  LabelId dst_label;
  uint64_t count;

  friend bool operator==(const EdgePatternStat&,
                         const EdgePatternStat&) = default;
};

/// Returns edge-pattern statistics sorted by descending frequency. If
/// `limit` > 0 only the `limit` most frequent are returned.
std::vector<EdgePatternStat> FrequentEdgePatterns(const Graph& g,
                                                  size_t limit = 0);

/// Aggregate degree statistics, used by partitioning heuristics and benches.
struct DegreeStats {
  double avg_degree = 0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
};
DegreeStats ComputeDegreeStats(const Graph& g);

}  // namespace gpar

#endif  // GPAR_GRAPH_STATS_H_
