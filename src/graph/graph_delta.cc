#include "graph/graph_delta.h"

#include <algorithm>
#include <deque>

#include "common/binary_io.h"
#include "graph/graph_raw_access.h"

namespace gpar {

namespace {

// "GPARDLTA", little-endian — distinct from the graph/rule snapshot magics
// so a delta frame fed to the wrong codec fails on the first 8 bytes.
constexpr uint64_t kDeltaMagic = 0x41544C4452415047ull;

}  // namespace

std::string GraphDelta::Serialize() const {
  std::string payload;
  PutU64(&payload, sequence);
  PutU32(&payload, static_cast<uint32_t>(inserts.size()));
  for (const EdgeInsert& e : inserts) {
    PutU32(&payload, e.src);
    PutU32(&payload, e.label);
    PutU32(&payload, e.dst);
  }
  std::string out;
  PutU64(&out, kDeltaMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

Result<GraphDelta> GraphDelta::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  uint64_t magic, payload_size, checksum;
  uint32_t version;
  if (!r.ReadU64(&magic) || !r.ReadU32(&version) || !r.ReadU64(&payload_size) ||
      !r.ReadU64(&checksum)) {
    return Status::Corruption("graph delta: truncated header");
  }
  if (magic != kDeltaMagic) {
    return Status::Corruption("graph delta: bad magic");
  }
  if (version != kFormatVersion) {
    return Status::Corruption("graph delta: unsupported version " +
                              std::to_string(version));
  }
  if (payload_size != r.remaining()) {
    return Status::Corruption("graph delta: payload size mismatch");
  }
  const std::string_view payload = bytes.substr(bytes.size() - r.remaining());
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("graph delta: checksum mismatch");
  }
  GraphDelta delta;
  uint32_t count;
  if (!r.ReadU64(&delta.sequence) || !r.ReadU32(&count)) {
    return Status::Corruption("graph delta: truncated payload");
  }
  delta.inserts.reserve(std::min<size_t>(count, r.remaining() / 12));
  for (uint32_t i = 0; i < count; ++i) {
    EdgeInsert e;
    if (!r.ReadU32(&e.src) || !r.ReadU32(&e.label) || !r.ReadU32(&e.dst)) {
      return Status::Corruption("graph delta: truncated payload");
    }
    delta.inserts.push_back(e);
  }
  if (!r.exhausted()) {
    return Status::Corruption("graph delta: trailing bytes");
  }
  return delta;
}

Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         std::span<const EdgeInsert> inserts) {
  const NodeId n = g.num_nodes();
  for (const EdgeInsert& e : inserts) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument("edge insert endpoint out of range");
    }
    if (e.label >= g.labels().size()) {
      return Status::InvalidArgument("edge insert label not interned");
    }
  }

  // Sort + dedup the batch, then drop inserts already present: the merge
  // below can then assume every surviving insert is new and unique.
  std::vector<EdgeInsert> fresh(inserts.begin(), inserts.end());
  std::sort(fresh.begin(), fresh.end(),
            [](const EdgeInsert& a, const EdgeInsert& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.label != b.label) return a.label < b.label;
              return a.dst < b.dst;
            });
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::erase_if(fresh, [&g](const EdgeInsert& e) {
    return g.HasEdge(e.src, e.label, e.dst);
  });

  GraphPatch patch;
  patch.duplicates = inserts.size() - fresh.size();
  patch.edges_inserted = fresh.size();

  const auto& old_offsets = GraphRawAccess::out_offsets(g);
  const auto& old_adj = GraphRawAccess::out_adj(g);

  Graph out;
  GraphRawAccess::labels(out) = g.labels_ptr();
  GraphRawAccess::node_labels(out) = GraphRawAccess::node_labels(g);
  auto& offsets = GraphRawAccess::out_offsets(out);
  auto& adj = GraphRawAccess::out_adj(out);
  offsets.assign(n + 1, 0);
  adj.reserve(old_adj.size() + fresh.size());

  // Single merge pass: per node, splice the (sorted) inserts for that node
  // into its existing (label, other)-sorted slice.
  size_t next = 0;  // cursor into `fresh`, which is sorted by src
  for (NodeId v = 0; v < n; ++v) {
    size_t lo = old_offsets[v], hi = old_offsets[v + 1];
    while (lo < hi || (next < fresh.size() && fresh[next].src == v)) {
      const bool has_insert = next < fresh.size() && fresh[next].src == v;
      if (!has_insert) {
        adj.push_back(old_adj[lo++]);
      } else {
        AdjEntry ins{fresh[next].label, fresh[next].dst};
        if (lo < hi && old_adj[lo] < ins) {
          adj.push_back(old_adj[lo++]);
        } else {
          adj.push_back(ins);
          ++next;
        }
      }
    }
    offsets[v + 1] = adj.size();
  }
  GraphRawAccess::FinishFromOutCsr(out);
  patch.graph = std::move(out);
  patch.applied = std::move(fresh);
  return patch;
}

Result<GraphPatch> PatchGraphWithInserts(const Graph& g,
                                         const GraphDelta& delta) {
  return PatchGraphWithInserts(g, std::span<const EdgeInsert>(delta.inserts));
}

std::vector<std::pair<NodeId, uint32_t>> NodesWithinRadiusOfAny(
    const Graph& g, std::span<const NodeId> sources, uint32_t radius) {
  std::vector<std::pair<NodeId, uint32_t>> out;
  std::vector<uint32_t> dist(g.num_nodes(), static_cast<uint32_t>(-1));
  std::deque<NodeId> frontier;
  for (NodeId s : sources) {
    if (s < g.num_nodes() && dist[s] == static_cast<uint32_t>(-1)) {
      dist[s] = 0;
      frontier.push_back(s);
      out.emplace_back(s, 0);
    }
  }
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop_front();
    if (dist[v] == radius) continue;
    auto visit = [&](NodeId w) {
      if (dist[w] == static_cast<uint32_t>(-1)) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
        out.emplace_back(w, dist[w]);
      }
    };
    for (const AdjEntry& e : g.out_edges(v)) visit(e.other);
    for (const AdjEntry& e : g.in_edges(v)) visit(e.other);
  }
  return out;
}

}  // namespace gpar
